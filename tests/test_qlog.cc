// Conformance tests for the standard-qlog trace layer (obs/qlog.h).
//
// Three layers of checking:
//   1. golden strings: the header line and representative event lines are
//      compared byte-for-byte, pinning the wire format;
//   2. a minimal strict JSON parser + schema-subset validator: every line
//      of a .sqlog must parse as one JSON object, events must carry a
//      numeric "time", a known "name" and a "data" object with the fields
//      DESIGN.md §7 documents for that name;
//   3. an end-to-end run through the population runner's --trace-sample
//      path, validating the files it writes and checking the legacy
//      streaming JSONL and qlog outputs of one tracer never interleave.
#include "obs/qlog.h"

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/population_experiment.h"
#include "trace/tracer.h"

namespace wira::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser (objects, arrays, strings, numbers, literals).
// Only what the validator needs: parse one line, expose object keys.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_number() const { return type == Type::kNumber; }
  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses the full input as one value; empty error string on success.
  std::string parse(JsonValue* out) {
    error_.clear();
    pos_ = 0;
    *out = value();
    skip_ws();
    if (error_.empty() && pos_ != s_.size()) {
      fail("trailing characters after value");
    }
    return error_;
  }

 private:
  void fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      pos_++;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }
  bool literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return v;
    }
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.string = string();
      return v;
    }
    if (literal("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (literal("null")) return v;
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return v;
    while (error_.empty()) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        fail("expected object key");
        break;
      }
      const std::string key = string();
      if (!consume(':')) {
        fail("expected ':' after key");
        break;
      }
      v.object[key] = value();
      if (consume(',')) continue;
      if (consume('}')) break;
      fail("expected ',' or '}' in object");
    }
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return v;
    while (error_.empty()) {
      v.array.push_back(value());
      if (consume(',')) continue;
      if (consume(']')) break;
      fail("expected ',' or ']' in array");
    }
    return v;
  }

  std::string string() {
    std::string out;
    pos_++;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
            return out;
          }
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              fail("bad \\u escape");
              return out;
            }
          }
          pos_ += 4;
          out += '?';  // code point itself is irrelevant to the validator
          break;
        }
        default:
          fail("bad escape character");
          return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  JsonValue number() {
    JsonValue v;
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') pos_++;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) {
      fail("expected a value");
      return v;
    }
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      fail("unparseable number");
      return v;
    }
    v.type = JsonValue::Type::kNumber;
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Schema-subset validator.

/// data fields required per event name (nested fields checked separately).
const std::map<std::string, std::vector<std::string>>& required_data() {
  static const std::map<std::string, std::vector<std::string>> kRequired = {
      {"transport:packet_sent", {"header", "raw"}},
      {"transport:packet_received", {"header", "raw"}},
      {"recovery:packet_lost", {"header", "raw"}},
      {"recovery:packets_acked", {"acked_ranges", "length"}},
      {"recovery:loss_timer_updated",
       {"event_type", "timer_type", "pto_count"}},
      {"recovery:metrics_updated", {}},  // one-of, checked below
      {"recovery:congestion_state_updated", {"new"}},
      {"connectivity:connection_state_updated", {"new"}},
      {"wira:handshake_message", {"message"}},
      {"wira:init_applied", {"init_cwnd", "init_pacing"}},
      {"wira:cookie_applied", {"action", "size"}},
      {"wira:frame_complete", {"frame_index", "bytes"}},
      {"wira:request_received", {"bytes"}},
      {"wira:origin_byte", {"chunk_bytes"}},
      {"wira:ff_parsed", {"ff_size", "bytes_fed"}},
      {"wira:corner_case", {"kind", "init_cwnd"}},
      {"wira:request_sent", {"bytes"}},
      {"wira:first_video_byte", {"total_bytes"}},
      {"wira:stall_observed", {"kind", "gap", "total_bytes"}},
  };
  return kRequired;
}

std::string validate_header(const JsonValue& v) {
  const JsonValue* version = v.find("qlog_version");
  if (version == nullptr || version->string != "0.3") {
    return "header: qlog_version missing or not \"0.3\"";
  }
  const JsonValue* format = v.find("qlog_format");
  if (format == nullptr || format->string != "JSON-SEQ") {
    return "header: qlog_format missing or not \"JSON-SEQ\"";
  }
  if (v.find("title") == nullptr) return "header: title missing";
  const JsonValue* trace = v.find("trace");
  if (trace == nullptr || !trace->is_object()) {
    return "header: trace object missing";
  }
  const JsonValue* vp = trace->find("vantage_point");
  if (vp == nullptr || !vp->is_object() || vp->find("type") == nullptr) {
    return "header: vantage_point.type missing";
  }
  const std::string& vpt = vp->find("type")->string;
  if (vpt != "client" && vpt != "server" && vpt != "network") {
    return "header: vantage_point.type not client/server/network";
  }
  return "";
}

std::string validate_event(const JsonValue& v, double* prev_time) {
  const JsonValue* time = v.find("time");
  if (time == nullptr || !time->is_number() || time->number < 0) {
    return "event: time missing or not a non-negative number";
  }
  if (time->number < *prev_time) return "event: time went backwards";
  *prev_time = time->number;
  const JsonValue* name = v.find("name");
  if (name == nullptr || name->type != JsonValue::Type::kString) {
    return "event: name missing";
  }
  const auto req = required_data().find(name->string);
  if (req == required_data().end()) {
    return "event: unknown name " + name->string;
  }
  const JsonValue* data = v.find("data");
  if (data == nullptr || !data->is_object()) {
    return "event: data object missing (" + name->string + ")";
  }
  for (const std::string& field : req->second) {
    if (data->find(field) == nullptr) {
      return "event " + name->string + ": data." + field + " missing";
    }
  }
  if (name->string == "recovery:metrics_updated" &&
      data->find("latest_rtt") == nullptr &&
      data->find("congestion_window") == nullptr &&
      data->find("pacing_rate") == nullptr) {
    return "metrics_updated: no known metric present";
  }
  return "";
}

/// Validates a full .sqlog text; returns "" or the first error found.
std::string validate_sqlog(const std::string& text, size_t* events_out) {
  std::istringstream is(text);
  std::string line;
  size_t line_no = 0;
  size_t events = 0;
  double prev_time = 0;
  while (std::getline(is, line)) {
    line_no++;
    if (line.empty()) return "line " + std::to_string(line_no) + ": empty";
    JsonValue v;
    const std::string err = JsonParser(line).parse(&v);
    if (!err.empty()) {
      return "line " + std::to_string(line_no) + ": " + err;
    }
    if (!v.is_object()) {
      return "line " + std::to_string(line_no) + ": not a JSON object";
    }
    const std::string semantic =
        line_no == 1 ? validate_header(v) : validate_event(v, &prev_time);
    if (!semantic.empty()) {
      return "line " + std::to_string(line_no) + ": " + semantic;
    }
    if (line_no > 1) events++;
  }
  if (line_no == 0) return "empty file";
  if (events_out != nullptr) *events_out = events;
  return "";
}

// ---------------------------------------------------------------------------
// Golden strings.

TEST(Qlog, GoldenHeaderLine) {
  std::ostringstream os;
  QlogTraceInfo info;
  info.title = "session_3_Wira";
  info.group_id = "session_3_Wira";
  QlogStreamWriter writer(os, info);
  EXPECT_EQ(os.str(),
            "{\"qlog_version\": \"0.3\", \"qlog_format\": \"JSON-SEQ\", "
            "\"title\": \"session_3_Wira\", \"trace\": {\"vantage_point\": "
            "{\"name\": \"wira-server\", \"type\": \"server\"}, "
            "\"common_fields\": {\"time_format\": \"relative\", "
            "\"reference_time\": 0, \"group_id\": \"session_3_Wira\"}}}\n");
}

TEST(Qlog, GoldenEventLines) {
  std::ostringstream os;
  QlogTraceInfo info;
  QlogStreamWriter writer(os, info);
  os.str("");  // drop the header: this golden targets the event lines
  trace::Tracer t;
  t.stream_to(&writer);
  t.record(microseconds(5500), trace::EventType::kPacketSent, 7, 1200);
  t.record(milliseconds(12), trace::EventType::kRttSample, 50'000, 51'250);
  t.record(milliseconds(20), trace::EventType::kCookieEvent, 32, 0,
           "say \"hi\"");
  EXPECT_EQ(os.str(),
            "{\"time\": 5.500, \"name\": \"transport:packet_sent\", "
            "\"data\": {\"header\": {\"packet_number\": 7}, \"raw\": "
            "{\"length\": 1200}}}\n"
            "{\"time\": 12.000, \"name\": \"recovery:metrics_updated\", "
            "\"data\": {\"latest_rtt\": 50.000, \"smoothed_rtt\": "
            "51.250}}\n"
            "{\"time\": 20.000, \"name\": \"wira:cookie_applied\", "
            "\"data\": {\"action\": \"say \\\"hi\\\"\", \"size\": 32}}\n");
}

TEST(Qlog, EventNameMapping) {
  using trace::Event;
  using trace::EventType;
  const auto name = [](EventType type, std::string detail = "") {
    Event e;
    e.type = type;
    e.detail = std::move(detail);
    return qlog_event_name(e);
  };
  EXPECT_EQ(name(EventType::kPacketSent), "transport:packet_sent");
  EXPECT_EQ(name(EventType::kPacketReceived), "transport:packet_received");
  EXPECT_EQ(name(EventType::kPacketAcked), "recovery:packets_acked");
  EXPECT_EQ(name(EventType::kPacketLost), "recovery:packet_lost");
  EXPECT_EQ(name(EventType::kPtoFired), "recovery:loss_timer_updated");
  EXPECT_EQ(name(EventType::kRttSample), "recovery:metrics_updated");
  EXPECT_EQ(name(EventType::kCwndSample), "recovery:metrics_updated");
  EXPECT_EQ(name(EventType::kPacingSample), "recovery:metrics_updated");
  EXPECT_EQ(name(EventType::kCcStateChanged),
            "recovery:congestion_state_updated");
  EXPECT_EQ(name(EventType::kHandshakeEvent, "established"),
            "connectivity:connection_state_updated");
  EXPECT_EQ(name(EventType::kHandshakeEvent, "chlo"),
            "wira:handshake_message");
  EXPECT_EQ(name(EventType::kInitApplied), "wira:init_applied");
  EXPECT_EQ(name(EventType::kCookieEvent), "wira:cookie_applied");
  EXPECT_EQ(name(EventType::kFrameComplete), "wira:frame_complete");
  EXPECT_EQ(name(EventType::kRequestReceived), "wira:request_received");
  EXPECT_EQ(name(EventType::kOriginByte), "wira:origin_byte");
  EXPECT_EQ(name(EventType::kFfParsed), "wira:ff_parsed");
  EXPECT_EQ(name(EventType::kCornerCase), "wira:corner_case");
}

// ---------------------------------------------------------------------------
// Validator self-checks (it must actually reject broken input).

TEST(QlogValidator, AcceptsMinimalValidFile) {
  std::ostringstream os;
  QlogTraceInfo info;
  info.title = "t";
  QlogStreamWriter writer(os, info);
  trace::Tracer t;
  t.stream_to(&writer);
  t.record(0, trace::EventType::kHandshakeEvent, 0, 0, "chlo");
  t.record(milliseconds(1), trace::EventType::kInitApplied, 66'000,
           1'000'000);
  size_t events = 0;
  EXPECT_EQ(validate_sqlog(os.str(), &events), "");
  EXPECT_EQ(events, 2u);
}

TEST(QlogValidator, RejectsBrokenInput) {
  const std::string header =
      "{\"qlog_version\": \"0.3\", \"qlog_format\": \"JSON-SEQ\", "
      "\"title\": \"t\", \"trace\": {\"vantage_point\": {\"name\": \"x\", "
      "\"type\": \"server\"}}}\n";
  // Truncated JSON.
  EXPECT_NE(validate_sqlog(header + "{\"time\": 1.0, \"name\":", nullptr),
            "");
  // Unknown event name.
  EXPECT_NE(validate_sqlog(header + "{\"time\": 1.0, \"name\": "
                                    "\"transport:bogus\", \"data\": {}}\n",
                           nullptr),
            "");
  // Missing data field.
  EXPECT_NE(validate_sqlog(header + "{\"time\": 1.0, \"name\": "
                                    "\"wira:ff_parsed\", \"data\": "
                                    "{\"ff_size\": 1}}\n",
                           nullptr),
            "");
  // Time going backwards.
  EXPECT_NE(
      validate_sqlog(header +
                         "{\"time\": 2.0, \"name\": \"wira:request_received"
                         "\", \"data\": {\"bytes\": 1}}\n"
                         "{\"time\": 1.0, \"name\": \"wira:request_received"
                         "\", \"data\": {\"bytes\": 1}}\n",
                     nullptr),
      "");
  // Wrong version string.
  EXPECT_NE(validate_sqlog("{\"qlog_version\": \"9.9\"}\n", nullptr), "");
}

// ---------------------------------------------------------------------------
// End-to-end: the population runner's --trace-sample files conform.

TEST(QlogEndToEnd, TraceSampleFilesValidate) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "wira_qlog_e2e";
  std::filesystem::remove_all(dir);

  exp::PopulationConfig cfg;
  cfg.sessions = 4;
  cfg.seed = 11;
  cfg.threads = 2;
  cfg.trace_sample = 2;  // sessions 0 and 2, every scheme
  cfg.trace_dir = dir.string();
  cfg.collect_metrics = true;  // exercises the keep_buffer streaming path
  obs::MetricsRegistry registry;
  const auto records = exp::run_population(cfg, &registry);
  ASSERT_EQ(records.size(), 4u);

  size_t server_files = 0;
  size_t client_files = 0;
  size_t total_events = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".sqlog") continue;
    const std::string filename = entry.path().filename().string();
    std::ifstream is(entry.path());
    std::stringstream buf;
    buf << is.rdbuf();
    size_t events = 0;
    EXPECT_EQ(validate_sqlog(buf.str(), &events), "")
        << "in " << entry.path();
    EXPECT_GT(events, 0u) << "in " << entry.path();
    total_events += events;
    const std::string text = buf.str();
    if (filename.find(".server.sqlog") != std::string::npos) {
      server_files++;
      // A server-side session trace must at least show the request, the
      // init decision and data packets leaving.
      EXPECT_NE(text.find("\"type\": \"server\""), std::string::npos);
      EXPECT_NE(text.find("\"wira:request_received\""), std::string::npos);
      EXPECT_NE(text.find("\"wira:init_applied\""), std::string::npos);
      EXPECT_NE(text.find("\"transport:packet_sent\""), std::string::npos);
      EXPECT_NE(text.find("\"recovery:congestion_state_updated\""),
                std::string::npos);
    } else {
      // The paired client vantage: request departure and the delivery-side
      // markers only the receiver can observe.
      EXPECT_NE(filename.find(".client.sqlog"), std::string::npos)
          << filename << " is neither .server.sqlog nor .client.sqlog";
      client_files++;
      EXPECT_NE(text.find("\"type\": \"client\""), std::string::npos);
      EXPECT_NE(text.find("\"wira:request_sent\""), std::string::npos);
      EXPECT_NE(text.find("\"wira:first_video_byte\""), std::string::npos);
      EXPECT_NE(text.find("\"wira:frame_complete\""), std::string::npos);
      // Server-only markers must not leak across vantages.
      EXPECT_EQ(text.find("\"wira:request_received\""), std::string::npos);
    }
  }
  // 2 sampled sessions x 4 schemes, one file per vantage.
  EXPECT_EQ(server_files, 2u * records[0].results.size());
  EXPECT_EQ(client_files, 2u * records[0].results.size());
  EXPECT_GT(total_events, 100u);
  // Phase collection ran alongside streaming (keep_buffer contract).
  for (const auto& [scheme, res] : records[0].results) {
    if (res.first_frame_completed) {
      EXPECT_FALSE(res.phases.empty());
    }
  }
  std::filesystem::remove_all(dir);
}

// The same tracer can stream legacy JSONL (--metrics-out style consumers)
// and qlog simultaneously: two sinks, two destinations, no interleaving or
// double escaping in either.
TEST(QlogEndToEnd, LegacyJsonlAndQlogStreamsStayIndependent) {
  std::ostringstream legacy, qlog;
  QlogTraceInfo info;
  info.title = "dual";
  QlogStreamWriter writer(qlog, info);
  trace::Tracer t;
  t.stream_to(&legacy);
  t.stream_to(&writer, /*keep_buffer=*/true);

  const std::string hostile = "quote\" backslash\\ newline\n done";
  t.record(microseconds(1), trace::EventType::kPacketSent, 1, 1200);
  t.record(microseconds(2), trace::EventType::kCornerCase, 45, 0, hostile);
  t.record(microseconds(3), trace::EventType::kFfParsed, 66'000, 70'000);

  // qlog side: header + 3 events, schema-valid.
  size_t events = 0;
  EXPECT_EQ(validate_sqlog(qlog.str(), &events), "");
  EXPECT_EQ(events, 3u);

  // Legacy side: 3 parseable JSONL lines with the legacy names, and the
  // hostile detail round-trips through exactly one level of escaping.
  std::istringstream is(legacy.str());
  std::string line;
  std::vector<JsonValue> lines;
  while (std::getline(is, line)) {
    JsonValue v;
    ASSERT_EQ(JsonParser(line).parse(&v), "") << line;
    lines.push_back(std::move(v));
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("name")->string, "packet_sent");
  EXPECT_EQ(lines[1].find("detail")->string, hostile);
  EXPECT_EQ(lines[2].find("name")->string, "ff_parsed");

  // No cross-contamination: qlog names never in the legacy stream and
  // vice versa.
  EXPECT_EQ(legacy.str().find("transport:"), std::string::npos);
  EXPECT_EQ(qlog.str().find("\"time_us\""), std::string::npos);

  // The hostile detail also round-trips on the qlog side.
  std::istringstream qis(qlog.str());
  std::getline(qis, line);  // header
  std::getline(qis, line);  // packet_sent
  std::getline(qis, line);  // corner_case
  JsonValue v;
  ASSERT_EQ(JsonParser(line).parse(&v), "");
  EXPECT_EQ(v.find("data")->find("kind")->string, hostile);

  // Buffer kept alongside both sinks.
  EXPECT_EQ(t.events().size(), 3u);
}

}  // namespace
}  // namespace wira::obs
