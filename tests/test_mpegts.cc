// Unit and integration tests for the MPEG-TS substrate and its Frame
// Perception support (the HLS-TS member of PtlSet).
#include "media/mpegts.h"

#include <gtest/gtest.h>

#include "core/frame_parser.h"
#include "exp/session_runner.h"
#include "media/stream_source.h"

namespace wira::media {
namespace {

std::vector<uint8_t> ts_join_bytes(const LiveStream& s, TimeNs join,
                                   TimeNs tail = seconds(2)) {
  std::vector<uint8_t> all;
  for (const auto& c : s.join_chunks(join)) {
    all.insert(all.end(), c.bytes.begin(), c.bytes.end());
  }
  for (const auto& c : s.chunks_between(join, join + tail)) {
    all.insert(all.end(), c.bytes.begin(), c.bytes.end());
  }
  return all;
}

StreamProfile ts_profile(uint64_t id = 1) {
  StreamProfile p;
  p.stream_id = id;
  p.container = Container::kMpegTs;
  p.iframe_mean_bytes = 45'000;
  return p;
}

TEST(TsMuxer, PacketsAre188BytesWithSync) {
  TsMuxer mux;
  mux.write_psi();
  mux.write_frame({TagType::kVideo, VideoKind::kKey, 10'000, 0});
  const auto bytes = mux.take();
  ASSERT_EQ(bytes.size() % kTsPacketSize, 0u);
  for (size_t i = 0; i < bytes.size(); i += kTsPacketSize) {
    EXPECT_EQ(bytes[i], kTsSyncByte) << "packet " << i / kTsPacketSize;
  }
}

TEST(TsMuxer, WireSizeHelperMatchesActual) {
  for (uint32_t payload : {100u, 500u, 5'000u, 66'000u, 200'000u}) {
    for (auto kind : {VideoKind::kKey, VideoKind::kInter}) {
      MediaFrame f{TagType::kVideo, kind, payload, milliseconds(40)};
      TsMuxer mux;
      mux.write_frame(f);
      EXPECT_EQ(mux.size(), ts_frame_wire_size(f))
          << payload << " " << static_cast<int>(kind);
    }
  }
  MediaFrame audio{TagType::kAudio, VideoKind::kKey, 330, 0};
  TsMuxer mux;
  mux.write_frame(audio);
  EXPECT_EQ(mux.size(), ts_frame_wire_size(audio));
}

TEST(TsDemuxer, PmtAnnouncesPids) {
  TsMuxer mux;
  mux.write_psi();
  TsDemuxer demux([](const TsPesUnit&) {});
  ASSERT_TRUE(demux.feed(mux.take()));
  ASSERT_TRUE(demux.video_pid().has_value());
  ASSERT_TRUE(demux.audio_pid().has_value());
  EXPECT_EQ(*demux.video_pid(), kTsPidVideo);
  EXPECT_EQ(*demux.audio_pid(), kTsPidAudio);
}

TEST(TsDemuxer, PesRoundTrip) {
  TsMuxer mux;
  mux.write_psi();
  mux.write_frame({TagType::kVideo, VideoKind::kKey, 20'000,
                   milliseconds(500)});
  mux.write_frame({TagType::kAudio, VideoKind::kKey, 330,
                   milliseconds(510)});
  mux.write_frame({TagType::kVideo, VideoKind::kInter, 4'000,
                   milliseconds(540)});
  // A trailing frame forces emission of the (length-0) video PES before it.
  mux.write_frame({TagType::kVideo, VideoKind::kInter, 100,
                   milliseconds(580)});
  const auto bytes = mux.take();

  std::vector<TsPesUnit> units;
  TsDemuxer demux([&](const TsPesUnit& u) { units.push_back(u); });
  ASSERT_TRUE(demux.feed(bytes));
  demux.flush();
  ASSERT_EQ(units.size(), 4u);
  // Audio (declared length) completes as soon as its bytes are in; video
  // units complete when the next unit starts on the video PID.
  const auto& audio = units[0];
  EXPECT_EQ(audio.pid, kTsPidAudio);
  EXPECT_EQ(audio.payload.size(), 330u);

  const TsPesUnit* key = nullptr;
  for (const auto& u : units) {
    if (u.pid == kTsPidVideo && u.random_access) key = &u;
  }
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(key->payload.size(), 20'000u);
  ASSERT_TRUE(key->pts.has_value());
  EXPECT_NEAR(to_ms(*key->pts), 500.0, 0.1);
}

TEST(TsDemuxer, ByteAtATime) {
  TsMuxer mux;
  mux.write_psi();
  mux.write_frame({TagType::kVideo, VideoKind::kKey, 5'000, 0});
  mux.write_frame({TagType::kVideo, VideoKind::kInter, 500,
                   milliseconds(40)});
  const auto bytes = mux.take();
  size_t units = 0;
  TsDemuxer demux([&](const TsPesUnit&) { units++; });
  for (uint8_t b : bytes) {
    ASSERT_TRUE(demux.feed(std::span<const uint8_t>(&b, 1)));
  }
  demux.flush();
  EXPECT_EQ(units, 2u);
}

TEST(TsDemuxer, LostSyncFails) {
  std::vector<uint8_t> junk(kTsPacketSize, 0x00);
  TsDemuxer demux([](const TsPesUnit&) {});
  EXPECT_FALSE(demux.feed(junk));
  EXPECT_TRUE(demux.failed());
}

TEST(TsStream, JoinChunksStartWithPsi) {
  LiveStream s(ts_profile(), 5);
  const auto chunks = s.join_chunks(milliseconds(300));
  ASSERT_FALSE(chunks.empty());
  ASSERT_GE(chunks[0].bytes.size(), kTsPsiSize);
  EXPECT_EQ(chunks[0].bytes[0], kTsSyncByte);
  EXPECT_EQ(chunks[0].bytes[kTsPacketSize], kTsSyncByte);
}

TEST(TsStream, WholeStreamDemuxes) {
  LiveStream s(ts_profile(3), 9);
  const auto bytes = ts_join_bytes(s, s.gop_duration() + milliseconds(700));
  size_t video_units = 0;
  TsDemuxer demux([&](const TsPesUnit& u) {
    if (u.pid == kTsPidVideo) video_units++;
  });
  ASSERT_TRUE(demux.feed(bytes));
  EXPECT_GT(video_units, 25u);
}

TEST(TsFrameParser, SniffsMpegTs) {
  LiveStream s(ts_profile(), 5);
  core::FrameParser parser;
  parser.feed(ts_join_bytes(s, 0, milliseconds(200)));
  EXPECT_EQ(parser.protocol(), core::ProtocolType::kMpegTs);
  EXPECT_FALSE(parser.failed());
}

class TsTheta : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TsTheta, FfSizeMatchesGroundTruth) {
  const uint32_t theta = GetParam();
  LiveStream s(ts_profile(11), 21);
  const TimeNs join = milliseconds(160);
  core::FrameParser parser(core::FrameParser::Config{.theta_vf = theta});
  auto ff = parser.feed(ts_join_bytes(s, join, seconds(3)));
  ASSERT_TRUE(ff.has_value());
  EXPECT_EQ(*ff, s.first_frame_size(join, theta));
  EXPECT_EQ(parser.video_frames_seen(), theta);
}

INSTANTIATE_TEST_SUITE_P(PlaybackConditions, TsTheta,
                         ::testing::Values(1u, 2u, 3u, 5u));

TEST(TsFrameParser, IncrementalFeedMatchesWhole) {
  LiveStream s(ts_profile(2), 4);
  const auto bytes = ts_join_bytes(s, 0);
  core::FrameParser whole;
  const auto expected = whole.feed(bytes);
  ASSERT_TRUE(expected.has_value());

  core::FrameParser dribble;
  std::optional<uint64_t> got;
  for (size_t i = 0; i < bytes.size(); i += 61) {  // awkward chunking
    const size_t n = std::min<size_t>(61, bytes.size() - i);
    if (auto r = dribble.feed({bytes.data() + i, n})) got = r;
  }
  EXPECT_EQ(got, expected);
}

TEST(TsFrameParser, BuffersAtMostOneCell) {
  LiveStream s(ts_profile(2), 4);
  const auto bytes = ts_join_bytes(s, 0, milliseconds(500));
  core::FrameParser parser;
  size_t max_buffered = 0;
  for (size_t i = 0; i < bytes.size(); i += 17) {
    const size_t n = std::min<size_t>(17, bytes.size() - i);
    parser.feed({bytes.data() + i, n});
    max_buffered = std::max(max_buffered, parser.bytes_buffered());
  }
  EXPECT_LE(max_buffered, kTsPacketSize);
}

TEST(TsSession, EndToEndOverTsContainer) {
  exp::SessionConfig cfg;
  cfg.path.bandwidth = mbps(20);
  cfg.path.rtt = milliseconds(40);
  cfg.path.loss_rate = 0.0;
  cfg.path.buffer_bytes = 128 * 1024;
  cfg.stream = ts_profile(1);
  cfg.scheme = core::Scheme::kWira;
  core::HxQosRecord cookie;
  cookie.min_rtt = milliseconds(40);
  cookie.max_bw = mbps(20);
  cookie.server_timestamp = 0;
  cfg.cookie = cookie;
  cfg.start_time = minutes(2);
  cfg.seed = 7;

  const auto r = exp::run_session(cfg);
  ASSERT_TRUE(r.first_frame_completed);
  EXPECT_GT(r.ff_size, 30'000u);
  EXPECT_TRUE(r.init.used_ff_size);
  EXPECT_TRUE(r.init.used_hx_qos);
  EXPECT_LT(to_ms(r.ffct), 1000.0);
}

TEST(TsSession, WiraBeatsUndersizedWindowOnTs) {
  // Same sanity as Fig. 2(a), but over the TS container: an init_cwnd far
  // below FF_Size costs extra RTTs.
  exp::ManualInitConfig small;
  small.stream = ts_profile(1);
  small.path.loss_rate = 0;
  small.init_cwnd_bytes = 4 * 1460;
  small.init_pacing = mbps(8);
  exp::ManualInitConfig adapted = small;
  adapted.init_cwnd_bytes = 60'000;
  const auto r_small = exp::run_manual_init_session(small);
  const auto r_adapted = exp::run_manual_init_session(adapted);
  ASSERT_TRUE(r_small.first_frame_completed);
  ASSERT_TRUE(r_adapted.first_frame_completed);
  EXPECT_GT(r_small.ffct, r_adapted.ffct);
}

}  // namespace
}  // namespace wira::media
