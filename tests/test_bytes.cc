// Unit tests for the serialization buffers (util/bytes).
#include "util/bytes.h"

#include <gtest/gtest.h>

namespace wira {
namespace {

TEST(ByteWriter, FixedWidthBigEndian) {
  ByteWriter w;
  w.u8(0x01);
  w.u16be(0x0203);
  w.u24be(0x040506);
  w.u32be(0x0708090A);
  EXPECT_EQ(to_hex(w.span()), "0102030405060708090a");
}

TEST(ByteWriter, FixedWidthLittleEndian) {
  ByteWriter w;
  w.u16le(0x0201);
  w.u32le(0x06050403);
  w.u64le(0x0E0D0C0B0A090807ull);
  EXPECT_EQ(to_hex(w.span()), "0102030405060708090a0b0c0d0e");
}

TEST(ByteRoundTrip, AllWidths) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16be(0xBEEF);
  w.u24be(0xC0FFEE);
  w.u32be(0xDEADBEEF);
  w.u64be(0x0123456789ABCDEFull);
  w.u16le(0xBEEF);
  w.u32le(0xDEADBEEF);
  w.u64le(0x0123456789ABCDEFull);
  w.f64be(3.14159);

  ByteReader r(w.span());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16be(), 0xBEEF);
  EXPECT_EQ(r.u24be(), 0xC0FFEEu);
  EXPECT_EQ(r.u32be(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64be(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.u16le(), 0xBEEF);
  EXPECT_EQ(r.u32le(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64le(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64be(), 3.14159);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.empty());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  ByteWriter w;
  w.varint(GetParam());
  ByteReader r(w.span());
  EXPECT_EQ(r.varint(), GetParam());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 63ull, 64ull, 16383ull, 16384ull,
                      1073741823ull, 1073741824ull,
                      0x3FFFFFFFFFFFFFFFull));

TEST(VarintSizes, MatchRfc9000Classes) {
  auto size_of = [](uint64_t v) {
    ByteWriter w;
    w.varint(v);
    return w.size();
  };
  EXPECT_EQ(size_of(63), 1u);
  EXPECT_EQ(size_of(64), 2u);
  EXPECT_EQ(size_of(16383), 2u);
  EXPECT_EQ(size_of(16384), 4u);
  EXPECT_EQ(size_of(1073741823), 4u);
  EXPECT_EQ(size_of(1073741824), 8u);
}

TEST(ByteReader, ErrorLatchesOnTruncation) {
  const uint8_t buf[] = {0x01, 0x02};
  ByteReader r(buf, sizeof(buf));
  EXPECT_EQ(r.u32be(), 0u);
  EXPECT_FALSE(r.ok());
  // Once failed, stays failed even for reads that would fit.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, BytesAndSkip) {
  const uint8_t buf[] = {1, 2, 3, 4, 5};
  ByteReader r(buf, sizeof(buf));
  EXPECT_TRUE(r.skip(2));
  auto s = r.bytes(2);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_FALSE(r.skip(2));
}

TEST(ByteWriter, PatchBackfillsLengths) {
  ByteWriter w;
  w.u24be(0);
  w.u32be(0);
  w.str("payload");
  w.patch_u24be(0, 0xABCDEF);
  w.patch_u32be(3, 0x01020304);
  ByteReader r(w.span());
  EXPECT_EQ(r.u24be(), 0xABCDEFu);
  EXPECT_EQ(r.u32be(), 0x01020304u);
}

TEST(Hex, RoundTripAndSeparators) {
  const std::vector<uint8_t> data = {0x00, 0xFF, 0x10, 0xAB};
  EXPECT_EQ(to_hex(data), "00ff10ab");
  EXPECT_EQ(from_hex("00ff10ab"), data);
  EXPECT_EQ(from_hex("00:ff 10:AB"), data);
}

}  // namespace
}  // namespace wira
