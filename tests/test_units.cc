// Unit tests for time/bandwidth unit helpers.
#include "util/units.h"

#include <gtest/gtest.h>

namespace wira {
namespace {

TEST(Units, TimeConstructorsCompose) {
  EXPECT_EQ(microseconds(1), nanoseconds(1000));
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_EQ(minutes(1), seconds(60));
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_us(microseconds(7)), 7.0);
  EXPECT_EQ(from_seconds(1.5), milliseconds(1500));
}

TEST(Units, BandwidthConstructors) {
  EXPECT_EQ(mbps(8), 1'000'000u);  // 8 Mbit/s = 1 MB/s
  EXPECT_EQ(kbps(800), 100'000u);
  EXPECT_DOUBLE_EQ(to_mbps(mbps(20)), 20.0);
  EXPECT_EQ(mbps_f(0.8), 100'000u);
}

TEST(Units, TransferTime) {
  // 1 MB at 1 MB/s takes 1 second.
  EXPECT_EQ(transfer_time(1'000'000, mbps(8)), seconds(1));
  // 1460 B at 8 Mbps = 1.46 ms.
  EXPECT_EQ(transfer_time(1460, mbps(8)), microseconds(1460));
}

TEST(Units, BdpBytes) {
  // The paper's Fig. 2 testbed: 8 Mbps x 50 ms = 50 KB.
  EXPECT_EQ(bdp_bytes(mbps(8), milliseconds(50)), 50'000u);
  EXPECT_EQ(bdp_bytes(mbps(20), milliseconds(40)), 100'000u);
}

TEST(Units, DeliveryRate) {
  EXPECT_EQ(delivery_rate(100'000, milliseconds(100)), 1'000'000u);
  EXPECT_EQ(delivery_rate(1, 0), 0u);
  EXPECT_EQ(delivery_rate(1, -5), 0u);
}

TEST(Units, TransferTimeLargeValuesNoOverflow) {
  // 10 GB at 1 Gbps: ~80 s; must not overflow 64-bit intermediate math.
  const uint64_t ten_gb = 10ull * 1000 * 1000 * 1000;
  EXPECT_EQ(transfer_time(ten_gb, mbps(1000)), seconds(80));
}

}  // namespace
}  // namespace wira
