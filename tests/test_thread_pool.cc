// Unit tests for the worker pool: execution, shutdown, exception
// propagation, and parallel_for coverage.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace wira::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { count++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueueBeforeJoining) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { count++; });
    }
  }  // ~ThreadPool must run every queued task, then join
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The worker survives the throwing task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](size_t i) {
                          if (i == 17) throw std::runtime_error("bad index");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForUsesMultipleThreads) {
  ThreadPool pool(4);
  std::set<std::thread::id> ids;
  std::mutex mu;
  pool.parallel_for(64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPool, ZeroRequestedThreadsMeansHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ClampThreads) {
  EXPECT_EQ(ThreadPool::clamp_threads(8, 3), 3u);
  EXPECT_EQ(ThreadPool::clamp_threads(2, 100), 2u);
  EXPECT_GE(ThreadPool::clamp_threads(0, 100), 1u);
  EXPECT_EQ(ThreadPool::clamp_threads(4, 0), 1u);
}

}  // namespace
}  // namespace wira::util
