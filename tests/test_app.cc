// Application-layer integration tests: WiraServer + PlayerClient wired
// directly (no exp harness), covering the seams the session runner hides —
// corner case 1 timing, adversarial cookies, scheme plumbing, cookie
// lifecycle, playback conditions.
#include <gtest/gtest.h>

#include "app/player_client.h"
#include "app/wira_server.h"
#include "media/stream_source.h"
#include "sim/path.h"

namespace wira::app {
namespace {

struct Rig {
  sim::EventLoop loop;
  std::unique_ptr<sim::Path> path;
  media::LiveStream stream;
  std::unique_ptr<WiraServer> server;
  ClientCache cache;
  std::unique_ptr<PlayerClient> client;

  explicit Rig(ServerConfig server_cfg = {}, ClientConfig client_cfg = {},
               sim::PathConfig path_cfg = {})
      : stream(
            [] {
              media::StreamProfile p;
              p.stream_id = 1;
              p.iframe_mean_bytes = 50'000;
              p.iframe_intra_cv = 0.05;
              return p;
            }(),
            7) {
    path_cfg.loss_rate = 0;
    path = std::make_unique<sim::Path>(loop, path_cfg, 3);
    if (server_cfg.master_key == crypto::Key{}) {
      server_cfg.master_key = crypto::key_from_string("test-master");
    }
    server_cfg.expected_od_key = core::od_pair_key(
        client_cfg.client_id, client_cfg.server_id, client_cfg.network_type);
    server = std::make_unique<WiraServer>(
        loop, stream, server_cfg, [this](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          path->forward().send(std::move(dg));
        });
    client = std::make_unique<PlayerClient>(
        loop, client_cfg, cache, [this](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          path->reverse().send(std::move(dg));
        });
    path->forward().set_receiver([this](std::span<sim::Datagram> batch) {
      for (sim::Datagram& d : batch) client->on_datagram(d.payload);
    });
    path->reverse().set_receiver([this](std::span<sim::Datagram> batch) {
      for (sim::Datagram& d : batch) server->on_datagram(d.payload);
    });
  }

  void prime_zero_rtt(uint64_t server_id = 1) {
    cache.server_configs[server_id] = server->server_config_id();
  }
};

TEST(App, ParserSeesFlvAndReportsFfSize) {
  Rig rig;
  rig.prime_zero_rtt();
  rig.client->start();
  rig.loop.run_until(seconds(3));
  EXPECT_TRUE(rig.server->parser().complete());
  EXPECT_EQ(rig.server->parser().protocol(), core::ProtocolType::kFlv);
  EXPECT_GT(rig.server->parser().ff_size(), 40'000u);
  EXPECT_TRUE(rig.client->metrics().first_frame_done());
}

TEST(App, CornerCase1InitHappensTwice) {
  // With origin latency, header bytes reach L4 before the I frame: the
  // first apply_init runs with ff_pending, the second with the parsed
  // size.  We verify the end state reflects the parsed FF_Size.
  ServerConfig cfg;
  cfg.scheme = core::Scheme::kWiraFF;
  cfg.origin_latency = milliseconds(20);
  Rig rig(cfg);
  rig.prime_zero_rtt();
  rig.client->start();
  rig.loop.run_until(seconds(3));
  EXPECT_TRUE(rig.server->last_init().used_ff_size);
  EXPECT_FALSE(rig.server->last_init().ff_pending);
  EXPECT_EQ(rig.server->last_init().init_cwnd,
            rig.server->parser().ff_size());
}

TEST(App, BaselineSchemeIgnoresSignals) {
  ServerConfig cfg;
  cfg.scheme = core::Scheme::kBaseline;
  cfg.defaults.init_cwnd_exp = 43'000;
  Rig rig(cfg);
  rig.prime_zero_rtt();
  rig.client->start();
  rig.loop.run_until(seconds(3));
  EXPECT_EQ(rig.server->last_init().init_cwnd, 43'000u);
  EXPECT_FALSE(rig.server->last_init().used_ff_size);
  EXPECT_FALSE(rig.server->last_init().used_hx_qos);
}

TEST(App, ForgedCookieIsRejectedAndFallsBack) {
  ServerConfig cfg;
  cfg.scheme = core::Scheme::kWira;
  Rig rig(cfg);
  rig.prime_zero_rtt();
  // Client presents random bytes as a "cookie" (a hostile client trying
  // to claim a huge MaxBW).
  rig.cache.cookies.store(rig.client->od_key(),
                          std::vector<uint8_t>(48, 0xEE), 0);
  rig.client->start();
  rig.loop.run_until(seconds(3));
  EXPECT_FALSE(rig.server->received_cookie().has_value());
  EXPECT_FALSE(rig.server->last_init().used_hx_qos);
  EXPECT_TRUE(rig.client->metrics().first_frame_done());  // fail-closed
}

TEST(App, CookieFromWrongOdPairRejected) {
  ServerConfig cfg;
  cfg.scheme = core::Scheme::kWira;
  Rig rig(cfg);
  rig.prime_zero_rtt();
  // Seal a genuine cookie but bound to a different OD pair.
  core::CookieSealer sealer(crypto::key_from_string("test-master"));
  core::HxQosRecord rec;
  rec.min_rtt = milliseconds(40);
  rec.max_bw = mbps(50);
  rec.server_timestamp = 0;
  rec.od_key = core::od_pair_key(999, 999, 0);
  rig.cache.cookies.store(rig.client->od_key(), sealer.seal(rec), 0);
  rig.client->start();
  rig.loop.run_until(seconds(3));
  EXPECT_FALSE(rig.server->received_cookie().has_value());
}

TEST(App, GenuineCookieIsUsed) {
  ServerConfig cfg;
  cfg.scheme = core::Scheme::kWira;
  Rig rig(cfg);
  rig.prime_zero_rtt();
  core::CookieSealer sealer(crypto::key_from_string("test-master"));
  core::HxQosRecord rec;
  rec.min_rtt = milliseconds(40);
  rec.max_bw = mbps(9);
  rec.server_timestamp = 0;
  rec.od_key = rig.client->od_key();
  rig.cache.cookies.store(rig.client->od_key(), sealer.seal(rec), 0);
  rig.client->start();
  rig.loop.run_until(seconds(3));
  ASSERT_TRUE(rig.server->received_cookie().has_value());
  EXPECT_EQ(rig.server->received_cookie()->max_bw, mbps(9));
  EXPECT_TRUE(rig.server->last_init().used_hx_qos);
  EXPECT_EQ(rig.server->last_init().init_pacing, mbps(9));
}

TEST(App, ClientWithoutCookieSupportGetsNoSync) {
  ClientConfig ccfg;
  ccfg.supports_cookie_sync = false;
  Rig rig({}, ccfg);
  rig.prime_zero_rtt();
  rig.client->start();
  rig.loop.run_until(seconds(8));
  // Server still streams; client ends with no cookies.
  EXPECT_TRUE(rig.client->metrics().first_frame_done());
  EXPECT_EQ(rig.cache.cookies.size(), 0u);
}

TEST(App, CookieSyncUpdatesClientStore) {
  Rig rig;
  rig.prime_zero_rtt();
  rig.client->start();
  rig.loop.run_until(seconds(8));
  EXPECT_GT(rig.server->cookies_synced(), 1u);
  ASSERT_EQ(rig.cache.cookies.size(), 1u);
  auto entry = rig.cache.cookies.lookup(rig.client->od_key());
  ASSERT_TRUE(entry.has_value());
  // The synced blob opens under the server's sealer and carries the
  // session's measured QoS.
  core::CookieSealer sealer(crypto::key_from_string("test-master"));
  auto rec = sealer.open(entry->sealed);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->valid());
  EXPECT_EQ(rec->od_key, rig.client->od_key());
  EXPECT_NEAR(to_ms(rec->min_rtt), 50.0, 10.0);  // default path RTT
}

TEST(App, ThetaVfChangesPlaybackCondition) {
  ServerConfig scfg;
  scfg.theta_vf = 3;
  ClientConfig ccfg;
  ccfg.theta_vf = 3;
  Rig rig(scfg, ccfg);
  rig.prime_zero_rtt();
  rig.client->start();
  rig.loop.run_until(seconds(3));
  ASSERT_TRUE(rig.server->parser().complete());
  EXPECT_EQ(rig.server->parser().video_frames_seen(), 3u);
  EXPECT_EQ(rig.server->parser().ff_size(),
            rig.stream.first_frame_size(
                rig.client->metrics().request_sent_at, 3));
}

TEST(App, ManualInitOverrideBypassesScheme) {
  ServerConfig cfg;
  cfg.scheme = core::Scheme::kWira;
  cfg.manual_init = ServerConfig::ManualInit{99'000, mbps(5)};
  Rig rig(cfg);
  rig.prime_zero_rtt();
  rig.client->start();
  rig.loop.run_until(seconds(3));
  EXPECT_EQ(rig.server->last_init().init_cwnd, 99'000u);
  EXPECT_EQ(rig.server->last_init().init_pacing, mbps(5));
}

TEST(App, OneRttClientCachesServerConfig) {
  Rig rig;  // no prime: 1-RTT
  rig.client->start();
  rig.loop.run_until(seconds(3));
  EXPECT_TRUE(rig.client->metrics().first_frame_done());
  EXPECT_FALSE(rig.client->metrics().zero_rtt);
  // The REJ's server config is now cached for next time.
  EXPECT_EQ(rig.cache.server_configs.count(1), 1u);
  EXPECT_EQ(rig.cache.server_configs[1], rig.server->server_config_id());
}

TEST(App, FirstFrameBytesMatchParserFfSize) {
  Rig rig;
  rig.prime_zero_rtt();
  rig.client->start();
  rig.loop.run_until(seconds(3));
  ASSERT_TRUE(rig.client->metrics().first_frame_done());
  // The client's demuxer position at frame 1 equals the parser's FF_Size
  // minus the final PreviousTagSize field (the demuxer callback fires at
  // the end of the tag body; Algorithm 1 counts the trailing field too).
  EXPECT_EQ(rig.client->metrics().first_frame_bytes +
                media::kFlvPreviousTagSize,
            rig.server->parser().ff_size());
}

}  // namespace
}  // namespace wira::app
