// Tests for the shared-bottleneck topology and the multi-session edge.
#include "sim/topology.h"

#include <gtest/gtest.h>

#include "app/edge.h"
#include "app/player_client.h"

namespace wira::sim {
namespace {

Datagram dgram(size_t size) {
  Datagram d;
  d.payload.resize(size);
  d.size = size;
  return d;
}

TEST(SharedBottleneck, RoutesToCorrectLeg) {
  EventLoop loop;
  LinkConfig egress;
  egress.rate = mbps(100);
  egress.delay = 0;
  SharedBottleneck net(loop, egress, 1);
  LinkConfig access;
  access.rate = mbps(100);
  access.delay = 0;
  const size_t a = net.add_leg(access);
  const size_t b = net.add_leg(access);

  int got_a = 0, got_b = 0;
  net.set_client_receiver(
      a, [&](std::span<Datagram> batch) { got_a += batch.size(); });
  net.set_client_receiver(
      b, [&](std::span<Datagram> batch) { got_b += batch.size(); });
  net.send_to_client(a, dgram(100));
  net.send_to_client(b, dgram(100));
  net.send_to_client(b, dgram(100));
  loop.run();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 2);
}

TEST(SharedBottleneck, EgressQueueSharedAcrossLegs) {
  EventLoop loop;
  LinkConfig egress;
  egress.rate = mbps(8);  // 1 ms per 1000 B
  egress.delay = 0;
  SharedBottleneck net(loop, egress, 1);
  LinkConfig access;
  access.rate = mbps(1000);
  access.delay = 0;
  const size_t a = net.add_leg(access);
  const size_t b = net.add_leg(access);

  std::vector<TimeNs> arrivals;
  const auto stamp = [&](std::span<Datagram> batch) {
    for (size_t i = 0; i < batch.size(); ++i) arrivals.push_back(loop.now());
  };
  net.set_client_receiver(a, stamp);
  net.set_client_receiver(b, stamp);
  // Two packets to different legs must serialize one after another on the
  // shared egress.
  net.send_to_client(a, dgram(1000));
  net.send_to_client(b, dgram(1000));
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1] - arrivals[0], microseconds(900));
}

TEST(SharedBottleneck, ReversePathReachesServer) {
  EventLoop loop;
  SharedBottleneck net(loop, {}, 1);
  const size_t leg = net.add_leg({});
  int got = 0;
  net.set_server_receiver(
      [&](std::span<Datagram> batch) { got += batch.size(); });
  net.send_to_server(leg, dgram(50));
  loop.run();
  EXPECT_EQ(got, 1);
}

TEST(WiraEdge, DemultiplexesByConnectionId) {
  EventLoop loop;
  media::StreamProfile profile;
  profile.iframe_mean_bytes = 30'000;
  profile.iframe_intra_cv = 0.05;
  media::LiveStream stream(profile, 1);
  app::ServerConfig base;
  base.master_key = crypto::key_from_string("edge-test");
  app::WiraEdge edge(loop, stream, base);

  LinkConfig egress;
  egress.rate = mbps(100);
  SharedBottleneck net(loop, egress, 2);
  net.set_server_receiver([&edge](std::span<Datagram> batch) {
    for (Datagram& d : batch) edge.on_datagram(d.payload);
  });

  struct V {
    std::unique_ptr<app::PlayerClient> client;
    app::ClientCache cache;
  };
  std::vector<V> viewers(3);
  for (int i = 0; i < 3; ++i) {
    const size_t leg = net.add_leg({});
    const quic::ConnectionId id = 10 + static_cast<uint64_t>(i);
    auto& server = edge.add_session(
        id,
        [&net, leg](std::vector<uint8_t> d) {
          Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          net.send_to_client(leg, std::move(dg));
        },
        core::od_pair_key(id, 7, 0));
    app::ClientConfig ccfg;
    ccfg.client_id = id;
    ccfg.server_id = 7;
    ccfg.conn_id = id;
    viewers[static_cast<size_t>(i)].client =
        std::make_unique<app::PlayerClient>(
            loop, ccfg, viewers[static_cast<size_t>(i)].cache,
            [&net, leg](std::vector<uint8_t> d) {
              Datagram dg;
              dg.size = d.size();
              dg.payload = std::move(d);
              net.send_to_server(leg, std::move(dg));
            });
    net.set_client_receiver(
        leg, [c = viewers[static_cast<size_t>(i)].client.get()](
                 std::span<Datagram> batch) {
          for (Datagram& d : batch) c->on_datagram(d.payload);
        });
    viewers[static_cast<size_t>(i)].cache.server_configs[7] =
        server.server_config_id();
  }

  for (auto& v : viewers) v.client->start();
  loop.run_until(seconds(5));

  EXPECT_EQ(edge.session_count(), 3u);
  for (auto& v : viewers) {
    EXPECT_TRUE(v.client->metrics().first_frame_done());
  }
}

TEST(WiraEdge, IgnoresUnknownConnectionAndRunts) {
  EventLoop loop;
  media::StreamProfile profile;
  media::LiveStream stream(profile, 1);
  app::WiraEdge edge(loop, stream, {});
  const uint8_t runt[] = {0x01, 0x02};
  edge.on_datagram(std::span<const uint8_t>(runt, 2));
  const uint8_t unknown[16] = {0x01};
  edge.on_datagram(std::span<const uint8_t>(unknown, 16));
  SUCCEED();
}

}  // namespace
}  // namespace wira::sim
