// Tests for the beyond-the-paper extensions: the kLossRate cookie triple,
// the user-group initialization strawman, and loss-aware Wira+.
#include <gtest/gtest.h>

#include "core/init_config.h"
#include "core/transport_cookie.h"
#include "exp/population_experiment.h"
#include "popgen/population.h"

namespace wira::core {
namespace {

HxQosRecord cookie(Bandwidth bw = mbps(10), TimeNs rtt = milliseconds(50),
                   double loss = 0.0) {
  HxQosRecord r;
  r.max_bw = bw;
  r.min_rtt = rtt;
  r.server_timestamp = 0;
  r.loss_rate = loss;
  return r;
}

InitInputs inputs(std::optional<uint64_t> ff, std::optional<HxQosRecord> hx,
                  std::optional<HxQosRecord> ug = std::nullopt) {
  InitInputs in;
  in.ff_size = ff;
  in.hx_qos = hx;
  in.ug_qos = ug;
  in.now = minutes(5);
  return in;
}

TEST(LossTriple, RoundTripsThroughCookie) {
  HxQosRecord r = cookie(mbps(7), milliseconds(80), 0.042);
  r.od_key = 123;
  auto out = decode_hxqos_triples(encode_hxqos_triples(r));
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(out->loss_rate, 0.042, 0.001);  // per-mille quantization

  CookieSealer sealer(crypto::key_from_string("x"));
  auto sealed_out = sealer.open(sealer.seal(r));
  ASSERT_TRUE(sealed_out.has_value());
  EXPECT_NEAR(sealed_out->loss_rate, 0.042, 0.001);
}

TEST(LossTriple, ZeroLossOmitted) {
  HxQosRecord r = cookie();
  auto out = decode_hxqos_triples(encode_hxqos_triples(r));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->loss_rate, 0.0);
}

TEST(UserGroupScheme, UsesGroupAverage) {
  ExperiencedDefaults d;
  const auto ug = cookie(mbps(16), milliseconds(60));
  const auto dec = compute_init(Scheme::kUserGroup,
                                inputs(66'000, cookie(), ug), d);
  EXPECT_EQ(dec.init_pacing, mbps(16));
  EXPECT_EQ(dec.init_cwnd, bdp_bytes(mbps(16), milliseconds(60)));
  // Group scheme ignores both per-flow signals.
  EXPECT_FALSE(dec.used_ff_size);
  EXPECT_FALSE(dec.used_hx_qos);
}

TEST(UserGroupScheme, FallsBackToDefaultsWithoutGroupData) {
  ExperiencedDefaults d;
  const auto dec =
      compute_init(Scheme::kUserGroup, inputs(66'000, cookie()), d);
  EXPECT_EQ(dec.init_cwnd, d.init_cwnd_exp);
}

TEST(WiraPlus, DiscountsPacingByHistoricalLoss) {
  ExperiencedDefaults d;
  // 5% historical loss -> 10% discount.
  const auto lossy = compute_init(
      Scheme::kWiraPlus, inputs(66'000, cookie(mbps(10), milliseconds(50),
                                                0.05)), d);
  EXPECT_EQ(lossy.init_pacing,
            static_cast<Bandwidth>(0.9 * static_cast<double>(mbps(10))));
  // Clean history -> identical to Wira.
  const auto clean = compute_init(Scheme::kWiraPlus,
                                  inputs(66'000, cookie()), d);
  const auto wira = compute_init(Scheme::kWira, inputs(66'000, cookie()), d);
  EXPECT_EQ(clean.init_pacing, wira.init_pacing);
  EXPECT_EQ(clean.init_cwnd, wira.init_cwnd);
}

TEST(WiraPlus, DiscountCappedAt30Percent) {
  ExperiencedDefaults d;
  const auto dec = compute_init(
      Scheme::kWiraPlus,
      inputs(66'000, cookie(mbps(10), milliseconds(50), 0.5)), d);
  EXPECT_EQ(dec.init_pacing,
            static_cast<Bandwidth>(0.7 * static_cast<double>(mbps(10))));
}

TEST(GroupAverageQos, IsDeterministicAndPlausible) {
  popgen::Population pop(3, 16);
  const auto a = pop.group_average_qos(5);
  const auto b = pop.group_average_qos(5);
  EXPECT_EQ(a.mean_rtt, b.mean_rtt);
  EXPECT_EQ(a.mean_bw, b.mean_bw);
  // The average should sit near the group's configured means.
  const auto& g = pop.groups()[5];
  EXPECT_NEAR(to_ms(a.mean_rtt), g.rtt_mean_ms, g.rtt_mean_ms * 0.5);
  EXPECT_NEAR(to_mbps(a.mean_bw), g.bw_mean_mbps, g.bw_mean_mbps * 0.6);
}

TEST(UserGroupScheme, EndToEndPopulationRun) {
  exp::PopulationConfig cfg;
  cfg.sessions = 6;
  cfg.seed = 4;
  cfg.schemes = {core::Scheme::kUserGroup, core::Scheme::kWiraPlus};
  const auto records = exp::run_population(cfg);
  size_t done = 0;
  for (const auto& r : records) {
    for (const auto& [s, res] : r.results) done += res.first_frame_completed;
  }
  EXPECT_GE(done, 10u);
}

}  // namespace
}  // namespace wira::core
