// Remaining edge cases across modules: double close, zero-length writes,
// large offsets, empty ack sets, and small API contracts.
#include <gtest/gtest.h>

#include "popgen/population.h"
#include "quic/connection.h"
#include "quic/frames.h"
#include "sim/path.h"
#include "util/stats.h"

namespace wira {
namespace {

TEST(Edges, SamplesAddAll) {
  Samples a;
  a.add(1);
  Samples b;
  b.add_all({2, 3, 4});
  a.add_all(b.values());
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
}

TEST(Edges, BuildAckFromEmptySet) {
  quic::RangeSet empty;
  const auto ack = quic::build_ack(empty, 0);
  EXPECT_EQ(ack.largest_acked, 0u);
  EXPECT_TRUE(ack.ranges.empty());
  EXPECT_FALSE(ack.covers(0));
}

TEST(Edges, SendStreamHugeOffsets) {
  quic::SendStream s(3);
  // 5 MB written in chunks; offsets must stay exact.
  std::vector<uint8_t> chunk(1 << 20, 0x5A);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(s.write(chunk), static_cast<uint64_t>(i) << 20);
  }
  EXPECT_EQ(s.bytes_written(), 5u << 20);
  uint64_t drained = 0;
  while (auto c = s.next_chunk(1400)) drained += c->data.size();
  EXPECT_EQ(drained, 5u << 20);
}

TEST(Edges, ZeroLengthWriteWithoutFinIsNoop) {
  quic::SendStream s(3);
  s.write({}, /*fin=*/false);
  EXPECT_FALSE(s.has_data_to_send());
}

TEST(Edges, ConnectionDoubleCloseIsIdempotent) {
  sim::EventLoop loop;
  int sent = 0;
  quic::Connection conn(loop, {.is_server = true},
                        [&](std::vector<uint8_t>) { sent++; });
  conn.close(1, "first");
  const int after_first = sent;
  conn.close(2, "second");
  EXPECT_EQ(sent, after_first);
  EXPECT_TRUE(conn.closed());
}

TEST(Edges, WriteAfterCloseIgnored) {
  sim::EventLoop loop;
  quic::Connection conn(loop, {.is_server = true},
                        [](std::vector<uint8_t>) {});
  conn.close(0, "bye");
  conn.write_stream(quic::kResponseStream, std::vector<uint8_t>(100), true);
  loop.run_until(seconds(1));
  EXPECT_EQ(conn.stats().stream_bytes_sent, 0u);
}

TEST(Edges, HxQosSendAfterCloseIgnored) {
  sim::EventLoop loop;
  int sent = 0;
  quic::Connection conn(loop, {.is_server = true},
                        [&](std::vector<uint8_t>) { sent++; });
  conn.close(0, "bye");
  const int after_close = sent;
  const std::vector<uint8_t> blob{2};
  conn.send_hxqos(quic::HxQosFrame{1, blob});
  EXPECT_EQ(sent, after_close);
}

TEST(Edges, NetworkTypeNames) {
  using popgen::NetworkType;
  EXPECT_STREQ(popgen::network_type_name(NetworkType::kWifi), "WiFi");
  EXPECT_STREQ(popgen::network_type_name(NetworkType::k3G), "3G");
  EXPECT_STREQ(popgen::network_type_name(NetworkType::k4G), "4G");
  EXPECT_STREQ(popgen::network_type_name(NetworkType::k5G), "5G");
}

TEST(Edges, PaddingFrameRunsCoalesce) {
  // A run of padding bytes parses as one PaddingFrame.
  ByteWriter w;
  quic::serialize_frame(quic::Frame{quic::PaddingFrame{5}}, w);
  w.u8(static_cast<uint8_t>(quic::FrameType::kPing));
  ByteReader r(w.span());
  auto pad = quic::parse_frame(r);
  ASSERT_TRUE(pad.has_value());
  EXPECT_EQ(std::get<quic::PaddingFrame>(*pad).length, 5u);
  auto ping = quic::parse_frame(r);
  ASSERT_TRUE(ping.has_value());
  EXPECT_TRUE(std::holds_alternative<quic::PingFrame>(*ping));
}

TEST(Edges, RecvStreamFinishedFlagOnlyAfterAllBytes) {
  quic::RecvStream s(3);
  s.set_on_data([](std::span<const uint8_t>, bool) {});
  std::vector<uint8_t> tail(10, 1);
  s.on_frame(10, tail, /*fin=*/true);  // fin known, bytes 0-9 missing
  EXPECT_FALSE(s.finished());
  std::vector<uint8_t> head(10, 2);
  s.on_frame(0, head, false);
  EXPECT_TRUE(s.finished());
}

}  // namespace
}  // namespace wira
