// Unit tests for the statistics helpers (mean/percentile/CV/histogram).
#include "util/stats.h"

#include <gtest/gtest.h>

namespace wira {
namespace {

TEST(Samples, BasicMoments) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.4);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Samples, PercentileCacheInvalidatedByAdd) {
  Samples s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);
}

TEST(Samples, PercentileCacheInvalidatedByAddAll) {
  Samples s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);  // populates the sorted cache
  s.add_all({99.0, 50.0});
  EXPECT_DOUBLE_EQ(s.percentile(100), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
}

// Regression: the cache used to be validated by comparing sizes, so
// clearing and refilling with the SAME number of values served stale
// percentiles from the old data.
TEST(Samples, ClearThenRefillSameCountResortsCache) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 1.5);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  s.add(100.0);
  s.add(200.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 150.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 100.0);
}

TEST(Samples, SingleValueCvIsZero) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Histogram, CountsAndCdf) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.cdf(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0, 10, 10);
  h.add(-5);
  h.add(100);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, RejectsEmptyRange) {
  EXPECT_THROW(Histogram(5, 5, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
}

TEST(Format, FmtAndGain) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(158.9), "158.9");
  EXPECT_EQ(fmt_gain(158.9, 142.0), "-10.6%");
  EXPECT_EQ(fmt_gain(100.0, 110.0), "+10.0%");
  EXPECT_EQ(fmt_gain(0.0, 1.0), "n/a");
}

}  // namespace
}  // namespace wira
