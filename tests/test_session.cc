// End-to-end integration tests: full client <-> Wira proxy sessions over
// the emulated path, covering the whole pipeline (handshake, request, FLV
// streaming through Frame Perception, ACK/loss recovery, cookie sync).
#include <gtest/gtest.h>

#include "exp/population_experiment.h"
#include "exp/session_runner.h"

namespace wira::exp {
namespace {

media::StreamProfile default_stream() {
  media::StreamProfile p;
  p.stream_id = 1;
  p.iframe_mean_bytes = 60'000;
  p.iframe_intra_cv = 0.2;
  return p;
}

SessionConfig clean_path_session() {
  SessionConfig cfg;
  cfg.path.bandwidth = mbps(20);
  cfg.path.rtt = milliseconds(40);
  cfg.path.loss_rate = 0.0;
  cfg.path.buffer_bytes = 128 * 1024;
  cfg.stream = default_stream();
  cfg.scheme = core::Scheme::kBaseline;
  cfg.seed = 7;
  return cfg;
}

TEST(Session, ZeroRttBaselineCompletesFirstFrame) {
  SessionConfig cfg = clean_path_session();
  auto r = run_session(cfg);
  ASSERT_TRUE(r.first_frame_completed);
  EXPECT_TRUE(r.zero_rtt);
  EXPECT_GT(r.ffct, 0);
  EXPECT_LT(r.ffct, seconds(2));
  // Parser must have seen the first frame.
  EXPECT_GT(r.ff_size, 10'000u);
}

TEST(Session, OneRttHandshakeMeasuresRtt) {
  SessionConfig cfg = clean_path_session();
  cfg.zero_rtt = false;
  auto r = run_session(cfg);
  ASSERT_TRUE(r.first_frame_completed);
  EXPECT_FALSE(r.zero_rtt);
  // Handshake RTT should be close to the configured path RTT.
  ASSERT_NE(r.server_stats.handshake_rtt, kNoTime);
  EXPECT_NEAR(to_ms(r.server_stats.handshake_rtt), 40.0, 10.0);
}

TEST(Session, AllFourFramesComplete) {
  SessionConfig cfg = clean_path_session();
  auto r = run_session(cfg);
  ASSERT_EQ(r.frames.size(), 4u);
  TimeNs prev = 0;
  for (const auto& f : r.frames) {
    ASSERT_NE(f.completion, kNoTime);
    EXPECT_GE(f.completion, prev);  // monotone completion order
    prev = f.completion;
  }
}

TEST(Session, CookieSyncDeliversCookiesToClient) {
  SessionConfig cfg = clean_path_session();
  cfg.max_session_time = seconds(8);
  auto r = run_session(cfg);
  EXPECT_GT(r.cookies_synced, 0u);
  EXPECT_GT(r.client_cookies_received, 0u);
}

TEST(Session, WiraUsesCookieAndFfSize) {
  SessionConfig cfg = clean_path_session();
  cfg.scheme = core::Scheme::kWira;
  core::HxQosRecord cookie;
  cookie.min_rtt = milliseconds(40);
  cookie.max_bw = mbps(20);
  cookie.server_timestamp = 0;
  cfg.cookie = cookie;
  cfg.start_time = minutes(5);  // cookie 5 min old: fresh
  auto r = run_session(cfg);
  ASSERT_TRUE(r.first_frame_completed);
  EXPECT_TRUE(r.init.used_hx_qos);
  EXPECT_FALSE(r.init.hx_stale);
  EXPECT_EQ(r.init.init_pacing, mbps(20));
  // Eq. 3: min(FF_Size, BDP); BDP = 20 Mbps * 40 ms = 100 KB > FF_Size.
  EXPECT_EQ(r.init.init_cwnd, r.ff_size);
}

TEST(Session, StaleCookieTriggersCornerCase2) {
  SessionConfig cfg = clean_path_session();
  cfg.scheme = core::Scheme::kWira;
  core::HxQosRecord cookie;
  cookie.min_rtt = milliseconds(40);
  cookie.max_bw = mbps(20);
  cookie.server_timestamp = 0;
  cfg.cookie = cookie;
  cfg.start_time = minutes(90);  // cookie 90 min old: past Delta = 60 min
  auto r = run_session(cfg);
  ASSERT_TRUE(r.first_frame_completed);
  EXPECT_FALSE(r.init.used_hx_qos);
  EXPECT_TRUE(r.init.hx_stale);
  // Corner case 2: init_cwnd = FF_Size.
  EXPECT_EQ(r.init.init_cwnd, r.ff_size);
}

TEST(Session, LossyPathStillCompletes) {
  SessionConfig cfg = clean_path_session();
  cfg.path = sim::testbed_path();  // 8 Mbps, 3% loss, 50 ms, 25 KB buffer
  cfg.scheme = core::Scheme::kWira;
  core::HxQosRecord cookie;
  cookie.min_rtt = milliseconds(50);
  cookie.max_bw = mbps(8);
  cookie.server_timestamp = 0;
  cfg.cookie = cookie;
  cfg.start_time = minutes(1);
  auto r = run_session(cfg);
  ASSERT_TRUE(r.first_frame_completed);
  EXPECT_LT(to_ms(r.ffct), 2000.0);
}

// Regression test for the delivery/frame_recv boundary: the delivery
// phase ends at the first *video* byte contiguously delivered, so a
// reordering hole anywhere in the container prelude (header/script/audio
// tags before the I frame) charges the stall to `delivery`, not to
// `frame_recv`.  Before the fix, the boundary was the first stream byte
// and a head-of-line hole after byte 0 inflated frame_recv instead.
TEST(Session, ReorderingStallChargesDeliveryNotFrameRecv) {
  SessionConfig cfg = clean_path_session();
  cfg.collect_phases = true;
  cfg.seed = 3;
  auto clean = run_session(cfg);
  ASSERT_TRUE(clean.first_frame_completed);
  ASSERT_EQ(clean.phases.size(), obs::kNumPhases);

  SessionConfig reordered_cfg = cfg;
  reordered_cfg.path.jitter = milliseconds(2);
  reordered_cfg.path.reorder_rate = 0.3;
  reordered_cfg.path.reorder_extra_delay = milliseconds(30);
  auto reordered = run_session(reordered_cfg);
  ASSERT_TRUE(reordered.first_frame_completed);
  ASSERT_EQ(reordered.phases.size(), obs::kNumPhases);

  // The partition is exact on both runs: spans sum to FFCT identically.
  const auto span_sum = [](const SessionResult& r) {
    TimeNs sum = 0;
    for (const auto& p : r.phases) sum += p.duration();
    return sum;
  };
  EXPECT_EQ(span_sum(clean), clean.ffct);
  EXPECT_EQ(span_sum(reordered), reordered.ffct);

  const auto phase_ms = [](const SessionResult& r, const char* name) {
    for (const auto& p : r.phases) {
      if (std::string_view(p.name) == name) return to_ms(p.duration());
    }
    ADD_FAILURE() << "phase " << name << " missing";
    return 0.0;
  };

  // Reordering must actually have stalled the first frame.
  const double delta_ms = to_ms(reordered.ffct) - to_ms(clean.ffct);
  ASSERT_GT(delta_ms, 10.0) << "seed/path no longer produce a stall; "
                               "pick a new probe seed";

  // The stall lands in delivery; frame_recv barely moves.
  const double delivery_delta =
      phase_ms(reordered, "delivery") - phase_ms(clean, "delivery");
  const double frame_recv_delta =
      phase_ms(reordered, "frame_recv") - phase_ms(clean, "frame_recv");
  EXPECT_GT(delivery_delta, 0.5 * delta_ms)
      << "delivery must absorb the reordering stall";
  EXPECT_LT(std::abs(frame_recv_delta), 0.5 * delivery_delta)
      << "frame_recv must not be charged for a pre-video stall";
}

TEST(Session, DeterministicGivenSeed) {
  SessionConfig cfg = clean_path_session();
  cfg.path.loss_rate = 0.02;
  auto a = run_session(cfg);
  auto b = run_session(cfg);
  EXPECT_EQ(a.ffct, b.ffct);
  EXPECT_EQ(a.server_stats.packets_sent, b.server_stats.packets_sent);
  EXPECT_EQ(a.server_stats.packets_lost, b.server_stats.packets_lost);
}

TEST(Session, ManualInitSweepChangesBehaviour) {
  // Tiny window forces multi-RTT delivery; big-enough window doesn't.
  ManualInitConfig small;
  small.stream = default_stream();
  small.init_cwnd_bytes = 4 * 1460;
  small.init_pacing = mbps(8);
  small.path.loss_rate = 0;  // isolate the windowing effect

  ManualInitConfig adapted = small;
  adapted.init_cwnd_bytes = 45 * 1460;

  auto r_small = run_manual_init_session(small);
  auto r_adapted = run_manual_init_session(adapted);
  ASSERT_TRUE(r_small.first_frame_completed);
  ASSERT_TRUE(r_adapted.first_frame_completed);
  EXPECT_GT(r_small.ffct, r_adapted.ffct)
      << "an init_cwnd far below FF_Size must cost extra RTTs";
}

TEST(Population, SmallRunProducesCompleteRecords) {
  PopulationConfig cfg;
  cfg.sessions = 8;
  cfg.seed = 3;
  cfg.schemes = {core::Scheme::kBaseline, core::Scheme::kWira};
  auto records = run_population(cfg);
  ASSERT_EQ(records.size(), 8u);
  size_t completed = 0;
  for (const auto& r : records) {
    ASSERT_EQ(r.results.size(), 2u);
    for (const auto& [scheme, res] : r.results) {
      if (res.first_frame_completed) completed++;
    }
  }
  // The population includes harsh paths; the vast majority must complete.
  EXPECT_GE(completed, 14u);
}

}  // namespace
}  // namespace wira::exp
