// Unit tests for the RTT estimator and the departure-time pacer.
#include <gtest/gtest.h>

#include "quic/pacer.h"
#include "quic/rtt.h"

namespace wira::quic {
namespace {

TEST(Rtt, FirstSampleInitializes) {
  RttEstimator rtt;
  EXPECT_FALSE(rtt.has_sample());
  rtt.on_sample(milliseconds(50), 0);
  EXPECT_TRUE(rtt.has_sample());
  EXPECT_EQ(rtt.smoothed(), milliseconds(50));
  EXPECT_EQ(rtt.variance(), milliseconds(25));
  EXPECT_EQ(rtt.min(), milliseconds(50));
}

TEST(Rtt, SmoothedFollowsEwma) {
  RttEstimator rtt;
  rtt.on_sample(milliseconds(100), 0);
  rtt.on_sample(milliseconds(50), 0);
  // srtt = 7/8*100 + 1/8*50 = 93.75 ms
  EXPECT_NEAR(to_ms(rtt.smoothed()), 93.75, 0.01);
  EXPECT_EQ(rtt.min(), milliseconds(50));
  EXPECT_EQ(rtt.latest(), milliseconds(50));
}

TEST(Rtt, AckDelaySubtractedAboveMin) {
  RttEstimator rtt;
  rtt.on_sample(milliseconds(40), 0);
  rtt.on_sample(milliseconds(60), milliseconds(10));
  // adjusted = 50 ms; srtt = 7/8*40 + 1/8*50 = 41.25
  EXPECT_NEAR(to_ms(rtt.smoothed()), 41.25, 0.01);
}

TEST(Rtt, AckDelayNotSubtractedBelowMin) {
  RttEstimator rtt;
  rtt.on_sample(milliseconds(40), 0);
  // 42 - 10 would dip below min 40 -> keep raw.
  rtt.on_sample(milliseconds(42), milliseconds(10));
  EXPECT_NEAR(to_ms(rtt.smoothed()), 40.25, 0.01);
}

TEST(Rtt, SeedOnlyBeforeSamples) {
  RttEstimator rtt;
  rtt.seed(milliseconds(80));
  EXPECT_TRUE(rtt.has_sample());
  EXPECT_EQ(rtt.smoothed(), milliseconds(80));
  rtt.seed(milliseconds(10));  // ignored: real/seeded state exists
  EXPECT_EQ(rtt.smoothed(), milliseconds(80));
}

TEST(Rtt, PtoWithoutSampleUsesInitial) {
  RttEstimator rtt;
  EXPECT_EQ(rtt.pto(milliseconds(25)), 2 * kInitialRtt);
  rtt.on_sample(milliseconds(40), 0);
  // pto = srtt + max(4*var, 1ms) + mad = 40 + 80 + 25
  EXPECT_EQ(rtt.pto(milliseconds(25)), milliseconds(145));
}

TEST(Pacer, ImmediateSendWithinBurst) {
  Pacer p(/*burst_packets=*/2);
  EXPECT_TRUE(p.can_send(0));
  p.on_packet_sent(0, 1460, mbps(8));
  EXPECT_TRUE(p.can_send(0));  // second burst token
  p.on_packet_sent(0, 1460, mbps(8));
  EXPECT_FALSE(p.can_send(0));
}

TEST(Pacer, ReleaseTimesFollowRate) {
  Pacer p(/*burst_packets=*/0);
  // 1460 B at 1 MB/s -> 1.46 ms per packet.
  p.on_packet_sent(0, 1460, mbps(8));
  EXPECT_EQ(p.next_release_time(), microseconds(1460));
  p.on_packet_sent(0, 1460, mbps(8));
  EXPECT_EQ(p.next_release_time(), microseconds(2920));
  EXPECT_FALSE(p.can_send(microseconds(2919)));
  EXPECT_TRUE(p.can_send(microseconds(2920)));
}

TEST(Pacer, IdleRestoresBurst) {
  Pacer p(2);
  p.on_packet_sent(0, 1460, mbps(8));
  p.on_packet_sent(0, 1460, mbps(8));
  EXPECT_FALSE(p.can_send(microseconds(100)));
  const TimeNs later = seconds(1);
  p.on_idle(later);
  EXPECT_TRUE(p.can_send(later));
}

TEST(Pacer, ZeroRateIsUnpaced) {
  Pacer p(0);
  p.on_packet_sent(0, 1460, 0);
  EXPECT_TRUE(p.can_send(0));
}

TEST(Pacer, HigherRateMeansTighterSpacing) {
  Pacer slow(0), fast(0);
  slow.on_packet_sent(0, 1460, mbps(8));
  fast.on_packet_sent(0, 1460, mbps(80));
  EXPECT_GT(slow.next_release_time(), fast.next_release_time());
}

}  // namespace
}  // namespace wira::quic
