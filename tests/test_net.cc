// Tests for the real-socket runtime (DESIGN.md §6): the Clock seam, the
// UDP socket wrapper, the epoll/timerfd runtime driving a sim::EventLoop
// as its timer wheel — and the end-to-end identity check: the sim's own
// WiraServer/PlayerClient complete a session over real loopback sockets,
// and the resulting client/server sqlog pair joins with phase spans that
// sum exactly to the measured FFCT.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>

#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "app/player_client.h"
#include "app/wira_server.h"
#include "core/transport_cookie.h"
#include "crypto/aead.h"
#include "media/stream_source.h"
#include "net/clock.h"
#include "net/epoll_runtime.h"
#include "net/udp_socket.h"
#include "obs/qlog.h"
#include "obs/trace_join.h"
#include "sim/event_loop.h"
#include "trace/tracer.h"

namespace wira::net {
namespace {

TEST(Clock, MonotonicNeverGoesBackwards) {
  const TimeNs a = MonotonicClock::raw_now();
  const TimeNs b = MonotonicClock::raw_now();
  EXPECT_GT(a, 0);
  EXPECT_GE(b, a);
  const MonotonicClock clock;
  EXPECT_GE(clock.now(), b);
}

TEST(Clock, LoopClockReadsTheLoop) {
  sim::EventLoop loop;
  const LoopClock clock(loop);
  EXPECT_EQ(clock.now(), 0);
  loop.run_until(milliseconds(5));
  EXPECT_EQ(clock.now(), milliseconds(5));
}

TEST(EventLoopTimerWheel, NextEventTimeTracksScheduleAndCancel) {
  sim::EventLoop loop;
  EXPECT_EQ(loop.next_event_time(), sim::EventLoop::kNoEvent);
  const auto id = loop.schedule_at(milliseconds(7), [] {});
  loop.schedule_at(milliseconds(9), [] {});
  EXPECT_EQ(loop.next_event_time(), milliseconds(7));
  loop.cancel(id);
  EXPECT_EQ(loop.next_event_time(), milliseconds(9));
  loop.run_until(milliseconds(10));
  EXPECT_EQ(loop.next_event_time(), sim::EventLoop::kNoEvent);
}

TEST(PeerAddrTest, DisplayAndFileTag) {
  PeerAddr p;
  p.sa.sin_family = AF_INET;
  p.sa.sin_port = htons(8443);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &p.sa.sin_addr), 1);
  EXPECT_EQ(p.display(), "127.0.0.1:8443");
  EXPECT_EQ(p.file_tag(), "127-0-0-1_8443");
}

TEST(UdpSocketTest, ConnectedPairRoundTrip) {
  UdpSocket server;
  std::string error;
  ASSERT_TRUE(server.open_bound("127.0.0.1", 0, 0, &error)) << error;
  UdpSocket client;
  ASSERT_TRUE(client.open_connected("127.0.0.1", server.local_port(),
                                    &error))
      << error;

  const std::vector<uint8_t> ping = {1, 2, 3};
  client.send(ping);
  uint8_t buf[64];
  PeerAddr from;
  ssize_t n = -1;
  for (int i = 0; i < 1000 && n < 0; ++i) {
    n = server.recv_from(buf, sizeof buf, &from);
  }
  ASSERT_EQ(n, 3);
  EXPECT_EQ(from, client.local_addr());

  const std::vector<uint8_t> pong = {9, 8, 7, 6};
  server.send_to(from, pong);
  n = -1;
  for (int i = 0; i < 1000 && n < 0; ++i) {
    n = client.recv_from(buf, sizeof buf, nullptr);
  }
  ASSERT_EQ(n, 4);
  EXPECT_EQ(buf[0], 9);
}

TEST(EpollRuntimeTest, LoopTimerFiresAtRealTime) {
  sim::EventLoop loop;
  EpollRuntime runtime(loop);
  ASSERT_TRUE(runtime.ok()) << runtime.error();
  runtime.sync_now();

  const TimeNs start = MonotonicClock::raw_now();
  bool fired = false;
  loop.schedule_at(start + milliseconds(20), [&] { fired = true; });
  ASSERT_TRUE(runtime.run(
      [&] {
        return fired || MonotonicClock::raw_now() > start + seconds(5);
      },
      /*tick_ms=*/50));
  EXPECT_TRUE(fired);
  // The timerfd must wake the loop at the deadline, not at the next
  // coarse epoll tick — but never before the deadline.
  EXPECT_GE(MonotonicClock::raw_now() - start, milliseconds(20));
}

// The tentpole identity check: a complete Wira session — 0-RTT handshake,
// cookie, FF parse, first frame — between the sim's own server and client
// objects over real loopback UDP sockets, driven by one EpollRuntime on
// the shared monotonic timebase.  The traced pair must join exactly as
// sim-vantage pairs do: spans sum to FFCT, microsecond-truncated.
TEST(RealSocketLoopback, SessionCompletesAndVantagesJoin) {
  sim::EventLoop loop;
  EpollRuntime runtime(loop);
  ASSERT_TRUE(runtime.ok()) << runtime.error();
  runtime.sync_now();
  const MonotonicClock mono;

  UdpSocket server_sock;
  std::string error;
  ASSERT_TRUE(server_sock.open_bound("127.0.0.1", 0, 0, &error)) << error;
  UdpSocket client_sock;
  ASSERT_TRUE(client_sock.open_connected("127.0.0.1",
                                         server_sock.local_port(), &error))
      << error;
  const PeerAddr client_addr = client_sock.local_addr();

  const uint64_t server_id = 7;
  const uint64_t client_id = 11;
  const crypto::Key master_key = crypto::key_from_string("wira-server-7");

  // Paired tracers streaming into memory; shared group id, per-vantage
  // identity — the same shape wira_proxyd/wira_loadgen write to disk.
  std::ostringstream server_qlog;
  std::ostringstream client_qlog;
  obs::QlogTraceInfo server_info;
  server_info.title = "loopback";
  server_info.group_id = "loopback";
  obs::QlogTraceInfo client_info = server_info;
  client_info.vantage_point_name = "wira-client";
  client_info.vantage_point_type = "client";
  obs::QlogStreamWriter server_writer(server_qlog, server_info);
  obs::QlogStreamWriter client_writer(client_qlog, client_info);
  trace::Tracer server_tracer;
  trace::Tracer client_tracer;
  server_tracer.stream_to(&server_writer, /*keep_buffer=*/false);
  client_tracer.stream_to(&client_writer, /*keep_buffer=*/false);

  media::LiveStream stream(media::StreamProfile{}, /*corpus_seed=*/42);
  app::ServerConfig server_cfg;
  server_cfg.scheme = core::Scheme::kWira;
  server_cfg.master_key = master_key;
  server_cfg.expected_od_key = 0;
  app::WiraServer server(loop, stream, server_cfg,
                         [&](std::vector<uint8_t> dgram) {
                           server_sock.send_to(client_addr, dgram);
                           loop.buffers().release(std::move(dgram));
                         });
  server.connection().set_clock(&mono);
  server.set_tracer(&server_tracer);

  app::ClientCache cache;
  cache.server_configs[server_id] = server.server_config_id();
  const uint64_t od_key = core::od_pair_key(client_id, server_id, 0);
  core::HxQosRecord rec;
  rec.min_rtt = milliseconds(1);
  rec.max_bw = mbps(500);
  rec.server_timestamp = MonotonicClock::raw_now();
  rec.od_key = od_key;
  cache.cookies.store(od_key, core::CookieSealer(master_key).seal(rec),
                      rec.server_timestamp);

  app::ClientConfig client_cfg;
  client_cfg.client_id = client_id;
  client_cfg.server_id = server_id;
  client_cfg.track_frames = 1;
  app::PlayerClient client(loop, client_cfg, cache,
                           [&](std::vector<uint8_t> dgram) {
                             client_sock.send(dgram);
                             loop.buffers().release(std::move(dgram));
                           });
  client.connection().set_clock(&mono);
  client.set_tracer(&client_tracer);

  runtime.add_fd(server_sock.fd(), [&](uint32_t) {
    uint8_t buf[65536];
    for (;;) {
      const ssize_t n = server_sock.recv_from(buf, sizeof buf, nullptr);
      if (n < 0) return;
      server.on_datagram({buf, static_cast<size_t>(n)});
    }
  });
  runtime.add_fd(client_sock.fd(), [&](uint32_t) {
    uint8_t buf[65536];
    for (;;) {
      const ssize_t n = client_sock.recv_from(buf, sizeof buf, nullptr);
      if (n < 0) return;
      client.on_datagram({buf, static_cast<size_t>(n)});
    }
  });

  const TimeNs deadline = MonotonicClock::raw_now() + seconds(10);
  client.start();
  ASSERT_TRUE(runtime.run([&] {
    return client.metrics().first_frame_done() ||
           MonotonicClock::raw_now() > deadline;
  }));

  const app::PlayerClient::Metrics& m = client.metrics();
  ASSERT_TRUE(m.first_frame_done()) << "session did not complete";
  EXPECT_TRUE(m.zero_rtt);
  EXPECT_NE(m.first_byte_at, kNoTime);
  EXPECT_GT(m.ffct(), 0);
  EXPECT_TRUE(server.received_cookie().has_value());

  // Detach (flushes nothing — streaming — but stops further writes), then
  // join the two vantages exactly as wira_trace_join would from disk.
  server_tracer.stream_to(static_cast<trace::EventSink*>(nullptr));
  client_tracer.stream_to(static_cast<trace::EventSink*>(nullptr));
  obs::ParsedQlog server_parsed;
  obs::ParsedQlog client_parsed;
  ASSERT_TRUE(obs::parse_sqlog_text(server_qlog.str(), &server_parsed,
                                    &error))
      << error;
  ASSERT_TRUE(obs::parse_sqlog_text(client_qlog.str(), &client_parsed,
                                    &error))
      << error;
  EXPECT_EQ(server_parsed.vantage_type, "server");
  EXPECT_EQ(client_parsed.vantage_type, "client");

  obs::JoinedPhases joined;
  ASSERT_TRUE(obs::join_vantages(client_parsed, server_parsed, &joined,
                                 &error))
      << error;
  // Spans partition [request_sent, frame1] — they must sum to the FFCT
  // the client measured, at the traces' microsecond precision.
  uint64_t sum_us = 0;
  for (const auto& span : joined.spans) sum_us += span.duration_us();
  EXPECT_EQ(sum_us, joined.ffct_us);
  const uint64_t expect_ffct_us =
      static_cast<uint64_t>(m.frame_complete_at[0]) / 1000 -
      static_cast<uint64_t>(m.request_sent_at) / 1000;
  EXPECT_EQ(joined.ffct_us, expect_ffct_us);
}

}  // namespace
}  // namespace wira::net
