// Unit tests for Initial Parameter Configuration (§IV-C): every Table-I
// row, Eq. 2/3, and both corner cases — plus property sweeps.
#include "core/init_config.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace wira::core {
namespace {

constexpr uint64_t kFf = 66'000;

ExperiencedDefaults defaults() {
  ExperiencedDefaults d;
  d.init_cwnd_exp = 43'000;
  d.init_rtt_exp = milliseconds(80);
  return d;
}

HxQosRecord fresh_cookie(Bandwidth bw = mbps(8),
                         TimeNs rtt = milliseconds(50)) {
  HxQosRecord r;
  r.max_bw = bw;
  r.min_rtt = rtt;
  r.server_timestamp = 0;
  return r;
}

InitInputs inputs(std::optional<uint64_t> ff,
                  std::optional<HxQosRecord> hx, TimeNs now = minutes(5)) {
  InitInputs in;
  in.ff_size = ff;
  in.hx_qos = hx;
  in.now = now;
  return in;
}

TEST(InitConfig, BaselineRow) {
  const auto d = compute_init(Scheme::kBaseline, inputs(kFf, fresh_cookie()),
                              defaults());
  EXPECT_EQ(d.init_cwnd, 43'000u);
  // init_pacing = init_cwnd / init_RTT_exp = 43 KB / 80 ms = 537.5 KB/s.
  EXPECT_EQ(d.init_pacing, delivery_rate(43'000, milliseconds(80)));
  EXPECT_FALSE(d.used_ff_size);
  EXPECT_FALSE(d.used_hx_qos);
}

TEST(InitConfig, WiraFfRow) {
  const auto d = compute_init(Scheme::kWiraFF, inputs(kFf, fresh_cookie()),
                              defaults());
  EXPECT_EQ(d.init_cwnd, kFf);
  EXPECT_EQ(d.init_pacing, delivery_rate(kFf, milliseconds(80)));
  EXPECT_TRUE(d.used_ff_size);
  EXPECT_FALSE(d.used_hx_qos);
}

TEST(InitConfig, WiraHxRow) {
  const auto d = compute_init(Scheme::kWiraHx, inputs(kFf, fresh_cookie()),
                              defaults());
  // BDP = 8 Mbps x 50 ms = 50 KB; pacing = MaxBW (Eq. 2).
  EXPECT_EQ(d.init_cwnd, 50'000u);
  EXPECT_EQ(d.init_pacing, mbps(8));
  EXPECT_TRUE(d.used_hx_qos);
}

TEST(InitConfig, WiraRowTakesMinOfFfAndBdp) {
  // FF (66 KB) > BDP (50 KB) -> BDP wins.
  auto d = compute_init(Scheme::kWira, inputs(kFf, fresh_cookie()),
                        defaults());
  EXPECT_EQ(d.init_cwnd, 50'000u);
  EXPECT_EQ(d.init_pacing, mbps(8));

  // FF (20 KB) < BDP -> FF wins (Eq. 3).
  d = compute_init(Scheme::kWira, inputs(20'000, fresh_cookie()),
                   defaults());
  EXPECT_EQ(d.init_cwnd, 20'000u);
  EXPECT_TRUE(d.used_ff_size);
  EXPECT_TRUE(d.used_hx_qos);
}

TEST(InitConfig, CornerCase1SubstitutesExperiencedCwnd) {
  // FF_Size not yet parsed: init_cwnd_exp replaces FF_Size in Eq. 3.
  const auto d = compute_init(Scheme::kWira,
                              inputs(std::nullopt, fresh_cookie()),
                              defaults());
  EXPECT_TRUE(d.ff_pending);
  EXPECT_EQ(d.init_cwnd, std::min<uint64_t>(43'000, 50'000));
  EXPECT_EQ(d.init_pacing, mbps(8));
}

TEST(InitConfig, CornerCase2StaleCookie) {
  HxQosRecord old = fresh_cookie();
  old.server_timestamp = 0;
  const auto in = inputs(kFf, old, /*now=*/minutes(61));
  const auto d = compute_init(Scheme::kWira, in, defaults());
  EXPECT_TRUE(d.hx_stale);
  EXPECT_FALSE(d.used_hx_qos);
  // init_cwnd = FF_Size; init_pacing = FF_Size / init_RTT_exp.
  EXPECT_EQ(d.init_cwnd, kFf);
  EXPECT_EQ(d.init_pacing, delivery_rate(kFf, milliseconds(80)));
}

TEST(InitConfig, NoCookieWiraFallsBackToFfOnly) {
  const auto d =
      compute_init(Scheme::kWira, inputs(kFf, std::nullopt), defaults());
  EXPECT_EQ(d.init_cwnd, kFf);
  EXPECT_FALSE(d.used_hx_qos);
  EXPECT_FALSE(d.hx_stale);  // absent, not stale
}

TEST(InitConfig, NoCookieWiraHxBehavesLikeBaseline) {
  const auto hx = compute_init(Scheme::kWiraHx, inputs(kFf, std::nullopt),
                               defaults());
  const auto base = compute_init(Scheme::kBaseline,
                                 inputs(kFf, std::nullopt), defaults());
  EXPECT_EQ(hx.init_cwnd, base.init_cwnd);
  EXPECT_EQ(hx.init_pacing, base.init_pacing);
}

TEST(InitConfig, InvalidCookieIgnored) {
  HxQosRecord bogus;  // min_rtt/max_bw unset -> invalid
  const auto d =
      compute_init(Scheme::kWira, inputs(kFf, bogus), defaults());
  EXPECT_FALSE(d.used_hx_qos);
  EXPECT_EQ(d.init_cwnd, kFf);
}

TEST(InitConfig, CustomStalenessThresholdRespected) {
  HxQosRecord c = fresh_cookie();
  InitInputs in = inputs(kFf, c, minutes(10));
  in.staleness_threshold = minutes(5);
  const auto d = compute_init(Scheme::kWira, in, defaults());
  EXPECT_TRUE(d.hx_stale);
}

TEST(InitConfig, FloorsPreventDegenerateValues) {
  HxQosRecord tiny = fresh_cookie(kbps(1), microseconds(100));
  const auto d = compute_init(Scheme::kWira, inputs(4, tiny), defaults());
  EXPECT_GE(d.init_cwnd, 2u * 1460);
  EXPECT_GE(d.init_pacing, kbps(100));
}

// Property sweep: across random inputs, Wira's cwnd never exceeds either
// FF_Size or the BDP when a fresh cookie is present (Eq. 3 upper bounds),
// and pacing always equals MaxBW (Eq. 2).
class InitConfigProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InitConfigProperty, Eq2Eq3InvariantsHold) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const uint64_t ff =
        static_cast<uint64_t>(rng.uniform(6'000, 250'000));
    const Bandwidth bw = mbps_f(rng.uniform(0.5, 60));
    const TimeNs rtt = from_seconds(rng.uniform(0.005, 0.4));
    const auto d = compute_init(Scheme::kWira,
                                inputs(ff, fresh_cookie(bw, rtt)),
                                defaults());
    const uint64_t bdp = bdp_bytes(bw, rtt);
    EXPECT_LE(d.init_cwnd, std::max<uint64_t>(std::min(ff, bdp), 2 * 1460));
    EXPECT_EQ(d.init_pacing, std::max<Bandwidth>(bw, kbps(100)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InitConfigProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull));

TEST(InitConfig, SchemeNames) {
  EXPECT_STREQ(scheme_name(Scheme::kBaseline), "Baseline");
  EXPECT_STREQ(scheme_name(Scheme::kWiraFF), "Wira(FF)");
  EXPECT_STREQ(scheme_name(Scheme::kWiraHx), "Wira(Hx)");
  EXPECT_STREQ(scheme_name(Scheme::kWira), "Wira");
}

}  // namespace
}  // namespace wira::core
