// Golden wire-format tests: exact byte layouts, locked down so future
// refactors can't silently change what goes on the wire (which would
// break interop between old and new endpoints).
#include <gtest/gtest.h>

#include "core/transport_cookie.h"
#include "media/flv.h"
#include "media/mpegts.h"
#include "quic/handshake.h"
#include "quic/packet.h"
#include "util/bytes.h"

namespace wira {
namespace {

TEST(Golden, QuicPacketHeader) {
  quic::Packet p;
  p.type = quic::PacketType::kOneRtt;
  p.conn_id = 0x1122334455667788ull;
  p.packet_number = 0x0A;
  p.frames.emplace_back(quic::PingFrame{});
  EXPECT_EQ(to_hex(serialize_packet(p)),
            "04"                  // type: 1-RTT
            "1122334455667788"    // connection id
            "000000000000000a"    // packet number
            "01");                // PING frame
}

TEST(Golden, HxQosPacketUses0x1f) {
  quic::Packet p;
  p.type = quic::PacketType::kHxQos;
  p.conn_id = 1;
  p.packet_number = 2;
  quic::HxQosFrame f;
  f.server_time_ms = 3;
  const std::vector<uint8_t> blob{0xAA, 0xBB};
  f.sealed_blob = blob;
  p.frames.emplace_back(f);
  EXPECT_EQ(to_hex(serialize_packet(p)),
            "1f"                  // packet type 0x1f (the paper's new type)
            "0000000000000001"
            "0000000000000002"
            "1f"                  // frame type 0x1f
            "03"                  // server_time_ms varint
            "02"                  // blob length varint
            "aabb");
}

TEST(Golden, StreamFrameLayout) {
  quic::StreamFrame f;
  f.stream_id = 3;
  f.offset = 64;  // forces 2-byte varint
  f.fin = true;
  const std::vector<uint8_t> payload{0xDE, 0xAD};
  f.data = payload;
  ByteWriter w;
  quic::serialize_frame(quic::Frame{f}, w);
  EXPECT_EQ(to_hex(w.span()),
            "08"      // STREAM type
            "03"      // stream id
            "4040"    // offset 64 as 2-byte varint
            "02"      // length
            "01"      // fin
            "dead");
}

TEST(Golden, AckFrameLayout) {
  quic::AckFrame f;
  f.largest_acked = 10;
  f.ack_delay = microseconds(25);
  f.ranges = {{8, 10}, {1, 5}};
  ByteWriter w;
  quic::serialize_frame(quic::Frame{f}, w);
  EXPECT_EQ(to_hex(w.span()),
            "02"   // ACK type
            "0a"   // largest acked
            "19"   // delay 25 us
            "02"   // range count
            "02"   // first range: largest - lo = 2
            "01"   // gap: prev_lo(8) - hi(5) - 2 = 1
            "04"); // length: hi - lo = 4
}

TEST(Golden, ChloWithHqstTag) {
  quic::HandshakeMessage chlo;
  chlo.msg_tag = quic::kTagCHLO;
  quic::HqstPayload hqst;
  hqst.supports_sync = true;
  hqst.client_recv_time_ms = 0x0102;
  chlo.set(quic::kTagHQST, quic::serialize_hqst(hqst));
  EXPECT_EQ(to_hex(serialize_handshake(chlo)),
            "43484c4f"  // 'CHLO'
            "0001"      // 1 tag
            "0000"      // reserved
            "48515354"  // 'HQST'
            "00000009"  // end offset: Bool(1) + timestamp(8)
            "01"        // Bool = 1 (supports sync)
            "0000000000000102");
}

TEST(Golden, HxQosTripleLayout) {
  core::HxQosRecord rec;
  rec.min_rtt = microseconds(50'000);
  rec.max_bw = 1'000'000;  // 8 Mbps
  rec.od_key = 0x42;
  EXPECT_EQ(to_hex(core::encode_hxqos_triples(rec)),
            "01" "08" "000000000000c350"   // <MinRTT, 8, 50000 us>
            "02" "08" "00000000000f4240"   // <MaxBW, 8, 1e6 B/s>
            "04" "08" "0000000000000042"); // <OdKey, 8, 0x42>
}

TEST(Golden, FlvHeaderAndTag) {
  media::FlvMuxer mux;
  mux.write_header();
  media::MediaFrame f;
  f.type = media::TagType::kVideo;
  f.video_kind = media::VideoKind::kKey;
  f.payload_bytes = 1;  // just the codec byte
  f.pts = milliseconds(0x010203);
  mux.write_frame(f);
  EXPECT_EQ(to_hex(mux.span()),
            "464c5601"  // 'FLV' v1
            "05"        // audio+video
            "00000009"  // data offset
            "00000000"  // PreviousTagSize0
            "09"        // video tag
            "000001"    // data size 1
            "010203"    // timestamp low 24 bits (66051 ms)
            "00"        // timestamp extension
            "000000"    // stream id
            "17"        // keyframe | AVC
            "0000000c"); // PreviousTagSize = 11 + 1
}

TEST(Golden, TsPacketHeader) {
  media::TsMuxer mux;
  media::MediaFrame f;
  f.type = media::TagType::kAudio;
  f.payload_bytes = 4;
  f.pts = 0;
  mux.write_frame(f);
  const auto bytes = mux.take();
  ASSERT_EQ(bytes.size(), media::kTsPacketSize);
  EXPECT_EQ(bytes[0], 0x47);                    // sync
  EXPECT_EQ(bytes[1] & 0x40, 0x40);             // PUSI
  const uint16_t pid =
      static_cast<uint16_t>((bytes[1] & 0x1F) << 8 | bytes[2]);
  EXPECT_EQ(pid, media::kTsPidAudio);
  EXPECT_EQ((bytes[3] >> 4) & 0x3, 0x3);        // adaptation + payload
}

}  // namespace
}  // namespace wira
