// Tests for the multiprocess runner's wire codec (exp/record_codec):
// primitive round trips, golden bytes for codec v1 layout stability,
// bit-exact value round trips, and frame-layer truncation/corruption
// rejection (the crash-containment half of the multiprocess contract).
#include "exp/record_codec.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "obs/metrics.h"
#include "obs/phase_timeline.h"
#include "util/units.h"

namespace wira::exp {
namespace {

std::string to_hex(std::span<const uint8_t> bytes) {
  std::string out;
  char buf[3];
  for (uint8_t b : bytes) {
    std::snprintf(buf, sizeof buf, "%02x", b);
    out += buf;
  }
  return out;
}

core::HxQosRecord sample_hxqos() {
  core::HxQosRecord r;
  r.min_rtt = milliseconds(47);
  r.max_bw = mbps(12);
  r.server_timestamp = minutes(10);
  r.od_key = 0xABCDEF0123456789ull;
  r.loss_rate = 0.015625;  // exactly representable
  return r;
}

/// A SessionRecord exercising every field the codec carries, including
/// the optional vectors (frames, phases) and the corner-case flags.
SessionRecord sample_record() {
  SessionRecord rec;
  rec.conditions.min_rtt = milliseconds(35);
  rec.conditions.max_bw = mbps(20);
  rec.conditions.loss_rate = 0.0078125;
  rec.conditions.buffer_bytes = 131072;
  rec.cookie_age = minutes(4);
  rec.zero_rtt = true;
  rec.had_cookie = true;
  rec.ff_size = 41234;
  rec.trace_open_failures = 2;

  SessionResult res;
  res.first_frame_completed = true;
  res.ffct = milliseconds(212);
  res.fflr = 0.03125;
  res.frames.push_back(FrameStat{milliseconds(250), 0.0});
  res.frames.push_back(FrameStat{kNoTime, 0.25});
  res.zero_rtt = true;
  res.ff_size = 41234;
  res.init.init_cwnd = 43000;
  res.init.init_pacing = mbps(18);
  res.init.used_ff_size = true;
  res.init.used_hx_qos = true;
  res.init.hx_stale = false;
  res.init.ff_pending = true;
  res.server_stats.packets_sent = 321;
  res.server_stats.data_packets_sent = 300;
  res.server_stats.packets_received = 280;
  res.server_stats.packets_acked = 270;
  res.server_stats.packets_lost = 3;
  res.server_stats.ptos_fired = 1;
  res.server_stats.bytes_sent = 390000;
  res.server_stats.stream_bytes_sent = 370000;
  res.server_stats.stream_bytes_retransmitted = 2800;
  res.server_stats.packets_undecodable = 4;  // v2 field
  res.server_stats.handshake_rtt = milliseconds(36);
  res.retransmission_ratio = 0.0075683593750;
  res.cookies_synced = 2;
  res.client_cookies_received = 2;
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    obs::PhaseSpan span;
    span.name = obs::kPhaseNames[p];
    span.begin = milliseconds(static_cast<int64_t>(p) * 40);
    span.end = milliseconds(static_cast<int64_t>(p + 1) * 40);
    res.phases.push_back(span);
  }
  res.cwnd_fallback = true;
  res.zero_rtt_rejected = false;
  res.arena_bytes = 777216;

  rec.results.emplace(core::Scheme::kBaseline, res);
  res.ffct = milliseconds(95);
  res.phases.clear();
  res.frames.clear();
  rec.results.emplace(core::Scheme::kWira, res);

  // v2 flight-recorder anomaly-trigger counters.
  rec.anomaly_stall_dumps = 1;
  rec.anomaly_corner_dumps = 2;
  rec.anomaly_decode_dumps = 3;
  rec.anomaly_ffct_dumps = 4;
  return rec;
}

bool records_equal(const SessionRecord& a, const SessionRecord& b) {
  std::vector<uint8_t> ea, eb;
  CodecWriter wa(ea), wb(eb);
  encode_session_record(a, wa);
  encode_session_record(b, wb);
  return ea == eb;
}

TEST(CodecPrimitives, RoundTrip) {
  std::vector<uint8_t> buf;
  CodecWriter w(buf);
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-0.125);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");

  CodecReader r(buf);
  uint8_t u8v = 0;
  uint32_t u32v = 0;
  uint64_t u64v = 0;
  int64_t i64v = 0;
  double f64v = 0;
  bool b1 = false, b2 = true;
  std::string s1, s2 = "x";
  EXPECT_TRUE(r.u8(&u8v));
  EXPECT_TRUE(r.u32(&u32v));
  EXPECT_TRUE(r.u64(&u64v));
  EXPECT_TRUE(r.i64(&i64v));
  EXPECT_TRUE(r.f64(&f64v));
  EXPECT_TRUE(r.boolean(&b1));
  EXPECT_TRUE(r.boolean(&b2));
  EXPECT_TRUE(r.str(&s1));
  EXPECT_TRUE(r.str(&s2));
  EXPECT_EQ(u8v, 0xAB);
  EXPECT_EQ(u32v, 0xDEADBEEFu);
  EXPECT_EQ(u64v, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64v, -42);
  EXPECT_EQ(f64v, -0.125);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.failed());
}

TEST(CodecPrimitives, ReadsPastEndFailAndLatch) {
  std::vector<uint8_t> buf;
  CodecWriter w(buf);
  w.u32(7);
  CodecReader r(buf);
  uint64_t v = 0;
  EXPECT_FALSE(r.u64(&v));  // only 4 bytes present
  EXPECT_TRUE(r.failed());
  uint8_t b = 0;
  EXPECT_FALSE(r.u8(&b));  // latched: even in-bounds reads fail now
}

TEST(CodecPrimitives, BooleanRejectsNonCanonicalBytes) {
  const std::vector<uint8_t> buf = {2};
  CodecReader r(buf);
  bool v = false;
  EXPECT_FALSE(r.boolean(&v));
  EXPECT_TRUE(r.failed());
}

// Golden bytes: little-endian field order of codec v1.  Hand-computed —
// breaking this test means the wire layout changed and
// kRecordCodecVersion must be bumped.
TEST(HxQosCodec, GoldenBytesAndRoundTrip) {
  const core::HxQosRecord in = sample_hxqos();
  std::vector<uint8_t> buf;
  CodecWriter w(buf);
  encode_hxqos_record(in, w);
  EXPECT_EQ(to_hex(buf),
            // min_rtt = 47ms = 47e6 ns = 0x02CD29C0 LE
            "c029cd0200000000"
            // max_bw = 12 Mbps = 1.5e6 B/s = 0x16E360 LE
            "60e3160000000000"
            // server_timestamp = 10 min = 6e11 ns = 0x8BB2C97000 LE
            "0070c9b28b000000"
            // od_key LE
            "8967452301efcdab"
            // loss_rate = 0.015625 = 2^-6 (IEEE-754: 0x3F90000000000000)
            "000000000000903f");
  CodecReader r(buf);
  core::HxQosRecord out;
  ASSERT_TRUE(decode_hxqos_record(r, &out));
  EXPECT_EQ(out.min_rtt, in.min_rtt);
  EXPECT_EQ(out.max_bw, in.max_bw);
  EXPECT_EQ(out.server_timestamp, in.server_timestamp);
  EXPECT_EQ(out.od_key, in.od_key);
  EXPECT_EQ(out.loss_rate, in.loss_rate);
}

TEST(SessionRecordCodec, RoundTripIsBitExact) {
  const SessionRecord in = sample_record();
  std::vector<uint8_t> buf;
  CodecWriter w(buf);
  encode_session_record(in, w);
  CodecReader r(buf);
  SessionRecord out;
  ASSERT_TRUE(decode_session_record(r, &out));
  EXPECT_EQ(r.remaining(), 0u);

  EXPECT_TRUE(records_equal(in, out));
  // Spot checks in the clear, so a symmetric codec bug (both directions
  // dropping a field) cannot hide behind the re-encode comparison.
  EXPECT_EQ(out.conditions.max_bw, in.conditions.max_bw);
  EXPECT_EQ(out.trace_open_failures, 2u);
  ASSERT_EQ(out.results.size(), 2u);
  const SessionResult& res = out.results.at(core::Scheme::kBaseline);
  EXPECT_EQ(res.ffct, milliseconds(212));
  ASSERT_EQ(res.frames.size(), 2u);
  EXPECT_EQ(res.frames[1].completion, kNoTime);
  EXPECT_EQ(res.frames[1].loss_rate, 0.25);
  ASSERT_EQ(res.phases.size(), obs::kNumPhases);
  // Decoded names are the static literals, usable by the phase tables.
  EXPECT_EQ(res.phases[0].name, obs::kPhaseNames[0]);
  EXPECT_EQ(res.server_stats.handshake_rtt, milliseconds(36));
  EXPECT_EQ(res.retransmission_ratio, 0.0075683593750);
  EXPECT_EQ(res.arena_bytes, 777216u);
  EXPECT_TRUE(res.init.ff_pending);
  // v2 additions.
  EXPECT_EQ(res.server_stats.packets_undecodable, 4u);
  EXPECT_EQ(out.anomaly_stall_dumps, 1u);
  EXPECT_EQ(out.anomaly_corner_dumps, 2u);
  EXPECT_EQ(out.anomaly_decode_dumps, 3u);
  EXPECT_EQ(out.anomaly_ffct_dumps, 4u);
}

TEST(SessionRecordCodec, RejectsOutOfRangeScheme) {
  const SessionRecord in = sample_record();
  std::vector<uint8_t> buf;
  CodecWriter w(buf);
  encode_session_record(in, w);
  // The first scheme id sits right after the fixed record prefix
  // (4×8 conditions + 8 cookie_age + 2 bools + 8 ff_size + 8 failures +
  // 4 result count).
  const size_t scheme_off = 32 + 8 + 2 + 8 + 8 + 4;
  ASSERT_EQ(buf[scheme_off],
            static_cast<uint8_t>(core::Scheme::kBaseline));
  buf[scheme_off] = 0x7F;
  CodecReader r(buf);
  SessionRecord out;
  EXPECT_FALSE(decode_session_record(r, &out));
}

TEST(SessionRecordCodec, RejectsTruncationAtEveryPrefix) {
  const SessionRecord in = sample_record();
  std::vector<uint8_t> buf;
  CodecWriter w(buf);
  encode_session_record(in, w);
  for (size_t keep = 0; keep < buf.size(); keep += 7) {
    CodecReader r(std::span<const uint8_t>(buf.data(), keep));
    SessionRecord out;
    EXPECT_FALSE(decode_session_record(r, &out)) << "prefix " << keep;
  }
}

TEST(MetricsRegistryCodec, RoundTripIsBitExact) {
  obs::MetricsRegistry in;
  in.inc("sessions.Wira", 24);
  in.inc("trace.open_failed", 3);
  in.set_gauge("bytes_on_wire", 1.25e9);
  obs::LatencyHistogram& h = in.histogram("ffct_us.Wira");
  for (uint64_t v : {7u, 19u, 1000u, 250000u, 250000u}) h.record(v);
  in.histogram("empty");  // created-but-empty must survive the trip

  std::vector<uint8_t> buf;
  CodecWriter w(buf);
  encode_metrics_registry(in, w);
  CodecReader r(buf);
  obs::MetricsRegistry out;
  ASSERT_TRUE(decode_metrics_registry(r, &out));
  EXPECT_EQ(r.remaining(), 0u);

  EXPECT_EQ(out.counters(), in.counters());
  EXPECT_EQ(out.gauges(), in.gauges());
  ASSERT_EQ(out.histograms().size(), in.histograms().size());
  for (const auto& [name, hist] : in.histograms()) {
    const obs::LatencyHistogram* other = out.find_histogram(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(other->count(), hist.count());
    EXPECT_EQ(other->sum(), hist.sum());
    EXPECT_EQ(other->min(), hist.min());
    EXPECT_EQ(other->max(), hist.max());
    EXPECT_EQ(other->bucket_counts(), hist.bucket_counts());
    EXPECT_EQ(other->percentile(90), hist.percentile(90));
  }
  // Merging a decoded registry keeps working (the parent's merge path).
  obs::MetricsRegistry merged;
  merged.merge(out);
  merged.merge(out);
  EXPECT_EQ(merged.counter("sessions.Wira"), 48u);
}

TEST(MetricsRegistryCodec, RejectsInconsistentBucketTotals) {
  obs::MetricsRegistry in;
  in.histogram("h").record(5);
  std::vector<uint8_t> buf;
  CodecWriter w(buf);
  encode_metrics_registry(in, w);
  // Count field of histogram "h": after 3 empty-section counts is the
  // histogram count (u32) then name then count u64.  Corrupt the count by
  // flipping its low byte (sits right after the 1-char name).
  const size_t count_off = 4 + 4 + 4 + (4 + 1);
  ASSERT_EQ(buf[count_off], 1);  // count == 1
  buf[count_off] = 9;
  CodecReader r(buf);
  obs::MetricsRegistry out;
  EXPECT_FALSE(decode_metrics_registry(r, &out));
}

// ---- frame layer --------------------------------------------------------

std::vector<uint8_t> sample_stream() {
  std::vector<uint8_t> out;
  append_stream_header(out);
  std::vector<uint8_t> payload;
  CodecWriter w(payload);
  w.u64(3);
  encode_session_record(sample_record(), w);
  append_frame(FrameType::kSessionRecord, payload, out);
  append_frame(FrameType::kEnd, {}, out);
  return out;
}

TEST(Frames, StreamHeaderGolden) {
  std::vector<uint8_t> out;
  append_stream_header(out);
  EXPECT_EQ(to_hex(out), "3143525702000000");  // "1CRW" LE + version 2
}

TEST(Frames, EndFrameGolden) {
  std::vector<uint8_t> out;
  append_frame(FrameType::kEnd, {}, out);
  // type 3, len 0, fnv1a64("") = 0xcbf29ce484222325 LE.
  EXPECT_EQ(to_hex(out), "0300000000" "25232284e49cf2cb");
}

TEST(Frames, RoundTrip) {
  const std::vector<uint8_t> stream = sample_stream();
  size_t off = 0;
  ASSERT_EQ(read_stream_header(stream, &off), FrameStatus::kOk);
  FrameView frame;
  ASSERT_EQ(next_frame(stream, &off, &frame), FrameStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kSessionRecord);
  CodecReader r(frame.payload);
  uint64_t index = 0;
  SessionRecord rec;
  ASSERT_TRUE(r.u64(&index));
  ASSERT_TRUE(decode_session_record(r, &rec));
  EXPECT_EQ(index, 3u);
  EXPECT_TRUE(records_equal(rec, sample_record()));
  ASSERT_EQ(next_frame(stream, &off, &frame), FrameStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kEnd);
  EXPECT_EQ(off, stream.size());
}

TEST(Frames, WrongVersionRejected) {
  std::vector<uint8_t> stream = sample_stream();
  stream[4] ^= 0xFF;  // version field
  size_t off = 0;
  EXPECT_EQ(read_stream_header(stream, &off), FrameStatus::kCorrupt);
}

TEST(Frames, EveryTruncationIsNeedMoreNeverOk) {
  const std::vector<uint8_t> stream = sample_stream();
  // Walk every prefix that cuts inside the record frame or the end frame.
  for (size_t keep = 8; keep < stream.size(); keep += 5) {
    const std::span<const uint8_t> cut(stream.data(), keep);
    size_t off = 0;
    ASSERT_EQ(read_stream_header(cut, &off), FrameStatus::kOk);
    FrameView frame;
    for (;;) {
      const FrameStatus st = next_frame(cut, &off, &frame);
      if (st == FrameStatus::kOk) {
        ASSERT_LE(off, keep);
        if (frame.type == FrameType::kEnd) break;
        continue;
      }
      EXPECT_EQ(st, FrameStatus::kNeedMore) << "prefix " << keep;
      break;
    }
  }
}

TEST(Frames, PayloadCorruptionIsDetectedByChecksum) {
  std::vector<uint8_t> stream = sample_stream();
  // Flip one byte well inside the record frame's payload.
  const size_t payload_start = 8 + 13;  // header + frame prelude
  stream[payload_start + 40] ^= 0x01;
  size_t off = 0;
  ASSERT_EQ(read_stream_header(stream, &off), FrameStatus::kOk);
  FrameView frame;
  EXPECT_EQ(next_frame(stream, &off, &frame), FrameStatus::kCorrupt);
}

TEST(Frames, GarbageStreamRejected) {
  std::vector<uint8_t> garbage(256);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  size_t off = 0;
  EXPECT_EQ(read_stream_header(garbage, &off), FrameStatus::kCorrupt);
}

// ---- PopulationConfig codec (the kConfig frame wira_workerd consumes) ---

// Every encoded field set to a distinctive non-default value.
PopulationConfig sample_population_config() {
  PopulationConfig c;
  c.seed = 0x1122334455667788ull;
  c.sessions = 4097;
  c.num_groups = 17;
  c.p_zero_rtt = 0.125;
  c.p_cookie = 0.875;
  c.schemes = {core::Scheme::kWira, core::Scheme::kBaseline};
  c.defaults.init_cwnd_exp = 23;
  c.defaults.init_rtt_exp = -456789;
  c.staleness_threshold = 987654321;
  c.theta_vf = 3;
  c.cc_algo = cc::CcAlgo::kCubic;
  c.sync_period = 13579;
  c.careful_resume = true;
  c.container = media::Container::kMpegTs;
  c.collect_metrics = true;
  c.trace_sample = 7;
  c.trace_dir = "/tmp/wira-traces";
  c.flight_recorder = false;
  c.anomaly_dir = "/tmp/wira-anomalies";
  c.anomaly_ffct = 1234567;
  c.anomaly_max_dumps = 5;
  c.fail_at_index = 11;
  c.kill_at_index = 12;
  c.crash_after_index = 13;
  c.crash_after_signal = SIGTERM;
  c.chunk = 5;
  c.skew_delay_us = 250;
  c.straggler_worker = 2;
  c.straggler_delay_us = 777;
  return c;
}

TEST(PopulationConfigCodec, RoundTripIsBitExact) {
  const PopulationConfig orig = sample_population_config();
  std::vector<uint8_t> encoded;
  CodecWriter w(encoded);
  encode_population_config(orig, w);

  CodecReader r(encoded);
  PopulationConfig decoded;
  ASSERT_TRUE(decode_population_config(r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);

  // Re-encoding the decode must reproduce the exact bytes: every field
  // the codec carries round-trips losslessly.
  std::vector<uint8_t> reencoded;
  CodecWriter w2(reencoded);
  encode_population_config(decoded, w2);
  EXPECT_EQ(encoded, reencoded);

  EXPECT_EQ(decoded.seed, orig.seed);
  EXPECT_EQ(decoded.sessions, orig.sessions);
  EXPECT_EQ(decoded.schemes, orig.schemes);
  EXPECT_EQ(decoded.cc_algo, orig.cc_algo);
  EXPECT_EQ(decoded.container, orig.container);
  EXPECT_EQ(decoded.trace_dir, orig.trace_dir);
  EXPECT_EQ(decoded.anomaly_dir, orig.anomaly_dir);
  EXPECT_EQ(decoded.kill_at_index, orig.kill_at_index);
  EXPECT_EQ(decoded.chunk, orig.chunk);
  EXPECT_EQ(decoded.straggler_worker, orig.straggler_worker);
  EXPECT_EQ(decoded.straggler_delay_us, orig.straggler_delay_us);
}

TEST(PopulationConfigCodec, DispatcherOnlyFieldsAreNotShipped) {
  // threads/processes/workers/retry_dead_shards steer the *dispatcher*;
  // the worker always runs its chunks serially, so they must not leak
  // into the wire image.
  PopulationConfig a = sample_population_config();
  PopulationConfig b = a;
  b.threads = 8;
  b.processes = 4;
  b.workers = {"127.0.0.1:9999"};
  b.retry_dead_shards = true;
  std::vector<uint8_t> ea, eb;
  CodecWriter wa(ea), wb(eb);
  encode_population_config(a, wa);
  encode_population_config(b, wb);
  EXPECT_EQ(ea, eb);
}

TEST(PopulationConfigCodec, RejectsOutOfRangeEnums) {
  {
    PopulationConfig c = sample_population_config();
    c.schemes = {static_cast<core::Scheme>(200)};
    std::vector<uint8_t> enc;
    CodecWriter w(enc);
    encode_population_config(c, w);
    CodecReader r(enc);
    PopulationConfig out;
    EXPECT_FALSE(decode_population_config(r, &out));
  }
  {
    PopulationConfig c = sample_population_config();
    c.cc_algo = static_cast<cc::CcAlgo>(9);
    std::vector<uint8_t> enc;
    CodecWriter w(enc);
    encode_population_config(c, w);
    CodecReader r(enc);
    PopulationConfig out;
    EXPECT_FALSE(decode_population_config(r, &out));
  }
  {
    PopulationConfig c = sample_population_config();
    c.container = static_cast<media::Container>(7);
    std::vector<uint8_t> enc;
    CodecWriter w(enc);
    encode_population_config(c, w);
    CodecReader r(enc);
    PopulationConfig out;
    EXPECT_FALSE(decode_population_config(r, &out));
  }
}

TEST(PopulationConfigCodec, RejectsTruncationAtEveryPrefix) {
  std::vector<uint8_t> encoded;
  CodecWriter w(encoded);
  encode_population_config(sample_population_config(), w);
  for (size_t keep = 0; keep < encoded.size(); ++keep) {
    const std::span<const uint8_t> cut(encoded.data(), keep);
    CodecReader r(cut);
    PopulationConfig out;
    EXPECT_FALSE(decode_population_config(r, &out)) << keep;
  }
}

// ---- control frames (dispatcher -> worker direction) --------------------

TEST(Frames, ControlFramesRoundTrip) {
  std::vector<uint8_t> stream;
  append_stream_header(stream);
  {
    std::vector<uint8_t> payload;
    CodecWriter w(payload);
    w.u64(3);  // worker id
    encode_population_config(sample_population_config(), w);
    append_frame(FrameType::kConfig, payload, stream);
  }
  {
    std::vector<uint8_t> payload;
    CodecWriter w(payload);
    w.u64(128);
    w.u64(192);
    append_frame(FrameType::kChunkAssign, payload, stream);
  }
  append_frame(FrameType::kEnd, {}, stream);

  size_t off = 0;
  ASSERT_EQ(read_stream_header(stream, &off), FrameStatus::kOk);
  FrameView frame;
  ASSERT_EQ(next_frame(stream, &off, &frame), FrameStatus::kOk);
  ASSERT_EQ(frame.type, FrameType::kConfig);
  {
    CodecReader r(frame.payload);
    uint64_t worker = 0;
    PopulationConfig cfg;
    ASSERT_TRUE(r.u64(&worker));
    ASSERT_TRUE(decode_population_config(r, &cfg));
    EXPECT_EQ(worker, 3u);
    EXPECT_EQ(cfg.sessions, 4097u);
    EXPECT_EQ(r.remaining(), 0u);
  }
  ASSERT_EQ(next_frame(stream, &off, &frame), FrameStatus::kOk);
  ASSERT_EQ(frame.type, FrameType::kChunkAssign);
  {
    CodecReader r(frame.payload);
    uint64_t b = 0, e = 0;
    ASSERT_TRUE(r.u64(&b));
    ASSERT_TRUE(r.u64(&e));
    EXPECT_EQ(b, 128u);
    EXPECT_EQ(e, 192u);
  }
  ASSERT_EQ(next_frame(stream, &off, &frame), FrameStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kEnd);
  EXPECT_EQ(off, stream.size());
}

TEST(Frames, UnknownFrameTypeIsCorrupt) {
  std::vector<uint8_t> stream;
  append_stream_header(stream);
  append_frame(static_cast<FrameType>(6), {}, stream);
  size_t off = 0;
  ASSERT_EQ(read_stream_header(stream, &off), FrameStatus::kOk);
  FrameView frame;
  EXPECT_EQ(next_frame(stream, &off, &frame), FrameStatus::kCorrupt);
}

}  // namespace
}  // namespace wira::exp
