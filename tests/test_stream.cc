// Unit tests for stream send/receive machinery: chunking, retransmission
// scheduling, reassembly of out-of-order and overlapping frames.
#include "quic/stream.h"

#include <gtest/gtest.h>

#include <numeric>

namespace wira::quic {
namespace {

std::vector<uint8_t> seq_bytes(size_t n, uint8_t start = 0) {
  std::vector<uint8_t> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

std::vector<uint8_t> vec(std::span<const uint8_t> s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(SendStream, ChunksNewDataInOrder) {
  SendStream s(3);
  s.write(seq_bytes(2500));
  auto a = s.next_chunk(1000);
  auto b = s.next_chunk(1000);
  auto c = s.next_chunk(1000);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->offset, 0u);
  EXPECT_EQ(b->offset, 1000u);
  EXPECT_EQ(c->offset, 2000u);
  EXPECT_EQ(c->data.size(), 500u);
  EXPECT_FALSE(s.next_chunk(1000).has_value());
}

TEST(SendStream, FinOnLastChunk) {
  SendStream s(3);
  s.write(seq_bytes(100), /*fin=*/true);
  auto c = s.next_chunk(1000);
  ASSERT_TRUE(c);
  EXPECT_TRUE(c->fin);
  EXPECT_FALSE(s.has_data_to_send());
}

TEST(SendStream, BareFinAfterData) {
  SendStream s(3);
  s.write(seq_bytes(10));
  auto d = s.next_chunk(100);
  ASSERT_TRUE(d);
  EXPECT_FALSE(d->fin);
  s.write({}, /*fin=*/true);
  auto f = s.next_chunk(100);
  ASSERT_TRUE(f);
  EXPECT_TRUE(f->fin);
  EXPECT_TRUE(f->data.empty());
  EXPECT_EQ(f->offset, 10u);
}

TEST(SendStream, LostRangeIsRetransmittedFirst) {
  SendStream s(3);
  s.write(seq_bytes(3000));
  (void)s.next_chunk(1000);
  (void)s.next_chunk(1000);
  s.on_range_lost(0, 1000, false);
  auto r = s.next_chunk(1000);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->offset, 0u);  // retransmission before new data
  EXPECT_EQ(vec(r->data), seq_bytes(1000));
  auto n = s.next_chunk(1000);
  ASSERT_TRUE(n);
  EXPECT_EQ(n->offset, 2000u);  // then the remaining new data
}

TEST(SendStream, AckedBytesNotRetransmitted) {
  SendStream s(3);
  s.write(seq_bytes(1000));
  (void)s.next_chunk(1000);
  s.on_range_acked(0, 600, false);
  s.on_range_lost(0, 1000, false);  // loss report overlapping the ack
  auto r = s.next_chunk(1000);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->offset, 600u);
  EXPECT_EQ(r->data.size(), 400u);
  EXPECT_FALSE(s.has_data_to_send());
}

TEST(SendStream, AllAckedTracksFin) {
  SendStream s(3);
  s.write(seq_bytes(100), true);
  auto c = s.next_chunk(1000);
  EXPECT_FALSE(s.all_acked());
  s.on_range_acked(0, 100, /*fin_acked=*/false);
  EXPECT_FALSE(s.all_acked());
  s.on_range_acked(0, 0, /*fin_acked=*/true);
  EXPECT_TRUE(s.all_acked());
  (void)c;
}

TEST(SendStream, LostFinIsResent) {
  SendStream s(3);
  s.write(seq_bytes(10), true);
  (void)s.next_chunk(100);
  s.on_range_lost(0, 10, /*fin_lost=*/true);
  auto r = s.next_chunk(100);
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->fin);
}

TEST(SendStream, PendingBytesAccounting) {
  SendStream s(3);
  s.write(seq_bytes(500));
  EXPECT_EQ(s.pending_bytes(), 500u);
  (void)s.next_chunk(200);
  EXPECT_EQ(s.pending_bytes(), 300u);
  s.on_range_lost(0, 200, false);
  EXPECT_EQ(s.pending_bytes(), 500u);
}

TEST(RecvStream, InOrderDelivery) {
  RecvStream s(3);
  std::vector<uint8_t> got;
  bool fin = false;
  s.set_on_data([&](std::span<const uint8_t> d, bool f) {
    got.insert(got.end(), d.begin(), d.end());
    fin |= f;
  });
  s.on_frame(0, seq_bytes(100), false);
  s.on_frame(100, seq_bytes(50, 100), true);
  EXPECT_EQ(got.size(), 150u);
  EXPECT_TRUE(fin);
  EXPECT_TRUE(s.finished());
}

TEST(RecvStream, OutOfOrderReassembly) {
  RecvStream s(3);
  std::vector<uint8_t> got;
  s.set_on_data([&](std::span<const uint8_t> d, bool) {
    got.insert(got.end(), d.begin(), d.end());
  });
  const auto all = seq_bytes(300);
  s.on_frame(200, {all.begin() + 200, all.end()}, false);
  EXPECT_TRUE(got.empty());
  s.on_frame(100, {all.begin() + 100, all.begin() + 200}, false);
  EXPECT_TRUE(got.empty());
  s.on_frame(0, {all.begin(), all.begin() + 100}, false);
  EXPECT_EQ(got, all);
}

TEST(RecvStream, DuplicateAndOverlapTrimmed) {
  RecvStream s(3);
  std::vector<uint8_t> got;
  s.set_on_data([&](std::span<const uint8_t> d, bool) {
    got.insert(got.end(), d.begin(), d.end());
  });
  const auto all = seq_bytes(200);
  s.on_frame(0, {all.begin(), all.begin() + 120}, false);
  s.on_frame(80, {all.begin() + 80, all.end()}, false);  // overlaps 40 bytes
  s.on_frame(0, {all.begin(), all.begin() + 120}, false);  // full duplicate
  EXPECT_EQ(got, all);
  EXPECT_EQ(s.contiguous_bytes(), 200u);
}

TEST(RecvStream, HighestSeenTracksGaps) {
  RecvStream s(3);
  s.set_on_data([](std::span<const uint8_t>, bool) {});
  s.on_frame(500, seq_bytes(100), false);
  EXPECT_EQ(s.highest_seen(), 600u);
  EXPECT_EQ(s.contiguous_bytes(), 0u);
}

TEST(RecvStream, OutOfOrderDataSurvivesSourceBufferReuse) {
  // The copy boundary: on_frame copies out-of-order payloads into the
  // reassembly map, so mutating or freeing the source buffer afterwards
  // must not corrupt what is eventually delivered.
  RecvStream s(3);
  std::vector<uint8_t> got;
  s.set_on_data([&](std::span<const uint8_t> d, bool) {
    got.insert(got.end(), d.begin(), d.end());
  });
  const auto all = seq_bytes(200);
  {
    std::vector<uint8_t> tail(all.begin() + 100, all.end());
    s.on_frame(100, tail, false);
    std::fill(tail.begin(), tail.end(), 0xFF);  // mutate after hand-off
  }  // ...and free it
  {
    std::vector<uint8_t> head(all.begin(), all.begin() + 100);
    s.on_frame(0, head, false);
    std::fill(head.begin(), head.end(), 0xEE);
  }
  EXPECT_EQ(got, all);
}

TEST(RecvStream, InOrderFastPathDeliversBorrowedBytes) {
  // In-order data with an empty reassembly map is delivered zero-copy:
  // the callback span must alias the caller's buffer.
  RecvStream s(3);
  const uint8_t* seen = nullptr;
  size_t seen_len = 0;
  s.set_on_data([&](std::span<const uint8_t> d, bool) {
    seen = d.data();
    seen_len = d.size();
  });
  const auto data = seq_bytes(64);
  s.on_frame(0, data, false);
  ASSERT_EQ(seen_len, 64u);
  EXPECT_EQ(seen, data.data());
}

// The segment cache recycles reassembly map nodes and their buffers
// across streams (one cache per event loop in production).  Delivery
// must stay byte-identical while the graveyard absorbs retired nodes
// and hands them back, bounded by kMaxNodes.
TEST(RecvStream, SegmentCacheRecyclesAcrossStreams) {
  RecvSegmentCache cache;
  const auto all = seq_bytes(240);
  for (int round = 0; round < 3; ++round) {
    RecvStream s(3, &cache);
    std::vector<uint8_t> got;
    s.set_on_data([&](std::span<const uint8_t> d, bool) {
      got.insert(got.end(), d.begin(), d.end());
    });
    s.on_frame(160, {all.begin() + 160, all.end()}, false);
    s.on_frame(80, {all.begin() + 80, all.begin() + 160}, false);
    s.on_frame(0, {all.begin(), all.begin() + 80}, false);
    EXPECT_EQ(got, all) << "round " << round;
  }
  EXPECT_FALSE(cache.graveyard.empty());
  EXPECT_LE(cache.graveyard.size(), RecvSegmentCache::kMaxNodes);
}

// Segments still parked at stream destruction (a gap never filled) must
// land in the cache too, not leak or dangle.
TEST(RecvStream, SegmentCacheAbsorbsUndeliveredSegmentsAtDestruction) {
  RecvSegmentCache cache;
  {
    RecvStream s(3, &cache);
    s.set_on_data([](std::span<const uint8_t>, bool) {});
    s.on_frame(100, seq_bytes(50), false);  // never delivered: gap at 0
    EXPECT_TRUE(cache.graveyard.empty());
  }
  EXPECT_EQ(cache.graveyard.size(), 1u);
}

TEST(RecvStream, FinWithoutDataCompletes) {
  RecvStream s(3);
  bool fin = false;
  s.set_on_data([&](std::span<const uint8_t>, bool f) { fin |= f; });
  s.on_frame(0, seq_bytes(10), false);
  s.on_frame(10, {}, true);
  EXPECT_TRUE(fin);
  EXPECT_TRUE(s.finished());
}

}  // namespace
}  // namespace wira::quic
