// Unit tests for the per-event-loop bump arena: epoch reset semantics,
// alignment, large-allocation fallback, the allocator adapter's heap
// fallback, and the steady-state zero-growth contract of the packet
// serializer's buffer-reuse overload.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "quic/packet.h"
#include "sim/event_loop.h"

namespace wira::util {
namespace {

TEST(Arena, BumpAllocationIsSequentialWithinABlock) {
  Arena a;
  auto* p1 = static_cast<unsigned char*>(a.allocate(64));
  auto* p2 = static_cast<unsigned char*>(a.allocate(64));
  EXPECT_EQ(p2, p1 + 64);
  EXPECT_EQ(a.bytes_allocated(), 128u);
  EXPECT_EQ(a.block_count(), 1u);
}

TEST(Arena, EpochResetRewindsAndRetainsBlocks) {
  Arena a(/*block_size=*/256);
  void* first = a.allocate(100);
  (void)a.allocate(200);  // spills into a second block
  EXPECT_EQ(a.block_count(), 2u);
  EXPECT_EQ(a.epoch(), 0u);

  a.reset();
  EXPECT_EQ(a.epoch(), 1u);
  EXPECT_EQ(a.bytes_allocated(), 0u);
  // Retained: same blocks, so the first post-reset allocation lands on
  // the same address and no new block is created.
  void* again = a.allocate(100);
  EXPECT_EQ(again, first);
  EXPECT_EQ(a.block_count(), 2u);
  EXPECT_EQ(a.retained_bytes(), 2u * 256u);
}

TEST(Arena, TotalAllocatedIsMonotoneAcrossResets) {
  Arena a;
  (void)a.allocate(100);
  a.reset();
  (void)a.allocate(50);
  EXPECT_EQ(a.total_allocated(), 150u);
  EXPECT_EQ(a.bytes_allocated(), 50u);
}

TEST(Arena, RespectsAlignment) {
  Arena a;
  (void)a.allocate(1, 1);  // misalign the cursor
  for (const size_t align : {2u, 4u, 8u, 16u, 64u}) {
    void* p = a.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(Arena, LargeAllocationGetsDedicatedBlockFreedOnReset) {
  Arena a(/*block_size=*/128);
  void* big = a.allocate(4096);
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(a.large_block_count(), 1u);
  // The giant block never counts as retained capacity...
  EXPECT_EQ(a.retained_bytes(), 0u);
  a.reset();
  // ...and is released by the epoch reset, so one oversized datagram
  // cannot pin memory for the rest of the run.
  EXPECT_EQ(a.large_block_count(), 0u);
}

TEST(Arena, LargeAllocationHonorsExtendedAlignment) {
  Arena a(/*block_size=*/64);
  void* p = a.allocate(1000, 128);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 128, 0u);
}

TEST(ArenaAllocator, NullArenaFallsBackToHeap) {
  ArenaVector<int> v;  // default allocator: arena == nullptr
  v.assign(1000, 7);
  EXPECT_EQ(v.get_allocator().arena(), nullptr);
  EXPECT_EQ(v[999], 7);
}

TEST(ArenaAllocator, CopiesOfArenaContainersLandOnTheHeap) {
  Arena a;
  ArenaVector<int> in_arena{ArenaAllocator<int>(&a)};
  in_arena.assign(16, 3);
  ASSERT_EQ(in_arena.get_allocator().arena(), &a);
  // select_on_container_copy_construction: the copy must not borrow the
  // arena, so stashing it past an epoch reset is safe.
  ArenaVector<int> copy(in_arena);
  EXPECT_EQ(copy.get_allocator().arena(), nullptr);
  a.reset();
  EXPECT_EQ(copy[15], 3);
}

TEST(ArenaAllocator, MovePropagatesTheArena) {
  Arena a;
  ArenaVector<int> src{ArenaAllocator<int>(&a)};
  src.assign(8, 1);
  ArenaVector<int> dst = std::move(src);
  EXPECT_EQ(dst.get_allocator().arena(), &a);
}

TEST(EventLoopArena, ResetsWhenSimulatedTimeAdvances) {
  sim::EventLoop loop;
  uint64_t epoch_a = 0, epoch_b = 0, epoch_c = 0;
  loop.schedule_at(milliseconds(1), [&] {
    (void)loop.arena().allocate(64);
    epoch_a = loop.arena().epoch();
  });
  loop.schedule_at(milliseconds(1), [&] {
    // Same tick: no reset between events at an identical timestamp.
    epoch_b = loop.arena().epoch();
    EXPECT_GT(loop.arena().bytes_allocated(), 0u);
  });
  loop.schedule_at(milliseconds(2), [&] {
    // Clock advanced: the arena rewound before this event ran.
    epoch_c = loop.arena().epoch();
    EXPECT_EQ(loop.arena().bytes_allocated(), 0u);
  });
  loop.run();
  EXPECT_EQ(epoch_a, epoch_b);
  EXPECT_GT(epoch_c, epoch_b);
}

TEST(SerializeReuse, ZeroGrowthAfterWarmup) {
  // The hot path serializes every packet into a pooled buffer via the
  // reuse overload and parses every datagram into the loop arena.  After
  // one warmup round, a steady-state round must allocate nothing new:
  // stable buffer capacity, stable arena block count, no large blocks.
  const std::vector<uint8_t> payload(1200, 0xAB);
  quic::Packet p;
  p.conn_id = 7;
  p.packet_number = 1;
  quic::StreamFrame f;
  f.stream_id = 3;
  f.data = payload;
  p.frames.emplace_back(f);

  Arena arena;
  std::vector<uint8_t> wire;  // plays the role of the pooled buffer
  auto round = [&] {
    wire = quic::serialize_packet(p, std::move(wire));
    auto parsed = quic::parse_packet(wire, &arena);
    ASSERT_TRUE(parsed.has_value());
    arena.reset();  // tick boundary
  };

  round();  // warmup: buffer grows, arena maps its block
  const size_t warm_capacity = wire.capacity();
  const size_t warm_blocks = arena.block_count();
  for (int i = 0; i < 100; ++i) {
    p.packet_number++;
    round();
    EXPECT_EQ(wire.capacity(), warm_capacity);
    EXPECT_EQ(arena.block_count(), warm_blocks);
    EXPECT_EQ(arena.large_block_count(), 0u);
  }
}

}  // namespace
}  // namespace wira::util
