// Tests for the live-telemetry pipeline (DESIGN.md §7): the Prometheus
// text renderer, the exporter's flush-JSONL tailing state, and the mini
// HTTP server — driven over a real loopback socket.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "obs/flush_export.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/prom.h"

namespace wira::obs {
namespace {

// ---------------------------------------------------------------------------
// Text building blocks.

TEST(PromText, DoubleIsShortestRoundTrip) {
  EXPECT_EQ(prom_double(12.5), "12.5");
  EXPECT_EQ(prom_double(0.1), "0.1");
  EXPECT_EQ(prom_double(3.0), "3");
  EXPECT_EQ(prom_double(0.0), "0");
  // Round-trip exactness is the contract, not a particular spelling.
  EXPECT_EQ(std::stod(prom_double(1.0 / 3.0)), 1.0 / 3.0);
}

TEST(PromText, LabelEscaping) {
  EXPECT_EQ(prom_escape_label("plain"), "plain");
  EXPECT_EQ(prom_escape_label("back\\slash"), "back\\\\slash");
  EXPECT_EQ(prom_escape_label("quo\"te"), "quo\\\"te");
  EXPECT_EQ(prom_escape_label("new\nline"), "new\\nline");
  PromTextBuilder b;
  b.sample("m", {{"k", "a\"b\\c\nd"}}, uint64_t{1});
  EXPECT_EQ(b.text(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(PromText, NameMapping) {
  // Trailing CamelCase component becomes the scheme label.
  PromNameParts p = prom_name_parts("sessions.Wira");
  EXPECT_EQ(p.family, "sessions");
  EXPECT_EQ(p.scheme, "Wira");
  p = prom_name_parts("phase.delivery_us.WiraFF");
  EXPECT_EQ(p.family, "phase_delivery_us");
  EXPECT_EQ(p.scheme, "WiraFF");
  // All-lowercase names have no scheme and sanitize dots to underscores.
  p = prom_name_parts("trace.open_failed");
  EXPECT_EQ(p.family, "trace_open_failed");
  EXPECT_EQ(p.scheme, "");
}

// ---------------------------------------------------------------------------
// Full-registry rendering.

// The golden: one registry with all three kinds, rendered byte-exactly.
// Per-scheme counters collapse into one family; histogram `le` bounds are
// hi-1 (exact for integer samples); families sort within each kind.
TEST(PromRender, GoldenFullRegistry) {
  MetricsRegistry registry;
  registry.inc("sessions.Wira", 3);
  registry.inc("sessions.Baseline", 2);
  registry.inc("trace.open_failed");
  registry.set_gauge("bytes_on_wire", 12.5);
  LatencyHistogram& h = registry.histogram("phase.delivery_us.Wira");
  h.record(3);
  h.record(3);
  h.record(7);
  h.record(100);  // log-bucketed: lands in [100, 104)

  const std::string expected =
      "# TYPE wira_sessions_total counter\n"
      "wira_sessions_total{scheme=\"Baseline\"} 2\n"
      "wira_sessions_total{scheme=\"Wira\"} 3\n"
      "# TYPE wira_trace_open_failed_total counter\n"
      "wira_trace_open_failed_total 1\n"
      "# TYPE wira_bytes_on_wire gauge\n"
      "wira_bytes_on_wire 12.5\n"
      "# TYPE wira_phase_delivery_us histogram\n"
      "wira_phase_delivery_us_bucket{scheme=\"Wira\",le=\"3\"} 2\n"
      "wira_phase_delivery_us_bucket{scheme=\"Wira\",le=\"7\"} 3\n"
      "wira_phase_delivery_us_bucket{scheme=\"Wira\",le=\"103\"} 4\n"
      "wira_phase_delivery_us_bucket{scheme=\"Wira\",le=\"+Inf\"} 4\n"
      "wira_phase_delivery_us_sum{scheme=\"Wira\"} 113\n"
      "wira_phase_delivery_us_count{scheme=\"Wira\"} 4\n";
  EXPECT_EQ(render_prometheus(registry), expected);
}

// Bucket-boundary exactness: for any recorded integer the emitted `le` is
// bucket_hi - 1, the largest value that bucket can hold, so the cumulative
// count at that `le` is exact rather than quantized.
TEST(PromRender, HistogramBucketBoundsAreExact) {
  for (const uint64_t value : {uint64_t{0}, uint64_t{15}, uint64_t{16},
                               uint64_t{1000}, uint64_t{123456789}}) {
    MetricsRegistry registry;
    registry.histogram("v_us").record(value);
    const size_t idx = LatencyHistogram::bucket_index(value);
    ASSERT_GE(value, LatencyHistogram::bucket_lo(idx));
    ASSERT_LT(value, LatencyHistogram::bucket_hi(idx));
    const std::string expected_line =
        "wira_v_us_bucket{le=\"" +
        std::to_string(LatencyHistogram::bucket_hi(idx) - 1) + "\"} 1\n";
    EXPECT_NE(render_prometheus(registry).find(expected_line),
              std::string::npos)
        << "value " << value << ": " << render_prometheus(registry);
  }
}

TEST(PromRender, EmptyRegistryRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(render_prometheus(registry), "");
}

// ---------------------------------------------------------------------------
// Flush-JSONL tailing.

TEST(LineTailTest, SplitsCompleteLinesAndBuffersPartials) {
  LineTail tail;
  std::vector<std::string> lines;
  auto collect = [&lines](std::string_view l) {
    lines.emplace_back(l);
  };
  tail.add("alpha\nbra", collect);
  EXPECT_EQ(lines, std::vector<std::string>{"alpha"});
  EXPECT_EQ(tail.pending_bytes(), 3u);  // "bra" awaits its newline
  tail.add("vo\n\ncha", collect);       // completes "bravo", then an empty line
  EXPECT_EQ(lines, (std::vector<std::string>{"alpha", "bravo", ""}));
  tail.add("rlie", collect);
  EXPECT_EQ(tail.pending_bytes(), 7u);
  tail.add("\n", collect);
  EXPECT_EQ(lines, (std::vector<std::string>{"alpha", "bravo", "", "charlie"}));
  EXPECT_EQ(tail.pending_bytes(), 0u);
}

const char kFlushLine[] =
    "{\"sessions\":200,\"final\":false,\"rss_mb\":48.2,\"schemes\":{"
    "\"Baseline\":{\"sessions\":200,\"ffct_ms\":{\"count\":180,"
    "\"mean\":95.250,\"p50\":88.000,\"p90\":140.500,\"p99\":200.125},"
    "\"fflr_ppm\":{\"count\":180,\"mean\":1200.000,\"p50\":900.000,"
    "\"p90\":2500.000,\"p99\":4000.000}},"
    "\"Wira\":{\"sessions\":200,\"ffct_ms\":{\"count\":190,"
    "\"mean\":61.125,\"p50\":55.000,\"p90\":90.000,\"p99\":130.000},"
    "\"fflr_ppm\":{\"count\":190,\"mean\":800.000,\"p50\":600.000,"
    "\"p90\":1500.000,\"p99\":2600.000}}}}";

TEST(FlushParse, ParsesAggregateSinkLine) {
  FlushSummary summary;
  std::string error;
  ASSERT_TRUE(parse_flush_line(kFlushLine, &summary, &error)) << error;
  EXPECT_EQ(summary.sessions, 200u);
  EXPECT_FALSE(summary.final_line);
  ASSERT_TRUE(summary.rss_mb.has_value());
  EXPECT_DOUBLE_EQ(*summary.rss_mb, 48.2);
  ASSERT_EQ(summary.schemes.size(), 2u);
  EXPECT_EQ(summary.schemes[0].first, "Baseline");
  EXPECT_EQ(summary.schemes[1].first, "Wira");
  const FlushSchemeSummary& wira = summary.schemes[1].second;
  EXPECT_EQ(wira.sessions, 200u);
  ASSERT_TRUE(wira.ffct_ms.present);
  EXPECT_EQ(wira.ffct_ms.count, 190u);
  EXPECT_DOUBLE_EQ(wira.ffct_ms.p99, 130.0);
  ASSERT_TRUE(wira.fflr_ppm.present);
  EXPECT_DOUBLE_EQ(wira.fflr_ppm.p50, 600.0);
}

TEST(FlushParse, RejectsMalformedLines) {
  FlushSummary summary;
  std::string error;
  EXPECT_FALSE(parse_flush_line("", &summary, &error));
  EXPECT_FALSE(parse_flush_line("not json", &summary, &error));
  EXPECT_FALSE(parse_flush_line("{\"sessions\":5}", &summary, &error));
  EXPECT_FALSE(parse_flush_line(
      "{\"sessions\":5,\"final\":true,\"schemes\":{\"W\":{}}}", &summary,
      &error));
}

// The tailing contract: a chunk ending mid-line (the writer is mid-flush)
// is never parsed — the partial stays buffered until its newline lands,
// and only then counts as a line.
TEST(ExporterStateTest, TruncatedFinalLineWaitsForItsNewline) {
  const std::string line = std::string(kFlushLine) + "\n";
  ExporterState state;
  const size_t cut = line.size() / 2;
  state.ingest(line.substr(0, cut));
  EXPECT_EQ(state.lines_total(), 0u);
  EXPECT_EQ(state.parse_errors(), 0u);
  EXPECT_FALSE(state.has_summary());
  EXPECT_EQ(state.pending_bytes(), cut);
  state.ingest(line.substr(cut));
  EXPECT_EQ(state.lines_total(), 1u);
  EXPECT_EQ(state.parse_errors(), 0u);
  ASSERT_TRUE(state.has_summary());
  EXPECT_EQ(state.summary().sessions, 200u);
  EXPECT_EQ(state.pending_bytes(), 0u);
}

// Flush lines are cumulative, so the newest parsable line wins; garbage
// lines are counted, not fatal, and never clobber the summary.
TEST(ExporterStateTest, LatestLineWinsAndGarbageIsCounted) {
  ExporterState state;
  state.ingest(std::string(kFlushLine) + "\n");
  state.ingest("garbage line\n");
  state.ingest(
      "{\"sessions\":400,\"final\":true,\"schemes\":{"
      "\"Wira\":{\"sessions\":400}}}\n");
  EXPECT_EQ(state.lines_total(), 3u);
  EXPECT_EQ(state.parse_errors(), 1u);
  ASSERT_TRUE(state.has_summary());
  EXPECT_EQ(state.summary().sessions, 400u);
  EXPECT_TRUE(state.summary().final_line);
  EXPECT_FALSE(state.summary().rss_mb.has_value());
}

TEST(ExporterStateTest, RenderGolden) {
  ExporterState state;
  // Pre-ingest render is still valid exposition text (self-metrics only).
  EXPECT_EQ(state.render(),
            "# HELP wira_exporter_lines_total complete flush JSONL lines "
            "consumed\n"
            "# TYPE wira_exporter_lines_total counter\n"
            "wira_exporter_lines_total 0\n"
            "# HELP wira_exporter_parse_errors_total flush lines that "
            "failed to parse\n"
            "# TYPE wira_exporter_parse_errors_total counter\n"
            "wira_exporter_parse_errors_total 0\n"
            "# HELP wira_exporter_scrapes_total /metrics requests served\n"
            "# TYPE wira_exporter_scrapes_total counter\n"
            "wira_exporter_scrapes_total 0\n");

  state.ingest(std::string(kFlushLine) + "\n");
  state.note_scrape();
  const std::string text = state.render();
  EXPECT_NE(text.find("wira_soak_sessions_total 200\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("wira_soak_final 0\n"), std::string::npos);
  EXPECT_NE(text.find("wira_soak_rss_mb 48.2\n"), std::string::npos);
  EXPECT_NE(
      text.find("wira_soak_scheme_sessions_total{scheme=\"Wira\"} 200\n"),
      std::string::npos);
  EXPECT_NE(text.find(
                "wira_soak_ffct_ms{scheme=\"Wira\",quantile=\"0.99\"} 130\n"),
            std::string::npos);
  // _sum reconstructed as mean * count: 61.125 * 190 = 11613.75.
  EXPECT_NE(text.find("wira_soak_ffct_ms_sum{scheme=\"Wira\"} 11613.75\n"),
            std::string::npos);
  EXPECT_NE(text.find("wira_soak_ffct_ms_count{scheme=\"Wira\"} 190\n"),
            std::string::npos);
  EXPECT_NE(text.find("wira_exporter_scrapes_total 1\n"), std::string::npos);
}

TEST(FlushParse, ParsesAnomalyDumps) {
  FlushSummary summary;
  std::string error;
  ASSERT_TRUE(parse_flush_line(
      "{\"sessions\":50,\"final\":false,"
      "\"anomaly_dumps\":{\"corner_case\":3,\"stall\":1},"
      "\"schemes\":{\"Wira\":{\"sessions\":50}}}",
      &summary, &error))
      << error;
  ASSERT_EQ(summary.anomaly_dumps.size(), 2u);
  EXPECT_EQ(summary.anomaly_dumps[0].first, "corner_case");
  EXPECT_EQ(summary.anomaly_dumps[0].second, 3u);
  EXPECT_EQ(summary.anomaly_dumps[1].first, "stall");
  EXPECT_EQ(summary.anomaly_dumps[1].second, 1u);
  // Non-numeric trigger counts are malformed, not silently dropped.
  EXPECT_FALSE(parse_flush_line(
      "{\"sessions\":5,\"final\":true,"
      "\"anomaly_dumps\":{\"stall\":\"one\"},\"schemes\":{}}",
      &summary, &error));
}

TEST(ExporterStateTest, RendersAnomalyDumpCounters) {
  ExporterState state;
  state.ingest(
      "{\"sessions\":50,\"final\":false,"
      "\"anomaly_dumps\":{\"decode_error\":2,\"stall\":1},"
      "\"schemes\":{\"Wira\":{\"sessions\":50}}}\n");
  const std::string text = state.render();
  EXPECT_NE(text.find("# TYPE wira_anomaly_dumps_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("wira_anomaly_dumps_total{trigger=\"decode_error\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("wira_anomaly_dumps_total{trigger=\"stall\"} 1\n"),
            std::string::npos);
  // Clean runs don't emit the family at all.
  ExporterState clean;
  clean.ingest(
      "{\"sessions\":5,\"final\":true,\"schemes\":{\"Wira\":"
      "{\"sessions\":5}}}\n");
  EXPECT_EQ(clean.render().find("wira_anomaly_dumps_total"),
            std::string::npos);
}

TEST(ExporterStateTest, ParsesDispatchTelemetry) {
  FlushSummary summary;
  std::string error;
  ASSERT_TRUE(parse_flush_line(
      "{\"sessions\":100,\"final\":false,"
      "\"dispatch\":{\"busy\":3,\"chunks\":{\"0\":5,\"1\":7,\"2\":4}},"
      "\"schemes\":{\"Wira\":{\"sessions\":100}}}",
      &summary, &error))
      << error;
  ASSERT_TRUE(summary.dispatch_busy.has_value());
  EXPECT_EQ(*summary.dispatch_busy, 3u);
  ASSERT_EQ(summary.dispatch_chunks.size(), 3u);
  EXPECT_EQ(summary.dispatch_chunks[0].first, "0");
  EXPECT_EQ(summary.dispatch_chunks[0].second, 5u);
  EXPECT_EQ(summary.dispatch_chunks[1].second, 7u);
  EXPECT_EQ(summary.dispatch_chunks[2].second, 4u);
  // A dispatch block missing its chunks object is a malformed line.
  EXPECT_FALSE(parse_flush_line(
      "{\"sessions\":1,\"final\":false,\"dispatch\":{\"busy\":1},"
      "\"schemes\":{}}",
      &summary, &error));
  // A non-numeric chunk count is too.
  EXPECT_FALSE(parse_flush_line(
      "{\"sessions\":1,\"final\":false,"
      "\"dispatch\":{\"busy\":1,\"chunks\":{\"0\":\"five\"}},"
      "\"schemes\":{}}",
      &summary, &error));
}

TEST(ExporterStateTest, RendersDispatchFamilies) {
  ExporterState state;
  state.ingest(
      "{\"sessions\":100,\"final\":false,"
      "\"dispatch\":{\"busy\":3,\"chunks\":{\"0\":5,\"1\":7}},"
      "\"schemes\":{\"Wira\":{\"sessions\":100}}}\n");
  const std::string text = state.render();
  EXPECT_NE(text.find("# TYPE wira_dispatch_chunks_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wira_dispatch_chunks_total{worker=\"0\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("wira_dispatch_chunks_total{worker=\"1\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE wira_dispatch_worker_busy gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("wira_dispatch_worker_busy 3\n"), std::string::npos);
  // Single-process runs carry no dispatch block and render no family.
  ExporterState clean;
  clean.ingest(
      "{\"sessions\":5,\"final\":true,\"schemes\":{\"Wira\":"
      "{\"sessions\":5}}}\n");
  EXPECT_EQ(clean.render().find("wira_dispatch"), std::string::npos);
}

// Satellite: build identity and uptime are injectable, so the rendering is
// golden-testable without a clock or a git checkout.
TEST(ExporterStateTest, RenderGoldenBuildInfoAndUptime) {
  ExporterState state;
  state.set_build_info("0.8.0", "abc1234");
  state.set_uptime_seconds(12.5);
  const std::string text = state.render();
  EXPECT_EQ(text,
            "# HELP wira_exporter_lines_total complete flush JSONL lines "
            "consumed\n"
            "# TYPE wira_exporter_lines_total counter\n"
            "wira_exporter_lines_total 0\n"
            "# HELP wira_exporter_parse_errors_total flush lines that "
            "failed to parse\n"
            "# TYPE wira_exporter_parse_errors_total counter\n"
            "wira_exporter_parse_errors_total 0\n"
            "# HELP wira_exporter_scrapes_total /metrics requests served\n"
            "# TYPE wira_exporter_scrapes_total counter\n"
            "wira_exporter_scrapes_total 0\n"
            "# HELP wira_build_info build identity of the running exporter\n"
            "# TYPE wira_build_info gauge\n"
            "wira_build_info{version=\"0.8.0\",git_sha=\"abc1234\"} 1\n"
            "# HELP wira_process_uptime_seconds seconds since the exporter "
            "started\n"
            "# TYPE wira_process_uptime_seconds gauge\n"
            "wira_process_uptime_seconds 12.5\n");
}

// ---------------------------------------------------------------------------
// The mini HTTP server, over a real loopback socket.

/// Blocking one-shot HTTP client: connects, sends `request` verbatim,
/// reads to EOF.  The server under test is pumped by `pump` between
/// connect and read, because poll() on the caller's thread is the only
/// place server work happens.
std::string http_exchange(uint16_t port, const std::string& request,
                          MiniHttpServer& server) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (int i = 0; i < 1000; ++i) {
    server.poll(/*timeout_ms=*/1);
    const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      response.append(buf, static_cast<size_t>(n));
    } else if (n == 0 && !response.empty()) {
      break;  // orderly close after the response
    }
  }
  ::close(fd);
  return response;
}

TEST(MiniHttp, ServesHandlerResponseOverRealSocket) {
  MiniHttpServer server;
  std::string error;
  ASSERT_TRUE(server.start(/*port=*/0, &error)) << error;
  ASSERT_NE(server.port(), 0);
  server.set_handler([](const std::string& path) {
    MiniHttpServer::Response r;
    if (path == "/metrics") {
      r.body = "wira_up 1\n";
    } else {
      r.status = 404;
      r.body = "nope\n";
    }
    return r;
  });

  const std::string ok = http_exchange(
      server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", server);
  EXPECT_NE(ok.find("HTTP/1.1 200 OK\r\n"), std::string::npos) << ok;
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(ok.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(ok.find("\r\n\r\nwira_up 1\n"), std::string::npos);

  const std::string missing = http_exchange(
      server.port(), "GET /other HTTP/1.1\r\n\r\n", server);
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos)
      << missing;

  // Query strings are stripped before the handler sees the path.
  const std::string query = http_exchange(
      server.port(), "GET /metrics?x=1 HTTP/1.1\r\n\r\n", server);
  EXPECT_NE(query.find("HTTP/1.1 200 OK\r\n"), std::string::npos) << query;

  const std::string post = http_exchange(
      server.port(), "POST /metrics HTTP/1.1\r\n\r\n", server);
  EXPECT_NE(post.find("HTTP/1.1 405 Method Not Allowed\r\n"),
            std::string::npos)
      << post;

  EXPECT_EQ(server.requests_served(), 4u);
  server.stop();
}

TEST(MiniHttp, SequentialScrapesReuseTheListener) {
  MiniHttpServer server;
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;
  int calls = 0;
  server.set_handler([&calls](const std::string&) {
    MiniHttpServer::Response r;
    r.body = "n=" + std::to_string(++calls) + "\n";
    return r;
  });
  for (int i = 1; i <= 3; ++i) {
    const std::string resp = http_exchange(
        server.port(), "GET /metrics HTTP/1.1\r\n\r\n", server);
    EXPECT_NE(resp.find("n=" + std::to_string(i) + "\n"), std::string::npos)
        << resp;
  }
  EXPECT_EQ(server.requests_served(), 3u);
}

// Regression: a client that sends its full request and then shuts down
// its write side (legal one-shot HTTP) used to be dropped — read()==0
// closed the connection even though a complete request sat buffered.
TEST(MiniHttp, HalfClosedRequestIsStillServed) {
  MiniHttpServer server;
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;
  server.set_handler([](const std::string&) {
    MiniHttpServer::Response r;
    r.body = "hello\n";
    return r;
  });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const std::string request = "GET /metrics HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);  // EOF arrives with the request

  std::string response;
  char buf[4096];
  for (int i = 0; i < 1000 && response.find("hello") == std::string::npos;
       ++i) {
    server.poll(1);
    const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos)
      << response;
  EXPECT_NE(response.find("hello"), std::string::npos) << response;
  EXPECT_EQ(server.requests_served(), 1u);
}

// Regression: a slow reader (tiny SO_RCVBUF, draining in small sips) must
// never stall the server — every EAGAIN on the write path re-arms the fd
// for EPOLLOUT until the full body is flushed.
TEST(MiniHttp, SlowReaderDrainsLargeBody) {
  constexpr size_t kBody = 4 * 1024 * 1024;
  MiniHttpServer server;
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;
  server.set_handler([](const std::string&) {
    MiniHttpServer::Response r;
    r.body.assign(kBody, 'x');
    return r;
  });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const std::string request = "GET /big HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  size_t received = 0;
  bool closed = false;
  char buf[64 * 1024];
  for (int i = 0; i < 200000 && !closed; ++i) {
    server.poll(0);
    // One sip per tick: the kernel-side window stays small, so the
    // server hits EAGAIN repeatedly while the body drains.
    const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      received += static_cast<size_t>(n);
    } else if (n == 0) {
      closed = true;
    }
  }
  ::close(fd);
  EXPECT_TRUE(closed) << "server never finished the body";
  EXPECT_GT(received, kBody);  // headers + full body
  EXPECT_EQ(server.requests_served(), 1u);
}

}  // namespace
}  // namespace wira::obs
