// Flight-recorder tests (DESIGN.md §7): bounded POD rings, milestone
// retention under transport churn, signal-safe crash dumps, and the
// anomaly-trigger path of the population sweep — including that every
// materialized dump is joinable by the stock cross-vantage join.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/population_experiment.h"
#include "exp/session_runner.h"
#include "obs/flight_recorder.h"
#include "obs/trace_join.h"
#include "trace/tracer.h"

namespace wira::obs {
namespace {

namespace fs = std::filesystem;
using trace::Event;
using trace::EventType;

Event ev(TimeNs t, EventType type, uint64_t a = 0, uint64_t b = 0,
         std::string detail = {}) {
  Event e;
  e.time = t;
  e.type = type;
  e.a = a;
  e.b = b;
  e.detail = std::move(detail);
  return e;
}

TEST(FlightRecorder, SlotIsCompactPod) {
  EXPECT_EQ(sizeof(RecorderEvent), 48u);
  EXPECT_TRUE(std::is_trivially_copyable_v<RecorderEvent>);
}

TEST(FlightRecorder, MilestoneClassification) {
  // Join markers and anomaly signals must never be ring-evicted...
  for (const EventType t :
       {EventType::kRequestSent, EventType::kFrameComplete,
        EventType::kRequestReceived, EventType::kOriginByte,
        EventType::kFfParsed, EventType::kFirstVideoByte,
        EventType::kStallObserved, EventType::kCornerCase,
        EventType::kDecodeError, EventType::kHandshakeEvent,
        EventType::kInitApplied, EventType::kCookieEvent}) {
    EXPECT_TRUE(recorder_milestone(t)) << trace::event_type_name(t);
  }
  // ...while per-packet churn cycles through the ring.
  for (const EventType t :
       {EventType::kPacketSent, EventType::kPacketReceived,
        EventType::kPacketAcked, EventType::kPacketLost,
        EventType::kRttSample, EventType::kCwndSample,
        EventType::kPacingSample, EventType::kPtoFired,
        EventType::kCcStateChanged}) {
    EXPECT_FALSE(recorder_milestone(t)) << trace::event_type_name(t);
  }
}

TEST(FlightRecorder, RingEvictsOldestButMilestonesSurvive) {
  RecorderConfig cfg;
  cfg.milestone_capacity = 8;
  cfg.ring_capacity = 4;
  VantageRecorder rec(cfg);
  rec.on_event(ev(10, EventType::kRequestSent, 100));
  for (uint64_t p = 0; p < 20; ++p) {
    rec.on_event(ev(20 + static_cast<TimeNs>(p), EventType::kPacketSent, p));
  }
  rec.on_event(ev(50, EventType::kFrameComplete, 1, 60'000));

  EXPECT_EQ(rec.total_events(), 22u);
  EXPECT_EQ(rec.count(EventType::kPacketSent), 20u);  // eviction != forgetting
  EXPECT_EQ(rec.retained(), 2u + 4u);

  const std::vector<Event> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 6u);
  for (size_t k = 1; k < snap.size(); ++k) {
    EXPECT_GE(snap[k].time, snap[k - 1].time) << k;  // qlog needs sorted time
  }
  // The ring holds exactly the newest 4 packets, oldest first.
  std::vector<uint64_t> packets;
  bool saw_request = false, saw_frame = false;
  for (const Event& e : snap) {
    if (e.type == EventType::kPacketSent) packets.push_back(e.a);
    if (e.type == EventType::kRequestSent) saw_request = true;
    if (e.type == EventType::kFrameComplete) saw_frame = true;
  }
  EXPECT_EQ(packets, (std::vector<uint64_t>{16, 17, 18, 19}));
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_frame);
}

TEST(FlightRecorder, MilestoneOverflowSpillsIntoRing) {
  RecorderConfig cfg;
  cfg.milestone_capacity = 2;
  cfg.ring_capacity = 8;
  VantageRecorder rec(cfg);
  for (uint64_t k = 0; k < 4; ++k) {
    rec.on_event(
        ev(static_cast<TimeNs>(k), EventType::kCookieEvent, k, 0, "sealed"));
  }
  EXPECT_EQ(rec.count(EventType::kCookieEvent), 4u);
  EXPECT_EQ(rec.retained(), 4u);  // 2 milestones + 2 spilled into the ring
  const std::vector<Event> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(snap[k].a, k);
    EXPECT_EQ(snap[k].detail, "sealed");
  }
}

TEST(FlightRecorder, ResetRecyclesWithoutCarryover) {
  VantageRecorder rec(RecorderConfig{});
  rec.on_event(ev(1, EventType::kRequestSent));
  rec.on_event(ev(2, EventType::kPacketSent, 7));
  rec.reset();
  EXPECT_EQ(rec.total_events(), 0u);
  EXPECT_EQ(rec.retained(), 0u);
  EXPECT_EQ(rec.count(EventType::kPacketSent), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
  rec.on_event(ev(3, EventType::kStallObserved, 500, 0, "recv_gap"));
  ASSERT_EQ(rec.snapshot().size(), 1u);
  EXPECT_EQ(rec.snapshot()[0].detail, "recv_gap");
}

TEST(FlightRecorder, LongDetailIsTruncatedNulTerminated) {
  VantageRecorder rec(RecorderConfig{});
  const std::string longer(40, 'x');
  rec.on_event(ev(1, EventType::kCcStateChanged, 0, 0, longer));
  const std::vector<Event> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].detail, std::string(sizeof(RecorderEvent::detail) - 1,
                                        'x'));
}

TEST(FlightRecorder, CrashDumpRoundTripsThroughRawFd) {
  FlightRecorder fr;
  fr.server().on_event(ev(5, EventType::kRequestReceived));
  fr.server().on_event(ev(9, EventType::kPacketSent, 1, 1200));
  fr.client().on_event(ev(3, EventType::kRequestSent, 120));
  fr.client().on_event(
      ev(40, EventType::kFrameComplete, 1, 60'000, "frame"));

  const fs::path path =
      fs::temp_directory_path() /
      ("wira_crash_rt_" + std::to_string(::getpid()) + ".bin");
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(fr.crash_dump(fd, /*session_index=*/42, /*scheme=*/3));
  ::close(fd);

  std::ifstream in(path, std::ios::binary);
  FlightRecorder::CrashDump dump;
  std::string error;
  ASSERT_TRUE(FlightRecorder::read_crash_dump(in, &dump, &error)) << error;
  fs::remove(path);

  EXPECT_EQ(dump.session_index, 42u);
  EXPECT_EQ(dump.scheme, 3u);
  ASSERT_EQ(dump.server_events.size(), 2u);
  ASSERT_EQ(dump.client_events.size(), 2u);
  EXPECT_EQ(dump.server_events[0].type, EventType::kRequestReceived);
  EXPECT_EQ(dump.server_events[1].b, 1200u);
  EXPECT_EQ(dump.client_events[0].a, 120u);
  EXPECT_EQ(dump.client_events[1].detail, "frame");
  EXPECT_EQ(dump.client_events[1].time, 40);
}

TEST(FlightRecorder, ReadCrashDumpRejectsGarbageAndTruncation) {
  FlightRecorder::CrashDump dump;
  std::string error;
  {
    std::istringstream garbage("this is not a crash dump at all........");
    EXPECT_FALSE(FlightRecorder::read_crash_dump(garbage, &dump, &error));
    EXPECT_FALSE(error.empty());
  }
  // A valid dump truncated anywhere must fail, never fabricate events.
  FlightRecorder fr;
  fr.client().on_event(ev(3, EventType::kRequestSent, 120));
  const fs::path path =
      fs::temp_directory_path() /
      ("wira_crash_trunc_" + std::to_string(::getpid()) + ".bin");
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(fr.crash_dump(fd, 1, 0));
  ::close(fd);
  std::ifstream in(path, std::ios::binary);
  std::stringstream whole;
  whole << in.rdbuf();
  const std::string bytes = whole.str();
  fs::remove(path);
  for (size_t keep = 0; keep < bytes.size(); keep += 13) {
    std::istringstream cut(bytes.substr(0, keep));
    EXPECT_FALSE(FlightRecorder::read_crash_dump(cut, &dump, &error))
        << "prefix " << keep;
  }
}

// ---- end-to-end: recorder attached to a real session --------------------

media::StreamProfile default_stream() {
  media::StreamProfile p;
  p.stream_id = 1;
  p.iframe_mean_bytes = 60'000;
  p.iframe_intra_cv = 0.2;
  return p;
}

exp::SessionConfig clean_path_session() {
  exp::SessionConfig cfg;
  cfg.path.bandwidth = mbps(20);
  cfg.path.rtt = milliseconds(40);
  cfg.path.loss_rate = 0.0;
  cfg.path.buffer_bytes = 128 * 1024;
  cfg.stream = default_stream();
  cfg.scheme = core::Scheme::kBaseline;
  cfg.seed = 7;
  return cfg;
}

TEST(FlightRecorder, SessionDumpJoinsLikeASampledPair) {
  FlightRecorder fr;
  exp::SessionConfig cfg = clean_path_session();
  cfg.recorder = &fr;
  const exp::SessionResult res = exp::run_session(cfg);
  ASSERT_TRUE(res.first_frame_completed);

  // Both vantages recorded: the server streamed packets, the client sent
  // the request and completed frame 1.
  EXPECT_GT(fr.server().total_events(), 0u);
  EXPECT_GT(fr.client().total_events(), 0u);
  EXPECT_EQ(fr.client().count(EventType::kRequestSent), 1u);
  EXPECT_GE(fr.client().count(EventType::kFrameComplete), 1u);

  std::ostringstream server_os, client_os;
  fr.write_sqlog_pair(server_os, client_os, "anomaly_7_Baseline");

  ParsedQlog server, client;
  std::string error;
  ASSERT_TRUE(parse_sqlog_text(server_os.str(), &server, &error)) << error;
  ASSERT_TRUE(parse_sqlog_text(client_os.str(), &client, &error)) << error;
  EXPECT_EQ(server.vantage_type, "server");
  EXPECT_EQ(client.vantage_type, "client");
  EXPECT_EQ(server.group_id, "anomaly_7_Baseline");
  EXPECT_EQ(client.group_id, server.group_id);

  JoinedPhases joined;
  ASSERT_TRUE(join_vantages(client, server, &joined, &error)) << error;
  EXPECT_GT(joined.ffct_us, 0u);
}

TEST(FlightRecorder, RecorderDoesNotPerturbResults) {
  exp::SessionConfig cfg = clean_path_session();
  const exp::SessionResult plain = exp::run_session(cfg);
  FlightRecorder fr;
  cfg.recorder = &fr;
  const exp::SessionResult taped = exp::run_session(cfg);
  EXPECT_EQ(plain.ffct, taped.ffct);
  EXPECT_EQ(plain.server_stats.packets_sent, taped.server_stats.packets_sent);
  EXPECT_EQ(plain.fflr, taped.fflr);
}

TEST(FlightRecorder, CoexistsWithPhaseCollection) {
  exp::SessionConfig cfg = clean_path_session();
  cfg.collect_phases = true;
  const exp::SessionResult plain = exp::run_session(cfg);
  FlightRecorder fr;
  cfg.recorder = &fr;
  const exp::SessionResult taped = exp::run_session(cfg);
  ASSERT_FALSE(taped.phases.empty());  // phase extraction still works
  ASSERT_EQ(plain.phases.size(), taped.phases.size());
  for (size_t p = 0; p < plain.phases.size(); ++p) {
    EXPECT_EQ(plain.phases[p].begin, taped.phases[p].begin) << p;
    EXPECT_EQ(plain.phases[p].end, taped.phases[p].end) << p;
  }
  EXPECT_GT(fr.server().total_events(), 0u);
}

// ---- population-sweep anomaly path --------------------------------------

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             (tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

size_t count_files_with(const fs::path& dir, const std::string& needle) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

TEST(FlightRecorder, PopulationFfctTriggerWritesJoinableDumps) {
  TempDir dir("wira_anomaly_ffct");
  exp::PopulationConfig cfg;
  cfg.sessions = 3;
  cfg.seed = 11;
  cfg.anomaly_dir = dir.path.string();
  cfg.anomaly_ffct = nanoseconds(1);  // every completed session trips it

  const auto records = exp::run_population(cfg);
  ASSERT_EQ(records.size(), cfg.sessions);
  // A 1 ns threshold trips every run — but a run that also hit a
  // higher-priority condition (a natural corner case, say) is labeled by
  // that trigger instead, so the *total* covers the sweep.
  uint64_t total_dumps = 0, ffct_dumps = 0;
  for (const auto& rec : records) {
    total_dumps += rec.anomaly_stall_dumps + rec.anomaly_corner_dumps +
                   rec.anomaly_decode_dumps + rec.anomaly_ffct_dumps;
    ffct_dumps += rec.anomaly_ffct_dumps;
  }
  EXPECT_EQ(total_dumps, cfg.sessions * cfg.schemes.size());
  EXPECT_GT(ffct_dumps, 0u);

  // Every dumped pair parses and joins with the stock checker library.
  size_t joined_pairs = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    const std::string suffix = ".client.sqlog";
    if (name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string base = name.substr(0, name.size() - suffix.size());
    ParsedQlog client, server;
    std::string error;
    ASSERT_TRUE(parse_sqlog_file(
        (dir.path / (base + ".client.sqlog")).string(), &client, &error))
        << error;
    ASSERT_TRUE(parse_sqlog_file(
        (dir.path / (base + ".server.sqlog")).string(), &server, &error))
        << base << ": " << error;
    JoinedPhases joined;
    ASSERT_TRUE(join_vantages(client, server, &joined, &error))
        << base << ": " << error;
    ++joined_pairs;
  }
  EXPECT_EQ(joined_pairs, cfg.sessions * cfg.schemes.size());
}

TEST(FlightRecorder, DumpFilesAreCappedButCountersAreNot) {
  TempDir dir("wira_anomaly_cap");
  exp::PopulationConfig cfg;
  cfg.sessions = 4;
  cfg.seed = 11;
  cfg.anomaly_dir = dir.path.string();
  cfg.anomaly_ffct = nanoseconds(1);
  cfg.anomaly_max_dumps = 2;

  const auto records = exp::run_population(cfg);
  uint64_t total_dumps = 0;
  for (const auto& rec : records) {
    total_dumps += rec.anomaly_stall_dumps + rec.anomaly_corner_dumps +
                   rec.anomaly_decode_dumps + rec.anomaly_ffct_dumps;
  }
  EXPECT_EQ(total_dumps, cfg.sessions * cfg.schemes.size());
  EXPECT_EQ(count_files_with(dir.path, ".sqlog"), 2u * 2u);  // 2 pairs
}

TEST(FlightRecorder, AnomalyCountersAreDeterministicAcrossRunners) {
  exp::PopulationConfig cfg;
  cfg.sessions = 8;
  cfg.seed = 11;
  cfg.anomaly_ffct = nanoseconds(1);  // counters need no anomaly_dir

  const auto serial = exp::run_population(cfg);
  cfg.threads = 4;
  const auto threaded = exp::run_population(cfg);
  cfg.threads = 1;
  cfg.processes = 2;
  const auto sharded = exp::run_population(cfg);
  ASSERT_EQ(serial.size(), threaded.size());
  ASSERT_EQ(serial.size(), sharded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].anomaly_ffct_dumps, threaded[i].anomaly_ffct_dumps);
    EXPECT_EQ(serial[i].anomaly_ffct_dumps, sharded[i].anomaly_ffct_dumps);
    EXPECT_EQ(serial[i].anomaly_stall_dumps, sharded[i].anomaly_stall_dumps);
    EXPECT_EQ(serial[i].anomaly_corner_dumps,
              sharded[i].anomaly_corner_dumps);
  }
}

TEST(FlightRecorder, RecorderOffWritesNothingAndCountsNothing) {
  TempDir dir("wira_anomaly_off");
  exp::PopulationConfig cfg;
  cfg.sessions = 2;
  cfg.seed = 11;
  cfg.flight_recorder = false;
  cfg.anomaly_dir = dir.path.string();
  cfg.anomaly_ffct = nanoseconds(1);
  const auto records = exp::run_population(cfg);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.anomaly_ffct_dumps, 0u);
    EXPECT_EQ(rec.anomaly_stall_dumps, 0u);
    EXPECT_EQ(rec.anomaly_corner_dumps, 0u);
    EXPECT_EQ(rec.anomaly_decode_dumps, 0u);
  }
  // With the recorder off the runner never even creates the dump dir.
  EXPECT_FALSE(fs::exists(dir.path));
}

}  // namespace
}  // namespace wira::obs
