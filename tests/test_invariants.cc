// Cross-cutting session invariants, swept over a path grid x scheme matrix
// (parameterized): properties that must hold for *every* configuration,
// not just the tuned defaults.
#include <gtest/gtest.h>

#include <tuple>

#include "exp/session_runner.h"

namespace wira::exp {
namespace {

struct GridPoint {
  double bw_mbps;
  int rtt_ms;
  double loss;
  core::Scheme scheme;
  media::Container container;
};

class SessionInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SessionInvariants, HoldAcrossGridAndSchemes) {
  const auto [grid_idx, scheme_idx] = GetParam();
  static constexpr struct {
    double bw;
    int rtt;
    double loss;
  } kGrid[] = {
      {3, 150, 0.02}, {8, 50, 0.03}, {15, 80, 0.005}, {40, 25, 0.0},
  };
  static constexpr core::Scheme kSchemes[] = {
      core::Scheme::kBaseline, core::Scheme::kWiraFF,
      core::Scheme::kWiraHx, core::Scheme::kWira};

  const auto& g = kGrid[grid_idx];
  SessionConfig cfg;
  cfg.path.bandwidth = mbps_f(g.bw);
  cfg.path.rtt = milliseconds(g.rtt);
  cfg.path.loss_rate = g.loss;
  cfg.path.buffer_bytes = std::max<uint64_t>(
      2 * bdp_bytes(cfg.path.bandwidth, cfg.path.rtt), 48 * 1024);
  cfg.scheme = kSchemes[scheme_idx];
  cfg.seed = 17 * static_cast<uint64_t>(grid_idx + 1) +
             static_cast<uint64_t>(scheme_idx);
  cfg.stream.stream_id = static_cast<uint64_t>(grid_idx);
  core::HxQosRecord cookie;
  cookie.min_rtt = cfg.path.rtt;
  cookie.max_bw = cfg.path.bandwidth;
  cookie.server_timestamp = 0;
  cfg.cookie = cookie;
  cfg.start_time = minutes(1);
  cfg.max_session_time = seconds(15);

  const SessionResult r = run_session(cfg);

  // 1. The first frame completes on every grid point.
  ASSERT_TRUE(r.first_frame_completed)
      << "bw=" << g.bw << " rtt=" << g.rtt << " loss=" << g.loss;

  // 2. FFCT can never beat physics: request leg + data leg >= one RTT.
  EXPECT_GE(r.ffct, cfg.path.rtt);

  // 3. Frame completions are monotone and frame 1 equals the FFCT.
  ASSERT_FALSE(r.frames.empty());
  EXPECT_EQ(r.frames[0].completion, r.ffct);
  TimeNs prev = 0;
  for (const auto& f : r.frames) {
    if (f.completion == kNoTime) continue;
    EXPECT_GE(f.completion, prev);
    prev = f.completion;
  }

  // 4. The parser produced a plausible FF_Size and the init decision is
  //    self-consistent with it.
  EXPECT_GT(r.ff_size, 5'000u);
  EXPECT_LT(r.ff_size, 400'000u);
  if (cfg.scheme == core::Scheme::kWiraFF) {
    EXPECT_EQ(r.init.init_cwnd, r.ff_size);
  }
  if (cfg.scheme == core::Scheme::kWira && r.init.used_hx_qos) {
    EXPECT_LE(r.init.init_cwnd,
              std::max<uint64_t>(
                  std::min<uint64_t>(r.ff_size,
                                     bdp_bytes(cookie.max_bw,
                                               cookie.min_rtt)),
                  2 * 1460));
    EXPECT_EQ(r.init.init_pacing, cookie.max_bw);
  }

  // 5. Loss accounting stays within [0, 1] and roughly tracks the path.
  EXPECT_GE(r.fflr, 0.0);
  EXPECT_LE(r.fflr, 0.8);

  // 6. Transport conservation: acked + in-flight-unresolved <= sent.
  EXPECT_LE(r.server_stats.packets_acked,
            r.server_stats.data_packets_sent);
  EXPECT_LE(r.server_stats.packets_lost,
            r.server_stats.data_packets_sent);
}

std::string grid_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kPaths[] = {"slow3g", "testbed", "mid", "fast"};
  static const char* kNames[] = {"Baseline", "WiraFF", "WiraHx", "Wira"};
  return std::string(kPaths[std::get<0>(info.param)]) + "_" +
         kNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SessionInvariants,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 4)),
    grid_name);

class TsInvariants : public ::testing::TestWithParam<int> {};

TEST_P(TsInvariants, TsSessionsMatchFlvSemantics) {
  // For the same conditions, a TS session's parsed FF_Size is within the
  // container-overhead factor of the FLV session's, and both complete.
  SessionConfig cfg;
  cfg.path.bandwidth = mbps(15);
  cfg.path.rtt = milliseconds(60);
  cfg.path.loss_rate = 0;
  cfg.path.buffer_bytes = 128 * 1024;
  cfg.seed = 100 + static_cast<uint64_t>(GetParam());
  cfg.stream.stream_id = static_cast<uint64_t>(GetParam());
  cfg.scheme = core::Scheme::kWira;
  cfg.start_time = minutes(1);

  cfg.stream.container = media::Container::kFlv;
  const auto flv = run_session(cfg);
  cfg.stream.container = media::Container::kMpegTs;
  const auto ts = run_session(cfg);

  ASSERT_TRUE(flv.first_frame_completed);
  ASSERT_TRUE(ts.first_frame_completed);
  ASSERT_GT(flv.ff_size, 0u);
  ASSERT_GT(ts.ff_size, 0u);
  // TS packetization adds 188-byte quantization + PES headers: the same
  // media content should land within ~0.95x..1.5x of the FLV size.
  const double ratio = static_cast<double>(ts.ff_size) /
                       static_cast<double>(flv.ff_size);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.6);
}

INSTANTIATE_TEST_SUITE_P(Streams, TsInvariants, ::testing::Range(0, 6));

}  // namespace
}  // namespace wira::exp
