// Unit tests for the media substrate: AMF0, FLV mux/demux, and the
// calibrated live-stream generator.
#include <gtest/gtest.h>

#include "media/amf0.h"
#include "media/flv.h"
#include "media/stream_source.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wira::media {
namespace {

TEST(Amf0, MetadataRoundTrip) {
  std::map<std::string, Amf0Value> props{
      {"width", 1280.0},
      {"stereo", true},
      {"encoder", std::string("wira")},
  };
  const auto bytes = amf0_encode_metadata("onMetaData", props);
  auto out = amf0_decode_metadata(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->name, "onMetaData");
  EXPECT_EQ(std::get<double>(out->props.at("width")), 1280.0);
  EXPECT_EQ(std::get<bool>(out->props.at("stereo")), true);
  EXPECT_EQ(std::get<std::string>(out->props.at("encoder")), "wira");
}

TEST(Amf0, TruncatedRejected) {
  const auto bytes = amf0_encode_metadata("onMetaData", {{"x", 1.0}});
  for (size_t keep = 0; keep + 1 < bytes.size(); ++keep) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<long>(keep));
    EXPECT_FALSE(amf0_decode_metadata(cut).has_value());
  }
}

TEST(Flv, HeaderLayout) {
  FlvMuxer mux;
  mux.write_header();
  const auto& b = mux.span();
  ASSERT_EQ(b.size(), kFlvHeaderSize + kFlvPreviousTagSize);
  EXPECT_EQ(b[0], 'F');
  EXPECT_EQ(b[1], 'L');
  EXPECT_EQ(b[2], 'V');
  EXPECT_EQ(b[3], 1);     // version
  EXPECT_EQ(b[4], 0x05);  // audio + video
}

TEST(Flv, MuxDemuxRoundTrip) {
  FlvMuxer mux;
  mux.write_header();
  mux.write_metadata(0, {{"width", 640.0}});
  MediaFrame audio{TagType::kAudio, VideoKind::kKey, 330, milliseconds(10)};
  MediaFrame video{TagType::kVideo, VideoKind::kKey, 40'000,
                   milliseconds(40)};
  mux.write_frame(audio);
  mux.write_frame(video);
  const auto bytes = mux.take();

  std::vector<FlvTag> tags;
  FlvDemuxer demux([&](const FlvTag& t) { tags.push_back(t); });
  EXPECT_TRUE(demux.feed(bytes));
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0].type, TagType::kScript);
  EXPECT_EQ(tags[1].type, TagType::kAudio);
  EXPECT_EQ(tags[1].body.size(), 330u);
  EXPECT_EQ(tags[2].type, TagType::kVideo);
  EXPECT_EQ(tags[2].video_kind(), VideoKind::kKey);
  EXPECT_EQ(tags[2].timestamp_ms, 40u);
  EXPECT_EQ(demux.bytes_consumed(), bytes.size());
}

TEST(Flv, ByteAtATimeFeeding) {
  FlvMuxer mux;
  mux.write_header();
  mux.write_frame({TagType::kVideo, VideoKind::kKey, 5000, 0});
  const auto bytes = mux.take();

  size_t tags = 0;
  FlvDemuxer demux([&](const FlvTag&) { tags++; });
  for (uint8_t b : bytes) {
    ASSERT_TRUE(demux.feed(std::span<const uint8_t>(&b, 1)));
  }
  EXPECT_EQ(tags, 1u);
}

TEST(Flv, MalformedSignatureFails) {
  const uint8_t junk[] = {'M', 'P', '4', 0, 0, 0, 0, 0, 0};
  FlvDemuxer demux([](const FlvTag&) {});
  EXPECT_FALSE(demux.feed(std::span<const uint8_t>(junk, sizeof(junk))));
  EXPECT_TRUE(demux.failed());
}

TEST(Flv, BadTagTypeFails) {
  FlvMuxer mux;
  mux.write_header();
  auto bytes = mux.take();
  bytes.push_back(0x55);  // invalid tag type after PreviousTagSize0
  for (int i = 0; i < 10; ++i) bytes.push_back(0);
  FlvDemuxer demux([](const FlvTag&) {});
  EXPECT_FALSE(demux.feed(bytes));
}

TEST(Flv, ExtendedTimestamp) {
  FlvMuxer mux;
  mux.write_header();
  // 2^24 ms overflows the 24-bit field into the extension byte.
  const TimeNs big = milliseconds(20'000'000);
  mux.write_frame({TagType::kVideo, VideoKind::kInter, 100, big});
  std::vector<FlvTag> tags;
  FlvDemuxer demux([&](const FlvTag& t) { tags.push_back(t); });
  EXPECT_TRUE(demux.feed(mux.take()));
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].timestamp_ms, 20'000'000u);
}

TEST(StreamSource, GopIsDeterministic) {
  StreamProfile p;
  p.stream_id = 9;
  LiveStream a(p, 42), b(p, 42);
  const auto ga = a.gop(3), gb = b.gop(3);
  ASSERT_EQ(ga.size(), gb.size());
  for (size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(ga[i].payload_bytes, gb[i].payload_bytes);
    EXPECT_EQ(ga[i].pts, gb[i].pts);
  }
}

TEST(StreamSource, GopStructure) {
  StreamProfile p;
  p.gop_frames = 25;
  p.fps = 25;
  LiveStream s(p, 1);
  const auto g = s.gop(0);
  uint32_t videos = 0, keys = 0, audios = 0;
  for (const auto& f : g) {
    if (f.type == TagType::kVideo) {
      videos++;
      if (f.video_kind == VideoKind::kKey) keys++;
    } else if (f.type == TagType::kAudio) {
      audios++;
    }
  }
  EXPECT_EQ(videos, 25u);
  EXPECT_EQ(keys, 1u);  // exactly one I frame per GOP
  EXPECT_NEAR(audios, 43u, 2u);
  // First video frame of a GOP is the key frame.
  auto first_video = std::find_if(g.begin(), g.end(), [](const MediaFrame& f) {
    return f.type == TagType::kVideo;
  });
  ASSERT_NE(first_video, g.end());
  EXPECT_EQ(first_video->video_kind, VideoKind::kKey);
}

TEST(StreamSource, PtsMonotoneWithinGop) {
  StreamProfile p;
  LiveStream s(p, 7);
  TimeNs prev = -1;
  for (const auto& f : s.gop(5)) {
    EXPECT_GE(f.pts, prev);
    prev = f.pts;
  }
}

TEST(StreamSource, JoinChunksStartWithFlvHeader) {
  StreamProfile p;
  LiveStream s(p, 1);
  const auto chunks = s.join_chunks(s.gop_duration() * 3 + milliseconds(500));
  ASSERT_FALSE(chunks.empty());
  ASSERT_GE(chunks[0].bytes.size(), 3u);
  EXPECT_EQ(chunks[0].bytes[0], 'F');
  EXPECT_EQ(chunks[0].bytes[1], 'L');
  EXPECT_EQ(chunks[0].bytes[2], 'V');
}

TEST(StreamSource, JoinPlusTailIsValidFlvStream) {
  StreamProfile p;
  LiveStream s(p, 3);
  const TimeNs join = s.gop_duration() + milliseconds(777);
  std::vector<uint8_t> all;
  for (const auto& c : s.join_chunks(join)) {
    all.insert(all.end(), c.bytes.begin(), c.bytes.end());
  }
  for (const auto& c : s.chunks_between(join, join + seconds(2))) {
    all.insert(all.end(), c.bytes.begin(), c.bytes.end());
  }
  size_t videos = 0;
  FlvDemuxer demux([&](const FlvTag& t) {
    if (t.type == TagType::kVideo) videos++;
  });
  EXPECT_TRUE(demux.feed(all));
  EXPECT_GT(videos, 25u);  // burst + ~2 s of live frames
}

TEST(StreamSource, FirstFrameSizeMatchesDemuxedPrefix) {
  StreamProfile p;
  LiveStream s(p, 11);
  const TimeNs join = milliseconds(200);
  const uint64_t expected = s.first_frame_size(join, 1);

  // Demux the join burst and count bytes up to the end of video tag 1.
  std::vector<uint8_t> all;
  for (const auto& c : s.join_chunks(join)) {
    all.insert(all.end(), c.bytes.begin(), c.bytes.end());
  }
  uint64_t measured = 0, videos = 0;
  FlvDemuxer demux([&](const FlvTag& t) {
    if (videos >= 1) return;
    if (t.type == TagType::kVideo) {
      videos++;
      measured = demux.bytes_consumed() + kFlvPreviousTagSize;
    }
  });
  ASSERT_TRUE(demux.feed(all));
  EXPECT_EQ(expected, measured);
}

TEST(StreamSource, CorpusCalibrationMatchesFig1) {
  // First-frame sizes across the corpus: mean ~43.1 KB, p30 < 30 KB,
  // p80 > 60 KB, range within [6, 250] KB (paper §II-A).
  Rng rng(2024);
  Samples ff_kb;
  for (int i = 0; i < 4000; ++i) {
    StreamProfile p = sample_stream_profile(rng, i);
    LiveStream s(p, 99);
    ff_kb.add(static_cast<double>(s.first_frame_size(0, 1)) / 1000.0);
  }
  EXPECT_NEAR(ff_kb.mean(), 43.1, 5.0);
  EXPECT_LT(ff_kb.percentile(30), 30.0);
  EXPECT_GT(ff_kb.percentile(80), 60.0);
  EXPECT_GT(ff_kb.min(), 2.0);
  EXPECT_LT(ff_kb.max(), 260.0);
}

TEST(StreamSource, IntraStreamVariationExists) {
  // Fig. 1(b): the same stream's FF_Size changes across viewing times.
  StreamProfile p;
  p.iframe_mean_bytes = 75'000;
  p.iframe_intra_cv = 0.3;
  LiveStream s(p, 5);
  Samples sizes;
  for (int k = 0; k < 40; ++k) {
    sizes.add(static_cast<double>(
        s.first_frame_size(k * s.gop_duration(), 1)));
  }
  EXPECT_GT(sizes.cv(), 0.1);
  EXPECT_GT(sizes.max() / sizes.min(), 1.5);
}

TEST(StreamSource, ThetaVfGrowsFirstFrame) {
  StreamProfile p;
  LiveStream s(p, 1);
  const uint64_t t1 = s.first_frame_size(0, 1);
  const uint64_t t3 = s.first_frame_size(0, 3);
  const uint64_t t5 = s.first_frame_size(0, 5);
  EXPECT_LT(t1, t3);
  EXPECT_LT(t3, t5);
}

}  // namespace
}  // namespace wira::media
