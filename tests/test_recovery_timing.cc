// Loss-recovery timing behaviour: PTO under blackholes, ack-delay
// batching, and recovery after the path heals — driven by mutating link
// conditions mid-run.
#include <gtest/gtest.h>

#include "quic/connection.h"
#include "sim/path.h"

namespace wira::quic {
namespace {

struct Pair {
  sim::EventLoop loop;
  std::unique_ptr<sim::Path> path;
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;

  explicit Pair(sim::PathConfig cfg = {}, uint64_t seed = 1) {
    path = std::make_unique<sim::Path>(loop, cfg, seed);
    server = std::make_unique<Connection>(
        loop, ConnectionConfig{.is_server = true},
        [this](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          path->forward().send(std::move(dg));
        });
    client = std::make_unique<Connection>(
        loop, ConnectionConfig{.is_server = false},
        [this](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          path->reverse().send(std::move(dg));
        });
    path->forward().set_receiver([this](std::span<sim::Datagram> batch) {
      for (sim::Datagram& d : batch) client->on_datagram(d.payload);
    });
    path->reverse().set_receiver([this](std::span<sim::Datagram> batch) {
      for (sim::Datagram& d : batch) server->on_datagram(d.payload);
    });
    server->set_server_options({});
  }
};

std::vector<uint8_t> payload_of(size_t n) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(i * 31 + 7);
  return v;
}

TEST(RecoveryTiming, BlackholeTriggersPtoThenHeals) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(20);
  cfg.rtt = milliseconds(40);
  Pair p(cfg, 3);
  const auto payload = payload_of(80'000);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](StreamId, std::span<const uint8_t> d, bool f) {
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established(
      [&] { p.server->write_stream(kResponseStream, payload, true); });
  p.client->connect({});

  // Blackhole the data direction from 60 ms to 600 ms: everything in
  // flight is lost, ACKs stop, the server must keep probing via PTO.
  p.loop.schedule_at(milliseconds(60), [&p] {
    p.path->forward().config().loss.loss_rate = 1.0;
  });
  p.loop.schedule_at(milliseconds(600), [&p] {
    p.path->forward().config().loss.loss_rate = 0.0;
  });

  p.loop.run_until(seconds(30));
  ASSERT_TRUE(fin) << "transfer must recover after the blackhole lifts";
  EXPECT_EQ(received, payload);
  EXPECT_GT(p.server->stats().ptos_fired, 0u);
  EXPECT_GT(p.server->stats().packets_lost, 0u);
}

TEST(RecoveryTiming, ReverseBlackholeKillsAcksNotData) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(20);
  cfg.rtt = milliseconds(40);
  Pair p(cfg, 4);
  const auto payload = payload_of(60'000);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](StreamId, std::span<const uint8_t> d, bool f) {
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established(
      [&] { p.server->write_stream(kResponseStream, payload, true); });
  p.client->connect({});
  p.loop.schedule_at(milliseconds(60), [&p] {
    p.path->reverse().config().loss.loss_rate = 1.0;
  });
  p.loop.schedule_at(milliseconds(500), [&p] {
    p.path->reverse().config().loss.loss_rate = 0.0;
  });
  p.loop.run_until(seconds(30));
  ASSERT_TRUE(fin);
  EXPECT_EQ(received, payload);
  // All data flowed through the healthy forward path; the server probed
  // blindly (PTO) while ACKs were dead, and the first post-heal ACK
  // covers everything — no corruption, no lost progress.
  EXPECT_GT(p.server->stats().ptos_fired, 0u);
  // Every sent packet is eventually acked, except those a PTO already
  // abandoned (a probe forgets the old packet number).
  EXPECT_GE(p.server->stats().packets_acked + p.server->stats().ptos_fired,
            p.server->stats().data_packets_sent);
}

TEST(RecoveryTiming, DelayedAckFiresWithinMaxAckDelay) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(50);
  cfg.rtt = milliseconds(20);
  Pair p(cfg, 5);
  p.server->set_on_established([&] {
    // One lone packet: below the 2-packet ack tolerance, so the client's
    // delayed-ack timer (25 ms) must fire.
    p.server->write_stream(kResponseStream, payload_of(500), true);
  });
  p.client->connect({});
  p.loop.run_until(seconds(2));
  // The server saw the ACK: the stream is fully acked.
  EXPECT_EQ(p.server->stats().packets_acked,
            p.server->stats().data_packets_sent);
  // RTT sample includes up to max_ack_delay; smoothed stays sane.
  EXPECT_LT(to_ms(p.server->rtt().min()), 50.0);
}

TEST(RecoveryTiming, PtoBackoffUnderPersistentBlackhole) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(20);
  cfg.rtt = milliseconds(40);
  Pair p(cfg, 6);
  p.server->set_on_established(
      [&] { p.server->write_stream(kResponseStream, payload_of(5'000), true); });
  p.client->connect({});
  p.loop.schedule_at(milliseconds(60), [&p] {
    p.path->forward().config().loss.loss_rate = 1.0;
  });
  p.loop.run_until(seconds(20));
  // Exponential backoff keeps the probe count modest over 20 s.
  EXPECT_GT(p.server->stats().ptos_fired, 2u);
  EXPECT_LT(p.server->stats().ptos_fired, 60u);
}

TEST(RecoveryTiming, NoSpuriousPtoOnHealthyPath) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(20);
  cfg.rtt = milliseconds(40);
  Pair p(cfg, 7);
  bool fin = false;
  p.client->set_on_stream_data(
      [&](StreamId, std::span<const uint8_t>, bool f) { fin |= f; });
  p.server->set_on_established(
      [&] { p.server->write_stream(kResponseStream, payload_of(200'000), true); });
  p.client->connect({});
  p.loop.run_until(seconds(20));
  ASSERT_TRUE(fin);
  EXPECT_EQ(p.server->stats().ptos_fired, 0u);
  EXPECT_EQ(p.server->stats().packets_lost, 0u);
}

}  // namespace
}  // namespace wira::quic
