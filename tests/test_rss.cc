// Tests for the RSS monostate contract (obs/rss.h): readings parse from a
// /proc-style status file, and anything unreadable is std::nullopt — never
// a fabricated zero.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "obs/rss.h"

namespace wira::obs {
namespace {

std::string write_fixture(const std::string& name,
                          const std::string& content) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / name;
  std::ofstream out(path);
  out << content;
  return path.string();
}

TEST(RssReader, ParsesProcStyleStatusFile) {
  const std::string path = write_fixture("wira_rss_ok",
                                         "Name:\tsoak\n"
                                         "VmPeak:\t  9999 kB\n"
                                         "VmRSS:\t  1234 kB\n"
                                         "VmHWM:\t  2345 kB\n"
                                         "Threads:\t1\n");
  RssReader reader(path);
  ASSERT_TRUE(reader.current_rss_bytes().has_value());
  EXPECT_EQ(*reader.current_rss_bytes(), 1234u * 1024);
  ASSERT_TRUE(reader.peak_rss_bytes().has_value());
  EXPECT_EQ(*reader.peak_rss_bytes(), 2345u * 1024);
}

TEST(RssReader, MissingFieldIsMonostateNotZero) {
  // A status file with no VmHWM (and a VmRSS prefix that must not match):
  // absent field -> nullopt, never 0.
  const std::string path = write_fixture("wira_rss_partial",
                                         "Name:\tsoak\n"
                                         "VmRSSExtra:\t 5 kB\n"
                                         "VmRSS:\t  42 kB\n");
  RssReader reader(path);
  ASSERT_TRUE(reader.current_rss_bytes().has_value());
  EXPECT_EQ(*reader.current_rss_bytes(), 42u * 1024);
  EXPECT_FALSE(reader.peak_rss_bytes().has_value());
}

TEST(RssReader, MalformedValueIsMonostate) {
  const std::string path =
      write_fixture("wira_rss_bad", "VmRSS:\tnot-a-number kB\n");
  EXPECT_FALSE(RssReader(path).current_rss_bytes().has_value());
}

TEST(RssReader, UnreadableFileIsMonostate) {
  RssReader reader("/nonexistent/status/file");
  EXPECT_FALSE(reader.current_rss_bytes().has_value());
  EXPECT_FALSE(reader.peak_rss_bytes().has_value());
}

TEST(RssReader, LiveProcessReadsArePlausible) {
  // On Linux (the CI and dev platform) the default path works and the
  // high-water mark bounds the current reading.
  const auto current = current_rss_bytes();
  const auto peak = peak_rss_bytes();
  if (!current.has_value() || !peak.has_value()) {
    GTEST_SKIP() << "/proc/self/status unavailable on this platform";
  }
  EXPECT_GT(*current, 0u);
  EXPECT_GE(*peak, *current);
}

}  // namespace
}  // namespace wira::obs
