// Unit tests for the observability subsystem: log-bucketed histograms,
// the metrics registry merge contract, and the FFCT phase decomposition.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "obs/phase_timeline.h"

namespace wira::obs {
namespace {

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_lo(LatencyHistogram::bucket_index(v)),
              v);
  }
  h.record(3);
  h.record(3);
  h.record(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 13u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 7u);
}

TEST(LatencyHistogram, BucketBoundsCoverValueRange) {
  // Every value maps to a bucket whose [lo, hi) range contains it, and
  // bucket indices are monotone in the value.
  size_t prev_index = 0;
  for (uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 31ull, 32ull, 100ull,
                     1000ull, 65535ull, 65536ull, 1ull << 40}) {
    const size_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(v, LatencyHistogram::bucket_lo(idx)) << "v=" << v;
    EXPECT_LT(v, LatencyHistogram::bucket_hi(idx)) << "v=" << v;
    EXPECT_GE(idx, prev_index);
    prev_index = idx;
  }
}

TEST(LatencyHistogram, QuantizationErrorBounded) {
  // Relative bucket width above the exact range is <= 1/kSubBuckets.
  for (uint64_t v : {100ull, 999ull, 12345ull, 1ull << 30}) {
    const size_t idx = LatencyHistogram::bucket_index(v);
    const uint64_t lo = LatencyHistogram::bucket_lo(idx);
    const uint64_t hi = LatencyHistogram::bucket_hi(idx);
    EXPECT_LE(static_cast<double>(hi - lo),
              static_cast<double>(lo) / LatencyHistogram::kSubBuckets *
                      1.0000001 +
                  1.0);
  }
}

TEST(LatencyHistogram, PercentilesOnUniformRamp) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // 6.25% quantization bound plus in-bucket interpolation slack.
  EXPECT_NEAR(h.percentile(50), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(h.percentile(90), 900.0, 900.0 * 0.07);
  EXPECT_NEAR(h.percentile(99), 990.0, 990.0 * 0.07);
  // Extremes clamp to the observed range.
  EXPECT_EQ(h.percentile(0), 1.0);
  EXPECT_EQ(h.percentile(100), 1000.0);
}

TEST(LatencyHistogram, EmptyIsSafe) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(LatencyHistogram, MergeEqualsUnion) {
  // Splitting a sample stream across two histograms and merging must give
  // exactly the same buckets as recording everything into one.
  std::mt19937_64 rng(7);
  LatencyHistogram a, b, whole;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng() % 1'000'000;
    whole.record(v);
    (i % 2 == 0 ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.sum(), whole.sum());
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
  EXPECT_EQ(a.bucket_counts(), whole.bucket_counts());
  EXPECT_DOUBLE_EQ(a.percentile(99), whole.percentile(99));
}

TEST(LatencyHistogram, MergeIsCommutative) {
  LatencyHistogram ab, ba, a, b;
  for (uint64_t v : {1ull, 100ull, 10'000ull}) a.record(v);
  for (uint64_t v : {5ull, 500ull, 50'000ull}) b.record(v);
  ab = a;
  ab.merge(b);
  ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.bucket_counts(), ba.bucket_counts());
  EXPECT_EQ(ab.sum(), ba.sum());
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram a, empty;
  a.record(42);
  const auto before = a.bucket_counts();
  a.merge(empty);
  EXPECT_EQ(a.bucket_counts(), before);
  EXPECT_EQ(a.min(), 42u);
  LatencyHistogram e2;
  e2.merge(a);
  EXPECT_EQ(e2.bucket_counts(), a.bucket_counts());
  EXPECT_EQ(e2.min(), 42u);
}

TEST(MetricsRegistry, CountersAndGauges) {
  MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  r.inc("sessions");
  r.inc("sessions", 4);
  r.set_gauge("bytes", 100.0);
  EXPECT_EQ(r.counter("sessions"), 5u);
  EXPECT_EQ(r.counter("never_touched"), 0u);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.find_histogram("nope"), nullptr);
  r.histogram("lat").record(10);
  ASSERT_NE(r.find_histogram("lat"), nullptr);
  EXPECT_EQ(r.find_histogram("lat")->count(), 1u);
}

TEST(MetricsRegistry, MergeAddsEverything) {
  MetricsRegistry a, b;
  a.inc("c", 2);
  b.inc("c", 3);
  b.inc("only_b");
  a.set_gauge("g", 1.5);
  b.set_gauge("g", 2.5);
  a.histogram("h").record(100);
  b.histogram("h").record(200);
  b.histogram("h2").record(7);
  a.merge(b);
  EXPECT_EQ(a.counter("c"), 5u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauges().at("g"), 4.0);
  EXPECT_EQ(a.find_histogram("h")->count(), 2u);
  EXPECT_EQ(a.find_histogram("h")->sum(), 300u);
  EXPECT_EQ(a.find_histogram("h2")->count(), 1u);
}

TEST(MetricsRegistry, JsonIsDeterministicAndOrdered) {
  MetricsRegistry r;
  r.inc("zeta");
  r.inc("alpha");
  r.histogram("lat_us").record(1000);
  std::ostringstream os1, os2;
  r.write_json(os1);
  r.write_json(os2);
  const std::string s = os1.str();
  EXPECT_EQ(s, os2.str());
  // Lexicographic key order inside each section.
  EXPECT_LT(s.find("\"alpha\""), s.find("\"zeta\""));
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"p99\""), std::string::npos);
}

// ---- FFCT phase decomposition ------------------------------------------

FfctBoundaries full_boundaries() {
  FfctBoundaries b;
  b.request_sent = milliseconds(10);
  b.request_received = milliseconds(30);
  b.first_origin_byte = milliseconds(45);
  b.ff_parsed = milliseconds(50);
  b.first_byte_received = milliseconds(70);
  b.first_frame_complete = milliseconds(95);
  return b;
}

TEST(PhaseTimeline, PartitionIsExact) {
  const FfctBoundaries b = full_boundaries();
  const auto spans = ffct_phases(b);
  ASSERT_EQ(spans.size(), kNumPhases);
  // Contiguous: each span starts where the previous ended.
  EXPECT_EQ(spans.front().begin, b.request_sent);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].begin, spans[i - 1].end);
  }
  EXPECT_EQ(spans.back().end, b.first_frame_complete);
  TimeNs sum = 0;
  for (const auto& s : spans) sum += s.duration();
  EXPECT_EQ(sum, b.first_frame_complete - b.request_sent);
  // Names follow the taxonomy.
  for (size_t i = 0; i < kNumPhases; ++i) {
    EXPECT_STREQ(spans[i].name, kPhaseNames[i]);
  }
}

TEST(PhaseTimeline, MissingEventsCollapseToZeroSpans) {
  FfctBoundaries b = full_boundaries();
  b.first_origin_byte = kNoTime;
  b.ff_parsed = kNoTime;
  const auto spans = ffct_phases(b);
  ASSERT_EQ(spans.size(), kNumPhases);
  EXPECT_EQ(spans[1].duration(), 0);  // origin_fetch
  EXPECT_EQ(spans[2].duration(), 0);  // ff_parse
  TimeNs sum = 0;
  for (const auto& s : spans) sum += s.duration();
  EXPECT_EQ(sum, b.first_frame_complete - b.request_sent);
}

TEST(PhaseTimeline, OutOfOrderEventsClampMonotone) {
  FfctBoundaries b = full_boundaries();
  // Parser finished after the client already had its first byte: the
  // ff_parse boundary must clamp so no span goes negative.
  b.ff_parsed = milliseconds(80);
  b.first_byte_received = milliseconds(70);
  const auto spans = ffct_phases(b);
  ASSERT_EQ(spans.size(), kNumPhases);
  TimeNs sum = 0;
  for (const auto& s : spans) {
    EXPECT_GE(s.duration(), 0);
    sum += s.duration();
  }
  EXPECT_EQ(sum, b.first_frame_complete - b.request_sent);
}

TEST(PhaseTimeline, IncompleteSessionYieldsNoSpans) {
  FfctBoundaries b = full_boundaries();
  b.first_frame_complete = kNoTime;
  EXPECT_TRUE(ffct_phases(b).empty());
  FfctBoundaries b2 = full_boundaries();
  b2.request_sent = kNoTime;
  EXPECT_TRUE(ffct_phases(b2).empty());
}

TEST(PhaseTimeline, BoundariesFromTraceTakesFirstOccurrence) {
  trace::Tracer t;
  t.record(milliseconds(30), trace::EventType::kRequestReceived, 64, 0);
  t.record(milliseconds(45), trace::EventType::kOriginByte, 1400, 0);
  t.record(milliseconds(46), trace::EventType::kOriginByte, 1400, 0);
  t.record(milliseconds(50), trace::EventType::kFfParsed, 90'000, 188);
  const FfctBoundaries b = boundaries_from_trace(t);
  EXPECT_EQ(b.request_received, milliseconds(30));
  EXPECT_EQ(b.first_origin_byte, milliseconds(45));
  EXPECT_EQ(b.ff_parsed, milliseconds(50));
  EXPECT_EQ(b.request_sent, kNoTime);  // client-side: left to caller
}

}  // namespace
}  // namespace wira::obs
