// Unit tests for Frame Perception (Algorithm 1): the cross-layer L4 parser
// that learns FF_Size before the bytes are paced out.
#include "core/frame_parser.h"

#include <gtest/gtest.h>

#include "media/stream_source.h"

namespace wira::core {
namespace {

std::vector<uint8_t> join_bytes(const media::LiveStream& s, TimeNs join,
                                TimeNs tail = seconds(2)) {
  std::vector<uint8_t> all;
  for (const auto& c : s.join_chunks(join)) {
    all.insert(all.end(), c.bytes.begin(), c.bytes.end());
  }
  for (const auto& c : s.chunks_between(join, join + tail)) {
    all.insert(all.end(), c.bytes.begin(), c.bytes.end());
  }
  return all;
}

TEST(FrameParser, MatchesGroundTruthFfSize) {
  media::StreamProfile p;
  media::LiveStream s(p, 21);
  const TimeNs join = milliseconds(300);
  FrameParser parser;
  auto ff = parser.feed(join_bytes(s, join));
  ASSERT_TRUE(ff.has_value());
  EXPECT_EQ(*ff, s.first_frame_size(join, 1));
  EXPECT_TRUE(parser.complete());
  EXPECT_EQ(parser.protocol(), ProtocolType::kFlv);
}

class ThetaVf : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ThetaVf, MatchesGroundTruthForEveryTheta) {
  const uint32_t theta = GetParam();
  media::StreamProfile p;
  media::LiveStream s(p, 33);
  const TimeNs join = milliseconds(120);
  FrameParser parser(FrameParser::Config{.theta_vf = theta});
  auto ff = parser.feed(join_bytes(s, join, seconds(3)));
  ASSERT_TRUE(ff.has_value());
  EXPECT_EQ(*ff, s.first_frame_size(join, theta));
  EXPECT_EQ(parser.video_frames_seen(), theta);
}

INSTANTIATE_TEST_SUITE_P(PlaybackConditions, ThetaVf,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(FrameParser, ByteAtATimeFeedingSameResult) {
  media::StreamProfile p;
  media::LiveStream s(p, 4);
  const auto bytes = join_bytes(s, 0);
  FrameParser whole, dribble;
  auto expected = whole.feed(bytes);
  ASSERT_TRUE(expected.has_value());

  std::optional<uint64_t> got;
  for (uint8_t b : bytes) {
    auto r = dribble.feed(std::span<const uint8_t>(&b, 1));
    if (r) {
      ASSERT_FALSE(got.has_value()) << "FF_Size must be reported once";
      got = r;
    }
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, *expected);
}

TEST(FrameParser, ChunkBoundariesStraddlingTagHeaders) {
  media::StreamProfile p;
  media::LiveStream s(p, 4);
  const auto bytes = join_bytes(s, 0);
  // Feed in awkward 7-byte chunks (tag headers are 11 bytes).
  FrameParser parser;
  std::optional<uint64_t> got;
  for (size_t i = 0; i < bytes.size(); i += 7) {
    const size_t n = std::min<size_t>(7, bytes.size() - i);
    auto r = parser.feed(std::span<const uint8_t>(bytes.data() + i, n));
    if (r) got = r;
  }
  FrameParser reference;
  EXPECT_EQ(got, reference.feed(bytes));
}

TEST(FrameParser, NeverBuffersPayload) {
  media::StreamProfile p;
  p.iframe_mean_bytes = 120'000;
  media::LiveStream s(p, 8);
  const auto bytes = join_bytes(s, 0);
  FrameParser parser;
  size_t max_buffered = 0;
  for (size_t i = 0; i < bytes.size(); i += 13) {
    const size_t n = std::min<size_t>(13, bytes.size() - i);
    parser.feed(std::span<const uint8_t>(bytes.data() + i, n));
    max_buffered = std::max(max_buffered, parser.bytes_buffered());
  }
  // Only partial headers (<= 11 bytes) may ever be held.
  EXPECT_LE(max_buffered, media::kFlvTagHeaderSize);
}

TEST(FrameParser, ReportsOnceThenStaysComplete) {
  media::StreamProfile p;
  media::LiveStream s(p, 4);
  const auto bytes = join_bytes(s, 0);
  FrameParser parser;
  auto first = parser.feed(bytes);
  ASSERT_TRUE(first.has_value());
  // Algorithm 1: FF_Complete -> return -1 on any further input.
  EXPECT_FALSE(parser.feed(bytes).has_value());
  EXPECT_TRUE(parser.complete());
  EXPECT_EQ(parser.ff_size(), *first);
}

TEST(FrameParser, HlsSignatureRecognizedButUnparsed) {
  const std::string playlist = "#EXTM3U\n#EXT-X-VERSION:3\n";
  FrameParser parser;
  auto r = parser.feed(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(playlist.data()), playlist.size()));
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(parser.protocol(), ProtocolType::kHls);
  EXPECT_TRUE(parser.failed());
}

TEST(FrameParser, RtmpSignatureRecognizedButUnparsed) {
  const uint8_t c0c1[] = {0x03, 0x00, 0x00, 0x00, 0x00};
  FrameParser parser;
  EXPECT_FALSE(parser.feed(std::span<const uint8_t>(c0c1, 5)).has_value());
  EXPECT_EQ(parser.protocol(), ProtocolType::kRtmp);
}

TEST(FrameParser, UnknownSignatureFails) {
  const uint8_t junk[] = {'X', 'Y', 'Z', 1, 2, 3};
  FrameParser parser;
  EXPECT_FALSE(parser.feed(std::span<const uint8_t>(junk, 6)).has_value());
  EXPECT_EQ(parser.protocol(), ProtocolType::kUnsupported);
  EXPECT_TRUE(parser.failed());
}

TEST(FrameParser, MalformedTagTypeFails) {
  media::FlvMuxer mux;
  mux.write_header();
  auto bytes = mux.take();
  bytes.push_back(0x7F);  // invalid tag type
  bytes.insert(bytes.end(), 10, 0);
  FrameParser parser;
  EXPECT_FALSE(parser.feed(bytes).has_value());
  EXPECT_TRUE(parser.failed());
}

TEST(FrameParser, TwoByteSniffIsInconclusive) {
  const uint8_t fl[] = {'F', 'L'};
  FrameParser parser;
  EXPECT_FALSE(parser.feed(std::span<const uint8_t>(fl, 2)).has_value());
  EXPECT_EQ(parser.protocol(), ProtocolType::kUnknown);
  EXPECT_FALSE(parser.failed());
  const uint8_t v[] = {'V'};
  parser.feed(std::span<const uint8_t>(v, 1));
  EXPECT_EQ(parser.protocol(), ProtocolType::kFlv);
}

TEST(FrameParser, AudioBeforeVideoCountedIntoFfSize) {
  // Script + audio tags preceding the I frame belong to the first frame
  // (§IV-A: "they are also critical for successfully displaying").
  media::FlvMuxer mux;
  mux.write_header();
  mux.write_metadata(0, {{"width", 640.0}});
  mux.write_frame({media::TagType::kAudio, media::VideoKind::kKey, 300, 0});
  mux.write_frame({media::TagType::kAudio, media::VideoKind::kKey, 300, 0});
  mux.write_frame({media::TagType::kVideo, media::VideoKind::kKey, 9000, 0});
  const auto bytes = mux.take();
  FrameParser parser;
  auto ff = parser.feed(bytes);
  ASSERT_TRUE(ff.has_value());
  EXPECT_EQ(*ff, bytes.size());  // exactly everything up to video tag end
}

}  // namespace
}  // namespace wira::core
