// Failure-injection and fuzz robustness tests: hostile wire bytes must
// never crash the parsers, and transfers must stay correct under
// reordering, duplication, jitter and bursty loss.
#include <gtest/gtest.h>

#include <numeric>

#include "core/frame_parser.h"
#include "core/transport_cookie.h"
#include "media/flv.h"
#include "media/mpegts.h"
#include "quic/connection.h"
#include "quic/handshake.h"
#include "quic/packet.h"
#include "sim/path.h"
#include "util/rng.h"

namespace wira {
namespace {

std::vector<uint8_t> random_bytes(Rng& rng, size_t n) {
  std::vector<uint8_t> v(n);
  for (auto& b : v) b = static_cast<uint8_t>(rng.next());
  return v;
}

// ---- fuzz: decoders must reject or parse, never crash / never hang ----

TEST(Fuzz, PacketParserSurvivesRandomInput) {
  Rng rng(101);
  for (int i = 0; i < 3000; ++i) {
    const auto bytes = random_bytes(rng, rng.below(200));
    auto p = quic::parse_packet(bytes);
    (void)p;
  }
  SUCCEED();
}

TEST(Fuzz, PacketParserSurvivesBitFlippedValidPackets) {
  Rng rng(102);
  quic::Packet p;
  p.type = quic::PacketType::kOneRtt;
  p.conn_id = 7;
  p.packet_number = 42;
  quic::StreamFrame f;
  f.stream_id = 3;
  f.offset = 1000;
  f.data = random_bytes(rng, 300);
  p.frames.emplace_back(f);
  quic::RangeSet acked;
  acked.add(5, 20);
  p.frames.emplace_back(quic::build_ack(acked, 0));
  const auto valid = quic::serialize_packet(p);

  for (int i = 0; i < 2000; ++i) {
    auto mutated = valid;
    const size_t flips = 1 + rng.below(4);
    for (size_t k = 0; k < flips; ++k) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.below(8));
    }
    auto out = quic::parse_packet(mutated);
    (void)out;
  }
  SUCCEED();
}

TEST(Fuzz, HandshakeParserSurvivesRandomInput) {
  Rng rng(103);
  for (int i = 0; i < 3000; ++i) {
    auto msg = quic::parse_handshake(random_bytes(rng, rng.below(128)));
    (void)msg;
    auto hqst = quic::parse_hqst(random_bytes(rng, rng.below(96)));
    (void)hqst;
  }
  SUCCEED();
}

TEST(Fuzz, FlvDemuxerSurvivesRandomInput) {
  Rng rng(104);
  for (int i = 0; i < 500; ++i) {
    media::FlvDemuxer demux([](const media::FlvTag&) {});
    demux.feed(random_bytes(rng, 64 + rng.below(512)));
  }
  SUCCEED();
}

TEST(Fuzz, TsDemuxerSurvivesRandomCells) {
  Rng rng(105);
  for (int i = 0; i < 500; ++i) {
    media::TsDemuxer demux([](const media::TsPesUnit&) {});
    auto cells = random_bytes(rng, media::kTsPacketSize * 4);
    // Force plausible sync bytes half the time to reach deeper code.
    if (i % 2 == 0) {
      for (size_t k = 0; k < cells.size(); k += media::kTsPacketSize) {
        cells[k] = media::kTsSyncByte;
      }
    }
    demux.feed(cells);
    demux.flush();
  }
  SUCCEED();
}

TEST(Fuzz, FrameParserSurvivesRandomInput) {
  Rng rng(106);
  for (int i = 0; i < 500; ++i) {
    core::FrameParser parser;
    auto bytes = random_bytes(rng, 64 + rng.below(1024));
    if (i % 3 == 0) {  // FLV-flavoured garbage
      bytes[0] = 'F';
      bytes[1] = 'L';
      bytes[2] = 'V';
    } else if (i % 3 == 1) {  // TS-flavoured garbage
      for (size_t k = 0; k < bytes.size(); k += media::kTsPacketSize) {
        bytes[k] = media::kTsSyncByte;
      }
    }
    parser.feed(bytes);
  }
  SUCCEED();
}

TEST(Fuzz, TripleDecoderSurvivesRandomInput) {
  Rng rng(107);
  for (int i = 0; i < 5000; ++i) {
    auto rec = core::decode_hxqos_triples(random_bytes(rng, rng.below(64)));
    (void)rec;
  }
  SUCCEED();
}

TEST(Fuzz, CookieSealerRejectsAllRandomBlobs) {
  Rng rng(108);
  core::CookieSealer sealer(crypto::key_from_string("fuzz"));
  int accepted = 0;
  for (int i = 0; i < 3000; ++i) {
    auto blob = random_bytes(rng, rng.below(96));
    if (sealer.open(blob)) accepted++;
  }
  EXPECT_EQ(accepted, 0) << "random blobs must never authenticate";
}

// ---- failure injection on the transport ----

struct WiredPair {
  sim::EventLoop loop;
  std::unique_ptr<sim::Path> path;
  std::unique_ptr<quic::Connection> client;
  std::unique_ptr<quic::Connection> server;

  explicit WiredPair(const sim::PathConfig& cfg, uint64_t seed) {
    path = std::make_unique<sim::Path>(loop, cfg, seed);
    server = std::make_unique<quic::Connection>(
        loop, quic::ConnectionConfig{.is_server = true},
        [this](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          path->forward().send(std::move(dg));
        });
    client = std::make_unique<quic::Connection>(
        loop, quic::ConnectionConfig{.is_server = false},
        [this](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          path->reverse().send(std::move(dg));
        });
    path->forward().set_receiver([this](std::span<sim::Datagram> batch) {
      for (sim::Datagram& d : batch) client->on_datagram(d.payload);
    });
    path->reverse().set_receiver([this](std::span<sim::Datagram> batch) {
      for (sim::Datagram& d : batch) server->on_datagram(d.payload);
    });
    server->set_server_options({});
  }
};

std::vector<uint8_t> pattern(size_t n) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(i * 13 + 5);
  return v;
}

void expect_intact_transfer(sim::PathConfig cfg, uint64_t seed,
                            size_t bytes = 150'000) {
  WiredPair p(cfg, seed);
  const auto payload = pattern(bytes);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](quic::StreamId, std::span<const uint8_t> d, bool f) {
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established(
      [&] { p.server->write_stream(quic::kResponseStream, payload, true); });
  p.client->connect({});
  p.loop.run_until(seconds(60));
  ASSERT_TRUE(fin);
  EXPECT_EQ(received, payload);
}

TEST(FailureInjection, TransferIntactUnderHeavyJitterReordering) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(20);
  cfg.rtt = milliseconds(40);
  cfg.loss_rate = 0.0;
  // Jitter/reordering are link-level knobs: apply after construction.
  WiredPair p(cfg, 21);
  p.path->forward().config().jitter = milliseconds(15);
  p.path->forward().config().reorder_rate = 0.1;
  p.path->reverse().config().jitter = milliseconds(10);
  const auto payload = pattern(150'000);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](quic::StreamId, std::span<const uint8_t> d, bool f) {
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established(
      [&] { p.server->write_stream(quic::kResponseStream, payload, true); });
  p.client->connect({});
  p.loop.run_until(seconds(60));
  ASSERT_TRUE(fin);
  EXPECT_EQ(received, payload);
}

TEST(FailureInjection, TransferIntactUnderDuplication) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(20);
  cfg.rtt = milliseconds(40);
  WiredPair p(cfg, 22);
  p.path->forward().config().duplicate_rate = 0.1;
  p.path->reverse().config().duplicate_rate = 0.1;
  const auto payload = pattern(100'000);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](quic::StreamId, std::span<const uint8_t> d, bool f) {
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established(
      [&] { p.server->write_stream(quic::kResponseStream, payload, true); });
  p.client->connect({});
  p.loop.run_until(seconds(60));
  ASSERT_TRUE(fin);
  EXPECT_EQ(received, payload) << "duplicates must be idempotent";
}

TEST(FailureInjection, TransferIntactUnderBurstLoss) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(10);
  cfg.rtt = milliseconds(60);
  cfg.extra_loss.p_good_to_bad = 0.02;
  cfg.extra_loss.p_bad_to_good = 0.3;
  cfg.extra_loss.bad_state_loss = 0.7;
  expect_intact_transfer(cfg, 23);
}

TEST(FailureInjection, TransferIntactUnderEverythingAtOnce) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(8);
  cfg.rtt = milliseconds(80);
  cfg.loss_rate = 0.05;
  cfg.buffer_bytes = 20 * 1024;
  WiredPair p(cfg, 24);
  p.path->forward().config().jitter = milliseconds(20);
  p.path->forward().config().duplicate_rate = 0.05;
  p.path->forward().config().reorder_rate = 0.05;
  const auto payload = pattern(120'000);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](quic::StreamId, std::span<const uint8_t> d, bool f) {
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established(
      [&] { p.server->write_stream(quic::kResponseStream, payload, true); });
  p.client->connect({});
  p.loop.run_until(seconds(120));
  ASSERT_TRUE(fin);
  EXPECT_EQ(received, payload);
}

TEST(FailureInjection, ConnectionSurvivesGarbageDatagrams) {
  sim::PathConfig cfg;
  WiredPair p(cfg, 25);
  const auto payload = pattern(50'000);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](quic::StreamId, std::span<const uint8_t> d, bool f) {
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established(
      [&] { p.server->write_stream(quic::kResponseStream, payload, true); });
  p.client->connect({});
  // Inject garbage into both endpoints mid-transfer.
  Rng rng(55);
  for (int i = 1; i <= 20; ++i) {
    p.loop.schedule_at(milliseconds(i * 7), [&p, &rng] {
      Rng local(rng.next());
      auto junk = random_bytes(local, 1 + local.below(100));
      p.client->on_datagram(junk);
      p.server->on_datagram(junk);
    });
  }
  p.loop.run_until(seconds(30));
  ASSERT_TRUE(fin);
  EXPECT_EQ(received, payload);
}

}  // namespace
}  // namespace wira
