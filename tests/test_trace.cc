// Tests for the tracing module and its Connection integration.
#include "trace/tracer.h"

#include <gtest/gtest.h>

#include <sstream>

#include "quic/connection.h"
#include "sim/path.h"

namespace wira::trace {
namespace {

TEST(Tracer, RecordsAndCounts) {
  Tracer t;
  t.record(milliseconds(1), EventType::kPacketSent, 1, 100);
  t.record(milliseconds(2), EventType::kPacketSent, 2, 100);
  t.record(milliseconds(3), EventType::kPacketLost, 1, 100);
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.count(EventType::kPacketSent), 2u);
  EXPECT_EQ(t.count(EventType::kPacketLost), 1u);
  EXPECT_EQ(t.count(EventType::kPtoFired), 0u);
  const auto sent = t.of_type(EventType::kPacketSent);
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[1].a, 2u);
}

TEST(Tracer, CsvOutput) {
  Tracer t;
  t.record(milliseconds(1), EventType::kRttSample, 50'000, 51'000);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "time_us,event,a,b,detail\n1000,rtt_sample,50000,51000,\n");
}

TEST(Tracer, JsonOutputWellFormedish) {
  Tracer t;
  t.record(0, EventType::kHandshakeEvent, 0, 0, "chlo");
  t.record(milliseconds(5), EventType::kPacketSent, 1, 1400);
  std::ostringstream os;
  t.write_json(os, "unit");
  const std::string s = os.str();
  EXPECT_NE(s.find("\"qlog_version\""), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"handshake\""), std::string::npos);
  EXPECT_NE(s.find("\"detail\": \"chlo\""), std::string::npos);
  // Exactly one trailing comma structure: last event has none.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), 3L);
  EXPECT_EQ(std::count(s.begin(), s.end(), '}'), 3L);
}

// Golden outputs: the exporters escape hostile title/detail strings so the
// files stay machine-parseable (qlog consumers, CSV importers).
TEST(Tracer, CsvGoldenEscapesDelimitersAndQuotes) {
  Tracer t;
  t.record(microseconds(1), EventType::kHandshakeEvent, 0, 0, "plain");
  t.record(microseconds(2), EventType::kCookieEvent, 1, 2, "a,b");
  t.record(microseconds(3), EventType::kCornerCase, 3, 4, "say \"hi\"");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "time_us,event,a,b,detail\n"
            "1,handshake,0,0,plain\n"
            "2,cookie,1,2,\"a,b\"\n"
            "3,corner_case,3,4,\"say \"\"hi\"\"\"\n");
}

TEST(Tracer, JsonGoldenEscapesTitleAndDetail) {
  Tracer t;
  t.record(0, EventType::kHandshakeEvent, 0, 0, "quote\" back\\ nl\n");
  std::ostringstream os;
  t.write_json(os, "run \"7\"\ttab");
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"qlog_version\": \"wira-0.1\",\n"
            "  \"title\": \"run \\\"7\\\"\\ttab\",\n"
            "  \"events\": [\n"
            "    {\"time_us\": 0, \"name\": \"handshake\", \"a\": 0, "
            "\"b\": 0, \"detail\": \"quote\\\" back\\\\ nl\\n\"}\n"
            "  ]\n"
            "}\n");
}

TEST(Tracer, StreamingSinkWritesJsonlImmediately) {
  Tracer t;
  std::ostringstream os;
  t.stream_to(&os);  // default: do not also buffer
  t.record(microseconds(5), EventType::kPacketSent, 1, 1200);
  EXPECT_EQ(os.str(),
            "{\"time_us\": 5, \"name\": \"packet_sent\", \"a\": 1, "
            "\"b\": 1200}\n");
  EXPECT_TRUE(t.events().empty());
  // keep_buffer = true streams AND buffers (phase extraction needs both).
  t.stream_to(&os, /*keep_buffer=*/true);
  t.record(microseconds(6), EventType::kPacketAcked, 1, 1200);
  EXPECT_EQ(t.events().size(), 1u);
  EXPECT_NE(os.str().find("packet_acked"), std::string::npos);
  // Detaching restores buffer-only behaviour.
  t.stop_streaming();
  t.record(microseconds(7), EventType::kPacketLost, 2, 1200);
  EXPECT_EQ(t.events().size(), 2u);
}

TEST(Tracer, FirstTimeReturnsEarliestOrNoTime) {
  Tracer t;
  EXPECT_EQ(t.first_time(EventType::kFfParsed), kNoTime);
  t.record(milliseconds(4), EventType::kFfParsed, 1, 1);
  t.record(milliseconds(9), EventType::kFfParsed, 2, 2);
  EXPECT_EQ(t.first_time(EventType::kFfParsed), milliseconds(4));
}

TEST(Tracer, PeakBytesInFlight) {
  Tracer t;
  t.record(0, EventType::kCwndSample, 50'000, 10'000);
  t.record(0, EventType::kCwndSample, 50'000, 42'000);
  t.record(0, EventType::kCwndSample, 50'000, 30'000);
  EXPECT_EQ(t.peak_bytes_in_flight(), 42'000u);
}

TEST(TracerIntegration, ConnectionEmitsLifecycleEvents) {
  sim::EventLoop loop;
  sim::PathConfig pc;
  pc.loss_rate = 0.05;
  sim::Path path(loop, pc, 9);
  quic::Connection server(
      loop, {.is_server = true, .conn_id = 1},
      [&path](std::vector<uint8_t> d) {
        sim::Datagram dg;
        dg.size = d.size();
        dg.payload = std::move(d);
        path.forward().send(std::move(dg));
      });
  quic::Connection client(
      loop, {.is_server = false, .conn_id = 1},
      [&path](std::vector<uint8_t> d) {
        sim::Datagram dg;
        dg.size = d.size();
        dg.payload = std::move(d);
        path.reverse().send(std::move(dg));
      });
  path.forward().set_receiver([&client](std::span<sim::Datagram> batch) {
    for (sim::Datagram& d : batch) client.on_datagram(d.payload);
  });
  path.reverse().set_receiver([&server](std::span<sim::Datagram> batch) {
    for (sim::Datagram& d : batch) server.on_datagram(d.payload);
  });
  server.set_server_options({});

  Tracer tracer;
  server.set_tracer(&tracer);
  server.set_on_established([&server] {
    server.set_initial_parameters(60'000, mbps(10));
    std::vector<uint8_t> payload(120'000, 0x42);
    server.write_stream(quic::kResponseStream, payload, true);
  });
  client.connect({});
  loop.run_until(seconds(20));

  EXPECT_GT(tracer.count(EventType::kPacketSent), 50u);
  EXPECT_GT(tracer.count(EventType::kPacketAcked), 20u);
  EXPECT_GT(tracer.count(EventType::kPacketLost), 0u);  // 5% loss path
  EXPECT_GT(tracer.count(EventType::kRttSample), 10u);
  EXPECT_GT(tracer.count(EventType::kCwndSample), 10u);
  EXPECT_EQ(tracer.count(EventType::kInitApplied), 1u);
  // Handshake trail: CHLO seen by server, established marker.
  bool saw_chlo = false, saw_established = false;
  for (const auto& e : tracer.of_type(EventType::kHandshakeEvent)) {
    saw_chlo |= e.detail == "chlo";
    saw_established |= e.detail == "established";
  }
  EXPECT_TRUE(saw_chlo);
  EXPECT_TRUE(saw_established);
  // Events are time-ordered.
  TimeNs prev = 0;
  for (const auto& e : tracer.events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
  // The init event carries the values we set.
  const auto inits = tracer.of_type(EventType::kInitApplied);
  ASSERT_EQ(inits.size(), 1u);
  EXPECT_EQ(inits[0].a, 60'000u);
  EXPECT_EQ(inits[0].b, mbps(10));
}

TEST(TracerIntegration, NoTracerMeansNoCrash) {
  sim::EventLoop loop;
  sim::Path path(loop, {}, 1);
  quic::Connection server(loop, {.is_server = true}, [](auto) {});
  server.set_tracer(nullptr);
  // Nothing attached: all trace() calls are no-ops.
  server.write_stream(quic::kResponseStream, std::vector<uint8_t>(10), true);
  SUCCEED();
}

}  // namespace
}  // namespace wira::trace
