// Unit tests for the CUBIC controller (RFC 8312) plus an end-to-end
// transfer sanity check.
#include "cc/cubic.h"

#include <gtest/gtest.h>

#include "exp/session_runner.h"

namespace wira::cc {
namespace {

CongestionEvent ack(TimeNs now, uint64_t pn, uint64_t bytes, TimeNs rtt) {
  CongestionEvent ev;
  ev.now = now;
  ev.acked.push_back(AckedPacket{pn, bytes, now - rtt});
  ev.smoothed_rtt = rtt;
  ev.latest_rtt = rtt;
  return ev;
}

TEST(Cubic, SlowStartGrowsByAckedBytes) {
  Cubic cubic;
  const uint64_t start = cubic.congestion_window();
  cubic.on_packet_sent(0, 1, 1460, 0, true);
  cubic.on_congestion_event(ack(milliseconds(40), 1, start, milliseconds(40)));
  EXPECT_EQ(cubic.congestion_window(), 2 * start);
  EXPECT_TRUE(cubic.in_slow_start());
}

TEST(Cubic, LossMultiplicativeDecreaseBeta07) {
  Cubic cubic;
  cubic.set_initial_parameters(100'000, 0);
  cubic.on_packet_sent(0, 50, 1460, 0, true);
  CongestionEvent ev;
  ev.now = milliseconds(100);
  ev.lost.push_back(LostPacket{10, 1460});
  cubic.on_congestion_event(ev);
  EXPECT_EQ(cubic.congestion_window(), 70'000u);  // beta = 0.7
  EXPECT_FALSE(cubic.in_slow_start());
}

TEST(Cubic, OneReductionPerRound) {
  Cubic cubic;
  cubic.set_initial_parameters(100'000, 0);
  cubic.on_packet_sent(0, 50, 1460, 0, true);
  CongestionEvent ev;
  ev.now = milliseconds(100);
  ev.lost.push_back(LostPacket{10, 1460});
  ev.lost.push_back(LostPacket{11, 1460});
  ev.lost.push_back(LostPacket{12, 1460});
  cubic.on_congestion_event(ev);
  EXPECT_EQ(cubic.congestion_window(), 70'000u);  // not 0.7^3
}

TEST(Cubic, ConcaveRecoveryTowardsWmax) {
  Cubic cubic;
  cubic.set_initial_parameters(100'000, 0);
  cubic.on_packet_sent(0, 50, 1460, 0, true);
  CongestionEvent loss;
  loss.now = seconds(1);
  loss.lost.push_back(LostPacket{10, 1460});
  cubic.on_congestion_event(loss);
  const uint64_t after_loss = cubic.congestion_window();

  // Ack a full window every 40 ms for a while: the window should climb
  // back toward (and past) w_max over the cubic curve.
  uint64_t pn = 100;
  for (int i = 1; i <= 120; ++i) {
    const TimeNs now = seconds(1) + milliseconds(40) * i;
    cubic.on_packet_sent(now, ++pn, 1460, 0, true);
    cubic.on_congestion_event(ack(now, pn, cubic.congestion_window(),
                                  milliseconds(40)));
  }
  EXPECT_GT(cubic.congestion_window(), after_loss);
  EXPECT_GT(cubic.congestion_window(), 90'000u);
}

TEST(Cubic, RtoCollapses) {
  Cubic cubic;
  cubic.set_initial_parameters(80'000, 0);
  cubic.on_retransmission_timeout(seconds(2));
  EXPECT_EQ(cubic.congestion_window(), 2u * kMss);
}

TEST(Cubic, InitialParametersHonored) {
  Cubic cubic;
  cubic.set_initial_parameters(66'000, mbps(8));
  EXPECT_EQ(cubic.congestion_window(), 66'000u);
  EXPECT_EQ(cubic.pacing_rate(), mbps(8));
}

TEST(Cubic, FactoryCreatesIt) {
  EXPECT_EQ(make_controller(CcAlgo::kCubic)->name(), "cubic");
}

TEST(Cubic, EndToEndSessionCompletes) {
  exp::SessionConfig cfg;
  cfg.path.bandwidth = mbps(10);
  cfg.path.rtt = milliseconds(50);
  cfg.path.loss_rate = 0.02;
  cfg.path.buffer_bytes = 64 * 1024;
  cfg.cc_algo = CcAlgo::kCubic;
  cfg.scheme = core::Scheme::kWira;
  cfg.stream.iframe_mean_bytes = 45'000;
  cfg.seed = 5;
  const auto r = exp::run_session(cfg);
  ASSERT_TRUE(r.first_frame_completed);
  EXPECT_LT(to_ms(r.ffct), 2000.0);
}

}  // namespace
}  // namespace wira::cc
