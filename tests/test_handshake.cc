// Unit tests for the tag-value handshake codec and the Wira HQST payload.
#include "quic/handshake.h"

#include <gtest/gtest.h>

namespace wira::quic {
namespace {

TEST(Handshake, TagConstants) {
  EXPECT_EQ(make_tag('C', 'H', 'L', 'O'), 0x43484C4Fu);
  EXPECT_NE(kTagCHLO, kTagSHLO);
  EXPECT_NE(kTagCHLO, kTagREJ);
  EXPECT_NE(kTagHQST, kTagSCID);
}

TEST(Handshake, EmptyMessageRoundTrips) {
  HandshakeMessage msg;
  msg.msg_tag = kTagSHLO;
  auto out = parse_handshake(serialize_handshake(msg));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->msg_tag, kTagSHLO);
  EXPECT_TRUE(out->values.empty());
}

TEST(Handshake, MultiTagRoundTrip) {
  HandshakeMessage msg;
  msg.msg_tag = kTagCHLO;
  msg.set_str(kTagVER, "Q043");
  msg.set_u64(kTagSCID, 0xDEADBEEF12345678ull);
  msg.set(kTagHQST, std::vector<uint8_t>{1, 2, 3, 4});

  auto out = parse_handshake(serialize_handshake(msg));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->msg_tag, kTagCHLO);
  EXPECT_EQ(out->values.size(), 3u);
  auto ver = out->get(kTagVER);
  EXPECT_EQ(std::string(ver.begin(), ver.end()), "Q043");
  EXPECT_EQ(out->get_u64(kTagSCID), 0xDEADBEEF12345678ull);
  auto hqst = out->get(kTagHQST);
  EXPECT_EQ(std::vector<uint8_t>(hqst.begin(), hqst.end()),
            (std::vector<uint8_t>{1, 2, 3, 4}));
}

TEST(Handshake, EmptyValueAllowed) {
  HandshakeMessage msg;
  msg.msg_tag = kTagREJ;
  msg.set(kTagSCFG, std::span<const uint8_t>{});
  auto out = parse_handshake(serialize_handshake(msg));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->has(kTagSCFG));
  EXPECT_TRUE(out->get(kTagSCFG).empty());
}

TEST(Handshake, MissingTagAccessors) {
  HandshakeMessage msg;
  EXPECT_FALSE(msg.has(kTagHQST));
  EXPECT_TRUE(msg.get(kTagHQST).empty());
  EXPECT_FALSE(msg.get_u64(kTagSCID).has_value());
}

TEST(Handshake, TruncatedMessageRejected) {
  HandshakeMessage msg;
  msg.msg_tag = kTagCHLO;
  msg.set_str(kTagVER, "Q043");
  auto bytes = serialize_handshake(msg);
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<long>(keep));
    EXPECT_FALSE(parse_handshake(cut).has_value()) << "keep=" << keep;
  }
}

TEST(Handshake, NonMonotoneOffsetsRejected) {
  // Hand-build an index whose end offsets decrease.
  ByteWriter w;
  w.u32be(kTagCHLO);
  w.u16be(2);
  w.u16be(0);
  w.u32be(kTagVER);
  w.u32be(4);
  w.u32be(kTagSCID);
  w.u32be(2);  // < previous end: invalid
  w.str("Q043xx");
  EXPECT_FALSE(parse_handshake(w.span()).has_value());
}

TEST(Hqst, DeclarationOnlyRoundTrip) {
  HqstPayload p;
  p.supports_sync = true;
  auto out = parse_hqst(serialize_hqst(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->supports_sync);
  EXPECT_TRUE(out->sealed_cookie.empty())
      << "TagLen == fixed fields -> no Hx_QoS_Frame (paper Fig. 8)";
}

TEST(Hqst, FullCookieRoundTrip) {
  HqstPayload p;
  p.supports_sync = true;
  p.client_recv_time_ms = 987654;
  p.sealed_cookie = {0xAA, 0xBB, 0xCC};
  auto out = parse_hqst(serialize_hqst(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->client_recv_time_ms, 987654u);
  EXPECT_EQ(out->sealed_cookie, p.sealed_cookie);
}

TEST(Hqst, UnsupportedClient) {
  HqstPayload p;
  p.supports_sync = false;
  auto out = parse_hqst(serialize_hqst(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->supports_sync);
}

TEST(Hqst, TruncatedRejected) {
  const uint8_t buf[] = {1, 0, 0};  // Bool + partial timestamp
  EXPECT_FALSE(parse_hqst(std::span<const uint8_t>(buf, 3)).has_value());
}

}  // namespace
}  // namespace wira::quic
