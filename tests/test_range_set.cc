// Unit tests for the disjoint-range set used by ACK tracking and stream
// retransmission bookkeeping.
#include "quic/range_set.h"

#include <gtest/gtest.h>

namespace wira::quic {
namespace {

TEST(RangeSet, AddAndContains) {
  RangeSet s;
  s.add(5, 10);
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(10));
  EXPECT_FALSE(s.contains(4));
  EXPECT_FALSE(s.contains(11));
  EXPECT_EQ(s.total_length(), 6u);
}

TEST(RangeSet, AdjacentRangesMerge) {
  RangeSet s;
  s.add(1, 3);
  s.add(4, 6);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.min(), 1u);
  EXPECT_EQ(s.max(), 6u);
}

TEST(RangeSet, OverlappingRangesMerge) {
  RangeSet s;
  s.add(1, 5);
  s.add(3, 9);
  s.add(20, 25);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.total_length(), 9u + 6u);
}

TEST(RangeSet, GapKeepsRangesSeparate) {
  RangeSet s;
  s.add(1, 3);
  s.add(5, 7);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.contains(4));
  s.add(4);
  EXPECT_EQ(s.size(), 1u);
}

TEST(RangeSet, BridgingAddMergesMany) {
  RangeSet s;
  s.add(1, 2);
  s.add(5, 6);
  s.add(9, 10);
  s.add(2, 9);  // bridges all three
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.total_length(), 10u);
}

TEST(RangeSet, SubtractMiddleSplits) {
  RangeSet s;
  s.add(1, 10);
  s.subtract(4, 6);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_FALSE(s.contains(6));
  EXPECT_TRUE(s.contains(7));
}

TEST(RangeSet, SubtractEdgesTrims) {
  RangeSet s;
  s.add(5, 10);
  s.subtract(1, 6);
  s.subtract(9, 20);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.min(), 7u);
  EXPECT_EQ(s.max(), 8u);
}

TEST(RangeSet, SubtractAcrossMultipleRanges) {
  RangeSet s;
  s.add(1, 3);
  s.add(5, 7);
  s.add(9, 11);
  s.subtract(2, 10);
  EXPECT_EQ(s.ascending(),
            (std::vector<Range>{{1, 1}, {11, 11}}));
}

TEST(RangeSet, DescendingOrderForAcks) {
  RangeSet s;
  s.add(1, 3);
  s.add(10, 12);
  s.add(6, 7);
  const auto desc = s.descending();
  ASSERT_EQ(desc.size(), 3u);
  EXPECT_EQ(desc[0], (Range{10, 12}));
  EXPECT_EQ(desc[1], (Range{6, 7}));
  EXPECT_EQ(desc[2], (Range{1, 3}));
}

TEST(RangeSet, PopFrontPartialAndFull) {
  RangeSet s;
  s.add(10, 19);
  const Range a = s.pop_front(4);
  EXPECT_EQ(a, (Range{10, 13}));
  const Range b = s.pop_front(100);
  EXPECT_EQ(b, (Range{14, 19}));
  EXPECT_TRUE(s.empty());
}

TEST(RangeSet, SingleValues) {
  RangeSet s;
  s.add(42);
  EXPECT_TRUE(s.contains(42));
  EXPECT_EQ(s.total_length(), 1u);
  s.subtract(42, 42);
  EXPECT_TRUE(s.empty());
}

TEST(RangeSet, ZeroBoundary) {
  RangeSet s;
  s.add(0, 0);
  s.add(1, 5);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.min(), 0u);
}

}  // namespace
}  // namespace wira::quic
