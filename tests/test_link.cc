// Unit tests for the emulated link and duplex path: serialization delay,
// queueing, buffer overflow, and stochastic loss.
#include "sim/link.h"

#include <gtest/gtest.h>

#include "sim/path.h"

namespace wira::sim {
namespace {

Datagram make_dgram(size_t size) {
  Datagram d;
  d.payload.resize(size);
  d.size = size;
  return d;
}

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(8);               // 1 MB/s
  cfg.delay = milliseconds(25);
  Link link(loop, cfg, 1);
  TimeNs delivered_at = kNoTime;
  link.set_receiver(
      [&](std::span<Datagram>) { delivered_at = loop.now(); });
  link.send(make_dgram(1000));  // 1 ms serialization
  loop.run();
  EXPECT_EQ(delivered_at, milliseconds(26));
}

TEST(Link, BackToBackPacketsQueueBehindSerializer) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(8);
  cfg.delay = 0;
  cfg.buffer_bytes = 100 * 1000;
  Link link(loop, cfg, 1);
  std::vector<TimeNs> arrivals;
  link.set_receiver([&](std::span<Datagram> batch) {
    for (size_t i = 0; i < batch.size(); ++i) arrivals.push_back(loop.now());
  });
  for (int i = 0; i < 3; ++i) link.send(make_dgram(1000));
  loop.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], milliseconds(1));
  EXPECT_EQ(arrivals[1], milliseconds(2));
  EXPECT_EQ(arrivals[2], milliseconds(3));
}

TEST(Link, DropTailOnBufferOverflow) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(8);
  cfg.delay = 0;
  cfg.buffer_bytes = 2500;  // fits two 1000-byte packets + slack
  Link link(loop, cfg, 1);
  size_t delivered = 0;
  link.set_receiver(
      [&](std::span<Datagram> batch) { delivered += batch.size(); });
  for (int i = 0; i < 5; ++i) link.send(make_dgram(1000));
  loop.run();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(link.stats().queue_drops, 3u);
}

TEST(Link, QueueDrainsOverTime) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(8);
  cfg.delay = 0;
  cfg.buffer_bytes = 2500;
  Link link(loop, cfg, 1);
  link.set_receiver([](std::span<Datagram>) {});
  link.send(make_dgram(1000));
  link.send(make_dgram(1000));
  EXPECT_EQ(link.queued_bytes(), 2000u);
  loop.run_until(milliseconds(1));
  EXPECT_EQ(link.queued_bytes(), 1000u);
  // Freed space admits a new packet.
  link.send(make_dgram(1000));
  EXPECT_EQ(link.stats().queue_drops, 0u);
}

TEST(Link, BernoulliLossApproximatesConfiguredRate) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(1000);
  cfg.delay = 0;
  cfg.buffer_bytes = 1 << 30;
  cfg.loss.loss_rate = 0.03;
  Link link(loop, cfg, 99);
  size_t delivered = 0;
  link.set_receiver(
      [&](std::span<Datagram> batch) { delivered += batch.size(); });
  const int n = 20'000;
  for (int i = 0; i < n; ++i) link.send(make_dgram(100));
  loop.run();
  const double loss =
      static_cast<double>(link.stats().wire_drops) / n;
  EXPECT_NEAR(loss, 0.03, 0.005);
  EXPECT_EQ(delivered + link.stats().wire_drops, static_cast<size_t>(n));
}

TEST(Link, GilbertElliottProducesBurstyLoss) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(1000);
  cfg.delay = 0;
  cfg.buffer_bytes = 1 << 30;
  cfg.loss.p_good_to_bad = 0.01;
  cfg.loss.p_bad_to_good = 0.2;
  cfg.loss.bad_state_loss = 0.5;
  Link link(loop, cfg, 5);
  for (int i = 0; i < 50'000; ++i) link.send(make_dgram(100));
  loop.run();
  // Expected steady-state loss ~ (0.01/(0.01+0.2)) * 0.5 ~ 2.4%.
  const double loss = static_cast<double>(link.stats().wire_drops) / 50'000;
  EXPECT_GT(loss, 0.01);
  EXPECT_LT(loss, 0.05);
}

TEST(Link, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    EventLoop loop;
    LinkConfig cfg;
    cfg.loss.loss_rate = 0.1;
    Link link(loop, cfg, seed);
    link.set_receiver([](std::span<Datagram>) {});
    for (int i = 0; i < 1000; ++i) link.send(make_dgram(100));
    loop.run();
    return link.stats().wire_drops;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Link, JitterSpreadsArrivals) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(1000);
  cfg.delay = milliseconds(10);
  cfg.jitter = milliseconds(20);
  Link link(loop, cfg, 3);
  std::vector<TimeNs> arrivals;
  link.set_receiver([&](std::span<Datagram> batch) {
    for (size_t i = 0; i < batch.size(); ++i) arrivals.push_back(loop.now());
  });
  for (int i = 0; i < 200; ++i) link.send(make_dgram(100));
  loop.run();
  ASSERT_EQ(arrivals.size(), 200u);
  TimeNs lo = arrivals[0], hi = arrivals[0];
  bool reordered = false;
  TimeNs prev = 0;
  for (TimeNs t : arrivals) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    if (t < prev) reordered = true;
    prev = t;
  }
  EXPECT_GT(hi - lo, milliseconds(10));  // spread well beyond tx spacing
  // Note: the delivery callback order follows event time, so observing
  // reordering requires comparing against send order, which is FIFO here.
  (void)reordered;
}

TEST(Link, ReorderRateDelaysSomePackets) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(1000);
  cfg.delay = milliseconds(5);
  cfg.reorder_rate = 0.5;
  cfg.reorder_extra_delay = milliseconds(30);
  Link link(loop, cfg, 4);
  size_t late = 0, total = 0;
  link.set_receiver([&](std::span<Datagram> batch) {
    total += batch.size();
    if (loop.now() > milliseconds(20)) late += batch.size();
  });
  for (int i = 0; i < 100; ++i) link.send(make_dgram(100));
  loop.run();
  EXPECT_EQ(total, 100u);
  EXPECT_GT(late, 25u);
  EXPECT_LT(late, 75u);
}

TEST(Link, DuplicationDeliversTwice) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(1000);
  cfg.delay = 0;
  cfg.duplicate_rate = 1.0;  // every packet duplicated
  Link link(loop, cfg, 5);
  size_t delivered = 0;
  link.set_receiver(
      [&](std::span<Datagram> batch) { delivered += batch.size(); });
  for (int i = 0; i < 50; ++i) link.send(make_dgram(100));
  loop.run();
  EXPECT_EQ(delivered, 100u);
}

TEST(Link, SameInstantArrivalsCoalesceIntoOneBatch) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(8'000'000);  // 100-byte tx time rounds to 0 ns
  cfg.delay = milliseconds(5);
  Link link(loop, cfg, 1);
  std::vector<size_t> batch_sizes;
  link.set_receiver([&](std::span<Datagram> batch) {
    batch_sizes.push_back(batch.size());
  });
  for (int i = 0; i < 4; ++i) link.send(make_dgram(100));
  loop.run();
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 4u);
  EXPECT_EQ(link.stats().delivered_packets, 4u);
  EXPECT_EQ(link.stats().delivered_bytes, 400u);
}

TEST(Link, DistinctArrivalInstantsStaySeparateBatches) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = mbps(8);  // 1 ms per 1000-byte packet: arrivals never collide
  cfg.delay = milliseconds(5);
  Link link(loop, cfg, 1);
  std::vector<size_t> batch_sizes;
  link.set_receiver([&](std::span<Datagram> batch) {
    batch_sizes.push_back(batch.size());
  });
  for (int i = 0; i < 3; ++i) link.send(make_dgram(1000));
  loop.run();
  ASSERT_EQ(batch_sizes.size(), 3u);
  for (size_t n : batch_sizes) EXPECT_EQ(n, 1u);
}

TEST(Path, TestbedMatchesPaperParameters) {
  const PathConfig p = testbed_path();
  EXPECT_EQ(p.bandwidth, mbps(8));
  EXPECT_EQ(p.rtt, milliseconds(50));
  EXPECT_DOUBLE_EQ(p.loss_rate, 0.03);
  EXPECT_EQ(p.buffer_bytes, 25u * 1024);
}

TEST(Path, RoundTripTimeSplitsAcrossDirections) {
  EventLoop loop;
  PathConfig cfg;
  cfg.rtt = milliseconds(50);
  cfg.bandwidth = mbps(100);
  cfg.loss_rate = 0;
  Path path(loop, cfg, 1);
  TimeNs reply_at = kNoTime;
  path.forward().set_receiver([&](std::span<Datagram>) {
    Datagram d;
    d.size = 100;
    path.reverse().send(std::move(d));
  });
  path.reverse().set_receiver(
      [&](std::span<Datagram>) { reply_at = loop.now(); });
  Datagram d;
  d.size = 100;
  path.forward().send(std::move(d));
  loop.run();
  // ~50 ms RTT plus two small serialization delays.
  EXPECT_GT(reply_at, milliseconds(50));
  EXPECT_LT(reply_at, milliseconds(51));
}

TEST(Path, MidRunBandwidthChangeTakesEffect) {
  EventLoop loop;
  PathConfig cfg;
  cfg.bandwidth = mbps(8);
  cfg.rtt = 0;
  Path path(loop, cfg, 1);
  std::vector<TimeNs> arrivals;
  path.forward().set_receiver([&](std::span<Datagram> batch) {
    for (size_t i = 0; i < batch.size(); ++i) arrivals.push_back(loop.now());
  });
  path.forward().send(make_dgram(1000));  // 1 ms at 8 Mbps
  loop.run();
  path.set_bandwidth(mbps(80));
  path.forward().send(make_dgram(1000));  // 0.1 ms at 80 Mbps
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], milliseconds(1));
  EXPECT_EQ(arrivals[1] - arrivals[0], microseconds(100));
}

}  // namespace
}  // namespace wira::sim
