// Tests for the experiment harness itself: paired A/B integrity,
// determinism, metric plausibility, and the bucketing collectors.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>

#include "exp/population_experiment.h"
#include "exp/record_codec.h"
#include "exp/session_export.h"
#include "exp/table.h"
#include "obs/metrics.h"

namespace wira::exp {
namespace {

PopulationConfig small_config(uint64_t seed = 11) {
  PopulationConfig cfg;
  cfg.sessions = 12;
  cfg.seed = seed;
  return cfg;
}

TEST(Harness, PopulationIsDeterministic) {
  const auto a = run_population(small_config());
  const auto b = run_population(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].results.size(), b[i].results.size());
    for (const auto& [scheme, res] : a[i].results) {
      EXPECT_EQ(res.ffct, b[i].results.at(scheme).ffct);
      EXPECT_EQ(res.server_stats.packets_sent,
                b[i].results.at(scheme).server_stats.packets_sent);
    }
  }
}

// The tentpole contract of the parallel runner: any thread count yields
// bit-identical records in identical order, because all per-session
// randomness derives from (seed, index) alone.
TEST(Harness, ParallelRunMatchesSerialExactly) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 24;
  cfg.threads = 1;
  const auto serial = run_population(cfg);
  cfg.threads = 4;
  const auto parallel = run_population(cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const SessionRecord& a = serial[i];
    const SessionRecord& b = parallel[i];
    EXPECT_EQ(a.cookie_age, b.cookie_age);
    EXPECT_EQ(a.zero_rtt, b.zero_rtt);
    EXPECT_EQ(a.had_cookie, b.had_cookie);
    EXPECT_EQ(a.ff_size, b.ff_size);
    EXPECT_EQ(a.conditions.min_rtt, b.conditions.min_rtt);
    EXPECT_EQ(a.conditions.max_bw, b.conditions.max_bw);
    EXPECT_DOUBLE_EQ(a.conditions.loss_rate, b.conditions.loss_rate);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (const auto& [scheme, res] : a.results) {
      const auto& other = b.results.at(scheme);
      EXPECT_EQ(res.ffct, other.ffct) << core::scheme_name(scheme);
      EXPECT_DOUBLE_EQ(res.fflr, other.fflr);
      EXPECT_EQ(res.first_frame_completed, other.first_frame_completed);
      EXPECT_EQ(res.init.init_cwnd, other.init.init_cwnd);
      EXPECT_EQ(res.init.init_pacing, other.init.init_pacing);
      EXPECT_EQ(res.init.used_ff_size, other.init.used_ff_size);
      EXPECT_EQ(res.init.used_hx_qos, other.init.used_hx_qos);
      EXPECT_EQ(res.server_stats.packets_sent,
                other.server_stats.packets_sent);
      EXPECT_EQ(res.server_stats.packets_lost,
                other.server_stats.packets_lost);
    }
  }
}

// Metrics extension of the same contract: per-worker registries merged in
// index order must equal the registry filled by a serial run — exactly,
// down to raw histogram buckets.
TEST(Harness, ParallelMetricsMatchSerialExactly) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 24;
  cfg.collect_metrics = true;

  cfg.threads = 1;
  obs::MetricsRegistry serial;
  const auto serial_records = run_population(cfg, &serial);
  cfg.threads = 4;
  obs::MetricsRegistry parallel;
  const auto parallel_records = run_population(cfg, &parallel);

  EXPECT_EQ(serial.counters(), parallel.counters());
  EXPECT_EQ(serial.gauges(), parallel.gauges());
  ASSERT_EQ(serial.histograms().size(), parallel.histograms().size());
  for (const auto& [name, hist] : serial.histograms()) {
    const obs::LatencyHistogram* other = parallel.find_histogram(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(hist.count(), other->count()) << name;
    EXPECT_EQ(hist.sum(), other->sum()) << name;
    EXPECT_EQ(hist.min(), other->min()) << name;
    EXPECT_EQ(hist.max(), other->max()) << name;
    EXPECT_EQ(hist.bucket_counts(), other->bucket_counts()) << name;
  }
  // The aggregate JSON and the per-session JSONL are byte-identical too
  // (the --metrics-out acceptance check).
  std::ostringstream js, jp, ls, lp;
  serial.write_json(js);
  parallel.write_json(jp);
  EXPECT_EQ(js.str(), jp.str());
  write_records_jsonl(serial_records, ls);
  write_records_jsonl(parallel_records, lp);
  EXPECT_EQ(ls.str(), lp.str());
  // Sanity: the registry actually saw every (session, scheme) pair.
  uint64_t sessions_counted = 0;
  for (const auto& [name, v] : serial.counters()) {
    if (name.rfind("sessions.", 0) == 0) sessions_counted += v;
  }
  EXPECT_EQ(sessions_counted, cfg.sessions * cfg.schemes.size());
}

// Phase spans are only collected when metrics are on, and they partition
// FFCT exactly for every completed session.
TEST(Harness, PhaseSpansPartitionFfctExactly) {
  PopulationConfig cfg = small_config(31);
  cfg.sessions = 16;
  cfg.collect_metrics = true;
  const auto records = run_population(cfg);
  size_t checked = 0;
  for (const auto& r : records) {
    for (const auto& [scheme, res] : r.results) {
      if (!res.first_frame_completed) {
        continue;
      }
      ASSERT_EQ(res.phases.size(), obs::kNumPhases)
          << core::scheme_name(scheme);
      TimeNs sum = 0;
      for (const auto& span : res.phases) {
        EXPECT_GE(span.duration(), 0);
        sum += span.duration();
      }
      EXPECT_EQ(sum, res.ffct) << core::scheme_name(scheme);
      checked++;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Harness, MetricsOffLeavesRecordsLean) {
  PopulationConfig cfg = small_config(7);
  cfg.sessions = 4;
  const auto records = run_population(cfg);
  for (const auto& r : records) {
    for (const auto& [scheme, res] : r.results) {
      EXPECT_TRUE(res.phases.empty());
    }
  }
}

TEST(Harness, AutoThreadCountAlsoMatchesSerial) {
  PopulationConfig cfg = small_config(5);
  cfg.sessions = 8;
  cfg.schemes = {core::Scheme::kWira};
  cfg.threads = 1;
  const auto serial = run_population(cfg);
  cfg.threads = 0;  // hardware concurrency
  const auto parallel = run_population(cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].results.at(core::Scheme::kWira).ffct,
              parallel[i].results.at(core::Scheme::kWira).ffct);
  }
}

TEST(Harness, DifferentSeedsDiffer) {
  const auto a = run_population(small_config(1));
  const auto b = run_population(small_config(2));
  const Samples sa = collect_ffct(a, core::Scheme::kWira);
  const Samples sb = collect_ffct(b, core::Scheme::kWira);
  EXPECT_NE(sa.mean(), sb.mean());
}

TEST(Harness, PairedSchemesShareConditions) {
  const auto records = run_population(small_config());
  for (const auto& r : records) {
    // Same session, all schemes: identical stream, so identical FF_Size
    // (when both parsers completed).
    uint64_t ff = 0;
    for (const auto& [scheme, res] : r.results) {
      if (res.ff_size == 0) continue;
      if (ff == 0) ff = res.ff_size;
      EXPECT_EQ(res.ff_size, ff) << core::scheme_name(scheme);
    }
  }
}

TEST(Harness, MetricsArePhysicallyPlausible) {
  const auto records = run_population(small_config());
  for (const auto& r : records) {
    for (const auto& [scheme, res] : r.results) {
      if (!res.first_frame_completed) continue;
      // FFCT can't beat the propagation RTT (request leg + data leg).
      EXPECT_GE(res.ffct, r.conditions.min_rtt);
      EXPECT_LE(res.ffct, seconds(10));
      EXPECT_GE(res.fflr, 0.0);
      EXPECT_LE(res.fflr, 1.0);
      // Frame completions are monotone.
      TimeNs prev = 0;
      for (const auto& f : res.frames) {
        if (f.completion == kNoTime) continue;
        EXPECT_GE(f.completion, prev);
        prev = f.completion;
      }
    }
  }
}

TEST(Harness, SchemeProvenanceFlagsAreConsistent) {
  const auto records = run_population(small_config());
  for (const auto& r : records) {
    const auto& base = r.results.at(core::Scheme::kBaseline);
    EXPECT_FALSE(base.init.used_ff_size);
    EXPECT_FALSE(base.init.used_hx_qos);
    const auto& wira = r.results.at(core::Scheme::kWira);
    if (wira.init.used_hx_qos) {
      EXPECT_TRUE(r.had_cookie);
      EXPECT_FALSE(wira.init.hx_stale);
    }
    if (!r.had_cookie) {
      EXPECT_FALSE(wira.init.used_hx_qos);
    }
  }
}

TEST(Harness, StaleCookiesFollowSessionGap) {
  PopulationConfig cfg = small_config();
  cfg.sessions = 40;
  cfg.staleness_threshold = minutes(2);  // tight: many gaps exceed it
  cfg.schemes = {core::Scheme::kWira};
  const auto records = run_population(cfg);
  size_t stale_seen = 0;
  for (const auto& r : records) {
    const auto& res = r.results.at(core::Scheme::kWira);
    if (r.had_cookie && r.cookie_age > minutes(2)) {
      EXPECT_FALSE(res.init.used_hx_qos);
      stale_seen++;
    }
    if (r.had_cookie && r.cookie_age <= minutes(2)) {
      EXPECT_TRUE(res.init.used_hx_qos || !res.first_frame_completed);
    }
  }
  EXPECT_GT(stale_seen, 0u) << "gap distribution should exceed 2 min often";
}

TEST(Harness, CollectorsFilter) {
  const auto records = run_population(small_config());
  const Samples all = collect_ffct(records, core::Scheme::kWira);
  const Samples zero = collect_ffct(records, core::Scheme::kWira,
                                    [](const SessionRecord& r) {
                                      return r.zero_rtt;
                                    });
  const Samples one = collect_ffct(records, core::Scheme::kWira,
                                   [](const SessionRecord& r) {
                                     return !r.zero_rtt;
                                   });
  EXPECT_EQ(all.count(), zero.count() + one.count());
}

TEST(Harness, ZeroRttShareMatchesConfig) {
  PopulationConfig cfg = small_config();
  cfg.sessions = 80;
  cfg.p_zero_rtt = 0.5;
  cfg.schemes = {core::Scheme::kBaseline};
  const auto records = run_population(cfg);
  size_t zero = 0;
  for (const auto& r : records) zero += r.zero_rtt;
  EXPECT_NEAR(static_cast<double>(zero) / records.size(), 0.5, 0.2);
}

// Bit-exact record equality via the wire codec: every field the harness
// carries participates, so this is strictly stronger than the field
// spot-checks above.
bool records_equal(const std::vector<SessionRecord>& a,
                   const std::vector<SessionRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    std::vector<uint8_t> ea, eb;
    CodecWriter wa(ea), wb(eb);
    encode_session_record(a[i], wa);
    encode_session_record(b[i], wb);
    if (ea != eb) return false;
  }
  return true;
}

// The multiprocess extension of the determinism contract: records come
// back over pipes through the wire codec and must still be bit-identical
// to a serial run, at any worker count, including the per-session JSONL.
TEST(Harness, MultiprocessRunMatchesSerialExactly) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 24;
  const auto serial = run_population(cfg);
  for (const size_t procs : {2u, 4u}) {
    cfg.processes = procs;
    const auto sharded = run_population(cfg);
    EXPECT_TRUE(records_equal(serial, sharded)) << procs << " procs";
    std::ostringstream ls, lp;
    write_records_jsonl(serial, ls);
    write_records_jsonl(sharded, lp);
    EXPECT_EQ(ls.str(), lp.str()) << procs << " procs";
  }
}

TEST(Harness, MultiprocessMetricsMatchSerialExactly) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 24;
  cfg.collect_metrics = true;
  obs::MetricsRegistry serial;
  const auto serial_records = run_population(cfg, &serial);
  cfg.processes = 4;
  obs::MetricsRegistry sharded;
  const auto sharded_records = run_population(cfg, &sharded);

  EXPECT_TRUE(records_equal(serial_records, sharded_records));
  EXPECT_EQ(serial.counters(), sharded.counters());
  EXPECT_EQ(serial.gauges(), sharded.gauges());
  std::ostringstream js, jp;
  serial.write_json(js);
  sharded.write_json(jp);
  EXPECT_EQ(js.str(), jp.str());  // covers raw histogram buckets
}

// Crash containment: a worker SIGKILLed mid-stripe must surface as a
// named error that pinpoints the session it was on, with every record it
// streamed before dying salvaged.
TEST(Harness, MultiprocessDeadWorkerIsNamedAndSalvaged) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.processes = 2;     // stripes [0,6) and [6,12)
  cfg.kill_at_index = 9; // worker 1 dies after streaming 6..8
  try {
    run_population(cfg);
    FAIL() << "expected PopulationShardError";
  } catch (const PopulationShardError& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "worker 1 (sessions [6,12)) killed by signal 9 "
                  "while on session 9"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("salvaged 9 of 12 records"),
              std::string::npos)
        << e.what();
    ASSERT_EQ(e.deaths.size(), 1u);
    EXPECT_EQ(e.deaths[0].worker, 1);
    EXPECT_EQ(e.deaths[0].stripe_begin, 6u);
    EXPECT_EQ(e.deaths[0].stripe_end, 12u);
    EXPECT_EQ(e.deaths[0].died_at, 9u);
    EXPECT_EQ(e.missing, (std::vector<size_t>{9, 10, 11}));
    ASSERT_EQ(e.salvaged.size(), 12u);
    for (size_t i = 0; i < 9; ++i) {
      EXPECT_FALSE(e.salvaged[i].results.empty()) << i;
    }
    for (size_t i = 9; i < 12; ++i) {
      EXPECT_TRUE(e.salvaged[i].results.empty()) << i;
    }
    // The salvage is the real data: bit-identical to a serial run.
    PopulationConfig clean = cfg;
    clean.processes = 1;
    clean.kill_at_index = kNoSessionIndex;
    const auto serial = run_population(clean);
    for (size_t i = 0; i < 9; ++i) {
      std::vector<uint8_t> ea, eb;
      CodecWriter wa(ea), wb(eb);
      encode_session_record(serial[i], wa);
      encode_session_record(e.salvaged[i], wb);
      EXPECT_EQ(ea, eb) << i;
    }
  }
}

// A worker whose session throws (rather than dying on a signal) exits
// nonzero; the parent classifies that distinctly.
TEST(Harness, MultiprocessWorkerExceptionIsNamed) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.processes = 2;
  cfg.fail_at_index = 7;
  try {
    run_population(cfg);
    FAIL() << "expected PopulationShardError";
  } catch (const PopulationShardError& e) {
    ASSERT_EQ(e.deaths.size(), 1u);
    EXPECT_EQ(e.deaths[0].reason, "exited with status 1");
    EXPECT_EQ(e.deaths[0].died_at, 7u);
    EXPECT_EQ(e.missing, (std::vector<size_t>{7, 8, 9, 10, 11}));
  }
}

// With retry_dead_shards the parent re-runs only the missing indices and
// rebuilds the dead worker's registry from the reassembled records, so
// the final output is still bit-identical to serial.
TEST(Harness, MultiprocessRetryDeadShardsCompletesIdentically) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.collect_metrics = true;
  obs::MetricsRegistry serial;
  const auto serial_records = run_population(cfg, &serial);

  cfg.processes = 2;
  cfg.kill_at_index = 9;
  cfg.retry_dead_shards = true;
  obs::MetricsRegistry retried;
  const auto retried_records = run_population(cfg, &retried);

  EXPECT_TRUE(records_equal(serial_records, retried_records));
  std::ostringstream js, jp;
  serial.write_json(js);
  retried.write_json(jp);
  EXPECT_EQ(js.str(), jp.str());
}

// A worker exception in the *threaded* runner must both surface and park
// the shared index counter, so the other workers stop claiming sessions
// instead of finishing the whole sweep first.  Trace sampling makes the
// drain observable: every completed session leaves schemes.size() files.
TEST(Harness, ThreadedWorkerFailureDrainsSweepPromptly) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("wira_drain_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  PopulationConfig cfg = small_config(23);
  cfg.sessions = 40;
  cfg.threads = 2;
  cfg.fail_at_index = 4;
  cfg.trace_sample = 1;
  cfg.trace_dir = dir.string();
  try {
    run_population(cfg);
    FAIL() << "expected the injected failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected failure at session 4"),
              std::string::npos)
        << e.what();
  }
  size_t traced_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    traced_files++;
  }
  fs::remove_all(dir);
  // Sessions completed after the failure: at most the ones already
  // claimed (one per worker).  Without the counter park, the surviving
  // worker finishes all 39 remaining sessions first (156 files).
  const size_t bound = (4 + cfg.threads + 2) * cfg.schemes.size();
  EXPECT_LE(traced_files, bound);
  EXPECT_GT(traced_files, 0u);  // sessions before the failure were traced
}

// An unopenable trace destination must degrade to untraced sessions that
// are warned about and counted — never silently dropped, never fatal.
TEST(Harness, FailedTraceOpenIsCountedNotSilent) {
  PopulationConfig cfg = small_config(7);
  cfg.sessions = 3;
  cfg.collect_metrics = true;
  cfg.trace_sample = 1;
  cfg.trace_dir = "/dev/null";  // exists, not a directory: every open fails
  obs::MetricsRegistry metrics;
  const auto records = run_population(cfg, &metrics);
  ASSERT_EQ(records.size(), 3u);
  for (const auto& r : records) {
    EXPECT_EQ(r.trace_open_failures, cfg.schemes.size());
  }
  EXPECT_EQ(metrics.counter("trace.open_failed"),
            cfg.sessions * cfg.schemes.size());
}

// Regression: rows wider than the header used to have their extra cells
// silently dropped by Table::print.
TEST(TablePrint, KeepsCellsBeyondHeaderWidth) {
  Table t({"scheme", "ffct"});
  t.row({"wira", "95.2", "extra-1", "extra-2"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("extra-1"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("extra-2"), std::string::npos) << os.str();
}

TEST(Harness, RunnerHonorsCcChoice) {
  PopulationConfig cfg = small_config();
  cfg.sessions = 4;
  cfg.cc_algo = cc::CcAlgo::kNewReno;
  const auto records = run_population(cfg);
  size_t done = 0;
  for (const auto& r : records) {
    for (const auto& [s, res] : r.results) done += res.first_frame_completed;
  }
  EXPECT_GT(done, 0u);
}

}  // namespace
}  // namespace wira::exp
