// Tests for the experiment harness itself: paired A/B integrity,
// determinism, metric plausibility, and the bucketing collectors.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <sstream>

#include "exp/population_experiment.h"
#include "exp/record_codec.h"
#include "exp/record_sink.h"
#include "exp/session_export.h"
#include "exp/session_runner.h"
#include "exp/table.h"
#include "obs/metrics.h"
#include "obs/rss.h"
#include "obs/trace_join.h"
#include "util/logging.h"

namespace wira::exp {
namespace {

PopulationConfig small_config(uint64_t seed = 11) {
  PopulationConfig cfg;
  cfg.sessions = 12;
  cfg.seed = seed;
  return cfg;
}

TEST(Harness, PopulationIsDeterministic) {
  const auto a = run_population(small_config());
  const auto b = run_population(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].results.size(), b[i].results.size());
    for (const auto& [scheme, res] : a[i].results) {
      EXPECT_EQ(res.ffct, b[i].results.at(scheme).ffct);
      EXPECT_EQ(res.server_stats.packets_sent,
                b[i].results.at(scheme).server_stats.packets_sent);
    }
  }
}

// The tentpole contract of the parallel runner: any thread count yields
// bit-identical records in identical order, because all per-session
// randomness derives from (seed, index) alone.
TEST(Harness, ParallelRunMatchesSerialExactly) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 24;
  cfg.threads = 1;
  const auto serial = run_population(cfg);
  cfg.threads = 4;
  const auto parallel = run_population(cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const SessionRecord& a = serial[i];
    const SessionRecord& b = parallel[i];
    EXPECT_EQ(a.cookie_age, b.cookie_age);
    EXPECT_EQ(a.zero_rtt, b.zero_rtt);
    EXPECT_EQ(a.had_cookie, b.had_cookie);
    EXPECT_EQ(a.ff_size, b.ff_size);
    EXPECT_EQ(a.conditions.min_rtt, b.conditions.min_rtt);
    EXPECT_EQ(a.conditions.max_bw, b.conditions.max_bw);
    EXPECT_DOUBLE_EQ(a.conditions.loss_rate, b.conditions.loss_rate);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (const auto& [scheme, res] : a.results) {
      const auto& other = b.results.at(scheme);
      EXPECT_EQ(res.ffct, other.ffct) << core::scheme_name(scheme);
      EXPECT_DOUBLE_EQ(res.fflr, other.fflr);
      EXPECT_EQ(res.first_frame_completed, other.first_frame_completed);
      EXPECT_EQ(res.init.init_cwnd, other.init.init_cwnd);
      EXPECT_EQ(res.init.init_pacing, other.init.init_pacing);
      EXPECT_EQ(res.init.used_ff_size, other.init.used_ff_size);
      EXPECT_EQ(res.init.used_hx_qos, other.init.used_hx_qos);
      EXPECT_EQ(res.server_stats.packets_sent,
                other.server_stats.packets_sent);
      EXPECT_EQ(res.server_stats.packets_lost,
                other.server_stats.packets_lost);
    }
  }
}

// Metrics extension of the same contract: per-worker registries merged in
// index order must equal the registry filled by a serial run — exactly,
// down to raw histogram buckets.
TEST(Harness, ParallelMetricsMatchSerialExactly) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 24;
  cfg.collect_metrics = true;

  cfg.threads = 1;
  obs::MetricsRegistry serial;
  const auto serial_records = run_population(cfg, &serial);
  cfg.threads = 4;
  obs::MetricsRegistry parallel;
  const auto parallel_records = run_population(cfg, &parallel);

  EXPECT_EQ(serial.counters(), parallel.counters());
  EXPECT_EQ(serial.gauges(), parallel.gauges());
  ASSERT_EQ(serial.histograms().size(), parallel.histograms().size());
  for (const auto& [name, hist] : serial.histograms()) {
    const obs::LatencyHistogram* other = parallel.find_histogram(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(hist.count(), other->count()) << name;
    EXPECT_EQ(hist.sum(), other->sum()) << name;
    EXPECT_EQ(hist.min(), other->min()) << name;
    EXPECT_EQ(hist.max(), other->max()) << name;
    EXPECT_EQ(hist.bucket_counts(), other->bucket_counts()) << name;
  }
  // The aggregate JSON and the per-session JSONL are byte-identical too
  // (the --metrics-out acceptance check).
  std::ostringstream js, jp, ls, lp;
  serial.write_json(js);
  parallel.write_json(jp);
  EXPECT_EQ(js.str(), jp.str());
  write_records_jsonl(serial_records, ls);
  write_records_jsonl(parallel_records, lp);
  EXPECT_EQ(ls.str(), lp.str());
  // Sanity: the registry actually saw every (session, scheme) pair.
  uint64_t sessions_counted = 0;
  for (const auto& [name, v] : serial.counters()) {
    if (name.rfind("sessions.", 0) == 0) sessions_counted += v;
  }
  EXPECT_EQ(sessions_counted, cfg.sessions * cfg.schemes.size());
}

// Phase spans are only collected when metrics are on, and they partition
// FFCT exactly for every completed session.
TEST(Harness, PhaseSpansPartitionFfctExactly) {
  PopulationConfig cfg = small_config(31);
  cfg.sessions = 16;
  cfg.collect_metrics = true;
  const auto records = run_population(cfg);
  size_t checked = 0;
  for (const auto& r : records) {
    for (const auto& [scheme, res] : r.results) {
      if (!res.first_frame_completed) {
        continue;
      }
      ASSERT_EQ(res.phases.size(), obs::kNumPhases)
          << core::scheme_name(scheme);
      TimeNs sum = 0;
      for (const auto& span : res.phases) {
        EXPECT_GE(span.duration(), 0);
        sum += span.duration();
      }
      EXPECT_EQ(sum, res.ffct) << core::scheme_name(scheme);
      checked++;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Harness, MetricsOffLeavesRecordsLean) {
  PopulationConfig cfg = small_config(7);
  cfg.sessions = 4;
  const auto records = run_population(cfg);
  for (const auto& r : records) {
    for (const auto& [scheme, res] : r.results) {
      EXPECT_TRUE(res.phases.empty());
    }
  }
}

TEST(Harness, AutoThreadCountAlsoMatchesSerial) {
  PopulationConfig cfg = small_config(5);
  cfg.sessions = 8;
  cfg.schemes = {core::Scheme::kWira};
  cfg.threads = 1;
  const auto serial = run_population(cfg);
  cfg.threads = 0;  // hardware concurrency
  const auto parallel = run_population(cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].results.at(core::Scheme::kWira).ffct,
              parallel[i].results.at(core::Scheme::kWira).ffct);
  }
}

TEST(Harness, DifferentSeedsDiffer) {
  const auto a = run_population(small_config(1));
  const auto b = run_population(small_config(2));
  const Samples sa = collect_ffct(a, core::Scheme::kWira);
  const Samples sb = collect_ffct(b, core::Scheme::kWira);
  EXPECT_NE(sa.mean(), sb.mean());
}

TEST(Harness, PairedSchemesShareConditions) {
  const auto records = run_population(small_config());
  for (const auto& r : records) {
    // Same session, all schemes: identical stream, so identical FF_Size
    // (when both parsers completed).
    uint64_t ff = 0;
    for (const auto& [scheme, res] : r.results) {
      if (res.ff_size == 0) continue;
      if (ff == 0) ff = res.ff_size;
      EXPECT_EQ(res.ff_size, ff) << core::scheme_name(scheme);
    }
  }
}

TEST(Harness, MetricsArePhysicallyPlausible) {
  const auto records = run_population(small_config());
  for (const auto& r : records) {
    for (const auto& [scheme, res] : r.results) {
      if (!res.first_frame_completed) continue;
      // FFCT can't beat the propagation RTT (request leg + data leg).
      EXPECT_GE(res.ffct, r.conditions.min_rtt);
      EXPECT_LE(res.ffct, seconds(10));
      EXPECT_GE(res.fflr, 0.0);
      EXPECT_LE(res.fflr, 1.0);
      // Frame completions are monotone.
      TimeNs prev = 0;
      for (const auto& f : res.frames) {
        if (f.completion == kNoTime) continue;
        EXPECT_GE(f.completion, prev);
        prev = f.completion;
      }
    }
  }
}

TEST(Harness, SchemeProvenanceFlagsAreConsistent) {
  const auto records = run_population(small_config());
  for (const auto& r : records) {
    const auto& base = r.results.at(core::Scheme::kBaseline);
    EXPECT_FALSE(base.init.used_ff_size);
    EXPECT_FALSE(base.init.used_hx_qos);
    const auto& wira = r.results.at(core::Scheme::kWira);
    if (wira.init.used_hx_qos) {
      EXPECT_TRUE(r.had_cookie);
      EXPECT_FALSE(wira.init.hx_stale);
    }
    if (!r.had_cookie) {
      EXPECT_FALSE(wira.init.used_hx_qos);
    }
  }
}

TEST(Harness, StaleCookiesFollowSessionGap) {
  PopulationConfig cfg = small_config();
  cfg.sessions = 40;
  cfg.staleness_threshold = minutes(2);  // tight: many gaps exceed it
  cfg.schemes = {core::Scheme::kWira};
  const auto records = run_population(cfg);
  size_t stale_seen = 0;
  for (const auto& r : records) {
    const auto& res = r.results.at(core::Scheme::kWira);
    if (r.had_cookie && r.cookie_age > minutes(2)) {
      EXPECT_FALSE(res.init.used_hx_qos);
      stale_seen++;
    }
    if (r.had_cookie && r.cookie_age <= minutes(2)) {
      EXPECT_TRUE(res.init.used_hx_qos || !res.first_frame_completed);
    }
  }
  EXPECT_GT(stale_seen, 0u) << "gap distribution should exceed 2 min often";
}

TEST(Harness, CollectorsFilter) {
  const auto records = run_population(small_config());
  const Samples all = collect_ffct(records, core::Scheme::kWira);
  const Samples zero = collect_ffct(records, core::Scheme::kWira,
                                    [](const SessionRecord& r) {
                                      return r.zero_rtt;
                                    });
  const Samples one = collect_ffct(records, core::Scheme::kWira,
                                   [](const SessionRecord& r) {
                                     return !r.zero_rtt;
                                   });
  EXPECT_EQ(all.count(), zero.count() + one.count());
}

TEST(Harness, ZeroRttShareMatchesConfig) {
  PopulationConfig cfg = small_config();
  cfg.sessions = 80;
  cfg.p_zero_rtt = 0.5;
  cfg.schemes = {core::Scheme::kBaseline};
  const auto records = run_population(cfg);
  size_t zero = 0;
  for (const auto& r : records) zero += r.zero_rtt;
  EXPECT_NEAR(static_cast<double>(zero) / records.size(), 0.5, 0.2);
}

// Bit-exact record equality via the wire codec: every field the harness
// carries participates, so this is strictly stronger than the field
// spot-checks above.
bool records_equal(const std::vector<SessionRecord>& a,
                   const std::vector<SessionRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    std::vector<uint8_t> ea, eb;
    CodecWriter wa(ea), wb(eb);
    encode_session_record(a[i], wa);
    encode_session_record(b[i], wb);
    if (ea != eb) return false;
  }
  return true;
}

// The multiprocess extension of the determinism contract: records come
// back over pipes through the wire codec and must still be bit-identical
// to a serial run, at any worker count, including the per-session JSONL.
TEST(Harness, MultiprocessRunMatchesSerialExactly) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 24;
  const auto serial = run_population(cfg);
  for (const size_t procs : {2u, 4u}) {
    cfg.processes = procs;
    const auto sharded = run_population(cfg);
    EXPECT_TRUE(records_equal(serial, sharded)) << procs << " procs";
    std::ostringstream ls, lp;
    write_records_jsonl(serial, ls);
    write_records_jsonl(sharded, lp);
    EXPECT_EQ(ls.str(), lp.str()) << procs << " procs";
  }
}

TEST(Harness, MultiprocessMetricsMatchSerialExactly) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 24;
  cfg.collect_metrics = true;
  obs::MetricsRegistry serial;
  const auto serial_records = run_population(cfg, &serial);
  cfg.processes = 4;
  obs::MetricsRegistry sharded;
  const auto sharded_records = run_population(cfg, &sharded);

  EXPECT_TRUE(records_equal(serial_records, sharded_records));
  EXPECT_EQ(serial.counters(), sharded.counters());
  EXPECT_EQ(serial.gauges(), sharded.gauges());
  std::ostringstream js, jp;
  serial.write_json(js);
  sharded.write_json(jp);
  EXPECT_EQ(js.str(), jp.str());  // covers raw histogram buckets
}

// Crash containment: a worker SIGKILLed mid-stripe must surface as a
// named error that pinpoints the session it was on, with every record it
// streamed before dying salvaged.
TEST(Harness, MultiprocessDeadWorkerIsNamedAndSalvaged) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.processes = 2;
  cfg.chunk = 6;         // chunks [0,6) and [6,12), dealt to workers 0/1
  cfg.kill_at_index = 9; // worker 1 dies after streaming 6..8
  try {
    run_population(cfg);
    FAIL() << "expected PopulationShardError";
  } catch (const PopulationShardError& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "worker 1 (sessions [6,12)) killed by signal 9 "
                  "while on session 9"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("salvaged 9 of 12 records"),
              std::string::npos)
        << e.what();
    ASSERT_EQ(e.deaths.size(), 1u);
    EXPECT_EQ(e.deaths[0].worker, 1);
    EXPECT_EQ(e.deaths[0].stripe_begin, 6u);
    EXPECT_EQ(e.deaths[0].stripe_end, 12u);
    EXPECT_EQ(e.deaths[0].died_at, 9u);
    EXPECT_EQ(e.missing, (std::vector<size_t>{9, 10, 11}));
    ASSERT_EQ(e.salvaged.size(), 12u);
    for (size_t i = 0; i < 9; ++i) {
      EXPECT_FALSE(e.salvaged[i].results.empty()) << i;
    }
    for (size_t i = 9; i < 12; ++i) {
      EXPECT_TRUE(e.salvaged[i].results.empty()) << i;
    }
    // The salvage is the real data: bit-identical to a serial run.
    PopulationConfig clean = cfg;
    clean.processes = 1;
    clean.kill_at_index = kNoSessionIndex;
    const auto serial = run_population(clean);
    for (size_t i = 0; i < 9; ++i) {
      std::vector<uint8_t> ea, eb;
      CodecWriter wa(ea), wb(eb);
      encode_session_record(serial[i], wa);
      encode_session_record(e.salvaged[i], wb);
      EXPECT_EQ(ea, eb) << i;
    }
  }
}

// A worker whose session throws (rather than dying on a signal) exits
// nonzero; the parent classifies that distinctly.
TEST(Harness, MultiprocessWorkerExceptionIsNamed) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.processes = 2;
  cfg.chunk = 6;  // chunks [0,6) and [6,12), dealt to workers 0/1
  cfg.fail_at_index = 7;
  try {
    run_population(cfg);
    FAIL() << "expected PopulationShardError";
  } catch (const PopulationShardError& e) {
    ASSERT_EQ(e.deaths.size(), 1u);
    EXPECT_EQ(e.deaths[0].reason, "exited with status 1");
    EXPECT_EQ(e.deaths[0].died_at, 7u);
    EXPECT_EQ(e.missing, (std::vector<size_t>{7, 8, 9, 10, 11}));
  }
}

// Signal-dump forensics (DESIGN.md §7): a forked worker dying on a fatal
// signal leaves its in-flight session's flight-recorder rings behind via
// the async-signal-safe handler, and the parent materializes them as a
// crash_session_<i>_<scheme> qlog pair that the stock cross-vantage join
// accepts.  crash_after_index raises *after* the record streamed, so the
// rings hold a complete session.
void expect_joinable_crash_dump(int signal, const char* tag) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string("wira_crash_dump_") + tag + "_" +
       std::to_string(::getpid()));
  fs::remove_all(dir);

  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.processes = 2;
  cfg.chunk = 6;  // chunks [0,6) and [6,12), dealt to workers 0/1
  cfg.anomaly_dir = dir.string();
  cfg.crash_after_index = 9;
  cfg.crash_after_signal = signal;
  try {
    run_population(cfg);
    FAIL() << "expected PopulationShardError";
  } catch (const PopulationShardError& e) {
    ASSERT_EQ(e.deaths.size(), 1u);
    EXPECT_EQ(e.deaths[0].worker, 1);
    EXPECT_NE(e.deaths[0].reason.find(
                  "killed by signal " + std::to_string(signal)),
              std::string::npos)
        << e.deaths[0].reason;
  }

  // Exactly one crash pair, for session 9 (the session the handler was
  // last armed for), and it joins cleanly.
  std::string base;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("crash_session_9_", 0) == 0 &&
        name.find(".server.sqlog") != std::string::npos) {
      base = name.substr(0, name.size() - std::strlen(".server.sqlog"));
    }
    EXPECT_EQ(name.find("crash_worker_"), std::string::npos)
        << "raw dump " << name << " must be consumed and removed";
  }
  ASSERT_FALSE(base.empty()) << "no crash_session_9_* pair in " << dir;
  obs::ParsedQlog client, server;
  std::string error;
  ASSERT_TRUE(obs::parse_sqlog_file((dir / (base + ".server.sqlog")).string(),
                                    &server, &error))
      << error;
  ASSERT_TRUE(obs::parse_sqlog_file((dir / (base + ".client.sqlog")).string(),
                                    &client, &error))
      << error;
  EXPECT_EQ(server.group_id, base);
  EXPECT_EQ(client.group_id, base);
  obs::JoinedPhases joined;
  ASSERT_TRUE(obs::join_vantages(client, server, &joined, &error)) << error;
  EXPECT_GT(joined.ffct_us, 0u);
  fs::remove_all(dir);
}

TEST(Harness, SigabrtWorkerLeavesJoinableCrashDump) {
  expect_joinable_crash_dump(SIGABRT, "abrt");
}

TEST(Harness, SigsegvWorkerLeavesJoinableCrashDump) {
  expect_joinable_crash_dump(SIGSEGV, "segv");
}

// With retry_dead_shards the parent re-runs only the missing indices and
// rebuilds the dead worker's registry from the reassembled records, so
// the final output is still bit-identical to serial.
TEST(Harness, MultiprocessRetryDeadShardsCompletesIdentically) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.collect_metrics = true;
  obs::MetricsRegistry serial;
  const auto serial_records = run_population(cfg, &serial);

  cfg.processes = 2;
  cfg.chunk = 6;
  cfg.kill_at_index = 9;
  cfg.retry_dead_shards = true;
  obs::MetricsRegistry retried;
  const auto retried_records = run_population(cfg, &retried);

  EXPECT_TRUE(records_equal(serial_records, retried_records));
  std::ostringstream js, jp;
  serial.write_json(js);
  retried.write_json(jp);
  EXPECT_EQ(js.str(), jp.str());
}

// A worker exception in the *threaded* runner must both surface and park
// the shared index counter, so the other workers stop claiming sessions
// instead of finishing the whole sweep first.  Trace sampling makes the
// drain observable: every completed session leaves schemes.size() files.
TEST(Harness, ThreadedWorkerFailureDrainsSweepPromptly) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("wira_drain_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  PopulationConfig cfg = small_config(23);
  cfg.sessions = 40;
  cfg.threads = 2;
  cfg.fail_at_index = 4;
  cfg.trace_sample = 1;
  cfg.trace_dir = dir.string();
  try {
    run_population(cfg);
    FAIL() << "expected the injected failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected failure at session 4"),
              std::string::npos)
        << e.what();
  }
  size_t traced_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    traced_files++;
  }
  fs::remove_all(dir);
  // Sessions completed after the failure: at most the ones already
  // claimed (one per worker).  Without the counter park, the surviving
  // worker finishes all 39 remaining sessions first (312 files).  Each
  // sampled (session, scheme) writes two files, one per vantage.
  const size_t bound = (4 + cfg.threads + 2) * cfg.schemes.size() * 2;
  EXPECT_LE(traced_files, bound);
  EXPECT_GT(traced_files, 0u);  // sessions before the failure were traced
}

// An unopenable trace destination must degrade to untraced sessions that
// are warned about and counted — never silently dropped, never fatal.
TEST(Harness, FailedTraceOpenIsCountedNotSilent) {
  PopulationConfig cfg = small_config(7);
  cfg.sessions = 3;
  cfg.collect_metrics = true;
  cfg.trace_sample = 1;
  cfg.trace_dir = "/dev/null";  // exists, not a directory: every open fails
  obs::MetricsRegistry metrics;
  const auto records = run_population(cfg, &metrics);
  ASSERT_EQ(records.size(), 3u);
  // Two opens per sampled (session, scheme) — one per vantage — and both
  // fail against a non-directory.
  for (const auto& r : records) {
    EXPECT_EQ(r.trace_open_failures, 2 * cfg.schemes.size());
  }
  EXPECT_EQ(metrics.counter("trace.open_failed"),
            2 * cfg.sessions * cfg.schemes.size());
}

// Regression: rows wider than the header used to have their extra cells
// silently dropped by Table::print.
TEST(TablePrint, KeepsCellsBeyondHeaderWidth) {
  Table t({"scheme", "ffct"});
  t.row({"wira", "95.2", "extra-1", "extra-2"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("extra-1"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("extra-2"), std::string::npos) << os.str();
}

// ---- streaming sinks (the bounded-memory soak path, DESIGN.md §6) ----

// The soak contract: pushing records through a CollectSink is
// byte-identical to the vector API at any thread or process count — the
// sink path introduces no new ordering, copying, or codec hazards.
TEST(Harness, StreamingSinkMatchesCollectExactly) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 24;
  const auto collected = run_population(cfg);

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    cfg.threads = threads;
    cfg.processes = 1;
    CollectSink sink(cfg.sessions);
    run_population(cfg, nullptr, sink);
    EXPECT_TRUE(records_equal(collected, sink.records()))
        << threads << " threads";
  }

  cfg.threads = 1;
  cfg.processes = 4;
  CollectSink sink;
  run_population(cfg, nullptr, sink);
  EXPECT_TRUE(records_equal(collected, sink.records())) << "4 procs";
}

// The RecordSink ordering contract: indices arrive strictly increasing
// from 0, exactly once each, and on_complete fires after the last one —
// even when records are produced out of order by threads or processes.
TEST(Harness, StreamingSinkSeesStrictIndexOrder) {
  struct IndexLogSink final : RecordSink {
    void on_record(size_t index, SessionRecord&&) override {
      indices.push_back(index);
    }
    void on_complete(size_t sessions) override { completed = sessions; }
    std::vector<size_t> indices;
    size_t completed = 0;
  };

  PopulationConfig cfg = small_config(29);
  cfg.sessions = 18;
  for (const size_t procs : {size_t{1}, size_t{3}}) {
    cfg.threads = procs == 1 ? 4 : 1;
    cfg.processes = procs;
    IndexLogSink sink;
    run_population(cfg, nullptr, sink);
    ASSERT_EQ(sink.indices.size(), cfg.sessions) << procs << " procs";
    for (size_t i = 0; i < sink.indices.size(); ++i) {
      EXPECT_EQ(sink.indices[i], i) << procs << " procs";
    }
    EXPECT_EQ(sink.completed, cfg.sessions) << procs << " procs";
  }
}

// Streaming aggregation must reproduce the batch registry exactly: same
// fold, same histograms, same JSON — collecting a million records buys
// nothing the sink does not already have.
TEST(Harness, AggregateSinkMatchesBatchRegistry) {
  PopulationConfig cfg = small_config(37);
  cfg.sessions = 10;
  cfg.collect_metrics = true;
  obs::MetricsRegistry batch;
  run_population(cfg, &batch);

  AggregateSink::Options opts;
  opts.include_phases = true;
  AggregateSink sink(opts);
  run_population(cfg, nullptr, sink);

  EXPECT_EQ(sink.sessions_seen(), cfg.sessions);
  std::ostringstream jb, js;
  batch.write_json(jb);
  sink.registry().write_json(js);
  EXPECT_EQ(jb.str(), js.str());
}

// Sharded soaks aggregate per worker and merge; the merge must be
// indistinguishable from one sink having seen every record.
TEST(Harness, AggregateSinkMergeMatchesSingleFold) {
  PopulationConfig cfg = small_config(41);
  cfg.sessions = 12;
  cfg.collect_metrics = true;
  CollectSink all;
  run_population(cfg, nullptr, all);

  AggregateSink::Options opts;
  opts.include_phases = true;
  AggregateSink whole(opts), even(opts), odd(opts);
  for (size_t i = 0; i < all.records().size(); ++i) {
    SessionRecord copy_whole = all.records()[i];
    SessionRecord copy_shard = all.records()[i];
    whole.on_record(i, std::move(copy_whole));
    (i % 2 == 0 ? even : odd).on_record(i, std::move(copy_shard));
  }
  even.merge(odd);

  EXPECT_EQ(even.sessions_seen(), whole.sessions_seen());
  std::ostringstream jw, jm;
  whole.registry().write_json(jw);
  even.registry().write_json(jm);
  EXPECT_EQ(jw.str(), jm.str());
  std::ostringstream sw, sm;
  whole.write_summary_line(sw, /*final_line=*/true);
  even.write_summary_line(sm, /*final_line=*/true);
  EXPECT_EQ(sw.str(), sm.str());
}

// The codec sink writes exactly the multiprocess wire format: header,
// one checksummed frame per record in index order, clean end marker —
// and replaying the stream reproduces the collect-mode records bit for
// bit.
TEST(Harness, CodecStreamSinkReplaysExactly) {
  PopulationConfig cfg = small_config(43);
  cfg.sessions = 8;
  const auto collected = run_population(cfg);

  std::ostringstream os;
  CodecStreamSink sink(os);
  run_population(cfg, nullptr, sink);
  const std::string wire = os.str();
  EXPECT_EQ(sink.bytes_written(), wire.size());

  const std::span<const uint8_t> data(
      reinterpret_cast<const uint8_t*>(wire.data()), wire.size());
  size_t offset = 0;
  ASSERT_EQ(read_stream_header(data, &offset), FrameStatus::kOk);
  std::vector<SessionRecord> replayed;
  bool saw_end = false;
  while (offset < data.size()) {
    FrameView frame;
    ASSERT_EQ(next_frame(data, &offset, &frame), FrameStatus::kOk);
    if (frame.type == FrameType::kEnd) {
      saw_end = true;
      break;
    }
    ASSERT_EQ(frame.type, FrameType::kSessionRecord);
    CodecReader r(frame.payload);
    uint64_t index = 0;
    ASSERT_TRUE(r.u64(&index));
    EXPECT_EQ(index, replayed.size());
    SessionRecord rec;
    ASSERT_TRUE(decode_session_record(r, &rec));
    replayed.push_back(std::move(rec));
  }
  EXPECT_TRUE(saw_end);
  EXPECT_EQ(offset, data.size());
  EXPECT_TRUE(records_equal(collected, replayed));
}

// Mini-soak: a streaming run with periodic flushes must emit one JSONL
// line per flush (plus the final line), fire the flush hook each time,
// and keep resident memory flat — the in-test plateau bound is loose
// (1.5x) because tiny runs sit inside allocator noise; tools/run_soak.sh
// gates the real soak at 1.10.
TEST(Harness, MiniSoakFlushesAndRssStaysBounded) {
  PopulationConfig cfg = small_config(47);
  cfg.sessions = 160;

  std::ostringstream flushes;
  AggregateSink::Options opts;
  opts.flush_every = 20;
  opts.flush_out = &flushes;
  AggregateSink sink(opts);
  std::vector<double> rss_mb;
  sink.set_flush_hook(
      +[](uint64_t, std::string* extra, void* arg) {
        const std::optional<uint64_t> rss = obs::current_rss_bytes();
        if (rss.has_value()) {
          static_cast<std::vector<double>*>(arg)->push_back(
              static_cast<double>(*rss) / 1e6);
        }
        *extra += ",\"probe\":1";
      },
      &rss_mb);
  run_population(cfg, nullptr, sink);

  // 160/20 periodic flushes + the final line from on_complete.
  EXPECT_EQ(sink.flushes_written(), 9u);
  size_t lines = 0;
  for (const char c : flushes.str()) lines += c == '\n';
  EXPECT_EQ(lines, sink.flushes_written());
  EXPECT_NE(flushes.str().find("\"probe\":1"), std::string::npos);
  EXPECT_NE(flushes.str().find("\"final\":true"), std::string::npos);

  if (rss_mb.size() >= 2) {
    const size_t half = rss_mb.size() / 2;
    double early = 0, late = 0;
    for (size_t i = 0; i < half; ++i) early = std::max(early, rss_mb[i]);
    for (size_t i = half; i < rss_mb.size(); ++i) {
      late = std::max(late, rss_mb[i]);
    }
    ASSERT_GT(early, 0.0);
    EXPECT_LE(late / early, 1.5);
  }
}

// ---- workspace recycling ----

// The SessionWorkspace contract: a reset-and-reused loop is
// indistinguishable from a fresh one, so every field of the result —
// including arena accounting — is bit-identical via the wire codec.
TEST(Workspace, ReusedLoopMatchesFreshExactly) {
  SessionWorkspace ws;
  for (const uint64_t seed : {3ull, 9ull, 21ull}) {
    SessionConfig cfg;
    cfg.seed = seed;
    cfg.collect_phases = true;
    const SessionResult fresh = run_session(cfg);
    const SessionResult reused = run_session(cfg, ws);
    std::vector<uint8_t> ea, eb;
    CodecWriter wa(ea), wb(eb);
    encode_session_result(fresh, wa);
    encode_session_result(reused, wb);
    EXPECT_EQ(ea, eb) << "seed " << seed;
  }
  EXPECT_EQ(ws.sessions_run(), 3u);
}

// A relative trace_dir silently writes qlog samples wherever the process
// happens to be running — the runner must say so, with the resolved
// absolute path, at the default warn level.
TEST(Harness, TraceDirRelativeWarnsWithAbsolutePath) {
  namespace fs = std::filesystem;
  const std::string rel_dir = "trace_rel_warn_test";
  PopulationConfig cfg = small_config(7);
  cfg.sessions = 1;
  cfg.trace_sample = 1;
  cfg.trace_dir = rel_dir;

  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  run_population(cfg);
  const std::string err = testing::internal::GetCapturedStderr();
  set_log_level(LogLevel::kOff);
  fs::remove_all(rel_dir);

  EXPECT_NE(err.find("is relative; qlog samples will be written to"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find((fs::current_path() / rel_dir).string()),
            std::string::npos)
      << err;

  // An absolute trace_dir must stay silent.
  const fs::path abs_dir = fs::temp_directory_path() / "trace_abs_quiet";
  cfg.trace_dir = abs_dir.string();
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  run_population(cfg);
  const std::string quiet = testing::internal::GetCapturedStderr();
  set_log_level(LogLevel::kOff);
  fs::remove_all(abs_dir);
  EXPECT_EQ(quiet.find("is relative"), std::string::npos) << quiet;
}

TEST(Harness, RunnerHonorsCcChoice) {
  PopulationConfig cfg = small_config();
  cfg.sessions = 4;
  cfg.cc_algo = cc::CcAlgo::kNewReno;
  const auto records = run_population(cfg);
  size_t done = 0;
  for (const auto& r : records) {
    for (const auto& [s, res] : r.results) done += res.first_frame_completed;
  }
  EXPECT_GT(done, 0u);
}

}  // namespace
}  // namespace wira::exp
