// Tests for the fleet-scale dispatch layer (DESIGN.md §6): the dynamic
// chunk scheduler, its DispatchStats telemetry, the straggler win it was
// built for, and the socket shard transport (loopback wira_workerd
// endpoints, including one dying mid-sweep).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "exp/population_experiment.h"
#include "exp/record_codec.h"
#include "exp/record_sink.h"
#include "exp/session_export.h"
#include "exp/shard_dispatch.h"
#include "obs/metrics.h"

namespace wira::exp {
namespace {

PopulationConfig small_config(uint64_t seed = 23) {
  PopulationConfig cfg;
  cfg.sessions = 12;
  cfg.seed = seed;
  return cfg;
}

// Encoded-bytes comparison: every field the codec carries participates.
bool records_equal(const std::vector<SessionRecord>& a,
                   const std::vector<SessionRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    std::vector<uint8_t> ea, eb;
    CodecWriter wa(ea), wb(eb);
    encode_session_record(a[i], wa);
    encode_session_record(b[i], wb);
    if (ea != eb) return false;
  }
  return true;
}

TEST(Chunks, FixedSizeCutsWithShortTail) {
  const auto c = make_chunks(10, 4, 3);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].begin, 0u);
  EXPECT_EQ(c[0].end, 4u);
  EXPECT_EQ(c[1].begin, 4u);
  EXPECT_EQ(c[1].end, 8u);
  EXPECT_EQ(c[2].begin, 8u);
  EXPECT_EQ(c[2].end, 10u);  // short tail
}

TEST(Chunks, OversizedChunkIsOneChunk) {
  const auto c = make_chunks(12, 4096, 4);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].begin, 0u);
  EXPECT_EQ(c[0].end, 12u);
}

TEST(Chunks, ZeroMeansStaticBalancedStripes) {
  // 14 over 4 workers: 4,4,3,3 — the legacy static assignment.
  const auto c = make_chunks(14, 0, 4);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0].begin, 0u);
  EXPECT_EQ(c[0].end, 4u);
  EXPECT_EQ(c[1].begin, 4u);
  EXPECT_EQ(c[1].end, 8u);
  EXPECT_EQ(c[2].begin, 8u);
  EXPECT_EQ(c[2].end, 11u);
  EXPECT_EQ(c[3].begin, 11u);
  EXPECT_EQ(c[3].end, 14u);
}

TEST(Chunks, StaticStripingSkipsEmptyStripes) {
  // More workers than sessions: only non-empty stripes survive.
  const auto c = make_chunks(3, 0, 8);
  ASSERT_EQ(c.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c[i].begin, i);
    EXPECT_EQ(c[i].end, i + 1);
  }
}

TEST(Chunks, EmptyPopulationHasNoChunks) {
  EXPECT_TRUE(make_chunks(0, 64, 4).empty());
  EXPECT_TRUE(make_chunks(0, 0, 4).empty());
}

// The tentpole contract: stdout-order records AND the metrics aggregate
// are byte-identical to serial at any (worker count, chunk size) point,
// because reassembly is index-addressed and per-session randomness
// derives only from (seed, index).
TEST(Dispatch, ChunkMatrixMatchesSerialExactly) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 24;
  cfg.collect_metrics = true;
  obs::MetricsRegistry serial_m;
  const auto serial = run_population(cfg, &serial_m);
  std::ostringstream serial_js;
  serial_m.write_json(serial_js);

  for (size_t procs : {2u, 4u}) {
    for (size_t chunk : {size_t{1}, size_t{5}, size_t{4096}}) {
      PopulationConfig sharded_cfg = cfg;
      sharded_cfg.processes = procs;
      sharded_cfg.chunk = chunk;
      obs::MetricsRegistry sharded_m;
      const auto sharded = run_population(sharded_cfg, &sharded_m);
      EXPECT_TRUE(records_equal(serial, sharded))
          << procs << " procs, chunk " << chunk;
      std::ostringstream ls, lp;
      write_records_jsonl(serial, ls);
      write_records_jsonl(sharded, lp);
      EXPECT_EQ(ls.str(), lp.str()) << procs << " procs, chunk " << chunk;
      std::ostringstream sharded_js;
      sharded_m.write_json(sharded_js);
      EXPECT_EQ(serial_js.str(), sharded_js.str())
          << procs << " procs, chunk " << chunk;
    }
  }
}

// The streaming sink sees the exact same bytes as collect mode under the
// dynamic scheduler, even when chunks complete wildly out of order.
TEST(Dispatch, StreamedSinkMatchesCollectUnderDynamicChunks) {
  PopulationConfig cfg = small_config(29);
  cfg.sessions = 18;
  cfg.processes = 3;
  cfg.chunk = 2;
  cfg.collect_metrics = true;
  obs::MetricsRegistry collect_m;
  const auto collected = run_population(cfg, &collect_m);

  obs::MetricsRegistry stream_m;
  CollectSink sink(cfg.sessions);
  run_population(cfg, &stream_m, sink);

  EXPECT_TRUE(records_equal(collected, sink.records()));
  EXPECT_EQ(collect_m.counters(), stream_m.counters());
  std::ostringstream jc, js;
  collect_m.write_json(jc);
  stream_m.write_json(js);
  EXPECT_EQ(jc.str(), js.str());
}

// S1: workers with an empty assignment are never spawned — the worker
// count is structurally min(requested, number of chunks).
TEST(Dispatch, EmptyAssignmentsSkipWorkers) {
  PopulationConfig cfg = small_config(31);
  cfg.sessions = 3;
  cfg.processes = 8;
  cfg.chunk = 1;  // 3 chunks -> only 3 of the 8 requested workers exist
  DispatchStats stats;
  cfg.dispatch_stats = &stats;
  const auto records = run_population(cfg);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(stats.workers_spawned, 3u);
  ASSERT_EQ(stats.chunks_completed.size(), 3u);
  ASSERT_EQ(stats.sessions_completed.size(), 3u);
  uint64_t chunks = 0, sessions = 0;
  for (size_t w = 0; w < 3; ++w) {
    chunks += stats.chunks_completed[w];
    sessions += stats.sessions_completed[w];
  }
  EXPECT_EQ(chunks, 3u);
  EXPECT_EQ(sessions, 3u);
  EXPECT_LE(stats.busy_workers, stats.workers_spawned);
  EXPECT_GE(stats.busy_workers, 1u);

  // One oversized chunk collapses the fleet to a single worker.
  DispatchStats one;
  cfg.chunk = 64;
  cfg.dispatch_stats = &one;
  run_population(cfg);
  EXPECT_EQ(one.workers_spawned, 1u);
  ASSERT_EQ(one.chunks_completed.size(), 1u);
  EXPECT_EQ(one.chunks_completed[0], 1u);
  EXPECT_EQ(one.sessions_completed[0], 3u);
}

// The reason the scheduler exists: with one injected straggler worker,
// dynamic chunking routes work around it while static striping waits for
// its whole stripe.  Sleeps dominate both runs, so the comparison is
// robust under sanitizers; output must stay byte-identical either way.
TEST(Dispatch, DynamicChunksBeatStaticStripingWithStraggler) {
  using clock = std::chrono::steady_clock;
  PopulationConfig cfg = small_config(37);
  cfg.sessions = 24;
  cfg.processes = 4;
  cfg.straggler_worker = 0;
  cfg.straggler_delay_us = 50000;  // 50 ms per session run by worker 0

  cfg.chunk = 0;  // static striping: worker 0 serializes 6 x 50 ms
  const auto t0 = clock::now();
  const auto static_records = run_population(cfg);
  const double static_s =
      std::chrono::duration<double>(clock::now() - t0).count();

  cfg.chunk = 1;  // dynamic: worker 0 pulls ~2 chunks, others take the rest
  const auto t1 = clock::now();
  const auto dyn_records = run_population(cfg);
  const double dyn_s =
      std::chrono::duration<double>(clock::now() - t1).count();

  EXPECT_TRUE(records_equal(static_records, dyn_records));
  PopulationConfig clean = cfg;
  clean.processes = 1;
  clean.straggler_worker = kNoSessionIndex;
  clean.straggler_delay_us = 0;
  EXPECT_TRUE(records_equal(run_population(clean), dyn_records));
  // Static pays >= 300 ms on worker 0's stripe; dynamic pays ~100 ms.
  EXPECT_LT(dyn_s, static_s * 0.85)
      << "static " << static_s << "s vs dynamic " << dyn_s << "s";
}

// ---- loopback TCP transport --------------------------------------------

// A one-connection wira_workerd stand-in: binds an ephemeral loopback
// port, forks, and the child serves exactly one dispatcher connection
// in-process (so kill_at_index kills the server — the dead-endpoint case
// the taxonomy tests need).
struct TestWorkerd {
  pid_t pid = -1;
  std::string endpoint;
};

TestWorkerd spawn_test_workerd() {
  TestWorkerd w;
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(listen_fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  EXPECT_EQ(::listen(listen_fd, 1), 0);
  struct sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&bound), &len);
  w.endpoint = "127.0.0.1:" + std::to_string(ntohs(bound.sin_port));

  w.pid = ::fork();
  if (w.pid == 0) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    ::close(listen_fd);
    if (conn < 0) _Exit(1);
    const int code = serve_shard_worker(conn);
    ::close(conn);
    _Exit(code);
  }
  ::close(listen_fd);
  return w;
}

int reap_test_workerd(const TestWorkerd& w) {
  int status = 0;
  while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

// Dispatching over loopback sockets to wira_workerd-style endpoints
// yields the exact serial bytes — same reassembly, different transport.
TEST(Dispatch, LoopbackTcpMatchesSerialExactly) {
  PopulationConfig cfg = small_config(41);
  cfg.sessions = 18;
  cfg.collect_metrics = true;
  obs::MetricsRegistry serial_m;
  const auto serial = run_population(cfg, &serial_m);

  const TestWorkerd a = spawn_test_workerd();
  const TestWorkerd b = spawn_test_workerd();
  cfg.workers = {a.endpoint, b.endpoint};
  cfg.chunk = 4;
  obs::MetricsRegistry tcp_m;
  const auto over_tcp = run_population(cfg, &tcp_m);

  EXPECT_TRUE(records_equal(serial, over_tcp));
  std::ostringstream ls, lt;
  write_records_jsonl(serial, ls);
  write_records_jsonl(over_tcp, lt);
  EXPECT_EQ(ls.str(), lt.str());
  std::ostringstream js, jt;
  serial_m.write_json(js);
  tcp_m.write_json(jt);
  EXPECT_EQ(js.str(), jt.str());

  const int sa = reap_test_workerd(a);
  const int sb = reap_test_workerd(b);
  EXPECT_TRUE(WIFEXITED(sa) && WEXITSTATUS(sa) == 0);
  EXPECT_TRUE(WIFEXITED(sb) && WEXITSTATUS(sb) == 0);
}

// A TCP endpoint has no exit status, so a daemon SIGKILLed mid-chunk is
// diagnosed purely from its stream state — and still salvaged.
TEST(Dispatch, KilledWorkerdIsNamedAndSalvaged) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.chunk = 6;  // chunks [0,6) and [6,12), dealt to workers 0/1
  cfg.kill_at_index = 9;  // worker 1's daemon dies after streaming 6..8
  const TestWorkerd a = spawn_test_workerd();
  const TestWorkerd b = spawn_test_workerd();
  cfg.workers = {a.endpoint, b.endpoint};
  try {
    run_population(cfg);
    FAIL() << "expected PopulationShardError";
  } catch (const PopulationShardError& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "worker 1 (sessions [6,12)) truncated record stream "
                  "while on session 9"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("salvaged 9 of 12 records"),
              std::string::npos)
        << e.what();
    ASSERT_EQ(e.deaths.size(), 1u);
    EXPECT_EQ(e.deaths[0].worker, 1);
    EXPECT_EQ(e.deaths[0].stripe_begin, 6u);
    EXPECT_EQ(e.deaths[0].stripe_end, 12u);
    EXPECT_EQ(e.deaths[0].died_at, 9u);
    EXPECT_EQ(e.missing, (std::vector<size_t>{9, 10, 11}));
    ASSERT_EQ(e.salvaged.size(), 12u);
    for (size_t i = 0; i < 9; ++i) {
      EXPECT_FALSE(e.salvaged[i].results.empty()) << i;
    }
  }
  const int sa = reap_test_workerd(a);
  const int sb = reap_test_workerd(b);
  EXPECT_TRUE(WIFEXITED(sa) && WEXITSTATUS(sa) == 0);
  EXPECT_TRUE(WIFSIGNALED(sb) && WTERMSIG(sb) == SIGKILL);
}

// --retry-dead-shards over TCP: the parent re-runs the dead daemon's
// missing sessions in-process and the sweep completes byte-identically.
TEST(Dispatch, RetryDeadShardsOverTcpCompletesIdentically) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.chunk = 6;
  cfg.kill_at_index = 9;
  cfg.retry_dead_shards = true;
  const TestWorkerd a = spawn_test_workerd();
  const TestWorkerd b = spawn_test_workerd();
  cfg.workers = {a.endpoint, b.endpoint};
  const auto salvaged = run_population(cfg);

  PopulationConfig clean = cfg;
  clean.workers.clear();
  clean.kill_at_index = kNoSessionIndex;
  clean.retry_dead_shards = false;
  EXPECT_TRUE(records_equal(run_population(clean), salvaged));
  reap_test_workerd(a);
  reap_test_workerd(b);
}

// Streaming-mode retry over pipes: a worker killed mid-chunk is retired,
// its remaining chunks run in-process, and the sink still sees the full
// uninterrupted serial byte sequence.
TEST(Dispatch, StreamRetrySurvivesDeadWorker) {
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.processes = 2;
  cfg.chunk = 6;
  cfg.kill_at_index = 9;
  cfg.retry_dead_shards = true;
  CollectSink sink(cfg.sessions);
  run_population(cfg, nullptr, sink);

  PopulationConfig clean = cfg;
  clean.processes = 1;
  clean.kill_at_index = kNoSessionIndex;
  clean.retry_dead_shards = false;
  EXPECT_TRUE(records_equal(run_population(clean), sink.records()));
}

// ---------------------------------------------------------------------------
// Connect-phase failures (endpoint unreachable / tarpit): the dispatcher
// must classify them as named shard deaths — not abort the sweep with a
// raw throw — so --retry-dead-shards can salvage the assignment.

// A loopback listener whose accept queue is saturated: SYNs to it are
// dropped, so connect() hangs until the client's own timeout.  Keeps the
// queue-filling sockets open for its lifetime.
struct TarpitListener {
  int listen_fd = -1;
  std::vector<int> fillers;
  std::string endpoint;

  TarpitListener() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr),
              0);
    EXPECT_EQ(::listen(listen_fd, 0), 0);  // minimal backlog, never accepts
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    endpoint = "127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
    for (int i = 0; i < 4; ++i) {
      const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
      ::connect(fd, reinterpret_cast<sockaddr*>(&bound), sizeof bound);
      fillers.push_back(fd);
    }
  }
  ~TarpitListener() {
    for (const int fd : fillers) ::close(fd);
    ::close(listen_fd);
  }
};

TEST(Dispatch, ConnectTimeoutIsNamedShardDeath) {
  const TarpitListener tarpit;
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 6;
  cfg.chunk = 6;
  cfg.workers = {tarpit.endpoint};
  cfg.connect_timeout_ms = 300;
  try {
    run_population(cfg);
    FAIL() << "expected PopulationShardError";
  } catch (const PopulationShardError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out after 300 ms"),
              std::string::npos)
        << e.what();
    ASSERT_EQ(e.deaths.size(), 1u);
    EXPECT_EQ(e.deaths[0].worker, 0);
  }
}

TEST(Dispatch, ConnectTimeoutIsSalvagedByRetry) {
  const TarpitListener tarpit;
  PopulationConfig cfg = small_config(23);
  cfg.sessions = 12;
  cfg.chunk = 6;
  cfg.workers = {tarpit.endpoint};
  cfg.connect_timeout_ms = 300;
  cfg.retry_dead_shards = true;
  const auto salvaged = run_population(cfg);

  PopulationConfig clean = cfg;
  clean.workers.clear();
  clean.retry_dead_shards = false;
  EXPECT_TRUE(records_equal(run_population(clean), salvaged));
}

TEST(Dispatch, ConnectRefusedIsNamedShardDeath) {
  // A port with nothing bound: connect() fails fast with ECONNREFUSED,
  // which must surface as a named death, not an aborting throw.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(probe, reinterpret_cast<sockaddr*>(&bound), &len);
  const std::string dead_ep =
      "127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
  ::close(probe);  // bound-but-closed: the port is now free and refusing

  PopulationConfig cfg = small_config(23);
  cfg.sessions = 6;
  cfg.chunk = 6;
  cfg.workers = {dead_ep};
  try {
    run_population(cfg);
    FAIL() << "expected PopulationShardError";
  } catch (const PopulationShardError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot connect to " + dead_ep),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace wira::exp
