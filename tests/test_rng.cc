// Statistical sanity tests for the deterministic RNG and its distributions.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace wira {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) same++;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIsInRangeAndCentered) {
  Rng rng(7);
  Samples s;
  for (int i = 0; i < 20'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.03) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.03, 0.004);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  Samples s;
  for (int i = 0; i < 50'000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMeanCvHitsTargets) {
  Rng rng(13);
  Samples s;
  for (int i = 0; i < 100'000; ++i) s.add(rng.lognormal_mean_cv(43'100, 0.85));
  EXPECT_NEAR(s.mean() / 43'100, 1.0, 0.03);
  EXPECT_NEAR(s.cv(), 0.85, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  Samples s;
  for (int i = 0; i < 50'000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.15);
}

TEST(Rng, ParetoStaysInBounds) {
  Rng rng(19);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.pareto(1.0, 100.0, 1.2);
    ASSERT_GE(v, 1.0 - 1e-9);
    ASSERT_LE(v, 100.0 + 1e-9);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.range(1, 4);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  // Child stream differs from the parent's continuation.
  EXPECT_NE(child.next(), a.next());
}

}  // namespace
}  // namespace wira
