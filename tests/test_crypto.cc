// Crypto substrate tests, anchored on the RFC 8439 test vectors so the
// transport cookie's sealing is verifiably correct ChaCha20-Poly1305.
#include <gtest/gtest.h>

#include "crypto/aead.h"
#include "crypto/chacha20.h"
#include "crypto/poly1305.h"
#include "util/bytes.h"

namespace wira::crypto {
namespace {

std::array<uint8_t, 32> key32(const std::vector<uint8_t>& v) {
  std::array<uint8_t, 32> k{};
  std::copy(v.begin(), v.end(), k.begin());
  return k;
}

std::array<uint8_t, 12> nonce12(const std::vector<uint8_t>& v) {
  std::array<uint8_t, 12> n{};
  std::copy(v.begin(), v.end(), n.begin());
  return n;
}

// RFC 8439 §2.3.2 block function test vector.
TEST(ChaCha20, Rfc8439BlockVector) {
  const auto key = key32(wira::from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  const auto nonce = nonce12(wira::from_hex("000000090000004a00000000"));
  uint8_t block[64];
  chacha20_block(key, 1, nonce, std::span<uint8_t, 64>(block));
  EXPECT_EQ(wira::to_hex(std::span<const uint8_t>(block, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2 encryption test vector ("Ladies and Gentlemen...").
TEST(ChaCha20, Rfc8439EncryptVector) {
  const auto key = key32(wira::from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  const auto nonce = nonce12(wira::from_hex("000000000000004a00000000"));
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<uint8_t> buf(plaintext.begin(), plaintext.end());
  chacha20_xor(key, 1, nonce, buf);
  EXPECT_EQ(wira::to_hex(buf),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

// RFC 8439 §2.5.2 Poly1305 test vector.
TEST(Poly1305, Rfc8439Vector) {
  const auto key = key32(wira::from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"));
  std::string msg = "Cryptographic Forum Research Group";
  const auto tag = poly1305(
      key, std::span<const uint8_t>(
               reinterpret_cast<const uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(wira::to_hex(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

// RFC 8439 §2.8.2 AEAD test vector.
TEST(Aead, Rfc8439SealVector) {
  const auto key = key32(wira::from_hex(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"));
  const auto nonce = nonce12(wira::from_hex("070000004041424344454647"));
  const auto aad = wira::from_hex("50515253c0c1c2c3c4c5c6c7");
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const auto sealed = aead_seal(
      key, nonce, aad,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(plaintext.data()),
          plaintext.size()));
  // Tag is the last 16 bytes.
  ASSERT_EQ(sealed.size(), plaintext.size() + 16);
  EXPECT_EQ(wira::to_hex(std::span<const uint8_t>(sealed).last(16)),
            "1ae10b594f09e26a7e902ecbd0600691");

  auto opened = aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(std::string(opened->begin(), opened->end()), plaintext);
}

TEST(Aead, TamperedCiphertextFailsToOpen) {
  const Key key = key_from_string("secret");
  const Nonce nonce = nonce_from_u64(42);
  const std::vector<uint8_t> pt = {1, 2, 3, 4, 5};
  auto sealed = aead_seal(key, nonce, {}, pt);

  for (size_t i = 0; i < sealed.size(); ++i) {
    auto corrupted = sealed;
    corrupted[i] ^= 0x01;
    EXPECT_FALSE(aead_open(key, nonce, {}, corrupted).has_value())
        << "bit flip at byte " << i << " must break authentication";
  }
}

TEST(Aead, WrongKeyNonceOrAadFails) {
  const Key key = key_from_string("secret");
  const Nonce nonce = nonce_from_u64(1);
  const std::vector<uint8_t> pt = {9, 9, 9};
  const std::vector<uint8_t> aad = {7};
  auto sealed = aead_seal(key, nonce, aad, pt);

  EXPECT_TRUE(aead_open(key, nonce, aad, sealed).has_value());
  EXPECT_FALSE(
      aead_open(key_from_string("other"), nonce, aad, sealed).has_value());
  EXPECT_FALSE(aead_open(key, nonce_from_u64(2), aad, sealed).has_value());
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).has_value());
}

TEST(Aead, TruncatedBlobFails) {
  const Key key = key_from_string("secret");
  const Nonce nonce = nonce_from_u64(3);
  auto sealed = aead_seal(key, nonce, {}, std::vector<uint8_t>{1, 2, 3});
  for (size_t keep = 0; keep < sealed.size(); ++keep) {
    std::vector<uint8_t> cut(sealed.begin(),
                             sealed.begin() + static_cast<long>(keep));
    EXPECT_FALSE(aead_open(key, nonce, {}, cut).has_value());
  }
}

TEST(Aead, EmptyPlaintextRoundTrips) {
  const Key key = key_from_string("k");
  auto sealed = aead_seal(key, nonce_from_u64(1), {}, {});
  EXPECT_EQ(sealed.size(), 16u);
  auto opened = aead_open(key, nonce_from_u64(1), {}, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(DeriveKey, LabelsAreDomainSeparated) {
  const Key master = key_from_string("master");
  const Key a = derive_key(master, "label-a");
  const Key b = derive_key(master, "label-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, derive_key(master, "label-a"));  // deterministic
}

TEST(KeyFromString, DistinctStringsDistinctKeys) {
  EXPECT_NE(key_from_string("alpha"), key_from_string("beta"));
  EXPECT_EQ(key_from_string("alpha"), key_from_string("alpha"));
}

}  // namespace
}  // namespace wira::crypto
