// Unit tests for the transport cookie: triple codec, sealing, client store,
// OD binding and staleness semantics.
#include "core/transport_cookie.h"

#include <gtest/gtest.h>

namespace wira::core {
namespace {

HxQosRecord sample_record() {
  HxQosRecord r;
  r.min_rtt = milliseconds(47);
  r.max_bw = mbps(12);
  r.server_timestamp = minutes(10);
  r.od_key = 0xABCDEF0123456789ull;
  return r;
}

TEST(HxQosTriples, RoundTrip) {
  const HxQosRecord in = sample_record();
  auto out = decode_hxqos_triples(encode_hxqos_triples(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->min_rtt, in.min_rtt);
  EXPECT_EQ(out->max_bw, in.max_bw);
  EXPECT_EQ(out->server_timestamp, in.server_timestamp);
  EXPECT_EQ(out->od_key, in.od_key);
}

TEST(HxQosTriples, UnknownHxIdSkippedViaHxLen) {
  auto bytes = encode_hxqos_triples(sample_record());
  // Append an unknown triple <id=99, len=3, ...>: decoder must skip it.
  bytes.push_back(99);
  bytes.push_back(3);
  bytes.insert(bytes.end(), {1, 2, 3});
  auto out = decode_hxqos_triples(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->max_bw, sample_record().max_bw);
}

TEST(HxQosTriples, TruncationRejected) {
  const auto bytes = encode_hxqos_triples(sample_record());
  for (size_t keep = 1; keep < bytes.size(); ++keep) {
    if (keep % 10 == 0) continue;  // some prefixes are valid triple sets
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<long>(keep));
    auto out = decode_hxqos_triples(cut);
    // Either cleanly rejected, or parsed as a shorter valid triple set —
    // never a crash and never garbage fields beyond what was present.
    if (out) {
      EXPECT_TRUE(keep >= 10);
    }
  }
}

TEST(HxQosRecord, ValidityAndFreshness) {
  HxQosRecord r;
  EXPECT_FALSE(r.valid());
  r = sample_record();
  EXPECT_TRUE(r.valid());
  // Fresh within Delta, stale beyond it (§IV-C corner case 2).
  const TimeNs sealed_at = r.server_timestamp;
  EXPECT_TRUE(r.fresh(sealed_at + minutes(59), kDefaultStaleness));
  EXPECT_TRUE(r.fresh(sealed_at + minutes(60), kDefaultStaleness));
  EXPECT_FALSE(r.fresh(sealed_at + minutes(61), kDefaultStaleness));
}

// The staleness boundary is inclusive to the nanosecond: exactly Delta
// old is fresh, one nanosecond older is stale.
TEST(HxQosRecord, FreshnessBoundaryIsExact) {
  HxQosRecord r = sample_record();
  const TimeNs sealed_at = r.server_timestamp;
  EXPECT_TRUE(r.fresh(sealed_at + kDefaultStaleness, kDefaultStaleness));
  EXPECT_FALSE(r.fresh(sealed_at + kDefaultStaleness + 1, kDefaultStaleness));
}

// A future-dated cookie (server clock skew, §IV-C) would underflow the
// age computation; it must be treated as fresh (age ~ 0), never as a
// huge-age stale cookie that silently disables Hx_QoS initialization.
TEST(HxQosRecord, FutureDatedCookieIsFresh) {
  HxQosRecord r = sample_record();
  EXPECT_TRUE(r.fresh(r.server_timestamp - 1, kDefaultStaleness));
  EXPECT_TRUE(r.fresh(r.server_timestamp - minutes(90), kDefaultStaleness));
  // Not valid still wins over skew handling.
  HxQosRecord invalid;
  invalid.server_timestamp = minutes(10);
  EXPECT_FALSE(invalid.valid());
  EXPECT_FALSE(invalid.fresh(minutes(1), kDefaultStaleness));
}

TEST(CookieSealer, SealOpenRoundTrip) {
  CookieSealer sealer(crypto::key_from_string("master"));
  const HxQosRecord in = sample_record();
  const auto blob = sealer.seal(in);
  auto out = sealer.open(blob);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->min_rtt, in.min_rtt);
  EXPECT_EQ(out->max_bw, in.max_bw);
  EXPECT_EQ(out->od_key, in.od_key);
}

TEST(CookieSealer, ClientCannotForge) {
  CookieSealer sealer(crypto::key_from_string("master"));
  auto blob = sealer.seal(sample_record());
  // Any single-bit modification of the blob (a client fabricating a
  // "better" Hx_QoS, §VII) fails authentication.
  for (size_t i = 8; i < blob.size(); ++i) {
    auto tampered = blob;
    tampered[i] ^= 0x80;
    EXPECT_FALSE(sealer.open(tampered).has_value()) << "byte " << i;
  }
}

TEST(CookieSealer, NonceTamperingFails) {
  CookieSealer sealer(crypto::key_from_string("master"));
  auto blob = sealer.seal(sample_record());
  blob[0] ^= 1;  // nonce bytes are authenticated implicitly via decryption
  EXPECT_FALSE(sealer.open(blob).has_value());
}

TEST(CookieSealer, DifferentServersCannotOpenEachOthersCookies) {
  CookieSealer a(crypto::key_from_string("server-a"));
  CookieSealer b(crypto::key_from_string("server-b"));
  const auto blob = a.seal(sample_record());
  EXPECT_FALSE(b.open(blob).has_value());
}

TEST(CookieSealer, SequentialSealsProduceDistinctBlobs) {
  CookieSealer sealer(crypto::key_from_string("master"));
  const auto a = sealer.seal(sample_record());
  const auto b = sealer.seal(sample_record());
  EXPECT_NE(a, b) << "nonce must advance per seal";
  EXPECT_TRUE(sealer.open(a).has_value());
  EXPECT_TRUE(sealer.open(b).has_value());
}

TEST(CookieSealer, GarbageRejected) {
  CookieSealer sealer(crypto::key_from_string("master"));
  EXPECT_FALSE(sealer.open({}).has_value());
  std::vector<uint8_t> junk(40, 0xAA);
  EXPECT_FALSE(sealer.open(junk).has_value());
}

TEST(ClientCookieStore, StoreLookupOverwrite) {
  ClientCookieStore store;
  EXPECT_FALSE(store.lookup(1).has_value());
  store.store(1, {1, 2, 3}, milliseconds(10));
  store.store(2, {4, 5}, milliseconds(20));
  auto e = store.lookup(1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->sealed, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(e->stored_at, milliseconds(10));
  // Newer cookie replaces older one for the same OD pair.
  store.store(1, {9}, milliseconds(30));
  EXPECT_EQ(store.lookup(1)->sealed, (std::vector<uint8_t>{9}));
  EXPECT_EQ(store.size(), 2u);
  store.erase(1);
  EXPECT_EQ(store.size(), 1u);
}

TEST(OdPairKey, DistinctInputsDistinctKeys) {
  const uint64_t base = od_pair_key(1, 2, 0);
  EXPECT_NE(base, od_pair_key(2, 2, 0));  // different client
  EXPECT_NE(base, od_pair_key(1, 3, 0));  // different server
  EXPECT_NE(base, od_pair_key(1, 2, 2));  // different network type
  EXPECT_EQ(base, od_pair_key(1, 2, 0));  // stable
}

}  // namespace
}  // namespace wira::core
