// Unit tests for congestion control: the bandwidth sampler, windowed
// filter, BBRv1 state machine, NewReno, and the Wira initialization hook.
#include <gtest/gtest.h>

#include "cc/bandwidth_sampler.h"
#include "cc/bbr.h"
#include "cc/congestion_controller.h"
#include "cc/newreno.h"
#include "cc/windowed_filter.h"

namespace wira::cc {
namespace {

TEST(WindowedFilter, TracksMaxWithinWindow) {
  MaxFilter<uint64_t, int64_t> f(10);
  f.update(100, 0);
  f.update(80, 1);
  f.update(90, 2);
  EXPECT_EQ(f.best(), 100u);
  f.update(120, 3);
  EXPECT_EQ(f.best(), 120u);
}

TEST(WindowedFilter, OldBestAgesOut) {
  MaxFilter<uint64_t, int64_t> f(10);
  f.update(100, 0);
  for (int64_t t = 1; t <= 25; ++t) f.update(50, t);
  EXPECT_EQ(f.best(), 50u);
}

TEST(WindowedFilter, MinVariantTracksMin) {
  MinFilter<int64_t, int64_t> f(10);
  f.update(100, 1);
  f.update(40, 2);
  f.update(70, 3);
  EXPECT_EQ(f.best(), 40);
}

TEST(BandwidthSampler, SteadyStateAcksGiveTrueRate) {
  BandwidthSampler s;
  // Steady state: packet i sent at i ms, acked at i+5 ms (5 ms RTT), one
  // 1000-byte packet per ms in each direction -> 1 MB/s delivery rate.
  RateSample last;
  for (uint64_t i = 0; i < 40; ++i) {
    s.on_packet_sent(milliseconds(static_cast<int64_t>(i)), i, 1000,
                     i == 0 ? 0 : 5000);
    if (i >= 5) {
      last = s.on_packet_acked(milliseconds(static_cast<int64_t>(i)), i - 5);
    }
  }
  EXPECT_NEAR(static_cast<double>(last.bandwidth), 1e6, 1.5e5);
}

TEST(BandwidthSampler, AppLimitedFlagPropagates) {
  BandwidthSampler s;
  s.on_packet_sent(0, 1, 1000, 0);
  (void)s.on_packet_acked(milliseconds(10), 1);
  s.on_app_limited();
  s.on_packet_sent(milliseconds(20), 2, 1000, 0);
  const auto sample = s.on_packet_acked(milliseconds(30), 2);
  EXPECT_TRUE(sample.app_limited);
}

TEST(BandwidthSampler, UntrackedPacketYieldsNoSample) {
  BandwidthSampler s;
  const auto sample = s.on_packet_acked(milliseconds(1), 99);
  EXPECT_EQ(sample.bandwidth, 0u);
}

CongestionEvent make_ack_event(TimeNs now, uint64_t pn, uint64_t bytes,
                               TimeNs rtt, Bandwidth bw) {
  CongestionEvent ev;
  ev.now = now;
  ev.acked.push_back(AckedPacket{pn, bytes, now - rtt});
  ev.prior_bytes_in_flight = bytes;
  ev.latest_rtt = rtt;
  ev.min_rtt = rtt;
  ev.smoothed_rtt = rtt;
  ev.bandwidth_sample = bw;
  return ev;
}

TEST(Bbr, StartsInStartupWithDefaultWindow) {
  BbrV1 bbr;
  EXPECT_EQ(bbr.mode(), BbrV1::Mode::kStartup);
  EXPECT_EQ(bbr.congestion_window(), kDefaultInitCwndPackets * kMss);
}

TEST(Bbr, InitialParametersApplyBeforeSamples) {
  BbrV1 bbr;
  bbr.set_initial_parameters(66'000, mbps(8));
  EXPECT_EQ(bbr.congestion_window(), 66'000u);
  EXPECT_EQ(bbr.pacing_rate(), mbps(8));
}

TEST(Bbr, LateInitUpdatePreservesEarnedGrowth) {
  BbrV1 bbr;
  bbr.set_initial_parameters(40'000, mbps(8));
  // One ack grows startup cwnd by acked bytes.
  uint64_t pn = 1;
  bbr.on_packet_sent(0, pn, 10'000, 0, true);
  bbr.on_congestion_event(
      make_ack_event(milliseconds(50), pn, 10'000, milliseconds(50), 0));
  const uint64_t grown = bbr.congestion_window();
  EXPECT_EQ(grown, 50'000u);
  // Corner case 1: FF_Size arrives late and re-initializes to 66 KB.
  bbr.set_initial_parameters(66'000, 0);
  EXPECT_EQ(bbr.congestion_window(), 76'000u);  // 66k + 10k earned
}

TEST(Bbr, MeasuredBandwidthSupersedesInitialPacing) {
  BbrV1 bbr;
  bbr.set_initial_parameters(50'000, mbps(8));
  uint64_t pn = 1;
  bbr.on_packet_sent(0, pn, 1460, 0, true);
  bbr.on_congestion_event(make_ack_event(milliseconds(50), pn, 1460,
                                         milliseconds(50), mbps(4)));
  // Startup pacing gain 2.885 over the measured 4 Mbps.
  EXPECT_NEAR(static_cast<double>(bbr.pacing_rate()),
              2.885 * static_cast<double>(mbps(4)),
              static_cast<double>(mbps(4)) * 0.01);
}

TEST(Bbr, FullBandwidthDetectionExitsStartup) {
  BbrV1 bbr;
  uint64_t pn = 0;
  TimeNs now = 0;
  const Bandwidth bw = mbps(10);
  // Repeated rounds at a plateaued bandwidth must leave STARTUP within a
  // few rounds (3-round / 25% growth rule).
  for (int round = 0; round < 10; ++round) {
    now += milliseconds(20);
    bbr.on_packet_sent(now, ++pn, 1460, 0, true);
    bbr.on_congestion_event(
        make_ack_event(now + milliseconds(20), pn, 1460, milliseconds(20),
                       bw));
  }
  EXPECT_TRUE(bbr.full_bandwidth_reached());
  EXPECT_NE(bbr.mode(), BbrV1::Mode::kStartup);
  EXPECT_EQ(bbr.bandwidth_estimate(), bw);
}

TEST(Bbr, LossEntersConservationRecovery) {
  BbrV1 bbr;
  bbr.set_initial_parameters(100'000, mbps(10));
  uint64_t pn = 0;
  for (int i = 0; i < 20; ++i) bbr.on_packet_sent(0, ++pn, 1460, i * 1460, true);
  CongestionEvent ev;
  ev.now = milliseconds(50);
  ev.prior_bytes_in_flight = 20 * 1460;
  ev.acked.push_back(AckedPacket{20, 1460, 0});
  ev.lost.push_back(LostPacket{1, 1460});
  ev.lost.push_back(LostPacket{2, 1460});
  ev.latest_rtt = milliseconds(50);
  ev.min_rtt = milliseconds(50);
  bbr.on_congestion_event(ev);
  EXPECT_LT(bbr.congestion_window(), 100'000u);
}

TEST(Bbr, RtoCollapsesWindow) {
  BbrV1 bbr;
  bbr.set_initial_parameters(100'000, mbps(10));
  bbr.on_retransmission_timeout(seconds(1));
  EXPECT_EQ(bbr.congestion_window(), 4 * kMss);
}

TEST(Bbr, AppLimitedSamplesDontInflateFilter) {
  BbrV1 bbr;
  uint64_t pn = 0;
  // Establish a genuine 5 Mbps estimate.
  bbr.on_packet_sent(0, ++pn, 1460, 0, true);
  bbr.on_congestion_event(make_ack_event(milliseconds(20), pn, 1460,
                                         milliseconds(20), mbps(5)));
  // An app-limited *lower* sample must not displace it...
  auto ev = make_ack_event(milliseconds(40), ++pn, 1460, milliseconds(20),
                           mbps(1));
  ev.app_limited_sample = true;
  bbr.on_packet_sent(milliseconds(21), pn, 1460, 0, true);
  bbr.on_congestion_event(ev);
  EXPECT_EQ(bbr.bandwidth_estimate(), mbps(5));
}

TEST(Bbr, CarefulResumeSkipsStartup) {
  BbrV1 bbr;
  bbr.resume_from_history(mbps(10), milliseconds(50));
  bbr.set_initial_parameters(50'000, mbps(10));
  // Straight to PROBE_BW with a neutral gain: pacing == remembered rate.
  EXPECT_EQ(bbr.mode(), BbrV1::Mode::kProbeBw);
  EXPECT_TRUE(bbr.full_bandwidth_reached());
  EXPECT_EQ(bbr.bandwidth_estimate(), mbps(10));
  EXPECT_EQ(bbr.pacing_rate(), mbps(10));
  EXPECT_EQ(bbr.min_rtt(), milliseconds(50));
  EXPECT_EQ(bbr.congestion_window(), 50'000u);
}

TEST(Bbr, CarefulResumeIgnoresInvalidHistory) {
  BbrV1 bbr;
  bbr.resume_from_history(0, milliseconds(50));
  EXPECT_EQ(bbr.mode(), BbrV1::Mode::kStartup);
  bbr.resume_from_history(mbps(10), kNoTime);
  EXPECT_EQ(bbr.mode(), BbrV1::Mode::kStartup);
}

TEST(Bbr, ResumedModelUpdatedByHigherSamples) {
  BbrV1 bbr;
  bbr.resume_from_history(mbps(5), milliseconds(50));
  uint64_t pn = 1;
  bbr.on_packet_sent(0, pn, 1460, 0, true);
  bbr.on_congestion_event(make_ack_event(milliseconds(50), pn, 1460,
                                         milliseconds(50), mbps(12)));
  EXPECT_EQ(bbr.bandwidth_estimate(), mbps(12));
}

TEST(NewReno, SlowStartDoublesPerRtt) {
  NewReno reno;
  const uint64_t start = reno.congestion_window();
  CongestionEvent ev;
  ev.now = milliseconds(50);
  ev.acked.push_back(AckedPacket{1, start, 0});
  ev.smoothed_rtt = milliseconds(50);
  reno.on_congestion_event(ev);
  EXPECT_EQ(reno.congestion_window(), 2 * start);
  EXPECT_TRUE(reno.in_slow_start());
}

TEST(NewReno, LossHalvesOncePerRound) {
  NewReno reno;
  reno.set_initial_parameters(100'000, 0);
  reno.on_packet_sent(0, 50, 1460, 0, true);
  CongestionEvent ev;
  ev.now = milliseconds(50);
  ev.lost.push_back(LostPacket{10, 1460});
  ev.lost.push_back(LostPacket{11, 1460});  // same round: no double halving
  ev.smoothed_rtt = milliseconds(50);
  reno.on_congestion_event(ev);
  EXPECT_EQ(reno.congestion_window(), 50'000u);
}

TEST(NewReno, CongestionAvoidanceLinearGrowth) {
  NewReno reno;
  reno.set_initial_parameters(20'000, 0);
  reno.on_packet_sent(0, 1, 1460, 0, true);
  // Force out of slow start via a loss.
  CongestionEvent loss;
  loss.now = milliseconds(10);
  loss.lost.push_back(LostPacket{1, 1460});
  reno.on_congestion_event(loss);
  const uint64_t cwnd = reno.congestion_window();
  ASSERT_FALSE(reno.in_slow_start());
  // Ack a full window: +1 MSS.
  reno.on_packet_sent(milliseconds(11), 100, 1460, 0, true);
  CongestionEvent ev;
  ev.now = milliseconds(60);
  ev.acked.push_back(AckedPacket{100, cwnd, milliseconds(11)});
  ev.smoothed_rtt = milliseconds(50);
  reno.on_congestion_event(ev);
  EXPECT_EQ(reno.congestion_window(), cwnd + kMss);
}

TEST(Factory, CreatesRequestedAlgorithms) {
  EXPECT_EQ(make_controller(CcAlgo::kBbrV1)->name(), "bbr1");
  EXPECT_EQ(make_controller(CcAlgo::kNewReno)->name(), "newreno");
}

}  // namespace
}  // namespace wira::cc
