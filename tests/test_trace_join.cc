// Tests for the cross-vantage qlog join (obs/trace_join.h): parser edge
// cases, the join itself, and the end-to-end exactness contract — every
// --trace-sample'd session's joined phase split equals the in-session
// PhaseTimeline truncated to microseconds, at any thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "exp/population_experiment.h"
#include "obs/trace_join.h"
#include "util/json_parse.h"

namespace wira::obs {
namespace {

// ---------------------------------------------------------------------------
// Exact ms-text -> us conversion (the precision-critical parsing step).

TEST(MsTextToUs, ExactIntegerConversion) {
  uint64_t us = 0;
  ASSERT_TRUE(util::ms_text_to_us("0", &us));
  EXPECT_EQ(us, 0u);
  ASSERT_TRUE(util::ms_text_to_us("12", &us));
  EXPECT_EQ(us, 12'000u);
  ASSERT_TRUE(util::ms_text_to_us("12.003", &us));
  EXPECT_EQ(us, 12'003u);
  ASSERT_TRUE(util::ms_text_to_us("0.001", &us));
  EXPECT_EQ(us, 1u);
  ASSERT_TRUE(util::ms_text_to_us("7.5", &us));
  EXPECT_EQ(us, 7'500u);
  // A value a double cannot hold exactly still converts exactly.
  ASSERT_TRUE(util::ms_text_to_us("9007199254740.993", &us));
  EXPECT_EQ(us, 9'007'199'254'740'993u);
}

TEST(MsTextToUs, RejectsWhatQlogNeverEmits) {
  uint64_t us = 0;
  EXPECT_FALSE(util::ms_text_to_us("-1", &us));
  EXPECT_FALSE(util::ms_text_to_us("1e3", &us));
  EXPECT_FALSE(util::ms_text_to_us("1.0001", &us));  // sub-us precision
  EXPECT_FALSE(util::ms_text_to_us("", &us));
  EXPECT_FALSE(util::ms_text_to_us("abc", &us));
}

// ---------------------------------------------------------------------------
// Parser.

std::string header_line(const std::string& vantage_type,
                        const std::string& group_id) {
  return "{\"qlog_version\": \"0.3\", \"qlog_format\": \"JSON-SEQ\", "
         "\"title\": \"t\", \"trace\": {\"vantage_point\": {\"name\": "
         "\"x\", \"type\": \"" +
         vantage_type +
         "\"}, \"common_fields\": {\"group_id\": \"" + group_id +
         "\", \"reference_time\": 0}}}\n";
}

TEST(SqlogParse, ExtractsMarkersAndIdentity) {
  const std::string text =
      header_line("client", "s0") +
      "{\"time\": 1.250, \"name\": \"wira:request_sent\", \"data\": "
      "{\"bytes\": 33}}\n"
      "{\"time\": 2.000, \"name\": \"some:unknown_event\", \"data\": {}}\n"
      "{\"time\": 5.125, \"name\": \"wira:first_video_byte\", \"data\": "
      "{\"total_bytes\": 900}}\n"
      "{\"time\": 6.000, \"name\": \"wira:stall_observed\", \"data\": "
      "{\"kind\": \"recv_gap\", \"gap\": 300.000, \"total_bytes\": 900}}\n"
      "{\"time\": 7.000, \"name\": \"wira:frame_complete\", \"data\": "
      "{\"frame_index\": 2, \"bytes\": 1}}\n"
      "{\"time\": 9.003, \"name\": \"wira:frame_complete\", \"data\": "
      "{\"frame_index\": 1, \"bytes\": 50000}}\n";
  ParsedQlog q;
  std::string error;
  ASSERT_TRUE(parse_sqlog_text(text, &q, &error)) << error;
  EXPECT_EQ(q.vantage_type, "client");
  EXPECT_EQ(q.group_id, "s0");
  EXPECT_EQ(q.request_sent_us, 1'250u);
  EXPECT_EQ(q.first_video_byte_us, 5'125u);
  // Only frame_index == 1 counts as first-frame completion.
  EXPECT_EQ(q.first_frame_complete_us, 9'003u);
  EXPECT_EQ(q.stall_events, 1u);
  EXPECT_EQ(q.events, 6u);
  EXPECT_EQ(q.request_received_us, kNoTimeUs);
}

TEST(SqlogParse, RejectsMalformedInputs) {
  ParsedQlog q;
  std::string error;
  EXPECT_FALSE(parse_sqlog_text("", &q, &error));
  EXPECT_FALSE(parse_sqlog_text("not json\n", &q, &error));
  // Header without a vantage type.
  EXPECT_FALSE(parse_sqlog_text(
      "{\"trace\": {\"vantage_point\": {\"name\": \"x\"}}}\n", &q, &error));
  // Event with an unparsable time.
  EXPECT_FALSE(parse_sqlog_text(
      header_line("client", "g") +
          "{\"time\": 1e3, \"name\": \"wira:request_sent\", \"data\": {}}\n",
      &q, &error));
}

// ---------------------------------------------------------------------------
// Join.

ParsedQlog client_vantage(const std::string& gid = "g") {
  ParsedQlog q;
  q.vantage_type = "client";
  q.group_id = gid;
  q.request_sent_us = 1'000;
  q.first_video_byte_us = 40'000;
  q.first_frame_complete_us = 90'000;
  return q;
}

ParsedQlog server_vantage(const std::string& gid = "g") {
  ParsedQlog q;
  q.vantage_type = "server";
  q.group_id = gid;
  q.request_received_us = 11'000;
  q.first_origin_byte_us = 20'000;
  q.ff_parsed_us = 25'000;
  return q;
}

TEST(JoinVantages, PartitionsFfctExactly) {
  JoinedPhases joined;
  std::string error;
  ASSERT_TRUE(join_vantages(client_vantage(), server_vantage(), &joined,
                            &error))
      << error;
  EXPECT_EQ(joined.ffct_us, 89'000u);
  const uint64_t expected_bounds[] = {1'000,  11'000, 20'000,
                                      25'000, 40'000, 90'000};
  uint64_t sum = 0;
  for (size_t i = 0; i < kNumPhases; ++i) {
    EXPECT_EQ(joined.spans[i].name, std::string(kPhaseNames[i]));
    EXPECT_EQ(joined.spans[i].begin_us, expected_bounds[i]) << i;
    EXPECT_EQ(joined.spans[i].end_us, expected_bounds[i + 1]) << i;
    sum += joined.spans[i].duration_us();
  }
  EXPECT_EQ(sum, joined.ffct_us);
}

TEST(JoinVantages, MissingServerMarkersCollapseToZeroSpans) {
  ParsedQlog server = server_vantage();
  server.first_origin_byte_us = kNoTimeUs;
  server.ff_parsed_us = kNoTimeUs;
  JoinedPhases joined;
  std::string error;
  ASSERT_TRUE(join_vantages(client_vantage(), server, &joined, &error));
  EXPECT_EQ(joined.spans[1].duration_us(), 0u);  // origin_fetch
  EXPECT_EQ(joined.spans[2].duration_us(), 0u);  // ff_parse
  EXPECT_EQ(joined.spans[3].begin_us, 11'000u);
  EXPECT_EQ(joined.spans[3].end_us, 40'000u);  // delivery
}

TEST(JoinVantages, OutOfOrderBoundariesClamp) {
  // Server clock says ff_parsed after the client already had video bytes:
  // the partition stays monotone by clamping, same as obs::ffct_phases.
  ParsedQlog server = server_vantage();
  server.ff_parsed_us = 95'000;  // past first_frame_complete
  JoinedPhases joined;
  std::string error;
  ASSERT_TRUE(join_vantages(client_vantage(), server, &joined, &error));
  EXPECT_EQ(joined.spans[2].end_us, 90'000u);   // clamped to FFCT end
  EXPECT_EQ(joined.spans[3].duration_us(), 0u);
  EXPECT_EQ(joined.spans[4].duration_us(), 0u);
  EXPECT_EQ(joined.ffct_us, 89'000u);
}

TEST(JoinVantages, RejectsBadPairs) {
  JoinedPhases joined;
  std::string error;
  // Swapped vantages.
  EXPECT_FALSE(join_vantages(server_vantage(), client_vantage(), &joined,
                             &error));
  // group_id mismatch.
  EXPECT_FALSE(join_vantages(client_vantage("a"), server_vantage("b"),
                             &joined, &error));
  // Client without its anchor markers.
  ParsedQlog anchorless = client_vantage();
  anchorless.first_frame_complete_us = kNoTimeUs;
  EXPECT_FALSE(join_vantages(anchorless, server_vantage(), &joined, &error));
}

// ---------------------------------------------------------------------------
// End to end: the acceptance criterion.  Run a small sampled population,
// join every written pair, and require the joined split to equal the
// in-session PhaseTimeline exactly — at 1 and 4 threads.

TEST(JoinEndToEnd, EverySampledPairMatchesInSessionPhases) {
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        ("wira_join_e2e_" + std::to_string(threads));
    std::filesystem::remove_all(dir);

    exp::PopulationConfig cfg;
    cfg.sessions = 6;
    cfg.seed = 17;
    cfg.threads = threads;
    cfg.trace_sample = 1;  // every session, every scheme
    cfg.trace_dir = dir.string();
    cfg.collect_metrics = true;  // populates SessionResult::phases
    const auto records = exp::run_population(cfg);
    ASSERT_EQ(records.size(), cfg.sessions);

    size_t joined_pairs = 0;
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(records[i].trace_open_failures, 0u);
      for (const auto& [scheme, res] : records[i].results) {
        const std::string base = dir.string() + "/session_" +
                                 std::to_string(i) + "_" +
                                 core::scheme_name(scheme);
        ParsedQlog client, server;
        std::string error;
        ASSERT_TRUE(parse_sqlog_file(base + ".client.sqlog", &client,
                                     &error))
            << error;
        ASSERT_TRUE(parse_sqlog_file(base + ".server.sqlog", &server,
                                     &error))
            << error;
        EXPECT_EQ(client.group_id, server.group_id);
        if (!res.first_frame_completed) continue;
        ASSERT_FALSE(res.phases.empty()) << base;
        JoinedPhases joined;
        ASSERT_TRUE(join_vantages(client, server, &joined, &error))
            << base << ": " << error;
        std::string why;
        EXPECT_TRUE(joined_matches_phases(joined, res.phases, &why))
            << base << ": " << why;
        joined_pairs++;
      }
    }
    // The population must actually exercise the contract.
    EXPECT_GT(joined_pairs, 0u) << threads << " threads";
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace wira::obs
