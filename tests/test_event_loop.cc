// Unit tests for the discrete-event loop: ordering, cancellation, clock.
#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <vector>

namespace wira::sim {
namespace {

TEST(EventLoop, ExecutesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  loop.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, SimultaneousEventsRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(milliseconds(10), [&, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ClockAdvancesToEventTime) {
  EventLoop loop;
  TimeNs observed = -1;
  loop.schedule_at(milliseconds(42), [&] { observed = loop.now(); });
  loop.run();
  EXPECT_EQ(observed, milliseconds(42));
  EXPECT_EQ(loop.now(), milliseconds(42));
}

TEST(EventLoop, ScheduleInIsRelative) {
  EventLoop loop;
  TimeNs observed = -1;
  loop.schedule_at(milliseconds(10), [&] {
    loop.schedule_in(milliseconds(5), [&] { observed = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(observed, milliseconds(15));
}

TEST(EventLoop, PastTimesClampToNow) {
  EventLoop loop;
  TimeNs observed = -1;
  loop.schedule_at(milliseconds(10), [&] {
    loop.schedule_at(milliseconds(1), [&] { observed = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(observed, milliseconds(10));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule_at(milliseconds(10), [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelOtherEventFromHandler) {
  EventLoop loop;
  bool second_ran = false;
  EventId second =
      loop.schedule_at(milliseconds(20), [&] { second_ran = true; });
  loop.schedule_at(milliseconds(10), [&] { loop.cancel(second); });
  loop.run();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(milliseconds(10), [&] { count++; });
  loop.schedule_at(milliseconds(30), [&] { count++; });
  const size_t executed = loop.run_until(milliseconds(20));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now(), milliseconds(20));  // clock advances to deadline
  loop.run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, SelfReschedulingEventRespectsMaxEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    count++;
    loop.schedule_in(milliseconds(1), tick);
  };
  loop.schedule_in(0, tick);
  loop.run(/*max_events=*/50);
  EXPECT_EQ(count, 50);
}

TEST(EventLoop, RunUntilWithEmptyQueueAdvancesClock) {
  EventLoop loop;
  loop.run_until(seconds(5));
  EXPECT_EQ(loop.now(), seconds(5));
}

// ---- generation-stamped lazy deletion ----

TEST(EventLoop, CancelIsIdempotentAndUpdatesPending) {
  EventLoop loop;
  const EventId id = loop.schedule_at(milliseconds(10), [] {});
  EXPECT_EQ(loop.pending(), 1u);
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_TRUE(loop.empty());
  loop.cancel(id);  // double-cancel must not underflow or resurrect
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.run(), 0u);
}

TEST(EventLoop, StaleHandleAfterRunCancelsNothing) {
  EventLoop loop;
  int runs = 0;
  const EventId first = loop.schedule_at(milliseconds(1), [&] { runs++; });
  loop.run();
  EXPECT_EQ(runs, 1);
  // `first` already ran; its slot may be reused by the next event.  The
  // stale handle must not cancel the new occupant.
  loop.schedule_at(milliseconds(2), [&] { runs++; });
  loop.cancel(first);
  loop.run();
  EXPECT_EQ(runs, 2);
}

TEST(EventLoop, StaleHandleAfterCancelCancelsNothing) {
  EventLoop loop;
  bool victim_ran = false;
  const EventId id = loop.schedule_at(milliseconds(5), [] {});
  loop.cancel(id);
  loop.run();  // lazily discards the cancelled event, freeing its slot
  loop.schedule_at(milliseconds(6), [&] { victim_ran = true; });
  loop.cancel(id);  // stale: generation advanced when the slot retired
  loop.run();
  EXPECT_TRUE(victim_ran);
}

TEST(EventLoop, ManyCancelledEventsAreSkippedWithoutRunning) {
  EventLoop loop;
  int runs = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(loop.schedule_at(milliseconds(i), [&] { runs++; }));
  }
  for (size_t i = 0; i < ids.size(); i += 2) loop.cancel(ids[i]);
  EXPECT_EQ(loop.pending(), 500u);
  EXPECT_EQ(loop.run(), 500u);
  EXPECT_EQ(runs, 500);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, CancelledEventsDoNotBlockRunUntilDeadline) {
  EventLoop loop;
  bool late_ran = false;
  const EventId early = loop.schedule_at(milliseconds(1), [] {});
  loop.schedule_at(milliseconds(50), [&] { late_ran = true; });
  loop.cancel(early);
  EXPECT_EQ(loop.run_until(milliseconds(10)), 0u);
  EXPECT_EQ(loop.now(), milliseconds(10));
  EXPECT_FALSE(late_ran);
  loop.run();
  EXPECT_TRUE(late_ran);
}

TEST(EventLoop, SlotReuseKeepsFifoOrderForSimultaneousEvents) {
  EventLoop loop;
  // Churn slots so later events reuse freed slots with bumped generations.
  for (int i = 0; i < 16; ++i) {
    loop.cancel(loop.schedule_at(milliseconds(1), [] {}));
  }
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    loop.schedule_at(milliseconds(10), [&, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventLoop, MoveOnlyCallablesAreSupported) {
  EventLoop loop;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  loop.schedule_at(milliseconds(1),
                   [p = std::move(payload), &seen] { seen = *p + 1; });
  loop.run();
  EXPECT_EQ(seen, 42);
}

TEST(EventLoop, OversizedCapturesFallBackToHeap) {
  EventLoop loop;
  std::array<uint64_t, 32> big{};  // 256 bytes: larger than SmallFn's SBO
  big[31] = 7;
  uint64_t seen = 0;
  loop.schedule_at(milliseconds(1), [big, &seen] { seen = big[31]; });
  loop.run();
  EXPECT_EQ(seen, 7u);
}

// Scratch objects are the cross-session recycling mechanism (DESIGN.md
// §6): one instance per loop per type, surviving reset() so pools and
// caches keep their capacity across recycled sessions.
TEST(EventLoop, ScratchPersistsAcrossReset) {
  struct Pool {
    std::vector<int> items;
  };
  EventLoop loop;
  Pool& pool = loop.scratch<Pool>();
  pool.items.assign(100, 7);
  loop.reset();
  Pool& again = loop.scratch<Pool>();
  EXPECT_EQ(&again, &pool);          // same object, not a replacement
  EXPECT_EQ(again.items.size(), 100u);  // state untouched by reset
}

TEST(EventLoop, ScratchResetHookRunsOnEveryReset) {
  struct Hooked {
    int resets = 0;
    void on_loop_reset() { ++resets; }
  };
  EventLoop loop;
  Hooked& hooked = loop.scratch<Hooked>();
  EXPECT_EQ(hooked.resets, 0);
  loop.reset();
  loop.reset();
  EXPECT_EQ(hooked.resets, 2);
}

TEST(EventLoop, ScratchIsPerTypeSingleton) {
  struct A {
    int v = 0;
  };
  struct B {
    int v = 0;
  };
  EventLoop loop;
  loop.scratch<A>().v = 1;
  loop.scratch<B>().v = 2;
  EXPECT_EQ(loop.scratch<A>().v, 1);
  EXPECT_EQ(loop.scratch<B>().v, 2);
}

}  // namespace
}  // namespace wira::sim
