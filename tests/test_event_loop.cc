// Unit tests for the discrete-event loop: ordering, cancellation, clock.
#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace wira::sim {
namespace {

TEST(EventLoop, ExecutesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  loop.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, SimultaneousEventsRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(milliseconds(10), [&, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ClockAdvancesToEventTime) {
  EventLoop loop;
  TimeNs observed = -1;
  loop.schedule_at(milliseconds(42), [&] { observed = loop.now(); });
  loop.run();
  EXPECT_EQ(observed, milliseconds(42));
  EXPECT_EQ(loop.now(), milliseconds(42));
}

TEST(EventLoop, ScheduleInIsRelative) {
  EventLoop loop;
  TimeNs observed = -1;
  loop.schedule_at(milliseconds(10), [&] {
    loop.schedule_in(milliseconds(5), [&] { observed = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(observed, milliseconds(15));
}

TEST(EventLoop, PastTimesClampToNow) {
  EventLoop loop;
  TimeNs observed = -1;
  loop.schedule_at(milliseconds(10), [&] {
    loop.schedule_at(milliseconds(1), [&] { observed = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(observed, milliseconds(10));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule_at(milliseconds(10), [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelOtherEventFromHandler) {
  EventLoop loop;
  bool second_ran = false;
  EventId second =
      loop.schedule_at(milliseconds(20), [&] { second_ran = true; });
  loop.schedule_at(milliseconds(10), [&] { loop.cancel(second); });
  loop.run();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(milliseconds(10), [&] { count++; });
  loop.schedule_at(milliseconds(30), [&] { count++; });
  const size_t executed = loop.run_until(milliseconds(20));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now(), milliseconds(20));  // clock advances to deadline
  loop.run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, SelfReschedulingEventRespectsMaxEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    count++;
    loop.schedule_in(milliseconds(1), tick);
  };
  loop.schedule_in(0, tick);
  loop.run(/*max_events=*/50);
  EXPECT_EQ(count, 50);
}

TEST(EventLoop, RunUntilWithEmptyQueueAdvancesClock) {
  EventLoop loop;
  loop.run_until(seconds(5));
  EXPECT_EQ(loop.now(), seconds(5));
}

}  // namespace
}  // namespace wira::sim
