// Transport-level integration tests: two Connections wired through the
// emulated path — handshake modes, bulk transfer integrity under loss and
// reordering, ACK behaviour, loss recovery, Hx_QoS packets.
#include "quic/connection.h"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/path.h"

namespace wira::quic {
namespace {

struct Pair {
  sim::EventLoop loop;
  std::unique_ptr<sim::Path> path;
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;

  explicit Pair(sim::PathConfig cfg = {}, uint64_t seed = 1,
                cc::CcAlgo algo = cc::CcAlgo::kBbrV1) {
    path = std::make_unique<sim::Path>(loop, cfg, seed);
    server = std::make_unique<Connection>(
        loop,
        ConnectionConfig{.is_server = true, .conn_id = 1, .cc_algo = algo},
        [this](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          path->forward().send(std::move(dg));
        });
    client = std::make_unique<Connection>(
        loop,
        ConnectionConfig{.is_server = false, .conn_id = 1, .cc_algo = algo},
        [this](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          path->reverse().send(std::move(dg));
        });
    path->forward().set_receiver([this](std::span<sim::Datagram> batch) {
      for (sim::Datagram& d : batch) client->on_datagram(d.payload);
    });
    path->reverse().set_receiver([this](std::span<sim::Datagram> batch) {
      for (sim::Datagram& d : batch) server->on_datagram(d.payload);
    });
    server->set_server_options(
        Connection::ServerOptions{{0xAA, 0xBB}});
  }
};

std::vector<uint8_t> pattern_bytes(size_t n) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(i * 7 + 1);
  return v;
}

TEST(Connection, OneRttHandshakeCompletes) {
  Pair p;
  bool server_up = false, client_up = false;
  p.server->set_on_established([&] { server_up = true; });
  p.client->set_on_established([&] { client_up = true; });
  p.client->connect({});
  p.loop.run_until(seconds(1));
  EXPECT_TRUE(server_up);
  EXPECT_TRUE(client_up);
  EXPECT_FALSE(p.client->zero_rtt());
  EXPECT_FALSE(p.server->zero_rtt());
  // Server measured the handshake RTT (~50 ms default path).
  ASSERT_NE(p.server->stats().handshake_rtt, kNoTime);
  EXPECT_NEAR(to_ms(p.server->stats().handshake_rtt), 50.0, 8.0);
}

TEST(Connection, RejDeliversServerConfigToClient) {
  Pair p;
  std::vector<uint8_t> scid;
  p.client->set_on_handshake_message([&](const HandshakeMessage& m) {
    if (m.msg_tag == kTagREJ) {
      auto v = m.get(kTagSCID);
      scid.assign(v.begin(), v.end());
    }
  });
  p.client->connect({});
  p.loop.run_until(seconds(1));
  EXPECT_EQ(scid, (std::vector<uint8_t>{0xAA, 0xBB}));
}

TEST(Connection, ZeroRttEstablishesImmediately) {
  Pair p;
  Connection::ClientConnectOptions opts;
  opts.server_config_id = std::vector<uint8_t>{0xAA, 0xBB};
  p.client->connect(opts);
  EXPECT_TRUE(p.client->established());  // before any round trip
  EXPECT_TRUE(p.client->zero_rtt());
  p.loop.run_until(seconds(1));
  EXPECT_TRUE(p.server->established());
  EXPECT_TRUE(p.server->zero_rtt());
  EXPECT_EQ(p.server->stats().handshake_rtt, kNoTime);
}

TEST(Connection, StaleServerConfigFallsBackTo1Rtt) {
  Pair p;
  Connection::ClientConnectOptions opts;
  opts.server_config_id = std::vector<uint8_t>{0xDE, 0xAD};  // wrong
  p.client->connect(opts);
  p.loop.run_until(seconds(1));
  EXPECT_TRUE(p.server->established());
  EXPECT_FALSE(p.server->zero_rtt());  // REJ happened
}

TEST(Connection, HqstTagReachesServer) {
  Pair p;
  std::optional<HqstPayload> seen;
  p.server->set_on_handshake_message([&](const HandshakeMessage& m) {
    if (m.msg_tag == kTagCHLO && m.has(kTagHQST)) {
      seen = parse_hqst(m.get(kTagHQST));
    }
  });
  Connection::ClientConnectOptions opts;
  opts.server_config_id = std::vector<uint8_t>{0xAA, 0xBB};
  HqstPayload hqst;
  hqst.supports_sync = true;
  hqst.sealed_cookie = {1, 2, 3};
  opts.hqst = hqst;
  p.client->connect(opts);
  p.loop.run_until(seconds(1));
  ASSERT_TRUE(seen.has_value());
  EXPECT_TRUE(seen->supports_sync);
  EXPECT_EQ(seen->sealed_cookie, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Connection, BulkTransferIntactOnCleanPath) {
  Pair p;
  const auto payload = pattern_bytes(500'000);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](StreamId id, std::span<const uint8_t> d, bool f) {
        ASSERT_EQ(id, kResponseStream);
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established([&] {
    p.server->write_stream(kResponseStream, payload, /*fin=*/true);
  });
  p.client->connect({});
  p.loop.run_until(seconds(30));
  EXPECT_TRUE(fin);
  EXPECT_EQ(received, payload);
}

class LossyTransfer : public ::testing::TestWithParam<double> {};

TEST_P(LossyTransfer, DataIntactUnderLoss) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(20);
  cfg.rtt = milliseconds(40);
  cfg.loss_rate = GetParam();
  cfg.buffer_bytes = 64 * 1024;
  Pair p(cfg, /*seed=*/77);
  const auto payload = pattern_bytes(200'000);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](StreamId, std::span<const uint8_t> d, bool f) {
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established(
      [&] { p.server->write_stream(kResponseStream, payload, true); });
  p.client->connect({});
  p.loop.run_until(seconds(60));
  ASSERT_TRUE(fin) << "transfer stalled at loss rate " << GetParam();
  EXPECT_EQ(received, payload);
  if (GetParam() > 0) {
    EXPECT_GT(p.server->stats().packets_lost, 0u);
    EXPECT_GT(p.server->stats().stream_bytes_retransmitted, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyTransfer,
                         ::testing::Values(0.0, 0.01, 0.03, 0.10));

TEST(Connection, TransferSurvivesTinyBottleneckBuffer) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(4);
  cfg.rtt = milliseconds(80);
  cfg.buffer_bytes = 8 * 1024;  // heavy queue drops
  Pair p(cfg, 5);
  const auto payload = pattern_bytes(150'000);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](StreamId, std::span<const uint8_t> d, bool f) {
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established(
      [&] { p.server->write_stream(kResponseStream, payload, true); });
  p.client->connect({});
  p.loop.run_until(seconds(60));
  ASSERT_TRUE(fin);
  EXPECT_EQ(received, payload);
  EXPECT_GT(p.path->forward().stats().queue_drops, 0u);
}

TEST(Connection, InitialParametersControlFirstFlight) {
  // With a large init_cwnd + fast pacing, the whole payload leaves in the
  // first RTT; with a tiny one it cannot.
  auto first_flight_bytes = [&](uint64_t cwnd, Bandwidth pace) {
    sim::PathConfig cfg;
    cfg.bandwidth = mbps(100);
    cfg.rtt = milliseconds(100);
    cfg.buffer_bytes = 256 * 1024;
    Pair p(cfg);
    const auto payload = pattern_bytes(60'000);
    p.server->set_on_established([&] {
      p.server->set_initial_parameters(cwnd, pace);
      p.server->write_stream(kResponseStream, payload, true);
    });
    Connection::ClientConnectOptions opts;
    opts.server_config_id = std::vector<uint8_t>{0xAA, 0xBB};  // 0-RTT
    p.client->connect(opts);
    // CHLO arrives ~50 ms; first ACKs return ~150 ms.  Stop in between:
    // everything sent so far belongs to the first flight.
    p.loop.run_until(milliseconds(140));
    return p.server->stats().stream_bytes_sent;
  };
  const uint64_t small = first_flight_bytes(4 * 1460, mbps(100));
  const uint64_t large = first_flight_bytes(70'000, mbps(100));
  EXPECT_LE(small, 4u * 1460 + 1460);
  EXPECT_GE(large, 60'000u);
}

TEST(Connection, PacingSpreadsFirstFlight) {
  // At 1 Mbps pacing, 60 KB takes ~480 ms to leave; at 100 Mbps it leaves
  // within the first few ms.
  auto sent_after = [&](Bandwidth pace, TimeNs when) {
    sim::PathConfig cfg;
    cfg.bandwidth = mbps(1000);
    cfg.rtt = milliseconds(400);
    cfg.buffer_bytes = 256 * 1024;
    Pair p(cfg);
    const auto payload = pattern_bytes(60'000);
    p.server->set_on_established([&] {
      p.server->set_initial_parameters(100'000, pace);
      p.server->write_stream(kResponseStream, payload, true);
    });
    Connection::ClientConnectOptions opts;
    opts.server_config_id = std::vector<uint8_t>{0xAA, 0xBB};  // 0-RTT
    p.client->connect(opts);
    p.loop.run_until(when);  // CHLO reaches the server at ~200 ms
    return p.server->stats().stream_bytes_sent;
  };
  EXPECT_LT(sent_after(mbps(1), milliseconds(250)), 30'000u);
  EXPECT_GE(sent_after(mbps(100), milliseconds(250)), 60'000u);
}

TEST(Connection, HxQosPacketDelivered) {
  Pair p;
  // The frame's blob is a borrowed span valid only inside the callback:
  // copy the bytes out before the datagram buffer is recycled.
  bool got = false;
  uint64_t got_time = 0;
  std::vector<uint8_t> got_blob;
  p.client->set_on_hxqos([&](const HxQosFrame& f) {
    got = true;
    got_time = f.server_time_ms;
    got_blob.assign(f.sealed_blob.begin(), f.sealed_blob.end());
  });
  p.server->set_on_established([&] {
    const std::vector<uint8_t> blob{7, 7, 7};
    HxQosFrame f;
    f.server_time_ms = 1234;
    f.sealed_blob = blob;
    p.server->send_hxqos(f);
  });
  p.client->connect({});
  p.loop.run_until(seconds(1));
  ASSERT_TRUE(got);
  EXPECT_EQ(got_time, 1234u);
  EXPECT_EQ(got_blob, (std::vector<uint8_t>{7, 7, 7}));
}

TEST(Connection, CloseStopsTraffic) {
  Pair p;
  p.server->set_on_established([&] {
    p.server->write_stream(kResponseStream, pattern_bytes(500'000), true);
  });
  p.client->connect({});
  p.loop.run_until(milliseconds(100));
  p.server->close(0, "done");
  const uint64_t sent_at_close = p.server->stats().packets_sent;
  p.loop.run_until(seconds(5));
  EXPECT_TRUE(p.server->closed());
  EXPECT_TRUE(p.client->closed());
  EXPECT_EQ(p.server->stats().packets_sent, sent_at_close);
}

TEST(Connection, RttEstimateConverges) {
  sim::PathConfig cfg;
  cfg.rtt = milliseconds(60);
  cfg.bandwidth = mbps(50);
  Pair p(cfg);
  p.server->set_on_established([&] {
    p.server->write_stream(kResponseStream, pattern_bytes(300'000), true);
  });
  p.client->connect({});
  p.loop.run_until(seconds(10));
  ASSERT_TRUE(p.server->rtt().has_sample());
  EXPECT_NEAR(to_ms(p.server->rtt().min()), 60.0, 8.0);
}

TEST(Connection, BbrConvergesToPathBandwidth) {
  sim::PathConfig cfg;
  cfg.bandwidth = mbps(10);
  cfg.rtt = milliseconds(40);
  cfg.buffer_bytes = 128 * 1024;
  Pair p(cfg);
  p.server->set_on_established([&] {
    p.server->write_stream(kResponseStream, pattern_bytes(3'000'000), true);
  });
  p.client->connect({});
  p.loop.run_until(seconds(5));
  const double est = to_mbps(p.server->congestion().bandwidth_estimate());
  EXPECT_NEAR(est, 10.0, 2.0);
}

TEST(Connection, NewRenoTransfersToo) {
  Pair p({}, 1, cc::CcAlgo::kNewReno);
  const auto payload = pattern_bytes(100'000);
  std::vector<uint8_t> received;
  bool fin = false;
  p.client->set_on_stream_data(
      [&](StreamId, std::span<const uint8_t> d, bool f) {
        received.insert(received.end(), d.begin(), d.end());
        fin |= f;
      });
  p.server->set_on_established(
      [&] { p.server->write_stream(kResponseStream, payload, true); });
  p.client->connect({});
  p.loop.run_until(seconds(30));
  EXPECT_TRUE(fin);
  EXPECT_EQ(received, payload);
}

}  // namespace
}  // namespace wira::quic
