// Tests for the synthetic population: determinism and — critically — the
// dispersion calibration against the paper's §II-C/§II-D anchors.
#include "popgen/population.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace wira::popgen {
namespace {

TEST(Population, GroupsAreDeterministic) {
  Population a(5, 32), b(5, 32);
  ASSERT_EQ(a.groups().size(), 32u);
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(a.groups()[i].net, b.groups()[i].net);
    EXPECT_DOUBLE_EQ(a.groups()[i].rtt_mean_ms, b.groups()[i].rtt_mean_ms);
  }
}

TEST(Population, OdPairsAreDeterministic) {
  Population p(5, 32);
  const OdPair a = p.make_od(3, 17);
  const OdPair b = p.make_od(3, 17);
  EXPECT_DOUBLE_EQ(a.base_rtt_ms(), b.base_rtt_ms());
  EXPECT_DOUBLE_EQ(a.base_bw_mbps(), b.base_bw_mbps());
}

TEST(Population, NetworkTypesCoverMix) {
  Population p(1, 200);
  int counts[4] = {0, 0, 0, 0};
  for (const auto& g : p.groups()) counts[static_cast<int>(g.net)]++;
  for (int c : counts) EXPECT_GT(c, 0);
}

// §II-C anchor: within a user group, MinRTT CV ~36%, MaxBW CV ~52%.
TEST(Population, WithinGroupDispersionMatchesFig3) {
  Population p(7, 40);
  Samples rtt_cvs, bw_cvs;
  for (size_t g = 0; g < 40; ++g) {
    Samples rtts, bws;
    Rng rng(g + 1);
    for (uint64_t od = 0; od < 60; ++od) {
      const OdPair pair = p.make_od(g, od);
      // Sessions within a 5-minute window (the paper's Fig. 3 setup).
      const PathSample s =
          pair.sample(minutes(30) + from_seconds(rng.uniform(0, 300)), rng);
      rtts.add(to_ms(s.min_rtt));
      bws.add(to_mbps(s.max_bw));
    }
    rtt_cvs.add(rtts.cv());
    bw_cvs.add(bws.cv());
  }
  EXPECT_NEAR(rtt_cvs.mean(), 0.364, 0.08);
  EXPECT_NEAR(bw_cvs.mean(), 0.516, 0.12);
}

// §II-D anchor: the same OD pair re-measured within 5 minutes has MinRTT
// CV ~10% and MaxBW CV ~27%, growing mildly with the interval.
TEST(Population, OdPairDispersionMatchesFig4) {
  Population p(9, 16);
  auto od_cv = [&](TimeNs interval, bool bw) {
    Samples cvs;
    for (uint64_t i = 0; i < 120; ++i) {
      const OdPair pair = p.make_od(i % 16, 1000 + i);
      Rng rng(i * 7 + 1);
      Samples vals;
      const TimeNs t0 = minutes(60);
      for (int k = 0; k < 12; ++k) {
        const TimeNs t =
            t0 + from_seconds(rng.uniform(0, to_seconds(interval)));
        const PathSample s = pair.sample(t, rng);
        vals.add(bw ? to_mbps(s.max_bw) : to_ms(s.min_rtt));
      }
      cvs.add(vals.cv());
    }
    return cvs.mean();
  };

  const double rtt5 = od_cv(minutes(5), false);
  const double rtt60 = od_cv(minutes(60), false);
  const double bw5 = od_cv(minutes(5), true);

  EXPECT_NEAR(rtt5, 0.099, 0.035);
  EXPECT_NEAR(bw5, 0.27, 0.08);
  // Interval scaling: dispersion grows with the window (Fig. 4(a)).
  EXPECT_GT(rtt60, rtt5);
  EXPECT_LT(rtt60, 0.25);
}

// The headline relation the whole mechanism rests on: OD-pair history is
// far less dispersed than the user-group estimate (§II-D observation iv).
TEST(Population, OdDispersionWellBelowGroupDispersion) {
  Population p(11, 24);
  Samples group_rtt, od_rtt;
  for (size_t g = 0; g < 24; ++g) {
    Samples across_ods;
    Rng rng(g + 100);
    for (uint64_t od = 0; od < 40; ++od) {
      const OdPair pair = p.make_od(g, od);
      across_ods.add(to_ms(pair.sample(minutes(10), rng).min_rtt));
    }
    group_rtt.add(across_ods.cv());

    const OdPair pair = p.make_od(g, 0);
    Samples within_od;
    for (int k = 0; k < 20; ++k) {
      within_od.add(
          to_ms(pair.sample(minutes(10) + seconds(k * 15), rng).min_rtt));
    }
    od_rtt.add(within_od.cv());
  }
  EXPECT_LT(od_rtt.mean() * 2.5, group_rtt.mean());
}

TEST(Population, SessionGapsHeavyTailed) {
  Rng rng(3);
  Samples gaps_min;
  size_t beyond_delta = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const TimeNs gap = Population::sample_session_gap(rng);
    gaps_min.add(to_seconds(gap) / 60.0);
    if (gap > minutes(60)) beyond_delta++;
  }
  EXPECT_NEAR(gaps_min.percentile(50), 4.0, 1.5);
  // A meaningful minority of sessions arrive with a stale cookie.
  const double frac = static_cast<double>(beyond_delta) / n;
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.15);
}

TEST(Population, PathConfigReflectsSample) {
  Population p(1, 8);
  Rng rng(1);
  const OdPair od = p.make_od(0, 0);
  const PathSample s = od.sample(minutes(5), rng);
  const sim::PathConfig cfg = OdPair::to_path_config(s);
  EXPECT_EQ(cfg.bandwidth, s.max_bw);
  EXPECT_EQ(cfg.rtt, s.min_rtt);
  EXPECT_DOUBLE_EQ(cfg.loss_rate, s.loss_rate);
  EXPECT_EQ(cfg.buffer_bytes, s.buffer_bytes);
  EXPECT_GE(cfg.buffer_bytes, 16u * 1024);
}

TEST(Population, SamplesStayInPhysicalBounds) {
  Population p(13, 16);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const OdPair od = p.random_od(rng);
    const PathSample s = od.sample(from_seconds(rng.uniform(0, 7200)), rng);
    EXPECT_GE(to_ms(s.min_rtt), 4.0);
    EXPECT_LE(to_ms(s.min_rtt), 800.0);
    EXPECT_GE(to_mbps(s.max_bw), 0.4);
    EXPECT_LE(to_mbps(s.max_bw), 100.0);
    EXPECT_GE(s.loss_rate, 0.0);
    EXPECT_LE(s.loss_rate, 0.12);
  }
}

}  // namespace
}  // namespace wira::popgen
