// Unit tests for QUIC frame wire codecs, including the Wira Hx_QoS frame.
#include "quic/frames.h"

#include <gtest/gtest.h>

#include "quic/packet.h"

namespace wira::quic {
namespace {

template <typename T>
T round_trip(const Frame& in) {
  ByteWriter w;
  serialize_frame(in, w);
  EXPECT_EQ(w.size(), frame_wire_size(in)) << "wire-size accounting drift";
  ByteReader r(w.span());
  auto out = parse_frame(r);
  EXPECT_TRUE(out.has_value());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  return std::get<T>(*out);
}

TEST(Frames, StreamFrameRoundTrip) {
  StreamFrame f;
  f.stream_id = 3;
  f.offset = 123456;
  f.fin = true;
  f.data = {1, 2, 3, 4, 5};
  const auto out = round_trip<StreamFrame>(Frame{f});
  EXPECT_EQ(out.stream_id, 3u);
  EXPECT_EQ(out.offset, 123456u);
  EXPECT_TRUE(out.fin);
  EXPECT_EQ(out.data, f.data);
}

TEST(Frames, EmptyStreamFrameWithFin) {
  StreamFrame f;
  f.stream_id = 1;
  f.offset = 999;
  f.fin = true;
  const auto out = round_trip<StreamFrame>(Frame{f});
  EXPECT_TRUE(out.data.empty());
  EXPECT_TRUE(out.fin);
}

TEST(Frames, AckFrameSingleRange) {
  AckFrame f;
  f.largest_acked = 100;
  f.ack_delay = microseconds(250);
  f.ranges = {{90, 100}};
  const auto out = round_trip<AckFrame>(Frame{f});
  EXPECT_EQ(out.largest_acked, 100u);
  EXPECT_EQ(out.ack_delay, microseconds(250));
  ASSERT_EQ(out.ranges.size(), 1u);
  EXPECT_EQ(out.ranges[0], (Range{90, 100}));
}

TEST(Frames, AckFrameMultipleRanges) {
  AckFrame f;
  f.largest_acked = 100;
  f.ranges = {{95, 100}, {80, 90}, {1, 50}};
  const auto out = round_trip<AckFrame>(Frame{f});
  ASSERT_EQ(out.ranges.size(), 3u);
  EXPECT_EQ(out.ranges[0], (Range{95, 100}));
  EXPECT_EQ(out.ranges[1], (Range{80, 90}));
  EXPECT_EQ(out.ranges[2], (Range{1, 50}));
  EXPECT_TRUE(out.covers(85));
  EXPECT_FALSE(out.covers(60));
  EXPECT_TRUE(out.covers(1));
}

TEST(Frames, HxQosFrameRoundTrip) {
  HxQosFrame f;
  f.server_time_ms = 123456789;
  f.sealed_blob = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  const auto out = round_trip<HxQosFrame>(Frame{f});
  EXPECT_EQ(out.server_time_ms, 123456789u);
  EXPECT_EQ(out.sealed_blob, f.sealed_blob);
}

TEST(Frames, CryptoAndCloseRoundTrip) {
  CryptoFrame c;
  c.offset = 7;
  c.data = {9, 8, 7};
  EXPECT_EQ(round_trip<CryptoFrame>(Frame{c}).data, c.data);

  ConnectionCloseFrame cc;
  cc.error_code = 42;
  cc.reason = "bye";
  const auto out = round_trip<ConnectionCloseFrame>(Frame{cc});
  EXPECT_EQ(out.error_code, 42u);
  EXPECT_EQ(out.reason, "bye");
}

TEST(Frames, RetransmittableClassification) {
  EXPECT_FALSE(is_retransmittable(Frame{AckFrame{}}));
  EXPECT_FALSE(is_retransmittable(Frame{PaddingFrame{}}));
  EXPECT_TRUE(is_retransmittable(Frame{PingFrame{}}));
  EXPECT_TRUE(is_retransmittable(Frame{StreamFrame{}}));
  EXPECT_TRUE(is_retransmittable(Frame{CryptoFrame{}}));
  EXPECT_TRUE(is_retransmittable(Frame{HxQosFrame{}}));
}

TEST(Frames, BuildAckFromReceivedSet) {
  RangeSet received;
  received.add(1, 5);
  received.add(8, 10);
  received.add(12);
  const AckFrame ack = build_ack(received, milliseconds(2));
  EXPECT_EQ(ack.largest_acked, 12u);
  ASSERT_EQ(ack.ranges.size(), 3u);
  EXPECT_EQ(ack.ranges[0], (Range{12, 12}));
  EXPECT_EQ(ack.ranges[2], (Range{1, 5}));
}

TEST(Frames, BuildAckCapsRangeCount) {
  RangeSet received;
  for (uint64_t i = 0; i < 100; ++i) received.add(i * 3);
  const AckFrame ack = build_ack(received, 0, /*max_ranges=*/32);
  EXPECT_EQ(ack.ranges.size(), 32u);
  EXPECT_EQ(ack.largest_acked, 99u * 3);
}

TEST(Frames, MalformedInputRejected) {
  // Unknown frame type.
  {
    const uint8_t buf[] = {0xEE};
    ByteReader r(buf, sizeof(buf));
    EXPECT_FALSE(parse_frame(r).has_value());
  }
  // Truncated stream frame (declared longer than available).
  {
    ByteWriter w;
    StreamFrame f;
    f.data = {1, 2, 3, 4};
    serialize_frame(Frame{f}, w);
    auto bytes = w.take();
    bytes.resize(bytes.size() - 2);
    ByteReader r(bytes);
    EXPECT_FALSE(parse_frame(r).has_value());
  }
  // ACK whose first range underflows.
  {
    ByteWriter w;
    w.u8(0x02);
    w.varint(5);    // largest
    w.varint(0);    // delay
    w.varint(1);    // one range
    w.varint(9);    // first_range > largest -> invalid
    ByteReader r(w.span());
    EXPECT_FALSE(parse_frame(r).has_value());
  }
}

TEST(Packets, RoundTripWithMixedFrames) {
  Packet p;
  p.type = PacketType::kOneRtt;
  p.conn_id = 0xAABBCCDD;
  p.packet_number = 77;
  p.frames.push_back(build_ack([] {
                       RangeSet s;
                       s.add(1, 3);
                       return s;
                     }(), 0));
  StreamFrame sf;
  sf.stream_id = 3;
  sf.data = {5, 5, 5};
  p.frames.push_back(sf);

  const auto bytes = serialize_packet(p);
  auto out = parse_packet(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->conn_id, 0xAABBCCDDu);
  EXPECT_EQ(out->packet_number, 77u);
  ASSERT_EQ(out->frames.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<AckFrame>(out->frames[0]));
  EXPECT_TRUE(std::holds_alternative<StreamFrame>(out->frames[1]));
  EXPECT_TRUE(out->retransmittable());
}

TEST(Packets, HxQosPacketType) {
  Packet p;
  p.type = PacketType::kHxQos;  // 0x1f, distinct from existing QUIC types
  p.conn_id = 1;
  p.packet_number = 5;
  p.frames.push_back(HxQosFrame{100, {1, 2, 3}});
  auto out = parse_packet(serialize_packet(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, PacketType::kHxQos);
}

TEST(Packets, UnknownTypeRejected) {
  ByteWriter w;
  w.u8(0x7F);
  w.u64be(1);
  w.u64be(1);
  EXPECT_FALSE(parse_packet(w.span()).has_value());
}

TEST(Packets, AckOnlyPacketNotRetransmittable) {
  Packet p;
  p.frames.push_back(AckFrame{});
  EXPECT_FALSE(p.retransmittable());
}

}  // namespace
}  // namespace wira::quic
