// Unit tests for QUIC frame wire codecs, including the Wira Hx_QoS frame.
//
// Parsed payload frames borrow spans into the wire buffer, so the helpers
// here keep that buffer alive alongside the parsed frame (Parsed<T>).
#include "quic/frames.h"

#include <gtest/gtest.h>

#include "quic/packet.h"

namespace wira::quic {
namespace {

std::vector<uint8_t> vec(std::span<const uint8_t> s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

/// A parsed frame plus the wire bytes its spans borrow from.  The vector
/// moves with the struct (heap storage is stable), so the spans stay valid
/// in the caller.
template <typename T>
struct Parsed {
  std::vector<uint8_t> wire;
  T frame;
};

template <typename T>
Parsed<T> round_trip(const Frame& in) {
  ByteWriter w;
  serialize_frame(in, w);
  EXPECT_EQ(w.size(), frame_wire_size(in)) << "wire-size accounting drift";
  Parsed<T> out;
  out.wire = w.take();
  ByteReader r(out.wire);
  auto parsed = parse_frame(r);
  EXPECT_TRUE(parsed.has_value());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  out.frame = std::get<T>(*parsed);
  return out;
}

TEST(Frames, StreamFrameRoundTrip) {
  const std::vector<uint8_t> payload{1, 2, 3, 4, 5};
  StreamFrame f;
  f.stream_id = 3;
  f.offset = 123456;
  f.fin = true;
  f.data = payload;
  const auto out = round_trip<StreamFrame>(Frame{f});
  EXPECT_EQ(out.frame.stream_id, 3u);
  EXPECT_EQ(out.frame.offset, 123456u);
  EXPECT_TRUE(out.frame.fin);
  EXPECT_EQ(vec(out.frame.data), payload);
}

TEST(Frames, ParsedPayloadBorrowsWireBuffer) {
  // The zero-copy pin: a parsed frame's data span must point INTO the
  // buffer it was parsed from, not at a copy.
  const std::vector<uint8_t> payload{9, 9, 9, 9};
  StreamFrame f;
  f.stream_id = 1;
  f.data = payload;
  ByteWriter w;
  serialize_frame(Frame{f}, w);
  const std::vector<uint8_t> wire = w.take();
  ByteReader r(wire);
  auto parsed = parse_frame(r);
  ASSERT_TRUE(parsed.has_value());
  const auto& sf = std::get<StreamFrame>(*parsed);
  ASSERT_EQ(sf.data.size(), payload.size());
  EXPECT_GE(sf.data.data(), wire.data());
  EXPECT_LE(sf.data.data() + sf.data.size(), wire.data() + wire.size());
}

TEST(Frames, EmptyStreamFrameWithFin) {
  StreamFrame f;
  f.stream_id = 1;
  f.offset = 999;
  f.fin = true;
  const auto out = round_trip<StreamFrame>(Frame{f});
  EXPECT_TRUE(out.frame.data.empty());
  EXPECT_TRUE(out.frame.fin);
}

TEST(Frames, AckFrameSingleRange) {
  AckFrame f;
  f.largest_acked = 100;
  f.ack_delay = microseconds(250);
  f.ranges = {{90, 100}};
  const auto out = round_trip<AckFrame>(Frame{f});
  EXPECT_EQ(out.frame.largest_acked, 100u);
  EXPECT_EQ(out.frame.ack_delay, microseconds(250));
  ASSERT_EQ(out.frame.ranges.size(), 1u);
  EXPECT_EQ(out.frame.ranges[0], (Range{90, 100}));
}

TEST(Frames, AckFrameMultipleRanges) {
  AckFrame f;
  f.largest_acked = 100;
  f.ranges = {{95, 100}, {80, 90}, {1, 50}};
  const auto out = round_trip<AckFrame>(Frame{f});
  ASSERT_EQ(out.frame.ranges.size(), 3u);
  EXPECT_EQ(out.frame.ranges[0], (Range{95, 100}));
  EXPECT_EQ(out.frame.ranges[1], (Range{80, 90}));
  EXPECT_EQ(out.frame.ranges[2], (Range{1, 50}));
  EXPECT_TRUE(out.frame.covers(85));
  EXPECT_FALSE(out.frame.covers(60));
  EXPECT_TRUE(out.frame.covers(1));
}

TEST(Frames, ParseWithArenaPutsAckRangesInArena) {
  AckFrame f;
  f.largest_acked = 100;
  f.ranges = {{95, 100}, {80, 90}};
  ByteWriter w;
  serialize_frame(Frame{f}, w);
  util::Arena arena;
  const uint64_t before = arena.total_allocated();
  ByteReader r(w.span());
  auto parsed = parse_frame(r, &arena);
  ASSERT_TRUE(parsed.has_value());
  const auto& ack = std::get<AckFrame>(*parsed);
  ASSERT_EQ(ack.ranges.size(), 2u);
  EXPECT_GT(arena.total_allocated(), before);
  EXPECT_EQ(ack.ranges.get_allocator().arena(), &arena);
}

TEST(Frames, HxQosFrameRoundTrip) {
  const std::vector<uint8_t> blob{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  HxQosFrame f;
  f.server_time_ms = 123456789;
  f.sealed_blob = blob;
  const auto out = round_trip<HxQosFrame>(Frame{f});
  EXPECT_EQ(out.frame.server_time_ms, 123456789u);
  EXPECT_EQ(vec(out.frame.sealed_blob), blob);
}

TEST(Frames, CryptoAndCloseRoundTrip) {
  const std::vector<uint8_t> payload{9, 8, 7};
  CryptoFrame c;
  c.offset = 7;
  c.data = payload;
  EXPECT_EQ(vec(round_trip<CryptoFrame>(Frame{c}).frame.data), payload);

  ConnectionCloseFrame cc;
  cc.error_code = 42;
  cc.reason = "bye";
  const auto out = round_trip<ConnectionCloseFrame>(Frame{cc});
  EXPECT_EQ(out.frame.error_code, 42u);
  EXPECT_EQ(out.frame.reason, "bye");
}

TEST(Frames, RetransmittableClassification) {
  EXPECT_FALSE(is_retransmittable(Frame{AckFrame{}}));
  EXPECT_FALSE(is_retransmittable(Frame{PaddingFrame{}}));
  EXPECT_TRUE(is_retransmittable(Frame{PingFrame{}}));
  EXPECT_TRUE(is_retransmittable(Frame{StreamFrame{}}));
  EXPECT_TRUE(is_retransmittable(Frame{CryptoFrame{}}));
  EXPECT_TRUE(is_retransmittable(Frame{HxQosFrame{}}));
}

TEST(Frames, BuildAckFromReceivedSet) {
  RangeSet received;
  received.add(1, 5);
  received.add(8, 10);
  received.add(12);
  const AckFrame ack = build_ack(received, milliseconds(2));
  EXPECT_EQ(ack.largest_acked, 12u);
  ASSERT_EQ(ack.ranges.size(), 3u);
  EXPECT_EQ(ack.ranges[0], (Range{12, 12}));
  EXPECT_EQ(ack.ranges[2], (Range{1, 5}));
}

TEST(Frames, BuildAckCapsRangeCount) {
  RangeSet received;
  for (uint64_t i = 0; i < 100; ++i) received.add(i * 3);
  const AckFrame ack = build_ack(received, 0, /*max_ranges=*/32);
  EXPECT_EQ(ack.ranges.size(), 32u);
  EXPECT_EQ(ack.largest_acked, 99u * 3);
}

TEST(Frames, MalformedInputRejected) {
  // Unknown frame type.
  {
    const uint8_t buf[] = {0xEE};
    ByteReader r(buf, sizeof(buf));
    EXPECT_FALSE(parse_frame(r).has_value());
  }
  // Truncated stream frame (declared longer than available).
  {
    ByteWriter w;
    const std::vector<uint8_t> payload{1, 2, 3, 4};
    StreamFrame f;
    f.data = payload;
    serialize_frame(Frame{f}, w);
    auto bytes = w.take();
    bytes.resize(bytes.size() - 2);
    ByteReader r(bytes);
    EXPECT_FALSE(parse_frame(r).has_value());
  }
  // ACK whose first range underflows.
  {
    ByteWriter w;
    w.u8(0x02);
    w.varint(5);    // largest
    w.varint(0);    // delay
    w.varint(1);    // one range
    w.varint(9);    // first_range > largest -> invalid
    ByteReader r(w.span());
    EXPECT_FALSE(parse_frame(r).has_value());
  }
}

TEST(Packets, RoundTripWithMixedFrames) {
  Packet p;
  p.type = PacketType::kOneRtt;
  p.conn_id = 0xAABBCCDD;
  p.packet_number = 77;
  p.frames.push_back(build_ack([] {
                       RangeSet s;
                       s.add(1, 3);
                       return s;
                     }(), 0));
  const std::vector<uint8_t> payload{5, 5, 5};
  StreamFrame sf;
  sf.stream_id = 3;
  sf.data = payload;
  p.frames.push_back(sf);

  const auto bytes = serialize_packet(p);
  auto out = parse_packet(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->conn_id, 0xAABBCCDDu);
  EXPECT_EQ(out->packet_number, 77u);
  ASSERT_EQ(out->frames.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<AckFrame>(out->frames[0]));
  EXPECT_TRUE(std::holds_alternative<StreamFrame>(out->frames[1]));
  EXPECT_TRUE(out->retransmittable());
}

TEST(Packets, ArenaBackedParseAllocatesNothingOnHeapAfterWarmup) {
  const std::vector<uint8_t> payload{5, 5, 5, 5};
  Packet p;
  p.conn_id = 9;
  p.packet_number = 1;
  StreamFrame sf;
  sf.stream_id = 3;
  sf.data = payload;
  p.frames.push_back(sf);
  const auto bytes = serialize_packet(p);

  util::Arena arena;
  auto out = parse_packet(bytes, &arena);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->frames.get_allocator().arena(), &arena);
  EXPECT_GT(arena.total_allocated(), 0u);
  // Epoch reset rewinds; re-parsing reuses the same block.
  const size_t blocks = arena.block_count();
  arena.reset();
  out = parse_packet(bytes, &arena);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(Packets, HxQosPacketType) {
  const std::vector<uint8_t> blob{1, 2, 3};
  Packet p;
  p.type = PacketType::kHxQos;  // 0x1f, distinct from existing QUIC types
  p.conn_id = 1;
  p.packet_number = 5;
  HxQosFrame hx;
  hx.server_time_ms = 100;
  hx.sealed_blob = blob;
  p.frames.push_back(hx);
  const auto bytes = serialize_packet(p);
  auto out = parse_packet(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, PacketType::kHxQos);
}

TEST(Packets, UnknownTypeRejected) {
  ByteWriter w;
  w.u8(0x7F);
  w.u64be(1);
  w.u64be(1);
  EXPECT_FALSE(parse_packet(w.span()).has_value());
}

TEST(Packets, AckOnlyPacketNotRetransmittable) {
  Packet p;
  p.frames.push_back(AckFrame{});
  EXPECT_FALSE(p.retransmittable());
}

}  // namespace
}  // namespace wira::quic
