// Ablation A6: careful resume from the transport cookie.
//
// An obvious-seeming extension of Wira: if the cookie is a converged
// model of the path, why run BBR's high-gain STARTUP at all?  Seed the
// bandwidth filter and jump straight to PROBE_BW
// (CongestionController::resume_from_history — the QUIC "careful resume"
// idea).  This bench quantifies why the library ships with it OFF: the
// cookie's MaxBW systematically *under*-estimates app-limited paths, and
// without startup's exponential correction the whole session stays
// pinned at the remembered rate — the first frame is fine, the follow-up
// backlog suffers badly.
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("Ablation: careful resume on/off, %zu sessions per point\n",
              args.sessions / 2);

  Table t({"mode", "FFCT avg (ms)", "FFCT p90", "frame4 avg (ms)",
           "frame2 loss"});
  std::vector<SessionRecord> all_records;
  for (bool resume : {false, true}) {
    PopulationConfig cfg;
    cfg.sessions = args.sessions / 2;
    cfg.seed = args.seed;
    cfg.careful_resume = resume;
    cfg.schemes = {core::Scheme::kWira};
    const auto records = bench::run_with_obs(cfg, args);
    all_records.insert(all_records.end(), records.begin(), records.end());

    Samples ffct, frame4, loss2;
    for (const auto& r : records) {
      const auto& res = r.results.at(core::Scheme::kWira);
      if (!res.first_frame_completed) continue;
      ffct.add(to_ms(res.ffct));
      if (res.frames.size() >= 4 && res.frames[3].completion != kNoTime) {
        frame4.add(to_ms(res.frames[3].completion));
      }
      if (res.frames.size() >= 2 && res.frames[1].completion != kNoTime) {
        loss2.add(res.frames[1].loss_rate);
      }
    }
    t.row({resume ? "resume (skip startup)" : "startup (default)",
           fmt(ffct.mean()), fmt(ffct.percentile(90)), fmt(frame4.mean()),
           fmt(100 * loss2.mean()) + "%"});
  }
  t.print();
  bench::print_phase_breakdown(all_records);
  std::printf("(resume trades a small first-frame smoothing for a large "
              "follow-up throughput loss on under-estimated cookies)\n");
  return 0;
}
