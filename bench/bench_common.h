// Shared helpers for the figure/table bench binaries.
//
// Every binary accepts an optional first argument overriding the number of
// Monte-Carlo sessions (default kDefaultSessions) and an optional second
// argument overriding the seed, so `./fig11_overall 2000 7` scales the run.
// `--threads N` (or env WIRA_THREADS) parallelizes the session sweep; any
// thread count produces identical output (sessions are seeded per index).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/population_experiment.h"
#include "exp/table.h"
#include "util/stats.h"

namespace wira::bench {

inline constexpr size_t kDefaultSessions = 250;

struct Args {
  size_t sessions = kDefaultSessions;
  uint64_t seed = 1;
  /// Worker threads: 1 = serial, 0 = one per hardware thread.
  size_t threads = 1;
};

/// strtoull with full validation: the whole token must be a base-10
/// number (rejects "12abc", "-3", "" and overflow).
inline bool parse_u64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

[[noreturn]] inline void usage_error(const char* prog, const char* msg) {
  std::fprintf(stderr, "error: %s\nusage: %s [sessions] [seed] [--threads N]\n",
               msg, prog);
  std::exit(2);
}

inline Args parse_args(int argc, char** argv) {
  Args a;
  if (const char* env = std::getenv("WIRA_THREADS")) {
    uint64_t v = 0;
    if (!parse_u64(env, &v)) {
      usage_error(argv[0], "WIRA_THREADS must be a non-negative integer");
    }
    a.threads = static_cast<size_t>(v);
  }
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 ||
        std::strncmp(arg, "--threads=", 10) == 0) {
      const char* val = arg[9] == '=' ? arg + 10 : nullptr;
      if (val == nullptr) {
        if (++i >= argc) usage_error(argv[0], "--threads needs a value");
        val = argv[i];
      }
      uint64_t v = 0;
      // 0 is meaningful here: auto-detect hardware threads.
      if (!parse_u64(val, &v)) {
        usage_error(argv[0], "--threads must be a non-negative integer");
      }
      a.threads = static_cast<size_t>(v);
      continue;
    }
    uint64_t v = 0;
    switch (positional++) {
      case 0:
        if (!parse_u64(arg, &v) || v == 0) {
          usage_error(argv[0], "sessions must be a positive integer");
        }
        a.sessions = static_cast<size_t>(v);
        break;
      case 1:
        if (!parse_u64(arg, &v) || v == 0) {
          usage_error(argv[0], "seed must be a positive integer");
        }
        a.seed = v;
        break;
      default:
        usage_error(argv[0], "too many positional arguments");
    }
  }
  return a;
}

inline exp::PopulationConfig default_population(const Args& a) {
  exp::PopulationConfig cfg;
  cfg.sessions = a.sessions;
  cfg.seed = a.seed;
  cfg.threads = a.threads;
  return cfg;
}

/// Standard FFCT summary row: scheme, mean, p50, p70, p90, p95 (ms) and
/// the gain vs. a baseline mean.
inline std::vector<std::string> ffct_row(const std::string& name,
                                         const Samples& s,
                                         double baseline_mean) {
  return {name,
          fmt(s.mean()),
          fmt(s.percentile(50)),
          fmt(s.percentile(70)),
          fmt(s.percentile(90)),
          fmt(s.percentile(95)),
          fmt_gain(baseline_mean, s.mean()),
          std::to_string(s.count())};
}

inline const std::vector<std::string> kFfctHeaders = {
    "scheme", "avg(ms)", "p50", "p70", "p90", "p95", "avg-gain", "n"};

}  // namespace wira::bench
