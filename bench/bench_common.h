// Shared helpers for the figure/table bench binaries.
//
// Every binary accepts an optional first argument overriding the number of
// Monte-Carlo sessions (default kDefaultSessions) and an optional second
// argument overriding the seed, so `./fig11_overall 2000 7` scales the run.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "exp/population_experiment.h"
#include "exp/table.h"
#include "util/stats.h"

namespace wira::bench {

inline constexpr size_t kDefaultSessions = 250;

struct Args {
  size_t sessions = kDefaultSessions;
  uint64_t seed = 1;
};

inline Args parse_args(int argc, char** argv) {
  Args a;
  if (argc > 1) a.sessions = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) a.seed = static_cast<uint64_t>(std::atoll(argv[2]));
  return a;
}

inline exp::PopulationConfig default_population(const Args& a) {
  exp::PopulationConfig cfg;
  cfg.sessions = a.sessions;
  cfg.seed = a.seed;
  return cfg;
}

/// Standard FFCT summary row: scheme, mean, p50, p70, p90, p95 (ms) and
/// the gain vs. a baseline mean.
inline std::vector<std::string> ffct_row(const std::string& name,
                                         const Samples& s,
                                         double baseline_mean) {
  return {name,
          fmt(s.mean()),
          fmt(s.percentile(50)),
          fmt(s.percentile(70)),
          fmt(s.percentile(90)),
          fmt(s.percentile(95)),
          fmt_gain(baseline_mean, s.mean()),
          std::to_string(s.count())};
}

inline const std::vector<std::string> kFfctHeaders = {
    "scheme", "avg(ms)", "p50", "p70", "p90", "p95", "avg-gain", "n"};

}  // namespace wira::bench
