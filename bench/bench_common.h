// Shared helpers for the figure/table bench binaries.
//
// Every binary accepts an optional first argument overriding the number of
// Monte-Carlo sessions (default kDefaultSessions) and an optional second
// argument overriding the seed, so `./fig11_overall 2000 7` scales the run.
// `--threads N` (or env WIRA_THREADS) parallelizes the session sweep; any
// thread count produces identical output (sessions are seeded per index).
// `--procs N` (or env WIRA_PROCS) shards it over forked worker processes
// instead — same byte-identical output, plus crash containment: a dead
// worker is named and, with --retry-dead-shards, its missing sessions are
// re-run in-process (see exp::PopulationConfig::processes).
// `--chunk N` (or env WIRA_CHUNK) sets the dynamic dispatch chunk size (0 =
// legacy static striping); `--workers host:port,...` (or env WIRA_WORKERS)
// dispatches the sweep to running wira_workerd daemons over TCP instead of
// forking — output stays byte-identical at any worker topology.
//
// Observability flags (PR 2):
//   --metrics-out FILE   write one JSONL line per (session, scheme) with
//                        the FFCT phase breakdown; byte-identical at any
//                        --threads N (written post-join in index order).
//   --trace-sample N     dump a standard qlog (.sqlog, draft-ietf-quic-qlog
//                        as JSONL) of every Nth session into --trace-dir
//                        (default "traces/").
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/population_experiment.h"
#include "exp/session_export.h"
#include "exp/table.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace wira::bench {

inline constexpr size_t kDefaultSessions = 250;

struct Args {
  size_t sessions = kDefaultSessions;
  uint64_t seed = 1;
  /// Worker threads: 1 = serial, 0 = one per hardware thread.
  size_t threads = 1;
  /// Worker processes: 1 = in-process, 0 = one per hardware thread.
  size_t procs = 1;
  /// Dynamic dispatch chunk size; 0 = legacy static striping.
  size_t chunk = 64;
  /// Comma-separated wira_workerd endpoints; empty = fork pipe workers.
  std::string workers;
  /// TCP connect budget per --workers endpoint (ms); an endpoint that is
  /// unreachable inside it becomes a dead shard instead of hanging the
  /// sweep.
  int connect_timeout_ms = 5000;
  /// Salvage + re-run sessions lost to a dead worker process.
  bool retry_dead_shards = false;
  /// Per-session JSONL metrics file; empty = metrics collection off.
  std::string metrics_out;
  /// Dump a full qlog of every Nth session (0 = off) into trace_dir.
  size_t trace_sample = 0;
  std::string trace_dir = "traces";
};

/// strtoull with full validation: the whole token must be a base-10
/// number (rejects "12abc", "-3", "" and overflow).
inline bool parse_u64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

[[noreturn]] inline void usage_error(const char* prog, const char* msg) {
  std::fprintf(stderr,
               "error: %s\nusage: %s [sessions] [seed] [--threads N] "
               "[--procs N] [--chunk N] [--workers host:port,...] "
               "[--connect-timeout-ms N] [--retry-dead-shards] "
               "[--metrics-out FILE] "
               "[--trace-sample N] [--trace-dir DIR]\n",
               msg, prog);
  std::exit(2);
}

/// Extracts the value of `--name VALUE` / `--name=VALUE` style flags.
/// Returns nullptr when argv[*i] is not this flag; exits on missing value.
inline const char* flag_value(const char* name, int argc, char** argv,
                              int* i) {
  const size_t len = std::strlen(name);
  const char* arg = argv[*i];
  if (std::strncmp(arg, name, len) != 0) return nullptr;
  if (arg[len] == '=') return arg + len + 1;
  if (arg[len] != '\0') return nullptr;  // e.g. --trace-sampleX
  if (++*i >= argc) {
    std::string msg(name);
    msg += " needs a value";
    usage_error(argv[0], msg.c_str());
  }
  return argv[*i];
}

inline Args parse_args(int argc, char** argv) {
  Args a;
  if (const char* env = std::getenv("WIRA_THREADS")) {
    uint64_t v = 0;
    if (!parse_u64(env, &v)) {
      usage_error(argv[0], "WIRA_THREADS must be a non-negative integer");
    }
    a.threads = static_cast<size_t>(v);
  }
  if (const char* env = std::getenv("WIRA_PROCS")) {
    uint64_t v = 0;
    if (!parse_u64(env, &v)) {
      usage_error(argv[0], "WIRA_PROCS must be a non-negative integer");
    }
    a.procs = static_cast<size_t>(v);
  }
  if (const char* env = std::getenv("WIRA_CHUNK")) {
    uint64_t v = 0;
    if (!parse_u64(env, &v)) {
      usage_error(argv[0], "WIRA_CHUNK must be a non-negative integer");
    }
    a.chunk = static_cast<size_t>(v);
  }
  if (const char* env = std::getenv("WIRA_WORKERS")) {
    a.workers = env;
  }
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* val = flag_value("--threads", argc, argv, &i)) {
      uint64_t v = 0;
      // 0 is meaningful here: auto-detect hardware threads.
      if (!parse_u64(val, &v)) {
        usage_error(argv[0], "--threads must be a non-negative integer");
      }
      a.threads = static_cast<size_t>(v);
      continue;
    }
    if (const char* val = flag_value("--procs", argc, argv, &i)) {
      uint64_t v = 0;
      // 0 is meaningful here too: one worker per hardware thread.
      if (!parse_u64(val, &v)) {
        usage_error(argv[0], "--procs must be a non-negative integer");
      }
      a.procs = static_cast<size_t>(v);
      continue;
    }
    if (const char* val = flag_value("--chunk", argc, argv, &i)) {
      uint64_t v = 0;
      // 0 is meaningful: legacy static striping (the A/B baseline).
      if (!parse_u64(val, &v)) {
        usage_error(argv[0], "--chunk must be a non-negative integer");
      }
      a.chunk = static_cast<size_t>(v);
      continue;
    }
    if (const char* val = flag_value("--workers", argc, argv, &i)) {
      if (*val == '\0') {
        usage_error(argv[0], "--workers needs host:port,...");
      }
      a.workers = val;
      continue;
    }
    if (const char* val = flag_value("--connect-timeout-ms", argc, argv, &i)) {
      uint64_t v = 0;
      // 0 is meaningful: fall back to the kernel's own connect timeout.
      if (!parse_u64(val, &v) || v > 3600000) {
        usage_error(argv[0],
                    "--connect-timeout-ms must be an integer (0-3600000)");
      }
      a.connect_timeout_ms = static_cast<int>(v);
      continue;
    }
    if (std::strcmp(arg, "--retry-dead-shards") == 0) {
      a.retry_dead_shards = true;
      continue;
    }
    if (const char* val = flag_value("--metrics-out", argc, argv, &i)) {
      if (*val == '\0') usage_error(argv[0], "--metrics-out needs a path");
      a.metrics_out = val;
      continue;
    }
    if (const char* val = flag_value("--trace-sample", argc, argv, &i)) {
      uint64_t v = 0;
      if (!parse_u64(val, &v) || v == 0) {
        usage_error(argv[0], "--trace-sample must be a positive integer");
      }
      a.trace_sample = static_cast<size_t>(v);
      continue;
    }
    if (const char* val = flag_value("--trace-dir", argc, argv, &i)) {
      if (*val == '\0') usage_error(argv[0], "--trace-dir needs a path");
      a.trace_dir = val;
      continue;
    }
    uint64_t v = 0;
    switch (positional++) {
      case 0:
        if (!parse_u64(arg, &v) || v == 0) {
          usage_error(argv[0], "sessions must be a positive integer");
        }
        a.sessions = static_cast<size_t>(v);
        break;
      case 1:
        if (!parse_u64(arg, &v) || v == 0) {
          usage_error(argv[0], "seed must be a positive integer");
        }
        a.seed = v;
        break;
      default:
        usage_error(argv[0], "too many positional arguments");
    }
  }
  return a;
}

inline exp::PopulationConfig default_population(const Args& a) {
  exp::PopulationConfig cfg;
  cfg.sessions = a.sessions;
  cfg.seed = a.seed;
  cfg.threads = a.threads;
  cfg.processes = a.procs;
  cfg.chunk = a.chunk;
  // Split the --workers CSV into endpoints (empty fields rejected).
  if (!a.workers.empty()) {
    size_t at = 0;
    while (at <= a.workers.size()) {
      const size_t comma = a.workers.find(',', at);
      const std::string endpoint =
          a.workers.substr(at, comma == std::string::npos ? std::string::npos
                                                          : comma - at);
      if (endpoint.empty()) {
        std::fprintf(stderr, "error: --workers has an empty endpoint\n");
        std::exit(2);
      }
      cfg.workers.push_back(endpoint);
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
  }
  cfg.connect_timeout_ms = a.connect_timeout_ms;
  cfg.retry_dead_shards = a.retry_dead_shards;
  cfg.collect_metrics = !a.metrics_out.empty();
  cfg.trace_sample = a.trace_sample;
  cfg.trace_dir = a.trace_dir;
  return cfg;
}

/// Runs the population sweep and honours the observability flags: when
/// --metrics-out was given, writes the per-session JSONL (post-join, index
/// order — byte-identical at any thread count).  All fig/abl binaries go
/// through this instead of calling run_population directly.
inline std::vector<exp::SessionRecord> run_with_obs(
    exp::PopulationConfig cfg, const Args& a,
    obs::MetricsRegistry* registry = nullptr) {
  // Sweep binaries call this once per point: the first call truncates the
  // metrics file, later calls append with an incremented "run" field.
  static int run_counter = 0;
  // Phase decompositions feed the per-phase breakdown table every binary
  // prints (PR 3), so they are always collected here; --metrics-out only
  // controls the per-session JSONL dump.
  cfg.collect_metrics = true;
  if (cfg.trace_sample == 0) cfg.trace_sample = a.trace_sample;
  cfg.trace_dir = a.trace_dir;
  auto records = exp::run_population(cfg, registry);
  if (!a.metrics_out.empty()) {
    const int run = run_counter++;
    std::ofstream os(a.metrics_out,
                     run == 0 ? std::ios::trunc : std::ios::app);
    if (!os) {
      std::fprintf(stderr, "error: cannot open --metrics-out file %s\n",
                   a.metrics_out.c_str());
      std::exit(2);
    }
    exp::write_records_jsonl(records, os, run);
    std::fprintf(stderr, "wrote per-session metrics JSONL: %s (run %d)\n",
                 a.metrics_out.c_str(), run);
  }
  return records;
}

/// Appends the per-phase p50/p90/p99 breakdown to the binary's output.
/// Built from the same post-join records as the main tables, so it is
/// byte-identical at any --threads N.  Sweep binaries pass the records of
/// every point they visited, accumulated in visit order.
inline void print_phase_breakdown(
    const std::vector<exp::SessionRecord>& records) {
  exp::banner("FFCT phase breakdown (ms per scheme)");
  exp::ffct_phase_table(records).print();
}

/// Standard FFCT summary row: scheme, mean, p50, p70, p90, p95 (ms) and
/// the gain vs. a baseline mean.
inline std::vector<std::string> ffct_row(const std::string& name,
                                         const Samples& s,
                                         double baseline_mean) {
  return {name,
          fmt(s.mean()),
          fmt(s.percentile(50)),
          fmt(s.percentile(70)),
          fmt(s.percentile(90)),
          fmt(s.percentile(95)),
          fmt_gain(baseline_mean, s.mean()),
          std::to_string(s.count())};
}

inline const std::vector<std::string> kFfctHeaders = {
    "scheme", "avg(ms)", "p50", "p70", "p90", "p95", "avg-gain", "n"};

}  // namespace wira::bench
