// Ablation A2: the cookie staleness threshold Delta (§IV-C corner case 2,
// default 60 min).
//
// Small Delta discards still-useful history (fewer sessions initialized
// from Hx_QoS); very large Delta trusts cookies whose MinRTT/MaxBW have
// drifted.  The sweep shows the fraction of cookie-initialized sessions
// and the resulting FFCT for Wira.
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("Ablation: staleness threshold Delta sweep, %zu sessions "
              "per point\n", args.sessions / 2);

  Table t({"Delta (min)", "cookie used", "stale rejected", "Wira avg (ms)",
           "Wira p90"});
  std::vector<SessionRecord> all_records;
  for (int delta_min : {1, 5, 15, 60, 240, 100000}) {
    PopulationConfig cfg;
    cfg.sessions = args.sessions / 2;
    cfg.seed = args.seed;
    cfg.staleness_threshold = minutes(delta_min);
    cfg.schemes = {core::Scheme::kWira};
    const auto records = bench::run_with_obs(cfg, args);
    all_records.insert(all_records.end(), records.begin(), records.end());

    size_t used = 0, stale = 0, total = 0;
    Samples ffct;
    for (const auto& r : records) {
      const auto& res = r.results.at(core::Scheme::kWira);
      if (!res.first_frame_completed) continue;
      total++;
      used += res.init.used_hx_qos;
      stale += res.init.hx_stale;
      ffct.add(to_ms(res.ffct));
    }
    t.row({delta_min >= 100000 ? "inf" : std::to_string(delta_min),
           fmt(100.0 * used / std::max<size_t>(total, 1)) + "%",
           fmt(100.0 * stale / std::max<size_t>(total, 1)) + "%",
           fmt(ffct.mean()), fmt(ffct.percentile(90))});
  }
  t.print();
  bench::print_phase_breakdown(all_records);
  std::printf("(the paper's Delta = 60 min keeps most history usable "
              "while bounding drift)\n");
  return 0;
}
