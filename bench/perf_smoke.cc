// Performance smoke: runs the same Monte-Carlo population serially, in
// parallel (threads), and sharded over forked worker processes, verifies
// all records are identical (the determinism contract), then reruns with
// full metrics collection to price the observability overhead, and prints
// one JSON object with sessions/sec plus the aggregate metrics registry so
// successive runs build a perf trajectory (tools/run_perf_smoke.sh appends
// it to bench_history/; tools/bench_gate.py gates the throughput numbers,
// including the multiprocess sessions_per_sec_np datapoint).
//
// A skewed-cost pass (linear per-index sleep ramp) then prices the
// dynamic chunk scheduler against static striping at the same worker
// count: sessions_per_sec_dyn and dispatch_speedup join the gated
// trajectory (the ISSUE floor is dyn >= 1.3x static on 4 workers).
//
// Usage: perf_smoke [sessions] [seed] [--threads N] [--procs N]
//        (N=0 -> hardware; --procs defaults to a 2-worker datapoint and
//        the skew pass to 4 workers unless --procs overrides it)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>

#include "bench_common.h"
#include "obs/phase_timeline.h"
#include "obs/rss.h"
#include "util/alloc_stats.h"

using namespace wira;
using namespace wira::exp;

namespace {

double run_timed(const PopulationConfig& cfg, std::vector<SessionRecord>* out,
                 obs::MetricsRegistry* metrics = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = run_population(cfg, metrics);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Formats microseconds as fixed-point milliseconds.  All inputs are
// integer-derived (histogram means/percentiles over integer buckets), so
// the string is identical across runs and thread counts.
std::string ms(double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", us / 1000.0);
  return buf;
}

// Per-scheme mean FFCT (ms) and per-scheme-per-phase {p50,p90,p99} (ms)
// from the aggregate registry.  These two objects are the QoE half of the
// perf trajectory: tools/bench_gate.py compares them across runs, so they
// must stay deterministic at any --threads N (they are: the registry merge
// is order-independent and percentiles are pure functions of the counts).
void summarize_qoe(const obs::MetricsRegistry& registry,
                   const std::vector<core::Scheme>& schemes,
                   std::string* ffct_json, std::string* phases_json) {
  std::ostringstream ff, ph;
  ff << "{";
  ph << "{";
  bool first = true;
  for (const core::Scheme scheme : schemes) {
    const char* sname = core::scheme_name(scheme);
    const obs::LatencyHistogram* ffct =
        registry.find_histogram(std::string("ffct_us.") + sname);
    if (ffct == nullptr || ffct->count() == 0) continue;
    if (!first) {
      ff << ", ";
      ph << ", ";
    }
    first = false;
    ff << "\"" << sname << "\": " << ms(ffct->mean());
    ph << "\"" << sname << "\": {";
    for (size_t p = 0; p < obs::kNumPhases; ++p) {
      if (p != 0) ph << ", ";
      ph << "\"" << obs::kPhaseNames[p] << "\": ";
      const obs::LatencyHistogram* h = registry.find_histogram(
          std::string("phase.") + obs::kPhaseNames[p] + "_us." + sname);
      if (h == nullptr || h->count() == 0) {
        ph << "null";
        continue;
      }
      ph << "{\"p50\": " << ms(h->percentile(50)) << ", \"p90\": "
         << ms(h->percentile(90)) << ", \"p99\": " << ms(h->percentile(99))
         << "}";
    }
    ph << "}";
  }
  ff << "}";
  ph << "}";
  *ffct_json = ff.str();
  *phases_json = ph.str();
}

bool records_identical(const std::vector<SessionRecord>& a,
                       const std::vector<SessionRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ff_size != b[i].ff_size || a[i].zero_rtt != b[i].zero_rtt ||
        a[i].had_cookie != b[i].had_cookie ||
        a[i].cookie_age != b[i].cookie_age ||
        a[i].results.size() != b[i].results.size()) {
      return false;
    }
    for (const auto& [scheme, res] : a[i].results) {
      const auto it = b[i].results.find(scheme);
      if (it == b[i].results.end()) return false;
      const SessionResult& other = it->second;
      if (res.ffct != other.ffct || res.fflr != other.fflr ||
          res.init.init_cwnd != other.init.init_cwnd ||
          res.init.init_pacing != other.init.init_pacing ||
          res.server_stats.packets_sent != other.server_stats.packets_sent) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  auto cfg = bench::default_population(args);

  const size_t par_threads =
      args.threads == 1 ? std::thread::hardware_concurrency() : args.threads;

  cfg.threads = 1;
  std::vector<SessionRecord> serial_records;
  const uint64_t allocs_before = util::heap_alloc_count();
  const double serial_sec = run_timed(cfg, &serial_records);
  const uint64_t allocs_serial = util::heap_alloc_count() - allocs_before;

  // Allocation accounting over the serial pass: operator-new calls (live
  // because this binary links alloc_hook.cc) and arena bytes, both per
  // (session, scheme) run.  Heap-side is the gated metric; arena-side
  // shows where the traffic moved.
  uint64_t session_runs = 0;
  uint64_t arena_bytes = 0;
  for (const SessionRecord& rec : serial_records) {
    session_runs += rec.results.size();
    for (const auto& [scheme, res] : rec.results) arena_bytes += res.arena_bytes;
  }
  const double runs = session_runs > 0 ? static_cast<double>(session_runs) : 1;
  const double allocs_per_session = static_cast<double>(allocs_serial) / runs;
  const double arena_bytes_per_session =
      static_cast<double>(arena_bytes) / runs;

  // Recorder-off serial pass: prices the always-on flight recorder
  // (obs/flight_recorder.h) against the pass above.  recorder_overhead is
  // the fractional sessions/sec cost of leaving it on (the gated budget
  // is <= 3%); records must stay identical — the recorder only taps.
  cfg.flight_recorder = false;
  std::vector<SessionRecord> recorder_off_records;
  const double recorder_off_sec = run_timed(cfg, &recorder_off_records);
  cfg.flight_recorder = true;

  cfg.threads = par_threads;
  std::vector<SessionRecord> parallel_records;
  const double parallel_sec = run_timed(cfg, &parallel_records);

  // Multiprocess pass (PR 5): forked workers stream serialized records
  // back over pipes and the parent reassembles them index-addressed — the
  // identical-records check below extends the determinism contract across
  // the process boundary and the wire codec.
  const size_t procs = args.procs == 1 ? 2 : args.procs;
  cfg.threads = 1;
  cfg.processes = procs;
  std::vector<SessionRecord> procs_records;
  const double procs_sec = run_timed(cfg, &procs_records);

  // Skewed-cost dispatch pass (DESIGN.md §6): a linear per-index cost
  // ramp makes the front stripes expensive, so static striping (chunk=0)
  // gates on its slowest stripe while the dynamic chunk scheduler routes
  // work around it.  Interleaved best-of-2 keeps the comparison fair
  // under machine noise; the injected sleeps dominate both runs, so the
  // dyn/static ratio is stable across hosts and sanitizers.  The records
  // must stay byte-identical either way — skew is wall-clock only.
  // The injected ramp totals ~skew_budget_us of sleep whatever the
  // session count: sleeps overlap across worker processes (they burn no
  // CPU), so even on a single core static striping pays its slowest
  // stripe's sleep serially while dynamic chunking spreads it ~evenly.
  const size_t skew_procs = args.procs > 1 ? args.procs : 4;
  const size_t dyn_chunk =
      std::max<size_t>(1, args.sessions / (skew_procs * 8));
  constexpr uint64_t kSkewBudgetUs = 6'000'000;
  cfg.processes = skew_procs;
  cfg.skew_delay_us = std::max<uint64_t>(
      1000, 2 * kSkewBudgetUs / std::max<size_t>(1, args.sessions));
  double static_sec = 0.0, dyn_sec = 0.0;
  std::vector<SessionRecord> static_records, dyn_records;
  for (int rep = 0; rep < 2; ++rep) {
    cfg.chunk = 0;  // static striping baseline
    std::vector<SessionRecord> s_records;
    const double s = run_timed(cfg, &s_records);
    static_records = std::move(s_records);
    cfg.chunk = dyn_chunk;
    const double d = run_timed(cfg, &dyn_records);
    if (rep == 0 || s < static_sec) static_sec = s;
    if (rep == 0 || d < dyn_sec) dyn_sec = d;
  }
  cfg.skew_delay_us = 0;
  cfg.chunk = args.chunk;
  cfg.processes = 1;
  cfg.threads = par_threads;

  const bool deterministic =
      records_identical(serial_records, parallel_records) &&
      records_identical(serial_records, procs_records) &&
      records_identical(serial_records, recorder_off_records) &&
      records_identical(serial_records, static_records) &&
      records_identical(serial_records, dyn_records);

  // Third pass with the full observability stack on (phase tracers +
  // per-worker registries): prices the opt-in overhead and produces the
  // aggregate metrics object recorded in the perf trajectory.
  cfg.collect_metrics = true;
  obs::MetricsRegistry registry;
  std::vector<SessionRecord> metrics_records;
  const double metrics_sec = run_timed(cfg, &metrics_records, &registry);

  const double n = static_cast<double>(args.sessions);
  const size_t effective_threads =
      par_threads == 0 ? std::thread::hardware_concurrency() : par_threads;
  const size_t effective_procs =
      procs == 0 ? std::thread::hardware_concurrency() : procs;
  std::ostringstream metrics_json;
  registry.write_json(metrics_json);
  std::string ffct_json, phases_json;
  summarize_qoe(registry, cfg.schemes, &ffct_json, &phases_json);

  std::printf(
      "{\n"
      "  \"bench\": \"perf_smoke\",\n"
      "  \"sessions\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"threads\": %zu,\n"
      "  \"procs\": %zu,\n"
      "  \"hardware_concurrency\": %u,\n"
      "  \"peak_rss_mb\": %.1f,\n"
      "  \"serial_sec\": %.3f,\n"
      "  \"recorder_off_sec\": %.3f,\n"
      "  \"recorder_overhead\": %.3f,\n"
      "  \"parallel_sec\": %.3f,\n"
      "  \"procs_sec\": %.3f,\n"
      "  \"metrics_sec\": %.3f,\n"
      "  \"sessions_per_sec_1t\": %.1f,\n"
      "  \"sessions_per_sec_nt\": %.1f,\n"
      "  \"sessions_per_sec_np\": %.1f,\n"
      "  \"skew_static_sec\": %.3f,\n"
      "  \"skew_dyn_sec\": %.3f,\n"
      "  \"sessions_per_sec_static\": %.1f,\n"
      "  \"sessions_per_sec_dyn\": %.1f,\n"
      "  \"dispatch_speedup\": %.2f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"metrics_overhead\": %.3f,\n"
      "  \"allocs_per_session\": %.1f,\n"
      "  \"arena_bytes_per_session\": %.1f,\n"
      "  \"deterministic\": %s,\n"
      "  \"ffct_ms\": %s,\n"
      "  \"phases\": %s,\n"
      "  \"metrics\": %s\n"
      "}\n",
      args.sessions, static_cast<unsigned long long>(args.seed),
      effective_threads, effective_procs,
      std::thread::hardware_concurrency(),
      static_cast<double>(obs::peak_rss_bytes().value_or(0)) / 1e6,
      serial_sec,
      recorder_off_sec,
      recorder_off_sec > 0 ? serial_sec / recorder_off_sec - 1.0 : 0.0,
      parallel_sec,
      procs_sec, metrics_sec, n / serial_sec, n / parallel_sec,
      n / procs_sec,
      static_sec, dyn_sec, n / static_sec, n / dyn_sec,
      static_sec / dyn_sec,
      serial_sec / parallel_sec,
      metrics_sec / parallel_sec - 1.0, allocs_per_session,
      arena_bytes_per_session, deterministic ? "true" : "false",
      ffct_json.c_str(), phases_json.c_str(), metrics_json.str().c_str());
  return deterministic ? 0 : 1;
}
