// Performance smoke: runs the same Monte-Carlo population serially and in
// parallel, verifies the records are identical (the determinism contract),
// and prints one JSON object with sessions/sec so successive runs build a
// perf trajectory (tools/run_perf_smoke.sh writes it to BENCH_<date>.json).
//
// Usage: perf_smoke [sessions] [seed] [--threads N]   (N=0 -> hardware)
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

namespace {

double run_timed(const PopulationConfig& cfg,
                 std::vector<SessionRecord>* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = run_population(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool records_identical(const std::vector<SessionRecord>& a,
                       const std::vector<SessionRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ff_size != b[i].ff_size || a[i].zero_rtt != b[i].zero_rtt ||
        a[i].had_cookie != b[i].had_cookie ||
        a[i].cookie_age != b[i].cookie_age ||
        a[i].results.size() != b[i].results.size()) {
      return false;
    }
    for (const auto& [scheme, res] : a[i].results) {
      const auto it = b[i].results.find(scheme);
      if (it == b[i].results.end()) return false;
      const SessionResult& other = it->second;
      if (res.ffct != other.ffct || res.fflr != other.fflr ||
          res.init.init_cwnd != other.init.init_cwnd ||
          res.init.init_pacing != other.init.init_pacing ||
          res.server_stats.packets_sent != other.server_stats.packets_sent) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  auto cfg = bench::default_population(args);

  const size_t par_threads =
      args.threads == 1 ? std::thread::hardware_concurrency() : args.threads;

  cfg.threads = 1;
  std::vector<SessionRecord> serial_records;
  const double serial_sec = run_timed(cfg, &serial_records);

  cfg.threads = par_threads;
  std::vector<SessionRecord> parallel_records;
  const double parallel_sec = run_timed(cfg, &parallel_records);

  const bool deterministic =
      records_identical(serial_records, parallel_records);
  const double n = static_cast<double>(args.sessions);
  const size_t effective_threads =
      par_threads == 0 ? std::thread::hardware_concurrency() : par_threads;

  std::printf(
      "{\n"
      "  \"bench\": \"perf_smoke\",\n"
      "  \"sessions\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"threads\": %zu,\n"
      "  \"serial_sec\": %.3f,\n"
      "  \"parallel_sec\": %.3f,\n"
      "  \"sessions_per_sec_1t\": %.1f,\n"
      "  \"sessions_per_sec_nt\": %.1f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"deterministic\": %s\n"
      "}\n",
      args.sessions, static_cast<unsigned long long>(args.seed),
      effective_threads, serial_sec, parallel_sec, n / serial_sec,
      n / parallel_sec, serial_sec / parallel_sec,
      deterministic ? "true" : "false");
  return deterministic ? 0 : 1;
}
