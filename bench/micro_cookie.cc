// Microbenchmarks: transport-cookie codec and sealing — the per-handshake
// server cost of statelessness (§IV-B argues this must beat a server-side
// Hx_QoS store).
#include <benchmark/benchmark.h>

#include "core/transport_cookie.h"
#include "quic/handshake.h"

namespace {

using namespace wira;
using namespace wira::core;

HxQosRecord sample_record() {
  HxQosRecord r;
  r.min_rtt = milliseconds(48);
  r.max_bw = mbps(14);
  r.server_timestamp = minutes(10);
  r.od_key = 0x1234567890ABCDEFull;
  return r;
}

void BM_TripleEncode(benchmark::State& state) {
  const auto rec = sample_record();
  for (auto _ : state) {
    auto bytes = encode_hxqos_triples(rec);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_TripleEncode);

void BM_TripleDecode(benchmark::State& state) {
  const auto bytes = encode_hxqos_triples(sample_record());
  for (auto _ : state) {
    auto rec = decode_hxqos_triples(bytes);
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_TripleDecode);

void BM_CookieSeal(benchmark::State& state) {
  CookieSealer sealer(crypto::key_from_string("bench"));
  const auto rec = sample_record();
  for (auto _ : state) {
    auto blob = sealer.seal(rec);
    benchmark::DoNotOptimize(blob.data());
  }
}
BENCHMARK(BM_CookieSeal);

void BM_CookieOpen(benchmark::State& state) {
  CookieSealer sealer(crypto::key_from_string("bench"));
  const auto blob = sealer.seal(sample_record());
  for (auto _ : state) {
    auto rec = sealer.open(blob);
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_CookieOpen);

void BM_CookieOpenTampered(benchmark::State& state) {
  // Rejection cost (a hostile client cannot make the server do more work
  // than one failed MAC check).
  CookieSealer sealer(crypto::key_from_string("bench"));
  auto blob = sealer.seal(sample_record());
  blob[10] ^= 1;
  for (auto _ : state) {
    auto rec = sealer.open(blob);
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_CookieOpenTampered);

void BM_HqstRoundTrip(benchmark::State& state) {
  CookieSealer sealer(crypto::key_from_string("bench"));
  quic::HqstPayload p;
  p.supports_sync = true;
  p.client_recv_time_ms = 123;
  p.sealed_cookie = sealer.seal(sample_record());
  for (auto _ : state) {
    auto parsed = quic::parse_hqst(quic::serialize_hqst(p));
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_HqstRoundTrip);

void BM_ClientStoreLookup(benchmark::State& state) {
  ClientCookieStore store;
  for (uint64_t i = 0; i < 1000; ++i) {
    store.store(i, {1, 2, 3, 4}, milliseconds(static_cast<int64_t>(i)));
  }
  uint64_t key = 0;
  for (auto _ : state) {
    auto e = store.lookup(key++ % 1000);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_ClientStoreLookup);

}  // namespace

BENCHMARK_MAIN();
