// Microbenchmarks: Frame Perception — the L4 parser sits on the hot send
// path of every live stream, so its per-byte cost matters (the paper's
// whole implementation budget is ~1000 LoC inside nginx/LSQUIC).
#include <benchmark/benchmark.h>

#include "core/frame_parser.h"
#include "media/flv.h"
#include "media/stream_source.h"

namespace {

using namespace wira;

std::vector<uint8_t> make_stream_bytes(double iframe_kb, TimeNs tail) {
  media::StreamProfile p;
  p.stream_id = 1;
  p.iframe_mean_bytes = iframe_kb * 1000;
  media::LiveStream s(p, 99);
  std::vector<uint8_t> bytes;
  for (const auto& c : s.join_chunks(0)) {
    bytes.insert(bytes.end(), c.bytes.begin(), c.bytes.end());
  }
  for (const auto& c : s.chunks_between(0, tail)) {
    bytes.insert(bytes.end(), c.bytes.begin(), c.bytes.end());
  }
  return bytes;
}

void BM_FrameParserWholeBuffer(benchmark::State& state) {
  const auto bytes =
      make_stream_bytes(static_cast<double>(state.range(0)), seconds(1));
  for (auto _ : state) {
    core::FrameParser parser;
    auto ff = parser.feed(bytes);
    benchmark::DoNotOptimize(ff);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_FrameParserWholeBuffer)->Arg(20)->Arg(66)->Arg(200);

void BM_FrameParserMtuChunks(benchmark::State& state) {
  const auto bytes = make_stream_bytes(66, seconds(1));
  for (auto _ : state) {
    core::FrameParser parser;
    for (size_t i = 0; i < bytes.size(); i += 1400) {
      const size_t n = std::min<size_t>(1400, bytes.size() - i);
      auto ff = parser.feed({bytes.data() + i, n});
      benchmark::DoNotOptimize(ff);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_FrameParserMtuChunks);

void BM_FlvDemuxer(benchmark::State& state) {
  const auto bytes = make_stream_bytes(66, seconds(2));
  for (auto _ : state) {
    size_t tags = 0;
    media::FlvDemuxer demux([&](const media::FlvTag&) { tags++; });
    demux.feed(bytes);
    benchmark::DoNotOptimize(tags);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_FlvDemuxer);

void BM_GopGeneration(benchmark::State& state) {
  media::StreamProfile p;
  media::LiveStream s(p, 3);
  uint64_t k = 0;
  for (auto _ : state) {
    auto g = s.gop(k++);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_GopGeneration);

}  // namespace

BENCHMARK_MAIN();
