// Table I: parameter configurations of init_cwnd and init_pacing for each
// comparison scheme, with the resolved values for a concrete connection.
#include <cstdio>

#include "bench_common.h"
#include "core/init_config.h"

using namespace wira;
using namespace wira::core;

int main() {
  std::printf("Table I: scheme configuration matrix\n");
  exp::Table t({"scheme", "init_cwnd", "init_pacing"});
  t.row({"Baseline", "init_cwnd_exp", "init_cwnd/init_RTT_exp"});
  t.row({"Wira(FF)", "FF_Size", "init_cwnd/init_RTT_exp"});
  t.row({"Wira(Hx)", "BDP", "MaxBW"});
  t.row({"Wira", "min{FF_Size, BDP}", "MaxBW"});
  t.print();

  exp::banner("Resolved values: FF_Size = 66 KB, cookie = {MinRTT 50 ms, "
              "MaxBW 8 Mbps, fresh}");
  ExperiencedDefaults defaults;
  HxQosRecord cookie;
  cookie.min_rtt = milliseconds(50);
  cookie.max_bw = mbps(8);
  cookie.server_timestamp = 0;

  InitInputs in;
  in.ff_size = 66'000;
  in.hx_qos = cookie;
  in.now = minutes(5);

  exp::Table r({"scheme", "init_cwnd (KB)", "init_pacing (Mbps)",
                "uses FF", "uses Hx"});
  for (Scheme s : {Scheme::kBaseline, Scheme::kWiraFF, Scheme::kWiraHx,
                   Scheme::kWira}) {
    const InitDecision d = compute_init(s, in, defaults);
    r.row({scheme_name(s),
           fmt(static_cast<double>(d.init_cwnd) / 1000.0),
           fmt(to_mbps(d.init_pacing)),
           d.used_ff_size ? "yes" : "no",
           d.used_hx_qos ? "yes" : "no"});
  }
  r.print();

  exp::banner("Corner cases (§IV-C)");
  exp::Table c({"case", "init_cwnd (KB)", "init_pacing (Mbps)"});
  {
    InitInputs cc1 = in;
    cc1.ff_size = std::nullopt;  // FF_Size not parsed yet
    const auto d = compute_init(Scheme::kWira, cc1, defaults);
    c.row({"1: FF pending (init_cwnd_exp substitutes)",
           fmt(static_cast<double>(d.init_cwnd) / 1000.0),
           fmt(to_mbps(d.init_pacing))});
  }
  {
    InitInputs cc2 = in;
    cc2.now = minutes(61);  // cookie older than Delta = 60 min
    const auto d = compute_init(Scheme::kWira, cc2, defaults);
    c.row({"2: stale cookie (FF_Size / init_RTT_exp)",
           fmt(static_cast<double>(d.init_cwnd) / 1000.0),
           fmt(to_mbps(d.init_pacing))});
  }
  c.print();
  return 0;
}
