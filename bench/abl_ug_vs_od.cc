// Ablation A8: user-group initialization vs OD-pair history.
//
// The paper's central motivation (§II-C/§II-D): per-user-group estimates
// (as used by ML/DRL initializers like TCP-DRL) disperse with CV ~36%/52%
// within a group, while the same OD pair re-measured disperses only
// ~10%/27% — so group-level initialization systematically mis-sizes
// individual flows.  This bench makes that argument executable: the
// kUserGroup scheme initializes every flow from its group's average QoS;
// Wira initializes from the flow's own history.
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  auto cfg = bench::default_population(args);
  cfg.schemes = {core::Scheme::kBaseline, core::Scheme::kUserGroup,
                 core::Scheme::kWiraHx, core::Scheme::kWira};
  std::printf("Ablation: group-average vs OD-history initialization "
              "(%zu paired sessions)\n", cfg.sessions);
  const auto records = bench::run_with_obs(cfg, args);

  Table t(bench::kFfctHeaders);
  const Samples base = collect_ffct(records, core::Scheme::kBaseline);
  for (auto scheme : cfg.schemes) {
    const Samples s = collect_ffct(records, scheme);
    t.row(bench::ffct_row(core::scheme_name(scheme), s, base.mean()));
  }
  t.print();

  // Where the UG scheme hurts: flows whose own conditions sit far from
  // their group's average.
  banner("By |flow bandwidth - group mean| (UG mis-initialization)");
  Table d({"deviation", "n", "UserGroup (ms)", "Wira (ms)", "Wira vs UG"});
  struct Bucket {
    const char* name;
    double lo, hi;
  };
  for (const Bucket b : {Bucket{"within 25%", 0.0, 0.25},
                         Bucket{"25-75% off", 0.25, 0.75},
                         Bucket{">75% off", 0.75, 100.0}}) {
    auto filt = [&](const SessionRecord& r) {
      const auto it = r.results.find(core::Scheme::kUserGroup);
      if (it == r.results.end()) return false;
      const double flow = to_mbps(r.conditions.max_bw);
      const double group = to_mbps(it->second.init.init_pacing);
      if (group <= 0) return false;
      const double dev = std::abs(flow - group) / group;
      return dev > b.lo && dev <= b.hi;
    };
    const Samples ug = collect_ffct(records, core::Scheme::kUserGroup, filt);
    const Samples wira = collect_ffct(records, core::Scheme::kWira, filt);
    if (ug.count() < 3) {
      d.row({b.name, std::to_string(ug.count()), "-", "-", "-"});
      continue;
    }
    d.row({b.name, std::to_string(ug.count()), fmt(ug.mean()),
           fmt(wira.mean()), fmt_gain(ug.mean(), wira.mean())});
  }
  d.print();
  bench::print_phase_breakdown(records);
  std::printf("(per-flow OD history beats the group average exactly where "
              "the group is heterogeneous — the paper's §II-C argument)\n");
  return 0;
}
