// Figure 1: diverse first-frame sizes in the live-stream corpus.
//
// Paper anchors (§II-A, 100M+ production streams): mean FF_Size 43.1 KB;
// ~30% of streams below 30 KB; 20% above 60 KB; range ~6-250 KB.
// Fig. 1(b): one stream sampled every 5 s varies between ~45 and ~130 KB.
#include <cstdio>

#include "bench_common.h"
#include "media/stream_source.h"

using namespace wira;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const size_t streams = std::max<size_t>(args.sessions * 20, 2000);

  std::printf("Figure 1(a): inter-stream FF_Size distribution "
              "(%zu synthetic streams)\n", streams);
  Rng rng(args.seed);
  Samples ff_kb;
  for (size_t i = 0; i < streams; ++i) {
    media::StreamProfile p = media::sample_stream_profile(rng, i);
    media::LiveStream s(p, args.seed * 100 + 1);
    ff_kb.add(static_cast<double>(s.first_frame_size(0, 1)) / 1000.0);
  }

  exp::Table t({"metric", "measured", "paper"});
  t.row({"mean (KB)", fmt(ff_kb.mean()), "43.1"});
  t.row({"CDF @30KB", fmt(100 * [&] {
           size_t c = 0;
           for (double v : ff_kb.values()) c += v < 30.0;
           return static_cast<double>(c) / ff_kb.count();
         }(), 1) + "%", "~30%"});
  t.row({"p80 (KB)", fmt(ff_kb.percentile(80)), ">60"});
  t.row({"min (KB)", fmt(ff_kb.min()), "~6"});
  t.row({"max (KB)", fmt(ff_kb.max()), "~250"});
  t.print();

  exp::banner("Fig. 1(a) CDF");
  exp::Table cdf({"FF_Size (KB)", "CDF"});
  Histogram h(0, 260, 52);
  for (double v : ff_kb.values()) h.add(v);
  for (double x : {10.0, 20.0, 30.0, 45.0, 60.0, 80.0, 100.0, 150.0, 250.0}) {
    cdf.row({fmt(x, 0), fmt(100 * h.cdf(x)) + "%"});
  }
  cdf.print();

  exp::banner("Fig. 1(b): intra-stream FF_Size vs viewing time (one "
              "high-complexity stream, 5 s steps)");
  media::StreamProfile p;
  p.stream_id = 42;
  p.iframe_mean_bytes = 80'000;
  p.iframe_intra_cv = 0.30;
  media::LiveStream s(p, args.seed);
  exp::Table tl({"t (s)", "FF_Size (KB)"});
  Samples intra;
  for (int k = 0; k <= 60; k += 5) {
    const double kb =
        static_cast<double>(s.first_frame_size(seconds(k), 1)) / 1000.0;
    intra.add(kb);
    tl.row({std::to_string(k), fmt(kb)});
  }
  tl.print();
  std::printf("intra-stream range: %.1f - %.1f KB (paper: 45-130 KB)\n",
              intra.min(), intra.max());
  return 0;
}
