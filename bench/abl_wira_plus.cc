// Ablation A9: Wira+ — loss-aware pacing (an extension beyond the paper).
//
// The transport cookie gains a loss-rate triple (HxId::kLossRate); Wira+
// discounts init_pacing by up to 30% on historically lossy paths so the
// first frame keeps recovery headroom instead of running flat out into a
// drop.  Evaluated on a lossier-than-default population split by
// historical loss.
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  auto cfg = bench::default_population(args);
  cfg.schemes = {core::Scheme::kBaseline, core::Scheme::kWira,
                 core::Scheme::kWiraPlus};
  std::printf("Ablation: loss-aware Wira+ (%zu paired sessions)\n",
              cfg.sessions);
  const auto records = bench::run_with_obs(cfg, args);

  Table t({"scheme", "FFCT avg (ms)", "FFCT p90", "FFLR avg", "FFLR p90"});
  for (auto scheme : cfg.schemes) {
    const Samples f = collect_ffct(records, scheme);
    const Samples l = collect_fflr(records, scheme);
    t.row({core::scheme_name(scheme), fmt(f.mean()), fmt(f.percentile(90)),
           fmt(100 * l.mean()) + "%", fmt(100 * l.percentile(90)) + "%"});
  }
  t.print();

  banner("Split by the path's true loss rate");
  Table s({"loss bucket", "n", "Wira (ms)", "Wira+ (ms)", "delta",
           "Wira FFLR", "Wira+ FFLR"});
  struct B { const char* name; double lo, hi; };
  for (const B b : {B{"<1%", -1, 0.01}, B{"1-3%", 0.01, 0.03},
                    B{">3%", 0.03, 1.0}}) {
    auto filt = [&](const SessionRecord& r) {
      return r.conditions.loss_rate > b.lo && r.conditions.loss_rate <= b.hi;
    };
    const Samples w = collect_ffct(records, core::Scheme::kWira, filt);
    const Samples wp = collect_ffct(records, core::Scheme::kWiraPlus, filt);
    const Samples wl = collect_fflr(records, core::Scheme::kWira, filt);
    const Samples wpl =
        collect_fflr(records, core::Scheme::kWiraPlus, filt);
    if (w.count() < 3) {
      s.row({b.name, std::to_string(w.count()), "-", "-", "-", "-", "-"});
      continue;
    }
    s.row({b.name, std::to_string(w.count()), fmt(w.mean()), fmt(wp.mean()),
           fmt_gain(w.mean(), wp.mean()), fmt(100 * wl.mean()) + "%",
           fmt(100 * wpl.mean()) + "%"});
  }
  s.print();
  bench::print_phase_breakdown(records);
  std::printf("(the discount should pay off only where history predicts "
              "loss; elsewhere it just slows the frame)\n");
  return 0;
}
