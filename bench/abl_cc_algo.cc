// Ablation A5: congestion-control choice under Wira initialization.
//
// The paper deploys on BBRv1 ("we select the BBR (with version 1) scheme
// to support the above-parameter configurations").  This bench checks how
// much of Wira's benefit survives on a loss-based controller (NewReno):
// the init_cwnd part transfers, the pacing part matters less because
// NewReno is window-clocked.
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("Ablation: congestion controller under Wira, %zu sessions "
              "per point\n", args.sessions / 2);

  Table t({"cc", "Baseline (ms)", "Wira (ms)", "gain", "Baseline p90",
           "Wira p90"});
  std::vector<SessionRecord> all_records;
  for (auto algo : {cc::CcAlgo::kBbrV1, cc::CcAlgo::kCubic, cc::CcAlgo::kNewReno}) {
    PopulationConfig cfg;
    cfg.sessions = args.sessions / 2;
    cfg.seed = args.seed;
    cfg.cc_algo = algo;
    cfg.schemes = {core::Scheme::kBaseline, core::Scheme::kWira};
    const auto records = bench::run_with_obs(cfg, args);
    all_records.insert(all_records.end(), records.begin(), records.end());
    const Samples base = collect_ffct(records, core::Scheme::kBaseline);
    const Samples wira = collect_ffct(records, core::Scheme::kWira);
    t.row({algo == cc::CcAlgo::kBbrV1 ? "BBRv1"
           : algo == cc::CcAlgo::kCubic ? "CUBIC" : "NewReno",
           fmt(base.mean()), fmt(wira.mean()),
           fmt_gain(base.mean(), wira.mean()),
           fmt(base.percentile(90)), fmt(wira.percentile(90))});
  }
  t.print();
  bench::print_phase_breakdown(all_records);
  std::printf("(pacing-based BBR benefits most from Eq. 2, as the paper "
              "argues in §II-B)\n");
  return 0;
}
