// Ablation A7: container generality of Frame Perception.
//
// The paper's prototype parses HTTP-FLV; PtlSet also names HLS and RTMP.
// This library additionally parses HLS-style MPEG-TS.  The bench runs the
// same population over both containers: Wira's benefit should carry over,
// with TS paying its fixed packetization overhead (188-byte cells) and
// the later first-frame boundary (an access unit ends only when the next
// one starts).
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("Ablation: container (HTTP-FLV vs HLS-TS), %zu sessions "
              "per point\n", args.sessions / 2);

  Table t({"container", "avg FF (KB)", "Baseline (ms)", "Wira (ms)",
           "gain"});
  std::vector<SessionRecord> all_records;
  for (auto container : {media::Container::kFlv, media::Container::kMpegTs}) {
    PopulationConfig cfg;
    cfg.sessions = args.sessions / 2;
    cfg.seed = args.seed;
    cfg.container = container;
    cfg.schemes = {core::Scheme::kBaseline, core::Scheme::kWira};
    const auto records = bench::run_with_obs(cfg, args);
    all_records.insert(all_records.end(), records.begin(), records.end());

    Samples ff_kb;
    for (const auto& r : records) {
      if (r.ff_size) ff_kb.add(static_cast<double>(r.ff_size) / 1000.0);
    }
    const Samples base = collect_ffct(records, core::Scheme::kBaseline);
    const Samples wira = collect_ffct(records, core::Scheme::kWira);
    t.row({container == media::Container::kFlv ? "HTTP-FLV" : "HLS-TS",
           fmt(ff_kb.mean()), fmt(base.mean()), fmt(wira.mean()),
           fmt_gain(base.mean(), wira.mean())});
  }
  t.print();
  bench::print_phase_breakdown(all_records);
  std::printf("(Frame Perception generalizes beyond the paper's FLV "
              "prototype)\n");
  return 0;
}
