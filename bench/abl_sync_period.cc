// Ablation A3: the Hx_QoS synchronization period (§IV-B, default 3 s).
//
// Shorter periods push fresher cookies at the cost of more Hx_QoS packets
// on the wire; longer periods risk ending a session before any cookie was
// delivered (short viewing sessions then arrive cookie-less next time).
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("Ablation: Hx_QoS sync period sweep, %zu sessions per "
              "point (session length ~8 s)\n", args.sessions / 2);

  Table t({"period (s)", "syncs/session", "clients w/ cookie",
           "Wira avg (ms)"});
  std::vector<SessionRecord> all_records;
  for (int period_s : {1, 3, 10, 30}) {
    PopulationConfig cfg;
    cfg.sessions = args.sessions / 2;
    cfg.seed = args.seed;
    cfg.sync_period = seconds(period_s);
    cfg.schemes = {core::Scheme::kWira};
    const auto records = bench::run_with_obs(cfg, args);
    all_records.insert(all_records.end(), records.begin(), records.end());

    Samples syncs, ffct;
    size_t with_cookie = 0, total = 0;
    for (const auto& r : records) {
      const auto& res = r.results.at(core::Scheme::kWira);
      if (!res.first_frame_completed) continue;
      total++;
      syncs.add(static_cast<double>(res.cookies_synced));
      with_cookie += res.client_cookies_received > 0;
      ffct.add(to_ms(res.ffct));
    }
    t.row({std::to_string(period_s), fmt(syncs.mean()),
           fmt(100.0 * with_cookie / std::max<size_t>(total, 1)) + "%",
           fmt(ffct.mean())});
  }
  t.print();
  bench::print_phase_breakdown(all_records);
  std::printf("(3 s keeps per-session overhead at a couple of small "
              "packets while guaranteeing even short sessions leave a "
              "cookie behind)\n");
  return 0;
}
