// Ablation A10: flash-crowd contention on a shared edge uplink.
//
// The population benches run sessions in isolation; production edges
// serve many concurrent joins.  This bench sweeps crowd size on a shared
// 25 Mbps uplink: per-flow initialization (sized to each viewer's access
// link) should degrade more gracefully than the fleet-constant baseline,
// whose joint burst over/under-shoots the shared queue.
#include <cstdio>
#include <memory>
#include <vector>

#include "app/edge.h"
#include "app/player_client.h"
#include "bench_common.h"
#include "obs/phase_timeline.h"
#include "sim/topology.h"

using namespace wira;

namespace {

struct CrowdResult {
  Samples ffct_ms;
  double uplink_loss = 0;
  /// Client-side phase decompositions of the completed sessions.  This
  /// harness drives raw PlayerClients (no per-session server tracer), so
  /// the server-side boundaries are unknown and handshake/origin_fetch/
  /// ff_parse clamp to zero: wait before the first video byte shows up as
  /// delivery, the rest as frame_recv.
  std::vector<exp::SessionResult> sessions;
};

CrowdResult run_crowd(core::Scheme scheme, int viewers, uint64_t seed) {
  sim::EventLoop loop;
  sim::LinkConfig egress;
  egress.rate = mbps(25);
  egress.delay = milliseconds(5);
  egress.buffer_bytes = 256 * 1024;
  sim::SharedBottleneck net(loop, egress, seed);

  media::StreamProfile profile;
  profile.iframe_mean_bytes = 55'000;
  media::LiveStream stream(profile, 99);

  app::ServerConfig base;
  base.scheme = scheme;
  base.master_key = crypto::key_from_string("edge");
  app::WiraEdge edge(loop, stream, base);
  net.set_server_receiver([&edge](std::span<sim::Datagram> batch) {
    for (sim::Datagram& d : batch) edge.on_datagram(d.payload);
  });

  struct Viewer {
    std::unique_ptr<app::PlayerClient> client;
    app::ClientCache cache;
  };
  std::vector<Viewer> crowd(static_cast<size_t>(viewers));
  Rng rng(seed * 17 + 3);
  for (int i = 0; i < viewers; ++i) {
    Viewer& v = crowd[static_cast<size_t>(i)];
    sim::LinkConfig access;
    access.rate = mbps_f(rng.uniform(6, 20));
    access.delay = from_seconds(rng.uniform(0.015, 0.05));
    access.buffer_bytes = 96 * 1024;
    access.loss.loss_rate = rng.uniform(0.0, 0.01);
    const size_t leg = net.add_leg(access);

    const quic::ConnectionId id = 100 + static_cast<uint64_t>(i);
    const uint64_t od_key = core::od_pair_key(id, 7, 0);
    auto& server = edge.add_session(
        id,
        [&net, leg](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          net.send_to_client(leg, std::move(dg));
        },
        od_key);
    app::ClientConfig ccfg;
    ccfg.client_id = id;
    ccfg.server_id = 7;
    ccfg.conn_id = id;
    v.client = std::make_unique<app::PlayerClient>(
        loop, ccfg, v.cache, [&net, leg](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          net.send_to_server(leg, std::move(dg));
        });
    net.set_client_receiver(
        leg, [c = v.client.get()](std::span<sim::Datagram> batch) {
          for (sim::Datagram& d : batch) c->on_datagram(d.payload);
        });
    v.cache.server_configs[7] = server.server_config_id();
    core::CookieSealer sealer(crypto::key_from_string("edge"));
    core::HxQosRecord rec;
    rec.min_rtt = access.delay * 2 + milliseconds(10);
    rec.max_bw = access.rate;
    rec.server_timestamp = 0;
    rec.od_key = od_key;
    v.cache.cookies.store(od_key, sealer.seal(rec), 0);

    loop.schedule_at(seconds(1) + from_seconds(rng.uniform(0.0, 2.0)),
                     [c = v.client.get()] { c->start(); });
  }

  loop.run_until(seconds(15));

  CrowdResult out;
  for (const auto& v : crowd) {
    const auto& m = v.client->metrics();
    if (m.first_frame_done()) {
      out.ffct_ms.add(to_ms(m.ffct()));
      obs::FfctBoundaries b;
      b.request_sent = m.request_sent_at;
      b.first_byte_received = m.first_frame_byte_at != kNoTime
                                  ? m.first_frame_byte_at
                                  : m.first_byte_at;
      b.first_frame_complete = m.frame_complete_at[0];
      exp::SessionResult sr;
      sr.first_frame_completed = true;
      sr.ffct = m.ffct();
      sr.phases = obs::ffct_phases(b);
      out.sessions.push_back(std::move(sr));
    }
  }
  const auto& st = net.egress().stats();
  const double total = static_cast<double>(
      st.delivered_packets + st.queue_drops + st.wire_drops);
  out.uplink_loss =
      total > 0 ? static_cast<double>(st.queue_drops + st.wire_drops) / total
                : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = wira::bench::parse_args(argc, argv);
  const int repeats = std::max<int>(3, static_cast<int>(args.sessions) / 80);
  std::printf("Ablation: flash-crowd contention on a 25 Mbps shared "
              "uplink (%d repeats per point)\n\n", repeats);

  exp::Table t({"viewers", "Baseline avg/max (ms)", "Wira avg/max (ms)",
                "avg gain", "uplink loss B/W"});
  std::vector<exp::SessionResult> base_sessions, wira_sessions;
  for (int viewers : {2, 4, 8, 16}) {
    Samples base_ffct, wira_ffct;
    double base_loss = 0, wira_loss = 0;
    for (int r = 0; r < repeats; ++r) {
      auto b = run_crowd(core::Scheme::kBaseline, viewers,
                         args.seed + static_cast<uint64_t>(r));
      auto w = run_crowd(core::Scheme::kWira, viewers,
                         args.seed + static_cast<uint64_t>(r));
      base_ffct.add_all(b.ffct_ms.values());
      wira_ffct.add_all(w.ffct_ms.values());
      base_loss += b.uplink_loss / repeats;
      wira_loss += w.uplink_loss / repeats;
      for (auto& s : b.sessions) base_sessions.push_back(std::move(s));
      for (auto& s : w.sessions) wira_sessions.push_back(std::move(s));
    }
    t.row({std::to_string(viewers),
           fmt(base_ffct.mean()) + " / " + fmt(base_ffct.max()),
           fmt(wira_ffct.mean()) + " / " + fmt(wira_ffct.max()),
           fmt_gain(base_ffct.mean(), wira_ffct.mean()),
           fmt(100 * base_loss, 2) + "% / " + fmt(100 * wira_loss, 2) + "%"});
  }
  t.print();
  {
    auto ptrs = [](const std::vector<exp::SessionResult>& v) {
      std::vector<const exp::SessionResult*> p;
      p.reserve(v.size());
      for (const auto& s : v) p.push_back(&s);
      return p;
    };
    exp::banner("FFCT phase breakdown (ms; client-side view — server "
                "phases read as 0)");
    exp::ffct_phase_table({{"baseline", ptrs(base_sessions)},
                           {"wira", ptrs(wira_sessions)}})
        .print();
  }
  std::printf("(per-flow initialization keeps the joint startup burst "
              "proportional to each viewer's access capacity)\n");
  return 0;
}
