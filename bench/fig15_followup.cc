// Figure 15: influence on follow-up frame transmissions (video frames
// 1-4 since the request).
//
// Paper anchors: Wira reduces FFCT from 158.5 to 142.0 ms while frames
// 2-4 complete at 150.3 / 151.6 / 157.9 ms — stable 10.9-13.0%
// optimizations, i.e. first-frame gains do not slow the follow-ups.
// Follow-up frame loss stays 6.7-7.1% under Wira vs 9.0-9.2% baseline.
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  auto cfg = bench::default_population(args);
  std::printf("Figure 15: follow-up frames 1-4 (%zu paired sessions)\n",
              cfg.sessions);
  const auto records = bench::run_with_obs(cfg, args);

  auto frame_stats = [&](core::Scheme scheme, uint32_t frame_idx) {
    Samples completion, loss;
    for (const auto& r : records) {
      auto it = r.results.find(scheme);
      if (it == r.results.end()) continue;
      const auto& frames = it->second.frames;
      if (frame_idx >= frames.size()) continue;
      if (frames[frame_idx].completion == kNoTime) continue;
      completion.add(to_ms(frames[frame_idx].completion));
      loss.add(frames[frame_idx].loss_rate);
    }
    return std::make_pair(completion, loss);
  };

  banner("Completion time of video frames 1-4 (ms since request)");
  Table t({"frame", "Baseline", "Wira", "gain", "paper(Wira)"});
  const char* paper[] = {"142.0", "150.3", "151.6", "157.9"};
  for (uint32_t f = 0; f < 4; ++f) {
    const auto [bc, bl] = frame_stats(core::Scheme::kBaseline, f);
    const auto [wc, wl] = frame_stats(core::Scheme::kWira, f);
    t.row({std::to_string(f + 1), fmt(bc.mean()), fmt(wc.mean()),
           fmt_gain(bc.mean(), wc.mean()), paper[f]});
  }
  t.print();
  std::printf("(paper: stable 10.9-13.0%% gains across frames 1-4)\n");

  banner("Per-frame loss rate");
  Table l({"frame", "Baseline", "Wira", "paper"});
  for (uint32_t f = 0; f < 4; ++f) {
    const auto [bc, bl] = frame_stats(core::Scheme::kBaseline, f);
    const auto [wc, wl] = frame_stats(core::Scheme::kWira, f);
    l.row({std::to_string(f + 1), fmt(100 * bl.mean()) + "%",
           fmt(100 * wl.mean()) + "%",
           f == 0 ? "8.8% -> 6.4%" : "~9.0% -> ~6.9%"});
  }
  l.print();
  bench::print_phase_breakdown(records);
  std::printf("(paper: no significant negative effect on follow-up "
              "frames)\n");
  return 0;
}
