// Figure 13: FFCT benefits under different first-frame and network
// conditions, bucketed by FF_Size (a), MinRTT (b), MaxBW (c) and
// retransmission ratio (d).
//
// Paper anchors: (a) gains grow with FF_Size: -4.1% for (30,50] KB but
// -20.2% for (80,150] KB, where Wira(FF) beats Wira(Hx); (b) -6.6..-12.7%
// below 100 ms MinRTT, deteriorating above; (c) best at (10,20] Mbps
// (-9.4%), <2.8% below 10 Mbps; (d) -8.6..-17.2% for retransmission ratio
// (1,10]%.
#include <cstdio>
#include <functional>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

namespace {

using Filter = std::function<bool(const SessionRecord&)>;

void bucket_table(const std::vector<SessionRecord>& records,
                  const std::vector<std::pair<std::string, Filter>>& buckets,
                  const std::string& title) {
  banner(title);
  Table t({"bucket", "n", "Baseline", "Wira(FF)", "Wira(Hx)", "Wira",
           "Wira gain"});
  for (const auto& [name, filter] : buckets) {
    const Samples base =
        collect_ffct(records, core::Scheme::kBaseline, filter);
    const Samples ff = collect_ffct(records, core::Scheme::kWiraFF, filter);
    const Samples hx = collect_ffct(records, core::Scheme::kWiraHx, filter);
    const Samples wira = collect_ffct(records, core::Scheme::kWira, filter);
    if (base.count() < 3) {
      t.row({name, std::to_string(base.count()), "-", "-", "-", "-", "-"});
      continue;
    }
    t.row({name, std::to_string(base.count()), fmt(base.mean()),
           fmt(ff.mean()), fmt(hx.mean()), fmt(wira.mean()),
           fmt_gain(base.mean(), wira.mean())});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  auto cfg = bench::default_population(args);
  std::printf("Figure 13: FFCT benefits by condition "
              "(%zu paired sessions; avg FFCT in ms)\n", cfg.sessions);
  const auto records = bench::run_with_obs(cfg, args);

  auto ff_bucket = [](double lo_kb, double hi_kb) {
    return Filter([lo_kb, hi_kb](const SessionRecord& r) {
      const double kb = static_cast<double>(r.ff_size) / 1000.0;
      return kb > lo_kb && kb <= hi_kb;
    });
  };
  bucket_table(records,
               {{"(0,30] KB", ff_bucket(0, 30)},
                {"(30,50] KB", ff_bucket(30, 50)},
                {"(50,80] KB", ff_bucket(50, 80)},
                {"(80,150] KB", ff_bucket(80, 150)},
                {"(150,250] KB", ff_bucket(150, 250)}},
               "Fig. 13(a): by FF_Size (paper: -4.1% at (30,50], -20.2% at "
               "(80,150], Wira(FF) < Wira(Hx) for large frames)");

  auto rtt_bucket = [](double lo_ms, double hi_ms) {
    return Filter([lo_ms, hi_ms](const SessionRecord& r) {
      const double ms = to_ms(r.conditions.min_rtt);
      return ms > lo_ms && ms <= hi_ms;
    });
  };
  bucket_table(records,
               {{"(0,50] ms", rtt_bucket(0, 50)},
                {"(50,100] ms", rtt_bucket(50, 100)},
                {"(100,200] ms", rtt_bucket(100, 200)},
                {"(200,800] ms", rtt_bucket(200, 800)}},
               "Fig. 13(b): by MinRTT (paper: -6.6..-12.7% below 100 ms, "
               "worse above)");

  auto bw_bucket = [](double lo, double hi) {
    return Filter([lo, hi](const SessionRecord& r) {
      const double m = to_mbps(r.conditions.max_bw);
      return m > lo && m <= hi;
    });
  };
  bucket_table(records,
               {{"(0,10] Mbps", bw_bucket(0, 10)},
                {"(10,20] Mbps", bw_bucket(10, 20)},
                {"(20,60] Mbps", bw_bucket(20, 60)}},
               "Fig. 13(c): by MaxBW (paper: <2.8% below 10 Mbps, -9.4% at "
               "(10,20], -4.9% at (20,60])");

  auto retx_bucket = [](double lo, double hi) {
    return Filter([lo, hi](const SessionRecord& r) {
      auto it = r.results.find(core::Scheme::kBaseline);
      if (it == r.results.end()) return false;
      const double pct = 100 * it->second.retransmission_ratio;
      return pct > lo && pct <= hi;
    });
  };
  bucket_table(records,
               {{"[0,1]%", retx_bucket(-1, 1)},
                {"(1,5]%", retx_bucket(1, 5)},
                {"(5,10]%", retx_bucket(5, 10)},
                {"(10,30]%", retx_bucket(10, 30)}},
               "Fig. 13(d): by baseline retransmission ratio (paper: "
               "-8.6..-17.2% in (1,10]%)");
  bench::print_phase_breakdown(records);
  return 0;
}
