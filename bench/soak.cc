// Bounded-memory soak: the million-session endurance run (DESIGN.md §6).
//
// Streams the population sweep through an exp::AggregateSink instead of
// collecting records, so memory stays O(workers) no matter how many
// sessions run.  Every --flush-every sessions the sink emits one
// cumulative JSONL summary line (with the current RSS injected) and the
// bench samples resident-set size from /proc/self/status; the final JSON
// reports peak_rss_mb and rss_plateau = max(late-half RSS samples) /
// max(early-half RSS samples) — a flat plateau (~1.0) is the measured
// form of "bounded memory".  Links the operator-new hook so
// allocs_per_session is reported from the same run.
//
// The headline invocation (ROADMAP: 1M sessions, ~4h serial on one core):
//   ./bench/soak --sessions 1000000 --flush-every 10000
//
// Live progress goes to stderr; flush lines go to --flush-out (default
// soak_flush.jsonl); the final JSON goes to stdout.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "exp/record_sink.h"
#include "obs/rss.h"
#include "util/alloc_stats.h"

using namespace wira;
using exp::AggregateSink;
using exp::PopulationConfig;

namespace {

struct SoakArgs {
  size_t sessions = 20'000;
  size_t flush_every = 10'000;
  uint64_t seed = 1;
  size_t threads = 1;
  size_t procs = 1;
  size_t chunk = 64;     ///< dispatch chunk; 0 = static striping
  std::string workers;   ///< comma-separated wira_workerd endpoints
  std::string flush_out = "soak_flush.jsonl";
  std::string anomaly_dir;
  uint64_t anomaly_ffct_ms = 0;  ///< 0 = FFCT trigger disabled
};

[[noreturn]] void soak_usage(const char* prog, const char* msg) {
  std::fprintf(stderr,
               "error: %s\nusage: %s [sessions] [seed] [--sessions N] "
               "[--flush-every N] [--seed N] [--threads N] [--procs N] "
               "[--chunk N] [--workers host:port,...] "
               "[--flush-out FILE] [--anomaly-dir DIR] "
               "[--anomaly-ffct-ms N]\n",
               msg, prog);
  std::exit(2);
}

SoakArgs parse_soak_args(int argc, char** argv) {
  SoakArgs a;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    uint64_t v = 0;
    if (const char* val = bench::flag_value("--sessions", argc, argv, &i)) {
      if (!bench::parse_u64(val, &v) || v == 0) {
        soak_usage(argv[0], "--sessions must be a positive integer");
      }
      a.sessions = static_cast<size_t>(v);
      continue;
    }
    if (const char* val =
            bench::flag_value("--flush-every", argc, argv, &i)) {
      if (!bench::parse_u64(val, &v) || v == 0) {
        soak_usage(argv[0], "--flush-every must be a positive integer");
      }
      a.flush_every = static_cast<size_t>(v);
      continue;
    }
    if (const char* val = bench::flag_value("--seed", argc, argv, &i)) {
      if (!bench::parse_u64(val, &v) || v == 0) {
        soak_usage(argv[0], "--seed must be a positive integer");
      }
      a.seed = v;
      continue;
    }
    if (const char* val = bench::flag_value("--threads", argc, argv, &i)) {
      if (!bench::parse_u64(val, &v)) {
        soak_usage(argv[0], "--threads must be a non-negative integer");
      }
      a.threads = static_cast<size_t>(v);
      continue;
    }
    if (const char* val = bench::flag_value("--procs", argc, argv, &i)) {
      if (!bench::parse_u64(val, &v)) {
        soak_usage(argv[0], "--procs must be a non-negative integer");
      }
      a.procs = static_cast<size_t>(v);
      continue;
    }
    if (const char* val = bench::flag_value("--chunk", argc, argv, &i)) {
      if (!bench::parse_u64(val, &v)) {
        soak_usage(argv[0], "--chunk must be a non-negative integer "
                            "(0 = static striping)");
      }
      a.chunk = static_cast<size_t>(v);
      continue;
    }
    if (const char* val = bench::flag_value("--workers", argc, argv, &i)) {
      if (*val == '\0') {
        soak_usage(argv[0], "--workers needs host:port,...");
      }
      a.workers = val;
      continue;
    }
    if (const char* val = bench::flag_value("--flush-out", argc, argv, &i)) {
      if (*val == '\0') soak_usage(argv[0], "--flush-out needs a path");
      a.flush_out = val;
      continue;
    }
    if (const char* val =
            bench::flag_value("--anomaly-dir", argc, argv, &i)) {
      if (*val == '\0') soak_usage(argv[0], "--anomaly-dir needs a path");
      a.anomaly_dir = val;
      continue;
    }
    if (const char* val =
            bench::flag_value("--anomaly-ffct-ms", argc, argv, &i)) {
      if (!bench::parse_u64(val, &v) || v == 0) {
        soak_usage(argv[0], "--anomaly-ffct-ms must be a positive integer");
      }
      a.anomaly_ffct_ms = v;
      continue;
    }
    switch (positional++) {
      case 0:
        if (!bench::parse_u64(argv[i], &v) || v == 0) {
          soak_usage(argv[0], "sessions must be a positive integer");
        }
        a.sessions = static_cast<size_t>(v);
        break;
      case 1:
        if (!bench::parse_u64(argv[i], &v) || v == 0) {
          soak_usage(argv[0], "seed must be a positive integer");
        }
        a.seed = v;
        break;
      default:
        soak_usage(argv[0], "too many positional arguments");
    }
  }
  return a;
}

/// Per-flush observer: samples RSS (also injected into the flush line)
/// and repaints the live progress line on stderr.
struct SoakMonitor {
  size_t total_sessions = 0;
  std::chrono::steady_clock::time_point start;
  std::vector<double> rss_mb;  ///< one sample per flush, in flush order
  /// Live chunk-scheduler telemetry (updated in place by the dispatcher;
  /// the flush hook runs inline in the same parent loop, so reads are
  /// race-free).  workers_spawned == 0 means no dispatcher ran.
  exp::DispatchStats dispatch;
};

void on_flush(uint64_t sessions_done, std::string* extra, void* arg) {
  auto* m = static_cast<SoakMonitor*>(arg);
  // Monostate contract (obs/rss.h): an unavailable reading is skipped —
  // no sample recorded, no "rss_mb" field — so rss_plateau never sees a
  // fabricated zero.
  const std::optional<uint64_t> rss = obs::current_rss_bytes();
  if (rss.has_value()) {
    const double mb = static_cast<double>(*rss) / 1e6;
    m->rss_mb.push_back(mb);
    char buf[48];
    std::snprintf(buf, sizeof buf, ",\"rss_mb\":%.1f", mb);
    *extra += buf;
  }
  // Chunk-scheduler telemetry rides every flush line when a dispatcher is
  // driving the sweep (--procs > 1 or --workers): per-worker completed
  // chunk counts plus the busy-worker high-watermark.  wira_exporterd
  // turns these into wira_dispatch_* Prometheus families.
  if (m->dispatch.workers_spawned > 0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, ",\"dispatch\":{\"busy\":%zu,\"chunks\":{",
                  m->dispatch.busy_workers);
    *extra += buf;
    for (size_t w = 0; w < m->dispatch.chunks_completed.size(); ++w) {
      std::snprintf(buf, sizeof buf, "%s\"%zu\":%llu", w == 0 ? "" : ",", w,
                    static_cast<unsigned long long>(
                        m->dispatch.chunks_completed[w]));
      *extra += buf;
    }
    *extra += "}}";
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    m->start)
          .count();
  std::fprintf(stderr,
               "\rsoak: %llu/%zu sessions (%.1f%%)  %.1f/s  rss %.1f MB   ",
               static_cast<unsigned long long>(sessions_done),
               m->total_sessions,
               100.0 * static_cast<double>(sessions_done) /
                   static_cast<double>(m->total_sessions),
               elapsed > 0 ? static_cast<double>(sessions_done) / elapsed
                           : 0.0,
               rss.has_value() ? static_cast<double>(*rss) / 1e6 : 0.0);
  std::fflush(stderr);
}

/// max(late-half samples) / max(early-half samples); 0 when there are too
/// few samples to split (callers treat 0 as "unavailable").
double rss_plateau(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const size_t half = samples.size() / 2;
  double early = 0.0, late = 0.0;
  for (size_t i = 0; i < half; ++i) early = std::max(early, samples[i]);
  for (size_t i = half; i < samples.size(); ++i) {
    late = std::max(late, samples[i]);
  }
  return early > 0 ? late / early : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const SoakArgs args = parse_soak_args(argc, argv);

  PopulationConfig cfg;
  cfg.sessions = args.sessions;
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  cfg.processes = args.procs;
  cfg.chunk = args.chunk;
  if (!args.workers.empty()) {
    size_t at = 0;
    while (at <= args.workers.size()) {
      const size_t comma = args.workers.find(',', at);
      const std::string endpoint =
          comma == std::string::npos ? args.workers.substr(at)
                                     : args.workers.substr(at, comma - at);
      if (endpoint.empty()) {
        std::fprintf(stderr, "error: --workers has an empty endpoint\n");
        return 2;
      }
      cfg.workers.push_back(endpoint);
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
  }
  cfg.anomaly_dir = args.anomaly_dir;
  if (args.anomaly_ffct_ms > 0) {
    cfg.anomaly_ffct =
        milliseconds(static_cast<int64_t>(args.anomaly_ffct_ms));
  }

  std::ofstream flush_stream(args.flush_out, std::ios::trunc);
  if (!flush_stream) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 args.flush_out.c_str());
    return 2;
  }

  SoakMonitor monitor;
  monitor.total_sessions = args.sessions;
  monitor.start = std::chrono::steady_clock::now();
  cfg.dispatch_stats = &monitor.dispatch;

  AggregateSink::Options opts;
  opts.flush_every = args.flush_every;
  opts.flush_out = &flush_stream;
  AggregateSink sink(opts);
  sink.set_flush_hook(&on_flush, &monitor);

  const uint64_t allocs_before = util::heap_alloc_count();
  exp::run_population(cfg, nullptr, sink);
  const uint64_t allocs = util::heap_alloc_count() - allocs_before;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    monitor.start)
          .count();
  std::fprintf(stderr, "\n");

  const double runs = static_cast<double>(args.sessions) *
                      static_cast<double>(cfg.schemes.size());
  const double peak_mb =
      static_cast<double>(obs::peak_rss_bytes().value_or(0)) / 1e6;
  std::string aggregate;
  {
    std::ostringstream os;
    sink.write_summary_line(os, /*final_line=*/true);
    aggregate = os.str();
    while (!aggregate.empty() && aggregate.back() == '\n') {
      aggregate.pop_back();
    }
  }

  std::printf(
      "{\n"
      "  \"bench\": \"soak\",\n"
      "  \"sessions\": %zu,\n"
      "  \"flush_every\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"threads\": %zu,\n"
      "  \"procs\": %zu,\n"
      "  \"hardware_concurrency\": %u,\n"
      "  \"elapsed_sec\": %.3f,\n"
      "  \"sessions_per_sec\": %.1f,\n"
      "  \"allocs_per_session\": %.1f,\n"
      "  \"peak_rss_mb\": %.1f,\n"
      "  \"rss_plateau\": %.4f,\n"
      "  \"rss_samples\": %zu,\n"
      "  \"flushes_written\": %llu,\n"
      "  \"aggregate\": %s\n"
      "}\n",
      args.sessions, args.flush_every,
      static_cast<unsigned long long>(args.seed), args.threads, args.procs,
      std::thread::hardware_concurrency(), elapsed,
      elapsed > 0 ? static_cast<double>(args.sessions) / elapsed : 0.0,
      allocs > 0 ? static_cast<double>(allocs) / runs : 0.0,
      peak_mb, rss_plateau(monitor.rss_mb), monitor.rss_mb.size(),
      static_cast<unsigned long long>(sink.flushes_written()),
      aggregate.c_str());
  return 0;
}
