// Microbenchmarks: crypto substrate (ChaCha20, Poly1305, AEAD seal/open).
#include <benchmark/benchmark.h>

#include "crypto/aead.h"
#include "crypto/chacha20.h"
#include "crypto/poly1305.h"

namespace {

using namespace wira::crypto;

void BM_ChaCha20Xor(benchmark::State& state) {
  const Key key = key_from_string("bench");
  const Nonce nonce = nonce_from_u64(1);
  std::vector<uint8_t> buf(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    chacha20_xor(key, 1, nonce, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20Xor)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Poly1305(benchmark::State& state) {
  std::array<uint8_t, kPolyKeySize> key{};
  key[0] = 1;
  std::vector<uint8_t> msg(static_cast<size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    auto tag = poly1305(key, msg);
    benchmark::DoNotOptimize(tag);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Poly1305)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AeadSeal(benchmark::State& state) {
  const Key key = key_from_string("bench");
  std::vector<uint8_t> pt(static_cast<size_t>(state.range(0)), 0x11);
  uint64_t seq = 0;
  for (auto _ : state) {
    auto sealed = aead_seal(key, nonce_from_u64(++seq), {}, pt);
    benchmark::DoNotOptimize(sealed.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(48)->Arg(1024);

void BM_AeadOpen(benchmark::State& state) {
  const Key key = key_from_string("bench");
  std::vector<uint8_t> pt(static_cast<size_t>(state.range(0)), 0x11);
  const auto sealed = aead_seal(key, nonce_from_u64(7), {}, pt);
  for (auto _ : state) {
    auto opened = aead_open(key, nonce_from_u64(7), {}, sealed);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(48)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
