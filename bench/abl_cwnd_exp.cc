// Ablation A4: the experienced-default choice (§VI comparison schemes).
//
// The paper selects its baseline via A/B tests: init_cwnd = 10 packets
// (RFC 6928 / Google recommendation) yields avg 201.0 / p90 476.5 ms,
// while the fleet-average FF_Size (init_cwnd_exp) yields 158.9 / 409.6 ms.
// This bench reruns that A/B: fixed 10-packet window vs the experienced
// value, plus an init_RTT_exp sweep.
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

namespace {

Samples run_baseline(const bench::Args& args, uint64_t cwnd_exp,
                     TimeNs rtt_exp, std::vector<SessionRecord>* all) {
  PopulationConfig cfg;
  cfg.sessions = args.sessions / 2;
  cfg.seed = args.seed;
  cfg.defaults.init_cwnd_exp = cwnd_exp;
  cfg.defaults.init_rtt_exp = rtt_exp;
  cfg.schemes = {core::Scheme::kBaseline};
  const auto records = bench::run_with_obs(cfg, args);
  all->insert(all->end(), records.begin(), records.end());
  return collect_ffct(records, core::Scheme::kBaseline);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("Ablation: experienced-default A/B test, %zu sessions per "
              "point\n", args.sessions / 2);

  banner("init_cwnd_exp choice (paper: 10 pkts -> 201.0/476.5 ms, "
         "fleet-average FF_Size -> 158.9/409.6 ms)");
  Table t({"init_cwnd_exp", "avg FFCT (ms)", "p90 FFCT (ms)"});
  const TimeNs rtt_exp = milliseconds(40);
  std::vector<SessionRecord> all_records;
  for (uint64_t kb : {15, 29, 43, 64, 90}) {
    const auto s = run_baseline(args, kb * 1000, rtt_exp, &all_records);
    std::string label = std::to_string(kb) + " KB";
    if (kb == 15) label += " (~10 pkts, RFC 6928)";
    if (kb == 43) label += " (fleet-avg FF_Size)";
    t.row({label, fmt(s.mean()), fmt(s.percentile(90))});
  }
  t.print();

  banner("init_RTT_exp choice (pacing divisor)");
  Table r({"init_RTT_exp (ms)", "avg FFCT (ms)", "p90 FFCT (ms)"});
  for (int ms : {20, 40, 80, 160}) {
    const auto s = run_baseline(args, 43'000, milliseconds(ms), &all_records);
    r.row({std::to_string(ms), fmt(s.mean()), fmt(s.percentile(90))});
  }
  r.print();
  bench::print_phase_breakdown(all_records);
  std::printf("(the experienced values beat the fixed RFC 6928 window, "
              "matching the paper's A/B finding)\n");
  return 0;
}
