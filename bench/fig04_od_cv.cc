// Figure 4: dispersion of MinRTT and MaxBW for the *same OD pair* across
// repeated sessions, as a function of the sampling interval.
//
// Paper anchors (§II-D, 10M+ connections): average MinRTT CV 9.9 / 10.2 /
// 10.5 / 11.2 % for intervals (0,5] / (0,10] / (0,30] / (0,60] minutes;
// ~80% of OD pairs keep MinRTT CV <= 13.9% within 5 min (16.0% within
// 60 min); MaxBW p50 CV > 22.6%; OD-level values are far more stable than
// the UG-level ones of Fig. 3 (9.9% vs 36.4%, 27.0% vs 51.6% at 5 min).
#include <cstdio>

#include "bench_common.h"
#include "popgen/population.h"

using namespace wira;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const size_t ods = std::max<size_t>(args.sessions * 2, 400);
  const int sessions_per_od = 12;

  std::printf("Figure 4: same-OD-pair QoS dispersion vs interval "
              "(%zu OD pairs x %d sessions)\n", ods, sessions_per_od);

  popgen::Population pop(args.seed, 64);

  struct IntervalStats {
    Samples rtt_cv, bw_cv;
  };
  const TimeNs intervals[] = {minutes(5), minutes(10), minutes(30),
                              minutes(60)};
  const char* names[] = {"(0,5]", "(0,10]", "(0,30]", "(0,60]"};
  const char* paper_rtt[] = {"9.9%", "10.2%", "10.5%", "11.2%"};

  IntervalStats stats[4];
  for (size_t i = 0; i < ods; ++i) {
    Rng rng(args.seed * 77 + i);
    const popgen::OdPair od = pop.make_od(i % 64, 5000 + i);
    for (int w = 0; w < 4; ++w) {
      Samples rtts, bws;
      const TimeNs t0 = minutes(90);
      for (int k = 0; k < sessions_per_od; ++k) {
        const TimeNs t =
            t0 + from_seconds(rng.uniform(0, to_seconds(intervals[w])));
        const popgen::PathSample s = od.sample(t, rng);
        rtts.add(to_ms(s.min_rtt));
        bws.add(to_mbps(s.max_bw));
      }
      stats[w].rtt_cv.add(rtts.cv());
      stats[w].bw_cv.add(bws.cv());
    }
  }

  exp::banner("Fig. 4(a): MinRTT CV by interval");
  exp::Table a({"interval (min)", "avg CV", "p80 CV", "paper avg"});
  for (int w = 0; w < 4; ++w) {
    a.row({names[w], fmt(100 * stats[w].rtt_cv.mean()) + "%",
           fmt(100 * stats[w].rtt_cv.percentile(80)) + "%", paper_rtt[w]});
  }
  a.print();

  exp::banner("Fig. 4(b): MaxBW CV by interval");
  exp::Table b({"interval (min)", "avg CV", "p50 CV", "paper p50"});
  for (int w = 0; w < 4; ++w) {
    b.row({names[w], fmt(100 * stats[w].bw_cv.mean()) + "%",
           fmt(100 * stats[w].bw_cv.percentile(50)) + "%",
           w == 0 ? ">22.6%" : "-"});
  }
  b.print();

  std::printf("\nHeadline (§II-D obs. iv): OD-level 5-min CVs "
              "(%.1f%% RTT / %.1f%% BW) vs UG-level (36.4%% / 51.6%%)\n",
              100 * stats[0].rtt_cv.mean(), 100 * stats[0].bw_cv.mean());
  return 0;
}
