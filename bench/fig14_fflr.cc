// Figure 14: first-frame loss rate (FFLR).
//
// Paper anchors: average FFLR 8.8% (baseline) -> 6.4% (Wira), -27.3%;
// p90 25.3% -> 16.6%, -34.4%.  1-RTT streams lose more than 0-RTT streams
// in absolute terms; Wira's average FFLR optimization is 27.6% (0-RTT)
// and 21.4% (1-RTT).
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

namespace {

void fflr_table(const std::vector<SessionRecord>& records,
                const exp::PopulationConfig& cfg, const char* title,
                std::function<bool(const SessionRecord&)> filter) {
  banner(title);
  Table t({"scheme", "avg FFLR", "p70", "p90", "avg-gain", "n"});
  const Samples base =
      collect_fflr(records, core::Scheme::kBaseline, filter);
  for (auto scheme : cfg.schemes) {
    const Samples s = collect_fflr(records, scheme, filter);
    t.row({core::scheme_name(scheme), fmt(100 * s.mean()) + "%",
           fmt(100 * s.percentile(70)) + "%",
           fmt(100 * s.percentile(90)) + "%",
           fmt_gain(base.mean(), s.mean()),
           std::to_string(s.count())});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  auto cfg = bench::default_population(args);
  std::printf("Figure 14: first-frame loss rate (%zu paired sessions)\n",
              cfg.sessions);
  const auto records = bench::run_with_obs(cfg, args);

  fflr_table(records, cfg,
             "All streams (paper: avg 8.8%% -> 6.4%% = -27.3%%, p90 25.3%% "
             "-> 16.6%% = -34.4%%)",
             [](const SessionRecord&) { return true; });
  fflr_table(records, cfg, "0-RTT streams (paper: Wira avg gain -27.6%)",
             [](const SessionRecord& r) { return r.zero_rtt; });
  fflr_table(records, cfg, "1-RTT streams (paper: Wira avg gain -21.4%)",
             [](const SessionRecord& r) { return !r.zero_rtt; });
  bench::print_phase_breakdown(records);
  return 0;
}
