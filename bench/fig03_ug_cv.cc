// Figure 3: dispersion of MinRTT and MaxBW *within* user groups.
//
// Paper anchors (§II-C, 1000+ user groups, 5-minute windows): average CV
// 36.4% (MinRTT) and 51.6% (MaxBW); ~50% of groups have MinRTT CV > 20%
// while only 12.8% of groups keep MaxBW CV <= 20%.
#include <cstdio>

#include "bench_common.h"
#include "popgen/population.h"

using namespace wira;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const size_t groups = std::max<size_t>(args.sessions, 200);
  const size_t ods_per_group = 60;

  std::printf("Figure 3: QoS dispersion within user groups "
              "(%zu groups x %zu OD pairs, 5-min window)\n",
              groups, ods_per_group);

  popgen::Population pop(args.seed, groups);
  Samples rtt_cv, bw_cv;
  Rng rng(args.seed + 1);
  for (size_t g = 0; g < groups; ++g) {
    Samples rtts, bws;
    for (uint64_t od = 0; od < ods_per_group; ++od) {
      const popgen::OdPair pair = pop.make_od(g, od);
      const TimeNs t = minutes(30) + from_seconds(rng.uniform(0, 300));
      const popgen::PathSample s = pair.sample(t, rng);
      rtts.add(to_ms(s.min_rtt));
      bws.add(to_mbps(s.max_bw));
    }
    rtt_cv.add(rtts.cv());
    bw_cv.add(bws.cv());
  }

  exp::Table t({"metric", "measured", "paper"});
  t.row({"avg MinRTT CV", fmt(100 * rtt_cv.mean()) + "%", "36.4%"});
  t.row({"avg MaxBW CV", fmt(100 * bw_cv.mean()) + "%", "51.6%"});
  t.row({"groups with MinRTT CV > 20%",
         fmt(100 * [&] {
           size_t c = 0;
           for (double v : rtt_cv.values()) c += v > 0.20;
           return static_cast<double>(c) / rtt_cv.count();
         }()) + "%",
         "~50%"});
  t.row({"groups with MaxBW CV <= 20%",
         fmt(100 * [&] {
           size_t c = 0;
           for (double v : bw_cv.values()) c += v <= 0.20;
           return static_cast<double>(c) / bw_cv.count();
         }()) + "%",
         "12.8%"});
  t.print();

  exp::banner("CV CDF (Fig. 3 curves)");
  exp::Table cdf({"CV", "MinRTT CDF", "MaxBW CDF"});
  for (double x : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8}) {
    auto frac = [&](const Samples& s) {
      size_t c = 0;
      for (double v : s.values()) c += v <= x;
      return fmt(100.0 * static_cast<double>(c) /
                 static_cast<double>(s.count())) + "%";
    };
    cdf.row({fmt(100 * x, 0) + "%", frac(rtt_cv), frac(bw_cv)});
  }
  cdf.print();
  return 0;
}
