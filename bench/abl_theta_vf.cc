// Ablation A1: the Theta_VF playback condition (§IV-A / §VII).
//
// Theta_VF determines how many video frames make up the "first frame":
// clients that need more buffered frames before starting playback have a
// larger effective first frame, so init_cwnd adapts upward.  This bench
// sweeps Theta_VF for Baseline vs Wira: Wira's advantage should persist
// (or grow) as the first-frame payload grows.
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("Ablation: Theta_VF (playback condition) sweep, %zu "
              "sessions per point\n", args.sessions / 2);

  Table t({"Theta_VF", "avg FF (KB)", "Baseline (ms)", "Wira (ms)",
           "gain"});
  std::vector<SessionRecord> all_records;
  for (uint32_t theta : {1u, 2u, 3u, 5u}) {
    PopulationConfig cfg;
    cfg.sessions = args.sessions / 2;
    cfg.seed = args.seed + theta;
    cfg.theta_vf = theta;
    cfg.schemes = {core::Scheme::kBaseline, core::Scheme::kWira};
    const auto records = bench::run_with_obs(cfg, args);
    all_records.insert(all_records.end(), records.begin(), records.end());

    Samples ff_kb;
    for (const auto& r : records) {
      if (r.ff_size > 0) ff_kb.add(static_cast<double>(r.ff_size) / 1000.0);
    }
    const Samples base = collect_ffct(records, core::Scheme::kBaseline);
    const Samples wira = collect_ffct(records, core::Scheme::kWira);
    t.row({std::to_string(theta), fmt(ff_kb.mean()), fmt(base.mean()),
           fmt(wira.mean()), fmt_gain(base.mean(), wira.mean())});
  }
  t.print();
  bench::print_phase_breakdown(all_records);
  std::printf("(larger playback conditions inflate the first frame; "
              "per-flow adaptation keeps paying off)\n");
  return 0;
}
