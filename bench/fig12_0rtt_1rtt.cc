// Figure 12: FFCT benefits split by connection-establishment mode.
//
// Paper anchors: ~90% of streams are 0-RTT.  0-RTT: baseline avg 169.0 ms
// -> Wira 152.9 (-9.5%), p90 440.3 -> 367.4 (-16.6%).  1-RTT: baseline
// avg 84.4 -> 66.5 (-21.3%), p90 180.4 -> 121.8 (-32.5%).  1-RTT gains
// exceed 0-RTT gains because the handshake measures the path RTT before
// the first frame is sent.
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  auto cfg = bench::default_population(args);
  std::printf("Figure 12: 0-RTT vs 1-RTT FFCT (%zu paired sessions, "
              "~%.0f%% 0-RTT)\n", cfg.sessions, 100 * cfg.p_zero_rtt);
  const auto records = bench::run_with_obs(cfg, args);

  for (bool zero_rtt : {true, false}) {
    auto filt = [zero_rtt](const SessionRecord& r) {
      return r.zero_rtt == zero_rtt;
    };
    banner(zero_rtt ? "Fig. 12(a)/(b): 0-RTT streams"
                    : "Fig. 12(c)/(d): 1-RTT streams");
    Table t(bench::kFfctHeaders);
    const Samples base =
        collect_ffct(records, core::Scheme::kBaseline, filt);
    for (auto scheme : cfg.schemes) {
      const Samples s = collect_ffct(records, scheme, filt);
      t.row(bench::ffct_row(core::scheme_name(scheme), s, base.mean()));
    }
    t.print();
    const Samples wira = collect_ffct(records, core::Scheme::kWira, filt);
    std::printf("Wira gain: avg %s, p90 %s   (paper: %s)\n",
                fmt_gain(base.mean(), wira.mean()).c_str(),
                fmt_gain(base.percentile(90), wira.percentile(90)).c_str(),
                zero_rtt ? "avg -9.5%, p90 -16.6%"
                         : "avg -21.3%, p90 -32.5%");
  }
  bench::print_phase_breakdown(records);
  return 0;
}
