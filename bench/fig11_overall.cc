// Figure 11: real-network FFCT benefits of all live streams.
//
// Paper anchors (production, 6 months): Baseline avg 158.9 ms -> Wira
// 142.0 ms (-10.6%); Wira(FF) -6.0%, Wira(Hx) -7.4%; p70 130.0 -> 105.6
// (-18.7%); p90 409.6 -> 341.1 (-16.7%).  The reproduction target is the
// *shape*: Wira < Wira(Hx) ~ Wira(FF) < Baseline, with larger relative
// gains at the high quantiles.
#include <cstdio>

#include "bench_common.h"

using namespace wira;
using namespace wira::exp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  auto cfg = bench::default_population(args);
  std::printf("Figure 11: overall FFCT benefits (%zu paired sessions, "
              "seed %llu)\n",
              cfg.sessions, static_cast<unsigned long long>(cfg.seed));
  const auto records = bench::run_with_obs(cfg, args);

  banner("Fig. 11(a)/(b): FFCT by scheme");
  Table t(bench::kFfctHeaders);
  const Samples base = collect_ffct(records, core::Scheme::kBaseline);
  for (auto scheme : cfg.schemes) {
    const Samples s = collect_ffct(records, scheme);
    t.row(bench::ffct_row(core::scheme_name(scheme), s, base.mean()));
  }
  t.print();

  banner("Optimization ratios vs. baseline (paper: FF -6.0%, Hx -7.4%, "
         "Wira -10.6% avg; Wira p70 -18.7%, p90 -16.7%)");
  Table g({"scheme", "avg", "p70", "p90"});
  for (auto scheme : cfg.schemes) {
    if (scheme == core::Scheme::kBaseline) continue;
    const Samples s = collect_ffct(records, scheme);
    g.row({core::scheme_name(scheme),
           fmt_gain(base.mean(), s.mean()),
           fmt_gain(base.percentile(70), s.percentile(70)),
           fmt_gain(base.percentile(90), s.percentile(90))});
  }
  g.print();
  bench::print_phase_breakdown(records);
  return 0;
}
