// Microbenchmarks: QUIC wire codecs and end-to-end emulated sessions
// (sessions/second bounds how large the Monte-Carlo experiments can be).
#include <benchmark/benchmark.h>

#include "exp/session_runner.h"
#include "quic/packet.h"

namespace {

using namespace wira;
using namespace wira::quic;

Packet make_data_packet() {
  Packet p;
  p.type = PacketType::kOneRtt;
  p.conn_id = 7;
  p.packet_number = 12345;
  RangeSet acked;
  acked.add(100, 200);
  acked.add(250, 300);
  p.frames.emplace_back(build_ack(acked, milliseconds(1)));
  StreamFrame f;
  f.stream_id = 3;
  f.offset = 1 << 20;
  // Spans borrow; back the payload with function-static storage so the
  // returned packet stays valid for the benchmark's lifetime.
  static const std::vector<uint8_t> payload(1350, 0xCD);
  f.data = payload;
  p.frames.emplace_back(std::move(f));
  return p;
}

void BM_PacketSerialize(benchmark::State& state) {
  const Packet p = make_data_packet();
  for (auto _ : state) {
    auto bytes = serialize_packet(p);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_PacketSerialize);

void BM_PacketParse(benchmark::State& state) {
  const auto bytes = serialize_packet(make_data_packet());
  for (auto _ : state) {
    auto p = parse_packet(bytes);
    benchmark::DoNotOptimize(p);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_PacketParse);

void BM_HandshakeSerializeParse(benchmark::State& state) {
  HandshakeMessage chlo;
  chlo.msg_tag = kTagCHLO;
  chlo.set_str(kTagVER, "Q043");
  chlo.set(kTagSCID, std::vector<uint8_t>{0xAA, 0xBB});
  chlo.set(kTagHQST, std::vector<uint8_t>(73, 0x33));
  for (auto _ : state) {
    auto parsed = parse_handshake(serialize_handshake(chlo));
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_HandshakeSerializeParse);

void BM_FullSession(benchmark::State& state) {
  // One complete emulated live-streaming session (handshake, ~1 MB of
  // media, loss recovery, cookie sync) per iteration.
  uint64_t seed = 1;
  for (auto _ : state) {
    exp::SessionConfig cfg;
    cfg.path.bandwidth = mbps(12);
    cfg.path.rtt = milliseconds(60);
    cfg.path.loss_rate = 0.01;
    cfg.stream.iframe_mean_bytes = 50'000;
    cfg.seed = ++seed;
    cfg.scheme = core::Scheme::kWira;
    auto r = exp::run_session(cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("one 8s live session per iteration");
}
BENCHMARK(BM_FullSession)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
