// Figure 2: FFCT varies with init_cwnd and init_pacing on the paper's
// testbed path (8 Mbps bandwidth, 3% loss, 50 ms RTT, 25 KB buffer),
// FF_Size = 66 KB.
//
// Paper anchors: (a) init_cwnd in packets {4, 10, ..., 100}: too small
// costs extra RTTs, too large causes losses; the adapted value (45 pkts ~
// 66 KB) is best.  (b) with init_cwnd = FF_Size, init_pacing sweep
// {0.8, 4, 8, 16, 40} Mbps: 0.8 -> 302 ms, 4 -> 186 ms, 8 (=MaxBW) ->
// 157 ms / 3.8% loss, 16/40 -> 210+ ms with >40% loss.
#include <cstdio>

#include "bench_common.h"
#include "exp/session_runner.h"

using namespace wira;
using namespace wira::exp;

namespace {

media::StreamProfile stream_66k() {
  media::StreamProfile p;
  p.stream_id = 1;
  p.iframe_mean_bytes = 64'000;  // + container overhead ~ 66 KB FF
  p.iframe_intra_cv = 0.02;
  return p;
}

struct SweepPoint {
  Samples ffct_ms;
  Samples loss;
  std::vector<SessionResult> results;  ///< completed sessions, with phases
};

SweepPoint sweep(uint64_t cwnd_bytes, Bandwidth pacing, size_t trials,
                 uint64_t seed) {
  SweepPoint out;
  for (size_t i = 0; i < trials; ++i) {
    ManualInitConfig cfg;
    cfg.path = sim::testbed_path();
    cfg.stream = stream_66k();
    cfg.corpus_seed = 7;
    cfg.seed = seed * 1000 + i + 1;
    cfg.init_cwnd_bytes = cwnd_bytes;
    cfg.init_pacing = pacing;
    cfg.collect_phases = true;
    SessionResult r = run_manual_init_session(cfg);
    if (!r.first_frame_completed) continue;
    out.ffct_ms.add(to_ms(r.ffct));
    out.loss.add(r.fflr);
    out.results.push_back(std::move(r));
  }
  return out;
}

/// (label, sessions) pairs accumulated per sweep point, turned into the
/// labeled-group phase table at the end of main.
std::vector<std::pair<std::string, std::vector<SessionResult>>> phase_data;

void keep_for_phases(std::string label, std::vector<SessionResult> results) {
  phase_data.emplace_back(std::move(label), std::move(results));
}

void print_phases() {
  std::vector<PhaseGroup> groups;
  for (const auto& [label, results] : phase_data) {
    std::vector<const SessionResult*> ptrs;
    ptrs.reserve(results.size());
    for (const auto& r : results) ptrs.push_back(&r);
    groups.emplace_back(label, std::move(ptrs));
  }
  banner("FFCT phase breakdown (ms per sweep point)");
  ffct_phase_table(groups).print();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const size_t trials = std::max<size_t>(args.sessions / 5, 30);

  {
    media::LiveStream probe(stream_66k(), 7);
    std::printf("Figure 2 testbed: 8 Mbps, 3%% loss, 50 ms RTT, 25 KB "
                "buffer; FF_Size = %.1f KB; %zu trials per point\n",
                static_cast<double>(probe.first_frame_size(0, 1)) / 1000.0,
                trials);
  }

  banner("Fig. 2(a): FFCT vs init_cwnd (packets), init_pacing = "
         "cwnd-proportional");
  Table a({"init_cwnd (pkts)", "avg FFCT (ms)", "p90 FFCT", "loss"});
  for (uint64_t pkts : {4, 10, 25, 45, 60, 80, 100}) {
    const uint64_t cwnd = pkts * 1460;
    // The paper's 2(a) keeps the stock pacing recipe: cwnd over the
    // experienced RTT.
    const Bandwidth pace = delivery_rate(cwnd, milliseconds(40));
    auto pt = sweep(cwnd, pace, trials, args.seed);
    a.row({std::to_string(pkts), fmt(pt.ffct_ms.mean()),
           fmt(pt.ffct_ms.percentile(90)),
           fmt(100 * pt.loss.mean()) + "%"});
    keep_for_phases("cwnd=" + std::to_string(pkts) + "pkt",
                    std::move(pt.results));
  }
  a.print();
  std::printf("(paper: 4 and 10 pkts cost extra RTTs; 80-100 pkts suffer "
              "losses; 45 pkts ~ FF_Size is best)\n");

  banner("Fig. 2(b): FFCT vs init_pacing, init_cwnd = FF_Size");
  Table b({"init_pacing (Mbps)", "avg FFCT (ms)", "p90 FFCT", "loss",
           "paper FFCT"});
  const uint64_t ff_cwnd = 66'000;
  const struct { double mbps; const char* paper; } points[] = {
      {0.8, "302"}, {4, "186"}, {8, "157 (3.8% loss)"},
      {16, "210+ (>40% loss)"}, {40, "210+ (>40% loss)"}};
  for (const auto& pt : points) {
    auto r = sweep(ff_cwnd, mbps_f(pt.mbps), trials, args.seed + 1);
    b.row({fmt(pt.mbps, 1), fmt(r.ffct_ms.mean()),
           fmt(r.ffct_ms.percentile(90)), fmt(100 * r.loss.mean()) + "%",
           pt.paper});
    keep_for_phases("pacing=" + fmt(pt.mbps, 1) + "Mbps",
                    std::move(r.results));
  }
  b.print();
  std::printf("(paper: both under- and over-pacing hurt; init_pacing = "
              "MaxBW = 8 Mbps is best)\n");
  print_phases();
  return 0;
}
