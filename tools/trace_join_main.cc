// wira_trace_join: offline cross-vantage qlog checker (obs/trace_join.h).
//
// Scans a --trace-dir for the paired traces the population sampler writes
// (<name>.client.sqlog / <name>.server.sqlog), joins every pair, and
// recomputes the FFCT phase split from the client's view.  Any unpaired
// vantage file, parse failure, or join failure is an error; legacy bare
// <name>.sqlog files (pre-pairing captures) are validated as parsable but
// not joined.  Exit 0 iff every pair joined cleanly; distinct nonzero
// codes classify the worst failure seen (see --help).
//
// With --metrics-jsonl the joined splits are cross-checked against the
// per-session export (exp::write_records_jsonl): each joined span duration
// must match the record's <phase>_ns within 1 us.  The JSONL carries
// durations, not absolute boundaries, and truncating the two boundary
// timestamps independently can shift a duration by up to (but never
// reaching) one microsecond — hence the 1 us tolerance here, in contrast
// to the boundary-exact in-session check (joined_matches_phases).
//
//   wira_trace_join --trace-dir traces/ [--metrics-jsonl fig11.jsonl] [-v]
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_join.h"
#include "util/json_parse.h"

namespace {

namespace fs = std::filesystem;
using wira::obs::JoinedPhases;
using wira::obs::ParsedQlog;
using wira::util::JsonValue;

struct Args {
  std::string trace_dir;
  std::string metrics_jsonl;
  bool verbose = false;
};

// Exit codes (documented in --help; scripts branch on these).  When a run
// hits several failure kinds, the most fundamental wins: a file that does
// not parse explains away any downstream mismatch.
constexpr int kExitOk = 0;
constexpr int kExitError = 1;       ///< operational (unreadable dir/file)
constexpr int kExitUsage = 2;
constexpr int kExitParseFailure = 3;
constexpr int kExitMismatch = 4;    ///< join failed or jsonl disagreement
constexpr int kExitUnpaired = 5;

void print_help(const char* prog) {
  std::printf(
      "usage: %s --trace-dir DIR [--metrics-jsonl FILE] [-v]\n"
      "\n"
      "Joins paired <name>.client.sqlog/<name>.server.sqlog traces in\n"
      "--trace-dir and recomputes the FFCT phase split; with\n"
      "--metrics-jsonl, joined durations are cross-checked against the\n"
      "per-session export (1 us tolerance).\n"
      "\n"
      "exit codes:\n"
      "  0  every pair joined (and cross-checked) cleanly\n"
      "  1  operational error (unreadable trace dir or metrics file)\n"
      "  2  usage error\n"
      "  3  a trace file failed to parse as serialized qlog\n"
      "  4  vantages disagree: join failed, or a joined split does not\n"
      "     match its metrics-jsonl record\n"
      "  5  an unpaired vantage file (client without server, or vice\n"
      "     versa)\n"
      "When several kinds occur, the lowest applicable code above 2 is\n"
      "returned (parse failure beats mismatch beats unpaired).\n",
      prog);
}

[[noreturn]] void usage(const char* prog, const char* msg) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: %s --trace-dir DIR [--metrics-jsonl FILE] [-v]\n"
               "       %s --help\n",
               msg, prog, prog);
  std::exit(kExitUsage);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      print_help(argv[0]);
      std::exit(kExitOk);
    }
    if (std::strcmp(arg, "-v") == 0 || std::strcmp(arg, "--verbose") == 0) {
      a.verbose = true;
      continue;
    }
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(arg, flag) != 0) return nullptr;
      if (i + 1 >= argc) usage(argv[0], "flag needs a value");
      return argv[++i];
    };
    if (const char* v = value("--trace-dir")) {
      a.trace_dir = v;
    } else if (const char* v = value("--metrics-jsonl")) {
      a.metrics_jsonl = v;
    } else {
      usage(argv[0], "unknown argument");
    }
  }
  if (a.trace_dir.empty()) usage(argv[0], "--trace-dir is required");
  return a;
}

/// Per-session phase durations from the metrics JSONL, keyed by the trace
/// base name the sampler uses ("session_<i>_<scheme>").
struct RecordPhases {
  uint64_t phase_ns[wira::obs::kNumPhases] = {};
  int64_t ffct_ns = 0;
};

bool load_metrics_jsonl(const std::string& path,
                        std::map<std::string, RecordPhases>* out,
                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue doc;
    if (!wira::util::parse_json(line, &doc, error)) {
      *error = path + ":" + std::to_string(line_no) + ": " + *error;
      return false;
    }
    const JsonValue* session = doc.find("session", JsonValue::Kind::kNumber);
    const JsonValue* scheme = doc.find("scheme", JsonValue::Kind::kString);
    const JsonValue* phases = doc.find("phases", JsonValue::Kind::kObject);
    const JsonValue* ffct = doc.find("ffct_ns", JsonValue::Kind::kNumber);
    if (session == nullptr || scheme == nullptr || phases == nullptr ||
        ffct == nullptr) {
      *error = path + ":" + std::to_string(line_no) +
               ": record missing session/scheme/phases/ffct_ns";
      return false;
    }
    RecordPhases rec;
    rec.ffct_ns = static_cast<int64_t>(ffct->number);
    for (size_t p = 0; p < wira::obs::kNumPhases; ++p) {
      const std::string key =
          std::string(wira::obs::kPhaseNames[p]) + "_ns";
      const JsonValue* d = phases->find(key, JsonValue::Kind::kNumber);
      if (d == nullptr) {
        *error = path + ":" + std::to_string(line_no) + ": phases has no " +
                 key;
        return false;
      }
      rec.phase_ns[p] = static_cast<uint64_t>(d->number);
    }
    const std::string base = "session_" + session->raw_number + "_" +
                             scheme->str;
    (*out)[base] = rec;
  }
  return true;
}

/// |a_us * 1000 - b_ns| < 1000 without underflow.
bool within_one_us(uint64_t a_us, uint64_t b_ns) {
  const uint64_t a_ns = a_us * 1000;
  const uint64_t diff = a_ns > b_ns ? a_ns - b_ns : b_ns - a_ns;
  return diff < 1000;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::map<std::string, RecordPhases> records;
  if (!args.metrics_jsonl.empty()) {
    std::string error;
    if (!load_metrics_jsonl(args.metrics_jsonl, &records, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return kExitError;
    }
  }

  std::error_code ec;
  fs::directory_iterator it(args.trace_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot read %s: %s\n",
                 args.trace_dir.c_str(), ec.message().c_str());
    return kExitError;
  }

  // Collect base names by vantage so unpaired files are detectable in
  // either direction.
  std::map<std::string, bool> client_bases, server_bases;
  std::vector<std::string> legacy;
  constexpr const char kClientSuffix[] = ".client.sqlog";
  constexpr const char kServerSuffix[] = ".server.sqlog";
  constexpr const char kBareSuffix[] = ".sqlog";
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    auto ends_with = [&name](const char* suffix) {
      const size_t n = std::strlen(suffix);
      return name.size() >= n &&
             name.compare(name.size() - n, n, suffix) == 0;
    };
    if (ends_with(kClientSuffix)) {
      client_bases[name.substr(0, name.size() - strlen(kClientSuffix))] =
          true;
    } else if (ends_with(kServerSuffix)) {
      server_bases[name.substr(0, name.size() - strlen(kServerSuffix))] =
          true;
    } else if (ends_with(kBareSuffix)) {
      legacy.push_back(name.substr(0, name.size() - strlen(kBareSuffix)));
    }
  }

  size_t pairs_ok = 0, cross_checked = 0;
  size_t parse_failures = 0, mismatches = 0, unpaired = 0;

  for (const auto& [base, _] : client_bases) {
    if (server_bases.find(base) == server_bases.end()) {
      std::fprintf(stderr, "FAIL %s: client trace has no server peer\n",
                   base.c_str());
      ++unpaired;
    }
  }
  for (const auto& [base, _] : server_bases) {
    if (client_bases.find(base) == client_bases.end()) {
      std::fprintf(stderr, "FAIL %s: server trace has no client peer\n",
                   base.c_str());
      ++unpaired;
    }
  }

  const std::string dir = args.trace_dir;
  for (const auto& [base, _] : client_bases) {
    if (server_bases.find(base) == server_bases.end()) continue;
    ParsedQlog client, server;
    std::string error;
    if (!wira::obs::parse_sqlog_file(dir + "/" + base + kClientSuffix,
                                     &client, &error) ||
        !wira::obs::parse_sqlog_file(dir + "/" + base + kServerSuffix,
                                     &server, &error)) {
      std::fprintf(stderr, "FAIL %s: %s\n", base.c_str(), error.c_str());
      ++parse_failures;
      continue;
    }
    JoinedPhases joined;
    if (!wira::obs::join_vantages(client, server, &joined, &error)) {
      std::fprintf(stderr, "FAIL %s: %s\n", base.c_str(), error.c_str());
      ++mismatches;
      continue;
    }
    bool ok = true;
    if (!records.empty()) {
      auto rec = records.find(base);
      if (rec == records.end()) {
        std::fprintf(stderr, "FAIL %s: no metrics-jsonl record\n",
                     base.c_str());
        ok = false;
      } else {
        for (size_t p = 0; p < wira::obs::kNumPhases && ok; ++p) {
          if (!within_one_us(joined.spans[p].duration_us(),
                             rec->second.phase_ns[p])) {
            std::fprintf(
                stderr,
                "FAIL %s: phase %s joined %" PRIu64
                " us vs jsonl %" PRIu64 " ns (>1us apart)\n",
                base.c_str(), joined.spans[p].name,
                joined.spans[p].duration_us(), rec->second.phase_ns[p]);
            ok = false;
          }
        }
        if (ok && (rec->second.ffct_ns < 0 ||
                   !within_one_us(joined.ffct_us,
                                  static_cast<uint64_t>(
                                      rec->second.ffct_ns)))) {
          std::fprintf(stderr,
                       "FAIL %s: ffct joined %" PRIu64
                       " us vs jsonl %" PRId64 " ns (>1us apart)\n",
                       base.c_str(), joined.ffct_us, rec->second.ffct_ns);
          ok = false;
        }
        if (ok) ++cross_checked;
      }
    }
    if (!ok) {
      ++mismatches;
      continue;
    }
    ++pairs_ok;
    if (args.verbose) {
      std::printf("OK %s ffct=%" PRIu64 "us", base.c_str(), joined.ffct_us);
      for (const JoinedPhases::Span& s : joined.spans) {
        std::printf(" %s=%" PRIu64, s.name, s.duration_us());
      }
      std::printf(" stalls=%zu\n", client.stall_events);
    }
  }

  size_t legacy_ok = 0;
  for (const std::string& base : legacy) {
    ParsedQlog single;
    std::string error;
    if (!wira::obs::parse_sqlog_file(dir + "/" + base + kBareSuffix,
                                     &single, &error)) {
      std::fprintf(stderr, "FAIL %s: %s\n", base.c_str(), error.c_str());
      ++parse_failures;
    } else {
      ++legacy_ok;
    }
  }

  std::printf("wira_trace_join: %zu pairs joined", pairs_ok);
  if (!records.empty()) {
    std::printf(" (%zu cross-checked against %s)", cross_checked,
                args.metrics_jsonl.c_str());
  }
  if (legacy_ok > 0) {
    std::printf(", %zu legacy single-vantage traces parsed", legacy_ok);
  }
  const size_t failures = parse_failures + mismatches + unpaired;
  std::printf(", %zu failures\n", failures);
  if (parse_failures > 0) return kExitParseFailure;
  if (mismatches > 0) return kExitMismatch;
  if (unpaired > 0) return kExitUnpaired;
  return kExitOk;
}
