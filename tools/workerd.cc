// wira_workerd: population shard worker daemon (DESIGN.md §6).
//
// Listens on a TCP port and serves run_population dispatchers that were
// started with --workers host:port,...  Each connection is one sweep
// membership: the dispatcher ships a kConfig frame (worker id + the full
// PopulationConfig), then kChunkAssign frames as this worker's chunks
// come up, and the daemon streams one kSessionRecord frame back per
// completed session over the same socket (exp/serve_shard_worker — the
// exact worker loop the forked pipe children run).
//
// Connections are served sequentially *in-process*, not forked: the
// daemon owns one session workspace per connection and, crucially, a
// sweep's fault injection (kill_at_index) kills the daemon itself — a
// dead endpoint is precisely what the dispatcher's failure taxonomy and
// the kill-one-workerd tests need to observe.
//
//   wira_workerd --listen 0 --port-file /tmp/worker.port
//   wira_workerd --listen 9701 --once   # serve one sweep, then exit
//   wira_workerd --bind 0.0.0.0 --listen 9701   # reachable off-host
//
// --port-file holds the bound endpoint as a single ADDR:PORT line — the
// exact token run_population's --workers flag consumes.
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/shard_dispatch.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Args {
  std::string port_file;
  std::string bind = "127.0.0.1";  ///< listen address (getaddrinfo form)
  uint16_t listen = 0;  ///< 0 = kernel-assigned ephemeral port
  bool once = false;    ///< serve a single connection, then exit
};

[[noreturn]] void usage(const char* prog, const char* msg) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: %s [--bind ADDR] [--listen PORT] [--port-file FILE]"
               " [--once]\n",
               msg, prog);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(arg, flag) != 0) return nullptr;
      if (i + 1 >= argc) usage(argv[0], "flag needs a value");
      return argv[++i];
    };
    if (const char* v = value("--listen")) {
      char* end = nullptr;
      const unsigned long port = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || port > 65535) {
        usage(argv[0], "--listen must be a port number (0-65535)");
      }
      a.listen = static_cast<uint16_t>(port);
    } else if (const char* v = value("--bind")) {
      a.bind = v;
    } else if (const char* v = value("--port-file")) {
      a.port_file = v;
    } else if (std::strcmp(arg, "--once") == 0) {
      a.once = true;
    } else {
      usage(argv[0], "unknown argument");
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("wira_workerd: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* resolved = nullptr;
  const int gai =
      ::getaddrinfo(args.bind.c_str(), nullptr, &hints, &resolved);
  if (gai != 0 || resolved == nullptr ||
      resolved->ai_addrlen > sizeof(struct sockaddr_in)) {
    std::fprintf(stderr, "wira_workerd: --bind %s: %s\n", args.bind.c_str(),
                 gai != 0 ? ::gai_strerror(gai) : "not an IPv4 address");
    if (resolved != nullptr) ::freeaddrinfo(resolved);
    ::close(listen_fd);
    return 1;
  }
  struct sockaddr_in addr = {};
  std::memcpy(&addr, resolved->ai_addr, resolved->ai_addrlen);
  ::freeaddrinfo(resolved);
  addr.sin_port = htons(args.listen);
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 8) != 0) {
    std::perror("wira_workerd: bind/listen");
    ::close(listen_fd);
    return 1;
  }
  struct sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&bound),
                &bound_len);
  const unsigned port = ntohs(bound.sin_port);
  char bound_addr[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &bound.sin_addr, bound_addr, sizeof(bound_addr));

  if (!args.port_file.empty()) {
    std::FILE* f = std::fopen(args.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "wira_workerd: cannot write %s\n",
                   args.port_file.c_str());
      ::close(listen_fd);
      return 1;
    }
    std::fprintf(f, "%s:%u\n", bound_addr, port);
    std::fclose(f);
  }
  std::fprintf(stderr, "wira_workerd: listening on %s:%u\n", bound_addr,
               port);

  int exit_code = 0;
  while (g_stop == 0) {
    struct pollfd pfd = {listen_fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    // In-process on purpose: see the file header.
    const int code = wira::exp::serve_shard_worker(conn);
    ::close(conn);
    if (code != 0) {
      std::fprintf(stderr, "wira_workerd: connection ended with code %d\n",
                   code);
    }
    if (args.once) {
      exit_code = code;
      break;
    }
  }
  ::close(listen_fd);
  return exit_code;
}
