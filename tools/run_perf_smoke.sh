#!/usr/bin/env bash
# Perf-trajectory smoke: Release build, quick ctest sanity, then run
# bench/perf_smoke and record its JSON as BENCH_<date>.json at the repo
# root.  Each run also appends a one-line record to
# bench_history/perf_trajectory.jsonl so the sessions/sec trajectory
# accumulates across days, and the script FAILS if the run was not
# deterministic (threaded or multiprocess records diverged from serial).
# perf_smoke includes a --procs 2 pass by default, so every appended
# trajectory record carries the multiprocess datapoint
# (sessions_per_sec_np, gated by bench_gate.py alongside the others).
#
# Usage: tools/run_perf_smoke.sh [sessions] [seed] [--threads N] [--procs N]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-release"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" \
  --target perf_smoke test_thread_pool test_event_loop test_exp test_obs

# Quick correctness gate before trusting the numbers.
ctest --test-dir "${build_dir}" -R 'ThreadPool|EventLoop|Harness' \
  --output-on-failure -j "$(nproc)"

out="${repo_root}/BENCH_$(date +%Y-%m-%d).json"
"${build_dir}/bench/perf_smoke" "$@" | tee "${out}"
echo "wrote ${out}"

# Hard determinism gate: perf_smoke already exits non-zero on divergence
# (caught by `set -e` through the pipe above only if pipefail sees it), so
# double-check the recorded output as well.
if ! grep -q '"deterministic": true' "${out}"; then
  echo "FAIL: perf_smoke reported a non-deterministic run" >&2
  exit 1
fi

history_dir="${repo_root}/bench_history"
mkdir -p "${history_dir}"
trajectory="${history_dir}/perf_trajectory.jsonl"

# Regression gate BEFORE the append: compare this run against the median
# of recent comparable records (same sessions+seed).  A regressed run is
# NOT appended, so it cannot drag the baseline down for the next run.
# Budgets and their rationale: tools/bench_gate.py --help.
if ! python3 "${repo_root}/tools/bench_gate.py" "${out}" \
    --history "${trajectory}"; then
  echo "FAIL: bench_gate detected a perf/QoE regression (record not" \
       "appended to the trajectory)" >&2
  exit 1
fi

# Append the scalar fields plus the QoE summary (the aggregate "metrics"
# object stays in the dated file only) as one line into the long-term
# trajectory.
python3 - "${out}" "$(date +%Y-%m-%dT%H:%M:%S)" >> "${trajectory}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
row = {"date": sys.argv[2]}
row.update((k, v) for k, v in bench.items() if k != "metrics")
print(json.dumps(row))
PY
echo "appended trajectory record to ${trajectory}"
