#!/usr/bin/env bash
# Perf-trajectory smoke: Release build, quick ctest sanity, then run
# bench/perf_smoke and record its JSON as BENCH_<date>.json at the repo
# root.  Compare successive BENCH_*.json files to track sessions/sec.
#
# Usage: tools/run_perf_smoke.sh [sessions] [seed] [--threads N]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-release"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" \
  --target perf_smoke test_thread_pool test_event_loop test_exp

# Quick correctness gate before trusting the numbers.
ctest --test-dir "${build_dir}" -R 'ThreadPool|EventLoop|Harness' \
  --output-on-failure -j "$(nproc)"

out="${repo_root}/BENCH_$(date +%Y-%m-%d).json"
"${build_dir}/bench/perf_smoke" "$@" | tee "${out}"
echo "wrote ${out}"
