#!/usr/bin/env bash
# Regression test for wira_workerd --bind and the ADDR:PORT port-file
# format: the default stays loopback-only, --bind accepts a wildcard and
# a hostname, the bound address shows up in both the startup line and
# the port file, and a bad address fails with a clear error.
#
# Usage: test_workerd_bind.sh <path-to-wira_workerd>
set -euo pipefail

workerd="${1:?usage: $0 <wira_workerd>}"
out="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "${pid}" 2>/dev/null || true; done
  rm -rf "${out}"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

wait_port_file() {  # wait_port_file FILE
  for _ in $(seq 50); do
    [[ -s "$1" ]] && return 0
    sleep 0.1
  done
  fail "port file $1 never appeared"
}

# 1. Default bind is loopback; port file is a single ADDR:PORT line that
#    matches the startup log line.
"${workerd}" --listen 0 --port-file "${out}/default.port" \
  > "${out}/default.log" 2>&1 &
pids+=("$!")
wait_port_file "${out}/default.port"
ep="$(cat "${out}/default.port")"
[[ "${ep}" =~ ^127\.0\.0\.1:[0-9]+$ ]] ||
  fail "default port file '${ep}' is not 127.0.0.1:PORT"
grep -q "listening on ${ep}\$" "${out}/default.log" ||
  fail "startup line does not name ${ep}: $(cat "${out}/default.log")"

# 2. --bind 0.0.0.0 is honoured and reported.
"${workerd}" --bind 0.0.0.0 --listen 0 --port-file "${out}/any.port" \
  > "${out}/any.log" 2>&1 &
pids+=("$!")
wait_port_file "${out}/any.port"
ep="$(cat "${out}/any.port")"
[[ "${ep}" =~ ^0\.0\.0\.0:[0-9]+$ ]] ||
  fail "--bind 0.0.0.0 port file '${ep}' is not 0.0.0.0:PORT"
grep -q "listening on ${ep}\$" "${out}/any.log" ||
  fail "startup line does not name ${ep}: $(cat "${out}/any.log")"

# 3. Hostnames resolve through getaddrinfo.
"${workerd}" --bind localhost --listen 0 --port-file "${out}/name.port" \
  > "${out}/name.log" 2>&1 &
pids+=("$!")
wait_port_file "${out}/name.port"
ep="$(cat "${out}/name.port")"
[[ "${ep}" =~ ^127\.0\.0\.1:[0-9]+$ ]] ||
  fail "--bind localhost resolved to '${ep}', want 127.0.0.1:PORT"

# 4. An unresolvable address fails fast with a named error, no port file.
if "${workerd}" --bind no.such.host.invalid --listen 0 \
    --port-file "${out}/bad.port" > "${out}/bad.log" 2>&1; then
  fail "--bind no.such.host.invalid unexpectedly succeeded"
fi
grep -q -- "--bind no.such.host.invalid" "${out}/bad.log" ||
  fail "error does not name the bad address: $(cat "${out}/bad.log")"
[[ -e "${out}/bad.port" ]] && fail "port file written despite bind failure"

echo "test_workerd_bind: all checks passed"
