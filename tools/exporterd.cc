// wira_exporterd: live Prometheus telemetry for soak/population runs.
//
// Tails the AggregateSink flush JSONL (--flush-jsonl) that bench/soak or
// the population runner is appending to, keeps the latest cumulative
// summary (obs::ExporterState), and serves it as Prometheus text on a
// loopback HTTP listener (obs::MiniHttpServer):
//
//   GET /metrics   text-format 0.0.4 exposition of the latest flush line
//                  plus the exporter's own counters
//   GET /healthz   "ok" once the process is serving
//
// The flush file may not exist yet when the daemon starts (the soak opens
// it lazily); the tail loop just retries the open every poll tick.  Runs
// until SIGINT/SIGTERM.  tools/run_soak.sh starts one of these next to the
// soak and gates a mid-run scrape against the final aggregate.
//
//   wira_exporterd --flush-jsonl soak_flush.jsonl --listen 0
//                  [--port-file /tmp/exporter.port]
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

// Build identity (tools/CMakeLists.txt); header-less fallbacks keep the
// file compiling in IDE/one-off builds.
#ifndef WIRA_VERSION
#define WIRA_VERSION "unknown"
#endif
#ifndef WIRA_GIT_SHA
#define WIRA_GIT_SHA "unknown"
#endif

#include <fcntl.h>
#include <unistd.h>

#include "obs/flush_export.h"
#include "obs/http_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Args {
  std::string flush_jsonl;
  std::string port_file;
  uint16_t listen = 0;  ///< 0 = kernel-assigned ephemeral port
  int poll_ms = 200;
};

[[noreturn]] void usage(const char* prog, const char* msg) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: %s --flush-jsonl FILE [--listen PORT] "
               "[--port-file FILE] [--poll-ms N]\n",
               msg, prog);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(arg, flag) != 0) return nullptr;
      if (i + 1 >= argc) usage(argv[0], "flag needs a value");
      return argv[++i];
    };
    if (const char* v = value("--flush-jsonl")) {
      a.flush_jsonl = v;
    } else if (const char* v = value("--listen")) {
      char* end = nullptr;
      const unsigned long port = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || port > 65535) {
        usage(argv[0], "--listen must be a port number (0-65535)");
      }
      a.listen = static_cast<uint16_t>(port);
    } else if (const char* v = value("--port-file")) {
      a.port_file = v;
    } else if (const char* v = value("--poll-ms")) {
      char* end = nullptr;
      const long ms = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || ms < 1 || ms > 60'000) {
        usage(argv[0], "--poll-ms must be in [1, 60000]");
      }
      a.poll_ms = static_cast<int>(ms);
    } else {
      usage(argv[0], "unknown argument");
    }
  }
  if (a.flush_jsonl.empty()) usage(argv[0], "--flush-jsonl is required");
  return a;
}

/// Incremental reader over a file another process is appending to.  Keeps
/// its offset across ticks; the file not existing yet is a normal state
/// (the run has not opened it), not an error.
class FileTail {
 public:
  explicit FileTail(std::string path) : path_(std::move(path)) {}
  ~FileTail() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Reads everything appended since the last call into `state`.
  void drain(wira::obs::ExporterState& state) {
    if (fd_ < 0) {
      fd_ = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd_ < 0) return;
    }
    char buf[65536];
    for (;;) {
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n <= 0) return;
      state.ingest(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  wira::obs::ExporterState state;
  state.set_build_info(WIRA_VERSION, WIRA_GIT_SHA);
  const auto started = std::chrono::steady_clock::now();
  auto refresh_uptime = [&state, started] {
    state.set_uptime_seconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
  };
  FileTail tail(args.flush_jsonl);

  wira::obs::MiniHttpServer server;
  std::string error;
  if (!server.start(args.listen, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  server.set_handler(
      [&state, &refresh_uptime](
          const std::string& path) -> wira::obs::MiniHttpServer::Response {
        wira::obs::MiniHttpServer::Response r;
        if (path == "/metrics") {
          state.note_scrape();
          refresh_uptime();
          r.body = state.render();
        } else if (path == "/healthz") {
          r.body = "ok\n";
        } else {
          r.status = 404;
          r.body = "not found\n";
        }
        return r;
      });

  if (!args.port_file.empty()) {
    std::FILE* f = std::fopen(args.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
    std::fclose(f);
  }
  std::fprintf(stderr, "wira_exporterd: serving http://127.0.0.1:%u/metrics"
                       " (tailing %s)\n",
               static_cast<unsigned>(server.port()),
               args.flush_jsonl.c_str());

  while (g_stop == 0) {
    tail.drain(state);
    server.poll(args.poll_ms);
  }
  tail.drain(state);
  server.stop();
  std::fprintf(stderr,
               "wira_exporterd: exiting (%llu lines, %llu parse errors, "
               "%llu requests)\n",
               static_cast<unsigned long long>(state.lines_total()),
               static_cast<unsigned long long>(state.parse_errors()),
               static_cast<unsigned long long>(server.requests_served()));
  return 0;
}
