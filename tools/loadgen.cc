// wira_loadgen: load generator for wira_proxyd (DESIGN.md §6).
//
// Reads the proxyd port file ("scheme_token addr:port" per line), opens one
// *connected* UDP socket per session — the distinct source port is the
// session identity proxyd demuxes on — and runs N concurrent PlayerClient
// handshakes per scheme on a single epoll runtime.  Per-session config
// (transport cookie, 0-RTT) is drawn from a seeded Rng, so a --sim-compare
// pass can rerun the *same* session population through exp::run_session
// over a loopback-approximating sim path and report sim-predicted FFCT
// next to the measured real-socket numbers.
//
// Output: JSON on stdout (per-scheme sessions / handshake failures /
// zero-RTT count / FFCT p50+p90, sim p50 when --sim-compare), a human
// summary on stderr.  Exit 0 iff every session completed its handshake.
//
//   wira_loadgen --ports /tmp/proxyd.ports --sessions 250
//   wira_loadgen --ports p --sessions 4 --trace-dir traces  # client sqlogs
#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/player_client.h"
#include "core/init_config.h"
#include "core/transport_cookie.h"
#include "crypto/aead.h"
#include "exp/session_runner.h"
#include "net/clock.h"
#include "net/epoll_runtime.h"
#include "net/udp_socket.h"
#include "obs/qlog.h"
#include "sim/event_loop.h"
#include "trace/tracer.h"
#include "util/rng.h"

namespace {

using namespace wira;

struct Args {
  std::string ports_file;
  std::string trace_dir;  ///< empty = no client-vantage qlogs
  long sessions = 8;      ///< per scheme
  long ramp_ms = 200;     ///< start stagger across all sessions
  long timeout_ms = 30000;
  long cookie_pct = 93;   ///< sessions arriving with an Hx_QoS cookie
  long zero_rtt_pct = 90; ///< sessions with the server config cached
  long track_frames = 1;
  long origin_latency_us = 5000;  ///< must match proxyd for --sim-compare
  long seed = 1;
  long sim_sessions = 16;  ///< --sim-compare population cap per scheme
  bool sim_compare = false;
};

[[noreturn]] void usage(const char* prog, const char* msg) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: %s --ports FILE [--sessions N] [--ramp-ms N]\n"
               "          [--timeout-ms N] [--cookie-pct N] [--zero-rtt-pct N]\n"
               "          [--track-frames N] [--origin-latency-us N]\n"
               "          [--seed N] [--trace-dir DIR]\n"
               "          [--sim-compare] [--sim-sessions N]\n",
               msg, prog);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(arg, flag) != 0) return nullptr;
      if (i + 1 >= argc) usage(argv[0], "flag needs a value");
      return argv[++i];
    };
    auto num = [&](const char* flag, long lo, long hi, long* out) -> bool {
      const char* v = value(flag);
      if (v == nullptr) return false;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < lo || n > hi) {
        usage(argv[0], (std::string(flag) + " out of range").c_str());
      }
      *out = n;
      return true;
    };
    if (const char* v = value("--ports")) {
      a.ports_file = v;
    } else if (const char* v = value("--trace-dir")) {
      a.trace_dir = v;
    } else if (std::strcmp(arg, "--sim-compare") == 0) {
      a.sim_compare = true;
    } else if (!num("--sessions", 1, 1'000'000, &a.sessions) &&
               !num("--ramp-ms", 0, 600'000, &a.ramp_ms) &&
               !num("--timeout-ms", 100, 3'600'000, &a.timeout_ms) &&
               !num("--cookie-pct", 0, 100, &a.cookie_pct) &&
               !num("--zero-rtt-pct", 0, 100, &a.zero_rtt_pct) &&
               !num("--track-frames", 1, 16, &a.track_frames) &&
               !num("--origin-latency-us", 0, 60'000'000,
                    &a.origin_latency_us) &&
               !num("--seed", 0, 1'000'000'000, &a.seed) &&
               !num("--sim-sessions", 0, 1'000'000, &a.sim_sessions)) {
      usage(argv[0], "unknown argument");
    }
  }
  if (a.ports_file.empty()) usage(argv[0], "--ports is required");
  return a;
}

struct Endpoint {
  core::Scheme scheme;
  std::string addr;
  uint16_t port;
};

std::vector<Endpoint> parse_ports(const std::string& file,
                                  const char* prog) {
  std::ifstream in(file);
  if (!in) usage(prog, ("cannot read port file " + file).c_str());
  std::vector<Endpoint> out;
  std::string token;
  std::string ep;
  while (in >> token >> ep) {
    Endpoint e;
    if (!core::scheme_from_token(token.c_str(), &e.scheme)) {
      usage(prog, ("unknown scheme token in port file: " + token).c_str());
    }
    const size_t colon = ep.rfind(':');
    if (colon == std::string::npos) {
      usage(prog, ("malformed endpoint in port file: " + ep).c_str());
    }
    e.addr = ep.substr(0, colon);
    const long port = std::strtol(ep.c_str() + colon + 1, nullptr, 10);
    if (port <= 0 || port > 65535) {
      usage(prog, ("bad port in port file: " + ep).c_str());
    }
    e.port = static_cast<uint16_t>(port);
    out.push_back(std::move(e));
  }
  if (out.empty()) usage(prog, "port file lists no endpoints");
  return out;
}

/// Per-session draw, reproducible from the base seed — the exact same
/// draws parameterize the --sim-compare rerun of session i.
struct SessionDraw {
  uint64_t client_id;
  bool zero_rtt;
  bool cookie;
};

/// The cookie a returning loopback client would carry: history that says
/// "fast, short path", so Wira/Hx initialize at full rate (BDP above the
/// fleet-average FF_Size, making Eq. 3 pick FF_Size).
core::HxQosRecord loopback_cookie(uint64_t od_key, TimeNs sealed_at) {
  core::HxQosRecord rec;
  rec.min_rtt = milliseconds(1);
  rec.max_bw = mbps(500);
  rec.server_timestamp = sealed_at;
  rec.od_key = od_key;
  return rec;
}

/// Loopback-approximating sim path for --sim-compare: effectively
/// unconstrained bandwidth, sub-millisecond RTT, no loss — the sim's view
/// of 127.0.0.1.
sim::PathConfig loopback_path() {
  sim::PathConfig p;
  p.bandwidth = mbps(5000);
  p.reverse_bandwidth = mbps(5000);
  p.rtt = microseconds(200);
  p.buffer_bytes = 4 * 1024 * 1024;
  p.loss_rate = 0;
  return p;
}

struct ClientSession {
  net::UdpSocket sock;
  app::ClientCache cache;
  trace::Tracer tracer;
  std::ofstream qlog;
  std::optional<obs::QlogStreamWriter> qlog_writer;
  std::optional<app::PlayerClient> client;
  SessionDraw draw{};
};

struct SchemeStats {
  core::Scheme scheme;
  std::vector<ClientSession*> sessions;
};

double percentile_us(std::vector<TimeNs> sorted_ns, double p) {
  if (sorted_ns.empty()) return -1;
  std::sort(sorted_ns.begin(), sorted_ns.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ns.size() - 1) + 0.5);
  return static_cast<double>(sorted_ns[idx]) / 1000.0;
}

void raise_nofile_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 &&
      lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  const std::vector<Endpoint> endpoints =
      parse_ports(args.ports_file, argv[0]);
  raise_nofile_limit();

  sim::EventLoop loop;
  net::EpollRuntime runtime(loop);
  if (!runtime.ok()) {
    std::fprintf(stderr, "wira_loadgen: %s\n", runtime.error().c_str());
    return 1;
  }
  runtime.sync_now();
  const net::MonotonicClock mono;
  const TimeNs start_base = net::MonotonicClock::raw_now();

  const uint64_t server_id = 7;
  const uint32_t network_type = 0;
  const crypto::Key master_key = crypto::key_from_string("wira-server-7");
  const std::vector<uint8_t> scid = {0x57, 0x49, 0x52, 0x41};  // "WIRA"
  core::CookieSealer sealer(master_key);
  wira::Rng rng(static_cast<uint64_t>(args.seed));

  std::vector<std::unique_ptr<ClientSession>> sessions;
  std::vector<SchemeStats> per_scheme;
  size_t done_count = 0;
  const size_t total =
      endpoints.size() * static_cast<size_t>(args.sessions);
  const TimeNs ramp_step =
      total > 1 ? milliseconds(args.ramp_ms) / static_cast<TimeNs>(total)
                : 0;

  uint64_t next_client_id = 1;
  for (const Endpoint& ep : endpoints) {
    per_scheme.push_back({ep.scheme, {}});
    SchemeStats& stats = per_scheme.back();
    for (long i = 0; i < args.sessions; ++i) {
      auto session = std::make_unique<ClientSession>();
      ClientSession* s = session.get();
      s->draw.client_id = next_client_id++;
      s->draw.cookie = rng.chance(args.cookie_pct / 100.0);
      s->draw.zero_rtt = rng.chance(args.zero_rtt_pct / 100.0);

      std::string error;
      if (!s->sock.open_connected(ep.addr, ep.port, &error)) {
        std::fprintf(stderr, "wira_loadgen: %s\n", error.c_str());
        return 1;
      }

      const uint64_t od_key =
          core::od_pair_key(s->draw.client_id, server_id, network_type);
      if (s->draw.zero_rtt) s->cache.server_configs[server_id] = scid;
      if (s->draw.cookie) {
        // Seal with the server's real-clock "now" so the cookie is fresh
        // against proxyd's staleness check (monotonic timebase is shared
        // across processes on one host).
        const TimeNs sealed_at = net::MonotonicClock::raw_now();
        s->cache.cookies.store(
            od_key, sealer.seal(loopback_cookie(od_key, sealed_at)),
            sealed_at);
      }

      app::ClientConfig cfg;
      cfg.client_id = s->draw.client_id;
      cfg.server_id = server_id;
      cfg.network_type = network_type;
      cfg.track_frames = static_cast<uint32_t>(args.track_frames);
      s->client.emplace(loop, cfg, s->cache,
                        [s, &loop](std::vector<uint8_t> dgram) {
                          s->sock.send(dgram);
                          loop.buffers().release(std::move(dgram));
                        });
      if (!args.trace_dir.empty()) {
        // Named from *this socket's* local address — the proxyd side sees
        // the same address as the peer, so the pair shares its stem and
        // group_id without any cross-process coordination.
        const std::string name = "peer_" + s->sock.local_addr().file_tag();
        s->qlog.open(args.trace_dir + "/" + name + ".client.sqlog",
                     std::ios::trunc);
        if (s->qlog) {
          obs::QlogTraceInfo info;
          info.title = name;
          info.group_id = name;
          info.vantage_point_name = "wira-client";
          info.vantage_point_type = "client";
          s->qlog_writer.emplace(s->qlog, info);
          s->tracer.stream_to(&*s->qlog_writer, /*keep_buffer=*/false);
          s->client->set_tracer(&s->tracer);
        }
      }
      const uint32_t track = static_cast<uint32_t>(args.track_frames);
      s->client->set_on_frame_complete([&done_count, track](uint32_t idx) {
        if (idx == track) ++done_count;
      });
      s->client->connection().set_clock(&mono);

      runtime.add_fd(s->sock.fd(), [s](uint32_t) {
        uint8_t buf[65536];
        for (;;) {
          const ssize_t n = s->sock.recv_from(buf, sizeof buf, nullptr);
          if (n < 0) return;
          s->client->on_datagram({buf, static_cast<size_t>(n)});
        }
      });

      const size_t global_index = sessions.size();
      loop.schedule_at(
          start_base + static_cast<TimeNs>(global_index) * ramp_step,
          [s] { s->client->start(); });

      stats.sessions.push_back(s);
      sessions.push_back(std::move(session));
    }
  }

  const TimeNs deadline = start_base + milliseconds(args.timeout_ms);
  runtime.run([&] {
    return done_count >= total ||
           net::MonotonicClock::raw_now() >= deadline;
  });

  // ---- report ----
  size_t handshake_failures = 0;
  std::printf("{\n  \"sessions_per_scheme\": %ld,\n  \"schemes\": [\n",
              args.sessions);
  for (size_t si = 0; si < per_scheme.size(); ++si) {
    const SchemeStats& st = per_scheme[si];
    size_t ok = 0;
    size_t zero_rtt = 0;
    size_t frames_done = 0;
    std::vector<TimeNs> ffct;
    for (const ClientSession* s : st.sessions) {
      const app::PlayerClient::Metrics& m = s->client->metrics();
      if (m.first_byte_at != kNoTime) {
        ++ok;
      } else {
        ++handshake_failures;
      }
      if (m.zero_rtt) ++zero_rtt;
      if (m.first_frame_done()) {
        ++frames_done;
        ffct.push_back(m.ffct());
      }
    }

    double sim_p50_us = -1;
    if (args.sim_compare) {
      // Rerun the same session population (same seed-derived draws) in
      // the simulator over the loopback-approximating path.
      std::vector<TimeNs> sim_ffct;
      const size_t cap = std::min<size_t>(
          st.sessions.size(), static_cast<size_t>(args.sim_sessions));
      for (size_t i = 0; i < cap; ++i) {
        const SessionDraw& d = st.sessions[i]->draw;
        exp::SessionConfig cfg;
        cfg.path = loopback_path();
        cfg.scheme = st.scheme;
        cfg.seed = d.client_id;
        cfg.zero_rtt = d.zero_rtt;
        if (d.cookie) cfg.cookie = loopback_cookie(0, TimeNs{0});
        cfg.origin_latency = microseconds(args.origin_latency_us);
        cfg.track_frames = static_cast<uint32_t>(args.track_frames);
        const exp::SessionResult r = exp::run_session(cfg);
        if (r.first_frame_completed) sim_ffct.push_back(r.ffct);
      }
      sim_p50_us = percentile_us(sim_ffct, 0.5);
    }

    const double p50 = percentile_us(ffct, 0.5);
    const double p90 = percentile_us(ffct, 0.9);
    std::printf("    {\"scheme\": \"%s\", \"sessions\": %zu, "
                "\"handshakes_ok\": %zu, \"handshake_failures\": %zu, "
                "\"zero_rtt\": %zu, \"first_frame_done\": %zu, "
                "\"ffct_p50_us\": %.1f, \"ffct_p90_us\": %.1f, "
                "\"sim_ffct_p50_us\": %.1f}%s\n",
                core::scheme_token(st.scheme), st.sessions.size(), ok,
                st.sessions.size() - ok, zero_rtt, frames_done, p50, p90,
                sim_p50_us, si + 1 < per_scheme.size() ? "," : "");
    std::fprintf(stderr,
                 "wira_loadgen: %-10s %4zu sessions, %zu handshakes ok, "
                 "%zu zero-rtt, ffct p50 %.1f us p90 %.1f us, sim p50 "
                 "%.1f us\n",
                 core::scheme_token(st.scheme), st.sessions.size(), ok,
                 zero_rtt, p50, p90, sim_p50_us);
  }
  std::printf("  ],\n  \"handshake_failures\": %zu\n}\n",
              handshake_failures);
  return handshake_failures == 0 ? 0 : 3;
}
