#!/usr/bin/env bash
# Sanitizer gate: build the gate-labeled test set under Address+UB
# sanitizers (WIRA_SANITIZE, see the top-level CMakeLists.txt) in a
# dedicated build tree and run it.  The zero-copy datagram path hands out
# borrowed spans and pool-recycled buffers, so use-after-free and
# use-after-reset bugs are the failure class this script exists to catch;
# run it after any change to the arena, the parser, or buffer recycling.
# The gate label also covers the multiprocess population runner
# (test_exp's Harness.Multiprocess* fork real workers and exercise the
# record codec + salvage/retry paths under the sanitizers; worker children
# _Exit, so LSan only audits the parent).
#
# Usage: tools/run_asan.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWIRA_SANITIZE="address;undefined"
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error keeps UBSan failures fatal so ctest sees them; ASan is
# fatal by default.  detect_leaks stays on: the arena owns its blocks and
# the batch pool owns batches, so a leak report means ownership drifted.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "${build_dir}" -L gate --output-on-failure \
  -j "$(nproc)" "$@"
echo "sanitizer gate passed"
