#!/usr/bin/env bash
# Sanitizer gate: build the gate-labeled test set under Address+UB
# sanitizers (WIRA_SANITIZE, see the top-level CMakeLists.txt) in a
# dedicated build tree and run it.  The zero-copy datagram path hands out
# borrowed spans and pool-recycled buffers, so use-after-free and
# use-after-reset bugs are the failure class this script exists to catch;
# run it after any change to the arena, the parser, or buffer recycling.
# The gate label also covers the multiprocess population runner
# (test_exp's Harness.Multiprocess* fork real workers and exercise the
# record codec + salvage/retry paths under the sanitizers; worker children
# _Exit, so LSan only audits the parent).
#
# Usage: tools/run_asan.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWIRA_SANITIZE="address;undefined"
cmake --build "${build_dir}" -j "$(nproc)"
cmake --build "${build_dir}" -j "$(nproc)" --target soak

# halt_on_error keeps UBSan failures fatal so ctest sees them; ASan is
# fatal by default.  detect_leaks stays on: the arena owns its blocks and
# the batch pool owns batches, so a leak report means ownership drifted.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "${build_dir}" -L gate --output-on-failure \
  -j "$(nproc)" "$@"

# Tiny streaming soak under the sanitizers: the recycling machinery
# (loop scratch pools, segment-cache graveyard, chunk-byte pooling)
# reuses buffers across sessions, so this sweep is the densest
# use-after-reset exposure the suite has.  Session count stays small —
# sanitized sessions are ~10x slower — but every recycled path runs
# hundreds of times.
# The anomaly flags run the flight recorder's materialization path
# (snapshot, sqlog serialization, crash-fd plumbing) under the
# sanitizers too; the seeded 1 ms deadline guarantees dumps happen.
rm -rf "${build_dir}/anomaly"
"${build_dir}/bench/soak" --sessions 200 --flush-every 50 \
  --flush-out "${build_dir}/soak_flush.jsonl" \
  --anomaly-dir "${build_dir}/anomaly" --anomaly-ffct-ms 1 \
  > "${build_dir}/soak.json"
"${build_dir}/tools/wira_trace_join" --trace-dir "${build_dir}/anomaly"
echo "sanitized anomaly dumps joined"
echo "sanitized soak passed ($(
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["sessions"], "sessions")' \
    "${build_dir}/soak.json"))"

# Exporter smoke under the sanitizers: tail the flush file the soak just
# wrote, scrape it once over a real socket, shut down cleanly.  This is
# the repo's only epoll/socket code; ASan sees the whole accept-read-
# write-close cycle and LSan audits the daemon's teardown.
"${build_dir}/tools/wira_exporterd" \
  --flush-jsonl "${build_dir}/soak_flush.jsonl" --listen 0 \
  --port-file "${build_dir}/exporter.port" &
exporter_pid=$!
trap 'kill "${exporter_pid}" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
  [[ -s "${build_dir}/exporter.port" ]] && break
  sleep 0.1
done
port="$(cat "${build_dir}/exporter.port")"
for _ in $(seq 50); do
  curl -sf "http://127.0.0.1:${port}/metrics" \
    | grep -q '^wira_soak_sessions_total 200$' && break
  sleep 0.1
done
curl -sf "http://127.0.0.1:${port}/metrics" \
  | grep -q '^wira_soak_sessions_total 200$'
kill "${exporter_pid}"
wait "${exporter_pid}"
trap - EXIT
echo "sanitized exporter scrape passed"

# Loopback socket-dispatch sweep under the sanitizers: two wira_workerd
# daemons serve the fig11 sweep over --workers TCP at two chunk sizes.
# This runs the whole shard transport (connect, kConfig handshake,
# chunk assignment, record reassembly) with ASan watching both ends —
# the daemons are sanitized binaries too — and the stdout + metrics
# JSONL must be byte-identical to the serial run.
"${build_dir}/tools/wira_workerd" --listen 0 \
  --port-file "${build_dir}/workerd1.port" &
workerd1_pid=$!
"${build_dir}/tools/wira_workerd" --listen 0 \
  --port-file "${build_dir}/workerd2.port" &
workerd2_pid=$!
trap 'kill "${workerd1_pid}" "${workerd2_pid}" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
  [[ -s "${build_dir}/workerd1.port" && -s "${build_dir}/workerd2.port" ]] \
    && break
  sleep 0.1
done
wep1="$(cat "${build_dir}/workerd1.port")"
wep2="$(cat "${build_dir}/workerd2.port")"
"${build_dir}/bench/fig11_overall" 40 3 \
  --metrics-out "${build_dir}/fig11_serial_metrics.jsonl" \
  > "${build_dir}/fig11_serial.txt"
for chunk in 1 8; do
  "${build_dir}/bench/fig11_overall" 40 3 --chunk "${chunk}" \
    --workers "${wep1},${wep2}" \
    --metrics-out "${build_dir}/fig11_tcp_metrics.jsonl" \
    > "${build_dir}/fig11_tcp.txt"
  diff "${build_dir}/fig11_serial.txt" "${build_dir}/fig11_tcp.txt"
  diff "${build_dir}/fig11_serial_metrics.jsonl" \
    "${build_dir}/fig11_tcp_metrics.jsonl"
done
kill "${workerd1_pid}" "${workerd2_pid}"
wait "${workerd1_pid}" "${workerd2_pid}" || true
trap - EXIT
echo "sanitized loopback dispatch sweep passed"

# Real-socket serving mode under the sanitizers: wira_proxyd serves all
# four schemes over loopback UDP while a sanitized wira_loadgen runs a
# small concurrent population against it.  This is the epoll runtime,
# the UDP demux, and the whole QUIC stack on real sockets with ASan
# watching both processes; LSan audits the daemon's SIGTERM teardown.
"${build_dir}/tools/wira_proxyd" \
  --port-file "${build_dir}/proxyd.port" 2> "${build_dir}/proxyd.log" &
proxyd_pid=$!
trap 'kill "${proxyd_pid}" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
  [[ -s "${build_dir}/proxyd.port" ]] && break
  sleep 0.1
done
"${build_dir}/tools/wira_loadgen" --ports "${build_dir}/proxyd.port" \
  --sessions 10 --timeout-ms 120000 > "${build_dir}/loadgen.json"
kill "${proxyd_pid}"
wait "${proxyd_pid}" || true
trap - EXIT
grep -q '"handshake_failures": 0' "${build_dir}/loadgen.json"
echo "sanitized proxyd/loadgen loopback pass passed"
echo "sanitizer gate passed"
