#!/usr/bin/env bash
# Sanitizer gate: build the gate-labeled test set under Address+UB
# sanitizers (WIRA_SANITIZE, see the top-level CMakeLists.txt) in a
# dedicated build tree and run it.  The zero-copy datagram path hands out
# borrowed spans and pool-recycled buffers, so use-after-free and
# use-after-reset bugs are the failure class this script exists to catch;
# run it after any change to the arena, the parser, or buffer recycling.
# The gate label also covers the multiprocess population runner
# (test_exp's Harness.Multiprocess* fork real workers and exercise the
# record codec + salvage/retry paths under the sanitizers; worker children
# _Exit, so LSan only audits the parent).
#
# Usage: tools/run_asan.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWIRA_SANITIZE="address;undefined"
cmake --build "${build_dir}" -j "$(nproc)"
cmake --build "${build_dir}" -j "$(nproc)" --target soak

# halt_on_error keeps UBSan failures fatal so ctest sees them; ASan is
# fatal by default.  detect_leaks stays on: the arena owns its blocks and
# the batch pool owns batches, so a leak report means ownership drifted.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "${build_dir}" -L gate --output-on-failure \
  -j "$(nproc)" "$@"

# Tiny streaming soak under the sanitizers: the recycling machinery
# (loop scratch pools, segment-cache graveyard, chunk-byte pooling)
# reuses buffers across sessions, so this sweep is the densest
# use-after-reset exposure the suite has.  Session count stays small —
# sanitized sessions are ~10x slower — but every recycled path runs
# hundreds of times.
"${build_dir}/bench/soak" --sessions 200 --flush-every 50 \
  --flush-out "${build_dir}/soak_flush.jsonl" > "${build_dir}/soak.json"
echo "sanitized soak passed ($(
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["sessions"], "sessions")' \
    "${build_dir}/soak.json"))"
echo "sanitizer gate passed"
