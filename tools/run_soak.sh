#!/usr/bin/env bash
# Bounded-memory soak gate: Release build, then one streaming-aggregation
# soak run (bench/soak) whose JSON is written to SOAK_<date>.json at the
# repo root and gated on the two soak contracts (DESIGN.md §6):
#
#   rss_plateau        <= 1.10   resident set is flat once warmed up —
#                                the late-half RSS maximum may exceed the
#                                early-half maximum by at most 10%
#   allocs_per_session <= 1140   steady-state heap allocations stay at
#                                least 2x below the pre-recycling
#                                baseline (2280/session)
#
# Defaults to a 20k-session run (~5 min serial) — enough flushes for a
# meaningful plateau split.  The headline endurance run is
#   tools/run_soak.sh --sessions 1000000 --flush-every 10000
# (~4h on one core; same gates, same output files).
#
# Usage: tools/run_soak.sh [soak args...]   (see bench/soak --help text)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-release"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target soak

out="${repo_root}/SOAK_$(date +%Y-%m-%d).json"
flush_out="${repo_root}/soak_flush.jsonl"

"${build_dir}/bench/soak" --flush-out "${flush_out}" "$@" | tee "${out}"
echo "wrote ${out} (flush lines in ${flush_out})"

python3 - "${out}" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    soak = json.load(f)

failures = []

plateau = soak.get("rss_plateau", 0.0)
samples = soak.get("rss_samples", 0)
if samples < 2:
    # /proc/self/status unavailable or a single flush: nothing to gate,
    # but say so rather than silently passing.
    print(f"note: only {samples} RSS sample(s); plateau gate skipped")
elif plateau > 1.10:
    failures.append(
        f"rss_plateau {plateau:.4f} > 1.10 (RSS still growing late in "
        f"the run over {samples} samples)")
else:
    print(f"rss_plateau {plateau:.4f} <= 1.10 over {samples} samples: OK")

allocs = soak.get("allocs_per_session", 0.0)
if allocs <= 0:
    failures.append("allocs_per_session missing (alloc hook not linked?)")
elif allocs > 1140:
    failures.append(
        f"allocs_per_session {allocs:.1f} > 1140 (steady-state recycling "
        f"budget: half the 2280/session pre-recycling baseline)")
else:
    print(f"allocs_per_session {allocs:.1f} <= 1140: OK")

if failures:
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print(f"soak gate passed: {soak['sessions']} sessions, "
      f"peak_rss {soak['peak_rss_mb']:.1f} MB, "
      f"{soak['sessions_per_sec']:.1f} sessions/s")
PY
