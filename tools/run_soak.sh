#!/usr/bin/env bash
# Bounded-memory soak gate: Release build, then one streaming-aggregation
# soak run (bench/soak) whose JSON is written to SOAK_<date>.json at the
# repo root and gated on the two soak contracts (DESIGN.md §6):
#
#   rss_plateau        <= 1.10   resident set is flat once warmed up —
#                                the late-half RSS maximum may exceed the
#                                early-half maximum by at most 10%
#   allocs_per_session <= 1140   steady-state heap allocations stay at
#                                least 2x below the pre-recycling
#                                baseline (2280/session)
#
# A wira_exporterd (DESIGN.md §7) runs alongside the soak, tailing the
# flush JSONL and serving /metrics on an ephemeral loopback port; the run
# is additionally gated on the live-telemetry contract:
#
#   mid-soak scrape    /metrics answers while the soak is running and the
#                      payload parses as Prometheus text exposition
#   final consistency  the post-run scrape's wira_soak_sessions_total and
#                      per-scheme counters equal the final JSON aggregate
#
# The flight recorder (DESIGN.md §7) is exercised end to end: the soak is
# seeded with an impossible first-frame deadline (--anomaly-ffct-ms 1) so
# every session trips a trigger, and the run is gated on
#
#   anomaly scrape     wira_anomaly_dumps_total{trigger=...} shows up in a
#                      live /metrics scrape
#   joinable dumps     the materialized .server/.client.sqlog pairs join
#                      cleanly under wira_trace_join (exit 0)
#
# Defaults to a 20k-session run (~5 min serial) — enough flushes for a
# meaningful plateau split.  The headline endurance run is
#   tools/run_soak.sh --sessions 1000000 --flush-every 10000
# (~4h on one core; same gates, same output files).
#
# Usage: tools/run_soak.sh [soak args...]   (see bench/soak --help text)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-release"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target soak wira_exporterd wira_trace_join

out="${repo_root}/SOAK_$(date +%Y-%m-%d).json"
flush_out="${repo_root}/soak_flush.jsonl"
scrape_dir="$(mktemp -d)"
port_file="${scrape_dir}/exporter.port"
anomaly_dir="${scrape_dir}/anomaly"

# The soak truncates its flush file on open; start from the same empty
# state so the exporter never serves a stale previous run.
: > "${flush_out}"

"${build_dir}/tools/wira_exporterd" \
  --flush-jsonl "${flush_out}" --listen 0 --port-file "${port_file}" &
exporter_pid=$!
cleanup() {
  kill "${exporter_pid}" 2>/dev/null || true
  wait "${exporter_pid}" 2>/dev/null || true
  rm -rf "${scrape_dir}"
}
trap cleanup EXIT

for _ in $(seq 50); do
  [[ -s "${port_file}" ]] && break
  sleep 0.1
done
port="$(cat "${port_file}")"
echo "exporter serving http://127.0.0.1:${port}/metrics (pid ${exporter_pid})"
curl -sf "http://127.0.0.1:${port}/healthz" > /dev/null

"${build_dir}/bench/soak" --flush-out "${flush_out}" \
  --anomaly-dir "${anomaly_dir}" --anomaly-ffct-ms 1 "$@" > "${out}" &
soak_pid=$!

# Mid-soak scrape: wait until the exporter has consumed at least one flush
# line while the soak is still running, then capture /metrics.
mid_scrape="${scrape_dir}/mid.prom"
got_mid=0
while kill -0 "${soak_pid}" 2>/dev/null; do
  if curl -sf "http://127.0.0.1:${port}/metrics" > "${mid_scrape}" &&
     grep -q '^wira_soak_sessions_total ' "${mid_scrape}"; then
    got_mid=1
    break
  fi
  sleep 0.5
done
wait "${soak_pid}"
cat "${out}"
echo "wrote ${out} (flush lines in ${flush_out})"

# Flight-recorder gate: the seeded 1 ms first-frame deadline must have
# materialized at least one dump pair, and the whole anomaly dir must join
# cleanly (wira_trace_join exits 0 only when every pair joins).
pair_count="$(find "${anomaly_dir}" -name '*.server.sqlog' 2>/dev/null | wc -l)"
if [[ "${pair_count}" -lt 1 ]]; then
  echo "FAIL: seeded anomaly produced no dump pairs in ${anomaly_dir}" >&2
  exit 1
fi
"${build_dir}/tools/wira_trace_join" --trace-dir "${anomaly_dir}"
echo "anomaly gate: ${pair_count} dump pair(s) joined with 0 failures"
if [[ "${got_mid}" != 1 ]]; then
  # Tiny runs can finish before their first flush line lands; the final
  # scrape below still gates the telemetry path, so warn rather than fail.
  echo "note: soak finished before a mid-run scrape saw a flush line"
  mid_scrape=""
fi

# Final scrape: give the exporter one tail cycle to reach the final line,
# then require the served counters to match the soak's JSON aggregate.
final_scrape="${scrape_dir}/final.prom"
for _ in $(seq 50); do
  curl -sf "http://127.0.0.1:${port}/metrics" > "${final_scrape}"
  grep -q '^wira_soak_final 1$' "${final_scrape}" && break
  sleep 0.2
done

# Live-telemetry leg of the anomaly gate: the per-trigger counters folded
# into the flush lines must surface in a real scrape.
if ! grep -q '^wira_anomaly_dumps_total{trigger=' "${final_scrape}"; then
  echo "FAIL: wira_anomaly_dumps_total missing from live scrape" >&2
  exit 1
fi
echo "anomaly gate: wira_anomaly_dumps_total served by live exporter"

python3 - "${out}" "${final_scrape}" ${mid_scrape:+"${mid_scrape}"} <<'PY'
import json, re, sys

with open(sys.argv[1]) as f:
    soak = json.load(f)

failures = []

plateau = soak.get("rss_plateau", 0.0)
samples = soak.get("rss_samples", 0)
if samples < 2:
    # /proc/self/status unavailable or a single flush: nothing to gate,
    # but say so rather than silently passing.
    print(f"note: only {samples} RSS sample(s); plateau gate skipped")
elif plateau > 1.10:
    failures.append(
        f"rss_plateau {plateau:.4f} > 1.10 (RSS still growing late in "
        f"the run over {samples} samples)")
else:
    print(f"rss_plateau {plateau:.4f} <= 1.10 over {samples} samples: OK")

allocs = soak.get("allocs_per_session", 0.0)
if allocs <= 0:
    failures.append("allocs_per_session missing (alloc hook not linked?)")
elif allocs > 1140:
    failures.append(
        f"allocs_per_session {allocs:.1f} > 1140 (steady-state recycling "
        f"budget: half the 2280/session pre-recycling baseline)")
else:
    print(f"allocs_per_session {allocs:.1f} <= 1140: OK")


SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
    r"[-+]?(\d+(\.\d+)?([eE][-+]?\d+)?|Inf|NaN)$")


def parse_exposition(path):
    """{family-sample-name-with-labels: float} plus a format check."""
    series = {}
    with open(path) as f:
        for ln, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            if not SAMPLE_RE.match(line):
                failures.append(f"{path}:{ln}: not exposition format: "
                                f"{line!r}")
                continue
            name, value = line.rsplit(" ", 1)
            series[name] = float(value)
    return series


final = parse_exposition(sys.argv[2])
sessions = soak["sessions"]
got = final.get("wira_soak_sessions_total")
if got != float(sessions):
    failures.append(f"final scrape wira_soak_sessions_total {got} != "
                    f"soak sessions {sessions}")
else:
    print(f"final scrape sessions_total {int(got)} == final JSON: OK")
if final.get("wira_soak_final") != 1.0:
    failures.append("final scrape never saw the final flush line "
                    "(wira_soak_final != 1)")
for scheme, agg in soak["aggregate"]["schemes"].items():
    key = f'wira_soak_scheme_sessions_total{{scheme="{scheme}"}}'
    if final.get(key) != float(agg["sessions"]):
        failures.append(f"final scrape {key} {final.get(key)} != "
                        f"aggregate {agg['sessions']}")

if len(sys.argv) > 3:
    mid = parse_exposition(sys.argv[3])
    mid_sessions = mid.get("wira_soak_sessions_total", -1.0)
    if not 0 < mid_sessions <= sessions:
        failures.append(f"mid-soak scrape sessions_total {mid_sessions} "
                        f"outside (0, {sessions}]")
    else:
        print(f"mid-soak scrape parsed: {int(mid_sessions)}/{sessions} "
              f"sessions at scrape time: OK")

if failures:
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print(f"soak gate passed: {soak['sessions']} sessions, "
      f"peak_rss {soak['peak_rss_mb']:.1f} MB, "
      f"{soak['sessions_per_sec']:.1f} sessions/s")
PY
