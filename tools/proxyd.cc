// wira_proxyd: real-socket serving mode (DESIGN.md §6; ROADMAP tentpole).
//
// An epoll-driven UDP front end that speaks the repo's QUIC dialect over
// real sockets.  The session objects are the *same* app::WiraServer /
// quic::Connection instances the simulator runs — they schedule on one
// sim::EventLoop that net::EpollRuntime keeps synchronized to
// CLOCK_MONOTONIC, so the discrete-event loop doubles as the daemon's
// timer wheel and nothing in src/app, src/quic or src/cc knows whether
// time is virtual or real.
//
// One UDP socket per Table-I scheme; sessions demux by peer address
// (wira_loadgen gives every session its own connected socket, so the
// source port is the session identity).  --port-file lists one
// "scheme_token addr:port" line per scheme — the exact endpoints
// wira_loadgen consumes.
//
//   wira_proxyd --listen 0 --port-file /tmp/proxyd.ports
//   wira_proxyd --schemes wira --trace-dir traces   # server-vantage qlogs
#include <sys/resource.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/wira_server.h"
#include "core/init_config.h"
#include "crypto/aead.h"
#include "media/stream_source.h"
#include "net/clock.h"
#include "net/epoll_runtime.h"
#include "net/udp_socket.h"
#include "obs/qlog.h"
#include "sim/event_loop.h"
#include "trace/tracer.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Args {
  std::string bind = "127.0.0.1";
  std::string port_file;
  std::string schemes = "baseline,wira_ff,wira_hx,wira";
  std::string trace_dir;  ///< empty = no server-vantage qlogs
  uint16_t listen = 0;    ///< first scheme's port; 0 = all ephemeral
  int rcvbuf_bytes = 8 * 1024 * 1024;
  long origin_latency_us = 5000;
  long stream_horizon_ms = 12000;
};

[[noreturn]] void usage(const char* prog, const char* msg) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: %s [--bind ADDR] [--listen PORT] [--port-file FILE]\n"
               "          [--schemes tok,...] [--trace-dir DIR]\n"
               "          [--rcvbuf BYTES] [--origin-latency-us N]\n"
               "          [--stream-horizon-ms N]\n",
               msg, prog);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(arg, flag) != 0) return nullptr;
      if (i + 1 >= argc) usage(argv[0], "flag needs a value");
      return argv[++i];
    };
    auto num = [&](const char* flag, long lo, long hi,
                   long* out) -> bool {
      const char* v = value(flag);
      if (v == nullptr) return false;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < lo || n > hi) {
        usage(argv[0], (std::string(flag) + " out of range").c_str());
      }
      *out = n;
      return true;
    };
    long n = 0;
    if (const char* v = value("--bind")) {
      a.bind = v;
    } else if (const char* v = value("--port-file")) {
      a.port_file = v;
    } else if (const char* v = value("--schemes")) {
      a.schemes = v;
    } else if (const char* v = value("--trace-dir")) {
      a.trace_dir = v;
    } else if (num("--listen", 0, 65535, &n)) {
      a.listen = static_cast<uint16_t>(n);
    } else if (num("--rcvbuf", 0, 1 << 30, &n)) {
      a.rcvbuf_bytes = static_cast<int>(n);
    } else if (num("--origin-latency-us", 0, 60'000'000, &n)) {
      a.origin_latency_us = n;
    } else if (num("--stream-horizon-ms", 100, 600'000, &n)) {
      a.stream_horizon_ms = n;
    } else {
      usage(argv[0], "unknown argument");
    }
  }
  return a;
}

std::vector<wira::core::Scheme> parse_schemes(const Args& a,
                                              const char* prog) {
  std::vector<wira::core::Scheme> out;
  size_t at = 0;
  while (at <= a.schemes.size()) {
    const size_t comma = a.schemes.find(',', at);
    const std::string tok = a.schemes.substr(
        at, comma == std::string::npos ? std::string::npos : comma - at);
    wira::core::Scheme s;
    if (!wira::core::scheme_from_token(tok.c_str(), &s)) {
      usage(prog, ("unknown scheme token \"" + tok + "\"").c_str());
    }
    out.push_back(s);
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

/// One live session: the same objects exp::run_session wires up, minus
/// the simulated path — datagrams arrive from the socket and leave
/// through sendto(peer).
struct Session {
  wira::media::LiveStream stream;
  wira::trace::Tracer tracer;
  std::ofstream qlog;
  std::optional<wira::obs::QlogStreamWriter> qlog_writer;
  std::optional<wira::app::WiraServer> server;

  Session(const wira::media::StreamProfile& profile, uint64_t corpus_seed)
      : stream(profile, corpus_seed) {}
};

struct SchemeListener {
  wira::core::Scheme scheme;
  wira::net::UdpSocket sock;
  std::map<wira::net::PeerAddr, std::unique_ptr<Session>> sessions;
  uint64_t datagrams = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace wira;
  const Args args = parse_args(argc, argv);
  const std::vector<core::Scheme> schemes = parse_schemes(args, argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  sim::EventLoop loop;
  net::EpollRuntime runtime(loop);
  if (!runtime.ok()) {
    std::fprintf(stderr, "wira_proxyd: %s\n", runtime.error().c_str());
    return 1;
  }
  // Session timers are real timestamps from here on; scheduling anything
  // before this sync would backdate it to loop time 0.
  runtime.sync_now();
  const net::MonotonicClock mono;

  const crypto::Key master_key = crypto::key_from_string("wira-server-7");
  const media::StreamProfile profile;  // corpus default, as in the sim
  constexpr uint64_t kCorpusSeed = 42;

  std::vector<std::unique_ptr<SchemeListener>> listeners;
  for (size_t si = 0; si < schemes.size(); ++si) {
    auto lst = std::make_unique<SchemeListener>();
    lst->scheme = schemes[si];
    const uint16_t port =
        args.listen == 0 ? 0 : static_cast<uint16_t>(args.listen + si);
    std::string error;
    if (!lst->sock.open_bound(args.bind, port, args.rcvbuf_bytes, &error)) {
      std::fprintf(stderr, "wira_proxyd: %s: %s\n",
                   core::scheme_token(lst->scheme), error.c_str());
      return 1;
    }
    listeners.push_back(std::move(lst));
  }

  // Demux + session bring-up.  The recv loop drains the socket fully per
  // wakeup; a new peer address materializes a new WiraServer wired to
  // sendto(peer) with buffers recycled through the loop's pool.
  for (auto& lst_ptr : listeners) {
    SchemeListener* lst = lst_ptr.get();
    runtime.add_fd(lst->sock.fd(), [&, lst](uint32_t) {
      uint8_t buf[65536];
      for (;;) {
        net::PeerAddr peer;
        const ssize_t n = lst->sock.recv_from(buf, sizeof buf, &peer);
        if (n < 0) return;
        lst->datagrams++;
        auto it = lst->sessions.find(peer);
        if (it == lst->sessions.end()) {
          auto session = std::make_unique<Session>(profile, kCorpusSeed);
          Session* s = session.get();
          if (!args.trace_dir.empty()) {
            const std::string name = "peer_" + peer.file_tag();
            s->qlog.open(args.trace_dir + "/" + name + ".server.sqlog",
                         std::ios::trunc);
            if (s->qlog) {
              obs::QlogTraceInfo info;
              info.title = name;
              info.group_id = name;
              s->qlog_writer.emplace(s->qlog, info);
              s->tracer.stream_to(&*s->qlog_writer, /*keep_buffer=*/false);
            }
          }
          app::ServerConfig cfg;
          cfg.scheme = lst->scheme;
          cfg.master_key = master_key;
          cfg.expected_od_key = 0;  // serve any client's cookie binding
          cfg.origin_latency = microseconds(args.origin_latency_us);
          cfg.stream_horizon = milliseconds(args.stream_horizon_ms);
          s->server.emplace(loop, s->stream, cfg,
                            [&, lst, peer](std::vector<uint8_t> dgram) {
                              lst->sock.send_to(peer, dgram);
                              loop.buffers().release(std::move(dgram));
                            });
          s->server->connection().set_clock(&mono);
          if (s->qlog_writer.has_value()) s->server->set_tracer(&s->tracer);
          it = lst->sessions.emplace(peer, std::move(session)).first;
        }
        it->second->server->on_datagram({buf, static_cast<size_t>(n)});
      }
    });
  }

  if (!args.port_file.empty()) {
    std::FILE* f = std::fopen(args.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "wira_proxyd: cannot write %s\n",
                   args.port_file.c_str());
      return 1;
    }
    for (const auto& lst : listeners) {
      std::fprintf(f, "%s %s\n", core::scheme_token(lst->scheme),
                   lst->sock.local_addr().display().c_str());
    }
    std::fclose(f);
  }
  for (const auto& lst : listeners) {
    std::fprintf(stderr, "wira_proxyd: %s on %s\n",
                 core::scheme_token(lst->scheme),
                 lst->sock.local_addr().display().c_str());
  }

  const bool ok = runtime.run([] { return g_stop != 0; });
  if (!ok) {
    std::fprintf(stderr, "wira_proxyd: %s\n", runtime.error().c_str());
    return 1;
  }
  uint64_t sessions = 0;
  uint64_t datagrams = 0;
  for (const auto& lst : listeners) {
    sessions += lst->sessions.size();
    datagrams += lst->datagrams;
  }
  std::fprintf(stderr,
               "wira_proxyd: served %llu session(s), %llu datagram(s)\n",
               static_cast<unsigned long long>(sessions),
               static_cast<unsigned long long>(datagrams));
  return 0;
}
