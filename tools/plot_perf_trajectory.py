#!/usr/bin/env python3
"""Render the perf trajectory accumulated by tools/run_perf_smoke.sh.

Reads bench_history/perf_trajectory.jsonl (one perf_smoke record per line)
and prints, per metric, an ASCII sparkline over time plus the latest value
and the delta against the median of the preceding records — the same
median tools/bench_gate.py gates on.  Stdlib only.

Usage:
  tools/plot_perf_trajectory.py                          # default history
  tools/plot_perf_trajectory.py bench_history/perf_trajectory.jsonl
  tools/plot_perf_trajectory.py --metric sessions_per_sec_1t --width 72
"""

import argparse
import json
import sys

DEFAULT_HISTORY = "bench_history/perf_trajectory.jsonl"
# Scalar metrics worth a lane, in display order.
DEFAULT_METRICS = [
    "sessions_per_sec_1t",
    "sessions_per_sec_nt",
    "speedup",
    "metrics_overhead",
]
TICKS = " .:-=+*#%@"


def median(vals):
    s = sorted(vals)
    n = len(s)
    mid = n // 2
    if n % 2 == 1:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def load(path):
    rows = []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(row, dict):
                    rows.append(row)
    except OSError as e:
        sys.exit("plot_perf_trajectory: cannot read %s: %s" % (path, e))
    return rows


def series(rows, metric):
    """[(date, value)] for rows that carry the metric (dotted path ok)."""
    out = []
    parts = metric.split(".")
    for row in rows:
        value = row
        for p in parts:
            value = value.get(p) if isinstance(value, dict) else None
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append((row.get("date", "?"), float(value)))
    return out


def sparkline(values, width):
    if len(values) > width:
        values = values[-width:]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return TICKS[len(TICKS) // 2] * len(values)
    scale = (len(TICKS) - 1) / (hi - lo)
    return "".join(TICKS[int((v - lo) * scale)] for v in values)


def lane(rows, metric, width):
    pts = series(rows, metric)
    if not pts:
        return "%-24s (no data)" % metric
    values = [v for _, v in pts]
    latest = values[-1]
    line = "%-24s %s" % (metric, sparkline(values, width))
    line += "  latest=%.4g" % latest
    if len(values) >= 2:
        base = median(values[:-1])
        if base != 0:
            line += "  vs median %+.1f%%" % (100.0 * (latest - base) / base)
    line += "  (n=%d)" % len(values)
    return line


def ffct_metrics(rows):
    """Every ffct_ms.<scheme> path present anywhere in the history."""
    names = []
    for row in rows:
        ffct = row.get("ffct_ms")
        if isinstance(ffct, dict):
            for scheme in ffct:
                name = "ffct_ms." + scheme
                if name not in names:
                    names.append(name)
    return names


def main():
    ap = argparse.ArgumentParser(description="ASCII perf-trajectory plot")
    ap.add_argument("history", nargs="?", default=DEFAULT_HISTORY)
    ap.add_argument("--metric", action="append",
                    help="plot only this metric (repeatable; dotted paths "
                    "like ffct_ms.Wira reach into nested objects)")
    ap.add_argument("--width", type=int, default=60,
                    help="max sparkline width (default %(default)s)")
    args = ap.parse_args()

    rows = load(args.history)
    if not rows:
        sys.exit("plot_perf_trajectory: no records in %s" % args.history)

    first = rows[0].get("date", "?")
    last = rows[-1].get("date", "?")
    print("%d record(s), %s .. %s" % (len(rows), first, last))
    metrics = args.metric or DEFAULT_METRICS + ffct_metrics(rows)
    for metric in metrics:
        print(lane(rows, metric, args.width))


if __name__ == "__main__":
    main()
