#!/usr/bin/env bash
# Asserts wira_trace_join's documented exit-code contract (see --help):
#   0 clean, 3 parse failure, 4 vantage mismatch, 5 unpaired file,
# and the precedence parse > mismatch > unpaired when several occur.
# Usage: test_trace_join_exit_codes.sh /path/to/wira_trace_join
set -u

JOIN="${1:?usage: $0 /path/to/wira_trace_join}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

header() { # header <type> <group_id>
  printf '{"qlog_version": "0.3", "qlog_format": "JSON-SEQ", "title": "t", "trace": {"vantage_point": {"name": "x", "type": "%s"}, "common_fields": {"group_id": "%s", "reference_time": 0}}}\n' "$1" "$2"
}

write_client() { # write_client <file> <group_id>
  { header client "$2"
    printf '{"time": 1.250, "name": "wira:request_sent", "data": {"bytes": 33}}\n'
    printf '{"time": 9.003, "name": "wira:frame_complete", "data": {"frame_index": 1, "bytes": 50000}}\n'
  } > "$1"
}

write_server() { # write_server <file> <group_id>
  { header server "$2"
    printf '{"time": 2.000, "name": "wira:request_received", "data": {}}\n'
  } > "$1"
}

expect_exit() { # expect_exit <want> <label> <args...>
  local want="$1" label="$2"; shift 2
  "$JOIN" "$@" > /dev/null 2>&1
  local got=$?
  [ "$got" -eq "$want" ] || fail "$label: expected exit $want, got $got"
}

# 0: a clean joinable pair.
mkdir "$WORK/ok"
write_client "$WORK/ok/s0.client.sqlog" s0
write_server "$WORK/ok/s0.server.sqlog" s0
expect_exit 0 "clean pair" --trace-dir "$WORK/ok"

# 3: a trace file that fails to parse.
mkdir "$WORK/parse"
write_client "$WORK/parse/s0.client.sqlog" s0
write_server "$WORK/parse/s0.server.sqlog" s0
echo "this is not qlog" > "$WORK/parse/legacy.sqlog"
expect_exit 3 "parse failure" --trace-dir "$WORK/parse"

# 4: a pair whose vantages disagree (different group_ids -> join fails).
mkdir "$WORK/mismatch"
write_client "$WORK/mismatch/s0.client.sqlog" s0
write_server "$WORK/mismatch/s0.server.sqlog" OTHER
expect_exit 4 "mismatched pair" --trace-dir "$WORK/mismatch"

# 5: an unpaired vantage file.
mkdir "$WORK/unpaired"
write_client "$WORK/unpaired/s0.client.sqlog" s0
expect_exit 5 "unpaired client" --trace-dir "$WORK/unpaired"

# Precedence: parse failure beats mismatch beats unpaired.
mkdir "$WORK/mixed"
write_client "$WORK/mixed/s0.client.sqlog" s0
write_server "$WORK/mixed/s0.server.sqlog" OTHER
write_client "$WORK/mixed/s1.client.sqlog" s1
echo "garbage" > "$WORK/mixed/legacy.sqlog"
expect_exit 3 "mixed failures" --trace-dir "$WORK/mixed"

# 2: usage error; 0 + documented codes on --help.
expect_exit 2 "usage error" --no-such-flag
"$JOIN" --help | grep -q "exit codes:" || fail "--help must document exit codes"
"$JOIN" --help | grep -q "unpaired" || fail "--help must mention unpaired"

echo "trace_join exit codes: all checks passed"
