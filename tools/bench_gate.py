#!/usr/bin/env python3
"""Noise-aware perf/QoE regression gate over the perf trajectory.

Compares one bench/perf_smoke JSON (a BENCH_<date>.json file) against the
median of the last K comparable records in bench_history/
perf_trajectory.jsonl and exits non-zero when any guarded metric regressed
past its budget.  "Comparable" means same session count, seed and thread
count: records from differently shaped runs are skipped (throughput is
not comparable across thread counts), so resizing the smoke run never
trips the gate, it just restarts the history window.

Guarded metrics and their default budgets:

  sessions_per_sec_1t   relative, --budget-throughput (default 0.15):
  sessions_per_sec_nt   fail when current < median * (1 - budget).
  sessions_per_sec_np   Wall-clock throughput is the noisy one (shared
                        container, turbo states), hence the wide budget;
                        widen it with the flag if the host is noisier.
                        _np is the multiprocess (--procs) datapoint; it is
                        compared like the others when present in both the
                        run and the history (records predating it are
                        skipped with a note, and runs with a different
                        --procs count are only comparable to themselves in
                        practice since the default is fixed at 2).
  sessions_per_sec_dyn  The skewed-cost dynamic-dispatch datapoint (chunk
                        scheduler routing work around an injected cost
                        ramp).  Unlike _nt/_np it is gated even on
                        single-core hosts: the injected sleeps dominate
                        and overlap across worker processes, so the
                        number measures the scheduler, not parallel
                        compute speedup.

  ffct_ms.<scheme>      relative, --budget-ffct (default 0.02): fail when
                        current > median * (1 + budget).  The simulation
                        is deterministic for a fixed (sessions, seed), so
                        mean FFCT per scheme should be bit-identical run
                        to run; the 2% budget only absorbs histogram
                        requantization if bucket shapes ever change.

  metrics_overhead      absolute, --budget-overhead (default 0.10): fail
                        when current > median + budget.  A ratio near 0;
                        relative budgets are meaningless for it.

  allocs_per_session    relative, --budget-allocs (default 0.10): fail
                        when current > median * (1 + budget).  Operator-new
                        calls per (session, scheme) run in the serial pass.
                        The count is deterministic for a fixed workload
                        (no wall-clock in it), so the 10% budget exists
                        only to absorb allocator-library or stdlib-version
                        shifts; any real hot-path regression (a per-packet
                        vector reappearing) moves it by far more.

Budgets adapt to the trajectory's own variance: for each metric the gate
computes the MAD (median absolute deviation) of the comparable history
window and uses max(flag budget, k * MAD / median) as the effective
relative budget (max(flag budget, k * MAD) for absolute metrics), with
--mad-k defaulting to 4.0.  The flag values above are *floors*: a noisy
host widens its own budgets instead of flapping the gate, while a tight
history keeps the documented defaults — budgets never shrink below them.

Directionality is enforced: improvements (faster, lower FFCT) never fail.
Metrics absent from history (e.g. ffct_ms before it was recorded) are
skipped with a note — the gate only compares what both sides have.

Exit codes: 0 pass (or insufficient history, with a warning), 1 regression,
2 usage/IO error.  Stdlib only.

Usage:
  tools/bench_gate.py BENCH_2026-08-06.json
  tools/bench_gate.py BENCH.json --history bench_history/perf_trajectory.jsonl
  tools/bench_gate.py --self-test
"""

import argparse
import json
import os
import sys


GATED_THROUGHPUT = [
    "sessions_per_sec_1t",
    "sessions_per_sec_nt",
    "sessions_per_sec_np",
    "sessions_per_sec_dyn",
]


def median(vals):
    s = sorted(vals)
    n = len(s)
    if n == 0:
        raise ValueError("median of empty list")
    mid = n // 2
    if n % 2 == 1:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def mad(vals):
    """Median absolute deviation — the robust spread of the history window.

    Robustness matters here: one outlier record (a machine hiccup that
    still landed in the trajectory) must not inflate the budget the way it
    would inflate a standard deviation.
    """
    m = median(vals)
    return median([abs(v - m) for v in vals])


def effective_budget(floor, base_vals, mad_k, absolute):
    """max(floor, k*MAD) for absolute metrics, max(floor, k*MAD/|median|)
    for relative ones.  The flag-provided budget is a floor, never a cap."""
    spread = mad(base_vals)
    if absolute:
        return max(floor, mad_k * spread)
    baseline = median(base_vals)
    if baseline == 0:
        return floor
    return max(floor, mad_k * spread / abs(baseline))


def load_history(path):
    """Returns the list of parsed trajectory rows (bad lines skipped)."""
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict):
                rows.append(row)
    return rows


def flatten_ffct(record):
    """{"ffct_ms.Wira": 138.0, ...} from a bench record (may be empty)."""
    out = {}
    ffct = record.get("ffct_ms")
    if isinstance(ffct, dict):
        for scheme, value in ffct.items():
            if isinstance(value, (int, float)):
                out["ffct_ms." + scheme] = float(value)
    return out


class Gate:
    """Collects per-metric verdicts; pass/fail decided at the end."""

    def __init__(self, out=sys.stdout):
        self.failures = []
        self.checks = 0
        self.out = out

    def note(self, msg):
        print("bench_gate: " + msg, file=self.out)

    def check(self, name, current, baseline, budget, kind):
        """kind: 'lower_fails' (throughput) or 'higher_fails' (latency).

        budget is relative unless kind ends with '_abs'.
        """
        self.checks += 1
        absolute = kind.endswith("_abs")
        direction = "lower_fails" if kind.startswith("lower") else "higher_fails"
        if absolute:
            if direction == "lower_fails":
                limit = baseline - budget
                bad = current < limit
            else:
                limit = baseline + budget
                bad = current > limit
        else:
            if direction == "lower_fails":
                limit = baseline * (1.0 - budget)
                bad = current < limit
            else:
                limit = baseline * (1.0 + budget)
                bad = current > limit
        verdict = "FAIL" if bad else "ok"
        self.note(
            "%-28s current=%-10.4g median=%-10.4g limit=%-10.4g %s"
            % (name, current, baseline, limit, verdict)
        )
        if bad:
            self.failures.append(name)

    def passed(self):
        return not self.failures


def run_gate(current, history, args, out=sys.stdout):
    """Returns process exit code (0 pass, 1 regression)."""
    gate = Gate(out)
    comparable = [
        r
        for r in history
        if r.get("sessions") == current.get("sessions")
        and r.get("seed") == current.get("seed")
        and r.get("threads") == current.get("threads")
    ]
    window = comparable[-args.window :]
    if len(window) < args.min_history:
        gate.note(
            "only %d comparable history record(s) (need %d) — passing "
            "without comparison" % (len(window), args.min_history)
        )
        return 0
    gate.note(
        "comparing against median of last %d comparable record(s)"
        % len(window)
    )

    def budget_for(name, floor, base, absolute=False):
        b = effective_budget(floor, base, args.mad_k, absolute)
        if b > floor:
            gate.note(
                "%-28s budget widened to %.3g (floor %.3g) by history "
                "variance" % (name, b, floor)
            )
        return b

    # On a single-core host the threaded/multiprocess passes measure
    # scheduler contention, not speedup: their sessions/sec is serial
    # throughput plus noise, so comparing it would gate on noise.  The
    # serial datapoint (sessions_per_sec_1t) is still gated.
    single_core = current.get("hardware_concurrency") == 1
    for name in GATED_THROUGHPUT:
        if single_core and name in ("sessions_per_sec_nt",
                                    "sessions_per_sec_np"):
            gate.note("%-28s skipped (single-core host: threaded speedup "
                      "is not meaningful)" % name)
            continue
        cur = current.get(name)
        base = [r[name] for r in window if isinstance(r.get(name), (int, float))]
        if not isinstance(cur, (int, float)) or not base:
            gate.note("%-28s skipped (absent from run or history)" % name)
            continue
        gate.check(name, float(cur), median(base),
                   budget_for(name, args.budget_throughput, base),
                   "lower_fails")

    cur_ffct = flatten_ffct(current)
    hist_ffct = [flatten_ffct(r) for r in window]
    for name in sorted(cur_ffct):
        base = [h[name] for h in hist_ffct if name in h]
        if not base:
            gate.note("%-28s skipped (absent from history)" % name)
            continue
        gate.check(name, cur_ffct[name], median(base),
                   budget_for(name, args.budget_ffct, base), "higher_fails")

    cur_allocs = current.get("allocs_per_session")
    base_allocs = [
        r["allocs_per_session"]
        for r in window
        if isinstance(r.get("allocs_per_session"), (int, float))
    ]
    if isinstance(cur_allocs, (int, float)) and base_allocs:
        gate.check("allocs_per_session", float(cur_allocs),
                   median(base_allocs),
                   budget_for("allocs_per_session", args.budget_allocs,
                              base_allocs), "higher_fails")
    else:
        gate.note("allocs_per_session           skipped (absent from run "
                  "or history)")

    cur_ov = current.get("metrics_overhead")
    base_ov = [
        r["metrics_overhead"]
        for r in window
        if isinstance(r.get("metrics_overhead"), (int, float))
    ]
    if isinstance(cur_ov, (int, float)) and base_ov:
        gate.check("metrics_overhead", float(cur_ov), median(base_ov),
                   budget_for("metrics_overhead", args.budget_overhead,
                              base_ov, absolute=True), "higher_fails_abs")
    else:
        gate.note("metrics_overhead             skipped (absent)")

    if gate.passed():
        gate.note("PASS (%d metric(s) checked)" % gate.checks)
        return 0
    gate.note("REGRESSION in: " + ", ".join(gate.failures))
    return 1


def self_test(args):
    """Synthetic-data checks of the gate logic itself (used as a ctest)."""

    def rec(sps=50.0, ffct=150.0, overhead=0.05, allocs=900.0,
            sessions=300, seed=1):
        return {
            "sessions": sessions,
            "seed": seed,
            "threads": 4,
            "sessions_per_sec_1t": sps,
            "sessions_per_sec_nt": sps * 1.8,
            "sessions_per_sec_np": sps * 1.7,
            "sessions_per_sec_dyn": sps * 0.6,
            "metrics_overhead": overhead,
            "allocs_per_session": allocs,
            "ffct_ms": {"Baseline": ffct * 1.1, "Wira": ffct},
        }

    # Mild run-to-run jitter in the history; medians sit near the nominal.
    history = [rec(sps=50.0 + d, overhead=0.05 + d / 1000.0)
               for d in (-2.0, -1.0, 0.0, 1.0, 2.0)]
    # Pathological histories for the variance-derived budgets: a host with
    # wild throughput swings (MAD 10 around a median of 50) and one with a
    # jumpy overhead ratio (MAD 0.05 around 0.10).
    noisy_tp_history = [rec(sps=s) for s in (30.0, 40.0, 50.0, 60.0, 70.0)]
    noisy_ov_history = [rec(overhead=o)
                        for o in (0.01, 0.05, 0.10, 0.15, 0.20)]
    flat_history = [rec() for _ in range(5)]
    sink = open(os.devnull, "w")
    # (name, current, expected exit) — an optional 4th element substitutes
    # the history for that case.
    cases = [
        ("clean rerun passes", rec(), 0),
        ("20% sessions/sec regression fails", rec(sps=40.0), 1),
        ("small throughput jitter passes", rec(sps=46.0), 0),
        ("20% procs sessions/sec regression fails",
         {**rec(), "sessions_per_sec_np": 40.0 * 1.7}, 1),
        ("procs datapoint absent from run is skipped",
         {k: v for k, v in rec().items() if k != "sessions_per_sec_np"}, 0),
        ("20% dyn dispatch sessions/sec regression fails",
         {**rec(), "sessions_per_sec_dyn": 40.0 * 0.6}, 1),
        ("dyn dispatch datapoint absent from run is skipped",
         {k: v for k, v in rec().items() if k != "sessions_per_sec_dyn"}, 0),
        ("single-core host still gates the dyn dispatch datapoint",
         {**rec(), "hardware_concurrency": 1,
          "sessions_per_sec_dyn": 40.0 * 0.6}, 1),
        ("throughput improvement passes", rec(sps=70.0), 0),
        ("5% mean FFCT regression fails", rec(ffct=157.5), 1),
        ("FFCT improvement passes", rec(ffct=120.0), 0),
        ("overhead above absolute budget fails", rec(overhead=0.2), 1),
        ("overhead within absolute budget passes", rec(overhead=0.12), 0),
        ("15% allocs/session regression fails", rec(allocs=1035.0), 1),
        ("allocs/session improvement passes", rec(allocs=150.0), 0),
        ("allocs absent from run is skipped",
         {k: v for k, v in rec().items() if k != "allocs_per_session"}, 0),
        ("different workload skips comparison", rec(sps=10.0, sessions=50), 0),
        ("scheme absent from history is skipped",
         {**rec(), "ffct_ms": {"Wira": 150.0, "NewScheme": 1e9}}, 0),
        ("single-core host skips threaded speedup comparison",
         {**rec(), "hardware_concurrency": 1,
          "sessions_per_sec_nt": 1.0, "sessions_per_sec_np": 1.0}, 0),
        ("single-core host still gates serial throughput",
         {**rec(sps=40.0), "hardware_concurrency": 1}, 1),
        # Variance-derived budgets (median +/- k*MAD with the flag floors):
        ("noisy throughput history widens the relative budget",
         rec(sps=40.0), 0, noisy_tp_history),
        ("widened budget still catches a collapse",
         rec(sps=5.0), 1, noisy_tp_history),
        ("noisy overhead history widens the absolute budget",
         rec(overhead=0.25), 0, noisy_ov_history),
        ("zero-variance history keeps the floor budgets",
         rec(sps=44.0, overhead=0.12), 0, flat_history),
        ("floor budgets still fail real regressions on flat history",
         rec(sps=40.0), 1, flat_history),
    ]
    failures = []
    for case in cases:
        name, current, expect = case[0], case[1], case[2]
        case_history = case[3] if len(case) > 3 else history
        got = run_gate(current, case_history, args, out=sink)
        status = "ok" if got == expect else "FAIL"
        print("self-test: %-42s expect=%d got=%d %s"
              % (name, expect, got, status))
        if got != expect:
            failures.append(name)
    if failures:
        print("self-test FAILED: " + ", ".join(failures))
        return 1
    print("self-test passed (%d cases)" % len(cases))
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="perf/QoE regression gate vs the perf trajectory")
    ap.add_argument("bench_json", nargs="?",
                    help="current perf_smoke JSON (BENCH_<date>.json)")
    ap.add_argument("--history",
                    default="bench_history/perf_trajectory.jsonl",
                    help="trajectory JSONL (default: %(default)s)")
    ap.add_argument("--window", type=int, default=5,
                    help="median over the last K comparable records")
    ap.add_argument("--min-history", type=int, default=1,
                    help="pass without comparison below this many records")
    ap.add_argument("--budget-throughput", type=float, default=0.15,
                    help="relative slowdown allowed on sessions/sec")
    ap.add_argument("--budget-ffct", type=float, default=0.02,
                    help="relative increase allowed on mean FFCT per scheme")
    ap.add_argument("--budget-overhead", type=float, default=0.10,
                    help="absolute increase allowed on metrics_overhead")
    ap.add_argument("--budget-allocs", type=float, default=0.10,
                    help="relative increase allowed on allocs_per_session")
    ap.add_argument("--mad-k", type=float, default=4.0,
                    help="budgets widen to k*MAD of the history window "
                         "when that exceeds the flag floor")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in logic checks and exit")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test(args))

    if not args.bench_json:
        ap.error("bench_json is required unless --self-test")
    try:
        with open(args.bench_json) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("bench_gate: cannot read %s: %s" % (args.bench_json, e),
              file=sys.stderr)
        sys.exit(2)
    if not os.path.exists(args.history):
        print("bench_gate: no history at %s — passing without comparison"
              % args.history)
        sys.exit(0)
    history = load_history(args.history)
    sys.exit(run_gate(current, history, args))


if __name__ == "__main__":
    main()
