#!/usr/bin/env python3
"""Render the FFCT phase breakdown from a --metrics-out JSONL file.

Reads the per-(session, scheme) lines written by the fig/abl binaries when
run with `--metrics-out FILE` and prints, per scheme, the mean/p50/p90 of
each phase (handshake, origin_fetch, ff_parse, delivery, frame_recv) plus
an ASCII stacked bar of the mean breakdown.  Stdlib only — no third-party
dependencies.

Usage:
  tools/plot_ffct_phases.py m.jsonl
  tools/plot_ffct_phases.py m.jsonl --run 2      # sweep binaries: one run
  tools/plot_ffct_phases.py m.jsonl --width 72
"""

import argparse
import json
import sys

PHASES = ["handshake", "origin_fetch", "ff_parse", "delivery", "frame_recv"]
BAR_CHARS = ["#", "=", "+", "-", "."]


def percentile(sorted_vals, p):
    """Linear interpolation between order statistics, p in [0, 100]."""
    if not sorted_vals:
        return 0.0
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    idx = p / 100.0 * (len(sorted_vals) - 1)
    lo = int(idx)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = idx - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def load(path, run):
    """Returns {scheme: {phase: [ms, ...]}} for completed sessions."""
    per_scheme = {}
    total = kept = bad = 0
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            total += 1
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if run is not None and rec.get("run", 0) != run:
                continue
            if not rec.get("first_frame_completed"):
                continue
            phases = rec.get("phases") or {}
            if not phases:
                continue
            kept += 1
            bucket = per_scheme.setdefault(
                rec.get("scheme", "?"), {p: [] for p in PHASES})
            for p in PHASES:
                bucket[p].append(phases.get(p + "_ns", 0) / 1e6)
    if bad:
        print(f"warning: skipped {bad} unparseable lines", file=sys.stderr)
    if not kept:
        sys.exit(f"error: no completed sessions with phases in {path} "
                 f"(saw {total} lines; was --metrics-out enabled?)")
    return per_scheme


def render(per_scheme, width):
    for scheme in sorted(per_scheme):
        buckets = per_scheme[scheme]
        n = len(buckets[PHASES[0]])
        means = {p: sum(v) / n for p, v in buckets.items()}
        total_mean = sum(means.values()) or 1e-9
        print(f"\n{scheme}  (n={n}, mean FFCT {total_mean:.1f} ms)")
        print(f"  {'phase':<13}{'mean(ms)':>10}{'p50':>10}{'p90':>10}"
              f"{'share':>8}")
        for p in PHASES:
            vals = sorted(buckets[p])
            share = means[p] / total_mean
            print(f"  {p:<13}{means[p]:>10.2f}"
                  f"{percentile(vals, 50):>10.2f}"
                  f"{percentile(vals, 90):>10.2f}"
                  f"{share:>7.1%}")
        # Stacked mean-share bar; every non-zero phase gets >= 1 cell.
        bar = ""
        for p, ch in zip(PHASES, BAR_CHARS):
            cells = round(means[p] / total_mean * width)
            if means[p] > 0 and cells == 0:
                cells = 1
            bar += ch * cells
        print(f"  [{bar[:width]:<{width}}]")
    legend = "  ".join(f"{ch}={p}" for p, ch in zip(PHASES, BAR_CHARS))
    print(f"\nlegend: {legend}")


def main():
    ap = argparse.ArgumentParser(
        description="FFCT phase breakdown from --metrics-out JSONL")
    ap.add_argument("jsonl", help="file written via --metrics-out")
    ap.add_argument("--run", type=int, default=None,
                    help="restrict to one sweep run index (default: all)")
    ap.add_argument("--width", type=int, default=60,
                    help="bar width in characters (default 60)")
    args = ap.parse_args()
    render(load(args.jsonl, args.run), max(10, args.width))


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
