#!/usr/bin/env bash
# Real-socket serving-mode driver (DESIGN.md §6): runs the sim's Table-I
# schemes over actual UDP sockets on loopback and checks the result
# against the simulator's prediction.  Three passes, each against a
# fresh wira_proxyd instance:
#
#   1. soak      — SESSIONS concurrent sessions per scheme (default
#                  1000, i.e. 4000 concurrent handshakes); gate: zero
#                  handshake failures.
#   2. compare   — a lightly-loaded run (COMPARE_SESSIONS per scheme,
#                  fully ramped) with --sim-compare; gate: per scheme,
#                  the real p50 FFCT falls inside the tolerance band of
#                  the sim p50 (see below).
#   3. trace     — a small traced run; gate: every client/server sqlog
#                  pair joins cleanly (wira_trace_join rc 0), proving
#                  the two processes share a timebase.
#
# Tolerance band: on an otherwise idle host the lightly-loaded real p50
# tracks the sim within a few percent (loopback RTT is below the sim
# path's 200 us), but CI neighbours can steal the core for tens of ms.
# The gate is therefore deliberately generous:
#
#     sim_p50 / 3  <=  real_p50  <=  3 * sim_p50 + 50 ms
#
# It still catches the failure classes this script exists for — a stalled
# scheme (seconds, not ms), a broken 0-RTT/cookie path (shifts p50 by a
# whole RTT tier), or a clock-domain bug (joins fail / spans go negative).
#
# Usage: tools/run_proxyd.sh [build-dir]   (env: SESSIONS, COMPARE_SESSIONS,
#                                           TRACE_SESSIONS, OUT)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
SESSIONS="${SESSIONS:-1000}"
COMPARE_SESSIONS="${COMPARE_SESSIONS:-8}"
TRACE_SESSIONS="${TRACE_SESSIONS:-3}"
OUT="${OUT:-$(mktemp -d /tmp/wira_proxyd.XXXXXX)}"
mkdir -p "${OUT}" "${OUT}/traces"

proxyd="${build_dir}/tools/wira_proxyd"
loadgen="${build_dir}/tools/wira_loadgen"
trace_join="${build_dir}/tools/wira_trace_join"
for bin in "${proxyd}" "${loadgen}" "${trace_join}"; do
  [[ -x "${bin}" ]] || { echo "missing binary: ${bin}" >&2; exit 1; }
done

proxyd_pid=""
trap '[[ -n "${proxyd_pid}" ]] && kill "${proxyd_pid}" 2>/dev/null || true' \
  EXIT

# start_proxyd [extra args...] — (re)starts the daemon and waits for its
# port file.  The traced pass needs its own instance: proxyd traces every
# session when --trace-dir is set, and the soak's untraced clients would
# otherwise litter the join dir with unpaired server vantages.
start_proxyd() {
  if [[ -n "${proxyd_pid}" ]]; then
    kill "${proxyd_pid}" 2>/dev/null || true
    wait "${proxyd_pid}" 2>/dev/null || true
  fi
  rm -f "${OUT}/ports"
  "${proxyd}" --port-file "${OUT}/ports" --rcvbuf $((32 * 1024 * 1024)) \
    "$@" 2>> "${OUT}/proxyd.log" &
  proxyd_pid=$!
  for _ in $(seq 50); do
    [[ -s "${OUT}/ports" ]] && return 0
    kill -0 "${proxyd_pid}" 2>/dev/null || break
    sleep 0.1
  done
  echo "wira_proxyd died at startup:" >&2
  cat "${OUT}/proxyd.log" >&2
  exit 1
}

start_proxyd
echo "== proxyd endpoints =="
cat "${OUT}/ports"

# -- pass 1: concurrency soak --------------------------------------------
echo "== soak: ${SESSIONS} sessions/scheme =="
"${loadgen}" --ports "${OUT}/ports" --sessions "${SESSIONS}" \
  --ramp-ms $((SESSIONS * 8)) --timeout-ms 180000 \
  > "${OUT}/soak.json" 2> "${OUT}/soak.log"
soak_failures="$(jq '.handshake_failures' "${OUT}/soak.json")"
cat "${OUT}/soak.log"
if [[ "${soak_failures}" != "0" ]]; then
  echo "FAIL: ${soak_failures} handshake failure(s) in soak" >&2
  exit 1
fi

# -- pass 2: sim-vs-real comparison --------------------------------------
# Fresh daemon: the soak's sessions keep streaming toward their 12 s
# horizon after the load generator exits, and the compare pass would
# otherwise race a daemon still pacing thousands of dead sessions.
echo "== compare: ${COMPARE_SESSIONS} sessions/scheme, sim-compare =="
start_proxyd
"${loadgen}" --ports "${OUT}/ports" --sessions "${COMPARE_SESSIONS}" \
  --ramp-ms 2000 --timeout-ms 60000 --seed 7 \
  --sim-compare --sim-sessions "${COMPARE_SESSIONS}" \
  > "${OUT}/compare.json" 2> "${OUT}/compare.log"

echo
echo "scheme      sim p50 (us)   real p50 (us)   real p90 (us)   band"
band_fail=0
while IFS=$'\t' read -r scheme sim real p90; do
  lo="$(awk -v s="${sim}" 'BEGIN { printf "%.1f", s / 3 }')"
  hi="$(awk -v s="${sim}" 'BEGIN { printf "%.1f", 3 * s + 50000 }')"
  verdict="ok"
  in_band="$(awk -v r="${real}" -v l="${lo}" -v h="${hi}" \
    'BEGIN { print (r >= l && r <= h) ? 1 : 0 }')"
  if [[ "${in_band}" != "1" ]]; then verdict="OUT-OF-BAND"; band_fail=1; fi
  printf '%-10s %12.1f %15.1f %15.1f   [%s, %s] %s\n' \
    "${scheme}" "${sim}" "${real}" "${p90}" "${lo}" "${hi}" "${verdict}"
done < <(jq -r '.schemes[] |
  [.scheme, .sim_ffct_p50_us, .ffct_p50_us, .ffct_p90_us] | @tsv' \
  "${OUT}/compare.json")
echo
if [[ "${band_fail}" != "0" ]]; then
  echo "FAIL: real FFCT outside the sim tolerance band" >&2
  exit 1
fi
compare_failures="$(jq '.handshake_failures' "${OUT}/compare.json")"
if [[ "${compare_failures}" != "0" ]]; then
  echo "FAIL: ${compare_failures} handshake failure(s) in compare" >&2
  exit 1
fi

# -- pass 3: cross-process trace join ------------------------------------
echo "== trace: ${TRACE_SESSIONS} sessions/scheme, joined sqlog pairs =="
start_proxyd --trace-dir "${OUT}/traces"
"${loadgen}" --ports "${OUT}/ports" --sessions "${TRACE_SESSIONS}" \
  --ramp-ms 1000 --timeout-ms 60000 --trace-dir "${OUT}/traces" \
  > "${OUT}/trace.json" 2> "${OUT}/trace.log"
"${trace_join}" --trace-dir "${OUT}/traces" -v

echo
echo "run_proxyd: all gates passed (artifacts in ${OUT})"
