// Quickstart: run one Wira-optimized live-streaming session end-to-end on
// an emulated path and print what happened.
//
//   $ ./quickstart
//
// Walks through the whole pipeline: the client connects with 0-RTT and a
// transport cookie, the proxy parses the first frame (Frame Perception),
// initializes cwnd/pacing from Table I, streams FLV, and synchronizes a
// fresh cookie back.
#include <cstdio>

#include "exp/session_runner.h"

using namespace wira;

int main() {
  exp::SessionConfig cfg;

  // The network: 12 Mbps bottleneck, 60 ms RTT, 0.5% random loss.
  cfg.path.bandwidth = mbps(12);
  cfg.path.rtt = milliseconds(60);
  cfg.path.loss_rate = 0.005;
  cfg.path.buffer_bytes = 128 * 1024;

  // The live stream: ~70 KB key frames at 25 fps.
  cfg.stream.stream_id = 1;
  cfg.stream.iframe_mean_bytes = 70'000;

  // The client returns with a 5-minute-old transport cookie from its last
  // session on this OD pair.
  core::HxQosRecord cookie;
  cookie.min_rtt = milliseconds(58);
  cookie.max_bw = mbps(11);
  cookie.server_timestamp = 0;
  cfg.cookie = cookie;
  cfg.start_time = minutes(5);

  cfg.scheme = core::Scheme::kWira;
  cfg.zero_rtt = true;
  cfg.seed = 42;

  const exp::SessionResult r = exp::run_session(cfg);

  std::printf("Wira quickstart session\n");
  std::printf("  handshake            : %s\n",
              r.zero_rtt ? "0-RTT (cached server config)" : "1-RTT");
  std::printf("  parsed FF_Size       : %.1f KB\n",
              static_cast<double>(r.ff_size) / 1000.0);
  std::printf("  init_cwnd            : %.1f KB  (min{FF_Size, BDP})\n",
              static_cast<double>(r.init.init_cwnd) / 1000.0);
  std::printf("  init_pacing          : %.1f Mbps (cookie MaxBW)\n",
              to_mbps(r.init.init_pacing));
  std::printf("  used FF_Size / Hx_QoS: %s / %s\n",
              r.init.used_ff_size ? "yes" : "no",
              r.init.used_hx_qos ? "yes" : "no");
  if (!r.first_frame_completed) {
    std::printf("  first frame did not complete!\n");
    return 1;
  }
  std::printf("  FFCT                 : %.1f ms\n", to_ms(r.ffct));
  std::printf("  first-frame loss     : %.2f%%\n", 100 * r.fflr);
  for (size_t i = 0; i < r.frames.size(); ++i) {
    if (r.frames[i].completion == kNoTime) continue;
    std::printf("  video frame %zu done   : %.1f ms\n", i + 1,
                to_ms(r.frames[i].completion));
  }
  std::printf("  cookies synced back  : %llu (every 3 s)\n",
              static_cast<unsigned long long>(r.cookies_synced));

  // Compare against the fleet-tuned baseline on the same network/seed.
  cfg.scheme = core::Scheme::kBaseline;
  const exp::SessionResult base = exp::run_session(cfg);
  std::printf("\nBaseline on the same path: FFCT %.1f ms -> Wira saves "
              "%.1f ms (%.1f%%)\n",
              to_ms(base.ffct), to_ms(base.ffct - r.ffct),
              100.0 * static_cast<double>(base.ffct - r.ffct) /
                  static_cast<double>(base.ffct));
  return 0;
}
