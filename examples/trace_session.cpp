// Trace a Wira session: attaches a Tracer to the server connection, runs
// one session, prints a startup timeline and writes session_trace.csv /
// session_trace.json next to the binary.
//
//   $ ./trace_session
#include <cstdio>
#include <fstream>

#include "app/player_client.h"
#include "app/wira_server.h"
#include "media/stream_source.h"
#include "sim/path.h"
#include "trace/tracer.h"

using namespace wira;

int main() {
  sim::EventLoop loop;
  sim::PathConfig pc;
  pc.bandwidth = mbps(10);
  pc.rtt = milliseconds(60);
  pc.loss_rate = 0.01;
  pc.buffer_bytes = 96 * 1024;
  sim::Path path(loop, pc, 5);

  media::StreamProfile profile;
  profile.iframe_mean_bytes = 60'000;
  media::LiveStream stream(profile, 11);

  app::ServerConfig scfg;
  scfg.scheme = core::Scheme::kWira;
  scfg.master_key = crypto::key_from_string("trace-demo");
  scfg.expected_od_key = core::od_pair_key(1, 1, 0);
  app::WiraServer server(loop, stream, scfg,
                         [&path](std::vector<uint8_t> d) {
                           sim::Datagram dg;
                           dg.size = d.size();
                           dg.payload = std::move(d);
                           path.forward().send(std::move(dg));
                         });
  app::ClientCache cache;
  cache.server_configs[1] = server.server_config_id();  // 0-RTT
  core::CookieSealer sealer(crypto::key_from_string("trace-demo"));
  core::HxQosRecord rec;
  rec.min_rtt = milliseconds(60);
  rec.max_bw = mbps(9);
  rec.server_timestamp = 0;
  rec.od_key = core::od_pair_key(1, 1, 0);
  cache.cookies.store(rec.od_key, sealer.seal(rec), 0);

  app::PlayerClient client(loop, {}, cache,
                           [&path](std::vector<uint8_t> d) {
                             sim::Datagram dg;
                             dg.size = d.size();
                             dg.payload = std::move(d);
                             path.reverse().send(std::move(dg));
                           });
  path.forward().set_receiver([&client](std::span<sim::Datagram> batch) {
    for (sim::Datagram& d : batch) client.on_datagram(d.payload);
  });
  path.reverse().set_receiver([&server](std::span<sim::Datagram> batch) {
    for (sim::Datagram& d : batch) server.on_datagram(d.payload);
  });

  trace::Tracer tracer;
  server.connection().set_tracer(&tracer);
  client.set_on_frame_complete([&](uint32_t idx) {
    tracer.record(loop.now(), trace::EventType::kFrameComplete, idx);
  });

  loop.schedule_at(minutes(5), [&client] { client.start(); });
  loop.run_until(minutes(5) + seconds(4));

  std::printf("Startup timeline (server-side events, first 400 ms):\n");
  std::printf("%10s  %-16s %s\n", "t (ms)", "event", "values");
  const TimeNs t0 = minutes(5);
  size_t printed = 0;
  for (const auto& e : tracer.events()) {
    if (e.time - t0 > milliseconds(400)) break;
    // Keep the narrative readable: skip the chatty per-packet events
    // except the first few of each type.
    if ((e.type == trace::EventType::kPacketSent ||
         e.type == trace::EventType::kPacketAcked ||
         e.type == trace::EventType::kRttSample ||
         e.type == trace::EventType::kCwndSample ||
         e.type == trace::EventType::kPacingSample) &&
        printed > 40) {
      continue;
    }
    std::printf("%10.2f  %-16s a=%llu b=%llu %s\n", to_ms(e.time - t0),
                trace::event_type_name(e.type),
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(e.b), e.detail.c_str());
    printed++;
  }
  std::printf("... %zu events total; FFCT %.1f ms; peak in-flight %.1f "
              "KB\n",
              tracer.events().size(), to_ms(client.metrics().ffct()),
              static_cast<double>(tracer.peak_bytes_in_flight()) / 1000.0);

  std::ofstream csv("session_trace.csv");
  tracer.write_csv(csv);
  std::ofstream json("session_trace.json");
  tracer.write_json(json, "wira quickstart session");
  std::printf("Wrote session_trace.csv and session_trace.json\n");
  return 0;
}
