// HLS-TS session: the same Wira pipeline over an MPEG transport stream
// instead of HTTP-FLV — Frame Perception sniffs the 0x47 sync byte,
// learns the video PID from the PMT, and finds the first-frame boundary
// at the next video access unit.
//
//   $ ./hls_session
#include <cstdio>

#include "exp/session_runner.h"

using namespace wira;

int main() {
  exp::SessionConfig cfg;
  cfg.path.bandwidth = mbps(14);
  cfg.path.rtt = milliseconds(55);
  cfg.path.loss_rate = 0.004;
  cfg.path.buffer_bytes = 128 * 1024;

  cfg.stream.stream_id = 8;
  cfg.stream.container = media::Container::kMpegTs;
  cfg.stream.iframe_mean_bytes = 55'000;

  core::HxQosRecord cookie;
  cookie.min_rtt = milliseconds(52);
  cookie.max_bw = mbps(13);
  cookie.server_timestamp = 0;
  cfg.cookie = cookie;
  cfg.start_time = minutes(3);
  cfg.scheme = core::Scheme::kWira;
  cfg.seed = 77;

  std::printf("HLS-TS live session through the Wira proxy\n\n");
  const auto wira = exp::run_session(cfg);
  if (!wira.first_frame_completed) {
    std::printf("first frame did not complete\n");
    return 1;
  }
  cfg.scheme = core::Scheme::kBaseline;
  const auto base = exp::run_session(cfg);

  std::printf("container           : MPEG-TS (188-byte cells, PAT/PMT, "
              "PES)\n");
  std::printf("parsed FF_Size      : %.1f KB (boundary = next video "
              "access unit)\n",
              static_cast<double>(wira.ff_size) / 1000.0);
  std::printf("init_cwnd / pacing  : %.1f KB / %.1f Mbps\n",
              static_cast<double>(wira.init.init_cwnd) / 1000.0,
              to_mbps(wira.init.init_pacing));
  std::printf("FFCT  Wira          : %.1f ms\n", to_ms(wira.ffct));
  std::printf("FFCT  Baseline      : %.1f ms  (Wira %+.1f%%)\n",
              to_ms(base.ffct),
              100.0 * static_cast<double>(wira.ffct - base.ffct) /
                  static_cast<double>(base.ffct));
  std::printf("\nThe same Table-I initialization applies unchanged: the "
              "container only changes how FF_Size is perceived.\n");
  return 0;
}
