// Frame inspector: generate a synthetic FLV live stream, dump its tag
// structure, and show Frame Perception (Algorithm 1) computing FF_Size
// for several playback conditions (Theta_VF) — including the incremental
// behaviour behind corner case 1.
//
//   $ ./frame_inspector
#include <cstdio>
#include <vector>

#include "core/frame_parser.h"
#include "media/flv.h"
#include "media/stream_source.h"

using namespace wira;

int main() {
  media::StreamProfile profile;
  profile.stream_id = 7;
  profile.iframe_mean_bytes = 48'000;
  profile.fps = 25;
  profile.gop_frames = 50;
  media::LiveStream stream(profile, 31337);

  // A viewer joins 1.3 s into the second GOP.
  const TimeNs join = stream.gop_duration() + milliseconds(1300);
  std::vector<uint8_t> bytes;
  for (const auto& c : stream.join_chunks(join)) {
    bytes.insert(bytes.end(), c.bytes.begin(), c.bytes.end());
  }
  for (const auto& c : stream.chunks_between(join, join + seconds(1))) {
    bytes.insert(bytes.end(), c.bytes.begin(), c.bytes.end());
  }

  std::printf("FLV stream for a join at t=%.2f s (%zu bytes buffered)\n\n",
              to_seconds(join), bytes.size());
  std::printf("%-5s %-7s %-9s %-8s %s\n", "#", "type", "size", "pts(ms)",
              "note");
  size_t shown = 0;
  media::FlvDemuxer demux([&](const media::FlvTag& tag) {
    if (shown >= 14) return;
    const char* type = tag.type == media::TagType::kScript ? "script"
                       : tag.type == media::TagType::kAudio ? "audio"
                                                            : "video";
    const char* note = "";
    if (tag.type == media::TagType::kVideo) {
      switch (tag.video_kind()) {
        case media::VideoKind::kKey: note = "I frame (GOP start)"; break;
        case media::VideoKind::kInter: note = "P frame"; break;
        case media::VideoKind::kDisposable: note = "B frame"; break;
      }
    }
    std::printf("%-5zu %-7s %-9u %-8u %s\n", ++shown, type, tag.data_size,
                tag.timestamp_ms, note);
  });
  demux.feed(bytes);
  std::printf("... (%llu tags total)\n\n",
              static_cast<unsigned long long>(demux.tags_parsed()));

  // Frame Perception for different playback conditions (§VII).
  std::printf("Frame Perception (Algorithm 1):\n");
  for (uint32_t theta : {1u, 2u, 3u, 5u}) {
    core::FrameParser parser(core::FrameParser::Config{.theta_vf = theta});
    auto ff = parser.feed(bytes);
    std::printf("  Theta_VF=%u -> FF_Size = %.1f KB (ground truth %.1f "
                "KB)\n",
                theta, ff ? static_cast<double>(*ff) / 1000.0 : -1.0,
                static_cast<double>(stream.first_frame_size(join, theta)) /
                    1000.0);
  }

  // Corner case 1: feed the stream in origin-sized dribbles and watch
  // when FF_Size becomes known.
  std::printf("\nIncremental parse (64-byte chunks):\n");
  core::FrameParser parser;
  size_t fed = 0;
  for (size_t i = 0; i < bytes.size(); i += 64) {
    const size_t n = std::min<size_t>(64, bytes.size() - i);
    auto ff = parser.feed({bytes.data() + i, n});
    fed += n;
    if (ff) {
      std::printf("  FF_Size = %.1f KB known after %zu bytes had passed "
                  "through L4 (%.1f%% of the first frame itself)\n",
                  static_cast<double>(*ff) / 1000.0, fed,
                  100.0 * static_cast<double>(fed) /
                      static_cast<double>(*ff));
      break;
    }
  }
  std::printf("  (bytes before that point were sent under the temporary "
              "init_cwnd_exp window — corner case 1)\n");
  return 0;
}
