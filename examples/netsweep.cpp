// Network sweep: where does Wira help most?  Runs Baseline-vs-Wira over a
// bandwidth x RTT grid and prints the FFCT gain per cell — a quick map of
// the mechanism's sweet spot (cf. Fig. 13's condition buckets).
//
//   $ ./netsweep [trials_per_cell]
#include <cstdio>
#include <cstdlib>

#include "exp/session_runner.h"
#include "util/stats.h"

using namespace wira;

namespace {

double mean_ffct(const exp::SessionConfig& base, core::Scheme scheme,
                 int trials) {
  Samples s;
  for (int i = 0; i < trials; ++i) {
    exp::SessionConfig cfg = base;
    cfg.scheme = scheme;
    cfg.seed = 1000 + static_cast<uint64_t>(i);
    cfg.stream.stream_id = 1 + static_cast<uint64_t>(i);
    const auto r = exp::run_session(cfg);
    if (r.first_frame_completed) s.add(to_ms(r.ffct));
  }
  return s.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 12;
  const double bws[] = {2, 5, 10, 20, 40};
  const int rtts[] = {20, 50, 100, 200};

  std::printf("Wira FFCT gain vs baseline (%% improvement; %d sessions "
              "per cell, cookie = ground truth)\n\n", trials);
  std::printf("%10s", "bw \\ rtt");
  for (int rtt : rtts) std::printf("%9d ms", rtt);
  std::printf("\n");

  for (double bw : bws) {
    std::printf("%8.0f Mb", bw);
    for (int rtt : rtts) {
      exp::SessionConfig cfg;
      cfg.path.bandwidth = mbps_f(bw);
      cfg.path.rtt = milliseconds(rtt);
      cfg.path.loss_rate = 0.01;
      cfg.path.buffer_bytes = std::max<uint64_t>(
          2 * bdp_bytes(cfg.path.bandwidth, cfg.path.rtt), 48 * 1024);
      cfg.stream.iframe_mean_bytes = 55'000;
      core::HxQosRecord cookie;
      cookie.min_rtt = cfg.path.rtt;
      cookie.max_bw = cfg.path.bandwidth;
      cookie.server_timestamp = 0;
      cfg.cookie = cookie;
      cfg.start_time = minutes(2);

      const double base = mean_ffct(cfg, core::Scheme::kBaseline, trials);
      const double wira = mean_ffct(cfg, core::Scheme::kWira, trials);
      if (base <= 0) {
        std::printf("%12s", "-");
      } else {
        std::printf("%11.1f%%", 100.0 * (base - wira) / base);
      }
    }
    std::printf("\n");
  }
  std::printf("\nPositive = Wira faster.  Gains concentrate where the "
              "fleet-default pacing misjudges the path: fast paths "
              "(under-paced by the default) and long-RTT paths (window "
              "round trips are expensive).\n");
  return 0;
}
