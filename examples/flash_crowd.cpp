// Flash crowd: eight viewers join the same live stream within two seconds
// over a shared 25 Mbps edge uplink.  Compares per-viewer FFCT under the
// fleet baseline and under Wira when the startup bursts contend.
//
//   $ ./flash_crowd
#include <cstdio>
#include <vector>

#include "app/edge.h"
#include "app/player_client.h"
#include "sim/topology.h"
#include "util/stats.h"

using namespace wira;

namespace {

struct Viewer {
  std::unique_ptr<app::PlayerClient> client;
  app::ClientCache cache;
  TimeNs join_at = 0;
};

double run_crowd(core::Scheme scheme, int viewers, Samples& ffcts) {
  sim::EventLoop loop;

  sim::LinkConfig egress;
  egress.rate = mbps(25);  // the shared edge uplink
  egress.delay = milliseconds(5);
  egress.buffer_bytes = 256 * 1024;
  sim::SharedBottleneck net(loop, egress, 7);

  media::StreamProfile profile;
  profile.iframe_mean_bytes = 55'000;
  media::LiveStream stream(profile, 99);

  app::ServerConfig base;
  base.scheme = scheme;
  base.master_key = crypto::key_from_string("edge");
  app::WiraEdge edge(loop, stream, base);
  net.set_server_receiver([&edge](std::span<sim::Datagram> batch) {
    for (sim::Datagram& d : batch) edge.on_datagram(d.payload);
  });

  std::vector<Viewer> crowd(static_cast<size_t>(viewers));
  Rng rng(4);
  for (int i = 0; i < viewers; ++i) {
    Viewer& v = crowd[static_cast<size_t>(i)];
    const auto leg = net.add_leg([&] {
      sim::LinkConfig access;  // per-viewer last mile
      access.rate = mbps_f(rng.uniform(6, 20));
      access.delay = from_seconds(rng.uniform(0.015, 0.05));
      access.buffer_bytes = 96 * 1024;
      access.loss.loss_rate = rng.uniform(0.0, 0.01);
      return access;
    }());

    const quic::ConnectionId conn_id = 100 + static_cast<uint64_t>(i);
    const uint64_t od_key = core::od_pair_key(conn_id, 7, 0);
    app::WiraServer& server = edge.add_session(
        conn_id,
        [&net, leg](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          net.send_to_client(leg, std::move(dg));
        },
        od_key);

    app::ClientConfig ccfg;
    ccfg.client_id = conn_id;
    ccfg.server_id = 7;
    ccfg.conn_id = conn_id;
    v.client = std::make_unique<app::PlayerClient>(
        loop, ccfg, v.cache,
        [&net, leg](std::vector<uint8_t> d) {
          sim::Datagram dg;
          dg.size = d.size();
          dg.payload = std::move(d);
          net.send_to_server(leg, std::move(dg));
        });
    net.set_client_receiver(leg, [&v](std::span<sim::Datagram> batch) {
      for (sim::Datagram& d : batch) v.client->on_datagram(d.payload);
    });

    // 0-RTT, with a plausible cookie for this leg.
    v.cache.server_configs[7] = server.server_config_id();
    core::CookieSealer sealer(crypto::key_from_string("edge"));
    core::HxQosRecord rec;
    rec.min_rtt = net.access(leg).config().delay * 2 + milliseconds(10);
    rec.max_bw = net.access(leg).config().rate;
    rec.server_timestamp = 0;
    rec.od_key = od_key;
    v.cache.cookies.store(od_key, sealer.seal(rec), 0);

    v.join_at = seconds(1) + from_seconds(rng.uniform(0.0, 2.0));
    loop.schedule_at(v.join_at, [c = v.client.get()] { c->start(); });
  }

  loop.run_until(seconds(15));

  for (const auto& v : crowd) {
    if (v.client->metrics().first_frame_done()) {
      ffcts.add(to_ms(v.client->metrics().ffct()));
    }
  }
  const auto& st = net.egress().stats();
  return static_cast<double>(st.queue_drops + st.wire_drops) /
         static_cast<double>(st.delivered_packets + st.queue_drops +
                             st.wire_drops + 1);
}

}  // namespace

int main() {
  constexpr int kViewers = 8;
  std::printf("Flash crowd: %d viewers join within 2 s over a shared "
              "25 Mbps edge uplink\n\n", kViewers);
  std::printf("%-10s %-8s %-10s %-10s %-10s %-12s\n", "scheme", "n",
              "avg FFCT", "p50", "max", "uplink loss");
  for (auto scheme : {core::Scheme::kBaseline, core::Scheme::kWira}) {
    Samples ffcts;
    const double uplink_loss = run_crowd(scheme, kViewers, ffcts);
    std::printf("%-10s %-8zu %-10s %-10s %-10s %.2f%%\n",
                core::scheme_name(scheme), ffcts.count(),
                (fmt(ffcts.mean()) + " ms").c_str(),
                (fmt(ffcts.percentile(50)) + " ms").c_str(),
                (fmt(ffcts.max()) + " ms").c_str(), 100 * uplink_loss);
  }
  std::printf("\nEach viewer's first frame is sized and paced for its own "
              "access link, so the joint startup burst stays within the "
              "shared uplink's capacity.\n");
  return 0;
}
