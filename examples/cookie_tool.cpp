// Cookie tool: demonstrates the transport-cookie lifecycle and its
// security properties (§IV-B, §VII) — sealing, client-side opacity,
// tamper rejection, OD-pair binding, and staleness.
//
//   $ ./cookie_tool
#include <cstdio>

#include "core/transport_cookie.h"
#include "quic/handshake.h"
#include "util/bytes.h"

using namespace wira;
using namespace wira::core;

int main() {
  // The server's master secret never leaves the server.
  CookieSealer server(crypto::key_from_string("production-master-key"));

  HxQosRecord qos;
  qos.min_rtt = milliseconds(48);
  qos.max_bw = mbps(14);
  qos.server_timestamp = minutes(10);
  qos.od_key = od_pair_key(/*client=*/12345, /*server=*/7, /*net=*/2);

  std::printf("Server measures this session's QoS:\n");
  std::printf("  MinRTT %.0f ms, MaxBW %.1f Mbps, t=%lld min, od_key=%016llx\n\n",
              to_ms(qos.min_rtt), to_mbps(qos.max_bw),
              static_cast<long long>(qos.server_timestamp / minutes(1)),
              static_cast<unsigned long long>(qos.od_key));

  const auto sealed = server.seal(qos);
  std::printf("Sealed transport cookie (%zu bytes, what the client "
              "stores):\n  %s\n\n", sealed.size(),
              to_hex(sealed).c_str());
  std::printf("The client cannot read it: the blob is "
              "ChaCha20-Poly1305-sealed under the server key.\n\n");

  // The client echoes it in the next CHLO's HQST tag.
  quic::HqstPayload hqst;
  hqst.supports_sync = true;
  hqst.client_recv_time_ms = 600'000;
  hqst.sealed_cookie = sealed;
  const auto tag_bytes = quic::serialize_hqst(hqst);
  std::printf("HQST tag in the next CHLO (%zu bytes): Bool=1, "
              "timestamp, Hx_QoS_Frame\n\n", tag_bytes.size());

  // Server side: open and validate.
  auto opened = server.open(sealed);
  std::printf("Server opens it: %s", opened ? "OK" : "REJECTED");
  if (opened) {
    std::printf("  (MinRTT %.0f ms, MaxBW %.1f Mbps)", to_ms(opened->min_rtt),
                to_mbps(opened->max_bw));
  }
  std::printf("\n");

  // Attack 1: a client fabricates a "better" MaxBW by flipping bits.
  auto tampered = sealed;
  tampered[12] ^= 0xFF;
  std::printf("Tampered cookie:  %s\n",
              server.open(tampered) ? "ACCEPTED (BAD!)" : "REJECTED (AEAD)");

  // Attack 2: a cookie stolen from another OD pair.
  HxQosRecord other = qos;
  other.od_key = od_pair_key(/*client=*/999, /*server=*/7, /*net=*/2);
  const auto stolen = server.seal(other);
  auto replayed = server.open(stolen);
  const bool od_ok = replayed && replayed->od_key == qos.od_key;
  std::printf("Replayed cookie from another client: %s\n",
              od_ok ? "ACCEPTED (BAD!)" : "REJECTED (OD-pair binding)");

  // Attack 3: a different server's key.
  CookieSealer rogue(crypto::key_from_string("rogue-key"));
  std::printf("Opened with another server's key: %s\n",
              rogue.open(sealed) ? "ACCEPTED (BAD!)" : "REJECTED");

  // Staleness (corner case 2).
  std::printf("\nFreshness at various ages (Delta = 60 min):\n");
  for (int age_min : {5, 30, 59, 61, 240}) {
    const TimeNs now = qos.server_timestamp + minutes(age_min);
    std::printf("  +%3d min: %s\n", age_min,
                qos.fresh(now, kDefaultStaleness)
                    ? "fresh -> Eq. 2/3 initialization"
                    : "stale -> corner case 2 fallback");
  }
  return 0;
}
