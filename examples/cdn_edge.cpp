// CDN edge scenario: one proxy server serving a sequence of viewers on
// different access networks, demonstrating the cookie lifecycle across
// *real* back-to-back sessions (no synthetic cookie seeding): session 1
// runs cold, syncs a transport cookie to the client; session 2 on the same
// OD pair presents it in the CHLO and gets Wira-initialized.
//
//   $ ./cdn_edge
#include <cstdio>

#include "app/player_client.h"
#include "app/wira_server.h"
#include "media/stream_source.h"
#include "sim/path.h"

using namespace wira;

namespace {

struct SessionOutcome {
  TimeNs ffct = kNoTime;
  bool zero_rtt = false;
  bool cookie_used = false;
  double init_pacing_mbps = 0;
};

/// One viewer session's live objects.  They must outlive the event loop's
/// scheduled work (live-frame tail, cookie-sync timers), so the caller
/// keeps Session instances alive until the end of the run.
struct Session {
  std::unique_ptr<sim::Path> path;
  std::unique_ptr<app::WiraServer> server;
  std::unique_ptr<app::PlayerClient> client;
};

/// Starts one session at `start`, reusing the client's persistent cache.
Session start_viewer_session(sim::EventLoop& loop,
                             const sim::PathConfig& path_cfg,
                             const media::LiveStream& stream,
                             app::ClientCache& cache, TimeNs start,
                             uint64_t seed) {
  Session s;
  s.path = std::make_unique<sim::Path>(loop, path_cfg, seed);

  app::ServerConfig server_cfg;
  server_cfg.scheme = core::Scheme::kWira;
  server_cfg.master_key = crypto::key_from_string("edge-server-key");
  server_cfg.expected_od_key = core::od_pair_key(1, 7, 0);
  // Watch the stream for a while: BBR's probe cycles need the periodic
  // I-frame bursts to ratchet the MaxBW estimate toward path capacity
  // before it is worth writing into the cookie.
  server_cfg.stream_horizon = seconds(45);

  s.server = std::make_unique<app::WiraServer>(
      loop, stream, server_cfg,
      [&p = *s.path](std::vector<uint8_t> d) {
        sim::Datagram dg;
        dg.size = d.size();
        dg.payload = std::move(d);
        p.forward().send(std::move(dg));
      });
  app::ClientConfig client_cfg;
  client_cfg.client_id = 1;
  client_cfg.server_id = 7;
  s.client = std::make_unique<app::PlayerClient>(
      loop, client_cfg, cache,
      [&p = *s.path](std::vector<uint8_t> d) {
        sim::Datagram dg;
        dg.size = d.size();
        dg.payload = std::move(d);
        p.reverse().send(std::move(dg));
      });
  s.path->forward().set_receiver(
      [&c = *s.client](std::span<sim::Datagram> batch) {
        for (sim::Datagram& d : batch) c.on_datagram(d.payload);
      });
  s.path->reverse().set_receiver(
      [&sv = *s.server](std::span<sim::Datagram> batch) {
        for (sim::Datagram& d : batch) sv.on_datagram(d.payload);
      });

  loop.schedule_at(start, [&c = *s.client] { c.start(); });
  return s;
}

}  // namespace

int main() {
  sim::EventLoop loop;

  sim::PathConfig path;
  path.bandwidth = mbps(6);
  path.rtt = milliseconds(70);
  path.loss_rate = 0.003;
  path.buffer_bytes = 150 * 1024;

  media::StreamProfile profile;
  profile.stream_id = 99;
  profile.iframe_mean_bytes = 55'000;
  media::LiveStream stream(profile, 2024);

  app::ClientCache cache;  // persists across the viewer's sessions

  std::printf("CDN edge: three sessions of the same viewer, 2 minutes "
              "apart\n\n");
  std::printf("%-10s %-10s %-12s %-14s %-12s %-10s\n", "session",
              "handshake", "cookie", "init_pacing", "FF_Size", "FFCT");
  std::vector<Session> sessions;
  for (int i = 0; i < 3; ++i) {
    const TimeNs start = minutes(2) * i + seconds(1);
    sessions.push_back(
        start_viewer_session(loop, path, stream, cache, start, 100 + i));
    loop.run_until(start + seconds(45));
    const Session& s = sessions.back();
    SessionOutcome out;
    out.ffct = s.client->metrics().ffct();
    out.zero_rtt = s.client->metrics().zero_rtt;
    out.cookie_used = s.server->last_init().used_hx_qos;
    out.init_pacing_mbps = to_mbps(s.server->last_init().init_pacing);
    std::printf("%-10d %-10s %-12s %-14s %-12s %.1f ms\n", i + 1,
                out.zero_rtt ? "0-RTT" : "1-RTT",
                out.cookie_used ? "used" : "none",
                (std::to_string(out.init_pacing_mbps).substr(0, 4) + " Mbps")
                    .c_str(),
                (std::to_string(s.server->parser().ff_size() / 1000) +
                 " KB").c_str(),
                to_ms(out.ffct));
  }

  std::printf("\nSession 1 pays the 1-RTT handshake and runs on fleet "
              "defaults; sessions 2-3 are 0-RTT and Wira-initialized from "
              "the cookie the previous session synced back.  FF_Size "
              "varies with the join position (Fig. 1b), which is exactly "
              "why per-flow initialization matters.\n");
  std::printf("Client-side cookie cache: %zu entr%s.\n",
              cache.cookies.size(), cache.cookies.size() == 1 ? "y" : "ies");
  return 0;
}
