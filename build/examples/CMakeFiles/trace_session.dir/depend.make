# Empty dependencies file for trace_session.
# This may be replaced when dependencies are built.
