file(REMOVE_RECURSE
  "CMakeFiles/trace_session.dir/trace_session.cpp.o"
  "CMakeFiles/trace_session.dir/trace_session.cpp.o.d"
  "trace_session"
  "trace_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
