# Empty compiler generated dependencies file for cookie_tool.
# This may be replaced when dependencies are built.
