file(REMOVE_RECURSE
  "CMakeFiles/cookie_tool.dir/cookie_tool.cpp.o"
  "CMakeFiles/cookie_tool.dir/cookie_tool.cpp.o.d"
  "cookie_tool"
  "cookie_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cookie_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
