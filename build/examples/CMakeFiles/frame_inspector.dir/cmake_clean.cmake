file(REMOVE_RECURSE
  "CMakeFiles/frame_inspector.dir/frame_inspector.cpp.o"
  "CMakeFiles/frame_inspector.dir/frame_inspector.cpp.o.d"
  "frame_inspector"
  "frame_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
