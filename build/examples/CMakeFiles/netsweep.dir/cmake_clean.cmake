file(REMOVE_RECURSE
  "CMakeFiles/netsweep.dir/netsweep.cpp.o"
  "CMakeFiles/netsweep.dir/netsweep.cpp.o.d"
  "netsweep"
  "netsweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
