# Empty dependencies file for netsweep.
# This may be replaced when dependencies are built.
