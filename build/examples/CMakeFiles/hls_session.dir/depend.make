# Empty dependencies file for hls_session.
# This may be replaced when dependencies are built.
