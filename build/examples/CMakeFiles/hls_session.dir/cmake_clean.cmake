file(REMOVE_RECURSE
  "CMakeFiles/hls_session.dir/hls_session.cpp.o"
  "CMakeFiles/hls_session.dir/hls_session.cpp.o.d"
  "hls_session"
  "hls_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hls_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
