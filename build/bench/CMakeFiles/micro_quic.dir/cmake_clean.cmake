file(REMOVE_RECURSE
  "CMakeFiles/micro_quic.dir/micro_quic.cc.o"
  "CMakeFiles/micro_quic.dir/micro_quic.cc.o.d"
  "micro_quic"
  "micro_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
