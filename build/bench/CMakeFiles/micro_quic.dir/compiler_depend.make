# Empty compiler generated dependencies file for micro_quic.
# This may be replaced when dependencies are built.
