# Empty compiler generated dependencies file for abl_theta_vf.
# This may be replaced when dependencies are built.
