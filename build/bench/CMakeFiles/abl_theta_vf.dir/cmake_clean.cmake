file(REMOVE_RECURSE
  "CMakeFiles/abl_theta_vf.dir/abl_theta_vf.cc.o"
  "CMakeFiles/abl_theta_vf.dir/abl_theta_vf.cc.o.d"
  "abl_theta_vf"
  "abl_theta_vf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_theta_vf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
