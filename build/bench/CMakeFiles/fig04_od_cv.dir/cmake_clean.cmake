file(REMOVE_RECURSE
  "CMakeFiles/fig04_od_cv.dir/fig04_od_cv.cc.o"
  "CMakeFiles/fig04_od_cv.dir/fig04_od_cv.cc.o.d"
  "fig04_od_cv"
  "fig04_od_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_od_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
