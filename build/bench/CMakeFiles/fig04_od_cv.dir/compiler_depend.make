# Empty compiler generated dependencies file for fig04_od_cv.
# This may be replaced when dependencies are built.
