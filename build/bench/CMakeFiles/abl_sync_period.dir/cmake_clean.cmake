file(REMOVE_RECURSE
  "CMakeFiles/abl_sync_period.dir/abl_sync_period.cc.o"
  "CMakeFiles/abl_sync_period.dir/abl_sync_period.cc.o.d"
  "abl_sync_period"
  "abl_sync_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sync_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
