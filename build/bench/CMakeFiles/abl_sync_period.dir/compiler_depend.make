# Empty compiler generated dependencies file for abl_sync_period.
# This may be replaced when dependencies are built.
