# Empty compiler generated dependencies file for micro_cookie.
# This may be replaced when dependencies are built.
