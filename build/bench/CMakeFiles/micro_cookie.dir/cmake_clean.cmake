file(REMOVE_RECURSE
  "CMakeFiles/micro_cookie.dir/micro_cookie.cc.o"
  "CMakeFiles/micro_cookie.dir/micro_cookie.cc.o.d"
  "micro_cookie"
  "micro_cookie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cookie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
