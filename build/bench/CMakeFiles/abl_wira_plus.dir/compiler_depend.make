# Empty compiler generated dependencies file for abl_wira_plus.
# This may be replaced when dependencies are built.
