file(REMOVE_RECURSE
  "CMakeFiles/abl_wira_plus.dir/abl_wira_plus.cc.o"
  "CMakeFiles/abl_wira_plus.dir/abl_wira_plus.cc.o.d"
  "abl_wira_plus"
  "abl_wira_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wira_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
