# Empty dependencies file for abl_staleness.
# This may be replaced when dependencies are built.
