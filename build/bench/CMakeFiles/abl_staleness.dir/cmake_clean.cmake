file(REMOVE_RECURSE
  "CMakeFiles/abl_staleness.dir/abl_staleness.cc.o"
  "CMakeFiles/abl_staleness.dir/abl_staleness.cc.o.d"
  "abl_staleness"
  "abl_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
