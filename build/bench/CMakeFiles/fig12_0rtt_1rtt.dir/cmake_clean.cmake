file(REMOVE_RECURSE
  "CMakeFiles/fig12_0rtt_1rtt.dir/fig12_0rtt_1rtt.cc.o"
  "CMakeFiles/fig12_0rtt_1rtt.dir/fig12_0rtt_1rtt.cc.o.d"
  "fig12_0rtt_1rtt"
  "fig12_0rtt_1rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_0rtt_1rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
