# Empty dependencies file for fig12_0rtt_1rtt.
# This may be replaced when dependencies are built.
