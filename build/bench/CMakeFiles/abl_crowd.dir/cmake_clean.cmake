file(REMOVE_RECURSE
  "CMakeFiles/abl_crowd.dir/abl_crowd.cc.o"
  "CMakeFiles/abl_crowd.dir/abl_crowd.cc.o.d"
  "abl_crowd"
  "abl_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
