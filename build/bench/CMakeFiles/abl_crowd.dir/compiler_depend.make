# Empty compiler generated dependencies file for abl_crowd.
# This may be replaced when dependencies are built.
