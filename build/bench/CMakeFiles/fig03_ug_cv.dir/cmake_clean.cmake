file(REMOVE_RECURSE
  "CMakeFiles/fig03_ug_cv.dir/fig03_ug_cv.cc.o"
  "CMakeFiles/fig03_ug_cv.dir/fig03_ug_cv.cc.o.d"
  "fig03_ug_cv"
  "fig03_ug_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ug_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
