# Empty compiler generated dependencies file for fig03_ug_cv.
# This may be replaced when dependencies are built.
