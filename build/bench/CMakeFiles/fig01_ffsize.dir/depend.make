# Empty dependencies file for fig01_ffsize.
# This may be replaced when dependencies are built.
