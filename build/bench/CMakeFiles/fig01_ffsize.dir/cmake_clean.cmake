file(REMOVE_RECURSE
  "CMakeFiles/fig01_ffsize.dir/fig01_ffsize.cc.o"
  "CMakeFiles/fig01_ffsize.dir/fig01_ffsize.cc.o.d"
  "fig01_ffsize"
  "fig01_ffsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_ffsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
