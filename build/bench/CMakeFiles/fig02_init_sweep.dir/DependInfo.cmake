
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig02_init_sweep.cc" "bench/CMakeFiles/fig02_init_sweep.dir/fig02_init_sweep.cc.o" "gcc" "bench/CMakeFiles/fig02_init_sweep.dir/fig02_init_sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/wira_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/wira_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wira_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wira_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/wira_media.dir/DependInfo.cmake"
  "/root/repo/build/src/quic/CMakeFiles/wira_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/wira_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wira_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/popgen/CMakeFiles/wira_popgen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wira_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wira_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
