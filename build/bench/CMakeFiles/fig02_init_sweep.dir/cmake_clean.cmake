file(REMOVE_RECURSE
  "CMakeFiles/fig02_init_sweep.dir/fig02_init_sweep.cc.o"
  "CMakeFiles/fig02_init_sweep.dir/fig02_init_sweep.cc.o.d"
  "fig02_init_sweep"
  "fig02_init_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_init_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
