file(REMOVE_RECURSE
  "CMakeFiles/abl_resume.dir/abl_resume.cc.o"
  "CMakeFiles/abl_resume.dir/abl_resume.cc.o.d"
  "abl_resume"
  "abl_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
