# Empty dependencies file for abl_resume.
# This may be replaced when dependencies are built.
