# Empty dependencies file for abl_cc_algo.
# This may be replaced when dependencies are built.
