file(REMOVE_RECURSE
  "CMakeFiles/abl_cc_algo.dir/abl_cc_algo.cc.o"
  "CMakeFiles/abl_cc_algo.dir/abl_cc_algo.cc.o.d"
  "abl_cc_algo"
  "abl_cc_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cc_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
