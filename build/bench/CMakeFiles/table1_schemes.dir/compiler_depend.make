# Empty compiler generated dependencies file for table1_schemes.
# This may be replaced when dependencies are built.
