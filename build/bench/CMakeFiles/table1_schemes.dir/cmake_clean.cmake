file(REMOVE_RECURSE
  "CMakeFiles/table1_schemes.dir/table1_schemes.cc.o"
  "CMakeFiles/table1_schemes.dir/table1_schemes.cc.o.d"
  "table1_schemes"
  "table1_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
