# Empty compiler generated dependencies file for abl_container.
# This may be replaced when dependencies are built.
