file(REMOVE_RECURSE
  "CMakeFiles/abl_container.dir/abl_container.cc.o"
  "CMakeFiles/abl_container.dir/abl_container.cc.o.d"
  "abl_container"
  "abl_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
