file(REMOVE_RECURSE
  "CMakeFiles/abl_ug_vs_od.dir/abl_ug_vs_od.cc.o"
  "CMakeFiles/abl_ug_vs_od.dir/abl_ug_vs_od.cc.o.d"
  "abl_ug_vs_od"
  "abl_ug_vs_od.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ug_vs_od.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
