# Empty compiler generated dependencies file for abl_ug_vs_od.
# This may be replaced when dependencies are built.
