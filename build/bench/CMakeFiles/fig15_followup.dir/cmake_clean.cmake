file(REMOVE_RECURSE
  "CMakeFiles/fig15_followup.dir/fig15_followup.cc.o"
  "CMakeFiles/fig15_followup.dir/fig15_followup.cc.o.d"
  "fig15_followup"
  "fig15_followup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_followup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
