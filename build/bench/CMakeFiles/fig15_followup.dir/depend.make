# Empty dependencies file for fig15_followup.
# This may be replaced when dependencies are built.
