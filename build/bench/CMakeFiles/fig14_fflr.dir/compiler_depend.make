# Empty compiler generated dependencies file for fig14_fflr.
# This may be replaced when dependencies are built.
