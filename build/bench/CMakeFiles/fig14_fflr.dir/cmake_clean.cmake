file(REMOVE_RECURSE
  "CMakeFiles/fig14_fflr.dir/fig14_fflr.cc.o"
  "CMakeFiles/fig14_fflr.dir/fig14_fflr.cc.o.d"
  "fig14_fflr"
  "fig14_fflr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_fflr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
