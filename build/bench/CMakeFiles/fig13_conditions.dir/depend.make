# Empty dependencies file for fig13_conditions.
# This may be replaced when dependencies are built.
