file(REMOVE_RECURSE
  "CMakeFiles/fig13_conditions.dir/fig13_conditions.cc.o"
  "CMakeFiles/fig13_conditions.dir/fig13_conditions.cc.o.d"
  "fig13_conditions"
  "fig13_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
