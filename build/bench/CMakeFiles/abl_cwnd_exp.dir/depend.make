# Empty dependencies file for abl_cwnd_exp.
# This may be replaced when dependencies are built.
