file(REMOVE_RECURSE
  "CMakeFiles/abl_cwnd_exp.dir/abl_cwnd_exp.cc.o"
  "CMakeFiles/abl_cwnd_exp.dir/abl_cwnd_exp.cc.o.d"
  "abl_cwnd_exp"
  "abl_cwnd_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cwnd_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
