file(REMOVE_RECURSE
  "libwira_cc.a"
)
