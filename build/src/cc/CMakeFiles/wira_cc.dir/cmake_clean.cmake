file(REMOVE_RECURSE
  "CMakeFiles/wira_cc.dir/bandwidth_sampler.cc.o"
  "CMakeFiles/wira_cc.dir/bandwidth_sampler.cc.o.d"
  "CMakeFiles/wira_cc.dir/bbr.cc.o"
  "CMakeFiles/wira_cc.dir/bbr.cc.o.d"
  "CMakeFiles/wira_cc.dir/cubic.cc.o"
  "CMakeFiles/wira_cc.dir/cubic.cc.o.d"
  "CMakeFiles/wira_cc.dir/newreno.cc.o"
  "CMakeFiles/wira_cc.dir/newreno.cc.o.d"
  "libwira_cc.a"
  "libwira_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
