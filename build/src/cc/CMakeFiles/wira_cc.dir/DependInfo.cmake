
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/bandwidth_sampler.cc" "src/cc/CMakeFiles/wira_cc.dir/bandwidth_sampler.cc.o" "gcc" "src/cc/CMakeFiles/wira_cc.dir/bandwidth_sampler.cc.o.d"
  "/root/repo/src/cc/bbr.cc" "src/cc/CMakeFiles/wira_cc.dir/bbr.cc.o" "gcc" "src/cc/CMakeFiles/wira_cc.dir/bbr.cc.o.d"
  "/root/repo/src/cc/cubic.cc" "src/cc/CMakeFiles/wira_cc.dir/cubic.cc.o" "gcc" "src/cc/CMakeFiles/wira_cc.dir/cubic.cc.o.d"
  "/root/repo/src/cc/newreno.cc" "src/cc/CMakeFiles/wira_cc.dir/newreno.cc.o" "gcc" "src/cc/CMakeFiles/wira_cc.dir/newreno.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wira_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
