# Empty compiler generated dependencies file for wira_cc.
# This may be replaced when dependencies are built.
