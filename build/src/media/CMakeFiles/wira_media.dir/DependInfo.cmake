
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/amf0.cc" "src/media/CMakeFiles/wira_media.dir/amf0.cc.o" "gcc" "src/media/CMakeFiles/wira_media.dir/amf0.cc.o.d"
  "/root/repo/src/media/flv.cc" "src/media/CMakeFiles/wira_media.dir/flv.cc.o" "gcc" "src/media/CMakeFiles/wira_media.dir/flv.cc.o.d"
  "/root/repo/src/media/mpegts.cc" "src/media/CMakeFiles/wira_media.dir/mpegts.cc.o" "gcc" "src/media/CMakeFiles/wira_media.dir/mpegts.cc.o.d"
  "/root/repo/src/media/stream_source.cc" "src/media/CMakeFiles/wira_media.dir/stream_source.cc.o" "gcc" "src/media/CMakeFiles/wira_media.dir/stream_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wira_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
