file(REMOVE_RECURSE
  "libwira_media.a"
)
