# Empty dependencies file for wira_media.
# This may be replaced when dependencies are built.
