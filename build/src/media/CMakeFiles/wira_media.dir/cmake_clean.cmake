file(REMOVE_RECURSE
  "CMakeFiles/wira_media.dir/amf0.cc.o"
  "CMakeFiles/wira_media.dir/amf0.cc.o.d"
  "CMakeFiles/wira_media.dir/flv.cc.o"
  "CMakeFiles/wira_media.dir/flv.cc.o.d"
  "CMakeFiles/wira_media.dir/mpegts.cc.o"
  "CMakeFiles/wira_media.dir/mpegts.cc.o.d"
  "CMakeFiles/wira_media.dir/stream_source.cc.o"
  "CMakeFiles/wira_media.dir/stream_source.cc.o.d"
  "libwira_media.a"
  "libwira_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
