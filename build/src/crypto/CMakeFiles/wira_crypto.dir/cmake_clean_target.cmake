file(REMOVE_RECURSE
  "libwira_crypto.a"
)
