# Empty compiler generated dependencies file for wira_crypto.
# This may be replaced when dependencies are built.
