file(REMOVE_RECURSE
  "CMakeFiles/wira_crypto.dir/aead.cc.o"
  "CMakeFiles/wira_crypto.dir/aead.cc.o.d"
  "CMakeFiles/wira_crypto.dir/chacha20.cc.o"
  "CMakeFiles/wira_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/wira_crypto.dir/poly1305.cc.o"
  "CMakeFiles/wira_crypto.dir/poly1305.cc.o.d"
  "libwira_crypto.a"
  "libwira_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
