file(REMOVE_RECURSE
  "libwira_core.a"
)
