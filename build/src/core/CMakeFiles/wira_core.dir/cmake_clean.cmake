file(REMOVE_RECURSE
  "CMakeFiles/wira_core.dir/frame_parser.cc.o"
  "CMakeFiles/wira_core.dir/frame_parser.cc.o.d"
  "CMakeFiles/wira_core.dir/init_config.cc.o"
  "CMakeFiles/wira_core.dir/init_config.cc.o.d"
  "CMakeFiles/wira_core.dir/transport_cookie.cc.o"
  "CMakeFiles/wira_core.dir/transport_cookie.cc.o.d"
  "libwira_core.a"
  "libwira_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
