# Empty compiler generated dependencies file for wira_core.
# This may be replaced when dependencies are built.
