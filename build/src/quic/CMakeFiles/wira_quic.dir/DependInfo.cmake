
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quic/connection.cc" "src/quic/CMakeFiles/wira_quic.dir/connection.cc.o" "gcc" "src/quic/CMakeFiles/wira_quic.dir/connection.cc.o.d"
  "/root/repo/src/quic/frames.cc" "src/quic/CMakeFiles/wira_quic.dir/frames.cc.o" "gcc" "src/quic/CMakeFiles/wira_quic.dir/frames.cc.o.d"
  "/root/repo/src/quic/handshake.cc" "src/quic/CMakeFiles/wira_quic.dir/handshake.cc.o" "gcc" "src/quic/CMakeFiles/wira_quic.dir/handshake.cc.o.d"
  "/root/repo/src/quic/pacer.cc" "src/quic/CMakeFiles/wira_quic.dir/pacer.cc.o" "gcc" "src/quic/CMakeFiles/wira_quic.dir/pacer.cc.o.d"
  "/root/repo/src/quic/packet.cc" "src/quic/CMakeFiles/wira_quic.dir/packet.cc.o" "gcc" "src/quic/CMakeFiles/wira_quic.dir/packet.cc.o.d"
  "/root/repo/src/quic/range_set.cc" "src/quic/CMakeFiles/wira_quic.dir/range_set.cc.o" "gcc" "src/quic/CMakeFiles/wira_quic.dir/range_set.cc.o.d"
  "/root/repo/src/quic/stream.cc" "src/quic/CMakeFiles/wira_quic.dir/stream.cc.o" "gcc" "src/quic/CMakeFiles/wira_quic.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wira_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wira_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/wira_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wira_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
