# Empty compiler generated dependencies file for wira_quic.
# This may be replaced when dependencies are built.
