file(REMOVE_RECURSE
  "CMakeFiles/wira_quic.dir/connection.cc.o"
  "CMakeFiles/wira_quic.dir/connection.cc.o.d"
  "CMakeFiles/wira_quic.dir/frames.cc.o"
  "CMakeFiles/wira_quic.dir/frames.cc.o.d"
  "CMakeFiles/wira_quic.dir/handshake.cc.o"
  "CMakeFiles/wira_quic.dir/handshake.cc.o.d"
  "CMakeFiles/wira_quic.dir/pacer.cc.o"
  "CMakeFiles/wira_quic.dir/pacer.cc.o.d"
  "CMakeFiles/wira_quic.dir/packet.cc.o"
  "CMakeFiles/wira_quic.dir/packet.cc.o.d"
  "CMakeFiles/wira_quic.dir/range_set.cc.o"
  "CMakeFiles/wira_quic.dir/range_set.cc.o.d"
  "CMakeFiles/wira_quic.dir/stream.cc.o"
  "CMakeFiles/wira_quic.dir/stream.cc.o.d"
  "libwira_quic.a"
  "libwira_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
