file(REMOVE_RECURSE
  "libwira_quic.a"
)
