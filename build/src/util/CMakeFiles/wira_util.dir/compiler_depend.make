# Empty compiler generated dependencies file for wira_util.
# This may be replaced when dependencies are built.
