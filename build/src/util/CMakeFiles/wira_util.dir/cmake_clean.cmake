file(REMOVE_RECURSE
  "CMakeFiles/wira_util.dir/bytes.cc.o"
  "CMakeFiles/wira_util.dir/bytes.cc.o.d"
  "CMakeFiles/wira_util.dir/logging.cc.o"
  "CMakeFiles/wira_util.dir/logging.cc.o.d"
  "CMakeFiles/wira_util.dir/stats.cc.o"
  "CMakeFiles/wira_util.dir/stats.cc.o.d"
  "libwira_util.a"
  "libwira_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
