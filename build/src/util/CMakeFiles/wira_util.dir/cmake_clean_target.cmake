file(REMOVE_RECURSE
  "libwira_util.a"
)
