file(REMOVE_RECURSE
  "CMakeFiles/wira_popgen.dir/population.cc.o"
  "CMakeFiles/wira_popgen.dir/population.cc.o.d"
  "libwira_popgen.a"
  "libwira_popgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_popgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
