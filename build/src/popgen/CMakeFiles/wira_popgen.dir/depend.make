# Empty dependencies file for wira_popgen.
# This may be replaced when dependencies are built.
