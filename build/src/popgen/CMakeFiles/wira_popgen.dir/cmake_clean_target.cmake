file(REMOVE_RECURSE
  "libwira_popgen.a"
)
