file(REMOVE_RECURSE
  "libwira_exp.a"
)
