file(REMOVE_RECURSE
  "CMakeFiles/wira_exp.dir/population_experiment.cc.o"
  "CMakeFiles/wira_exp.dir/population_experiment.cc.o.d"
  "CMakeFiles/wira_exp.dir/session_runner.cc.o"
  "CMakeFiles/wira_exp.dir/session_runner.cc.o.d"
  "CMakeFiles/wira_exp.dir/table.cc.o"
  "CMakeFiles/wira_exp.dir/table.cc.o.d"
  "libwira_exp.a"
  "libwira_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
