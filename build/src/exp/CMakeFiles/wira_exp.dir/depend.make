# Empty dependencies file for wira_exp.
# This may be replaced when dependencies are built.
