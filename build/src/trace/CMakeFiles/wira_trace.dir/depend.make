# Empty dependencies file for wira_trace.
# This may be replaced when dependencies are built.
