file(REMOVE_RECURSE
  "libwira_trace.a"
)
