file(REMOVE_RECURSE
  "CMakeFiles/wira_trace.dir/tracer.cc.o"
  "CMakeFiles/wira_trace.dir/tracer.cc.o.d"
  "libwira_trace.a"
  "libwira_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
