file(REMOVE_RECURSE
  "libwira_app.a"
)
