# Empty dependencies file for wira_app.
# This may be replaced when dependencies are built.
