file(REMOVE_RECURSE
  "CMakeFiles/wira_app.dir/player_client.cc.o"
  "CMakeFiles/wira_app.dir/player_client.cc.o.d"
  "CMakeFiles/wira_app.dir/wira_server.cc.o"
  "CMakeFiles/wira_app.dir/wira_server.cc.o.d"
  "libwira_app.a"
  "libwira_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
