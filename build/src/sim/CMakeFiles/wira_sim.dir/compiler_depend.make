# Empty compiler generated dependencies file for wira_sim.
# This may be replaced when dependencies are built.
