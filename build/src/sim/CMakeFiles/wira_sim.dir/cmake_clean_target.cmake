file(REMOVE_RECURSE
  "libwira_sim.a"
)
