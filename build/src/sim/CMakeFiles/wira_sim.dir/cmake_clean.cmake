file(REMOVE_RECURSE
  "CMakeFiles/wira_sim.dir/event_loop.cc.o"
  "CMakeFiles/wira_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/wira_sim.dir/link.cc.o"
  "CMakeFiles/wira_sim.dir/link.cc.o.d"
  "CMakeFiles/wira_sim.dir/path.cc.o"
  "CMakeFiles/wira_sim.dir/path.cc.o.d"
  "CMakeFiles/wira_sim.dir/topology.cc.o"
  "CMakeFiles/wira_sim.dir/topology.cc.o.d"
  "libwira_sim.a"
  "libwira_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wira_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
