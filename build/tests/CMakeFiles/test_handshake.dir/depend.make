# Empty dependencies file for test_handshake.
# This may be replaced when dependencies are built.
