file(REMOVE_RECURSE
  "CMakeFiles/test_handshake.dir/test_handshake.cc.o"
  "CMakeFiles/test_handshake.dir/test_handshake.cc.o.d"
  "test_handshake"
  "test_handshake.pdb"
  "test_handshake[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
