file(REMOVE_RECURSE
  "CMakeFiles/test_mpegts.dir/test_mpegts.cc.o"
  "CMakeFiles/test_mpegts.dir/test_mpegts.cc.o.d"
  "test_mpegts"
  "test_mpegts.pdb"
  "test_mpegts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpegts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
