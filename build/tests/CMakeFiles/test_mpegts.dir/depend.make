# Empty dependencies file for test_mpegts.
# This may be replaced when dependencies are built.
