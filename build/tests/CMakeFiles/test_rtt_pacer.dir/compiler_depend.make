# Empty compiler generated dependencies file for test_rtt_pacer.
# This may be replaced when dependencies are built.
