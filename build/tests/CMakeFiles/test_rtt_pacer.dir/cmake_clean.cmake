file(REMOVE_RECURSE
  "CMakeFiles/test_rtt_pacer.dir/test_rtt_pacer.cc.o"
  "CMakeFiles/test_rtt_pacer.dir/test_rtt_pacer.cc.o.d"
  "test_rtt_pacer"
  "test_rtt_pacer.pdb"
  "test_rtt_pacer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtt_pacer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
