file(REMOVE_RECURSE
  "CMakeFiles/test_wire_golden.dir/test_wire_golden.cc.o"
  "CMakeFiles/test_wire_golden.dir/test_wire_golden.cc.o.d"
  "test_wire_golden"
  "test_wire_golden.pdb"
  "test_wire_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
