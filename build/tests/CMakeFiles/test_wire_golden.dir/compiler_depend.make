# Empty compiler generated dependencies file for test_wire_golden.
# This may be replaced when dependencies are built.
