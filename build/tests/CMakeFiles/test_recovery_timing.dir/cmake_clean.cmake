file(REMOVE_RECURSE
  "CMakeFiles/test_recovery_timing.dir/test_recovery_timing.cc.o"
  "CMakeFiles/test_recovery_timing.dir/test_recovery_timing.cc.o.d"
  "test_recovery_timing"
  "test_recovery_timing.pdb"
  "test_recovery_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recovery_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
