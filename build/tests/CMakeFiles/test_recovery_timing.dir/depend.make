# Empty dependencies file for test_recovery_timing.
# This may be replaced when dependencies are built.
