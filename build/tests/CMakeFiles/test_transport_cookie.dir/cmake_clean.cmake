file(REMOVE_RECURSE
  "CMakeFiles/test_transport_cookie.dir/test_transport_cookie.cc.o"
  "CMakeFiles/test_transport_cookie.dir/test_transport_cookie.cc.o.d"
  "test_transport_cookie"
  "test_transport_cookie.pdb"
  "test_transport_cookie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_cookie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
