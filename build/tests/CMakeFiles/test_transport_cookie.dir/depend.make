# Empty dependencies file for test_transport_cookie.
# This may be replaced when dependencies are built.
