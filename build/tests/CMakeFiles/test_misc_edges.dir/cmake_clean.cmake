file(REMOVE_RECURSE
  "CMakeFiles/test_misc_edges.dir/test_misc_edges.cc.o"
  "CMakeFiles/test_misc_edges.dir/test_misc_edges.cc.o.d"
  "test_misc_edges"
  "test_misc_edges.pdb"
  "test_misc_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misc_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
