# Empty compiler generated dependencies file for test_misc_edges.
# This may be replaced when dependencies are built.
