file(REMOVE_RECURSE
  "CMakeFiles/test_event_loop.dir/test_event_loop.cc.o"
  "CMakeFiles/test_event_loop.dir/test_event_loop.cc.o.d"
  "test_event_loop"
  "test_event_loop.pdb"
  "test_event_loop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
