# Empty dependencies file for test_init_config.
# This may be replaced when dependencies are built.
