file(REMOVE_RECURSE
  "CMakeFiles/test_init_config.dir/test_init_config.cc.o"
  "CMakeFiles/test_init_config.dir/test_init_config.cc.o.d"
  "test_init_config"
  "test_init_config.pdb"
  "test_init_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_init_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
