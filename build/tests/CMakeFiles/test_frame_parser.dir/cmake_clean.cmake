file(REMOVE_RECURSE
  "CMakeFiles/test_frame_parser.dir/test_frame_parser.cc.o"
  "CMakeFiles/test_frame_parser.dir/test_frame_parser.cc.o.d"
  "test_frame_parser"
  "test_frame_parser.pdb"
  "test_frame_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
