# Empty dependencies file for test_range_set.
# This may be replaced when dependencies are built.
