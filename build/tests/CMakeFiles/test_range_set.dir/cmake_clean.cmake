file(REMOVE_RECURSE
  "CMakeFiles/test_range_set.dir/test_range_set.cc.o"
  "CMakeFiles/test_range_set.dir/test_range_set.cc.o.d"
  "test_range_set"
  "test_range_set.pdb"
  "test_range_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
