// MPEG transport stream (ISO 13818-1) muxer/demuxer — the container
// behind HLS segments.  Implemented so Frame Perception can parse
// HLS-TS live streams in addition to HTTP-FLV (the paper's PtlSet lists
// FLV, HLS and RTMP; its prototype parses FLV).
//
// Supported subset: 188-byte packets, PAT/PMT (single program), PES with
// PTS, adaptation-field stuffing, continuity counters, random-access
// indicator on key frames.  No PCR jitter modelling, no scrambling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "media/frame.h"
#include "util/bytes.h"

namespace wira::media {

inline constexpr size_t kTsPacketSize = 188;
inline constexpr uint8_t kTsSyncByte = 0x47;
inline constexpr uint16_t kTsPidPat = 0x0000;
inline constexpr uint16_t kTsPidPmt = 0x1000;
inline constexpr uint16_t kTsPidVideo = 0x0100;
inline constexpr uint16_t kTsPidAudio = 0x0101;

/// On-wire size of one frame once TS-packetized by TsMuxer (PES header +
/// payload, sliced into stuffed 188-byte packets).
size_t ts_frame_wire_size(const MediaFrame& frame);

/// On-wire size of the PSI prelude (PAT + PMT packets).
inline constexpr size_t kTsPsiSize = 2 * kTsPacketSize;

/// Serializes media frames into a TS byte stream.
class TsMuxer {
 public:
  TsMuxer() = default;
  /// Muxes into a recycled buffer (cleared, capacity kept) — pairs with
  /// take() for allocation-free round trips through a util::BufferPool.
  explicit TsMuxer(std::vector<uint8_t>&& adopt) : out_(std::move(adopt)) {}

  /// Writes PAT + PMT (call once at stream start; HLS segments repeat
  /// them at segment boundaries).
  void write_psi();

  /// Writes one frame as a PES packet spread over TS packets.
  /// Script/metadata frames are carried as private data (stream_id 0xBD).
  void write_frame(const MediaFrame& frame);

  size_t size() const { return out_.size(); }
  std::vector<uint8_t> take() { return out_.take(); }
  std::span<const uint8_t> span() const { return out_.span(); }

 private:
  void write_ts_packet(uint16_t pid, bool payload_start, bool random_access,
                       std::span<const uint8_t> payload);
  uint8_t next_cc(uint16_t pid);

  ByteWriter out_;
  std::map<uint16_t, uint8_t> continuity_;
};

/// A reassembled PES unit.
struct TsPesUnit {
  uint16_t pid = 0;
  uint8_t stream_id = 0;
  std::optional<TimeNs> pts;
  bool random_access = false;  ///< adaptation-field RAI (key frame)
  std::vector<uint8_t> payload;
};

/// Incremental TS demuxer: feed arbitrary slices; PES units are emitted
/// when complete (declared length reached, or next unit starts on the
/// same PID).
class TsDemuxer {
 public:
  using UnitFn = std::function<void(const TsPesUnit&)>;

  explicit TsDemuxer(UnitFn on_unit) : on_unit_(std::move(on_unit)) {}

  bool feed(std::span<const uint8_t> data);
  bool failed() const { return failed_; }
  uint64_t packets_parsed() const { return packets_parsed_; }
  /// PIDs announced by the PMT as video / audio.
  std::optional<uint16_t> video_pid() const { return video_pid_; }
  std::optional<uint16_t> audio_pid() const { return audio_pid_; }
  /// True once payload for the video PID has been seen, i.e. the stream
  /// position has reached the first byte of video data.  Marks the
  /// delivery -> frame_recv phase boundary on the client.
  bool video_started() const { return video_started_; }

  /// Flushes a pending (unterminated) PES unit — call at end of stream.
  void flush();

 private:
  void process_packet(std::span<const uint8_t> pkt);
  void handle_psi(uint16_t pid, std::span<const uint8_t> payload,
                  bool payload_start);
  void begin_or_append_pes(uint16_t pid, bool payload_start,
                           bool random_access,
                           std::span<const uint8_t> payload);
  void finish_pes(uint16_t pid);

  struct PesAssembly {
    std::vector<uint8_t> buffer;  ///< raw PES bytes (header + data)
    bool random_access = false;
    bool active = false;
  };

  UnitFn on_unit_;
  std::vector<uint8_t> partial_;  ///< sub-188-byte remainder
  std::map<uint16_t, PesAssembly> pes_;
  std::optional<uint16_t> video_pid_;
  std::optional<uint16_t> audio_pid_;
  bool video_started_ = false;
  bool failed_ = false;
  uint64_t packets_parsed_ = 0;
};

}  // namespace wira::media
