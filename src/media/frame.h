// Media frame model shared by the generator, the FLV muxer and the
// Wira frame parser.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace wira::media {

/// FLV tag types (the container's own numbering).
enum class TagType : uint8_t {
  kAudio = 8,
  kVideo = 9,
  kScript = 18,
};

/// Video frame kinds as encoded in the first nibble of an FLV video tag.
enum class VideoKind : uint8_t {
  kKey = 1,         ///< I frame (seekable)
  kInter = 2,       ///< P frame
  kDisposable = 3,  ///< B frame (disposable inter frame)
};

/// One elementary media frame before containerization.
struct MediaFrame {
  TagType type = TagType::kVideo;
  VideoKind video_kind = VideoKind::kKey;  ///< meaningful iff type==kVideo
  uint32_t payload_bytes = 0;              ///< tag body size (incl. codec header byte)
  TimeNs pts = 0;                          ///< presentation timestamp
};

/// FLV wire-format constants.
inline constexpr size_t kFlvHeaderSize = 9;
inline constexpr size_t kFlvPreviousTagSize = 4;
inline constexpr size_t kFlvTagHeaderSize = 11;

/// Total on-wire size of one frame once muxed into FLV
/// (tag header + body + trailing PreviousTagSize field).
inline constexpr size_t flv_tag_wire_size(uint32_t payload_bytes) {
  return kFlvTagHeaderSize + payload_bytes + kFlvPreviousTagSize;
}

}  // namespace wira::media
