#include "media/stream_source.h"

#include <algorithm>
#include <cmath>

#include "media/mpegts.h"

namespace wira::media {

namespace {
/// Mixes (seed, stream, gop) into one RNG seed.
uint64_t mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t x = a ^ (b * 0x9E3779B97F4A7C15ull) ^ (c * 0xC2B2AE3D27D4EB4Full);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

double clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}
}  // namespace

StreamProfile sample_stream_profile(Rng& rng, uint64_t stream_id) {
  StreamProfile p;
  p.stream_id = stream_id;
  // Corpus complexity: lognormal fitted to the paper's quantile anchors
  // (30% of first frames < 30 KB, 20% > 60 KB, mean ~43 KB): sigma=0.507
  // i.e. CV~0.54; clamped so first-frame sizes (with container overhead)
  // land in ~[6 KB, 250 KB].
  p.iframe_mean_bytes = clamp(rng.lognormal_mean_cv(43'000.0, 0.54),
                              5'500.0, 245'000.0);
  // Resolution class correlates loosely with complexity.
  if (p.iframe_mean_bytes > 90'000) {
    p.width = 1920; p.height = 1080;
  } else if (p.iframe_mean_bytes < 18'000) {
    p.width = 640; p.height = 360;
  }
  p.iframe_intra_cv = rng.uniform(0.20, 0.40);
  p.fps = rng.chance(0.3) ? 30.0 : 25.0;
  p.gop_frames = static_cast<uint32_t>(p.fps * rng.range(1, 4));  // 1-4 s GOP
  return p;
}

LiveStream::LiveStream(StreamProfile profile, uint64_t corpus_seed)
    : profile_(profile), corpus_seed_(corpus_seed) {}

TimeNs LiveStream::frame_interval() const {
  return static_cast<TimeNs>(1e9 / profile_.fps);
}

TimeNs LiveStream::gop_duration() const {
  return frame_interval() * profile_.gop_frames;
}

std::vector<MediaFrame> LiveStream::gop(uint64_t k) const {
  Rng rng(mix(corpus_seed_, profile_.stream_id, k));
  const TimeNs gop_start = static_cast<TimeNs>(k) * gop_duration();
  const double i_bytes =
      clamp(rng.lognormal_mean_cv(profile_.iframe_mean_bytes,
                                  profile_.iframe_intra_cv),
            2'000.0, 249'000.0);

  std::vector<MediaFrame> video;
  video.reserve(profile_.gop_frames);
  uint32_t since_p = 0;
  for (uint32_t i = 0; i < profile_.gop_frames; ++i) {
    MediaFrame f;
    f.type = TagType::kVideo;
    f.pts = gop_start + static_cast<TimeNs>(i) * frame_interval();
    if (i == 0) {
      f.video_kind = VideoKind::kKey;
      f.payload_bytes = static_cast<uint32_t>(i_bytes);
    } else if (since_p >= profile_.bs_per_p) {
      f.video_kind = VideoKind::kInter;
      f.payload_bytes = static_cast<uint32_t>(clamp(
          i_bytes * profile_.p_over_i * rng.lognormal_mean_cv(1.0, 0.25),
          400.0, 200'000.0));
      since_p = 0;
    } else {
      f.video_kind = VideoKind::kDisposable;
      f.payload_bytes = static_cast<uint32_t>(clamp(
          i_bytes * profile_.b_over_i * rng.lognormal_mean_cv(1.0, 0.25),
          200.0, 150'000.0));
      since_p++;
    }
    video.push_back(f);
  }

  // Interleave audio tags at their own cadence; merge by PTS with audio
  // winning ties (an audio sample "covering" a video PTS precedes it).
  const TimeNs audio_period =
      static_cast<TimeNs>(1e9 / profile_.audio_tags_per_sec);
  std::vector<MediaFrame> out;
  out.reserve(video.size() * 3);
  size_t vi = 0;
  for (TimeNs a = gop_start; a < gop_start + gop_duration();
       a += audio_period) {
    while (vi < video.size() && video[vi].pts < a) out.push_back(video[vi++]);
    MediaFrame f;
    f.type = TagType::kAudio;
    f.pts = a;
    f.payload_bytes = profile_.audio_payload_bytes;
    out.push_back(f);
  }
  while (vi < video.size()) out.push_back(video[vi++]);
  return out;
}

std::vector<uint8_t> LiveStream::metadata_prefix(
    util::BufferPool* pool) const {
  std::vector<uint8_t> buf = pool ? pool->acquire() : std::vector<uint8_t>();
  if (profile_.container == Container::kMpegTs) {
    TsMuxer mux(std::move(buf));
    mux.write_psi();
    return mux.take();
  }
  FlvMuxer mux(std::move(buf));
  mux.write_header();
  mux.write_metadata(0, {
      {"width", static_cast<double>(profile_.width)},
      {"height", static_cast<double>(profile_.height)},
      {"framerate", profile_.fps},
      {"videodatarate",
       profile_.iframe_mean_bytes * 8.0 * profile_.fps / 8'000.0 / 10.0},
      {"audiodatarate", 128.0},
  });
  return mux.take();
}

StreamChunk LiveStream::mux_frame(const MediaFrame& f,
                                  util::BufferPool* pool) const {
  StreamChunk c;
  c.pts = f.pts;
  c.type = f.type;
  c.video_kind = f.video_kind;
  std::vector<uint8_t> buf = pool ? pool->acquire() : std::vector<uint8_t>();
  if (profile_.container == Container::kMpegTs) {
    TsMuxer mux(std::move(buf));
    mux.write_frame(f);
    c.bytes = mux.take();
  } else {
    FlvMuxer mux(std::move(buf));
    mux.write_frame(f);
    c.bytes = mux.take();
  }
  return c;
}

void LiveStream::join_chunks(TimeNs join_time, std::vector<StreamChunk>& out,
                             util::BufferPool* pool) const {
  out.clear();
  const uint64_t k = static_cast<uint64_t>(
      std::max<TimeNs>(join_time, 0) / gop_duration());
  bool first = true;
  for (const MediaFrame& f : gop(k)) {
    if (f.pts > join_time) break;
    StreamChunk c = mux_frame(f, pool);
    if (first) {
      auto prefix = metadata_prefix(pool);
      prefix.insert(prefix.end(), c.bytes.begin(), c.bytes.end());
      if (pool) pool->release(std::move(c.bytes));
      c.bytes = std::move(prefix);
      first = false;
    }
    out.push_back(std::move(c));
  }
  if (first) {
    // Join landed before the GOP's first frame PTS: send header alone.
    StreamChunk c;
    c.pts = join_time;
    c.bytes = metadata_prefix(pool);
    c.type = TagType::kScript;
    out.push_back(std::move(c));
  }
}

std::vector<StreamChunk> LiveStream::join_chunks(TimeNs join_time) const {
  std::vector<StreamChunk> out;
  join_chunks(join_time, out, nullptr);
  return out;
}

void LiveStream::chunks_between(TimeNs t0, TimeNs t1,
                                std::vector<StreamChunk>& out,
                                util::BufferPool* pool) const {
  out.clear();
  if (t1 <= t0) return;
  const uint64_t k0 = static_cast<uint64_t>(std::max<TimeNs>(t0, 0) /
                                            gop_duration());
  const uint64_t k1 = static_cast<uint64_t>(std::max<TimeNs>(t1, 0) /
                                            gop_duration());
  for (uint64_t k = k0; k <= k1; ++k) {
    for (const MediaFrame& f : gop(k)) {
      if (f.pts > t0 && f.pts <= t1) out.push_back(mux_frame(f, pool));
    }
  }
}

std::vector<StreamChunk> LiveStream::chunks_between(TimeNs t0,
                                                    TimeNs t1) const {
  std::vector<StreamChunk> out;
  chunks_between(t0, t1, out, nullptr);
  return out;
}

uint64_t LiveStream::first_frame_size(TimeNs join_time,
                                      uint32_t theta_vf) const {
  // Count: container prelude + every frame up to the first-frame boundary,
  // starting from the join burst and continuing into the live tail.
  const bool ts = profile_.container == Container::kMpegTs;
  uint64_t size = metadata_prefix(nullptr).size();
  uint32_t videos = 0;
  const uint64_t k = static_cast<uint64_t>(
      std::max<TimeNs>(join_time, 0) / gop_duration());
  for (uint64_t g = k; g < k + 4; ++g) {  // first frame spans < 4 GOPs
    for (const MediaFrame& f : gop(g)) {
      if (ts && f.type == TagType::kVideo && videos == theta_vf) {
        // TS boundary rule: the first frame ends where the next video
        // access unit starts.
        return size;
      }
      size += ts ? ts_frame_wire_size(f)
                 : flv_tag_wire_size(f.payload_bytes);
      if (f.type == TagType::kVideo) {
        ++videos;
        if (!ts && videos == theta_vf) return size;
      }
    }
  }
  return size;
}

}  // namespace wira::media
