// Synthetic live-stream source.
//
// Stand-in for the production live corpus behind Fig. 1: each stream has a
// latent "complexity" (base I-frame size) drawn from a heavy-tailed corpus
// distribution calibrated so the resulting first-frame sizes match the
// paper's measurements (mean 43.1 KB, p30 < 30 KB, p80 > 60 KB, range
// ~6-250 KB), plus per-GOP variation reproducing the intra-stream spread of
// Fig. 1(b).
//
// Generation is deterministic: GOP k of stream s depends only on
// (corpus_seed, s, k), so origin and tests agree without shared state.
#pragma once

#include <cstdint>
#include <vector>

#include "media/flv.h"
#include "media/frame.h"
#include "util/buffer_pool.h"
#include "util/rng.h"
#include "util/units.h"

namespace wira::media {

/// Container format a live stream is delivered in.
enum class Container {
  kFlv,     ///< HTTP-FLV (the paper's deployment)
  kMpegTs,  ///< HLS-style MPEG transport stream
};

struct StreamProfile {
  uint64_t stream_id = 0;
  Container container = Container::kFlv;
  double fps = 25.0;
  uint32_t gop_frames = 50;            ///< 2 s GOP at 25 fps
  double iframe_mean_bytes = 43'000;   ///< per-stream base complexity
  double iframe_intra_cv = 0.30;       ///< GOP-to-GOP variation (Fig. 1b)
  double p_over_i = 0.22;              ///< P-frame size relative to I
  double b_over_i = 0.10;              ///< B-frame size relative to I
  uint32_t bs_per_p = 2;               ///< GOP pattern I (P B B)*
  uint32_t audio_payload_bytes = 330;  ///< AAC tag body size
  double audio_tags_per_sec = 43.0;
  uint32_t width = 1280, height = 720;
};

/// Draws a stream profile from the corpus distribution (Fig. 1a shape).
StreamProfile sample_stream_profile(Rng& rng, uint64_t stream_id);

/// A muxed per-frame chunk ready for transmission: one FLV tag (plus its
/// trailing PreviousTagSize); the very first chunk of a session additionally
/// carries the FLV header and metadata script tag.
struct StreamChunk {
  TimeNs pts = 0;
  std::vector<uint8_t> bytes;
  TagType type = TagType::kVideo;
  VideoKind video_kind = VideoKind::kKey;
};

class LiveStream {
 public:
  LiveStream(StreamProfile profile, uint64_t corpus_seed);

  const StreamProfile& profile() const { return profile_; }
  TimeNs gop_duration() const;
  TimeNs frame_interval() const;

  /// Media frames (video + audio, PTS order) of GOP `k`.
  std::vector<MediaFrame> gop(uint64_t k) const;

  /// The bytes a client joining at `join_time` receives immediately:
  /// FLV header + onMetaData + every frame of the enclosing GOP with
  /// pts <= join_time.  The first chunk starts with the FLV header.
  std::vector<StreamChunk> join_chunks(TimeNs join_time) const;

  /// Frames with pts in (t0, t1], muxed one tag per chunk — the "live tail"
  /// the origin produces after the join burst.
  std::vector<StreamChunk> chunks_between(TimeNs t0, TimeNs t1) const;

  /// Allocation-recycling variants (the per-session hot path): chunks are
  /// rebuilt into `out` (cleared first, capacity retained across calls)
  /// and chunk byte buffers are drawn from `pool` when non-null.  The
  /// consumer returns each chunk's bytes to the same pool once sent —
  /// util::BufferPool tolerates foreign buffers, so ownership stays
  /// simple.  Output is byte-identical to the vector-returning overloads.
  void join_chunks(TimeNs join_time, std::vector<StreamChunk>& out,
                   util::BufferPool* pool) const;
  void chunks_between(TimeNs t0, TimeNs t1, std::vector<StreamChunk>& out,
                      util::BufferPool* pool) const;

  /// Ground-truth first-frame size for a join at `join_time`, i.e. what
  /// Algorithm 1 should report.  FLV: header + metadata + tags up to and
  /// including the `theta_vf`-th video frame (with PreviousTagSize
  /// fields).  MPEG-TS: PSI + packetized frames up to but *excluding* the
  /// (theta_vf+1)-th video frame — a TS access unit's end is only
  /// detectable when the next unit starts.
  uint64_t first_frame_size(TimeNs join_time, uint32_t theta_vf = 1) const;

 private:
  // FLV header / TS PSI, muxed into a pool buffer when one is available.
  std::vector<uint8_t> metadata_prefix(util::BufferPool* pool) const;
  StreamChunk mux_frame(const MediaFrame& f, util::BufferPool* pool) const;

  StreamProfile profile_;
  uint64_t corpus_seed_;
};

}  // namespace wira::media
