#include "media/amf0.h"

namespace wira::media {

namespace {
// AMF0 type markers.
constexpr uint8_t kNumber = 0x00;
constexpr uint8_t kBoolean = 0x01;
constexpr uint8_t kString = 0x02;
constexpr uint8_t kEcmaArray = 0x08;
constexpr uint8_t kObjectEnd = 0x09;

void encode_value(ByteWriter& w, const Amf0Value& v) {
  if (const double* d = std::get_if<double>(&v)) {
    w.u8(kNumber);
    w.f64be(*d);
  } else if (const bool* b = std::get_if<bool>(&v)) {
    w.u8(kBoolean);
    w.u8(*b ? 1 : 0);
  } else {
    const auto& s = std::get<std::string>(v);
    w.u8(kString);
    w.u16be(static_cast<uint16_t>(s.size()));
    w.str(s);
  }
}

std::optional<Amf0Value> decode_value(ByteReader& r) {
  switch (r.u8()) {
    case kNumber:
      return Amf0Value{r.f64be()};
    case kBoolean:
      return Amf0Value{r.u8() != 0};
    case kString: {
      const uint16_t len = r.u16be();
      auto s = r.str(len);
      if (!r.ok()) return std::nullopt;
      return Amf0Value{std::move(s)};
    }
    default:
      return std::nullopt;
  }
}
}  // namespace

std::vector<uint8_t> amf0_encode_metadata(
    const std::string& name, const std::map<std::string, Amf0Value>& props) {
  ByteWriter w;
  w.u8(kString);
  w.u16be(static_cast<uint16_t>(name.size()));
  w.str(name);
  w.u8(kEcmaArray);
  w.u32be(static_cast<uint32_t>(props.size()));
  for (const auto& [key, value] : props) {
    w.u16be(static_cast<uint16_t>(key.size()));
    w.str(key);
    encode_value(w, value);
  }
  w.u16be(0);  // empty key terminates
  w.u8(kObjectEnd);
  return w.take();
}

std::optional<Amf0Metadata> amf0_decode_metadata(
    std::span<const uint8_t> body) {
  ByteReader r(body);
  if (r.u8() != kString) return std::nullopt;
  Amf0Metadata meta;
  meta.name = r.str(r.u16be());
  if (r.u8() != kEcmaArray) return std::nullopt;
  const uint32_t declared = r.u32be();
  (void)declared;  // advisory in AMF0; termination is the empty-key marker
  while (r.ok()) {
    const uint16_t key_len = r.u16be();
    if (!r.ok()) return std::nullopt;
    if (key_len == 0) {
      if (r.u8() != kObjectEnd) return std::nullopt;
      return meta;
    }
    std::string key = r.str(key_len);
    auto value = decode_value(r);
    if (!value || !r.ok()) return std::nullopt;
    meta.props.emplace(std::move(key), std::move(*value));
  }
  return std::nullopt;
}

}  // namespace wira::media
