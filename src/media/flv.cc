#include "media/flv.h"

#include <algorithm>

#include "media/amf0.h"

namespace wira::media {

namespace {
/// Deterministic filler byte for synthetic frame payloads; varies with the
/// position so compression-like tooling can't collapse it accidentally.
uint8_t filler(size_t i) { return static_cast<uint8_t>(0xA5 ^ (i * 31)); }
}  // namespace

void FlvMuxer::write_header(bool has_audio, bool has_video) {
  writer_.str("FLV");
  writer_.u8(1);  // version
  writer_.u8(static_cast<uint8_t>((has_audio ? 0x04 : 0) |
                                  (has_video ? 0x01 : 0)));
  writer_.u32be(kFlvHeaderSize);
  writer_.u32be(0);  // PreviousTagSize0
}

void FlvMuxer::write_tag(TagType type, TimeNs pts,
                         std::span<const uint8_t> body) {
  const uint32_t ts = static_cast<uint32_t>(to_ms(pts));
  writer_.u8(static_cast<uint8_t>(type));
  writer_.u24be(static_cast<uint32_t>(body.size()));
  writer_.u24be(ts & 0xFFFFFF);
  writer_.u8(static_cast<uint8_t>(ts >> 24));  // extended timestamp
  writer_.u24be(0);                            // stream id
  writer_.bytes(body);
  writer_.u32be(static_cast<uint32_t>(kFlvTagHeaderSize + body.size()));
}

void FlvMuxer::write_frame(const MediaFrame& frame) {
  // Synthetic payloads are generated straight into the writer (one exact
  // reserve, no intermediate body buffer): this is the origin's per-frame
  // hot path, and the byte-by-byte vector growth dominated its allocs.
  const bool has_marker =
      frame.type == TagType::kVideo || frame.type == TagType::kAudio;
  const size_t body_size =
      std::max<size_t>(frame.payload_bytes, has_marker ? 1 : 0);
  writer_.reserve(writer_.size() + kFlvTagHeaderSize + body_size +
                  kFlvPreviousTagSize);
  const uint32_t ts = static_cast<uint32_t>(to_ms(frame.pts));
  writer_.u8(static_cast<uint8_t>(frame.type));
  writer_.u24be(static_cast<uint32_t>(body_size));
  writer_.u24be(ts & 0xFFFFFF);
  writer_.u8(static_cast<uint8_t>(ts >> 24));  // extended timestamp
  writer_.u24be(0);                            // stream id
  if (frame.type == TagType::kVideo) {
    // FrameType(4) | CodecID(4); codec 7 = AVC.
    writer_.u8(static_cast<uint8_t>(
        (static_cast<uint8_t>(frame.video_kind) << 4) | 0x07));
  } else if (frame.type == TagType::kAudio) {
    // SoundFormat 10 (AAC), 44kHz stereo 16-bit.
    writer_.u8(0xAF);
  }
  for (size_t i = has_marker ? 1 : 0; i < body_size; ++i) {
    writer_.u8(filler(i));
  }
  writer_.u32be(static_cast<uint32_t>(kFlvTagHeaderSize + body_size));
}

void FlvMuxer::write_metadata(
    TimeNs pts, const std::map<std::string, double>& numeric_props) {
  std::map<std::string, Amf0Value> props;
  for (const auto& [k, v] : numeric_props) props.emplace(k, Amf0Value{v});
  const auto body = amf0_encode_metadata("onMetaData", props);
  write_tag(TagType::kScript, pts, body);
}

bool FlvDemuxer::feed(std::span<const uint8_t> data) {
  if (state_ == State::kError) return false;
  buf_.insert(buf_.end(), data.begin(), data.end());
  while (process()) {
  }
  return state_ != State::kError;
}

bool FlvDemuxer::process() {
  auto consume = [this](size_t n) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(n));
    bytes_consumed_ += n;
  };

  switch (state_) {
    case State::kHeader: {
      if (buf_.size() < kFlvHeaderSize) return false;
      if (buf_[0] != 'F' || buf_[1] != 'L' || buf_[2] != 'V') {
        state_ = State::kError;
        return false;
      }
      ByteReader r(std::span<const uint8_t>(buf_).subspan(5, 4));
      const uint32_t data_offset = r.u32be();
      if (data_offset < kFlvHeaderSize || buf_.size() < data_offset) {
        if (data_offset < kFlvHeaderSize) state_ = State::kError;
        return false;
      }
      consume(data_offset);
      state_ = State::kPrevTagSize;
      return true;
    }
    case State::kPrevTagSize: {
      if (buf_.size() < kFlvPreviousTagSize) return false;
      consume(kFlvPreviousTagSize);
      state_ = State::kTagHeader;
      return true;
    }
    case State::kTagHeader: {
      if (buf_.size() < kFlvTagHeaderSize) return false;
      ByteReader r(std::span<const uint8_t>(buf_).first(kFlvTagHeaderSize));
      const uint8_t type = r.u8();
      current_.data_size = r.u24be();
      const uint32_t ts_low = r.u24be();
      const uint8_t ts_ext = r.u8();
      current_.timestamp_ms = (static_cast<uint32_t>(ts_ext) << 24) | ts_low;
      if (type != 8 && type != 9 && type != 18) {
        state_ = State::kError;
        return false;
      }
      current_.type = static_cast<TagType>(type);
      if (type == 9) video_started_ = true;
      consume(kFlvTagHeaderSize);
      state_ = State::kTagBody;
      return true;
    }
    case State::kTagBody: {
      if (buf_.size() < current_.data_size) return false;
      current_.body.assign(buf_.begin(),
                           buf_.begin() + current_.data_size);
      consume(current_.data_size);
      tags_parsed_++;
      if (on_tag_) on_tag_(current_);
      state_ = State::kPrevTagSize;
      return true;
    }
    case State::kError:
      return false;
  }
  return false;
}

}  // namespace wira::media
