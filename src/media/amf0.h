// Minimal AMF0 encoder/decoder — enough for FLV onMetaData script tags
// (string, number, boolean, ECMA array).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "util/bytes.h"

namespace wira::media {

using Amf0Value = std::variant<double, bool, std::string>;

/// Encodes `name` (AMF0 string) followed by an ECMA array of properties —
/// the layout of an FLV onMetaData script tag body.
std::vector<uint8_t> amf0_encode_metadata(
    const std::string& name, const std::map<std::string, Amf0Value>& props);

/// Decodes a script tag body written by amf0_encode_metadata.  Returns
/// nullopt on malformed input.
struct Amf0Metadata {
  std::string name;
  std::map<std::string, Amf0Value> props;
};
std::optional<Amf0Metadata> amf0_decode_metadata(
    std::span<const uint8_t> body);

}  // namespace wira::media
