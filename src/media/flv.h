// FLV container: muxer (origin/proxy side) and incremental demuxer
// (client side, used to detect first-frame playback completion; also the
// ground truth the Wira L4 parser is validated against).
//
// Wire layout (Adobe FLV spec v10):
//   header     'F' 'L' 'V' version flags(audio|video) data_offset(u32be)
//   body       PreviousTagSize0 (u32be, 0) then repeated:
//              tag {type u8, data_size u24be, timestamp u24be+u8ext,
//                   stream_id u24be(0)} body[data_size] PreviousTagSize(u32be)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "media/frame.h"
#include "util/bytes.h"

namespace wira::media {

/// Serializes frames into a contiguous FLV byte stream.
class FlvMuxer {
 public:
  FlvMuxer() = default;
  /// Muxes into a recycled buffer (cleared, capacity kept) — pairs with
  /// take() for allocation-free round trips through a util::BufferPool.
  explicit FlvMuxer(std::vector<uint8_t>&& adopt)
      : writer_(std::move(adopt)) {}

  /// Writes the 9-byte header plus PreviousTagSize0.
  void write_header(bool has_audio = true, bool has_video = true);

  /// Writes a full tag with the given body.  `pts` is truncated to the
  /// container's millisecond timestamp.
  void write_tag(TagType type, TimeNs pts, std::span<const uint8_t> body);

  /// Writes a frame whose payload is synthetic: the correct FLV codec
  /// header byte(s) followed by deterministic filler up to
  /// `frame.payload_bytes`.
  void write_frame(const MediaFrame& frame);

  /// Writes an onMetaData script tag (width/height/framerate/...).
  void write_metadata(TimeNs pts,
                      const std::map<std::string, double>& numeric_props);

  size_t size() const { return writer_.size(); }
  std::vector<uint8_t> take() { return writer_.take(); }
  std::span<const uint8_t> span() const { return writer_.span(); }

 private:
  ByteWriter writer_;
};

/// A parsed FLV tag (body copied out).
struct FlvTag {
  TagType type;
  uint32_t data_size = 0;
  uint32_t timestamp_ms = 0;
  std::vector<uint8_t> body;

  /// For video tags: the frame kind from the first body byte.
  VideoKind video_kind() const {
    return static_cast<VideoKind>(body.empty() ? 0 : body[0] >> 4);
  }
};

/// Incremental (push) FLV demuxer: feed() arbitrary byte slices; complete
/// tags are surfaced through the callback in stream order.  Malformed input
/// latches an error state.
class FlvDemuxer {
 public:
  using TagFn = std::function<void(const FlvTag&)>;

  explicit FlvDemuxer(TagFn on_tag) : on_tag_(std::move(on_tag)) {}

  /// Consumes `data`; returns false once the stream is known malformed.
  bool feed(std::span<const uint8_t> data);

  bool header_seen() const { return state_ != State::kHeader; }
  bool failed() const { return state_ == State::kError; }
  uint64_t tags_parsed() const { return tags_parsed_; }
  /// Total bytes consumed so far (for byte-offset bookkeeping).
  uint64_t bytes_consumed() const { return bytes_consumed_; }
  /// True once the header of the first *video* tag has been parsed, i.e.
  /// the stream position has reached the first byte of video payload.
  /// Marks the delivery -> frame_recv phase boundary on the client.
  bool video_started() const { return video_started_; }

 private:
  enum class State { kHeader, kPrevTagSize, kTagHeader, kTagBody, kError };

  bool process();

  TagFn on_tag_;
  State state_ = State::kHeader;
  std::vector<uint8_t> buf_;  ///< unconsumed prefix
  FlvTag current_;
  uint64_t tags_parsed_ = 0;
  uint64_t bytes_consumed_ = 0;
  bool video_started_ = false;
};

}  // namespace wira::media
