#include "media/mpegts.h"

#include <algorithm>
#include <cstring>

namespace wira::media {

namespace {

constexpr uint8_t kStreamIdVideo = 0xE0;
constexpr uint8_t kStreamIdAudio = 0xC0;
constexpr uint8_t kStreamIdPrivate = 0xBD;
constexpr uint8_t kStreamTypeH264 = 0x1B;
constexpr uint8_t kStreamTypeAacAdts = 0x0F;

/// CRC-32/MPEG-2: poly 0x04C11DB7, init 0xFFFFFFFF, not reflected.
uint32_t crc32_mpeg2(std::span<const uint8_t> data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc ^= static_cast<uint32_t>(byte) << 24;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x80000000u) ? (crc << 1) ^ 0x04C11DB7u : crc << 1;
    }
  }
  return crc;
}

uint8_t filler(size_t i) { return static_cast<uint8_t>(0x3C ^ (i * 17)); }

/// 90 kHz PTS from nanoseconds.
uint64_t to_pts90k(TimeNs t) {
  return static_cast<uint64_t>((static_cast<__int128>(t) * 90'000) /
                               1'000'000'000) &
         0x1FFFFFFFFull;
}

TimeNs from_pts90k(uint64_t pts) {
  return static_cast<TimeNs>((static_cast<__int128>(pts) * 1'000'000'000) /
                             90'000);
}

void append_pts(ByteWriter& w, uint64_t pts) {
  // '0010' pts[32..30] marker | pts[29..22] | pts[21..15] marker | ...
  w.u8(static_cast<uint8_t>(0x21 | ((pts >> 29) & 0x0E)));
  w.u8(static_cast<uint8_t>((pts >> 22) & 0xFF));
  w.u8(static_cast<uint8_t>(0x01 | ((pts >> 14) & 0xFE)));
  w.u8(static_cast<uint8_t>((pts >> 7) & 0xFF));
  w.u8(static_cast<uint8_t>(0x01 | ((pts << 1) & 0xFE)));
}

std::optional<uint64_t> parse_pts(std::span<const uint8_t> b) {
  if (b.size() < 5) return std::nullopt;
  uint64_t pts = (static_cast<uint64_t>(b[0] & 0x0E) << 29) |
                 (static_cast<uint64_t>(b[1]) << 22) |
                 (static_cast<uint64_t>(b[2] & 0xFE) << 14) |
                 (static_cast<uint64_t>(b[3]) << 7) |
                 (static_cast<uint64_t>(b[4]) >> 1);
  return pts;
}

/// Wraps a PSI section (pointer field + table) ready for a TS payload.
std::vector<uint8_t> make_psi_section(uint8_t table_id,
                                      std::span<const uint8_t> body) {
  ByteWriter w;
  w.u8(0);  // pointer_field
  ByteWriter section;
  section.u8(table_id);
  // section_syntax_indicator=1, '0', reserved '11', 12-bit length =
  // body + 5 header remainder + 4 CRC.
  const uint16_t section_length = static_cast<uint16_t>(body.size() + 5 + 4);
  section.u16be(static_cast<uint16_t>(0xB000 | section_length));
  section.u16be(1);        // transport_stream_id / program_number
  section.u8(0xC1);        // reserved, version 0, current_next 1
  section.u8(0);           // section_number
  section.u8(0);           // last_section_number
  section.bytes(body);
  const uint32_t crc = crc32_mpeg2(section.span());
  section.u32be(crc);
  w.bytes(section.span());
  return w.take();
}

}  // namespace

uint8_t TsMuxer::next_cc(uint16_t pid) {
  uint8_t& cc = continuity_[pid];
  const uint8_t out = cc;
  cc = (cc + 1) & 0x0F;
  return out;
}

void TsMuxer::write_ts_packet(uint16_t pid, bool payload_start,
                              bool random_access,
                              std::span<const uint8_t> payload) {
  // payload must fit in one packet (<= 184, less with adaptation field).
  const size_t header_size = 4;
  size_t adaptation = 0;
  const bool need_adaptation =
      random_access || payload.size() < kTsPacketSize - header_size;
  if (need_adaptation) {
    adaptation = kTsPacketSize - header_size - payload.size();
    // Adaptation field needs at least the length byte; with content, a
    // flags byte too.
    if (adaptation == 0) adaptation = 0;  // exactly full: no field
  }

  out_.u8(kTsSyncByte);
  out_.u16be(static_cast<uint16_t>((payload_start ? 0x4000 : 0) |
                                   (pid & 0x1FFF)));
  const uint8_t afc = adaptation > 0 ? 0x30 : 0x10;  // adaptation+payload
  out_.u8(static_cast<uint8_t>(afc | next_cc(pid)));
  if (adaptation > 0) {
    out_.u8(static_cast<uint8_t>(adaptation - 1));  // field length
    if (adaptation > 1) {
      out_.u8(random_access ? 0x40 : 0x00);  // flags (RAI)
      for (size_t i = 0; i < adaptation - 2; ++i) out_.u8(0xFF);
    }
  }
  out_.bytes(payload);
}

void TsMuxer::write_psi() {
  // PAT: program 1 -> PMT PID.
  ByteWriter pat_body;
  pat_body.u16be(1);  // program_number
  pat_body.u16be(static_cast<uint16_t>(0xE000 | kTsPidPmt));
  const auto pat = make_psi_section(0x00, pat_body.span());
  write_ts_packet(kTsPidPat, true, false, pat);

  // PMT: H.264 video + AAC audio.
  ByteWriter pmt_body;
  pmt_body.u16be(static_cast<uint16_t>(0xE000 | kTsPidVideo));  // PCR PID
  pmt_body.u16be(0xF000);  // program_info_length = 0
  pmt_body.u8(kStreamTypeH264);
  pmt_body.u16be(static_cast<uint16_t>(0xE000 | kTsPidVideo));
  pmt_body.u16be(0xF000);  // ES_info_length = 0
  pmt_body.u8(kStreamTypeAacAdts);
  pmt_body.u16be(static_cast<uint16_t>(0xE000 | kTsPidAudio));
  pmt_body.u16be(0xF000);
  const auto pmt = make_psi_section(0x02, pmt_body.span());
  write_ts_packet(kTsPidPmt, true, false, pmt);
}

void TsMuxer::write_frame(const MediaFrame& frame) {
  uint16_t pid;
  uint8_t stream_id;
  switch (frame.type) {
    case TagType::kVideo:
      pid = kTsPidVideo;
      stream_id = kStreamIdVideo;
      break;
    case TagType::kAudio:
      pid = kTsPidAudio;
      stream_id = kStreamIdAudio;
      break;
    default:
      pid = kTsPidAudio;  // private data rides the audio PID here
      stream_id = kStreamIdPrivate;
      break;
  }

  // Build the PES packet.  Video uses PES_packet_length = 0 (the norm for
  // H.264 in TS: the access-unit end is known only when the next unit
  // starts); audio/private declare their length.
  ByteWriter pes;
  pes.u24be(0x000001);
  pes.u8(stream_id);
  const size_t header_tail = 3 + 5;  // flags+hdrlen + PTS
  const size_t pes_len = header_tail + frame.payload_bytes;
  const bool declare_length =
      frame.type != TagType::kVideo && pes_len <= 0xFFFF;
  pes.u16be(declare_length ? static_cast<uint16_t>(pes_len) : 0);
  pes.u8(0x80);  // '10' + no scrambling/priority/alignment
  pes.u8(0x80);  // PTS only
  pes.u8(5);     // PES_header_data_length
  append_pts(pes, to_pts90k(frame.pts));
  for (size_t i = 0; i < frame.payload_bytes; ++i) pes.u8(filler(i));
  const auto bytes = pes.take();

  // Slice into TS packets.
  size_t offset = 0;
  bool first = true;
  while (offset < bytes.size()) {
    const size_t room = first && frame.video_kind == VideoKind::kKey &&
                                frame.type == TagType::kVideo
                            ? kTsPacketSize - 4 - 2  // RAI field
                            : kTsPacketSize - 4;
    const size_t n = std::min(room, bytes.size() - offset);
    write_ts_packet(pid, first,
                    first && frame.type == TagType::kVideo &&
                        frame.video_kind == VideoKind::kKey,
                    std::span<const uint8_t>(bytes.data() + offset, n));
    offset += n;
    first = false;
  }
}

size_t ts_frame_wire_size(const MediaFrame& frame) {
  const size_t pes_bytes = 6 + 3 + 5 + frame.payload_bytes;
  const bool key_video = frame.type == TagType::kVideo &&
                         frame.video_kind == VideoKind::kKey;
  const size_t first_room =
      key_video ? kTsPacketSize - 4 - 2 : kTsPacketSize - 4;
  if (pes_bytes <= first_room) return kTsPacketSize;
  const size_t rest = pes_bytes - first_room;
  const size_t more = (rest + (kTsPacketSize - 4) - 1) / (kTsPacketSize - 4);
  return (1 + more) * kTsPacketSize;
}

// ----------------------------------------------------------------- demuxer

bool TsDemuxer::feed(std::span<const uint8_t> data) {
  if (failed_) return false;
  partial_.insert(partial_.end(), data.begin(), data.end());
  size_t pos = 0;
  while (partial_.size() - pos >= kTsPacketSize && !failed_) {
    process_packet(
        std::span<const uint8_t>(partial_.data() + pos, kTsPacketSize));
    pos += kTsPacketSize;
  }
  partial_.erase(partial_.begin(), partial_.begin() + static_cast<long>(pos));
  return !failed_;
}

void TsDemuxer::process_packet(std::span<const uint8_t> pkt) {
  if (pkt[0] != kTsSyncByte) {
    failed_ = true;
    return;
  }
  packets_parsed_++;
  const bool payload_start = (pkt[1] & 0x40) != 0;
  const uint16_t pid = static_cast<uint16_t>((pkt[1] & 0x1F) << 8 | pkt[2]);
  const uint8_t afc = (pkt[3] >> 4) & 0x03;
  size_t offset = 4;
  bool random_access = false;
  if (afc & 0x02) {
    const uint8_t af_len = pkt[offset];
    if (af_len > 0 && offset + 1 < pkt.size()) {
      random_access = (pkt[offset + 1] & 0x40) != 0;
    }
    offset += 1 + af_len;
    if (offset > pkt.size()) {
      failed_ = true;
      return;
    }
  }
  if (!(afc & 0x01) || offset >= pkt.size()) return;  // no payload
  const auto payload = pkt.subspan(offset);

  if (pid == kTsPidPat || pid == kTsPidPmt) {
    handle_psi(pid, payload, payload_start);
    return;
  }
  begin_or_append_pes(pid, payload_start, random_access, payload);
}

void TsDemuxer::handle_psi(uint16_t pid, std::span<const uint8_t> payload,
                           bool payload_start) {
  if (!payload_start || payload.empty()) return;
  const uint8_t pointer = payload[0];
  if (payload.size() < 1u + pointer + 8) return;
  ByteReader r(payload.subspan(1 + pointer));
  const uint8_t table_id = r.u8();
  const uint16_t len_field = r.u16be();
  const uint16_t section_length = len_field & 0x0FFF;
  r.u16be();  // ts id / program number
  r.u8();     // version
  r.u8();     // section number
  r.u8();     // last section
  if (!r.ok()) return;
  const size_t body_len =
      section_length >= 9 ? static_cast<size_t>(section_length) - 5 - 4 : 0;

  if (pid == kTsPidPat && table_id == 0x00) {
    // Single program assumed: skip (we know the PMT PID by convention,
    // but honour what the PAT says).
    if (body_len >= 4) {
      r.u16be();  // program number
      // PMT pid is announced here; used implicitly via kTsPidPmt.
    }
  } else if (pid == kTsPidPmt && table_id == 0x02) {
    ByteReader body(payload.subspan(1 + pointer + 8,
                                    std::min(body_len, payload.size() -
                                                           1 - pointer - 8)));
    body.u16be();  // PCR PID
    const uint16_t prog_info = body.u16be() & 0x0FFF;
    body.skip(prog_info);
    while (body.ok() && body.remaining() >= 5) {
      const uint8_t stream_type = body.u8();
      const uint16_t es_pid = body.u16be() & 0x1FFF;
      const uint16_t es_info = body.u16be() & 0x0FFF;
      body.skip(es_info);
      if (stream_type == kStreamTypeH264) video_pid_ = es_pid;
      if (stream_type == kStreamTypeAacAdts) audio_pid_ = es_pid;
    }
  }
}

void TsDemuxer::begin_or_append_pes(uint16_t pid, bool payload_start,
                                    bool random_access,
                                    std::span<const uint8_t> payload) {
  PesAssembly& asmbl = pes_[pid];
  if (payload_start) {
    if (asmbl.active) finish_pes(pid);
    asmbl.active = true;
    asmbl.random_access = random_access;
    asmbl.buffer.clear();
  }
  if (!asmbl.active) return;
  if (video_pid_ && pid == *video_pid_ && !payload.empty()) {
    video_started_ = true;
  }  // continuation without a start: drop
  asmbl.buffer.insert(asmbl.buffer.end(), payload.begin(), payload.end());

  // Early completion when the PES declared its length.
  if (asmbl.buffer.size() >= 6) {
    const uint16_t declared = static_cast<uint16_t>(
        asmbl.buffer[4] << 8 | asmbl.buffer[5]);
    if (declared != 0 && asmbl.buffer.size() >= 6u + declared) {
      finish_pes(pid);
    }
  }
}

void TsDemuxer::finish_pes(uint16_t pid) {
  PesAssembly& asmbl = pes_[pid];
  if (!asmbl.active || asmbl.buffer.size() < 9) {
    asmbl.active = false;
    return;
  }
  const auto& b = asmbl.buffer;
  if (b[0] != 0 || b[1] != 0 || b[2] != 1) {
    failed_ = true;
    return;
  }
  TsPesUnit unit;
  unit.pid = pid;
  unit.stream_id = b[3];
  unit.random_access = asmbl.random_access;
  const uint8_t pts_flags = (b[7] >> 6) & 0x03;
  const uint8_t header_len = b[8];
  if (pts_flags & 0x02) {
    unit.pts.emplace();
    auto pts = parse_pts(std::span<const uint8_t>(b.data() + 9,
                                                  b.size() - 9));
    if (pts) unit.pts = from_pts90k(*pts);
  }
  const size_t payload_off = 9 + header_len;
  if (payload_off <= b.size()) {
    unit.payload.assign(b.begin() + static_cast<long>(payload_off), b.end());
  }
  asmbl.active = false;
  asmbl.buffer.clear();
  if (on_unit_) on_unit_(unit);
}

void TsDemuxer::flush() {
  for (auto& [pid, asmbl] : pes_) {
    if (asmbl.active) finish_pes(pid);
  }
}

}  // namespace wira::media
