#include "crypto/poly1305.h"

#include <cstring>

namespace wira::crypto {

namespace {
// 130-bit arithmetic in five 26-bit limbs (the classic donna layout).
struct PolyState {
  uint32_t r[5];
  uint32_t h[5] = {0, 0, 0, 0, 0};
  uint32_t pad[4];
};

uint32_t load_le32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void poly_init(PolyState& st, const uint8_t key[32]) {
  // r with required clamping (RFC 8439 §2.5.1).
  st.r[0] = load_le32(key + 0) & 0x3ffffff;
  st.r[1] = (load_le32(key + 3) >> 2) & 0x3ffff03;
  st.r[2] = (load_le32(key + 6) >> 4) & 0x3ffc0ff;
  st.r[3] = (load_le32(key + 9) >> 6) & 0x3f03fff;
  st.r[4] = (load_le32(key + 12) >> 8) & 0x00fffff;
  for (int i = 0; i < 4; ++i) st.pad[i] = load_le32(key + 16 + 4 * i);
}

void poly_blocks(PolyState& st, const uint8_t* m, size_t len, uint32_t hibit) {
  const uint32_t r0 = st.r[0], r1 = st.r[1], r2 = st.r[2], r3 = st.r[3],
                 r4 = st.r[4];
  const uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;
  uint32_t h0 = st.h[0], h1 = st.h[1], h2 = st.h[2], h3 = st.h[3],
           h4 = st.h[4];

  while (len >= 16) {
    h0 += load_le32(m + 0) & 0x3ffffff;
    h1 += (load_le32(m + 3) >> 2) & 0x3ffffff;
    h2 += (load_le32(m + 6) >> 4) & 0x3ffffff;
    h3 += (load_le32(m + 9) >> 6) & 0x3ffffff;
    h4 += (load_le32(m + 12) >> 8) | hibit;

    uint64_t d0 = (uint64_t)h0 * r0 + (uint64_t)h1 * s4 + (uint64_t)h2 * s3 +
                  (uint64_t)h3 * s2 + (uint64_t)h4 * s1;
    uint64_t d1 = (uint64_t)h0 * r1 + (uint64_t)h1 * r0 + (uint64_t)h2 * s4 +
                  (uint64_t)h3 * s3 + (uint64_t)h4 * s2;
    uint64_t d2 = (uint64_t)h0 * r2 + (uint64_t)h1 * r1 + (uint64_t)h2 * r0 +
                  (uint64_t)h3 * s4 + (uint64_t)h4 * s3;
    uint64_t d3 = (uint64_t)h0 * r3 + (uint64_t)h1 * r2 + (uint64_t)h2 * r1 +
                  (uint64_t)h3 * r0 + (uint64_t)h4 * s4;
    uint64_t d4 = (uint64_t)h0 * r4 + (uint64_t)h1 * r3 + (uint64_t)h2 * r2 +
                  (uint64_t)h3 * r1 + (uint64_t)h4 * r0;

    uint32_t c;
    c = (uint32_t)(d0 >> 26); h0 = (uint32_t)d0 & 0x3ffffff;
    d1 += c; c = (uint32_t)(d1 >> 26); h1 = (uint32_t)d1 & 0x3ffffff;
    d2 += c; c = (uint32_t)(d2 >> 26); h2 = (uint32_t)d2 & 0x3ffffff;
    d3 += c; c = (uint32_t)(d3 >> 26); h3 = (uint32_t)d3 & 0x3ffffff;
    d4 += c; c = (uint32_t)(d4 >> 26); h4 = (uint32_t)d4 & 0x3ffffff;
    h0 += c * 5; c = h0 >> 26; h0 &= 0x3ffffff;
    h1 += c;

    m += 16;
    len -= 16;
  }

  st.h[0] = h0; st.h[1] = h1; st.h[2] = h2; st.h[3] = h3; st.h[4] = h4;
}

}  // namespace

std::array<uint8_t, kPolyTagSize> poly1305(
    std::span<const uint8_t, kPolyKeySize> key,
    std::span<const uint8_t> msg) {
  PolyState st;
  poly_init(st, key.data());

  const size_t full = msg.size() - (msg.size() % 16);
  if (full) poly_blocks(st, msg.data(), full, 1u << 24);
  if (msg.size() % 16) {
    uint8_t block[16] = {0};
    std::memcpy(block, msg.data() + full, msg.size() % 16);
    block[msg.size() % 16] = 1;
    poly_blocks(st, block, 16, 0);
  }

  // Full carry and reduction mod 2^130 - 5.
  uint32_t h0 = st.h[0], h1 = st.h[1], h2 = st.h[2], h3 = st.h[3],
           h4 = st.h[4];
  uint32_t c;
  c = h1 >> 26; h1 &= 0x3ffffff;
  h2 += c; c = h2 >> 26; h2 &= 0x3ffffff;
  h3 += c; c = h3 >> 26; h3 &= 0x3ffffff;
  h4 += c; c = h4 >> 26; h4 &= 0x3ffffff;
  h0 += c * 5; c = h0 >> 26; h0 &= 0x3ffffff;
  h1 += c;

  // compute h + -p
  uint32_t g0 = h0 + 5; c = g0 >> 26; g0 &= 0x3ffffff;
  uint32_t g1 = h1 + c; c = g1 >> 26; g1 &= 0x3ffffff;
  uint32_t g2 = h2 + c; c = g2 >> 26; g2 &= 0x3ffffff;
  uint32_t g3 = h3 + c; c = g3 >> 26; g3 &= 0x3ffffff;
  uint32_t g4 = h4 + c - (1u << 26);

  // select h if h < p, else h + -p
  const uint32_t mask = (g4 >> 31) - 1;
  g0 &= mask; g1 &= mask; g2 &= mask; g3 &= mask; g4 &= mask;
  const uint32_t nmask = ~mask;
  h0 = (h0 & nmask) | g0;
  h1 = (h1 & nmask) | g1;
  h2 = (h2 & nmask) | g2;
  h3 = (h3 & nmask) | g3;
  h4 = (h4 & nmask) | g4;

  // h = h % 2^128, then h += pad
  uint32_t w0 = h0 | (h1 << 26);
  uint32_t w1 = (h1 >> 6) | (h2 << 20);
  uint32_t w2 = (h2 >> 12) | (h3 << 14);
  uint32_t w3 = (h3 >> 18) | (h4 << 8);

  uint64_t f;
  f = (uint64_t)w0 + st.pad[0]; w0 = (uint32_t)f;
  f = (uint64_t)w1 + st.pad[1] + (f >> 32); w1 = (uint32_t)f;
  f = (uint64_t)w2 + st.pad[2] + (f >> 32); w2 = (uint32_t)f;
  f = (uint64_t)w3 + st.pad[3] + (f >> 32); w3 = (uint32_t)f;

  std::array<uint8_t, kPolyTagSize> tag;
  const uint32_t words[4] = {w0, w1, w2, w3};
  for (int i = 0; i < 4; ++i) {
    tag[4 * i + 0] = static_cast<uint8_t>(words[i]);
    tag[4 * i + 1] = static_cast<uint8_t>(words[i] >> 8);
    tag[4 * i + 2] = static_cast<uint8_t>(words[i] >> 16);
    tag[4 * i + 3] = static_cast<uint8_t>(words[i] >> 24);
  }
  return tag;
}

bool tags_equal(std::span<const uint8_t, kPolyTagSize> a,
                std::span<const uint8_t, kPolyTagSize> b) {
  uint8_t diff = 0;
  for (size_t i = 0; i < kPolyTagSize; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace wira::crypto
