// Poly1305 one-time authenticator (RFC 8439 §2.5).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace wira::crypto {

inline constexpr size_t kPolyKeySize = 32;
inline constexpr size_t kPolyTagSize = 16;

/// Computes the 16-byte Poly1305 tag of `msg` under the one-time `key`.
std::array<uint8_t, kPolyTagSize> poly1305(
    std::span<const uint8_t, kPolyKeySize> key,
    std::span<const uint8_t> msg);

/// Constant-time tag comparison.
bool tags_equal(std::span<const uint8_t, kPolyTagSize> a,
                std::span<const uint8_t, kPolyTagSize> b);

}  // namespace wira::crypto
