// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8) plus a tiny deterministic key
// schedule for deriving the cookie-sealing key from a server master secret.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/chacha20.h"
#include "crypto/poly1305.h"

namespace wira::crypto {

using Key = std::array<uint8_t, kChaChaKeySize>;
using Nonce = std::array<uint8_t, kChaChaNonceSize>;

/// Seals `plaintext` with additional data `aad`; output is
/// ciphertext || 16-byte tag.
std::vector<uint8_t> aead_seal(const Key& key, const Nonce& nonce,
                               std::span<const uint8_t> aad,
                               std::span<const uint8_t> plaintext);

/// Opens a sealed blob; returns nullopt on authentication failure
/// (truncated, tampered, or wrong key/nonce/aad).
std::optional<std::vector<uint8_t>> aead_open(
    const Key& key, const Nonce& nonce, std::span<const uint8_t> aad,
    std::span<const uint8_t> sealed);

/// Derives a labeled subkey from a master key (ChaCha20-based expansion —
/// a deliberately simple stand-in for HKDF that keeps this module
/// dependency-free while preserving domain separation by label).
Key derive_key(const Key& master, std::string_view label);

/// Builds a deterministic key from a short passphrase (tests/examples).
Key key_from_string(std::string_view s);

/// Builds a nonce from a 64-bit sequence number (low 8 bytes, LE).
Nonce nonce_from_u64(uint64_t seq);

}  // namespace wira::crypto
