// ChaCha20 stream cipher (RFC 8439 §2.4) — used to seal transport cookies
// so that clients hold an opaque blob only the server can read (§VII of the
// paper: "encrypted using a server-side secret key").
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace wira::crypto {

inline constexpr size_t kChaChaKeySize = 32;
inline constexpr size_t kChaChaNonceSize = 12;

/// Computes one 64-byte ChaCha20 block for (key, counter, nonce).
void chacha20_block(std::span<const uint8_t, kChaChaKeySize> key,
                    uint32_t counter,
                    std::span<const uint8_t, kChaChaNonceSize> nonce,
                    std::span<uint8_t, 64> out);

/// XORs `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter` (encryption and decryption are the same operation).
void chacha20_xor(std::span<const uint8_t, kChaChaKeySize> key,
                  uint32_t initial_counter,
                  std::span<const uint8_t, kChaChaNonceSize> nonce,
                  std::span<uint8_t> data);

}  // namespace wira::crypto
