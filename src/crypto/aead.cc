#include "crypto/aead.h"

#include <cstring>

namespace wira::crypto {

namespace {

void store_le64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

/// RFC 8439 §2.6: the one-time Poly1305 key is the first 32 bytes of the
/// ChaCha20 keystream at counter 0.
std::array<uint8_t, kPolyKeySize> poly_key_gen(const Key& key,
                                               const Nonce& nonce) {
  uint8_t block[64];
  chacha20_block(key, 0, nonce, std::span<uint8_t, 64>(block));
  std::array<uint8_t, kPolyKeySize> out;
  std::memcpy(out.data(), block, kPolyKeySize);
  return out;
}

/// mac_data = aad || pad16 || ct || pad16 || len(aad) || len(ct)
std::vector<uint8_t> mac_input(std::span<const uint8_t> aad,
                               std::span<const uint8_t> ct) {
  std::vector<uint8_t> m;
  m.reserve(aad.size() + ct.size() + 48);
  m.insert(m.end(), aad.begin(), aad.end());
  m.insert(m.end(), (16 - aad.size() % 16) % 16, 0);
  m.insert(m.end(), ct.begin(), ct.end());
  m.insert(m.end(), (16 - ct.size() % 16) % 16, 0);
  uint8_t lens[16];
  store_le64(lens, aad.size());
  store_le64(lens + 8, ct.size());
  m.insert(m.end(), lens, lens + 16);
  return m;
}

}  // namespace

std::vector<uint8_t> aead_seal(const Key& key, const Nonce& nonce,
                               std::span<const uint8_t> aad,
                               std::span<const uint8_t> plaintext) {
  std::vector<uint8_t> out(plaintext.begin(), plaintext.end());
  chacha20_xor(key, 1, nonce, out);
  const auto mac = mac_input(aad, out);
  const auto pk = poly_key_gen(key, nonce);
  const auto tag = poly1305(pk, mac);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<std::vector<uint8_t>> aead_open(
    const Key& key, const Nonce& nonce, std::span<const uint8_t> aad,
    std::span<const uint8_t> sealed) {
  if (sealed.size() < kPolyTagSize) return std::nullopt;
  const auto ct = sealed.first(sealed.size() - kPolyTagSize);
  const auto mac = mac_input(aad, ct);
  const auto pk = poly_key_gen(key, nonce);
  const auto expect = poly1305(pk, mac);
  std::span<const uint8_t, kPolyTagSize> got(
      sealed.data() + ct.size(), kPolyTagSize);
  if (!tags_equal(expect, got)) return std::nullopt;

  std::vector<uint8_t> pt(ct.begin(), ct.end());
  chacha20_xor(key, 1, nonce, pt);
  return pt;
}

Key derive_key(const Key& master, std::string_view label) {
  // Domain-separated expansion: keystream of the master key with a nonce
  // derived from the label bytes.
  Nonce nonce{};
  for (size_t i = 0; i < label.size(); ++i) {
    nonce[i % nonce.size()] ^= static_cast<uint8_t>(label[i] + i);
  }
  uint8_t block[64];
  chacha20_block(master, 0x4b444631 /* "KDF1" */, nonce,
                 std::span<uint8_t, 64>(block));
  Key out;
  std::memcpy(out.data(), block, out.size());
  return out;
}

Key key_from_string(std::string_view s) {
  Key k{};
  for (size_t i = 0; i < s.size(); ++i) {
    k[i % k.size()] = static_cast<uint8_t>(k[i % k.size()] * 31 + s[i]);
  }
  // One mixing round through the block function for diffusion.
  return derive_key(k, "key_from_string");
}

Nonce nonce_from_u64(uint64_t seq) {
  Nonce n{};
  store_le64(n.data() + 4, seq);
  return n;
}

}  // namespace wira::crypto
