#include "crypto/chacha20.h"

#include <cstring>

namespace wira::crypto {

namespace {

constexpr uint32_t rotl(uint32_t v, int n) {
  return (v << n) | (v >> (32 - n));
}

void quarter_round(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

uint32_t load_le32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void store_le32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

void chacha20_block(std::span<const uint8_t, kChaChaKeySize> key,
                    uint32_t counter,
                    std::span<const uint8_t, kChaChaNonceSize> nonce,
                    std::span<uint8_t, 64> out) {
  uint32_t state[16];
  // "expand 32-byte k"
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  uint32_t w[16];
  std::memcpy(w, state, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, w[i] + state[i]);
  }
}

void chacha20_xor(std::span<const uint8_t, kChaChaKeySize> key,
                  uint32_t initial_counter,
                  std::span<const uint8_t, kChaChaNonceSize> nonce,
                  std::span<uint8_t> data) {
  uint8_t block[64];
  uint32_t counter = initial_counter;
  size_t offset = 0;
  while (offset < data.size()) {
    chacha20_block(key, counter++, nonce, std::span<uint8_t, 64>(block));
    const size_t n = std::min<size_t>(64, data.size() - offset);
    for (size_t i = 0; i < n; ++i) data[offset + i] ^= block[i];
    offset += n;
  }
}

}  // namespace wira::crypto
