#include "net/udp_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wira::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Resolves addr (IPv4) into *out; false + *error on failure.
bool resolve_v4(const std::string& addr, uint16_t port, sockaddr_in* out,
                std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_DGRAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(addr.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr ||
      res->ai_addrlen > sizeof(sockaddr_in)) {
    if (error != nullptr) {
      *error = "resolve " + addr + ": " +
               (rc != 0 ? ::gai_strerror(rc) : "not an IPv4 address");
    }
    if (res != nullptr) ::freeaddrinfo(res);
    return false;
  }
  std::memcpy(out, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  out->sin_port = htons(port);
  return true;
}

}  // namespace

std::string PeerAddr::file_tag() const {
  char ip[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &sa.sin_addr, ip, sizeof(ip));
  std::string tag = ip;
  for (char& c : tag) {
    if (c == '.') c = '-';
  }
  tag += '_';
  tag += std::to_string(ntohs(sa.sin_port));
  return tag;
}

std::string PeerAddr::display() const {
  char ip[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &sa.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(sa.sin_port));
}

UdpSocket::~UdpSocket() { close(); }

UdpSocket& UdpSocket::operator=(UdpSocket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool UdpSocket::open_bound(const std::string& addr, uint16_t port,
                           int rcvbuf_bytes, std::string* error) {
  close();
  sockaddr_in sa{};
  if (!resolve_v4(addr, port, &sa, error)) return false;
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (rcvbuf_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      !set_nonblocking(fd_)) {
    if (error != nullptr) *error = std::string("bind: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool UdpSocket::open_connected(const std::string& addr, uint16_t port,
                               std::string* error) {
  close();
  sockaddr_in sa{};
  if (!resolve_v4(addr, port, &sa, error)) return false;
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      !set_nonblocking(fd_)) {
    if (error != nullptr) {
      *error = std::string("connect: ") + std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

PeerAddr UdpSocket::local_addr() const {
  PeerAddr p;
  socklen_t len = sizeof(p.sa);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&p.sa), &len);
  return p;
}

uint16_t UdpSocket::local_port() const {
  return ntohs(local_addr().sa.sin_port);
}

void UdpSocket::send(std::span<const uint8_t> datagram) {
  (void)::send(fd_, datagram.data(), datagram.size(), 0);
}

void UdpSocket::send_to(const PeerAddr& peer,
                        std::span<const uint8_t> datagram) {
  (void)::sendto(fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&peer.sa),
                 sizeof(peer.sa));
}

ssize_t UdpSocket::recv_from(uint8_t* buf, size_t cap, PeerAddr* peer) {
  for (;;) {
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    const ssize_t n =
        ::recvfrom(fd_, buf, cap, 0,
                   peer != nullptr ? reinterpret_cast<sockaddr*>(&sa) : nullptr,
                   peer != nullptr ? &len : nullptr);
    if (n >= 0) {
      if (peer != nullptr) peer->sa = sa;
      return n;
    }
    if (errno == EINTR) continue;
    // EAGAIN = drained; ECONNREFUSED and friends (connected sockets
    // surface async ICMP errors here) are transient — treat both as
    // "nothing to read now".
    return -1;
  }
}

}  // namespace wira::net
