// Clock abstraction for running session objects against real time
// (DESIGN.md §6).
//
// Everything in src/quic, src/app and src/cc reads time as TimeNs — in
// simulation that is the EventLoop's virtual nanosecond clock.  The real
// runtime (net::EpollRuntime) keeps the *same* loop synchronized to
// CLOCK_MONOTONIC, so session objects run unmodified in both worlds:
//
//   world      timebase                     who advances it
//   ---------  ---------------------------  ---------------------------
//   simulated  virtual ns from 0            EventLoop::run/run_until
//   real       raw CLOCK_MONOTONIC ns       EpollRuntime (run_until(now))
//
// Clock is the read-side of that contract: LoopClock reads the loop's
// clock (exact in simulation, poll-batch granular in real time) and
// MonotonicClock reads the kernel clock directly (for timestamping
// events *between* loop advances — e.g. a datagram's true receive time).
// MonotonicClock is deliberately offset-free: every process on a host
// shares the CLOCK_MONOTONIC epoch, which is what makes cross-process
// sqlog pairs (wira_proxyd + wira_loadgen) joinable by obs/trace_join
// without clock reconciliation.
#pragma once

#include <ctime>

#include "sim/event_loop.h"
#include "util/units.h"

namespace wira::net {

/// Read-only time source.  Implementations must be monotone
/// non-decreasing and share a timebase with the EventLoop that drives
/// the session (see file header).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeNs now() const = 0;
};

/// The driving loop's clock: exact in simulation; in real time it lags
/// the kernel clock by at most one poll dispatch.
class LoopClock final : public Clock {
 public:
  explicit LoopClock(const sim::EventLoop& loop) : loop_(loop) {}
  TimeNs now() const override { return loop_.now(); }

 private:
  const sim::EventLoop& loop_;
};

/// Raw CLOCK_MONOTONIC nanoseconds.
class MonotonicClock final : public Clock {
 public:
  static TimeNs raw_now() {
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<TimeNs>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
  TimeNs now() const override { return raw_now(); }
};

}  // namespace wira::net
