// Non-blocking UDP socket wrapper for the real-socket runtime
// (DESIGN.md §6).  Two usage shapes, matching the two ends of a session:
//
//   - wira_proxyd opens one *bound* socket per scheme and demuxes
//     sessions by peer address (recv_from / send_to);
//   - wira_loadgen opens one *connected* socket per session, so each
//     session owns a distinct source port — the proxyd side's demux key
//     — and plain send/recv suffice.
//
// Addresses resolve through getaddrinfo (IPv4), so "0.0.0.0", names and
// dotted quads all work.  All sockets are non-blocking: the epoll
// runtime drives them, and a full send buffer drops the datagram exactly
// like a congested link would (UDP semantics; QUIC recovery owns it).
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>

#include <cstdint>
#include <span>
#include <string>

#include "util/units.h"

namespace wira::net {

/// A peer address in demux-key form.  Comparable so it can key a map.
struct PeerAddr {
  sockaddr_in sa{};

  bool operator==(const PeerAddr& o) const {
    return sa.sin_addr.s_addr == o.sa.sin_addr.s_addr &&
           sa.sin_port == o.sa.sin_port;
  }
  bool operator<(const PeerAddr& o) const {
    if (sa.sin_addr.s_addr != o.sa.sin_addr.s_addr) {
      return sa.sin_addr.s_addr < o.sa.sin_addr.s_addr;
    }
    return sa.sin_port < o.sa.sin_port;
  }
  /// "ip_port" — filesystem-safe, used to name per-session trace files
  /// identically from both processes.
  std::string file_tag() const;
  /// "ip:port" for log lines.
  std::string display() const;
};

class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  UdpSocket(UdpSocket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  UdpSocket& operator=(UdpSocket&& o) noexcept;

  /// Binds addr:port (port 0 = ephemeral), non-blocking, with a receive
  /// buffer sized for handshake storms (rcvbuf_bytes; 0 = kernel
  /// default).  False + *error on failure.
  bool open_bound(const std::string& addr, uint16_t port, int rcvbuf_bytes,
                  std::string* error);
  /// Binds an ephemeral local port and connects to addr:port, so the
  /// kernel demuxes replies to this fd.  False + *error on failure.
  bool open_connected(const std::string& addr, uint16_t port,
                      std::string* error);
  void close();

  int fd() const { return fd_; }
  bool ok() const { return fd_ >= 0; }
  /// Local address after open_* (the session's demux identity).
  PeerAddr local_addr() const;
  uint16_t local_port() const;

  /// Sends to the connected peer.  Short/failed sends are dropped
  /// datagrams by design (see file header).
  void send(std::span<const uint8_t> datagram);
  void send_to(const PeerAddr& peer, std::span<const uint8_t> datagram);
  /// One datagram into buf; returns its length, or -1 when the socket is
  /// drained (EAGAIN) or the kernel reports a transient error.  `peer`
  /// may be null for connected sockets.
  ssize_t recv_from(uint8_t* buf, size_t cap, PeerAddr* peer);

 private:
  int fd_ = -1;
};

}  // namespace wira::net
