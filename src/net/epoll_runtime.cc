#include "net/epoll_runtime.h"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace wira::net {

EpollRuntime::EpollRuntime(sim::EventLoop& loop) : loop_(loop) {
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    error_ = std::string("epoll_create1: ") + std::strerror(errno);
    return;
  }
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK);
  if (timer_fd_ < 0) {
    error_ = std::string("timerfd_create: ") + std::strerror(errno);
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = timer_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) != 0) {
    error_ = std::string("epoll_ctl(timerfd): ") + std::strerror(errno);
    ::close(timer_fd_);
    timer_fd_ = -1;
  }
}

EpollRuntime::~EpollRuntime() {
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EpollRuntime::add_fd(int fd, FdHandler handler) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_[fd] = std::move(handler);
  return true;
}

void EpollRuntime::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EpollRuntime::arm_timer() {
  // Absolute MONOTONIC arming: the loop's clock IS CLOCK_MONOTONIC in
  // real mode, so next_event_time() converts without arithmetic.  A past
  // deadline fires immediately; kNoEvent disarms (it_value all-zero).
  const TimeNs next = loop_.next_event_time();
  itimerspec its{};
  if (next != sim::EventLoop::kNoEvent) {
    // A 0 it_value disarms, so clamp a (theoretical) t=0 deadline to 1ns.
    const TimeNs t = next > 0 ? next : 1;
    its.it_value.tv_sec = static_cast<time_t>(t / 1'000'000'000);
    its.it_value.tv_nsec = static_cast<long>(t % 1'000'000'000);
  }
  ::timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &its, nullptr);
}

bool EpollRuntime::run(const std::function<bool()>& done, int tick_ms) {
  epoll_event events[64];
  while (!done()) {
    arm_timer();
    const int n = ::epoll_wait(epoll_fd_, events, 64, tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("epoll_wait: ") + std::strerror(errno);
      return false;
    }
    // Fire due loop events first so fd handlers observe a fresh clock
    // and their schedule_in() delays are relative to real now.
    loop_.run_until(MonotonicClock::raw_now());
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == timer_fd_) {
        uint64_t expirations = 0;
        (void)!::read(timer_fd_, &expirations, sizeof(expirations));
        continue;
      }
      const auto it = handlers_.find(fd);
      // A handler may remove_fd() a sibling that is also in this batch.
      if (it != handlers_.end()) it->second(events[i].events);
    }
    // End of a dispatch batch = a tick boundary: anything the handlers
    // bump-allocated (parsed packets, frame views) is dead by the arena
    // contract, exactly as when the sim clock advances.  Without this an
    // idle-timer-free stretch of pure datagram traffic would grow the
    // arena unboundedly, because run_until only rewinds it when a
    // *scheduled event* moves the clock.
    loop_.arena().reset();
  }
  return true;
}

}  // namespace wira::net
