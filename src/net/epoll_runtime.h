// Real-time driver for a sim::EventLoop (DESIGN.md §6).
//
// The discrete-event loop already has exactly the timer-wheel interface
// a real runtime needs: run_until(t) fires everything due at or before t
// and advances the clock, next_event_time() says when the next timer is
// due.  EpollRuntime closes the loop against the kernel:
//
//   arm timerfd to loop.next_event_time()        (absolute MONOTONIC ns)
//   epoll_wait(...)
//   loop.run_until(MonotonicClock::raw_now())    (due timers fire)
//   dispatch readable fds                        (handlers see fresh now)
//
// Timers keep nanosecond-precision arming via timerfd (epoll's ms
// timeout would quantize the pacer), and the loop's clock is raw
// CLOCK_MONOTONIC — the same timebase in every process on the host, so
// cross-process trace pairs join without offset reconciliation.  Session
// objects (quic::Connection, app::WiraServer, app::PlayerClient)
// schedule on the loop exactly as they do in simulation and never see
// the runtime.
//
// Single-threaded like the loop it drives.  Handlers run on the caller's
// thread from within run().
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/clock.h"
#include "sim/event_loop.h"
#include "util/units.h"

namespace wira::net {

class EpollRuntime {
 public:
  /// Called with the epoll event mask when the fd is ready.
  using FdHandler = std::function<void(uint32_t events)>;

  explicit EpollRuntime(sim::EventLoop& loop);
  ~EpollRuntime();
  EpollRuntime(const EpollRuntime&) = delete;
  EpollRuntime& operator=(const EpollRuntime&) = delete;

  /// False when epoll/timerfd setup failed (error() says why).
  bool ok() const { return epoll_fd_ >= 0 && timer_fd_ >= 0; }
  const std::string& error() const { return error_; }

  sim::EventLoop& loop() { return loop_; }

  /// Watches fd (level-triggered, EPOLLIN) and dispatches to handler.
  bool add_fd(int fd, FdHandler handler);
  void remove_fd(int fd);

  /// Synchronizes the loop to real time once: advances the loop clock to
  /// CLOCK_MONOTONIC now, firing everything due.  Call before scheduling
  /// the first event so "loop time 0" never leaks into real mode.
  void sync_now() { loop_.run_until(MonotonicClock::raw_now()); }

  /// Drives loop + fds until `done()` returns true.  `done` is checked
  /// once per wakeup; wakeups happen on fd activity, on timer expiry and
  /// at least every `tick_ms` (the done-predicate poll bound, e.g. for
  /// signal flags).  Returns false on a fatal epoll error.
  bool run(const std::function<bool()>& done, int tick_ms = 200);

 private:
  void arm_timer();

  sim::EventLoop& loop_;
  int epoll_fd_ = -1;
  int timer_fd_ = -1;
  std::string error_;
  std::map<int, FdHandler> handlers_;
};

}  // namespace wira::net
