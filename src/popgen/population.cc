#include "popgen/population.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace wira::popgen {

namespace {

// Calibration anchors (see header).  Session-to-session measurement noise
// and slow drift combine to the paper's OD-level CVs; OD-to-OD base spread
// within a group gives the UG-level CVs.
constexpr double kRttMeasNoiseCv = 0.095;
constexpr double kRttDriftAmp1 = 0.050, kRttDriftAmp2 = 0.040;
constexpr TimeNs kRttDriftPeriod1 = minutes(23), kRttDriftPeriod2 =
                                                      minutes(170);
constexpr double kBwMeasNoiseCv = 0.22;
constexpr double kBwDriftAmp1 = 0.13, kBwDriftAmp2 = 0.12;
constexpr TimeNs kBwDriftPeriod1 = minutes(11), kBwDriftPeriod2 =
                                                    minutes(120);

double clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

uint64_t mix(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b * 0x9E3779B97F4A7C15ull);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

}  // namespace

const char* network_type_name(NetworkType t) {
  switch (t) {
    case NetworkType::kWifi: return "WiFi";
    case NetworkType::k3G: return "3G";
    case NetworkType::k4G: return "4G";
    case NetworkType::k5G: return "5G";
  }
  return "?";
}

Population::Population(uint64_t seed, size_t num_groups) : seed_(seed) {
  Rng rng(seed);
  groups_.reserve(num_groups);
  for (size_t i = 0; i < num_groups; ++i) {
    UserGroupProfile g;
    g.id = static_cast<uint32_t>(i);
    // Network-type mix roughly matching a mobile-heavy live audience.
    const double u = rng.uniform();
    if (u < 0.45) g.net = NetworkType::kWifi;
    else if (u < 0.55) g.net = NetworkType::k3G;
    else if (u < 0.85) g.net = NetworkType::k4G;
    else g.net = NetworkType::k5G;
    g.geo_id = static_cast<uint32_t>(rng.below(300));
    g.asn = static_cast<uint32_t>(rng.below(120));

    switch (g.net) {
      case NetworkType::kWifi:
        g.rtt_mean_ms = rng.uniform(30, 90);
        g.bw_mean_mbps = rng.uniform(8, 40);
        g.loss_mean = rng.uniform(0.002, 0.014);
        break;
      case NetworkType::k3G:
        g.rtt_mean_ms = rng.uniform(100, 250);
        g.bw_mean_mbps = rng.uniform(2, 8);
        g.loss_mean = rng.uniform(0.008, 0.03);
        break;
      case NetworkType::k4G:
        g.rtt_mean_ms = rng.uniform(50, 130);
        g.bw_mean_mbps = rng.uniform(5, 25);
        g.loss_mean = rng.uniform(0.004, 0.018);
        break;
      case NetworkType::k5G:
        g.rtt_mean_ms = rng.uniform(20, 60);
        g.bw_mean_mbps = rng.uniform(20, 60);
        g.loss_mean = rng.uniform(0.002, 0.008);
        break;
    }
    // Within-group dispersion anchors (§II-C): right-skewed so the mean
    // lands at 36.4% / 51.6% while ~half the groups keep MinRTT CV below
    // 20% and only ~13% keep MaxBW CV below 20% (Fig. 3 CDF shape).
    g.rtt_cv = clamp(rng.lognormal_mean_cv(0.355, 1.25), 0.04, 1.3);
    g.bw_cv = clamp(rng.lognormal_mean_cv(0.51, 0.72), 0.10, 1.6);
    groups_.push_back(g);
  }
}

OdPair Population::make_od(size_t group_index, uint64_t od_index) const {
  Rng rng(mix(seed_, mix(group_index * 1000003 + 17, od_index)));
  return OdPair(groups_[group_index % groups_.size()], od_index, rng);
}

Population::GroupQos Population::group_average_qos(
    size_t group_index, size_t sample_ods) const {
  double rtt_ms = 0, bw_mbps = 0;
  for (size_t i = 0; i < sample_ods; ++i) {
    const OdPair od = make_od(group_index, 900'000 + i);
    rtt_ms += od.base_rtt_ms();
    bw_mbps += od.base_bw_mbps();
  }
  GroupQos q;
  q.mean_rtt = from_seconds(rtt_ms / static_cast<double>(sample_ods) / 1e3);
  q.mean_bw = mbps_f(bw_mbps / static_cast<double>(sample_ods));
  return q;
}

OdPair Population::random_od(Rng& rng) const {
  const size_t g = static_cast<size_t>(rng.below(groups_.size()));
  return make_od(g, rng.next());
}

TimeNs Population::sample_session_gap(Rng& rng) {
  // Heavy-tailed: median ~4 min; ~8% of gaps exceed the 60-min staleness
  // threshold Delta.
  const double minutes_gap =
      clamp(rng.lognormal(std::log(4.0), 1.35), 0.15, 360.0);
  return from_seconds(minutes_gap * 60.0);
}

OdPair::OdPair(const UserGroupProfile& group, uint64_t od_id, Rng& rng)
    : od_id_(od_id), group_id_(group.id), net_(group.net) {
  base_rtt_ms_ = clamp(
      rng.lognormal_mean_cv(group.rtt_mean_ms, group.rtt_cv), 5.0, 500.0);
  base_bw_mbps_ = clamp(
      rng.lognormal_mean_cv(group.bw_mean_mbps, group.bw_cv), 0.6, 80.0);
  base_loss_ = clamp(rng.lognormal_mean_cv(group.loss_mean, 1.2), 0.0, 0.12);
  // Access links (cellular especially) are mostly bufferbloated — queues
  // of one to several BDPs — but a shallow-buffered tail exists (~12%
  // below 0.8 BDP) where mis-initialized bursts convert to loss instead
  // of delay (this is where Fig. 14's first-frame losses come from).
  buffer_factor_ = clamp(rng.lognormal(std::log(1.7), 0.62), 0.35, 5.0);
  rtt_phase1_ = rng.uniform(0, 2 * std::numbers::pi);
  rtt_phase2_ = rng.uniform(0, 2 * std::numbers::pi);
  bw_phase1_ = rng.uniform(0, 2 * std::numbers::pi);
  bw_phase2_ = rng.uniform(0, 2 * std::numbers::pi);
}

double OdPair::drift(TimeNs t, double a1, double p1, TimeNs t1, double a2,
                     double p2, TimeNs t2) const {
  const double x1 = 2 * std::numbers::pi * to_seconds(t) / to_seconds(t1);
  const double x2 = 2 * std::numbers::pi * to_seconds(t) / to_seconds(t2);
  return std::exp(a1 * std::sin(x1 + p1) + a2 * std::sin(x2 + p2));
}

PathSample OdPair::sample(TimeNs t, Rng& rng) const {
  PathSample s;
  const double rtt_ms =
      base_rtt_ms_ *
      drift(t, kRttDriftAmp1, rtt_phase1_, kRttDriftPeriod1, kRttDriftAmp2,
            rtt_phase2_, kRttDriftPeriod2) *
      rng.lognormal_mean_cv(1.0, kRttMeasNoiseCv);
  const double bw_mbps =
      base_bw_mbps_ *
      drift(t, kBwDriftAmp1, bw_phase1_, kBwDriftPeriod1, kBwDriftAmp2,
            bw_phase2_, kBwDriftPeriod2) *
      rng.lognormal_mean_cv(1.0, kBwMeasNoiseCv);

  s.min_rtt = from_seconds(clamp(rtt_ms, 4.0, 800.0) / 1000.0);
  s.max_bw = mbps_f(clamp(bw_mbps, 0.4, 100.0));
  s.loss_rate = clamp(base_loss_ * rng.lognormal_mean_cv(1.0, 0.4), 0.0, 0.12);
  // Bottleneck buffer: a fraction-to-multiple of the path BDP.
  const uint64_t bdp = bdp_bytes(s.max_bw, s.min_rtt);
  s.buffer_bytes = std::clamp<uint64_t>(
      static_cast<uint64_t>(static_cast<double>(bdp) * buffer_factor_),
      32 * 1024, 1024 * 1024);
  return s;
}

sim::PathConfig OdPair::to_path_config(const PathSample& s) {
  sim::PathConfig p;
  p.bandwidth = s.max_bw;
  p.rtt = s.min_rtt;
  p.loss_rate = s.loss_rate;
  p.buffer_bytes = s.buffer_bytes;
  return p;
}

}  // namespace wira::popgen
