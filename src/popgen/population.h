// Synthetic population of user groups and origin-destination (OD) pairs.
//
// Stand-in for the paper's production telemetry (§II-C/§II-D): user groups
// are (network type x geography x ASN) buckets whose members' path
// conditions disperse widely (MinRTT CV ~36%, MaxBW CV ~52% within a
// group), while a single OD pair re-measured over minutes disperses far
// less (MinRTT CV ~10%, MaxBW CV ~27% within 5 min, growing slowly with
// the interval).  The generator is calibrated to those anchors; bench
// fig03/fig04 print the resulting CVs next to the paper's numbers.
//
// Temporal model: a session's measured value is
//   base * exp(measurement noise) * drift(t)
// where drift is a sum of two sinusoids with OD-specific random phases —
// smooth, deterministic in t (resumable anywhere), and variance grows with
// the sampling interval like the paper's Fig. 4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/path.h"
#include "util/rng.h"
#include "util/units.h"

namespace wira::popgen {

enum class NetworkType : uint32_t { kWifi = 0, k3G = 1, k4G = 2, k5G = 3 };

const char* network_type_name(NetworkType t);

struct UserGroupProfile {
  uint32_t id = 0;
  NetworkType net = NetworkType::kWifi;
  uint32_t geo_id = 0;
  uint32_t asn = 0;
  // Distribution of member ODs' base conditions (mean / CV of lognormals).
  double rtt_mean_ms = 60;
  double rtt_cv = 0.35;
  double bw_mean_mbps = 15;
  double bw_cv = 0.50;
  double loss_mean = 0.008;
};

/// Measured conditions of one session on an OD path.
struct PathSample {
  TimeNs min_rtt = 0;
  Bandwidth max_bw = 0;
  double loss_rate = 0;
  uint64_t buffer_bytes = 0;
};

class OdPair {
 public:
  OdPair(const UserGroupProfile& group, uint64_t od_id, Rng& rng);

  /// Session conditions at absolute time `t`; `rng` supplies the
  /// per-session measurement noise.
  PathSample sample(TimeNs t, Rng& rng) const;

  /// Emulator path for given conditions.
  static sim::PathConfig to_path_config(const PathSample& s);

  uint64_t id() const { return od_id_; }
  uint32_t group_id() const { return group_id_; }
  NetworkType network() const { return net_; }
  double base_rtt_ms() const { return base_rtt_ms_; }
  double base_bw_mbps() const { return base_bw_mbps_; }

 private:
  double drift(TimeNs t, double a1, double p1, TimeNs t1, double a2,
               double p2, TimeNs t2) const;

  uint64_t od_id_;
  uint32_t group_id_;
  NetworkType net_;
  double base_rtt_ms_;
  double base_bw_mbps_;
  double base_loss_;
  double buffer_factor_;
  // Drift parameters (amplitudes fixed by calibration, phases random).
  double rtt_phase1_, rtt_phase2_, bw_phase1_, bw_phase2_;
};

class Population {
 public:
  /// Builds `num_groups` user groups with realistic type/geo diversity.
  Population(uint64_t seed, size_t num_groups);

  const std::vector<UserGroupProfile>& groups() const { return groups_; }

  /// Deterministically derives OD pair `od_index` of group `group_index`.
  OdPair make_od(size_t group_index, uint64_t od_index) const;

  /// Group-average QoS: what a per-user-group model trained on member
  /// history would predict (the §II-C approach).  Averages the base
  /// conditions of a fixed sample of member ODs.
  struct GroupQos {
    TimeNs mean_rtt = 0;
    Bandwidth mean_bw = 0;
  };
  GroupQos group_average_qos(size_t group_index,
                             size_t sample_ods = 32) const;

  /// Draws a random (group, od) pair.
  OdPair random_od(Rng& rng) const;

  /// Session inter-arrival gap on one OD pair (drives cookie age):
  /// heavy-tailed, median a few minutes, occasionally > Delta.
  static TimeNs sample_session_gap(Rng& rng);

 private:
  uint64_t seed_;
  std::vector<UserGroupProfile> groups_;
};

}  // namespace wira::popgen
