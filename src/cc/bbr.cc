#include "cc/bbr.h"

#include <algorithm>

namespace wira::cc {

namespace {
constexpr double kHighGain = 2.885;  // 2/ln(2)
constexpr double kDrainGain = 1.0 / kHighGain;
constexpr double kProbeBwCwndGain = 2.0;
constexpr double kPacingGainCycle[8] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
constexpr int64_t kBwWindowRounds = 10;
constexpr TimeNs kMinRttWindow = seconds(10);
constexpr TimeNs kProbeRttDuration = milliseconds(200);
constexpr uint64_t kMinCwnd = 4 * kMss;
constexpr double kStartupGrowthTarget = 1.25;
constexpr int kFullBwRounds = 3;
}  // namespace

BbrV1::BbrV1()
    : max_bw_(kBwWindowRounds),
      cwnd_(kDefaultInitCwndPackets * kMss),
      init_cwnd_(kDefaultInitCwndPackets * kMss) {
  enter_startup();
}

void BbrV1::enter_startup() {
  mode_ = Mode::kStartup;
  pacing_gain_ = kHighGain;
  cwnd_gain_ = kHighGain;
}

void BbrV1::enter_probe_bw(TimeNs now) {
  mode_ = Mode::kProbeBw;
  cwnd_gain_ = kProbeBwCwndGain;
  // Start the cycle at a random-ish phase other than the 0.75 drain phase;
  // deterministic here (phase chosen by round count) to keep runs
  // reproducible.
  cycle_index_ = static_cast<int>(round_count_ % 7);
  if (cycle_index_ == 1) cycle_index_ = 2;
  pacing_gain_ = kPacingGainCycle[cycle_index_];
  cycle_start_ = now;
}

uint64_t BbrV1::bdp(double gain) const {
  const Bandwidth bw = max_bw_.best();
  if (bw == 0 || min_rtt_ == kNoTime) return 0;
  return static_cast<uint64_t>(
      gain * static_cast<double>(bdp_bytes(bw, min_rtt_)));
}

uint64_t BbrV1::target_cwnd(double gain) const {
  const uint64_t b = bdp(gain);
  if (b == 0) return init_cwnd_;
  // Quantization allowance for delayed ACKs / pacer chunking.
  return std::max(b + 3 * kMss, kMinCwnd);
}

void BbrV1::on_packet_sent(TimeNs /*now*/, uint64_t packet_number,
                           uint64_t /*bytes*/, uint64_t /*in_flight*/,
                           bool /*retransmittable*/) {
  last_sent_packet_ = packet_number;
}

void BbrV1::check_full_bandwidth(bool round_start, bool app_limited) {
  if (full_bw_reached_ || !round_start || app_limited) return;
  if (max_bw_.best() >=
      static_cast<Bandwidth>(static_cast<double>(full_bw_) *
                             kStartupGrowthTarget)) {
    full_bw_ = max_bw_.best();
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= kFullBwRounds) full_bw_reached_ = true;
}

void BbrV1::update_gain_cycle(const CongestionEvent& ev) {
  if (min_rtt_ == kNoTime) return;
  bool advance = ev.now - cycle_start_ > min_rtt_;
  // Stay in the 1.25 probing phase until inflight reaches the inflated
  // target (unless losses occurred); leave the 0.75 phase as soon as the
  // queue is drained.
  if (pacing_gain_ > 1.0 && ev.lost.empty() &&
      ev.prior_bytes_in_flight < target_cwnd(pacing_gain_)) {
    advance = false;
  }
  if (pacing_gain_ < 1.0 && ev.prior_bytes_in_flight <= target_cwnd(1.0)) {
    advance = true;
  }
  if (advance) {
    cycle_index_ = (cycle_index_ + 1) % 8;
    cycle_start_ = ev.now;
    pacing_gain_ = kPacingGainCycle[cycle_index_];
  }
}

void BbrV1::maybe_enter_or_exit_probe_rtt(const CongestionEvent& ev,
                                          bool round_start) {
  const bool min_rtt_expired =
      min_rtt_ != kNoTime &&
      ev.now - min_rtt_timestamp_ > kMinRttWindow;

  if (min_rtt_expired && mode_ != Mode::kProbeRtt) {
    mode_ = Mode::kProbeRtt;
    pacing_gain_ = 1.0;
    cwnd_gain_ = 1.0;
    probe_rtt_done_at_ = kNoTime;
    probe_rtt_round_done_ = false;
  }

  if (mode_ == Mode::kProbeRtt) {
    if (probe_rtt_done_at_ == kNoTime &&
        ev.prior_bytes_in_flight <= kMinCwnd + kMss) {
      probe_rtt_done_at_ = ev.now + kProbeRttDuration;
      probe_rtt_round_done_ = false;
      probe_rtt_round_end_packet_ = last_sent_packet_;
    }
    if (probe_rtt_done_at_ != kNoTime) {
      if (round_start) probe_rtt_round_done_ = true;
      if (probe_rtt_round_done_ && ev.now >= probe_rtt_done_at_) {
        min_rtt_timestamp_ = ev.now;
        if (full_bw_reached_) {
          enter_probe_bw(ev.now);
        } else {
          enter_startup();
        }
      }
    }
  }
}

void BbrV1::on_congestion_event(const CongestionEvent& ev) {
  last_ack_time_ = ev.now;

  uint64_t acked_bytes = 0;
  uint64_t largest_acked = 0;
  for (const auto& a : ev.acked) {
    acked_bytes += a.bytes;
    largest_acked = std::max(largest_acked, a.packet_number);
  }
  delivered_bytes_ += acked_bytes;

  // Round tracking: a round ends when a packet sent after the previous
  // round's end is acked.
  bool round_start = false;
  if (!ev.acked.empty() && largest_acked > current_round_end_packet_) {
    round_start = true;
    round_count_++;
    current_round_end_packet_ = last_sent_packet_;
  }

  // Bandwidth filter update.
  if (ev.bandwidth_sample > 0) {
    if (!ev.app_limited_sample ||
        ev.bandwidth_sample > max_bw_.best()) {
      max_bw_.update(ev.bandwidth_sample,
                     static_cast<int64_t>(round_count_));
    }
    have_bw_sample_ = true;
  }

  // Min-RTT tracking.
  if (ev.latest_rtt != kNoTime &&
      (min_rtt_ == kNoTime || ev.latest_rtt < min_rtt_)) {
    min_rtt_ = ev.latest_rtt;
    min_rtt_timestamp_ = ev.now;
  }

  check_full_bandwidth(round_start, ev.app_limited_sample);

  if (mode_ == Mode::kStartup && full_bw_reached_) {
    mode_ = Mode::kDrain;
    pacing_gain_ = kDrainGain;
    cwnd_gain_ = kHighGain;
  }
  if (mode_ == Mode::kDrain &&
      ev.prior_bytes_in_flight <= target_cwnd(1.0)) {
    enter_probe_bw(ev.now);
  }
  if (mode_ == Mode::kProbeBw) {
    update_gain_cycle(ev);
  }

  maybe_enter_or_exit_probe_rtt(ev, round_start);

  // Loss response: packet-conservation recovery (BBRv1 style).
  if (!ev.lost.empty()) {
    uint64_t lost_bytes = 0;
    for (const auto& l : ev.lost) lost_bytes += l.bytes;
    if (!in_recovery_) {
      in_recovery_ = true;
      recovery_end_packet_ = last_sent_packet_;
      recovery_window_ =
          std::max(ev.prior_bytes_in_flight > lost_bytes
                       ? ev.prior_bytes_in_flight - lost_bytes
                       : 0,
                   kMinCwnd);
    } else {
      recovery_window_ =
          recovery_window_ > lost_bytes ? recovery_window_ - lost_bytes
                                        : kMinCwnd;
    }
    recovery_window_ = std::max(recovery_window_ + acked_bytes, kMinCwnd);
  } else if (in_recovery_ && largest_acked > recovery_end_packet_) {
    in_recovery_ = false;
  }

  // Congestion window evolution.
  const uint64_t target = target_cwnd(cwnd_gain_);
  if (mode_ == Mode::kProbeRtt) {
    cwnd_ = std::min(cwnd_, kMinCwnd);
  } else if (full_bw_reached_) {
    cwnd_ = std::min(cwnd_ + acked_bytes, target);
  } else {
    // Startup: grow by acked bytes without a target cap, but never below
    // the configured initial window.
    cwnd_ = std::max(cwnd_ + acked_bytes, init_cwnd_);
  }
  cwnd_ = std::max(cwnd_, kMinCwnd);
}

void BbrV1::on_retransmission_timeout(TimeNs /*now*/) {
  // Collapse to minimal window; keep the bandwidth model (BBR does not
  // reset its filters on RTO).
  cwnd_ = kMinCwnd;
  in_recovery_ = false;
}

uint64_t BbrV1::congestion_window() const {
  uint64_t w = cwnd_;
  if (in_recovery_) w = std::min(w, recovery_window_);
  if (mode_ == Mode::kProbeRtt) w = std::min(w, kMinCwnd);
  return std::max(w, kMinCwnd);
}

Bandwidth BbrV1::pacing_rate() const {
  // Before any bandwidth sample: the Wira-injected rate if present,
  // otherwise pace the initial window over the (unknown) RTT only once an
  // RTT sample exists; fall back to a conservative default.
  if (!have_bw_sample_) {
    if (initial_pacing_ > 0) return initial_pacing_;
    if (min_rtt_ != kNoTime && min_rtt_ > 0) {
      return static_cast<Bandwidth>(
          kHighGain * static_cast<double>(
                          delivery_rate(init_cwnd_, min_rtt_)));
    }
    return mbps(1);  // nothing known yet
  }
  const Bandwidth bw = max_bw_.best();
  Bandwidth rate =
      static_cast<Bandwidth>(pacing_gain_ * static_cast<double>(bw));
  // First-round delivery-rate samples span the idle handshake RTT and can
  // grossly underestimate the path.  Until the bandwidth model matures
  // (full_bw detection), never pace below the configured initial rate —
  // matching the paper's "continues to use these parameters until an
  // accurate ... bandwidth measurement is obtained" (§VI).
  if (!full_bw_reached_ && initial_pacing_ > 0) {
    rate = std::max(rate, initial_pacing_);
  }
  return rate;
}

void BbrV1::resume_from_history(Bandwidth max_bw, TimeNs min_rtt) {
  if (max_bw == 0 || min_rtt == kNoTime) return;
  // Seed the model as if a prior session had converged here (the QUIC
  // "careful resume" idea): no STARTUP high-gain phase, straight into
  // steady-state PROBE_BW around the remembered bandwidth.  Real samples
  // keep updating the filter and will displace the seed within one
  // filter window.
  max_bw_.update(max_bw, static_cast<int64_t>(round_count_));
  have_bw_sample_ = true;
  min_rtt_ = min_rtt;
  min_rtt_timestamp_ = 0;
  full_bw_ = max_bw;
  full_bw_reached_ = true;
  enter_probe_bw(/*now=*/0);
  // Start the cycle in a neutral (gain 1.0) phase: the first frame should
  // go out exactly at the remembered rate, not a 1.25 probe.
  cycle_index_ = 2;
  pacing_gain_ = kPacingGainCycle[cycle_index_];
}

void BbrV1::set_initial_parameters(uint64_t init_cwnd,
                                   Bandwidth init_pacing) {
  if (init_cwnd > 0) {
    // Adjust cwnd by the delta so a late update (corner case 1) preserves
    // any growth already earned from ACKs.
    if (cwnd_ == init_cwnd_) {
      cwnd_ = std::max(init_cwnd, kMinCwnd);
    } else {
      const uint64_t grown = cwnd_ - std::min(cwnd_, init_cwnd_);
      cwnd_ = std::max(init_cwnd + grown, kMinCwnd);
    }
    init_cwnd_ = std::max(init_cwnd, kMinCwnd);
  }
  if (init_pacing > 0) initial_pacing_ = init_pacing;
}

}  // namespace wira::cc
