// NewReno congestion control with pacing — the loss-based reference
// controller.  Not used by the paper's deployment (all Table-I schemes run
// on BBRv1) but included for the cc-choice ablation bench and as a second
// consumer of the CongestionController interface.
#pragma once

#include "cc/congestion_controller.h"

namespace wira::cc {

class NewReno : public CongestionController {
 public:
  NewReno();

  void on_packet_sent(TimeNs now, uint64_t packet_number, uint64_t bytes,
                      uint64_t bytes_in_flight, bool retransmittable) override;
  void on_congestion_event(const CongestionEvent& event) override;
  void on_retransmission_timeout(TimeNs now) override;

  uint64_t congestion_window() const override { return cwnd_; }
  Bandwidth pacing_rate() const override;
  Bandwidth bandwidth_estimate() const override {
    return smoothed_rtt_ != kNoTime ? delivery_rate(cwnd_, smoothed_rtt_)
                                    : 0;
  }

  void set_initial_parameters(uint64_t init_cwnd,
                              Bandwidth init_pacing) override;

  std::string name() const override { return "newreno"; }
  const char* state_name() const override {
    return in_slow_start() ? "slow_start" : "congestion_avoidance";
  }

  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  uint64_t cwnd_;
  uint64_t init_cwnd_;
  uint64_t ssthresh_ = UINT64_MAX;
  uint64_t last_sent_packet_ = 0;
  uint64_t recovery_end_packet_ = 0;  ///< losses below this don't re-halve
  uint64_t acked_since_increase_ = 0;
  TimeNs smoothed_rtt_ = kNoTime;
  Bandwidth initial_pacing_ = 0;
};

}  // namespace wira::cc
