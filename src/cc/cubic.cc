#include "cc/cubic.h"

#include <algorithm>
#include <cmath>

namespace wira::cc {

namespace {
constexpr double kCubicC = 0.4;       // units: MSS/s^3 (RFC 8312)
constexpr double kCubicBeta = 0.7;
constexpr uint64_t kMinCwnd = 2 * kMss;
}  // namespace

Cubic::Cubic()
    : cwnd_(kDefaultInitCwndPackets * kMss),
      init_cwnd_(kDefaultInitCwndPackets * kMss) {}

void Cubic::on_packet_sent(TimeNs /*now*/, uint64_t packet_number,
                           uint64_t /*bytes*/, uint64_t /*in_flight*/,
                           bool /*retransmittable*/) {
  last_sent_packet_ = packet_number;
}

uint64_t Cubic::cubic_window(TimeNs now) const {
  if (epoch_start_ == kNoTime) return cwnd_;
  const double t = to_seconds(now - epoch_start_);
  const double dt = t - k_seconds_;
  const double w_mss = kCubicC * dt * dt * dt +
                       static_cast<double>(w_max_) / kMss;
  const double w_bytes = w_mss * kMss;
  return w_bytes < static_cast<double>(kMinCwnd)
             ? kMinCwnd
             : static_cast<uint64_t>(w_bytes);
}

void Cubic::enter_recovery(TimeNs now) {
  w_max_ = cwnd_;
  ssthresh_ = std::max(
      static_cast<uint64_t>(static_cast<double>(cwnd_) * kCubicBeta),
      kMinCwnd);
  cwnd_ = ssthresh_;
  recovery_end_packet_ = last_sent_packet_;
  // New cubic epoch: K = cbrt(W_max (1 - beta) / C), in MSS units.
  epoch_start_ = now;
  const double w_max_mss = static_cast<double>(w_max_) / kMss;
  k_seconds_ = std::cbrt(w_max_mss * (1.0 - kCubicBeta) / kCubicC);
  w_est_ = static_cast<double>(cwnd_);
  w_est_acked_ = 0;
}

void Cubic::on_congestion_event(const CongestionEvent& ev) {
  if (ev.smoothed_rtt != kNoTime) smoothed_rtt_ = ev.smoothed_rtt;

  bool reduced = false;
  for (const auto& l : ev.lost) {
    if (l.packet_number > recovery_end_packet_ && !reduced) {
      enter_recovery(ev.now);
      reduced = true;
    }
  }

  for (const auto& a : ev.acked) {
    if (a.packet_number <= recovery_end_packet_ && reduced) continue;
    if (in_slow_start()) {
      cwnd_ += a.bytes;
      continue;
    }
    if (epoch_start_ == kNoTime) {
      // First congestion-avoidance epoch without a prior loss.
      epoch_start_ = ev.now;
      w_max_ = cwnd_;
      k_seconds_ = 0;
      w_est_ = static_cast<double>(cwnd_);
      w_est_acked_ = 0;
    }
    // Reno-friendly estimate: alpha per-RTT growth approximated per ack.
    w_est_acked_ += a.bytes;
    if (w_est_acked_ >= cwnd_) {
      w_est_acked_ -= cwnd_;
      w_est_ += kMss;
    }
    const uint64_t target = std::max(
        cubic_window(ev.now), static_cast<uint64_t>(w_est_));
    if (target > cwnd_) {
      // Approach the cubic target gradually: (target - cwnd)/cwnd per
      // acked byte batch (RFC 8312 §4.1 pacing of window growth).
      acked_since_increase_ += a.bytes;
      const uint64_t step = std::max<uint64_t>(
          (target - cwnd_) * acked_since_increase_ / std::max<uint64_t>(
              cwnd_, 1),
          0);
      if (step > 0) {
        cwnd_ += std::min<uint64_t>(step, target - cwnd_);
        acked_since_increase_ = 0;
      }
    }
  }
  cwnd_ = std::max(cwnd_, kMinCwnd);
}

void Cubic::on_retransmission_timeout(TimeNs /*now*/) {
  ssthresh_ = std::max(
      static_cast<uint64_t>(static_cast<double>(cwnd_) * kCubicBeta),
      kMinCwnd);
  cwnd_ = kMinCwnd;
  epoch_start_ = kNoTime;
}

Bandwidth Cubic::pacing_rate() const {
  if (smoothed_rtt_ == kNoTime || smoothed_rtt_ <= 0) {
    return initial_pacing_ > 0 ? initial_pacing_ : mbps(1);
  }
  const Bandwidth base = delivery_rate(cwnd_, smoothed_rtt_);
  const double gain = in_slow_start() ? 2.0 : 1.25;
  return static_cast<Bandwidth>(gain * static_cast<double>(base));
}

void Cubic::set_initial_parameters(uint64_t init_cwnd,
                                   Bandwidth init_pacing) {
  if (init_cwnd > 0) {
    if (cwnd_ == init_cwnd_) {
      cwnd_ = std::max(init_cwnd, kMinCwnd);
    } else {
      const uint64_t grown = cwnd_ - std::min(cwnd_, init_cwnd_);
      cwnd_ = std::max(init_cwnd + grown, kMinCwnd);
    }
    init_cwnd_ = std::max(init_cwnd, kMinCwnd);
  }
  if (init_pacing > 0) initial_pacing_ = init_pacing;
}

}  // namespace wira::cc
