// Pluggable congestion-control interface, modeled on the send-algorithm
// interface of user-space QUIC stacks (the paper extends LSQUIC's send
// controller).
//
// The Wira hook is set_initial_parameters(): it injects the per-connection
// init_cwnd / init_pacing computed from FF_Size and Hx_QoS (§IV-C) before
// the first data packet leaves.  Controllers honour the injected values
// until real measurements supersede them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/units.h"

namespace wira::cc {

/// Maximum segment size used throughout the stack.  Chosen so the paper's
/// packet-denominated windows line up with its byte-denominated frame sizes
/// (init_cwnd = 45 packets <-> FF_Size = 66 KB in Fig. 2a).
inline constexpr uint64_t kMss = 1460;

/// Default initial window when nothing better is known (RFC 6928).
inline constexpr uint64_t kDefaultInitCwndPackets = 10;

struct AckedPacket {
  uint64_t packet_number = 0;
  uint64_t bytes = 0;
  TimeNs sent_time = 0;
};

struct LostPacket {
  uint64_t packet_number = 0;
  uint64_t bytes = 0;
};

/// One ACK-processing event, with the measurements the connection derived.
struct CongestionEvent {
  TimeNs now = 0;
  std::vector<AckedPacket> acked;
  std::vector<LostPacket> lost;
  uint64_t prior_bytes_in_flight = 0;
  TimeNs latest_rtt = kNoTime;     ///< RTT sample from this ACK (if any)
  TimeNs min_rtt = kNoTime;        ///< connection's running minimum
  TimeNs smoothed_rtt = kNoTime;
  Bandwidth bandwidth_sample = 0;  ///< delivery-rate sample (0 = none)
  bool app_limited_sample = false; ///< sample taken while app-limited
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  virtual void on_packet_sent(TimeNs now, uint64_t packet_number,
                              uint64_t bytes, uint64_t bytes_in_flight,
                              bool retransmittable) = 0;

  virtual void on_congestion_event(const CongestionEvent& event) = 0;

  /// Retransmission timeout fired with no ACK evidence (persistent loss).
  virtual void on_retransmission_timeout(TimeNs now) = 0;

  virtual uint64_t congestion_window() const = 0;
  virtual Bandwidth pacing_rate() const = 0;

  /// Current estimate of the path's available bandwidth (0 = unknown).
  /// Feeds the MaxBW field of the transport cookie (§IV-B).
  virtual Bandwidth bandwidth_estimate() const { return 0; }

  bool can_send(uint64_t bytes_in_flight) const {
    return bytes_in_flight < congestion_window();
  }

  /// Wira initialization hook (§IV-C).  `init_cwnd` in bytes; `init_pacing`
  /// in bytes/sec.  Either may be 0 meaning "keep the default".  May be
  /// called again before the first ACK (corner case 1: FF_Size parsed late).
  virtual void set_initial_parameters(uint64_t init_cwnd,
                                      Bandwidth init_pacing) = 0;

  /// Careful resume from a *converged* prior estimate of this path (the
  /// fresh transport cookie): the controller may skip its probing startup
  /// and treat `max_bw`/`min_rtt` as an established model, avoiding the
  /// high-gain overshoot right after the first frame.  Default: ignored.
  virtual void resume_from_history(Bandwidth /*max_bw*/,
                                   TimeNs /*min_rtt*/) {}

  virtual std::string name() const = 0;

  /// Machine-readable state-machine position ("startup", "probe_bw",
  /// "slow_start", ...).  Feeds the recovery:congestion_state_updated qlog
  /// event; the connection emits one event whenever this string changes.
  virtual const char* state_name() const { return "unknown"; }
};

enum class CcAlgo { kBbrV1, kNewReno, kCubic };

std::unique_ptr<CongestionController> make_controller(CcAlgo algo);

}  // namespace wira::cc
