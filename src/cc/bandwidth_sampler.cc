#include "cc/bandwidth_sampler.h"

#include <algorithm>

namespace wira::cc {

void BandwidthSampler::on_packet_sent(TimeNs now, uint64_t packet_number,
                                      uint64_t bytes,
                                      uint64_t bytes_in_flight) {
  if (bytes_in_flight == 0) {
    // Restarting from idle: reset the delivery clock so the idle gap does
    // not depress the next sample.
    delivered_time_ = now;
    first_sent_time_ = now;
  }
  PacketState st;
  st.bytes = bytes;
  st.delivered_at_send = delivered_;
  st.delivered_time_at_send = delivered_time_;
  st.first_sent_time = first_sent_time_;
  st.sent_time = now;
  st.app_limited = delivered_ < app_limited_until_;
  store(packet_number, st);
  first_sent_time_ = now;
}

void BandwidthSampler::store(uint64_t packet_number, const PacketState& st) {
  if (!free_nodes_.empty()) {
    auto nh = std::move(free_nodes_.back());
    free_nodes_.pop_back();
    nh.key() = packet_number;
    nh.mapped() = st;
    packets_.insert(std::move(nh));
    return;
  }
  packets_.emplace(packet_number, st);
}

void BandwidthSampler::recycle(
    std::unordered_map<uint64_t, PacketState>::iterator it) {
  free_nodes_.push_back(packets_.extract(it));
}

RateSample BandwidthSampler::on_packet_acked(TimeNs now,
                                             uint64_t packet_number) {
  RateSample sample;
  auto it = packets_.find(packet_number);
  if (it == packets_.end()) return sample;
  const PacketState st = it->second;
  recycle(it);

  delivered_ += st.bytes;
  delivered_time_ = now;

  // Use the larger of the send interval and the ack interval (standard
  // delivery-rate estimation: guards against ACK compression).
  const TimeNs send_interval = st.sent_time - st.first_sent_time;
  const TimeNs ack_interval = now - st.delivered_time_at_send;
  const TimeNs interval = std::max(send_interval, ack_interval);
  if (interval <= 0) return sample;

  sample.bandwidth = delivery_rate(delivered_ - st.delivered_at_send,
                                   interval);
  sample.app_limited = st.app_limited;
  sample.interval = interval;
  return sample;
}

void BandwidthSampler::on_packet_lost(uint64_t packet_number) {
  auto it = packets_.find(packet_number);
  if (it != packets_.end()) recycle(it);
}

}  // namespace wira::cc
