// BBR (version 1) congestion control, as in the paper's deployment ("we
// select the BBR (with version 1) scheme to support the above parameter
// configurations").
//
// Faithful to the BBRv1 state machine: STARTUP (2/ln2 gain) -> DRAIN ->
// PROBE_BW (8-phase pacing-gain cycle) with PROBE_RTT excursions; windowed
// max-bandwidth filter over 10 rounds; 10-second min-RTT window; simple
// packet-conservation recovery on loss.
//
// Wira integration: set_initial_parameters() pins the pacing rate and cwnd
// until the first valid bandwidth sample arrives, after which the normal
// BBR machinery (seeded with the measured values) takes over — mirroring
// §VI's "continues to use these parameters until an accurate RTT or
// bandwidth measurement is obtained".
#pragma once

#include "cc/congestion_controller.h"
#include "cc/windowed_filter.h"

namespace wira::cc {

class BbrV1 : public CongestionController {
 public:
  BbrV1();

  void on_packet_sent(TimeNs now, uint64_t packet_number, uint64_t bytes,
                      uint64_t bytes_in_flight, bool retransmittable) override;
  void on_congestion_event(const CongestionEvent& event) override;
  void on_retransmission_timeout(TimeNs now) override;

  uint64_t congestion_window() const override;
  Bandwidth pacing_rate() const override;

  void set_initial_parameters(uint64_t init_cwnd,
                              Bandwidth init_pacing) override;
  void resume_from_history(Bandwidth max_bw, TimeNs min_rtt) override;

  std::string name() const override { return "bbr1"; }
  const char* state_name() const override {
    if (in_recovery_) return "recovery";
    switch (mode_) {
      case Mode::kStartup: return "startup";
      case Mode::kDrain: return "drain";
      case Mode::kProbeBw: return "probe_bw";
      case Mode::kProbeRtt: return "probe_rtt";
    }
    return "startup";
  }

  // Introspection for tests and benches.
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  Mode mode() const { return mode_; }
  Bandwidth bandwidth_estimate() const override { return max_bw_.best(); }
  TimeNs min_rtt() const { return min_rtt_; }
  bool full_bandwidth_reached() const { return full_bw_reached_; }

 private:
  uint64_t bdp(double gain) const;
  uint64_t target_cwnd(double gain) const;
  void enter_startup();
  void enter_probe_bw(TimeNs now);
  void check_full_bandwidth(bool round_start, bool app_limited);
  void maybe_enter_or_exit_probe_rtt(const CongestionEvent& ev,
                                     bool round_start);
  void update_gain_cycle(const CongestionEvent& ev);

  Mode mode_ = Mode::kStartup;
  MaxFilter<Bandwidth, int64_t> max_bw_;  ///< windowed by round count
  TimeNs min_rtt_ = kNoTime;
  TimeNs min_rtt_timestamp_ = 0;

  uint64_t cwnd_;
  uint64_t init_cwnd_;
  double pacing_gain_ = 1.0;
  double cwnd_gain_ = 1.0;

  // Round accounting (a round = one delivery of the send window).
  uint64_t round_count_ = 0;
  uint64_t next_round_delivered_bytes_ = 0;
  uint64_t delivered_bytes_ = 0;
  uint64_t last_sent_packet_ = 0;
  uint64_t current_round_end_packet_ = 0;

  // Startup full-bandwidth detection.
  Bandwidth full_bw_ = 0;
  int full_bw_count_ = 0;
  bool full_bw_reached_ = false;

  // ProbeBW gain cycling.
  int cycle_index_ = 0;
  TimeNs cycle_start_ = 0;

  // ProbeRTT.
  TimeNs probe_rtt_done_at_ = kNoTime;
  bool probe_rtt_round_done_ = false;
  uint64_t probe_rtt_round_end_packet_ = 0;

  // Recovery (packet conservation on loss).
  bool in_recovery_ = false;
  uint64_t recovery_window_ = 0;
  uint64_t recovery_end_packet_ = 0;

  // Wira initial parameters: used verbatim until the first bandwidth sample.
  Bandwidth initial_pacing_ = 0;
  bool have_bw_sample_ = false;

  TimeNs last_ack_time_ = 0;
};

}  // namespace wira::cc
