// Per-packet delivery-rate estimator (the technique from the BBR paper /
// draft-cheng-iccrg-delivery-rate-estimation): each sent packet snapshots
// the delivered-bytes counter; each ACK yields bandwidth =
// delta(delivered) / delta(time), marked app-limited when the sender was
// starved at send time.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/units.h"

namespace wira::cc {

struct RateSample {
  Bandwidth bandwidth = 0;
  bool app_limited = false;
  TimeNs interval = 0;
};

class BandwidthSampler {
 public:
  void on_packet_sent(TimeNs now, uint64_t packet_number, uint64_t bytes,
                      uint64_t bytes_in_flight);

  /// Processes one acked packet and returns its rate sample
  /// (bandwidth == 0 when the packet was not tracked or interval is zero).
  RateSample on_packet_acked(TimeNs now, uint64_t packet_number);

  /// Forgets a lost packet (no sample).
  void on_packet_lost(uint64_t packet_number);

  /// Marks the connection app-limited: samples from packets sent from now
  /// until delivered catches up are flagged.
  void on_app_limited() { app_limited_until_ = delivered_ + 1; }

  uint64_t total_delivered() const { return delivered_; }

 private:
  struct PacketState {
    uint64_t bytes = 0;
    uint64_t delivered_at_send = 0;
    TimeNs delivered_time_at_send = 0;
    TimeNs first_sent_time = 0;
    TimeNs sent_time = 0;
    bool app_limited = false;
  };

  /// Inserts `st` under `packet_number`, reusing a recycled map node
  /// when one is available (per-packet path: no steady-state allocation).
  void store(uint64_t packet_number, const PacketState& st);
  /// Erases `it`, stashing its node for reuse.
  void recycle(std::unordered_map<uint64_t, PacketState>::iterator it);

  uint64_t delivered_ = 0;
  TimeNs delivered_time_ = 0;
  TimeNs first_sent_time_ = 0;
  uint64_t app_limited_until_ = 0;
  std::unordered_map<uint64_t, PacketState> packets_;
  std::vector<std::unordered_map<uint64_t, PacketState>::node_type>
      free_nodes_;
};

}  // namespace wira::cc
