// Kathleen Nichols' windowed min/max estimator (the one BBR uses): tracks
// the best value seen over a rolling window using three estimates, O(1)
// per update.
#pragma once

#include <cstdint>

namespace wira::cc {

template <typename V, typename T, typename Compare>
class WindowedFilter {
 public:
  explicit WindowedFilter(T window_length)
      : window_length_(window_length) {}

  void reset(V value, T time) {
    for (auto& e : estimates_) e = {value, time};
  }

  void update(V sample, T time) {
    if (estimates_[0].time == T{} && estimates_[0].value == V{}) {
      reset(sample, time);
      return;
    }
    if (Compare()(sample, estimates_[0].value) ||
        time - estimates_[0].time > window_length_) {
      reset(sample, time);
      return;
    }
    if (Compare()(sample, estimates_[1].value)) {
      estimates_[1] = {sample, time};
      estimates_[2] = estimates_[1];
    } else if (Compare()(sample, estimates_[2].value)) {
      estimates_[2] = {sample, time};
    }

    // Age out the best estimate if it has left the window.
    if (time - estimates_[0].time > window_length_) {
      estimates_[0] = estimates_[1];
      estimates_[1] = estimates_[2];
      estimates_[2] = {sample, time};
      if (time - estimates_[0].time > window_length_) {
        estimates_[0] = estimates_[1];
        estimates_[1] = estimates_[2];
      }
      return;
    }
    if (estimates_[1].value == estimates_[0].value &&
        time - estimates_[1].time > window_length_ / 4) {
      estimates_[1] = {sample, time};
      estimates_[2] = estimates_[1];
      return;
    }
    if (estimates_[2].value == estimates_[1].value &&
        time - estimates_[2].time > window_length_ / 2) {
      estimates_[2] = {sample, time};
    }
  }

  V best() const { return estimates_[0].value; }
  V second_best() const { return estimates_[1].value; }

  void set_window_length(T len) { window_length_ = len; }

 private:
  struct Estimate {
    V value{};
    T time{};
  };
  T window_length_;
  Estimate estimates_[3]{};
};

struct MaxCompare {
  template <typename V>
  bool operator()(const V& a, const V& b) const { return a >= b; }
};
struct MinCompare {
  template <typename V>
  bool operator()(const V& a, const V& b) const { return a <= b; }
};

template <typename V, typename T>
using MaxFilter = WindowedFilter<V, T, MaxCompare>;
template <typename V, typename T>
using MinFilter = WindowedFilter<V, T, MinCompare>;

}  // namespace wira::cc
