#include "cc/newreno.h"

#include <algorithm>

#include "cc/bbr.h"
#include "cc/cubic.h"

namespace wira::cc {

namespace {
constexpr uint64_t kMinCwnd = 2 * kMss;
constexpr double kLossReduction = 0.5;
}  // namespace

NewReno::NewReno()
    : cwnd_(kDefaultInitCwndPackets * kMss),
      init_cwnd_(kDefaultInitCwndPackets * kMss) {}

void NewReno::on_packet_sent(TimeNs /*now*/, uint64_t packet_number,
                             uint64_t /*bytes*/, uint64_t /*in_flight*/,
                             bool /*retransmittable*/) {
  last_sent_packet_ = packet_number;
}

void NewReno::on_congestion_event(const CongestionEvent& ev) {
  if (ev.smoothed_rtt != kNoTime) smoothed_rtt_ = ev.smoothed_rtt;

  // Loss response first: one window reduction per round trip.
  bool reduced = false;
  for (const auto& l : ev.lost) {
    if (l.packet_number > recovery_end_packet_ && !reduced) {
      ssthresh_ = std::max(
          static_cast<uint64_t>(static_cast<double>(cwnd_) * kLossReduction),
          kMinCwnd);
      cwnd_ = ssthresh_;
      recovery_end_packet_ = last_sent_packet_;
      reduced = true;
    }
  }

  for (const auto& a : ev.acked) {
    if (a.packet_number <= recovery_end_packet_ && reduced) continue;
    if (in_slow_start()) {
      cwnd_ += a.bytes;
    } else {
      // Congestion avoidance: one MSS per window of acked bytes.
      acked_since_increase_ += a.bytes;
      if (acked_since_increase_ >= cwnd_) {
        acked_since_increase_ -= cwnd_;
        cwnd_ += kMss;
      }
    }
  }
  cwnd_ = std::max(cwnd_, kMinCwnd);
}

void NewReno::on_retransmission_timeout(TimeNs /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2, kMinCwnd);
  cwnd_ = kMinCwnd;
}

Bandwidth NewReno::pacing_rate() const {
  if (smoothed_rtt_ == kNoTime || smoothed_rtt_ <= 0) {
    return initial_pacing_ > 0 ? initial_pacing_ : mbps(1);
  }
  const Bandwidth base = delivery_rate(cwnd_, smoothed_rtt_);
  const double gain = in_slow_start() ? 2.0 : 1.25;
  return static_cast<Bandwidth>(gain * static_cast<double>(base));
}

void NewReno::set_initial_parameters(uint64_t init_cwnd,
                                     Bandwidth init_pacing) {
  if (init_cwnd > 0) {
    if (cwnd_ == init_cwnd_) {
      cwnd_ = std::max(init_cwnd, kMinCwnd);
    } else {
      const uint64_t grown = cwnd_ - std::min(cwnd_, init_cwnd_);
      cwnd_ = std::max(init_cwnd + grown, kMinCwnd);
    }
    init_cwnd_ = std::max(init_cwnd, kMinCwnd);
  }
  if (init_pacing > 0) initial_pacing_ = init_pacing;
}

std::unique_ptr<CongestionController> make_controller(CcAlgo algo) {
  switch (algo) {
    case CcAlgo::kNewReno:
      return std::make_unique<NewReno>();
    case CcAlgo::kCubic:
      return std::make_unique<Cubic>();
    case CcAlgo::kBbrV1:
    default:
      return std::make_unique<BbrV1>();
  }
}

}  // namespace wira::cc
