#include "trace/tracer.h"

#include <algorithm>
#include <ostream>

#include "util/json.h"

namespace wira::trace {

namespace {

void write_event_object(std::ostream& os, const Event& e) {
  // Integer microseconds: ostream's default 6-significant-digit double
  // formatting would lose precision on absolute sim times (~1e9 us).
  os << "{\"time_us\": " << e.time / 1000 << ", \"name\": \""
     << event_type_name(e.type) << "\", \"a\": " << e.a
     << ", \"b\": " << e.b;
  if (!e.detail.empty()) {
    os << ", \"detail\": \"" << util::json_escape(e.detail) << "\"";
  }
  os << "}";
}

}  // namespace

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kPacketSent: return "packet_sent";
    case EventType::kPacketReceived: return "packet_received";
    case EventType::kPacketAcked: return "packet_acked";
    case EventType::kPacketLost: return "packet_lost";
    case EventType::kPtoFired: return "pto_fired";
    case EventType::kRttSample: return "rtt_sample";
    case EventType::kCwndSample: return "cwnd_sample";
    case EventType::kPacingSample: return "pacing_sample";
    case EventType::kHandshakeEvent: return "handshake";
    case EventType::kInitApplied: return "init_applied";
    case EventType::kCookieEvent: return "cookie";
    case EventType::kFrameComplete: return "frame_complete";
    case EventType::kRequestReceived: return "request_received";
    case EventType::kOriginByte: return "origin_byte";
    case EventType::kFfParsed: return "ff_parsed";
    case EventType::kCornerCase: return "corner_case";
    case EventType::kCcStateChanged: return "cc_state_changed";
    case EventType::kRequestSent: return "request_sent";
    case EventType::kFirstVideoByte: return "first_video_byte";
    case EventType::kStallObserved: return "stall_observed";
    case EventType::kDecodeError: return "decode_error";
  }
  return "?";
}

void Tracer::record(TimeNs time, EventType type, uint64_t a, uint64_t b,
                    std::string detail) {
  Event e{time, type, a, b, std::move(detail)};
  if (sink_) {
    write_event_object(*sink_, e);
    *sink_ << "\n";
  }
  if (event_sink_) event_sink_->on_event(e);
  if (tap_) tap_->on_event(e);
  if ((sink_ || event_sink_ || tap_) && !keep_buffer_) return;
  events_.push_back(std::move(e));
}

void Tracer::stream_to(std::ostream* os, bool keep_buffer) {
  sink_ = os;
  keep_buffer_ = (os == nullptr && event_sink_ == nullptr && tap_ == nullptr)
                     ? true
                     : keep_buffer;
}

void Tracer::stream_to(EventSink* sink, bool keep_buffer) {
  event_sink_ = sink;
  keep_buffer_ = (sink == nullptr && sink_ == nullptr && tap_ == nullptr)
                     ? true
                     : keep_buffer;
}

void Tracer::set_tap(EventSink* tap, bool keep_buffer) {
  tap_ = tap;
  keep_buffer_ = (tap == nullptr && sink_ == nullptr && event_sink_ == nullptr)
                     ? true
                     : keep_buffer;
}

size_t Tracer::count(EventType type) const {
  return static_cast<size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [type](const Event& e) { return e.type == type; }));
}

std::vector<Event> Tracer::of_type(EventType type) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

TimeNs Tracer::first_time(EventType type) const {
  for (const Event& e : events_) {
    if (e.type == type) return e.time;
  }
  return kNoTime;
}

void Tracer::write_csv(std::ostream& os) const {
  os << "time_us,event,a,b,detail\n";
  for (const Event& e : events_) {
    os << e.time / 1000 << ',' << event_type_name(e.type) << ',' << e.a
       << ',' << e.b << ',';
    // RFC-4180 quoting: details containing a delimiter, quote or newline
    // are wrapped in quotes with embedded quotes doubled.
    if (e.detail.find_first_of(",\"\n\r") != std::string::npos) {
      os << '"';
      for (char c : e.detail) {
        if (c == '"') os << '"';
        os << c;
      }
      os << '"';
    } else {
      os << e.detail;
    }
    os << '\n';
  }
}

void Tracer::write_json(std::ostream& os, const std::string& title) const {
  os << "{\n  \"qlog_version\": \"wira-0.1\",\n  \"title\": \""
     << util::json_escape(title) << "\",\n  \"events\": [\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    os << "    ";
    write_event_object(os, events_[i]);
    os << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

uint64_t Tracer::peak_bytes_in_flight() const {
  uint64_t peak = 0;
  for (const Event& e : events_) {
    if (e.type == EventType::kCwndSample) peak = std::max(peak, e.b);
  }
  return peak;
}

}  // namespace wira::trace
