#include "trace/tracer.h"

#include <algorithm>
#include <ostream>

namespace wira::trace {

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kPacketSent: return "packet_sent";
    case EventType::kPacketReceived: return "packet_received";
    case EventType::kPacketAcked: return "packet_acked";
    case EventType::kPacketLost: return "packet_lost";
    case EventType::kPtoFired: return "pto_fired";
    case EventType::kRttSample: return "rtt_sample";
    case EventType::kCwndSample: return "cwnd_sample";
    case EventType::kPacingSample: return "pacing_sample";
    case EventType::kHandshakeEvent: return "handshake";
    case EventType::kInitApplied: return "init_applied";
    case EventType::kCookieEvent: return "cookie";
    case EventType::kFrameComplete: return "frame_complete";
  }
  return "?";
}

void Tracer::record(TimeNs time, EventType type, uint64_t a, uint64_t b,
                    std::string detail) {
  events_.push_back(Event{time, type, a, b, std::move(detail)});
}

size_t Tracer::count(EventType type) const {
  return static_cast<size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [type](const Event& e) { return e.type == type; }));
}

std::vector<Event> Tracer::of_type(EventType type) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

void Tracer::write_csv(std::ostream& os) const {
  os << "time_us,event,a,b,detail\n";
  for (const Event& e : events_) {
    os << to_us(e.time) << ',' << event_type_name(e.type) << ',' << e.a
       << ',' << e.b << ',' << e.detail << '\n';
  }
}

void Tracer::write_json(std::ostream& os, const std::string& title) const {
  os << "{\n  \"qlog_version\": \"wira-0.1\",\n  \"title\": \"" << title
     << "\",\n  \"events\": [\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    os << "    {\"time_us\": " << to_us(e.time) << ", \"name\": \""
       << event_type_name(e.type) << "\", \"a\": " << e.a
       << ", \"b\": " << e.b;
    if (!e.detail.empty()) os << ", \"detail\": \"" << e.detail << "\"";
    os << "}" << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

uint64_t Tracer::peak_bytes_in_flight() const {
  uint64_t peak = 0;
  for (const Event& e : events_) {
    if (e.type == EventType::kCwndSample) peak = std::max(peak, e.b);
  }
  return peak;
}

}  // namespace wira::trace
