// Connection event tracing (qlog-flavoured): records transport events on
// the simulated clock for debugging, visualization and assertions in
// tests.  Tracing is opt-in per connection and free when disabled.
//
// Two capture modes, combinable:
//   - buffered (default): events accumulate in a vector for queries and
//     batch export (write_csv / write_json);
//   - streaming: stream_to(os) writes each event as one JSON line (JSONL
//     qlog) the moment it is recorded, so arbitrarily long sessions never
//     buffer everything.  stream_to(os, /*keep_buffer=*/true) does both —
//     the observability layer uses that to extract phase boundaries from
//     a session that is also being dumped.  stream_to(EventSink*) is the
//     structured flavour of the same hook: the sink sees each Event object
//     and owns its own serialization (obs::QlogStreamWriter emits
//     standard draft-ietf-quic-qlog from it).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.h"

namespace wira::trace {

enum class EventType {
  kPacketSent,
  kPacketReceived,
  kPacketAcked,
  kPacketLost,
  kPtoFired,
  kRttSample,        ///< a = latest rtt (us), b = smoothed (us)
  kCwndSample,       ///< a = cwnd bytes, b = bytes in flight
  kPacingSample,     ///< a = pacing rate (bytes/s)
  kHandshakeEvent,   ///< detail = "chlo"/"rej"/"shlo"/"established"
  kInitApplied,      ///< a = init_cwnd, b = init_pacing
  kCookieEvent,      ///< detail = "sealed"/"opened"/"rejected"
  kFrameComplete,    ///< a = frame index, b = bytes
  kRequestReceived,  ///< server saw the PLAY request
  kOriginByte,       ///< first stream byte left the proxy; a = chunk bytes
  kFfParsed,         ///< a = FF_Size, b = bytes fed until parse completed
  kCornerCase,       ///< detail = "cwnd_before_parse"/"stale_cookie"
  kCcStateChanged,   ///< detail = new controller state ("startup", ...)
  // Client-vantage events (PlayerClient's tracer; the paired .client.sqlog
  // view of the same session — obs/trace_join.h joins them by group_id).
  kRequestSent,      ///< client: PLAY request departed; a = request bytes
  kFirstVideoByte,   ///< client: contiguous stream reached the first video
                     ///< payload byte; a = total bytes received so far
  kStallObserved,    ///< client: receive gap while streaming; a = gap (us),
                     ///< b = total bytes so far, detail = "recv_gap"
  kDecodeError,      ///< datagram failed packet parsing; a = datagram bytes
};

const char* event_type_name(EventType t);

struct Event {
  TimeNs time = 0;
  EventType type = EventType::kPacketSent;
  uint64_t a = 0;  ///< primary value (packet number, bytes, ...)
  uint64_t b = 0;  ///< secondary value
  std::string detail;
};

/// Receives each event the moment it is recorded.  Implementations own
/// their serialization format; the tracer never writes through a sink
/// concurrently with itself (one tracer == one simulated connection).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& e) = 0;
};

class Tracer {
 public:
  void record(TimeNs time, EventType type, uint64_t a = 0, uint64_t b = 0,
              std::string detail = {});

  /// Streams every subsequent event to `os` as one JSON object per line
  /// (nullptr stops streaming).  Unless `keep_buffer` is set, streamed
  /// events are not retained in memory.
  void stream_to(std::ostream* os, bool keep_buffer = false);
  /// Structured streaming: forwards every subsequent event to `sink`
  /// (nullptr stops).  Same keep_buffer semantics as the ostream flavour.
  /// An ostream sink and an EventSink may be active simultaneously; each
  /// writes to its own destination, so outputs never interleave.
  void stream_to(EventSink* sink, bool keep_buffer = false);
  /// Third, independent sink slot for the always-on flight recorder: a
  /// tap can coexist with both streaming sinks without either evicting
  /// the other (stream_to(EventSink*) would).  Same keep_buffer
  /// semantics; nullptr detaches.
  void set_tap(EventSink* tap, bool keep_buffer = false);
  /// Detaches all sinks and resumes buffering (bare `stream_to(nullptr)`
  /// would be ambiguous between the two overloads).
  void stop_streaming() {
    sink_ = nullptr;
    event_sink_ = nullptr;
    tap_ = nullptr;
    keep_buffer_ = true;
  }

  const std::vector<Event>& events() const { return events_; }
  size_t count(EventType type) const;
  /// Events of one type, in order.
  std::vector<Event> of_type(EventType type) const;
  /// Time of the first event of `type`, or kNoTime if none was recorded.
  TimeNs first_time(EventType type) const;

  /// CSV: time_us,event,a,b,detail
  void write_csv(std::ostream& os) const;
  /// A minimal qlog-like JSON document (one trace, event array).
  void write_json(std::ostream& os, const std::string& title) const;

  /// Peak bytes-in-flight observed via kCwndSample events.
  uint64_t peak_bytes_in_flight() const;

  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
  std::ostream* sink_ = nullptr;
  EventSink* event_sink_ = nullptr;
  EventSink* tap_ = nullptr;
  bool keep_buffer_ = true;
};

}  // namespace wira::trace
