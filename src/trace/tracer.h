// Connection event tracing (qlog-flavoured): records transport events on
// the simulated clock for debugging, visualization and assertions in
// tests.  Tracing is opt-in per connection and free when disabled.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.h"

namespace wira::trace {

enum class EventType {
  kPacketSent,
  kPacketReceived,
  kPacketAcked,
  kPacketLost,
  kPtoFired,
  kRttSample,       ///< a = latest rtt (us), b = smoothed (us)
  kCwndSample,      ///< a = cwnd bytes, b = bytes in flight
  kPacingSample,    ///< a = pacing rate (bytes/s)
  kHandshakeEvent,  ///< detail = "chlo"/"rej"/"shlo"/"established"
  kInitApplied,     ///< a = init_cwnd, b = init_pacing
  kCookieEvent,     ///< detail = "sealed"/"opened"/"rejected"
  kFrameComplete,   ///< a = frame index, b = bytes
};

const char* event_type_name(EventType t);

struct Event {
  TimeNs time = 0;
  EventType type = EventType::kPacketSent;
  uint64_t a = 0;  ///< primary value (packet number, bytes, ...)
  uint64_t b = 0;  ///< secondary value
  std::string detail;
};

class Tracer {
 public:
  void record(TimeNs time, EventType type, uint64_t a = 0, uint64_t b = 0,
              std::string detail = {});

  const std::vector<Event>& events() const { return events_; }
  size_t count(EventType type) const;
  /// Events of one type, in order.
  std::vector<Event> of_type(EventType type) const;

  /// CSV: time_us,event,a,b,detail
  void write_csv(std::ostream& os) const;
  /// A minimal qlog-like JSON document (one trace, event array).
  void write_json(std::ostream& os, const std::string& title) const;

  /// Peak bytes-in-flight observed via kCwndSample events.
  uint64_t peak_bytes_in_flight() const;

  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace wira::trace
