#include "sim/link.h"

#include <utility>

namespace wira::sim {

Link::Link(EventLoop& loop, LinkConfig config, uint64_t seed)
    : loop_(loop),
      config_(config),
      rng_(seed),
      batches_(loop.scratch<detail::DgramBatchPool>()) {}

bool Link::roll_loss() {
  const LossModel& m = config_.loss;
  // Gilbert-Elliott state advance (per packet).
  if (m.p_good_to_bad > 0) {
    if (ge_bad_state_) {
      if (rng_.chance(m.p_bad_to_good)) ge_bad_state_ = false;
    } else {
      if (rng_.chance(m.p_good_to_bad)) ge_bad_state_ = true;
    }
    if (ge_bad_state_ && rng_.chance(m.bad_state_loss)) return true;
  }
  return m.loss_rate > 0 && rng_.chance(m.loss_rate);
}

void Link::send(Datagram d) {
  const uint64_t size = d.size ? d.size : d.payload.size();
  d.size = size;  // normalize so delivery stats need no side-channel
  if (queued_bytes_ + size > config_.buffer_bytes) {
    stats_.queue_drops++;
    return;
  }
  queued_bytes_ += size;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);

  const TimeNs start = std::max(loop_.now(), busy_until_);
  const TimeNs tx = transfer_time(size, config_.rate);
  busy_until_ = start + tx;
  const TimeNs depart = busy_until_;
  TimeNs arrive = depart + config_.delay;
  if (config_.jitter > 0) {
    arrive += static_cast<TimeNs>(
        rng_.uniform() * static_cast<double>(config_.jitter));
  }
  if (config_.reorder_rate > 0 && rng_.chance(config_.reorder_rate)) {
    arrive += config_.reorder_extra_delay;
  }

  // Serialization complete: leave the queue, then either drop on the wire
  // or deliver after propagation.
  loop_.schedule_at(depart, [this, size] { queued_bytes_ -= size; });

  if (roll_loss()) {
    stats_.wire_drops++;
    return;
  }
  const bool duplicate =
      config_.duplicate_rate > 0 && rng_.chance(config_.duplicate_rate);
  if (duplicate) {
    Datagram copy;
    copy.payload = loop_.buffers().acquire();
    copy.payload.assign(d.payload.begin(), d.payload.end());
    copy.size = d.size;  // duplicates carry dest 0: the tag only matters
                         // on the egress hop, which never duplicates
    schedule_delivery(std::move(copy), arrive + milliseconds(1));
  }
  schedule_delivery(std::move(d), arrive);
}

Link::Batch* Link::acquire_batch() {
  if (!batches_.free.empty()) {
    Batch* b = batches_.free.back();
    batches_.free.pop_back();
    return b;
  }
  batches_.all.push_back(std::make_unique<Batch>());
  return batches_.all.back().get();
}

void Link::schedule_delivery(Datagram d, TimeNs arrive) {
  if (pending_batch_ != nullptr && pending_time_ == arrive) {
    // Same instant as the batch scheduled last: ride its event.
    pending_batch_->dgrams.push_back(std::move(d));
    return;
  }
  Batch* b = acquire_batch();
  b->dgrams.push_back(std::move(d));
  pending_batch_ = b;
  pending_time_ = arrive;
  loop_.schedule_at(arrive, [this, b] {
    if (pending_batch_ == b) pending_batch_ = nullptr;
    deliver_batch(b);
  });
}

void Link::deliver_batch(Batch* b) {
  for (const Datagram& d : b->dgrams) {
    stats_.delivered_packets++;
    stats_.delivered_bytes += d.size;
  }
  if (deliver_) deliver_(std::span<Datagram>(b->dgrams));
  // Whatever buffers the receiver left behind go back into the pool for
  // the next serialized packets.
  for (Datagram& d : b->dgrams) {
    loop_.buffers().release(std::move(d.payload));
  }
  b->dgrams.clear();
  batches_.free.push_back(b);
}

}  // namespace wira::sim
