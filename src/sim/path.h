// A duplex network path between two endpoints (client <-> server), built
// from two Links.  The forward (server -> client) direction carries the
// live-stream payload and is the bottleneck; the reverse direction carries
// requests and ACKs.
#pragma once

#include <memory>

#include "sim/link.h"

namespace wira::sim {

/// Path-level configuration in the vocabulary the paper uses.
struct PathConfig {
  Bandwidth bandwidth = mbps(8);       ///< bottleneck (server->client)
  TimeNs rtt = milliseconds(50);       ///< total propagation round trip
  double loss_rate = 0.0;              ///< applied on the bottleneck direction
  uint64_t buffer_bytes = 25 * 1024;   ///< bottleneck drop-tail buffer
  double reverse_loss_rate = 0.0;      ///< ACK-path loss (usually 0)
  Bandwidth reverse_bandwidth = mbps(100);
  LossModel extra_loss;                ///< optional burst-loss overlay (fwd)
  /// Forward-direction reordering (see LinkConfig): per-packet propagation
  /// jitter plus an optional extra reorder kick.  Radio-like paths.
  TimeNs jitter = 0;
  double reorder_rate = 0;
  TimeNs reorder_extra_delay = milliseconds(5);
};

/// The paper's Fig. 2 testbed path: 8 Mbps, 3% loss, 50 ms RTT, 25 KB buffer.
PathConfig testbed_path();

class Path {
 public:
  Path(EventLoop& loop, const PathConfig& config, uint64_t seed);

  Link& forward() { return *forward_; }   ///< server -> client
  Link& reverse() { return *reverse_; }   ///< client -> server
  const PathConfig& config() const { return config_; }

  /// Applies a new bottleneck rate / delay mid-run (condition drift).
  void set_bandwidth(Bandwidth bw);
  void set_one_way_delay(TimeNs owd);

 private:
  PathConfig config_;
  std::unique_ptr<Link> forward_;
  std::unique_ptr<Link> reverse_;
};

}  // namespace wira::sim
