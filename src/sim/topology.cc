#include "sim/topology.h"

namespace wira::sim {

SharedBottleneck::SharedBottleneck(EventLoop& loop, LinkConfig egress,
                                   uint64_t seed)
    : loop_(loop), seed_(seed) {
  egress_ = std::make_unique<Link>(loop, egress, seed * 101 + 1);
  // The egress link routes each delivered datagram onto its leg's access
  // link; the destination rides in Datagram::dest.
  egress_->set_receiver([this](std::span<Datagram> batch) {
    for (Datagram& d : batch) {
      const size_t leg = static_cast<size_t>(d.dest);
      if (leg < access_.size()) access_[leg]->send(std::move(d));
    }
  });
}

size_t SharedBottleneck::add_leg(const LinkConfig& access) {
  const size_t leg = access_.size();
  access_.push_back(
      std::make_unique<Link>(loop_, access, seed_ * 307 + 11 * leg + 2));
  LinkConfig rev = access;
  rev.rate = mbps(100);  // request/ACK path: rarely the constraint
  rev.buffer_bytes = 256 * 1024;
  rev.loss.loss_rate = 0;
  reverse_.push_back(
      std::make_unique<Link>(loop_, rev, seed_ * 509 + 13 * leg + 3));
  client_rx_.emplace_back();

  access_[leg]->set_receiver([this, leg](std::span<Datagram> batch) {
    if (client_rx_[leg]) client_rx_[leg](batch);
  });
  reverse_[leg]->set_receiver([this](std::span<Datagram> batch) {
    if (server_rx_) server_rx_(batch);
  });
  return leg;
}

void SharedBottleneck::send_to_client(size_t leg, Datagram d) {
  d.dest = leg;
  egress_->send(std::move(d));
}

void SharedBottleneck::send_to_server(size_t leg, Datagram d) {
  reverse_[leg]->send(std::move(d));
}

void SharedBottleneck::set_client_receiver(size_t leg, Link::DeliverFn fn) {
  client_rx_[leg] = std::move(fn);
}

void SharedBottleneck::set_server_receiver(Link::DeliverFn fn) {
  server_rx_ = std::move(fn);
}

}  // namespace wira::sim
