// Shared-bottleneck topology: one server egress link feeding per-viewer
// access links — the CDN edge situation where concurrent live sessions
// contend for the same uplink (flash crowds).
//
//        server ──egress(link, shared)──┬── access 0 ── client 0
//                                       ├── access 1 ── client 1
//                                       └── ...
// Reverse direction (requests/ACKs) uses per-client direct links: ACK
// traffic is small and rarely the bottleneck.
#pragma once

#include <memory>
#include <vector>

#include "sim/link.h"

namespace wira::sim {

class SharedBottleneck {
 public:
  /// `egress` describes the shared server uplink (rate/buffer/loss).
  SharedBottleneck(EventLoop& loop, LinkConfig egress, uint64_t seed);

  /// Adds one viewer leg; `access` configures its private tail link and
  /// reverse (client->server) link.  Returns the leg index.
  size_t add_leg(const LinkConfig& access);

  size_t legs() const { return access_.size(); }

  /// Sends a server datagram towards client `leg`: traverses the shared
  /// egress queue, then the leg's access link.
  void send_to_client(size_t leg, Datagram d);

  /// Sends a client datagram back to the server (per-leg reverse link).
  void send_to_server(size_t leg, Datagram d);

  /// Delivery hooks.
  void set_client_receiver(size_t leg, Link::DeliverFn fn);
  void set_server_receiver(Link::DeliverFn fn);

  const Link& egress() const { return *egress_; }
  Link& egress() { return *egress_; }
  Link& access(size_t leg) { return *access_[leg]; }
  Link& reverse(size_t leg) { return *reverse_[leg]; }

 private:
  EventLoop& loop_;
  uint64_t seed_;
  std::unique_ptr<Link> egress_;
  std::vector<std::unique_ptr<Link>> access_;   ///< bottleneck -> client
  std::vector<std::unique_ptr<Link>> reverse_;  ///< client -> server
  std::vector<Link::DeliverFn> client_rx_;
  Link::DeliverFn server_rx_;
};

}  // namespace wira::sim
