// Unidirectional emulated link: drop-tail queue -> serialization at a fixed
// rate -> propagation delay -> stochastic wire loss -> delivery callback.
//
// This is the emulator analogue of the paper's testbed configuration
// ("8Mbps bandwidth, 3% loss rate, 50ms RTT and 25KB network buffer").
//
// Delivery is batched: datagrams arriving at the same simulated instant
// coalesce into one event and reach the receiver as a single span, so a
// burst costs one scheduled event instead of one per packet.  Coalescing
// only joins a datagram onto the most recently scheduled batch and only
// when the arrival times are exactly equal — arrivals at distinct times
// keep their own events, preserving (time, insertion-order) semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/event_loop.h"
#include "util/rng.h"
#include "util/units.h"

namespace wira::sim {

/// A datagram in flight.  Payload bytes are owned; `size` may exceed the
/// payload length to model headers without materializing them.  `dest`
/// is an opaque routing tag used by multi-leg topologies.
struct Datagram {
  std::vector<uint8_t> payload;
  size_t size = 0;
  uint64_t dest = 0;
};

/// Stochastic loss model: independent (Bernoulli) loss plus an optional
/// Gilbert-Elliott two-state burst component.
struct LossModel {
  double loss_rate = 0.0;  ///< independent per-packet drop probability

  // Gilbert-Elliott burst loss (disabled when p_good_to_bad == 0).
  double p_good_to_bad = 0.0;  ///< transition probability per packet
  double p_bad_to_good = 0.0;
  double bad_state_loss = 0.0;  ///< drop probability while in the bad state
};

struct LinkConfig {
  Bandwidth rate = mbps(100);        ///< serialization rate
  TimeNs delay = milliseconds(10);   ///< one-way propagation delay
  uint64_t buffer_bytes = 64 * 1024; ///< drop-tail queue capacity
  LossModel loss;
  /// Per-packet propagation jitter: delay += U(0, jitter).  Jitter can
  /// reorder packets (later-sent may arrive first), like real radio links.
  TimeNs jitter = 0;
  /// Probability of an extra reordering kick: the packet is held for one
  /// additional `reorder_extra_delay` on top of jitter.
  double reorder_rate = 0;
  TimeNs reorder_extra_delay = milliseconds(5);
  /// Probability a delivered packet is duplicated (delivered twice).
  double duplicate_rate = 0;
};

namespace detail {
/// Datagrams sharing one arrival instant (see Link::schedule_delivery).
struct DgramBatch {
  std::vector<Datagram> dgrams;
};
/// Per-loop batch pool (EventLoop::scratch): shared by every Link on the
/// loop and persisting across loop resets, so steady-state delivery —
/// including recycled-workspace sessions — allocates nothing.
struct DgramBatchPool {
  std::vector<std::unique_ptr<DgramBatch>> all;  ///< owns every batch
  std::vector<DgramBatch*> free;

  /// Batches stranded in flight when the loop resets (their delivery
  /// events were destroyed) rejoin the freelist; their stale payloads are
  /// dropped — pooled values must never cross sessions.
  void on_loop_reset() {
    free.clear();
    free.reserve(all.size());
    for (auto& b : all) {
      b->dgrams.clear();
      free.push_back(b.get());
    }
  }
};
}  // namespace detail

struct LinkStats {
  uint64_t delivered_packets = 0;
  uint64_t delivered_bytes = 0;
  uint64_t queue_drops = 0;   ///< buffer overflow
  uint64_t wire_drops = 0;    ///< stochastic loss
  uint64_t max_queue_bytes = 0;
};

class Link {
 public:
  /// Receives the batch of datagrams arriving at this instant (usually
  /// one).  The span stays valid only for the duration of the call; after
  /// it returns, the link reclaims any payload buffers left in place into
  /// the loop's BufferPool (receivers that keep the bytes simply move the
  /// payload out).
  using DeliverFn = std::function<void(std::span<Datagram>)>;

  Link(EventLoop& loop, LinkConfig config, uint64_t seed);

  /// Installs the receiver; must be set before the first send().
  void set_receiver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Offers a datagram to the queue; silently drops on overflow (the drop
  /// is visible in stats(), like a real NIC).
  void send(Datagram d);

  /// Current queue occupancy in bytes (excludes the packet on the wire).
  uint64_t queued_bytes() const { return queued_bytes_; }

  const LinkConfig& config() const { return config_; }
  LinkConfig& config() { return config_; }  ///< mutable: mid-run condition changes
  const LinkStats& stats() const { return stats_; }

 private:
  using Batch = detail::DgramBatch;

  bool roll_loss();
  /// Appends to the pending batch when `arrive` matches its instant,
  /// otherwise opens (and schedules) a new batch.
  void schedule_delivery(Datagram d, TimeNs arrive);
  void deliver_batch(Batch* b);
  Batch* acquire_batch();

  EventLoop& loop_;
  LinkConfig config_;
  Rng rng_;
  DeliverFn deliver_;
  TimeNs busy_until_ = 0;   ///< when the serializer frees up
  uint64_t queued_bytes_ = 0;
  bool ge_bad_state_ = false;
  detail::DgramBatchPool& batches_;  ///< loop-scoped, shared across links
  Batch* pending_batch_ = nullptr;  ///< most recently scheduled, not yet run
  TimeNs pending_time_ = 0;         ///< its arrival instant
  LinkStats stats_;
};

}  // namespace wira::sim
