// Unidirectional emulated link: drop-tail queue -> serialization at a fixed
// rate -> propagation delay -> stochastic wire loss -> delivery callback.
//
// This is the emulator analogue of the paper's testbed configuration
// ("8Mbps bandwidth, 3% loss rate, 50ms RTT and 25KB network buffer").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_loop.h"
#include "util/rng.h"
#include "util/units.h"

namespace wira::sim {

/// A datagram in flight.  Payload bytes are owned; `size` may exceed the
/// payload length to model headers without materializing them.  `dest`
/// is an opaque routing tag used by multi-leg topologies.
struct Datagram {
  std::vector<uint8_t> payload;
  size_t size = 0;
  uint64_t dest = 0;
};

/// Stochastic loss model: independent (Bernoulli) loss plus an optional
/// Gilbert-Elliott two-state burst component.
struct LossModel {
  double loss_rate = 0.0;  ///< independent per-packet drop probability

  // Gilbert-Elliott burst loss (disabled when p_good_to_bad == 0).
  double p_good_to_bad = 0.0;  ///< transition probability per packet
  double p_bad_to_good = 0.0;
  double bad_state_loss = 0.0;  ///< drop probability while in the bad state
};

struct LinkConfig {
  Bandwidth rate = mbps(100);        ///< serialization rate
  TimeNs delay = milliseconds(10);   ///< one-way propagation delay
  uint64_t buffer_bytes = 64 * 1024; ///< drop-tail queue capacity
  LossModel loss;
  /// Per-packet propagation jitter: delay += U(0, jitter).  Jitter can
  /// reorder packets (later-sent may arrive first), like real radio links.
  TimeNs jitter = 0;
  /// Probability of an extra reordering kick: the packet is held for one
  /// additional `reorder_extra_delay` on top of jitter.
  double reorder_rate = 0;
  TimeNs reorder_extra_delay = milliseconds(5);
  /// Probability a delivered packet is duplicated (delivered twice).
  double duplicate_rate = 0;
};

struct LinkStats {
  uint64_t delivered_packets = 0;
  uint64_t delivered_bytes = 0;
  uint64_t queue_drops = 0;   ///< buffer overflow
  uint64_t wire_drops = 0;    ///< stochastic loss
  uint64_t max_queue_bytes = 0;
};

class Link {
 public:
  /// Receives a delivered datagram.  The reference stays valid only for
  /// the duration of the call; after it returns, the link reclaims any
  /// payload buffer left in place into the loop's BufferPool (receivers
  /// that keep the bytes simply move the payload out).
  using DeliverFn = std::function<void(Datagram&)>;

  Link(EventLoop& loop, LinkConfig config, uint64_t seed);

  /// Installs the receiver; must be set before the first send().
  void set_receiver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Offers a datagram to the queue; silently drops on overflow (the drop
  /// is visible in stats(), like a real NIC).
  void send(Datagram d);

  /// Current queue occupancy in bytes (excludes the packet on the wire).
  uint64_t queued_bytes() const { return queued_bytes_; }

  const LinkConfig& config() const { return config_; }
  LinkConfig& config() { return config_; }  ///< mutable: mid-run condition changes
  const LinkStats& stats() const { return stats_; }

 private:
  bool roll_loss();
  void deliver_one(Datagram& d, uint64_t size);

  EventLoop& loop_;
  LinkConfig config_;
  Rng rng_;
  DeliverFn deliver_;
  TimeNs busy_until_ = 0;   ///< when the serializer frees up
  uint64_t queued_bytes_ = 0;
  bool ge_bad_state_ = false;
  LinkStats stats_;
};

}  // namespace wira::sim
