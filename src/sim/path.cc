#include "sim/path.h"

namespace wira::sim {

PathConfig testbed_path() {
  PathConfig p;
  p.bandwidth = mbps(8);
  p.rtt = milliseconds(50);
  p.loss_rate = 0.03;
  p.buffer_bytes = 25 * 1024;
  return p;
}

Path::Path(EventLoop& loop, const PathConfig& config, uint64_t seed)
    : config_(config) {
  LinkConfig fwd;
  fwd.rate = config.bandwidth;
  fwd.delay = config.rtt / 2;
  fwd.buffer_bytes = config.buffer_bytes;
  fwd.loss = config.extra_loss;
  fwd.loss.loss_rate = config.loss_rate;
  fwd.jitter = config.jitter;
  fwd.reorder_rate = config.reorder_rate;
  fwd.reorder_extra_delay = config.reorder_extra_delay;

  LinkConfig rev;
  rev.rate = config.reverse_bandwidth;
  rev.delay = config.rtt / 2;
  rev.buffer_bytes = 256 * 1024;
  rev.loss.loss_rate = config.reverse_loss_rate;

  forward_ = std::make_unique<Link>(loop, fwd, seed * 2 + 1);
  reverse_ = std::make_unique<Link>(loop, rev, seed * 2 + 2);
}

void Path::set_bandwidth(Bandwidth bw) {
  config_.bandwidth = bw;
  forward_->config().rate = bw;
}

void Path::set_one_way_delay(TimeNs owd) {
  config_.rtt = owd * 2;
  forward_->config().delay = owd;
  reverse_->config().delay = owd;
}

}  // namespace wira::sim
