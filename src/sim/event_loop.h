// Single-threaded discrete-event loop.
//
// All network, transport and application behaviour in this repository is
// driven by one of these: events execute in (time, insertion-order) order on
// a simulated nanosecond clock, so whole experiments are deterministic given
// their seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace wira::sim {

/// Handle for cancelling a scheduled event.
using EventId = uint64_t;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `when` (clamped to now()).
  EventId schedule_at(TimeNs when, std::function<void()> fn);

  /// Schedules `fn` after `delay` nanoseconds.
  EventId schedule_in(TimeNs delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id) { cancelled_.insert(id); }

  /// Runs events until the queue is empty or the clock would pass
  /// `deadline`; returns the number of events executed.
  size_t run_until(TimeNs deadline);

  /// Runs until the queue is empty (or `max_events` executed, as a runaway
  /// guard); returns the number of events executed.
  size_t run(size_t max_events = SIZE_MAX);

  bool empty() const { return queue_.size() == cancelled_.size(); }
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimeNs when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  bool pop_one();  // executes the next non-cancelled event, if any

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace wira::sim
