// Single-threaded discrete-event loop.
//
// All network, transport and application behaviour in this repository is
// driven by one of these: events execute in (time, insertion-order) order on
// a simulated nanosecond clock, so whole experiments are deterministic given
// their seeds.  Many loops may run concurrently (one per simulated session)
// — a loop and everything scheduled on it stay on one thread.
//
// Hot-path design (this is the inner loop of every experiment):
//   - callbacks are SmallFn's: captures up to 64 bytes live inline in a
//     pooled slot instead of behind a std::function heap allocation, and
//     move-only captures (recycled buffers) are allowed;
//   - the binary heap orders 24-byte POD entries {when, seq, id}; the
//     callable never moves during sifting — it stays put in its slot;
//   - cancel() is O(1) generation-stamped lazy deletion: the heap entry
//     stays and is discarded when it surfaces, the callable (and anything
//     it captured) is destroyed immediately — no hash-set lookup per pop;
//   - the loop owns a BufferPool so links/connections recycle datagram
//     buffers instead of allocating per packet;
//   - the loop owns a bump Arena for tick-scoped scratch (parsed packets,
//     frame vectors, ACK ranges): it rewinds in O(1) whenever the clock
//     advances, so the per-datagram structures never touch the heap.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "util/arena.h"
#include "util/buffer_pool.h"
#include "util/small_fn.h"
#include "util/units.h"

namespace wira::sim {

/// Handle for cancelling a scheduled event: packs a slot index and the
/// slot's generation at scheduling time, so a handle outliving its event
/// (slot since reused) cancels nothing.
using EventId = uint64_t;

class EventLoop {
 public:
  using EventFn = util::SmallFn<64>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `when` (clamped to now()).
  EventId schedule_at(TimeNs when, EventFn fn);

  /// Schedules `fn` after `delay` nanoseconds.
  EventId schedule_in(TimeNs delay, EventFn fn) {
    return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Returns the loop to its freshly constructed state while KEEPING every
  /// capacity it has grown: callable slots, the heap's backing vector, the
  /// buffer pool's recycled buffers and the arena's blocks all survive, so
  /// a reset loop re-runs a comparable workload without re-paying its
  /// allocations.  Pending callables are destroyed immediately (their
  /// captures release now, exactly as cancel() would) and every
  /// outstanding EventId goes stale.  This is what makes the loop reusable
  /// across sessions (exp::SessionWorkspace): reset + rerun is
  /// behaviourally identical to constructing a new loop.
  void reset();

  /// Runs events until the queue is empty or the clock would pass
  /// `deadline`; returns the number of events executed.
  size_t run_until(TimeNs deadline);

  /// Runs until the queue is empty (or `max_events` executed, as a runaway
  /// guard); returns the number of events executed.
  size_t run(size_t max_events = SIZE_MAX);

  bool empty() const { return live_ == 0; }
  /// Number of scheduled events that are neither run nor cancelled.
  size_t pending() const { return live_; }

  /// Absolute time of the earliest live event, or kNoEvent when the queue
  /// is empty.  This is what lets a real-time driver (net::EpollRuntime)
  /// use the loop as its timer wheel: run_until(clock-now) fires everything
  /// due, next_event_time() says how long the driver may sleep.
  static constexpr TimeNs kNoEvent = INT64_MAX;
  TimeNs next_event_time();

  /// Scratch byte-buffer pool shared by everything driven by this loop.
  util::BufferPool& buffers() { return buffers_; }

  /// Type-keyed scratch objects that persist across reset(): freelists,
  /// node graveyards, pooled containers — anything whose *capacity* should
  /// survive session recycling (exp::SessionWorkspace).  The first
  /// scratch<T>() default-constructs the loop's T; later calls return the
  /// same instance.  Contract: a scratch object must hold capacity-only
  /// state — recycled values have to be fully overwritten before reuse, so
  /// a reset loop stays indistinguishable from a fresh one.  If T declares
  /// `void on_loop_reset()`, reset() invokes it (e.g. to reclaim objects
  /// stranded by cancelled events).
  template <typename T>
  T& scratch() {
    const std::type_index key(typeid(T));
    auto it = scratch_.find(key);
    if (it == scratch_.end()) {
      Scratch s;
      s.ptr = ScratchPtr(new T(), [](void* p) { delete static_cast<T*>(p); });
      if constexpr (requires(T& t) { t.on_loop_reset(); }) {
        s.reset_fn = [](void* p) { static_cast<T*>(p)->on_loop_reset(); };
      }
      it = scratch_.emplace(key, std::move(s)).first;
    }
    return *static_cast<T*>(it->second.ptr.get());
  }

  /// Tick-scoped bump arena: reset whenever the clock advances, so
  /// anything allocated from it must die before the next tick boundary.
  util::Arena& arena() { return arena_; }

 private:
  struct HeapEntry {
    TimeNs when;
    uint64_t seq;  ///< FIFO tiebreak among simultaneous events
    EventId id;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  /// priority_queue with an O(1) clear that keeps the backing vector's
  /// capacity (std::priority_queue only clears by assignment, which
  /// frees).
  struct EventQueue
      : std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> {
    void clear() { c.clear(); }
  };
  struct Slot {
    EventFn fn;
    uint32_t gen = 0;
    bool cancelled = false;
  };
  using ScratchPtr = std::unique_ptr<void, void (*)(void*)>;
  struct Scratch {
    ScratchPtr ptr{nullptr, [](void*) {}};
    void (*reset_fn)(void*) = nullptr;
  };

  static constexpr uint32_t slot_of(EventId id) {
    return static_cast<uint32_t>(id);
  }
  static constexpr uint32_t gen_of(EventId id) {
    return static_cast<uint32_t>(id >> 32);
  }

  bool pop_one();  // executes the next non-cancelled event, if any
  /// Invalidates outstanding handles to the popped event and recycles its
  /// slot; true if the event is live (not cancelled) and should run.
  bool retire(EventId id);
  /// Discards cancelled events sitting at the top of the heap.
  void skip_cancelled();

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
  EventQueue queue_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  /// 256 buffers: sized for the origin join burst, where one simulated
  /// instant schedules a whole GOP of chunk buffers before any is
  /// delivered back (64 starves, forcing fresh allocations every burst).
  util::BufferPool buffers_{256};
  util::Arena arena_;
  std::unordered_map<std::type_index, Scratch> scratch_;
};

}  // namespace wira::sim
