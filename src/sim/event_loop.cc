#include "sim/event_loop.h"

namespace wira::sim {

EventId EventLoop::schedule_at(TimeNs when, EventFn fn) {
  if (when < now_) when = now_;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.cancelled = false;
  const EventId id = (static_cast<uint64_t>(s.gen) << 32) | slot;
  queue_.push(HeapEntry{when, next_seq_++, id});
  ++live_;
  return id;
}

void EventLoop::cancel(EventId id) {
  const uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.gen != gen_of(id) || s.cancelled) return;  // already ran or stale
  s.cancelled = true;
  s.fn = EventFn();  // release captured state now; the heap entry lingers
  --live_;
}

void EventLoop::reset() {
  queue_.clear();
  // Destroy pending callables now (captured buffers go back to their
  // owners' destructors) and stale every outstanding handle via the
  // generation bump — a cancel() against a pre-reset EventId is a no-op.
  for (Slot& s : slots_) {
    s.fn = EventFn();
    s.cancelled = false;
    ++s.gen;
  }
  // Rebuild the free list in descending order so slots are handed out
  // 0, 1, 2, ... again — the same assignment order as a fresh loop.
  free_slots_.clear();
  free_slots_.reserve(slots_.size());
  for (uint32_t i = static_cast<uint32_t>(slots_.size()); i-- > 0;) {
    free_slots_.push_back(i);
  }
  live_ = 0;
  next_seq_ = 0;
  now_ = 0;
  arena_.reset();
  // Scratch objects survive with their capacities; those with a reset
  // hook reclaim whatever the destroyed callables stranded.
  for (auto& [key, s] : scratch_) {
    if (s.reset_fn != nullptr) s.reset_fn(s.ptr.get());
  }
}

bool EventLoop::retire(EventId id) {
  Slot& s = slots_[slot_of(id)];
  const bool run = !s.cancelled;
  // Bump the generation so outstanding handles to this event go stale,
  // then recycle the slot.
  ++s.gen;
  s.cancelled = false;
  free_slots_.push_back(slot_of(id));
  return run;
}

void EventLoop::skip_cancelled() {
  while (!queue_.empty()) {
    const HeapEntry& top = queue_.top();
    if (!slots_[slot_of(top.id)].cancelled) return;
    retire(top.id);
    queue_.pop();
  }
}

bool EventLoop::pop_one() {
  skip_cancelled();
  if (queue_.empty()) return false;
  const HeapEntry top = queue_.top();
  queue_.pop();
  // Move the callable out before running: the handler may schedule into
  // (and thus overwrite) the freshly recycled slot.
  EventFn fn = std::move(slots_[slot_of(top.id)].fn);
  retire(top.id);
  --live_;
  // Tick boundary: everything bump-allocated during the previous tick is
  // dead by contract, so the arena rewinds before the clock moves.
  if (top.when > now_) arena_.reset();
  now_ = top.when;
  fn();
  return true;
}

size_t EventLoop::run_until(TimeNs deadline) {
  size_t executed = 0;
  for (;;) {
    // Skip leading cancelled events without advancing time.
    skip_cancelled();
    if (queue_.empty() || queue_.top().when > deadline) break;
    if (pop_one()) ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

size_t EventLoop::run(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && pop_one()) ++executed;
  return executed;
}

TimeNs EventLoop::next_event_time() {
  skip_cancelled();
  return queue_.empty() ? kNoEvent : queue_.top().when;
}

}  // namespace wira::sim
