#include "sim/event_loop.h"

namespace wira::sim {

EventId EventLoop::schedule_at(TimeNs when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  return id;
}

bool EventLoop::pop_one() {
  while (!queue_.empty()) {
    // priority_queue::top is const; we need to move the callable out.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ev.fn();
    return true;
  }
  return false;
}

size_t EventLoop::run_until(TimeNs deadline) {
  size_t executed = 0;
  while (!queue_.empty()) {
    // Skip leading cancelled events without advancing time.
    const Event& top = queue_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    if (pop_one()) ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

size_t EventLoop::run(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && pop_one()) ++executed;
  return executed;
}

}  // namespace wira::sim
