#include "core/frame_parser.h"

#include <algorithm>

#include "media/mpegts.h"
#include "util/bytes.h"

namespace wira::core {

namespace {
using media::kFlvHeaderSize;
using media::kFlvPreviousTagSize;
using media::kFlvTagHeaderSize;
}  // namespace

void FrameParser::sniff() {
  // Need at least 3 bytes to distinguish the PtlSet signatures.
  if (header_buf_.size() < 3) return;
  if (header_buf_[0] == 'F' && header_buf_[1] == 'L' &&
      header_buf_[2] == 'V') {
    protocol_ = ProtocolType::kFlv;
    state_ = State::kFlvHeader;
    return;
  }
  if (header_buf_[0] == 0x47) {
    protocol_ = ProtocolType::kMpegTs;  // TS sync byte
    state_ = State::kTsCell;
    return;
  }
  if (header_buf_[0] == '#' && header_buf_[1] == 'E' &&
      header_buf_[2] == 'X') {
    protocol_ = ProtocolType::kHls;  // "#EXTM3U" playlist
    state_ = State::kFailed;
    return;
  }
  if (header_buf_[0] == 0x03) {
    protocol_ = ProtocolType::kRtmp;  // RTMP C0 version byte
    state_ = State::kFailed;
    return;
  }
  protocol_ = ProtocolType::kUnsupported;
  state_ = State::kFailed;
}

std::optional<uint64_t> FrameParser::feed(std::span<const uint8_t> data) {
  if (complete_ || state_ == State::kDone || state_ == State::kFailed) {
    return std::nullopt;  // Algorithm 1: FF_Complete -> return -1
  }
  bytes_seen_ += data.size();

  size_t pos = 0;
  while (pos < data.size() || state_ == State::kSniff) {
    switch (state_) {
      case State::kSniff: {
        while (header_buf_.size() < 3 && pos < data.size()) {
          header_buf_.push_back(data[pos++]);
        }
        sniff();
        if (state_ == State::kSniff) return std::nullopt;  // need more
        if (state_ == State::kFailed) return std::nullopt;
        break;
      }
      case State::kFlvHeader: {
        // Accumulate the 9-byte header; buffered sniff bytes count.
        while (header_buf_.size() < kFlvHeaderSize && pos < data.size()) {
          header_buf_.push_back(data[pos++]);
        }
        if (header_buf_.size() < kFlvHeaderSize) return std::nullopt;
        // HeaderLen from the DataOffset field (bytes 5..8, big-endian).
        const uint64_t header_len =
            static_cast<uint64_t>(header_buf_[5]) << 24 |
            static_cast<uint64_t>(header_buf_[6]) << 16 |
            static_cast<uint64_t>(header_buf_[7]) << 8 |
            static_cast<uint64_t>(header_buf_[8]);
        if (header_len < kFlvHeaderSize) {
          malformed_ = true;
          state_ = State::kFailed;
          return std::nullopt;
        }
        // FF_Size = HeaderLen (Algorithm 1), any extension bytes skipped.
        ff_size_ = header_len;
        body_to_skip_ = header_len - kFlvHeaderSize;
        header_buf_.clear();
        state_ = body_to_skip_ > 0 ? State::kSkipBody : State::kPrevTagSize;
        if (state_ == State::kPrevTagSize) {
          // fallthrough to PrevTagSize handling on next loop iteration
        }
        break;
      }
      case State::kPrevTagSize: {
        // FF_Size += PreviousTagSizeLen (Algorithm 1).
        while (header_buf_.size() < kFlvPreviousTagSize &&
               pos < data.size()) {
          header_buf_.push_back(data[pos++]);
        }
        if (header_buf_.size() < kFlvPreviousTagSize) return std::nullopt;
        ff_size_ += kFlvPreviousTagSize;
        header_buf_.clear();
        state_ = State::kTagHeader;
        break;
      }
      case State::kTagHeader: {
        // "Obtain FrameType / FrameSize": 11-byte FLV tag header; hold the
        // partial header when it straddles a feed boundary.
        while (header_buf_.size() < kFlvTagHeaderSize && pos < data.size()) {
          header_buf_.push_back(data[pos++]);
        }
        if (header_buf_.size() < kFlvTagHeaderSize) return std::nullopt;
        const uint8_t tag_type = header_buf_[0];
        const uint64_t frame_size =
            static_cast<uint64_t>(header_buf_[1]) << 16 |
            static_cast<uint64_t>(header_buf_[2]) << 8 |
            static_cast<uint64_t>(header_buf_[3]);
        if (tag_type != 8 && tag_type != 9 && tag_type != 18) {
          malformed_ = true;
          state_ = State::kFailed;
          return std::nullopt;
        }
        current_tag_is_video_ = tag_type == 9;
        // FF_Size += FrameSize (header + body counted together).
        ff_size_ += kFlvTagHeaderSize + frame_size;
        body_to_skip_ = frame_size;
        header_buf_.clear();
        state_ = State::kSkipBody;
        break;
      }
      case State::kSkipBody: {
        const uint64_t n =
            std::min<uint64_t>(body_to_skip_, data.size() - pos);
        body_to_skip_ -= n;
        pos += n;
        if (body_to_skip_ > 0) return std::nullopt;
        if (current_tag_is_video_) {
          num_vf_++;
          current_tag_is_video_ = false;
          if (num_vf_ >= config_.theta_vf) {
            // The trailing PreviousTagSize of the final video tag belongs
            // to the first frame (the client needs it to advance).
            ff_size_ += kFlvPreviousTagSize;
            complete_ = true;
            state_ = State::kDone;
            return ff_size_;
          }
        }
        state_ = State::kPrevTagSize;
        break;
      }
      case State::kTsCell: {
        // Accumulate one 188-byte cell (only this much is ever buffered),
        // then inspect its header.
        while (header_buf_.size() < media::kTsPacketSize &&
               pos < data.size()) {
          header_buf_.push_back(data[pos++]);
        }
        if (header_buf_.size() < media::kTsPacketSize) return std::nullopt;
        auto ff = process_ts_cell(header_buf_);
        header_buf_.clear();
        ts_cells_done_++;
        if (state_ == State::kFailed) return std::nullopt;
        if (ff) {
          ff_size_ = *ff;
          complete_ = true;
          state_ = State::kDone;
          return ff_size_;
        }
        break;
      }
      case State::kDone:
      case State::kFailed:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<uint64_t> FrameParser::process_ts_cell(
    std::span<const uint8_t> cell) {
  if (cell[0] != media::kTsSyncByte) {
    malformed_ = true;
    state_ = State::kFailed;
    return std::nullopt;
  }
  const bool payload_start = (cell[1] & 0x40) != 0;
  const uint16_t pid =
      static_cast<uint16_t>((cell[1] & 0x1F) << 8 | cell[2]);
  const uint8_t afc = (cell[3] >> 4) & 0x03;
  size_t offset = 4;
  if (afc & 0x02) {
    offset += 1 + cell[offset];
    if (offset > cell.size()) {
      malformed_ = true;
      state_ = State::kFailed;
      return std::nullopt;
    }
  }

  // Learn the video PID from the PMT.
  if (pid == media::kTsPidPmt && payload_start && (afc & 0x01) &&
      offset < cell.size()) {
    const auto payload = cell.subspan(offset);
    const uint8_t pointer = payload[0];
    if (payload.size() > 1u + pointer + 12) {
      ByteReader r(payload.subspan(1 + pointer));
      if (r.u8() == 0x02) {  // PMT table id
        r.skip(7);           // lengths / ids / section numbers
        r.u16be();           // PCR PID
        const uint16_t prog_info = r.u16be() & 0x0FFF;
        r.skip(prog_info);
        while (r.ok() && r.remaining() >= 5 + 4 /* CRC */) {
          const uint8_t stream_type = r.u8();
          const uint16_t es_pid = r.u16be() & 0x1FFF;
          const uint16_t es_info = r.u16be() & 0x0FFF;
          r.skip(es_info);
          if (stream_type == 0x1B) ts_video_pid_ = es_pid;  // H.264
        }
      }
    }
    return std::nullopt;
  }

  // First-frame boundary: a TS access unit's end is only detectable when
  // the next one starts, so the first frame (Theta_VF video AUs plus any
  // interleaved audio) completes at the (Theta_VF+1)-th video PUSI.
  if (ts_video_pid_ && pid == *ts_video_pid_ && payload_start) {
    ts_video_starts_++;
    if (ts_video_starts_ == config_.theta_vf + 1) {
      num_vf_ = config_.theta_vf;
      return ts_cells_done_ * media::kTsPacketSize;
    }
  }
  return std::nullopt;
}

}  // namespace wira::core
