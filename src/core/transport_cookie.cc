#include "core/transport_cookie.h"

#include "util/bytes.h"

namespace wira::core {

namespace {
constexpr char kSealLabel[] = "wira-transport-cookie";
constexpr uint8_t kAad[] = {'h', 'x', 'q', 'o', 's', '-', 'v', '1'};
}  // namespace

std::vector<uint8_t> encode_hxqos_triples(const HxQosRecord& record) {
  ByteWriter w;
  auto triple_u64 = [&w](HxId id, uint64_t value) {
    w.u8(static_cast<uint8_t>(id));
    w.u8(8);  // HxLen
    w.u64be(value);
  };
  if (record.min_rtt != kNoTime) {
    triple_u64(HxId::kMinRtt, static_cast<uint64_t>(to_us(record.min_rtt)));
  }
  if (record.max_bw > 0) triple_u64(HxId::kMaxBw, record.max_bw);
  if (record.server_timestamp != kNoTime) {
    triple_u64(HxId::kTimestamp,
               static_cast<uint64_t>(to_ms(record.server_timestamp)));
  }
  triple_u64(HxId::kOdKey, record.od_key);
  if (record.loss_rate > 0) {
    triple_u64(HxId::kLossRate,
               static_cast<uint64_t>(record.loss_rate * 1000.0));
  }
  return w.take();
}

std::optional<HxQosRecord> decode_hxqos_triples(
    std::span<const uint8_t> data) {
  ByteReader r(data);
  HxQosRecord rec;
  while (r.ok() && r.remaining() > 0) {
    const uint8_t id = r.u8();
    const uint8_t len = r.u8();
    if (!r.ok()) return std::nullopt;
    if (len == 8) {
      const uint64_t v = r.u64be();
      if (!r.ok()) return std::nullopt;
      switch (static_cast<HxId>(id)) {
        case HxId::kMinRtt:
          rec.min_rtt = microseconds(static_cast<int64_t>(v));
          break;
        case HxId::kMaxBw:
          rec.max_bw = v;
          break;
        case HxId::kTimestamp:
          rec.server_timestamp = milliseconds(static_cast<int64_t>(v));
          break;
        case HxId::kOdKey:
          rec.od_key = v;
          break;
        case HxId::kLossRate:
          rec.loss_rate = static_cast<double>(v) / 1000.0;
          break;
        default:
          break;  // unknown id, value already consumed
      }
    } else {
      if (!r.skip(len)) return std::nullopt;  // unknown-length triple
    }
  }
  if (!r.ok()) return std::nullopt;
  return rec;
}

CookieSealer::CookieSealer(const crypto::Key& master_key)
    : key_(crypto::derive_key(master_key, kSealLabel)) {}

std::vector<uint8_t> CookieSealer::seal(const HxQosRecord& record) {
  const uint64_t seq = next_nonce_++;
  const auto nonce = crypto::nonce_from_u64(seq);
  const auto plaintext = encode_hxqos_triples(record);
  auto sealed = crypto::aead_seal(key_, nonce, kAad, plaintext);

  ByteWriter w(8 + sealed.size());
  w.u64le(seq);
  w.bytes(sealed);
  return w.take();
}

std::optional<HxQosRecord> CookieSealer::open(
    std::span<const uint8_t> sealed) const {
  if (sealed.size() < 8 + crypto::kPolyTagSize) return std::nullopt;
  ByteReader r(sealed);
  const uint64_t seq = r.u64le();
  const auto nonce = crypto::nonce_from_u64(seq);
  auto body = r.bytes(r.remaining());
  auto plaintext = crypto::aead_open(key_, nonce, kAad, body);
  if (!plaintext) return std::nullopt;
  return decode_hxqos_triples(*plaintext);
}

void ClientCookieStore::store(uint64_t od_pair, std::vector<uint8_t> sealed,
                              TimeNs now) {
  entries_[od_pair] = Entry{std::move(sealed), now};
}

std::optional<ClientCookieStore::Entry> ClientCookieStore::lookup(
    uint64_t od_pair) const {
  auto it = entries_.find(od_pair);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

uint64_t od_pair_key(uint64_t client_id, uint64_t server_id,
                     uint32_t network_type) {
  uint64_t x = client_id * 0x9E3779B97F4A7C15ull ^
               server_id * 0xC2B2AE3D27D4EB4Full ^ network_type;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

}  // namespace wira::core
