// Frame Perception (§IV-A, Algorithm 1): the cross-layer L4 parser that
// identifies the first frame of a live stream and reports its size before
// the bytes are handed to the send machinery.
//
// The parser sits between the application write path and Stream::write()
// (the ngx_quic_send_data analogue): every outgoing byte flows through
// feed().  It never buffers payload — only enough header bytes to learn
// each tag's type and size (the ngx_quic_flv_parser_parse_or_send partial-
// frame case), so the data path stays zero-copy.
//
// FF_Size accounting follows the paper exactly: protocol header +
// PreviousTagSize fields + every tag (script/audio/video) up to and
// including the Theta_VF-th video frame.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "media/frame.h"

namespace wira::core {

/// Live-streaming container protocols the parser can identify (PtlSet).
enum class ProtocolType {
  kUnknown,      ///< not enough bytes yet to sniff
  kFlv,          ///< fully supported (HTTP-FLV, the paper's deployment)
  kMpegTs,       ///< fully supported (HLS-style transport stream)
  kHls,          ///< playlist text (#EXTM3U): no frames to parse
  kRtmp,         ///< recognized (0x03 handshake) but not parseable
  kUnsupported,  ///< signature matches nothing in PtlSet
};

class FrameParser {
 public:
  struct Config {
    /// Theta_VF: number of video frames that make up the "first frame"
    /// (§IV-A; §VII ties this to client playback conditions).  Default 1.
    uint32_t theta_vf = 1;
  };

  FrameParser() = default;
  explicit FrameParser(Config config) : config_(config) {}

  /// Observes the next outgoing bytes.  Returns FF_Size exactly once: on
  /// the call during which the Theta_VF-th video frame completes.
  /// (Algorithm 1 returns -1 while incomplete; here that is nullopt.)
  std::optional<uint64_t> feed(std::span<const uint8_t> data);

  /// FF_Complete flag from Algorithm 1.
  bool complete() const { return complete_; }
  /// Valid only when complete().
  uint64_t ff_size() const { return ff_size_; }
  ProtocolType protocol() const { return protocol_; }
  uint32_t video_frames_seen() const { return num_vf_; }
  /// Bytes of an incomplete tag header currently held (never payload).
  size_t bytes_buffered() const { return header_buf_.size(); }
  /// Total bytes fed before parsing finished: the observability layer
  /// reports this as the parse "latency" in bytes (how much of the join
  /// burst had to flow past before FF_Size was known).
  uint64_t bytes_seen() const { return bytes_seen_; }
  /// True when the parser gave up (non-FLV stream or malformed input);
  /// the sender then stays on init_cwnd_exp (corner case 1 forever).
  bool failed() const { return protocol_ == ProtocolType::kHls ||
                               protocol_ == ProtocolType::kRtmp ||
                               protocol_ == ProtocolType::kUnsupported ||
                               malformed_; }

  const Config& config() const { return config_; }

 private:
  enum class State { kSniff, kFlvHeader, kPrevTagSize, kTagHeader, kSkipBody,
                     kTsCell, kDone, kFailed };

  void sniff();
  /// Processes one complete 188-byte TS cell; returns FF_Size when the
  /// first frame completes at this cell boundary.
  std::optional<uint64_t> process_ts_cell(std::span<const uint8_t> cell);

  Config config_;
  State state_ = State::kSniff;
  ProtocolType protocol_ = ProtocolType::kUnknown;
  std::vector<uint8_t> header_buf_;  ///< partial header/cell bytes only
  uint64_t ff_size_ = 0;
  uint64_t bytes_seen_ = 0;
  uint32_t num_vf_ = 0;
  bool complete_ = false;
  bool malformed_ = false;
  uint64_t body_to_skip_ = 0;
  bool current_tag_is_video_ = false;
  // MPEG-TS state.
  uint64_t ts_cells_done_ = 0;
  uint32_t ts_video_starts_ = 0;
  std::optional<uint16_t> ts_video_pid_;
};

}  // namespace wira::core
