#include "core/init_config.h"

#include <algorithm>
#include <cstring>

namespace wira::core {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kBaseline: return "Baseline";
    case Scheme::kWiraFF: return "Wira(FF)";
    case Scheme::kWiraHx: return "Wira(Hx)";
    case Scheme::kWira: return "Wira";
    case Scheme::kUserGroup: return "UserGroup";
    case Scheme::kWiraPlus: return "Wira+";
  }
  return "?";
}

const char* scheme_token(Scheme s) {
  switch (s) {
    case Scheme::kBaseline: return "baseline";
    case Scheme::kWiraFF: return "wira_ff";
    case Scheme::kWiraHx: return "wira_hx";
    case Scheme::kWira: return "wira";
    case Scheme::kUserGroup: return "user_group";
    case Scheme::kWiraPlus: return "wira_plus";
  }
  return "?";
}

bool scheme_from_token(const char* token, Scheme* out) {
  for (const Scheme s :
       {Scheme::kBaseline, Scheme::kWiraFF, Scheme::kWiraHx, Scheme::kWira,
        Scheme::kUserGroup, Scheme::kWiraPlus}) {
    if (std::strcmp(token, scheme_token(s)) == 0) {
      *out = s;
      return true;
    }
  }
  return false;
}

namespace {

Bandwidth pace_over_rtt(uint64_t bytes, TimeNs rtt) {
  return delivery_rate(bytes, rtt > 0 ? rtt : milliseconds(1));
}

}  // namespace

InitDecision compute_init(Scheme scheme, const InitInputs& in,
                          const ExperiencedDefaults& defaults) {
  InitDecision d;

  const bool have_ff = in.ff_size.has_value();
  // Corner case 1: substitute the experienced value while parsing runs.
  const uint64_t ff = have_ff ? *in.ff_size : defaults.init_cwnd_exp;

  const bool hx_present = in.hx_qos.has_value() && in.hx_qos->valid();
  const bool hx_fresh =
      hx_present && in.hx_qos->fresh(in.now, in.staleness_threshold);
  d.hx_stale = hx_present && !hx_fresh;

  const uint64_t bdp =
      hx_fresh ? bdp_bytes(in.hx_qos->max_bw, in.hx_qos->min_rtt) : 0;

  switch (scheme) {
    case Scheme::kBaseline:
      d.init_cwnd = defaults.init_cwnd_exp;
      d.init_pacing = pace_over_rtt(d.init_cwnd, defaults.init_rtt_exp);
      break;

    case Scheme::kWiraFF:
      d.init_cwnd = ff;
      d.used_ff_size = have_ff;
      d.ff_pending = !have_ff;
      d.init_pacing = pace_over_rtt(d.init_cwnd, defaults.init_rtt_exp);
      break;

    case Scheme::kWiraHx:
      if (hx_fresh) {
        d.init_cwnd = bdp;
        d.init_pacing = in.hx_qos->max_bw;  // Eq. 2
        d.used_hx_qos = true;
      } else {
        // No usable history: behave like the baseline.
        d.init_cwnd = defaults.init_cwnd_exp;
        d.init_pacing = pace_over_rtt(d.init_cwnd, defaults.init_rtt_exp);
      }
      break;

    case Scheme::kWira:
      // Corner case 1 only applies to the schemes that consume FF_Size:
      // a pending parse is invisible to Baseline/Hx/UserGroup decisions.
      d.ff_pending = !have_ff;
      if (hx_fresh) {
        d.init_cwnd = std::min(ff, bdp);  // Eq. 3
        d.init_pacing = in.hx_qos->max_bw;  // Eq. 2
        d.used_ff_size = have_ff;
        d.used_hx_qos = true;
      } else {
        // Corner case 2: stale or absent cookie.
        d.init_cwnd = ff;
        d.used_ff_size = have_ff;
        d.init_pacing = pace_over_rtt(ff, defaults.init_rtt_exp);
      }
      break;

    case Scheme::kUserGroup:
      // The §II-C strawman: every flow in the group is initialized from
      // the group-average QoS ("treat the network condition of the entire
      // group as the condition encountered by each user").
      if (in.ug_qos && in.ug_qos->valid()) {
        d.init_cwnd = bdp_bytes(in.ug_qos->max_bw, in.ug_qos->min_rtt);
        d.init_pacing = in.ug_qos->max_bw;
      } else {
        d.init_cwnd = defaults.init_cwnd_exp;
        d.init_pacing = pace_over_rtt(d.init_cwnd, defaults.init_rtt_exp);
      }
      break;

    case Scheme::kWiraPlus:
      // Extension beyond the paper: like Wira, but the cookie's loss-rate
      // triple discounts the pacing rate so historically lossy paths get
      // recovery headroom instead of running flat out into a drop.
      d.ff_pending = !have_ff;
      if (hx_fresh) {
        const double discount =
            1.0 - std::min(2.0 * in.hx_qos->loss_rate, 0.3);
        d.init_pacing = static_cast<Bandwidth>(
            static_cast<double>(in.hx_qos->max_bw) * discount);
        d.init_cwnd = std::min(ff, bdp);
        d.used_ff_size = have_ff;
        d.used_hx_qos = true;
      } else {
        d.init_cwnd = ff;
        d.used_ff_size = have_ff;
        d.init_pacing = pace_over_rtt(ff, defaults.init_rtt_exp);
      }
      break;
  }

  // Never initialize below sane floors.
  d.init_cwnd = std::max<uint64_t>(d.init_cwnd, 2 * 1460);
  d.init_pacing = std::max<Bandwidth>(d.init_pacing, kbps(100));
  return d;
}

}  // namespace wira::core
