// Transport Cookie (§IV-B): stateless cloud-client collaboration for
// historical QoS.
//
// The server periodically seals its measured Hx_QoS (MinRTT, MaxBW) into an
// opaque, authenticated blob and ships it to the client in an Hx_QoS packet
// (type 0x1f).  The client stores the blob — it cannot read or forge it —
// and echoes it in the HQST tag of its next CHLO to the same server.  The
// server thus recovers the last session's QoS for the OD pair with zero
// server-side storage.
//
// Security (§VII): ChaCha20-Poly1305 under a server-only key; the OD-pair
// key is bound as AEAD associated data, so a cookie stolen from one client
// fails authentication when replayed by another.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "crypto/aead.h"
#include "util/logging.h"
#include "util/units.h"

namespace wira::core {

/// Hx_QoS identifiers for the <HxID, HxLen, Hx_QoS_Value> triples (Fig. 8).
enum class HxId : uint8_t {
  kMinRtt = 1,     ///< microseconds
  kMaxBw = 2,      ///< bytes per second
  kTimestamp = 3,  ///< server clock, milliseconds
  kOdKey = 4,      ///< OD-pair binding key
  kLossRate = 5,   ///< per-mille packet loss observed last session
};

/// One OD pair's historical QoS record.
struct HxQosRecord {
  TimeNs min_rtt = kNoTime;
  Bandwidth max_bw = 0;
  TimeNs server_timestamp = kNoTime;  ///< when the server measured/sealed it
  uint64_t od_key = 0;                ///< hash of (client id, server id, net type)
  double loss_rate = 0;               ///< [0,1]; extension triple (kLossRate)

  bool valid() const { return min_rtt != kNoTime && max_bw > 0; }
  /// Corner case 2 (§IV-C): stale once now - timestamp exceeds Delta.
  /// A *future-dated* cookie (server clock skew across a restart or a
  /// cluster failover: server_timestamp > now) is treated as fresh — the
  /// measurement is at most |skew| old, strictly newer than anything the
  /// staleness test could certify — but warned, since skew also corrupts
  /// the ages of every cookie sealed around it.
  bool fresh(TimeNs now, TimeNs staleness_threshold) const {
    if (!valid() || server_timestamp == kNoTime) return false;
    if (server_timestamp > now) {
      WIRA_WARN("cookie",
                "future-dated Hx_QoS cookie (server clock skew): "
                "treating as fresh");
      return true;
    }
    return now - server_timestamp <= staleness_threshold;
  }
};

/// Default staleness threshold Delta (§IV-C: 60 minutes).
inline constexpr TimeNs kDefaultStaleness = minutes(60);
/// Default Hx_QoS synchronization period (§IV-B: 3 seconds).
inline constexpr TimeNs kDefaultSyncPeriod = seconds(3);

/// Serializes a record as <HxID, HxLen, value> triples (the Hx_QoS frame
/// body of Fig. 8, before sealing).
std::vector<uint8_t> encode_hxqos_triples(const HxQosRecord& record);
/// Parses triples; unknown HxIDs are skipped via their HxLen (forward
/// compatibility).  nullopt on truncation.
std::optional<HxQosRecord> decode_hxqos_triples(
    std::span<const uint8_t> data);

/// Server-side sealer: cookie = nonce_seq(8B LE) || AEAD(triples).
class CookieSealer {
 public:
  explicit CookieSealer(const crypto::Key& master_key);

  std::vector<uint8_t> seal(const HxQosRecord& record);
  /// Opens and authenticates; nullopt if tampered/truncated/wrong key.
  std::optional<HxQosRecord> open(std::span<const uint8_t> sealed) const;

 private:
  crypto::Key key_;
  uint64_t next_nonce_ = 1;
};

/// Client-side cookie cache keyed by OD pair (server endpoint id).  This is
/// the storage the transport cookie offloads from the cloud.
class ClientCookieStore {
 public:
  struct Entry {
    std::vector<uint8_t> sealed;
    TimeNs stored_at = kNoTime;  ///< client receive timestamp (echoed in CHLO)
  };

  void store(uint64_t od_pair, std::vector<uint8_t> sealed, TimeNs now);
  std::optional<Entry> lookup(uint64_t od_pair) const;
  void erase(uint64_t od_pair) { entries_.erase(od_pair); }
  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<uint64_t, Entry> entries_;
};

/// Stable OD-pair key from endpoint identities + access network type.
uint64_t od_pair_key(uint64_t client_id, uint64_t server_id,
                     uint32_t network_type);

}  // namespace wira::core
