// Initial Parameter Configuration (§IV-C, Table I): combines the parsed
// FF_Size and the Hx_QoS transport cookie into per-connection init_cwnd /
// init_pacing, including both corner cases.
//
//   init_pacing = MaxBW                              (Eq. 2)
//   init_cwnd   = min{FF_Size, MaxBW x MinRTT}       (Eq. 3)
//
// Corner case 1: FF_Size not yet parsed -> substitute init_cwnd_exp and
// re-run once parsing completes.  Corner case 2: cookie older than Delta ->
// init_cwnd = FF_Size, init_pacing = FF_Size / init_RTT_exp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/transport_cookie.h"
#include "util/units.h"

namespace wira::core {

/// Comparison schemes of Table I, plus two beyond-the-paper references:
/// kUserGroup initializes from user-group average QoS (the ML/UG approach
/// §II-C argues is too coarse) and kWiraPlus extends Wira with the
/// historical loss rate (future-work flavour: pace slightly under MaxBW
/// on historically lossy paths to leave recovery headroom).
enum class Scheme { kBaseline, kWiraFF, kWiraHx, kWira, kUserGroup,
                    kWiraPlus };

const char* scheme_name(Scheme s);

/// CLI-safe lowercase token ("baseline", "wira_ff", "wira_hx", "wira",
/// "user_group", "wira_plus") — what wira_proxyd/wira_loadgen flags and
/// port files use; scheme_name() stays the display form.
const char* scheme_token(Scheme s);
/// Parses a scheme_token; false on an unknown token.
bool scheme_from_token(const char* token, Scheme* out);

/// Fleet-wide experienced values obtained from A/B tests (§IV-C): the
/// paper sets init_cwnd_exp to the one-week average FF_Size and
/// init_RTT_exp to the one-week average MinRTT, then validates both by
/// A/B testing.  The defaults below are the A/B optimum for this repo's
/// synthetic population (bench/abl_cwnd_exp sweeps them).
struct ExperiencedDefaults {
  uint64_t init_cwnd_exp = 43'000;            ///< ~ fleet-average FF_Size
  TimeNs init_rtt_exp = milliseconds(40);     ///< A/B-tuned pacing divisor
};

struct InitInputs {
  /// Parsed FF_Size; nullopt while the parser has not completed
  /// (corner case 1).
  std::optional<uint64_t> ff_size;
  /// Authenticated Hx_QoS record; nullopt when no/invalid cookie.
  std::optional<HxQosRecord> hx_qos;
  /// User-group average QoS (for Scheme::kUserGroup only): what a
  /// group-trained model would predict for this client.
  std::optional<HxQosRecord> ug_qos;
  TimeNs now = 0;
  TimeNs staleness_threshold = kDefaultStaleness;
};

struct InitDecision {
  uint64_t init_cwnd = 0;     ///< bytes
  Bandwidth init_pacing = 0;  ///< bytes per second
  // Provenance, for logging/experiments.
  bool used_ff_size = false;
  bool used_hx_qos = false;
  bool hx_stale = false;      ///< cookie present but older than Delta
  bool ff_pending = false;    ///< corner case 1 substitution active
};

/// Computes Table I's row for `scheme`.  Pure function: call it again with
/// updated inputs when FF_Size arrives late (corner case 1) and feed the
/// result back through Connection::set_initial_parameters().
InitDecision compute_init(Scheme scheme, const InitInputs& in,
                          const ExperiencedDefaults& defaults);

}  // namespace wira::core
