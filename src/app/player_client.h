// Live-streaming player client: connects (0-RTT when the server config is
// cached), sends the play request, demuxes the arriving FLV stream, tracks
// first-frame / follow-up-frame completion, and stores transport cookies.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/transport_cookie.h"
#include "media/flv.h"
#include "media/mpegts.h"
#include "media/stream_source.h"
#include "quic/connection.h"
#include "sim/event_loop.h"
#include "trace/tracer.h"
#include "util/units.h"

namespace wira::app {

/// Client-side state that survives across sessions (the app cache): the
/// cookie store plus cached server configs for 0-RTT.
struct ClientCache {
  core::ClientCookieStore cookies;
  std::unordered_map<uint64_t, std::vector<uint8_t>> server_configs;
};

struct ClientConfig {
  uint64_t client_id = 1;
  uint64_t server_id = 1;
  uint32_t network_type = 0;  ///< 0=WiFi 1=3G 2=4G 3=5G
  quic::ConnectionId conn_id = 1;
  /// Playback condition: how many video frames complete the "first frame"
  /// (must match the server's Theta_VF for apples-to-apples metrics).
  uint32_t theta_vf = 1;
  /// Whether this client declares Hx_QoS sync support (HQST Bool).
  bool supports_cookie_sync = true;
  /// How many video-frame completion times to record (Fig. 15 uses 4).
  uint32_t track_frames = 4;
  /// Container the requested stream is delivered in (selects the demuxer).
  media::Container container = media::Container::kFlv;
  /// Receive gap while streaming at or above this duration is surfaced as
  /// a wira:stall_observed trace event (client-vantage qlog only; never
  /// affects metrics).
  TimeNs stall_threshold = milliseconds(250);
};

class PlayerClient {
 public:
  using SendFn = quic::Connection::SendDatagramFn;
  using FrameEventFn = std::function<void(uint32_t frame_index)>;

  PlayerClient(sim::EventLoop& loop, ClientConfig config, ClientCache& cache,
               SendFn send);

  /// Connects and sends the play request.
  void start();

  void on_datagram(std::span<const uint8_t> data) {
    conn_.on_datagram(data);
  }

  /// Invoked when video frame `i` (1-based) completes; frame 1 is the
  /// first frame.  Lets the harness snapshot server stats at the instant.
  void set_on_frame_complete(FrameEventFn fn) { on_frame_ = std::move(fn); }

  /// Attaches an event tracer to the transport connection *and* the
  /// client's application-level markers (request_sent, first_video_byte,
  /// frame_complete, stall observations) — the client-vantage half of a
  /// paired qlog sample.  nullptr detaches; the tracer must outlive the
  /// client's activity.
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    conn_.set_tracer(tracer);
  }

  struct Metrics {
    TimeNs request_sent_at = kNoTime;   ///< full-CHLO / request departure
    TimeNs first_byte_at = kNoTime;     ///< first response-stream byte
    /// When the contiguously-delivered stream first reached the first
    /// byte of video payload (demuxer saw the first video tag / video-PID
    /// packet).  Later than first_byte_at when the container prelude
    /// (header, metadata, audio) precedes video, or when reordering holes
    /// stall reassembly; the delivery phase ends here, so reorder wait on
    /// any pre-video byte is charged to delivery, not frame_recv.
    TimeNs first_frame_byte_at = kNoTime;
    bool zero_rtt = false;
    /// Completion time of video frames 1..N (absolute sim time).
    std::vector<TimeNs> frame_complete_at;
    uint64_t first_frame_bytes = 0;     ///< contiguous bytes at frame 1
    uint64_t total_bytes_received = 0;
    uint64_t cookies_received = 0;

    bool first_frame_done() const { return !frame_complete_at.empty(); }
    /// First-frame completion time (§I): request packet -> frame 1.
    TimeNs ffct() const {
      return first_frame_done() ? frame_complete_at[0] - request_sent_at
                                : kNoTime;
    }
    TimeNs frame_time(uint32_t i) const {  // 1-based
      return i <= frame_complete_at.size()
                 ? frame_complete_at[i - 1] - request_sent_at
                 : kNoTime;
    }
  };
  const Metrics& metrics() const { return metrics_; }

  quic::Connection& connection() { return conn_; }
  const quic::Connection& connection() const { return conn_; }
  /// Datagrams this client dropped as unparseable (anomaly-trigger input
  /// for the flight recorder's decode_error trigger).
  uint64_t packets_undecodable() const {
    return conn_.stats().packets_undecodable;
  }
  uint64_t od_key() const { return od_key_; }

 private:
  void on_established();
  void on_stream_data(std::span<const uint8_t> data);
  void on_hxqos(const quic::HxQosFrame& frame);
  void on_tag(const media::FlvTag& tag);
  void on_ts_unit(const media::TsPesUnit& unit);
  void on_video_frame_boundary(uint64_t bytes_at_boundary);

  sim::EventLoop& loop_;
  ClientConfig config_;
  ClientCache& cache_;
  quic::Connection conn_;
  media::FlvDemuxer demux_;
  media::TsDemuxer ts_demux_;
  uint64_t od_key_;
  uint32_t video_frames_ = 0;
  bool request_sent_ = false;
  TimeNs last_data_at_ = kNoTime;
  Metrics metrics_;
  FrameEventFn on_frame_;

  trace::Tracer* tracer_ = nullptr;
  void trace(trace::EventType type, uint64_t a = 0, uint64_t b = 0,
             std::string detail = {}) {
    if (tracer_) tracer_->record(loop_.now(), type, a, b, std::move(detail));
  }
};

}  // namespace wira::app
