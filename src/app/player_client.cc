#include "app/player_client.h"

#include <string_view>

namespace wira::app {

PlayerClient::PlayerClient(sim::EventLoop& loop, ClientConfig config,
                           ClientCache& cache, SendFn send)
    : loop_(loop),
      config_(config),
      cache_(cache),
      conn_(loop,
            quic::ConnectionConfig{.is_server = false,
                                   .conn_id = config.conn_id},
            std::move(send)),
      demux_([this](const media::FlvTag& tag) { on_tag(tag); }),
      ts_demux_([this](const media::TsPesUnit& unit) { on_ts_unit(unit); }),
      od_key_(core::od_pair_key(config.client_id, config.server_id,
                                config.network_type)) {
  conn_.set_on_established([this] { on_established(); });
  conn_.set_on_stream_data(
      [this](quic::StreamId id, std::span<const uint8_t> data, bool) {
        if (id == quic::kResponseStream) on_stream_data(data);
      });
  conn_.set_on_hxqos(
      [this](const quic::HxQosFrame& frame) { on_hxqos(frame); });
  conn_.set_on_handshake_message([this](const quic::HandshakeMessage& msg) {
    if (msg.msg_tag == quic::kTagREJ && msg.has(quic::kTagSCID)) {
      auto scid = msg.get(quic::kTagSCID);
      cache_.server_configs[config_.server_id] =
          std::vector<uint8_t>(scid.begin(), scid.end());
    }
  });
}

void PlayerClient::start() {
  quic::Connection::ClientConnectOptions opts;

  auto cfg_it = cache_.server_configs.find(config_.server_id);
  if (cfg_it != cache_.server_configs.end()) {
    opts.server_config_id = cfg_it->second;  // 0-RTT
  }

  if (config_.supports_cookie_sync) {
    quic::HqstPayload hqst;
    hqst.supports_sync = true;
    if (auto entry = cache_.cookies.lookup(od_key_)) {
      hqst.sealed_cookie = entry->sealed;
      hqst.client_recv_time_ms =
          static_cast<uint64_t>(to_ms(entry->stored_at));
    }
    opts.hqst = hqst;
  }

  conn_.connect(opts);
}

void PlayerClient::on_established() {
  if (request_sent_) return;
  request_sent_ = true;
  metrics_.zero_rtt = conn_.zero_rtt();
  // FFCT clock starts when the request packet leaves (§I: "from sending
  // out the request packet").  For 1-RTT this is the full CHLO + request,
  // after the REJ exchange.
  metrics_.request_sent_at = loop_.now();
  static constexpr std::string_view kRequest = "PLAY /live/stream.flv";
  trace(trace::EventType::kRequestSent, kRequest.size());
  conn_.write_stream(
      quic::kRequestStream,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(kRequest.data()), kRequest.size()),
      /*fin=*/true);
}

void PlayerClient::on_stream_data(std::span<const uint8_t> data) {
  if (metrics_.first_byte_at == kNoTime && !data.empty()) {
    metrics_.first_byte_at = loop_.now();
  }
  // Stall observation (client-vantage qlog only): a receive gap at or
  // above the threshold while the stream is flowing — reordering holes,
  // loss recovery and bursty pacing all surface here.  Detected when data
  // *resumes*, so the event carries the gap it just ended.
  if (tracer_ != nullptr && last_data_at_ != kNoTime && !data.empty()) {
    const TimeNs gap = loop_.now() - last_data_at_;
    if (gap >= config_.stall_threshold) {
      trace(trace::EventType::kStallObserved,
            static_cast<uint64_t>(gap / 1000),
            metrics_.total_bytes_received, "recv_gap");
    }
  }
  if (!data.empty()) last_data_at_ = loop_.now();
  metrics_.total_bytes_received += data.size();
  if (config_.container == media::Container::kMpegTs) {
    ts_demux_.feed(data);
  } else {
    demux_.feed(data);
  }
  if (metrics_.first_frame_byte_at == kNoTime) {
    const bool video = config_.container == media::Container::kMpegTs
                           ? ts_demux_.video_started()
                           : demux_.video_started();
    if (video) {
      metrics_.first_frame_byte_at = loop_.now();
      trace(trace::EventType::kFirstVideoByte, metrics_.total_bytes_received);
    }
  }
}

void PlayerClient::on_video_frame_boundary(uint64_t bytes_at_boundary) {
  video_frames_++;
  // Playback condition (§VII): frame k completes when the Theta_VF-th,
  // (Theta_VF+1)-th, ... video frame is fully (contiguously) received.
  if (video_frames_ < config_.theta_vf) return;
  const uint32_t frame_index =
      video_frames_ - config_.theta_vf + 1;  // 1-based
  if (frame_index > config_.track_frames) return;
  metrics_.frame_complete_at.push_back(loop_.now());
  trace(trace::EventType::kFrameComplete, frame_index, bytes_at_boundary);
  if (frame_index == 1) {
    metrics_.first_frame_bytes = bytes_at_boundary;
  }
  if (on_frame_) on_frame_(frame_index);
}

void PlayerClient::on_tag(const media::FlvTag& tag) {
  if (tag.type != media::TagType::kVideo) return;
  on_video_frame_boundary(demux_.bytes_consumed());
}

void PlayerClient::on_ts_unit(const media::TsPesUnit& unit) {
  // Units are emitted when the *next* unit starts on the PID, which is
  // exactly when a TS access unit is known complete.
  if (!ts_demux_.video_pid() || unit.pid != *ts_demux_.video_pid()) return;
  on_video_frame_boundary(ts_demux_.packets_parsed() *
                          media::kTsPacketSize);
}

void PlayerClient::on_hxqos(const quic::HxQosFrame& frame) {
  metrics_.cookies_received++;
  // The blob span borrows the datagram buffer; the cache outlives it.
  cache_.cookies.store(
      od_key_,
      std::vector<uint8_t>(frame.sealed_blob.begin(), frame.sealed_blob.end()),
      loop_.now());
}

}  // namespace wira::app
