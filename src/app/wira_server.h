// The Wira CDN proxy server (Fig. 10): accepts a QUIC connection, pulls the
// requested live stream from the (local) origin, runs every outgoing byte
// through Frame Perception, initializes the send controller from the
// Table-I scheme, and periodically synchronizes the transport cookie.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/frame_parser.h"
#include "core/init_config.h"
#include "core/transport_cookie.h"
#include "media/stream_source.h"
#include "quic/connection.h"
#include "sim/event_loop.h"
#include "trace/tracer.h"

namespace wira::app {

struct ServerConfig {
  core::Scheme scheme = core::Scheme::kWira;
  core::ExperiencedDefaults defaults;
  uint32_t theta_vf = 1;
  TimeNs sync_period = core::kDefaultSyncPeriod;
  TimeNs staleness_threshold = core::kDefaultStaleness;
  cc::CcAlgo cc_algo = cc::CcAlgo::kBbrV1;
  bool cookie_sync_enabled = true;
  /// Seed the congestion controller's converged state from a fresh cookie
  /// (skip BBR startup).  Off by default: cookies under-estimate
  /// app-limited paths, and without startup the session stays pinned at
  /// the remembered rate (see bench/abl_resume).
  bool careful_resume = false;
  crypto::Key master_key{};         ///< cookie-sealing master secret
  uint64_t expected_od_key = 0;     ///< cookie binding check (§VII)
  /// Group-average QoS for Scheme::kUserGroup (what a per-UG model would
  /// predict for this client); ignored by the other schemes.
  std::optional<core::HxQosRecord> ug_qos;
  quic::ConnectionId conn_id = 1;
  /// Origin-fetch latency: the gap between the client request reaching the
  /// proxy and stream bytes arriving from the origin.  Non-zero values
  /// exercise corner case 1 (FF_Size parsed after the first bytes ship).
  TimeNs origin_latency = milliseconds(5);
  /// Proxy<->origin throughput; staggers join-burst chunk arrivals.
  Bandwidth origin_bandwidth = mbps(200);
  /// Stop producing live frames after this stream-time horizon.
  TimeNs stream_horizon = seconds(12);
  /// Testbed override: fixed init_cwnd/init_pacing instead of the Table-I
  /// scheme computation (used by the Fig. 2 parameter sweeps).
  struct ManualInit {
    uint64_t init_cwnd = 0;
    Bandwidth init_pacing = 0;
  };
  std::optional<ManualInit> manual_init;
};

class WiraServer {
 public:
  using SendFn = quic::Connection::SendDatagramFn;

  WiraServer(sim::EventLoop& loop, const media::LiveStream& stream,
             ServerConfig config, SendFn send);

  void on_datagram(std::span<const uint8_t> data) {
    conn_.on_datagram(data);
  }

  quic::Connection& connection() { return conn_; }
  const quic::Connection& connection() const { return conn_; }
  /// Datagrams the server dropped as unparseable (see ConnStats).
  uint64_t packets_undecodable() const {
    return conn_.stats().packets_undecodable;
  }
  const core::FrameParser& parser() const { return parser_; }
  const core::InitDecision& last_init() const { return last_init_; }
  /// The Hx_QoS record recovered from the client's cookie (if any).
  const std::optional<core::HxQosRecord>& received_cookie() const {
    return received_cookie_;
  }
  /// Number of Hx_QoS sync packets sent so far.
  uint64_t cookies_synced() const { return cookies_synced_; }
  /// Server config id clients must cache for 0-RTT.
  const std::vector<uint8_t>& server_config_id() const { return scid_; }

  /// Attaches an event tracer to the transport connection *and* the
  /// server's application-level markers (request_received, origin_byte,
  /// ff_parsed, cookie and corner-case events).  nullptr detaches; the
  /// tracer must outlive the server's activity.
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    conn_.set_tracer(tracer);
  }
  /// Times the send controller was initialized while FF_Size was still
  /// unparsed (corner case 1: init_cwnd_exp substituted).
  uint32_t ff_fallback_inits() const { return ff_fallback_inits_; }

 private:
  void on_handshake_message(const quic::HandshakeMessage& msg);
  void on_request(std::span<const uint8_t> data);
  void apply_init();                 ///< (re)compute Table-I parameters
  void start_streaming();
  void deliver_from_origin(media::StreamChunk chunk);

  /// Origin-fetch scratch: join_chunks/chunks_between rebuild into this
  /// vector (capacity retained) before the chunks move into their
  /// delivery events.
  std::vector<media::StreamChunk> chunk_scratch_;
  void schedule_live_tail(TimeNs from_pts);
  void sync_cookie();

  sim::EventLoop& loop_;
  const media::LiveStream& stream_;
  ServerConfig config_;
  quic::Connection conn_;
  core::FrameParser parser_;
  core::CookieSealer sealer_;

  std::optional<core::HxQosRecord> received_cookie_;
  bool client_supports_sync_ = false;  ///< HQST Bool from the CHLO
  core::InitDecision last_init_;
  std::optional<uint64_t> parsed_ff_size_;
  bool streaming_ = false;
  TimeNs join_time_ = 0;
  Bandwidth session_max_bw_ = 0;   ///< running max of cc bandwidth estimate
  uint64_t cookies_synced_ = 0;
  uint32_t ff_fallback_inits_ = 0;
  bool first_byte_sent_ = false;
  std::vector<uint8_t> scid_ = {0x57, 0x49, 0x52, 0x41};  // "WIRA"

  trace::Tracer* tracer_ = nullptr;
  void trace(trace::EventType type, uint64_t a = 0, uint64_t b = 0,
             std::string detail = {}) {
    if (tracer_) tracer_->record(loop_.now(), type, a, b, std::move(detail));
  }
};

}  // namespace wira::app
