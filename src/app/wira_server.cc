#include "app/wira_server.h"

#include <algorithm>
#include <string_view>

#include "util/logging.h"

namespace wira::app {

WiraServer::WiraServer(sim::EventLoop& loop, const media::LiveStream& stream,
                       ServerConfig config, SendFn send)
    : loop_(loop),
      stream_(stream),
      config_(config),
      conn_(loop,
            quic::ConnectionConfig{.is_server = true,
                                   .conn_id = config.conn_id,
                                   .cc_algo = config.cc_algo},
            std::move(send)),
      parser_(core::FrameParser::Config{.theta_vf = config.theta_vf}),
      sealer_(config.master_key) {
  conn_.set_server_options(quic::Connection::ServerOptions{scid_});
  conn_.set_on_handshake_message(
      [this](const quic::HandshakeMessage& msg) { on_handshake_message(msg); });
  conn_.set_on_stream_data(
      [this](quic::StreamId id, std::span<const uint8_t> data, bool) {
        if (id == quic::kRequestStream) on_request(data);
      });
}

void WiraServer::on_handshake_message(const quic::HandshakeMessage& msg) {
  if (msg.msg_tag != quic::kTagCHLO) return;
  // Extract the Wira HQST tag (parse_hs_data analogue, §V): the sealed
  // cookie can only be opened — and is only trusted — by this server.
  if (msg.has(quic::kTagHQST)) {
    auto hqst = quic::parse_hqst(msg.get(quic::kTagHQST));
    if (hqst) client_supports_sync_ = hqst->supports_sync;
    if (hqst && hqst->supports_sync && !hqst->sealed_cookie.empty()) {
      auto record = sealer_.open(hqst->sealed_cookie);
      if (record && record->valid() &&
          (config_.expected_od_key == 0 ||
           record->od_key == config_.expected_od_key)) {
        received_cookie_ = *record;
        trace(trace::EventType::kCookieEvent, 0, 0, "opened");
      } else {
        // Tampered / mistargeted cookies fail AEAD or the OD check and are
        // dropped: fail-closed to baseline behaviour (§VII).
        trace(trace::EventType::kCookieEvent, 0, 0, "rejected");
      }
    }
  }
  // Initialize the send controller before any response byte is written.
  apply_init();
}

void WiraServer::apply_init() {
  if (config_.manual_init) {
    last_init_ = core::InitDecision{};
    last_init_.init_cwnd = config_.manual_init->init_cwnd;
    last_init_.init_pacing = config_.manual_init->init_pacing;
    conn_.set_initial_parameters(last_init_.init_cwnd,
                                 last_init_.init_pacing);
    return;
  }
  core::InitInputs in;
  in.ff_size = parsed_ff_size_;
  in.hx_qos = received_cookie_;
  in.ug_qos = config_.ug_qos;
  in.now = loop_.now();
  in.staleness_threshold = config_.staleness_threshold;

  core::ExperiencedDefaults defaults = config_.defaults;
  // 1-RTT connections measured the path RTT during the REJ/CHLO exchange;
  // the paper substitutes it for the configured initial RTT (§VI).
  const TimeNs hs_rtt = conn_.stats().handshake_rtt;
  if (hs_rtt != kNoTime) {
    defaults.init_rtt_exp = hs_rtt;
    if (in.hx_qos) in.hx_qos->min_rtt = hs_rtt;
  }

  last_init_ = core::compute_init(config_.scheme, in, defaults);

  // Corner-case accounting.  The FF fallback is the expected path for
  // FF-consuming schemes on the handshake-time init (FLV header/script/
  // audio tags precede the I frame, so parse completes only mid-burst);
  // the counter tracks how often the substitution window was entered at
  // all, and the phase.ff_parse histogram tracks how long it stayed open.
  if (last_init_.ff_pending) {
    ff_fallback_inits_++;
    trace(trace::EventType::kCornerCase, last_init_.init_cwnd, 0,
          "cwnd_before_parse");
    WIRA_WARN("wira_server",
              "init before FF_Size parse: substituting init_cwnd_exp");
  }
  if (last_init_.hx_stale) {
    trace(trace::EventType::kCornerCase, 0, 0, "stale_cookie");
    WIRA_WARN("wira_server", "Hx_QoS cookie stale: falling back to "
                             "FF_Size-derived init (corner case 2)");
  }

  if (config_.careful_resume && last_init_.used_hx_qos && in.hx_qos) {
    conn_.congestion().resume_from_history(in.hx_qos->max_bw,
                                           in.hx_qos->min_rtt);
  }

  // The decision is payload-denominated (FF_Size counts FLV bytes); the
  // transport accounts packet headers and UDP/IP framing against the
  // window.  Translate so that "init_cwnd adapted to FF_Size" admits the
  // whole first frame including its packetization overhead.
  const uint64_t packets =
      last_init_.init_cwnd / quic::kMaxPacketPayload + 1;
  const uint64_t wire_cwnd =
      last_init_.init_cwnd +
      packets * (quic::kPacketHeaderSize + quic::kPacketOverhead + 15);
  conn_.set_initial_parameters(wire_cwnd, last_init_.init_pacing);
}

void WiraServer::on_request(std::span<const uint8_t> data) {
  const std::string_view req(reinterpret_cast<const char*>(data.data()),
                             data.size());
  if (streaming_ || req.find("PLAY") == std::string_view::npos) return;
  streaming_ = true;
  trace(trace::EventType::kRequestReceived, data.size());
  start_streaming();
}

void WiraServer::start_streaming() {
  join_time_ = loop_.now();

  // Join burst: fetched from the origin with fetch latency + origin-link
  // serialization, so early tags (header/script/audio) can reach L4 before
  // the I frame — the paper's corner case 1.
  TimeNs arrival = loop_.now() + config_.origin_latency;
  stream_.join_chunks(join_time_, chunk_scratch_, &loop_.buffers());
  for (media::StreamChunk& chunk : chunk_scratch_) {
    arrival += transfer_time(chunk.bytes.size(), config_.origin_bandwidth);
    loop_.schedule_at(arrival, [this, c = std::move(chunk)]() mutable {
      deliver_from_origin(std::move(c));
    });
  }
  schedule_live_tail(join_time_);

  // Periodic Hx_QoS synchronization only when the client declared support
  // in its CHLO (HQST Bool = 1, §IV-B).
  if (config_.cookie_sync_enabled && client_supports_sync_) {
    loop_.schedule_in(config_.sync_period, [this] { sync_cookie(); });
  }
}

void WiraServer::deliver_from_origin(media::StreamChunk chunk) {
  if (conn_.closed()) return;
  if (!first_byte_sent_ && !chunk.bytes.empty()) {
    first_byte_sent_ = true;
    trace(trace::EventType::kOriginByte, chunk.bytes.size());
  }
  // Frame Perception: the parser observes bytes on their way to the send
  // module; when FF_Size completes, re-initialize (corner case 1 ends).
  if (auto ff = parser_.feed(chunk.bytes)) {
    parsed_ff_size_ = *ff;
    trace(trace::EventType::kFfParsed, *ff, parser_.bytes_seen());
    apply_init();
  }
  conn_.write_stream(quic::kResponseStream, chunk.bytes);
  // The bytes were copied into the send stream; the buffer goes back to
  // the loop pool the muxer drew it from.
  loop_.buffers().release(std::move(chunk.bytes));
}

void WiraServer::schedule_live_tail(TimeNs from_pts) {
  // Pull the next second of frames, deliver each at pts + origin latency,
  // then re-arm.  Stops at the configured horizon.
  const TimeNs until = std::min<TimeNs>(from_pts + seconds(1),
                                        join_time_ + config_.stream_horizon);
  if (from_pts >= until) return;
  stream_.chunks_between(from_pts, until, chunk_scratch_, &loop_.buffers());
  for (media::StreamChunk& chunk : chunk_scratch_) {
    const TimeNs at = chunk.pts + config_.origin_latency;
    loop_.schedule_at(at, [this, c = std::move(chunk)]() mutable {
      deliver_from_origin(std::move(c));
    });
  }
  loop_.schedule_at(until, [this, until] { schedule_live_tail(until); });
}

void WiraServer::sync_cookie() {
  if (conn_.closed()) return;
  session_max_bw_ =
      std::max(session_max_bw_, conn_.congestion().bandwidth_estimate());
  const TimeNs min_rtt = conn_.rtt().min();
  if (min_rtt != kNoTime && session_max_bw_ > 0) {
    core::HxQosRecord record;
    record.min_rtt = min_rtt;
    record.max_bw = session_max_bw_;
    record.server_timestamp = loop_.now();
    record.od_key = config_.expected_od_key;
    const auto& st = conn_.stats();
    if (st.data_packets_sent > 0) {
      record.loss_rate = static_cast<double>(st.packets_lost) /
                         static_cast<double>(st.data_packets_sent);
    }
    // The frame borrows `blob`; send_hxqos serializes synchronously.
    const std::vector<uint8_t> blob = sealer_.seal(record);
    quic::HxQosFrame frame;
    frame.server_time_ms = static_cast<uint64_t>(to_ms(loop_.now()));
    frame.sealed_blob = blob;
    conn_.send_hxqos(frame);
    cookies_synced_++;
    trace(trace::EventType::kCookieEvent, frame.sealed_blob.size(), 0,
          "sealed");
  }
  loop_.schedule_in(config_.sync_period, [this] { sync_cookie(); });
}

}  // namespace wira::app
