// Multi-session CDN edge: one WiraServer instance per concurrent viewer,
// demultiplexed by QUIC connection id — the flash-crowd serving situation
// of examples/flash_crowd and the contention experiments.
#pragma once

#include <map>
#include <memory>

#include "app/wira_server.h"

namespace wira::app {

class WiraEdge {
 public:
  WiraEdge(sim::EventLoop& loop, const media::LiveStream& stream,
           ServerConfig base_config)
      : loop_(loop), stream_(stream), base_config_(base_config) {}

  /// Creates the serving session for connection `conn_id`.  `send` is how
  /// this session's datagrams reach its viewer; `od_key` binds the
  /// session's cookies.
  WiraServer& add_session(quic::ConnectionId conn_id,
                          WiraServer::SendFn send, uint64_t od_key) {
    ServerConfig cfg = base_config_;
    cfg.conn_id = conn_id;
    cfg.expected_od_key = od_key;
    auto server =
        std::make_unique<WiraServer>(loop_, stream_, cfg, std::move(send));
    WiraServer& ref = *server;
    sessions_.emplace(conn_id, std::move(server));
    return ref;
  }

  /// Routes an incoming datagram to its session by connection id.
  void on_datagram(std::span<const uint8_t> data) {
    // Header: type u8, conn_id u64be — enough to route without a full
    // parse.
    if (data.size() < 9) return;
    ByteReader r(data);
    r.u8();
    const quic::ConnectionId id = r.u64be();
    auto it = sessions_.find(id);
    if (it != sessions_.end()) it->second->on_datagram(data);
  }

  WiraServer* session(quic::ConnectionId id) {
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
  }
  size_t session_count() const { return sessions_.size(); }

 private:
  sim::EventLoop& loop_;
  const media::LiveStream& stream_;
  ServerConfig base_config_;
  std::map<quic::ConnectionId, std::unique_ptr<WiraServer>> sessions_;
};

}  // namespace wira::app
