#include "util/alloc_stats.h"

#include <atomic>

namespace wira::util {
namespace {

std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<bool> g_hook_linked{false};

}  // namespace

uint64_t heap_alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

uint64_t heap_alloc_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

bool heap_hook_linked() {
  return g_hook_linked.load(std::memory_order_relaxed);
}

void add_heap_alloc(size_t bytes) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void mark_heap_hook_linked() {
  g_hook_linked.store(true, std::memory_order_relaxed);
}

}  // namespace wira::util
