// Time and bandwidth units used throughout the Wira library.
//
// All simulated time is kept as signed 64-bit nanoseconds (`TimeNs`) and all
// bandwidth as unsigned 64-bit bytes-per-second (`Bandwidth`).  Named
// constructor helpers keep call sites readable and conversion-safe without
// introducing std::chrono templates into every signature.
#pragma once

#include <cstdint>

namespace wira {

/// Simulated time in nanoseconds since the start of the simulation.
using TimeNs = int64_t;

/// Bandwidth in bytes per second.
using Bandwidth = uint64_t;

/// A value meaning "no timestamp" / "timer not armed".
inline constexpr TimeNs kNoTime = -1;

/// A value meaning "bandwidth unknown / unlimited".
inline constexpr Bandwidth kNoBandwidth = 0;

constexpr TimeNs nanoseconds(int64_t n) { return n; }
constexpr TimeNs microseconds(int64_t n) { return n * 1'000; }
constexpr TimeNs milliseconds(int64_t n) { return n * 1'000'000; }
constexpr TimeNs seconds(int64_t n) { return n * 1'000'000'000; }
constexpr TimeNs minutes(int64_t n) { return n * 60'000'000'000; }

constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_ms(TimeNs t) { return static_cast<double>(t) * 1e-6; }
constexpr double to_us(TimeNs t) { return static_cast<double>(t) * 1e-3; }

/// Converts a floating-point second count to TimeNs (rounds toward zero).
constexpr TimeNs from_seconds(double s) {
  return static_cast<TimeNs>(s * 1e9);
}

/// Bandwidth constructors.  Network rates in the paper are quoted in Mbps.
constexpr Bandwidth bytes_per_second(uint64_t b) { return b; }
constexpr Bandwidth kbps(uint64_t k) { return k * 1000 / 8; }
constexpr Bandwidth mbps(uint64_t m) { return m * 1'000'000 / 8; }
constexpr Bandwidth mbps_f(double m) {
  return static_cast<Bandwidth>(m * 1'000'000.0 / 8.0);
}

constexpr double to_mbps(Bandwidth bw) {
  return static_cast<double>(bw) * 8.0 / 1e6;
}

/// Time to transmit `bytes` at rate `bw` (ns).  `bw` must be non-zero.
constexpr TimeNs transfer_time(uint64_t bytes, Bandwidth bw) {
  return static_cast<TimeNs>((static_cast<__int128>(bytes) * 1'000'000'000) /
                             static_cast<__int128>(bw));
}

/// Bandwidth-delay product in bytes for rate `bw` and round-trip `rtt`.
constexpr uint64_t bdp_bytes(Bandwidth bw, TimeNs rtt) {
  return static_cast<uint64_t>(
      (static_cast<__int128>(bw) * static_cast<__int128>(rtt)) /
      1'000'000'000);
}

/// Rate that delivers `bytes` over interval `t` (bytes/sec); 0 if t <= 0.
constexpr Bandwidth delivery_rate(uint64_t bytes, TimeNs t) {
  if (t <= 0) return 0;
  return static_cast<Bandwidth>(
      (static_cast<__int128>(bytes) * 1'000'000'000) /
      static_cast<__int128>(t));
}

}  // namespace wira
