// Minimal fixed-size worker pool for embarrassingly parallel experiment
// fan-out (one task per population shard).
//
// Deliberately small: a mutex/condvar task queue, std::future-based result
// and exception propagation, and a dynamic parallel_for.  Determinism of
// experiment output is the *caller's* job — workers write results into
// index-addressed slots, so scheduling order never shows in the output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wira::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = std::thread::hardware_concurrency()).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();  ///< drains the queue, then joins all workers

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future surfaces its result or exception.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n), load-balanced across the pool via a
  /// shared index counter.  Blocks until all indices complete; rethrows the
  /// first task exception (remaining indices may be skipped once a task
  /// has thrown).
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

  /// Threads worth using for `n` independent items given a requested
  /// count (0 = hardware concurrency); always at least 1.
  static size_t clamp_threads(size_t requested, size_t n);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wira::util
