// Small-buffer-optimized, move-only `void()` callable for the event loop's
// hot path.
//
// std::function's inline buffer (16 bytes on common ABIs) is too small for
// the simulator's typical captures — a Link delivery closure carries a
// whole Datagram (~40 bytes) plus `this` — so nearly every scheduled event
// used to heap-allocate.  SmallFn stores callables up to `Capacity` bytes
// inline and only falls back to the heap for oversized ones.  Being
// move-only it also accepts closures that capture move-only state (pooled
// buffers), which std::function cannot hold at all.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace wira::util {

template <size_t Capacity = 64>
class SmallFn {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule_at() call site
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vt_ = inline_vtable<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = heap_vtable<Fn>();
    }
  }

  SmallFn(SmallFn&& other) noexcept : vt_(other.vt_) {
    if (vt_) vt_->relocate(other.storage_, storage_);
    other.vt_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_) vt_->relocate(other.storage_, storage_);
      other.vt_ = nullptr;
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { vt_->invoke(storage_); }

  explicit operator bool() const { return vt_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(unsigned char*);
    /// Moves the stored callable from `from` into raw storage `to` and
    /// destroys the source (destructive move, never throws).
    void (*relocate)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  static const VTable* inline_vtable() {
    static constexpr VTable vt = {
        [](unsigned char* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
        [](unsigned char* from, unsigned char* to) {
          Fn* src = std::launder(reinterpret_cast<Fn*>(from));
          ::new (static_cast<void*>(to)) Fn(std::move(*src));
          src->~Fn();
        },
        [](unsigned char* s) {
          std::launder(reinterpret_cast<Fn*>(s))->~Fn();
        },
    };
    return &vt;
  }

  template <typename Fn>
  static const VTable* heap_vtable() {
    static constexpr VTable vt = {
        [](unsigned char* s) {
          (**std::launder(reinterpret_cast<Fn**>(s)))();
        },
        [](unsigned char* from, unsigned char* to) {
          ::new (static_cast<void*>(to))
              Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
        },
        [](unsigned char* s) {
          delete *std::launder(reinterpret_cast<Fn**>(s));
        },
    };
    return &vt;
  }

  void reset() {
    if (vt_) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace wira::util
