// Sample statistics used by the measurement harness: mean, percentiles,
// coefficient of variation (Eq. 1 of the paper), and fixed-bin histograms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wira {

/// Accumulates scalar samples; percentile queries sort a copy on demand.
class Samples {
 public:
  void add(double v) {
    values_.push_back(v);
    sorted_valid_ = false;
  }
  void add_all(const std::vector<double>& vs);

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Population standard deviation.
  double stddev() const;

  /// Coefficient of variation as defined in the paper (Eq. 1):
  ///   CV = sqrt(sum (v_i - v_avg)^2) / (N * v_avg)
  /// Note the paper's formula divides the root-sum-of-squares by N (not
  /// sqrt(N)); we implement the conventional CV = stddev/mean, which is what
  /// the reported magnitudes (e.g. 36.4%) correspond to.
  double cv() const;

  /// p in [0, 100]; linear interpolation between order statistics.
  double percentile(double p) const;

  const std::vector<double>& values() const { return values_; }
  void clear() {
    values_.clear();
    sorted_.clear();
    sorted_valid_ = false;
  }

 private:
  std::vector<double> values_;
  /// Cache for percentile(); explicitly invalidated by add/add_all/clear
  /// (a size-based heuristic breaks on clear-then-refill with equal count).
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins.  Used to print CDF rows for the figure benches.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void add(double v);
  size_t count() const { return total_; }

  /// Fraction of samples <= x (empirical CDF using bin upper edges).
  double cdf(double x) const;
  double bin_lo(size_t i) const;
  double bin_hi(size_t i) const;
  size_t bin_count(size_t i) const { return counts_[i]; }
  size_t num_bins() const { return counts_.size(); }

 private:
  double lo_, hi_, width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// Formats "123.4" style numbers for bench table output.
std::string fmt(double v, int decimals = 1);

/// Percentage-change string, e.g. fmt_gain(158.9, 142.0) == "-10.6%".
std::string fmt_gain(double baseline, double value);

}  // namespace wira
