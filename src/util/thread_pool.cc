#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace wira::util {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions land in the packaged_task's future
  }
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  const size_t lanes = std::min(size(), n);
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n || failed.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          throw;
        }
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

size_t ThreadPool::clamp_threads(size_t requested, size_t n) {
  if (requested == 0) {
    requested = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<size_t>(1, std::min(requested, n));
}

}  // namespace wira::util
