#include "util/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace wira::util {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::find(std::string_view key, Kind k) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == k) ? v : nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after value");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = "json: " + msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return string(&out->str);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool number(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                    text_[pos_]))) {
      return fail("bad number");
    }
    // Integer part: a leading zero must stand alone (RFC 8259).
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return fail("bad number fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return fail("bad number exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    out->raw_number.assign(text_.substr(start, pos_ - start));
    out->number = std::strtod(out->raw_number.c_str(), nullptr);
    return true;
  }

  bool string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // The repo's writers only \u-escape control characters, so a
          // plain BMP encode (no surrogate-pair recombination) suffices.
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!value(&element)) return false;
      out->array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!string(&key)) return false;
      if (out->find(key) != nullptr) return fail("duplicate key \"" + key +
                                                 "\"");
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after key");
      }
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(&member)) return false;
      out->object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  Parser p(text, error);
  return p.parse(out);
}

bool ms_text_to_us(std::string_view raw, uint64_t* us) {
  if (raw.empty() || raw[0] == '-') return false;
  uint64_t whole = 0;
  size_t i = 0;
  if (!std::isdigit(static_cast<unsigned char>(raw[0]))) return false;
  for (; i < raw.size() && std::isdigit(static_cast<unsigned char>(raw[i]));
       ++i) {
    const uint64_t digit = static_cast<uint64_t>(raw[i] - '0');
    if (whole > (UINT64_MAX - digit) / 10) return false;  // overflow
    whole = whole * 10 + digit;
  }
  uint64_t frac_us = 0;
  if (i < raw.size()) {
    if (raw[i] != '.') return false;  // exponents never written by append_ms
    ++i;
    size_t digits = 0;
    for (; i < raw.size(); ++i, ++digits) {
      if (!std::isdigit(static_cast<unsigned char>(raw[i]))) return false;
      if (digits >= 3) {
        // More precision than the microsecond writer ever emits: reject
        // rather than silently truncate.
        if (raw[i] != '0') return false;
        continue;
      }
      frac_us = frac_us * 10 + static_cast<uint64_t>(raw[i] - '0');
    }
    if (digits == 0) return false;
    for (; digits < 3; ++digits) frac_us *= 10;
  }
  if (whole > (UINT64_MAX - frac_us) / 1000) return false;
  *us = whole * 1000 + frac_us;
  return true;
}

}  // namespace wira::util
