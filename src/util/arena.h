// Per-event-loop bump arena for tick-scoped scratch allocations.
//
// The receive/deliver hot path materializes short-lived structures for
// every datagram (a Packet, its frame vector, ACK ranges).  All of them
// die before the simulated clock advances, so instead of hitting the heap
// per packet they bump-allocate here and the whole arena rewinds in O(1)
// at the next tick boundary (EventLoop resets it whenever time advances).
//
// Rules:
//   - allocations are valid only until the owning loop's clock moves: no
//     arena pointer may be stored across events at different times;
//   - reset() rewinds to the first block and bumps the epoch; normal
//     blocks are retained (steady state allocates nothing), oversized
//     fallback blocks are freed so a one-off giant packet cannot pin
//     memory forever;
//   - not thread-safe by design: one arena per EventLoop, one loop per
//     thread (the same contract as BufferPool).
//
// ArenaAllocator<T> adapts the arena to allocator-aware containers.  A
// default-constructed allocator (arena == nullptr) falls back to the heap,
// so container types like ArenaVector<T> stay drop-in usable in tests and
// cold paths.  Copies of arena-backed containers deliberately fall back to
// the heap (select_on_container_copy_construction), so copying a borrowed
// structure out of the hot path never creates a dangling arena reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace wira::util {

class Arena {
 public:
  explicit Arena(size_t block_size = 16 * 1024) : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `size` bytes aligned to `align` (a power of two).
  /// Allocations larger than the block size get a dedicated fallback
  /// block, freed at the next reset().
  void* allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    if (size == 0) size = 1;
    if (size > block_size_) return allocate_large(size, align);
    // Alignment is on the ADDRESS, not the block offset: operator new
    // only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the block
    // base, so extended alignments need the real pointer value.
    void* p = try_bump(size, align);
    if (p == nullptr) {
      new_block();
      p = try_bump(size, align);
      // Extended alignment can eat enough of a fresh block that the
      // request no longer fits; fall through to a dedicated block.
      if (p == nullptr) return allocate_large(size, align);
    }
    bytes_epoch_ += size;
    bytes_total_ += size;
    return p;
  }

  template <typename T>
  T* allocate_array(size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Epoch reset: O(1) rewind.  Every pointer handed out since the last
  /// reset becomes invalid; retained blocks are reused verbatim.
  void reset() {
    block_index_ = 0;
    cursor_ = 0;
    bytes_epoch_ = 0;
    large_blocks_.clear();
    ++epoch_;
  }

  uint64_t epoch() const { return epoch_; }
  /// Bytes handed out in the current epoch.
  size_t bytes_allocated() const { return bytes_epoch_; }
  /// Cumulative bytes handed out since construction (monotone; the
  /// allocs-per-session accounting in perf_smoke reads this).
  uint64_t total_allocated() const { return bytes_total_; }
  /// Retained capacity: normal blocks only (large fallbacks are freed on
  /// reset and so never count as retained).
  size_t retained_bytes() const { return blocks_.size() * block_size_; }
  size_t block_count() const { return blocks_.size(); }
  size_t large_block_count() const { return large_blocks_.size(); }

 private:
  static size_t align_up(size_t v, size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  /// Carves an aligned span out of the current block; nullptr when there
  /// is no current block or the aligned request does not fit.
  void* try_bump(size_t size, size_t align) {
    if (blocks_.empty()) return nullptr;
    unsigned char* base = blocks_[block_index_].get();
    const uintptr_t addr =
        align_up(reinterpret_cast<uintptr_t>(base) + cursor_, align);
    const size_t offset = addr - reinterpret_cast<uintptr_t>(base);
    if (offset + size > block_size_) return nullptr;
    cursor_ = offset + size;
    return base + offset;
  }

  void new_block() {
    if (block_index_ + 1 < blocks_.size()) {
      ++block_index_;
    } else {
      blocks_.push_back(std::make_unique<unsigned char[]>(block_size_));
      block_index_ = blocks_.size() - 1;
    }
    cursor_ = 0;
  }

  void* allocate_large(size_t size, size_t align) {
    // Dedicated block; operator new guarantees max_align_t alignment, and
    // extended alignment requests get headroom to align manually.
    const size_t extra = align > alignof(std::max_align_t) ? align : 0;
    large_blocks_.push_back(std::make_unique<unsigned char[]>(size + extra));
    unsigned char* base = large_blocks_.back().get();
    void* p = base;
    if (extra > 0) {
      p = reinterpret_cast<void*>(
          align_up(reinterpret_cast<uintptr_t>(base), align));
    }
    bytes_epoch_ += size;
    bytes_total_ += size;
    return p;
  }

  size_t block_size_;
  std::vector<std::unique_ptr<unsigned char[]>> blocks_;
  std::vector<std::unique_ptr<unsigned char[]>> large_blocks_;
  size_t block_index_ = 0;  ///< valid only when !blocks_.empty()
  size_t cursor_ = 0;       ///< offset into blocks_[block_index_]
  size_t bytes_epoch_ = 0;
  uint64_t bytes_total_ = 0;
  uint64_t epoch_ = 0;
};

/// Allocator adapter: null arena -> heap fallback.  deallocate() is a
/// no-op for arena-backed memory (the epoch reset reclaims it wholesale).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // Moves/swaps carry the allocator with the elements, so an arena-backed
  // vector moved into another stays arena-backed instead of reallocating.
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  /// Copies of arena containers fall back to the heap: they may outlive
  /// the epoch (tests stash parsed frames; cold paths keep copies).
  ArenaAllocator select_on_container_copy_construction() const {
    return ArenaAllocator();
  }

  T* allocate(size_t n) {
    if (arena_ != nullptr) {
      return arena_->allocate_array<T>(n);
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

/// Vector whose storage may live in an Arena (heap when default-built).
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace wira::util
