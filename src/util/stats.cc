#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wira {

void Samples::add_all(const std::vector<double>& vs) {
  values_.insert(values_.end(), vs.begin(), vs.end());
  sorted_valid_ = false;
}

double Samples::sum() const {
  double s = 0;
  for (double v : values_) s += v;
  return s;
}

double Samples::mean() const {
  if (values_.empty()) return 0;
  return sum() / static_cast<double>(values_.size());
}

double Samples::min() const {
  if (values_.empty()) return 0;
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) return 0;
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0;
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double Samples::cv() const {
  const double m = mean();
  if (m == 0) return 0;
  return stddev() / m;
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0;
  ensure_sorted();
  if (p <= 0) return sorted_.front();
  if (p >= 100) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: empty range");
  }
}

void Histogram::add(double v) {
  double idx = (v - lo_) / width_;
  long i = static_cast<long>(idx);
  if (i < 0) i = 0;
  if (i >= static_cast<long>(counts_.size()))
    i = static_cast<long>(counts_.size()) - 1;
  counts_[static_cast<size_t>(i)]++;
  total_++;
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0;
  size_t acc = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (bin_hi(i) <= x) {
      acc += counts_[i];
    } else {
      break;
    }
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::bin_lo(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_gain(double baseline, double value) {
  if (baseline == 0) return "n/a";
  const double pct = (value - baseline) / baseline * 100.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
  return buf;
}

}  // namespace wira
