// Minimal leveled logger.  Off by default so benches stay quiet; tests and
// examples can raise the level to trace protocol events.
#pragma once

#include <cstdio>
#include <string>

namespace wira {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log threshold.  Read on hot paths from bench worker
/// threads (the parallel population runner), so it is backed by an atomic
/// with relaxed ordering: levels are advisory and a racing set_log_level
/// only affects which messages appear, never memory safety.
LogLevel log_level();
void set_log_level(LogLevel level);

void log_write(LogLevel level, const char* tag, const std::string& msg);

}  // namespace wira

#define WIRA_LOG(level, tag, msg)                                \
  do {                                                           \
    if (static_cast<int>(level) >=                               \
        static_cast<int>(::wira::log_level())) {                 \
      ::wira::log_write(level, tag, msg);                        \
    }                                                            \
  } while (0)

#define WIRA_TRACE(tag, msg) WIRA_LOG(::wira::LogLevel::kTrace, tag, msg)
#define WIRA_DEBUG(tag, msg) WIRA_LOG(::wira::LogLevel::kDebug, tag, msg)
#define WIRA_INFO(tag, msg) WIRA_LOG(::wira::LogLevel::kInfo, tag, msg)
#define WIRA_WARN(tag, msg) WIRA_LOG(::wira::LogLevel::kWarn, tag, msg)
