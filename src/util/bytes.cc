#include "util/bytes.h"

#include <bit>
#include <cstring>

namespace wira {

void ByteWriter::u16be(uint16_t v) {
  u8(static_cast<uint8_t>(v >> 8));
  u8(static_cast<uint8_t>(v));
}

void ByteWriter::u24be(uint32_t v) {
  u8(static_cast<uint8_t>(v >> 16));
  u8(static_cast<uint8_t>(v >> 8));
  u8(static_cast<uint8_t>(v));
}

void ByteWriter::u32be(uint32_t v) {
  u16be(static_cast<uint16_t>(v >> 16));
  u16be(static_cast<uint16_t>(v));
}

void ByteWriter::u64be(uint64_t v) {
  u32be(static_cast<uint32_t>(v >> 32));
  u32be(static_cast<uint32_t>(v));
}

void ByteWriter::u16le(uint16_t v) {
  u8(static_cast<uint8_t>(v));
  u8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::u32le(uint32_t v) {
  u16le(static_cast<uint16_t>(v));
  u16le(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::u64le(uint64_t v) {
  u32le(static_cast<uint32_t>(v));
  u32le(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::f64be(double v) { u64be(std::bit_cast<uint64_t>(v)); }

void ByteWriter::varint(uint64_t v) {
  if (v < (1ull << 6)) {
    u8(static_cast<uint8_t>(v));
  } else if (v < (1ull << 14)) {
    u16be(static_cast<uint16_t>(v | 0x4000));
  } else if (v < (1ull << 30)) {
    u32be(static_cast<uint32_t>(v | 0x80000000u));
  } else {
    u64be(v | 0xC000000000000000ull);
  }
}

void ByteWriter::bytes(std::span<const uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::bytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

void ByteWriter::patch_u24be(size_t offset, uint32_t v) {
  buf_.at(offset) = static_cast<uint8_t>(v >> 16);
  buf_.at(offset + 1) = static_cast<uint8_t>(v >> 8);
  buf_.at(offset + 2) = static_cast<uint8_t>(v);
}

void ByteWriter::patch_u32be(size_t offset, uint32_t v) {
  buf_.at(offset) = static_cast<uint8_t>(v >> 24);
  buf_.at(offset + 1) = static_cast<uint8_t>(v >> 16);
  buf_.at(offset + 2) = static_cast<uint8_t>(v >> 8);
  buf_.at(offset + 3) = static_cast<uint8_t>(v);
}

bool ByteReader::require(size_t n) {
  if (!ok_ || remaining() < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ByteReader::u8() {
  if (!require(1)) return 0;
  return data_[pos_++];
}

uint8_t ByteReader::peek_u8() {
  if (!ok_ || remaining() < 1) {
    ok_ = false;
    return 0;
  }
  return data_[pos_];
}

uint16_t ByteReader::u16be() {
  if (!require(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

uint32_t ByteReader::u24be() {
  if (!require(3)) return 0;
  uint32_t v = static_cast<uint32_t>(data_[pos_]) << 16 |
               static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
               static_cast<uint32_t>(data_[pos_ + 2]);
  pos_ += 3;
  return v;
}

uint32_t ByteReader::u32be() {
  if (!require(4)) return 0;
  uint32_t hi = u16be();
  uint32_t lo = u16be();
  return hi << 16 | lo;
}

uint64_t ByteReader::u64be() {
  if (!require(8)) return 0;
  uint64_t hi = u32be();
  uint64_t lo = u32be();
  return hi << 32 | lo;
}

uint16_t ByteReader::u16le() {
  if (!require(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_] | data_[pos_ + 1] << 8);
  pos_ += 2;
  return v;
}

uint32_t ByteReader::u32le() {
  if (!require(4)) return 0;
  uint32_t lo = u16le();
  uint32_t hi = u16le();
  return hi << 16 | lo;
}

uint64_t ByteReader::u64le() {
  if (!require(8)) return 0;
  uint64_t lo = u32le();
  uint64_t hi = u32le();
  return hi << 32 | lo;
}

double ByteReader::f64be() { return std::bit_cast<double>(u64be()); }

uint64_t ByteReader::varint() {
  uint8_t first = peek_u8();
  if (!ok_) return 0;
  switch (first >> 6) {
    case 0:
      return u8();
    case 1:
      return u16be() & 0x3FFF;
    case 2:
      return u32be() & 0x3FFFFFFF;
    default:
      return u64be() & 0x3FFFFFFFFFFFFFFFull;
  }
}

std::span<const uint8_t> ByteReader::bytes(size_t len) {
  if (!require(len)) return {};
  auto s = data_.subspan(pos_, len);
  pos_ += len;
  return s;
}

std::string ByteReader::str(size_t len) {
  auto s = bytes(len);
  return std::string(reinterpret_cast<const char*>(s.data()), s.size());
}

bool ByteReader::skip(size_t len) {
  if (!require(len)) return false;
  pos_ += len;
  return true;
}

std::string to_hex(std::span<const uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::vector<uint8_t> from_hex(std::string_view hex) {
  std::vector<uint8_t> out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    int n = hex_nibble(c);
    if (n < 0) continue;  // permit spaces/colons in test vectors
    if (hi < 0) {
      hi = n;
    } else {
      out.push_back(static_cast<uint8_t>(hi << 4 | n));
      hi = -1;
    }
  }
  return out;
}

}  // namespace wira
