// Process-wide heap allocation tally.
//
// The counters live in wira_util and are always linkable, but they only
// advance when the optional global operator-new hook (alloc_hook.cc) is
// compiled into the final binary.  Perf tooling (bench/perf_smoke) links
// the hook to report allocs_per_session; production targets do not, so
// the hot path carries no accounting overhead by default.
//
// Counting is relaxed-atomic: totals are exact, ordering against other
// memory operations is not guaranteed (irrelevant for a tally).
#pragma once

#include <cstddef>
#include <cstdint>

namespace wira::util {

/// Number of operator-new calls since process start (0 if the hook is
/// not linked).
uint64_t heap_alloc_count();

/// Bytes requested from operator new since process start (0 if the hook
/// is not linked).
uint64_t heap_alloc_bytes();

/// True when alloc_hook.cc was compiled into this binary, i.e. the two
/// counters above are live rather than frozen at zero.
bool heap_hook_linked();

/// Called by the operator-new hook.  Not for general use.
void add_heap_alloc(size_t bytes);

/// Called once from the hook's static initializer.  Not for general use.
void mark_heap_hook_linked();

}  // namespace wira::util
