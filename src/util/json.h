// Minimal JSON string escaping shared by every JSON-emitting writer in the
// repo (qlog tracer, metrics JSONL, bench summaries).  Escapes exactly what
// RFC 8259 requires: quote, backslash, and control characters below 0x20.
#pragma once

#include <string>
#include <string_view>

namespace wira::util {

/// Appends `s` to `out` with JSON string escaping applied (no surrounding
/// quotes).  Multi-byte UTF-8 sequences pass through untouched.
void append_json_escaped(std::string& out, std::string_view s);

/// Returns the escaped form of `s` (no surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace wira::util
