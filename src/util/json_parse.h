// Minimal strict JSON parser (RFC 8259 subset) for the repo's own JSON
// outputs: qlog .sqlog lines (obs/trace_join) and the soak flush JSONL
// (the exporter daemon).  Deliberately small — no streaming, no comments,
// no trailing commas — and it *preserves the raw number text*, so callers
// that need exact integer semantics (qlog millisecond timestamps with a
// 3-digit fraction) can parse digits themselves instead of round-tripping
// through double.
//
// This is the product-side parser; tests/test_qlog.cc keeps its own
// independent mini-parser on purpose, so the qlog writer is never
// validated by the same code that consumes it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wira::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw_number;  ///< exact source text, e.g. "12.003"
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion-ordered members (duplicate keys rejected by the parser).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() that also requires the member to be of `k`.
  const JsonValue* find(std::string_view key, Kind k) const;
};

/// Parses exactly one JSON document (leading/trailing whitespace allowed,
/// anything else after the value is an error).  Returns false and fills
/// *error with a position-prefixed message on malformed input.
bool parse_json(std::string_view text, JsonValue* out, std::string* error);

/// Exact-integer read of a non-negative JSON number written as
/// milliseconds with an optional fractional part, returned in microseconds
/// (e.g. "12.003" -> 12003, "7" -> 7000).  This is the inverse of
/// obs/qlog.cc's append_ms and never goes through double, so qlog
/// timestamps round-trip exactly.  Fractional digits beyond microseconds
/// are rejected (the writer never emits them).  Returns false on negative,
/// non-numeric or out-of-range input.
bool ms_text_to_us(std::string_view raw, uint64_t* us);

}  // namespace wira::util
