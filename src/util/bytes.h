// Byte-order aware serialization buffers used by the QUIC wire format,
// the FLV container and the transport-cookie codec.
//
// ByteWriter owns a growable buffer; ByteReader is a non-owning cursor over
// an existing span.  Readers are fail-soft: every accessor reports success
// and a reader that has failed once stays failed (monotone error latch), so
// callers can batch reads and check `ok()` once — the idiom malformed-packet
// handling relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wira {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }
  /// Adopts an existing buffer, clearing it but keeping its capacity —
  /// pairs with take() for allocation-free round trips through a pool.
  explicit ByteWriter(std::vector<uint8_t>&& adopt) : buf_(std::move(adopt)) {
    buf_.clear();
  }

  void u8(uint8_t v) { buf_.push_back(v); }
  void u16be(uint16_t v);
  void u24be(uint32_t v);  ///< low 24 bits, big-endian (FLV tag sizes)
  void u32be(uint32_t v);
  void u64be(uint64_t v);
  void u16le(uint16_t v);
  void u32le(uint32_t v);
  void u64le(uint64_t v);
  void f64be(double v);  ///< IEEE754 big-endian (AMF0 numbers)

  /// QUIC-style variable-length integer (RFC 9000 §16), max 62 bits.
  void varint(uint64_t v);

  void bytes(std::span<const uint8_t> data);
  void bytes(const void* data, size_t len);
  void str(std::string_view s) { bytes(s.data(), s.size()); }
  /// Grows capacity to at least `n` total bytes (content unchanged).
  void reserve(size_t n) { buf_.reserve(n); }
  /// Appends `n` zero bytes.
  void zeros(size_t n) { buf_.insert(buf_.end(), n, 0); }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }
  std::span<const uint8_t> span() const { return buf_; }

  /// Overwrites previously written bytes (for back-patched length fields).
  void patch_u24be(size_t offset, uint32_t v);
  void patch_u32be(size_t offset, uint32_t v);

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}
  ByteReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data), len) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }

  uint8_t u8();
  uint16_t u16be();
  uint32_t u24be();
  uint32_t u32be();
  uint64_t u64be();
  uint16_t u16le();
  uint32_t u32le();
  uint64_t u64le();
  double f64be();
  uint64_t varint();

  /// Reads exactly `len` bytes; returns an empty span (and latches the
  /// error) if fewer remain.
  std::span<const uint8_t> bytes(size_t len);
  std::string str(size_t len);
  bool skip(size_t len);

  /// Peeks the next byte without consuming it; 0 with error latch if empty.
  uint8_t peek_u8();

 private:
  bool require(size_t n);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Hex helpers for logging/tests.
std::string to_hex(std::span<const uint8_t> data);
std::vector<uint8_t> from_hex(std::string_view hex);

}  // namespace wira
