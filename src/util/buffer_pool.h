// Freelist of byte buffers for the per-packet hot path.
//
// A simulated session moves every datagram through the same cycle:
// Connection serializes into a vector, the Link queues it, the receiver
// parses it, the vector dies.  Pooling the vectors turns that steady-state
// churn (two allocations per packet, both directions) into pointer swaps.
// The pool is intentionally not thread-safe: it lives inside one
// EventLoop, and each simulated session owns its loop exclusively.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wira::util {

class BufferPool {
 public:
  /// `max_buffers` bounds pooled memory; `max_capacity` drops unusually
  /// large one-off buffers instead of caching them forever.
  explicit BufferPool(size_t max_buffers = 64,
                      size_t max_capacity = 256 * 1024)
      : max_buffers_(max_buffers), max_capacity_(max_capacity) {}

  /// Returns an empty buffer with whatever capacity it retired with.
  std::vector<uint8_t> acquire() {
    if (free_.empty()) return {};
    std::vector<uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    return buf;
  }

  /// Returns a buffer to the pool (drops it if the pool is full or the
  /// buffer is empty/oversized).
  void release(std::vector<uint8_t>&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > max_capacity_ ||
        free_.size() >= max_buffers_) {
      return;
    }
    free_.push_back(std::move(buf));
  }

  size_t pooled() const { return free_.size(); }

 private:
  size_t max_buffers_;
  size_t max_capacity_;
  std::vector<std::vector<uint8_t>> free_;
};

}  // namespace wira::util
