#include "util/logging.h"

#include <atomic>

namespace wira {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_write(LogLevel level, const char* tag, const std::string& msg) {
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 4) return;
  std::fprintf(stderr, "[%s] %s: %s\n", kNames[idx], tag, msg.c_str());
}

}  // namespace wira
