// Deterministic random number generation for the emulator and workload
// generators.
//
// Every stochastic component takes an explicit `Rng&` (or a seed) so each
// figure/table is exactly reproducible.  The generator is xoshiro256**,
// seeded via splitmix64 — fast, high quality, and header-only.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace wira {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    auto rotl = [](uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  uint64_t below(uint64_t n) { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller.
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Log-normal with given *underlying* mu/sigma (of the log).
  double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

  /// Log-normal parameterized by the target mean and coefficient of
  /// variation of the *resulting* distribution — convenient for matching
  /// the paper's CV-based dispersion figures.
  double lognormal_mean_cv(double mean, double cv) {
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - sigma2 / 2.0;
    return lognormal(mu, std::sqrt(sigma2));
  }

  /// Exponential with given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  /// Bounded Pareto on [lo, hi] with shape alpha (heavy-tailed sizes).
  double pareto(double lo, double hi, double alpha) {
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  /// Derives an independent child generator (for per-entity streams).
  Rng fork() { return Rng(next() ^ 0xD1B54A32D192ED03ull); }

 private:
  std::array<uint64_t, 4> state_{};
};

}  // namespace wira
