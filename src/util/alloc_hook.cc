// Global operator-new replacement that tallies every heap allocation into
// util::alloc_stats.  Compile this TU into a binary (see wira_alloc_hooked
// targets in bench/CMakeLists.txt) to make heap_alloc_count() live; leave
// it out everywhere else so the default build pays nothing.
//
// All replaceable forms forward to malloc/posix_memalign so the matching
// deletes can uniformly free().  The hook must not allocate (it would
// recurse), so it only touches the relaxed atomics in alloc_stats.
#include <cstdlib>
#include <new>

#include "util/alloc_stats.h"

namespace {

struct HookRegistrar {
  HookRegistrar() { wira::util::mark_heap_hook_linked(); }
};
const HookRegistrar g_registrar;

void* counted_alloc(std::size_t n) {
  wira::util::add_heap_alloc(n);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  wira::util::add_heap_alloc(n);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : 1) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  wira::util::add_heap_alloc(n);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  wira::util::add_heap_alloc(n);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
