// FFCT phase decomposition (paper §IV, Figs. 11-13 discussion): splits the
// first-frame completion time of one session into named, contiguous spans
// so regressions can be attributed to a transport phase instead of showing
// up only as an end-of-session scalar.
//
// The boundaries come from trace::Tracer events emitted by the QUIC
// connection and the Wira server (request_received, origin_byte,
// ff_parsed) plus the client's receive-side metrics.  The spans partition
// [request_sent, first_frame_complete] exactly: every boundary is clamped
// to be monotone and missing events collapse to zero-length spans, so
// sum(spans) == FFCT identically (the JSONL acceptance check relies on
// this).
#pragma once

#include <vector>

#include "trace/tracer.h"
#include "util/units.h"

namespace wira::obs {

/// One contiguous phase of a session timeline.  `name` points at a static
/// string literal (phase taxonomy below), so spans are trivially copyable.
struct PhaseSpan {
  const char* name = "";
  TimeNs begin = 0;
  TimeNs end = 0;
  TimeNs duration() const { return end - begin; }
};

/// Raw boundary timestamps of one session (kNoTime = event never fired).
struct FfctBoundaries {
  TimeNs request_sent = kNoTime;         ///< client: PLAY request departed
  TimeNs request_received = kNoTime;     ///< server: PLAY seen (kRequestReceived)
  TimeNs first_origin_byte = kNoTime;    ///< server: first stream byte sent (kOriginByte)
  TimeNs ff_parsed = kNoTime;            ///< server: FF_Size known (kFfParsed)
  TimeNs first_byte_received = kNoTime;  ///< client: first video byte
                                         ///< (fallback: first stream byte)
  TimeNs first_frame_complete = kNoTime; ///< client: frame 1 done
};

/// Phase taxonomy, in timeline order:
///   handshake    request departure -> server sees PLAY (CHLO propagation,
///                cookie open, initial init-apply all happen in here)
///   origin_fetch -> first stream byte leaves the proxy
///   ff_parse     -> FF_Size parse completes / re-init (the corner-case-1
///                window during which init_cwnd_exp substitutes)
///   delivery     -> the contiguously-delivered stream reaches the first
///                byte of video payload at the client (so propagation,
///                container prelude and any reordering/reassembly stall
///                before the video data all land here)
///   frame_recv   -> first frame completely received
/// Later boundaries that fired before earlier ones (e.g. the client
/// received bytes before the parser finished) clamp to zero-length spans.
inline constexpr const char* kPhaseNames[] = {
    "handshake", "origin_fetch", "ff_parse", "delivery", "frame_recv"};
inline constexpr size_t kNumPhases = 5;

/// Builds the clamped partition.  Returns an empty vector when the session
/// never sent a request or never completed its first frame.
std::vector<PhaseSpan> ffct_phases(const FfctBoundaries& b);

/// Extracts the server-side boundaries from a buffered session trace
/// (first occurrence of each marker event); client-side fields are left
/// for the caller.
FfctBoundaries boundaries_from_trace(const trace::Tracer& server_trace);

}  // namespace wira::obs
