#include "obs/phase_timeline.h"

#include <algorithm>

namespace wira::obs {

std::vector<PhaseSpan> ffct_phases(const FfctBoundaries& b) {
  if (b.request_sent == kNoTime || b.first_frame_complete == kNoTime ||
      b.first_frame_complete < b.request_sent) {
    return {};
  }
  const TimeNs start = b.request_sent;
  const TimeNs end = b.first_frame_complete;
  const TimeNs raw[kNumPhases - 1] = {b.request_received, b.first_origin_byte,
                                      b.ff_parsed, b.first_byte_received};
  std::vector<PhaseSpan> spans;
  spans.reserve(kNumPhases);
  TimeNs cur = start;
  for (size_t i = 0; i + 1 < kNumPhases; ++i) {
    // A missing boundary inherits the previous one (zero-length span);
    // out-of-order boundaries clamp into [cur, end].
    const TimeNs t =
        raw[i] == kNoTime ? cur : std::clamp(raw[i], cur, end);
    spans.push_back(PhaseSpan{kPhaseNames[i], cur, t});
    cur = t;
  }
  spans.push_back(PhaseSpan{kPhaseNames[kNumPhases - 1], cur, end});
  return spans;
}

FfctBoundaries boundaries_from_trace(const trace::Tracer& server_trace) {
  FfctBoundaries b;
  b.request_received =
      server_trace.first_time(trace::EventType::kRequestReceived);
  b.first_origin_byte = server_trace.first_time(trace::EventType::kOriginByte);
  b.ff_parsed = server_trace.first_time(trace::EventType::kFfParsed);
  return b;
}

}  // namespace wira::obs
