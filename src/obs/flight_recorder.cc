#include "obs/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>

namespace wira::obs {

namespace {

/// Crash-dump header magic: "WFRD" in little-endian byte order.
constexpr uint32_t kCrashMagic = 0x44524657;
constexpr uint32_t kCrashVersion = 1;
/// Sanity bound when reading a crash dump back: no vantage legitimately
/// retains more slots than this (guards allocation on a corrupt file).
constexpr uint64_t kMaxDumpSlots = 1u << 20;

/// write(2) loop — async-signal-safe (no stdio, no allocation).
bool write_fd_all(int fd, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
  return true;
}

trace::Event to_event(const RecorderEvent& s) {
  trace::Event e;
  e.time = s.time;
  e.type = static_cast<trace::EventType>(s.type);
  e.a = s.a;
  e.b = s.b;
  const size_t len = ::strnlen(s.detail, sizeof(s.detail));
  e.detail.assign(s.detail, len);
  return e;
}

/// Merges two individually time-ordered slot sequences into one
/// time-ordered trace::Event list (qlog consumers require non-decreasing
/// time).  Both inputs are subsequences of one monotone event stream, so
/// a plain two-way merge restores global order.
std::vector<trace::Event> merge_slots(std::vector<RecorderEvent> milestones,
                                      std::vector<RecorderEvent> ring) {
  std::vector<trace::Event> out;
  out.reserve(milestones.size() + ring.size());
  size_t m = 0, r = 0;
  while (m < milestones.size() || r < ring.size()) {
    const bool take_milestone =
        r >= ring.size() ||
        (m < milestones.size() && milestones[m].time <= ring[r].time);
    out.push_back(to_event(take_milestone ? milestones[m++] : ring[r++]));
  }
  return out;
}

template <typename T>
bool read_pod(std::istream& in, T* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  return static_cast<bool>(
      in.read(reinterpret_cast<char*>(out), sizeof(T)));
}

bool read_slots(std::istream& in, uint64_t n,
                std::vector<RecorderEvent>* out) {
  if (n > kMaxDumpSlots) return false;
  out->resize(static_cast<size_t>(n));
  for (RecorderEvent& s : *out) {
    if (!read_pod(in, &s)) return false;
    s.detail[sizeof(s.detail) - 1] = '\0';
  }
  return true;
}

bool read_vantage(std::istream& in, std::vector<trace::Event>* out,
                  std::string* error) {
  uint64_t counts[2] = {0, 0};
  if (!read_pod(in, &counts)) {
    *error = "truncated crash dump (vantage header)";
    return false;
  }
  std::vector<RecorderEvent> milestones, ring;
  if (!read_slots(in, counts[0], &milestones) ||
      !read_slots(in, counts[1], &ring)) {
    *error = "truncated crash dump (event slots)";
    return false;
  }
  *out = merge_slots(std::move(milestones), std::move(ring));
  return true;
}

}  // namespace

bool recorder_milestone(trace::EventType t) {
  using trace::EventType;
  switch (t) {
    case EventType::kHandshakeEvent:
    case EventType::kInitApplied:
    case EventType::kCookieEvent:
    case EventType::kFrameComplete:
    case EventType::kRequestReceived:
    case EventType::kOriginByte:
    case EventType::kFfParsed:
    case EventType::kCornerCase:
    case EventType::kRequestSent:
    case EventType::kFirstVideoByte:
    case EventType::kStallObserved:
    case EventType::kDecodeError:
      return true;
    default:
      return false;
  }
}

VantageRecorder::VantageRecorder(const RecorderConfig& cfg) {
  milestones_.resize(std::max<size_t>(cfg.milestone_capacity, 1));
  ring_.resize(std::max<size_t>(cfg.ring_capacity, 1));
}

void VantageRecorder::store(std::vector<RecorderEvent>& slots,
                            std::atomic<uint64_t>& seq, size_t slot,
                            const trace::Event& e) {
  RecorderEvent& s = slots[slot];
  s.time = e.time;
  s.a = e.a;
  s.b = e.b;
  s.type = static_cast<uint16_t>(e.type);
  const size_t len = std::min(e.detail.size(), sizeof(s.detail) - 1);
  std::memcpy(s.detail, e.detail.data(), len);
  s.detail[len] = '\0';
  // Commit: the release store is what a signal handler's acquire load
  // pairs with — slots beyond the committed count are never read.
  seq.fetch_add(1, std::memory_order_release);
}

void VantageRecorder::on_event(const trace::Event& e) {
  const size_t t = static_cast<size_t>(e.type);
  if (t < kRecorderTypeCount) type_counts_[t]++;
  const uint64_t mc = milestone_count_.load(std::memory_order_relaxed);
  if (recorder_milestone(e.type) && mc < milestones_.size()) {
    store(milestones_, milestone_count_, static_cast<size_t>(mc), e);
    return;
  }
  // High-rate transport event — or milestone overflow, which spills here
  // so it is still recorded (just evictable).
  const uint64_t seq = ring_seq_.load(std::memory_order_relaxed);
  store(ring_, ring_seq_, static_cast<size_t>(seq % ring_.size()), e);
}

void VantageRecorder::reset() {
  milestone_count_.store(0, std::memory_order_relaxed);
  ring_seq_.store(0, std::memory_order_relaxed);
  std::memset(type_counts_, 0, sizeof(type_counts_));
}

uint64_t VantageRecorder::total_events() const {
  return milestone_count_.load(std::memory_order_relaxed) +
         ring_seq_.load(std::memory_order_relaxed);
}

uint32_t VantageRecorder::count(trace::EventType t) const {
  const size_t i = static_cast<size_t>(t);
  return i < kRecorderTypeCount ? type_counts_[i] : 0;
}

size_t VantageRecorder::retained() const {
  const uint64_t seq = ring_seq_.load(std::memory_order_relaxed);
  return static_cast<size_t>(
      milestone_count_.load(std::memory_order_relaxed) +
      std::min<uint64_t>(seq, ring_.size()));
}

std::vector<trace::Event> VantageRecorder::snapshot() const {
  const uint64_t mc = milestone_count_.load(std::memory_order_acquire);
  const uint64_t seq = ring_seq_.load(std::memory_order_acquire);
  std::vector<RecorderEvent> milestones(
      milestones_.begin(),
      milestones_.begin() + static_cast<ptrdiff_t>(mc));
  std::vector<RecorderEvent> ring;
  const uint64_t cap = ring_.size();
  const uint64_t rc = std::min(seq, cap);
  ring.reserve(static_cast<size_t>(rc));
  const uint64_t start = seq <= cap ? 0 : seq % cap;
  for (uint64_t k = 0; k < rc; ++k) {
    ring.push_back(ring_[static_cast<size_t>((start + k) % cap)]);
  }
  return merge_slots(std::move(milestones), std::move(ring));
}

bool VantageRecorder::dump_raw(int fd) const {
  const uint64_t mc = milestone_count_.load(std::memory_order_acquire);
  const uint64_t seq = ring_seq_.load(std::memory_order_acquire);
  const uint64_t cap = ring_.size();
  const uint64_t rc = std::min(seq, cap);
  const uint64_t counts[2] = {mc, rc};
  if (!write_fd_all(fd, counts, sizeof(counts))) return false;
  if (!write_fd_all(fd, milestones_.data(),
                    static_cast<size_t>(mc) * sizeof(RecorderEvent))) {
    return false;
  }
  if (seq <= cap) {
    return write_fd_all(fd, ring_.data(),
                        static_cast<size_t>(rc) * sizeof(RecorderEvent));
  }
  // Wrapped ring: oldest-first is [seq % cap, cap) then [0, seq % cap).
  const size_t start = static_cast<size_t>(seq % cap);
  return write_fd_all(fd, ring_.data() + start,
                      (static_cast<size_t>(cap) - start) *
                          sizeof(RecorderEvent)) &&
         write_fd_all(fd, ring_.data(), start * sizeof(RecorderEvent));
}

void write_events_sqlog(std::ostream& os,
                        const std::vector<trace::Event>& events,
                        const QlogTraceInfo& info) {
  QlogStreamWriter writer(os, info);
  for (const trace::Event& e : events) writer.on_event(e);
}

void FlightRecorder::write_sqlog_pair(std::ostream& server_os,
                                      std::ostream& client_os,
                                      const std::string& name) const {
  QlogTraceInfo server_info;
  server_info.title = name;
  server_info.group_id = name;
  write_events_sqlog(server_os, server_.snapshot(), server_info);

  QlogTraceInfo client_info;
  client_info.title = name;
  client_info.group_id = name;
  client_info.vantage_point_name = "wira-client";
  client_info.vantage_point_type = "client";
  write_events_sqlog(client_os, client_.snapshot(), client_info);
}

bool FlightRecorder::crash_dump(int fd, uint64_t session_index,
                                uint32_t scheme) const {
  const uint32_t magic_version[2] = {kCrashMagic, kCrashVersion};
  const uint32_t scheme_pad[2] = {scheme, 0};
  return write_fd_all(fd, magic_version, sizeof(magic_version)) &&
         write_fd_all(fd, &session_index, sizeof(session_index)) &&
         write_fd_all(fd, scheme_pad, sizeof(scheme_pad)) &&
         server_.dump_raw(fd) && client_.dump_raw(fd);
}

bool FlightRecorder::read_crash_dump(std::istream& in, CrashDump* out,
                                     std::string* error) {
  uint32_t magic_version[2] = {0, 0};
  if (!read_pod(in, &magic_version)) {
    *error = "truncated crash dump (header)";
    return false;
  }
  if (magic_version[0] != kCrashMagic || magic_version[1] != kCrashVersion) {
    *error = "bad crash dump magic/version";
    return false;
  }
  uint32_t scheme_pad[2] = {0, 0};
  if (!read_pod(in, &out->session_index) || !read_pod(in, &scheme_pad)) {
    *error = "truncated crash dump (header)";
    return false;
  }
  out->scheme = scheme_pad[0];
  return read_vantage(in, &out->server_events, error) &&
         read_vantage(in, &out->client_events, error);
}

}  // namespace wira::obs
