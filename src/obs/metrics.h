// Telemetry primitives for the experiment harness: named counters, gauges,
// and log-bucketed latency histograms collected into a MetricsRegistry.
//
// Design constraints (see DESIGN.md §Observability):
//   - cheap: recording a histogram sample is two integer ops + one array
//     increment; no per-sample allocation (unlike Samples, which retains
//     every value);
//   - mergeable and order-independent: every worker of the parallel
//     population runner owns a private registry, and merging them after
//     the join is commutative (bucket-wise addition), so the aggregate is
//     bit-identical at any --threads N even though the work-stealing
//     schedule is not;
//   - deterministic export: names iterate in lexicographic order and all
//     stored quantities are integers (percentiles interpolate within a
//     bucket, which is a pure function of the counts).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wira::obs {

/// Log-bucketed histogram for non-negative integer samples (latencies in
/// microseconds, byte counts, ...).  Buckets below kSubBuckets are exact;
/// above that each power-of-two octave splits into kSubBuckets linear
/// sub-buckets, bounding the relative quantization error by
/// 1/kSubBuckets (6.25%).
class LatencyHistogram {
 public:
  static constexpr uint64_t kSubBuckets = 16;  // must be a power of two

  void record(uint64_t value) { record_n(value, 1); }
  void record_n(uint64_t value, uint64_t n);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// p in [0, 100].  Walks the cumulative counts and interpolates linearly
  /// inside the bucket that crosses the rank; clamped to [min, max] so
  /// quantization never reports a value outside the observed range.
  double percentile(double p) const;

  /// Commutative, associative merge: the result is independent of merge
  /// order (the parallel-runner contract).
  void merge(const LatencyHistogram& other);

  /// Rebuilds a histogram from previously exported state — the inverse of
  /// (bucket_counts, count, sum, min, max) as read through the accessors.
  /// Used by the multiprocess runner's wire codec (exp/record_codec) to
  /// round-trip worker registries bit-exactly; `counts` must be
  /// index-aligned with bucket_index and `min` is the accessor value
  /// (0 for an empty histogram).
  static LatencyHistogram from_state(std::vector<uint64_t> counts,
                                     uint64_t count, uint64_t sum,
                                     uint64_t min, uint64_t max);

  struct Bucket {
    uint64_t lo = 0;     ///< inclusive
    uint64_t hi = 0;     ///< exclusive
    uint64_t count = 0;
  };
  /// Non-empty buckets in ascending value order.
  std::vector<Bucket> buckets() const;

  /// Raw bucket counts (index-aligned); exposed for exact-equality tests.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  static size_t bucket_index(uint64_t value);
  static uint64_t bucket_lo(size_t index);
  static uint64_t bucket_hi(size_t index);

 private:
  std::vector<uint64_t> counts_;  ///< grown on demand
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// Flat, name-addressed collection of counters, gauges and histograms.
/// Lookup creates on first use.  Not thread-safe: each worker owns one and
/// the owner merges them after the join.
class MetricsRegistry {
 public:
  /// Adds `n` to the named counter.
  void inc(std::string_view name, uint64_t n = 1);
  /// Sets the named gauge (merge sums gauges, so use them for additive
  /// quantities like bytes-on-wire, not instantaneous readings).
  void set_gauge(std::string_view name, double value);
  /// Named histogram, created empty on first access.
  LatencyHistogram& histogram(std::string_view name);

  /// Counter value; 0 when the counter was never touched.
  uint64_t counter(std::string_view name) const;
  /// Histogram lookup without creation; nullptr when absent.
  const LatencyHistogram* find_histogram(std::string_view name) const;

  /// Order-independent merge (counters/gauges add, histograms merge).
  void merge(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, LatencyHistogram, std::less<>>& histograms()
      const {
    return histograms_;
  }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {count,sum,min,max,mean,p50,p90,p99}}}.  Deterministic field order.
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, LatencyHistogram, std::less<>> histograms_;
};

}  // namespace wira::obs
