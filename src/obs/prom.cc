#include "obs/prom.h"

#include <charconv>
#include <map>

namespace wira::obs {

std::string prom_double(double value) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, value);
  return std::string(buf, res.ptr);
}

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void PromTextBuilder::family(std::string_view name, std::string_view type,
                             std::string_view help) {
  if (!help.empty()) {
    out_ += "# HELP ";
    out_ += name;
    out_ += ' ';
    // HELP text escaping: backslash and newline only (no quotes here).
    for (char c : help) {
      if (c == '\\') out_ += "\\\\";
      else if (c == '\n') out_ += "\\n";
      else out_ += c;
    }
    out_ += '\n';
  }
  out_ += "# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PromTextBuilder::sample_prefix(std::string_view name,
                                    const PromLabels& labels) {
  out_ += name;
  if (!labels.empty()) {
    out_ += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out_ += ',';
      first = false;
      out_ += k;
      out_ += "=\"";
      out_ += prom_escape_label(v);
      out_ += '"';
    }
    out_ += '}';
  }
  out_ += ' ';
}

void PromTextBuilder::sample(std::string_view name, const PromLabels& labels,
                             uint64_t value) {
  sample_prefix(name, labels);
  out_ += std::to_string(value);
  out_ += '\n';
}

void PromTextBuilder::sample(std::string_view name, const PromLabels& labels,
                             double value) {
  sample_prefix(name, labels);
  out_ += prom_double(value);
  out_ += '\n';
}

PromNameParts prom_name_parts(std::string_view registry_name) {
  PromNameParts parts;
  std::string_view base = registry_name;
  const size_t last_dot = registry_name.rfind('.');
  if (last_dot != std::string_view::npos &&
      last_dot + 1 < registry_name.size()) {
    const char first = registry_name[last_dot + 1];
    if (first >= 'A' && first <= 'Z') {
      parts.scheme = std::string(registry_name.substr(last_dot + 1));
      base = registry_name.substr(0, last_dot);
    }
  }
  parts.family.reserve(base.size());
  for (char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    parts.family += ok ? c : '_';
  }
  return parts;
}

namespace {

PromLabels scheme_labels(const std::string& scheme) {
  PromLabels labels;
  if (!scheme.empty()) labels.emplace_back("scheme", scheme);
  return labels;
}

}  // namespace

std::string render_prometheus(const MetricsRegistry& registry,
                              std::string_view prefix) {
  PromTextBuilder b;

  // Group per family first: distinct registry names can share a family
  // (per-scheme series), and the # TYPE header must be emitted once.
  // std::map keys keep family emission lexicographic; the inner vectors
  // inherit the registry maps' lexicographic series order.

  using CounterSeries = std::pair<PromLabels, uint64_t>;
  std::map<std::string, std::vector<CounterSeries>> counter_families;
  for (const auto& [name, value] : registry.counters()) {
    const PromNameParts parts = prom_name_parts(name);
    std::string family(prefix);
    family += parts.family;
    family += "_total";
    counter_families[family].emplace_back(scheme_labels(parts.scheme), value);
  }
  for (const auto& [family, series] : counter_families) {
    b.family(family, "counter", "");
    for (const auto& [labels, value] : series) b.sample(family, labels, value);
  }

  using GaugeSeries = std::pair<PromLabels, double>;
  std::map<std::string, std::vector<GaugeSeries>> gauge_families;
  for (const auto& [name, value] : registry.gauges()) {
    const PromNameParts parts = prom_name_parts(name);
    std::string family(prefix);
    family += parts.family;
    gauge_families[family].emplace_back(scheme_labels(parts.scheme), value);
  }
  for (const auto& [family, series] : gauge_families) {
    b.family(family, "gauge", "");
    for (const auto& [labels, value] : series) b.sample(family, labels, value);
  }

  using HistSeries = std::pair<PromLabels, const LatencyHistogram*>;
  std::map<std::string, std::vector<HistSeries>> hist_families;
  for (const auto& [name, hist] : registry.histograms()) {
    const PromNameParts parts = prom_name_parts(name);
    std::string family(prefix);
    family += parts.family;
    hist_families[family].emplace_back(scheme_labels(parts.scheme), &hist);
  }
  for (const auto& [family, series] : hist_families) {
    b.family(family, "histogram", "");
    const std::string bucket_name = family + "_bucket";
    const std::string sum_name = family + "_sum";
    const std::string count_name = family + "_count";
    for (const auto& [labels, hist] : series) {
      uint64_t cumulative = 0;
      for (const LatencyHistogram::Bucket& bucket : hist->buckets()) {
        cumulative += bucket.count;
        PromLabels with_le = labels;
        // Samples are integers and `hi` is exclusive, so hi-1 is the
        // exact largest value the bucket can hold — the cumulative count
        // at this `le` is exact.
        with_le.emplace_back("le", std::to_string(bucket.hi - 1));
        b.sample(bucket_name, with_le, cumulative);
      }
      PromLabels with_inf = labels;
      with_inf.emplace_back("le", "+Inf");
      b.sample(bucket_name, with_inf, hist->count());
      b.sample(sum_name, labels, hist->sum());
      b.sample(count_name, labels, hist->count());
    }
  }

  return b.take();
}

}  // namespace wira::obs
