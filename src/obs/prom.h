// Prometheus text exposition (format 0.0.4) for the observability layer.
//
// Two pieces:
//   - PromTextBuilder: a small writer for the exposition format (# HELP /
//     # TYPE headers, label escaping, shortest-round-trip doubles) shared
//     by every prometheus emitter in the repo;
//   - render_prometheus: renders a full obs::MetricsRegistry — counters
//     become `<prefix><name>_total`, gauges `<prefix><name>`, and
//     log-bucketed LatencyHistograms become classic histogram families
//     (`_bucket` with cumulative `le` bounds, `_sum`, `_count`).
//
// Name mapping: registry names are dot-separated lowercase components
// with an optional trailing CamelCase scheme ("phase.delivery_us.Wira",
// "trace.open_failed").  A trailing component starting with an uppercase
// letter becomes the `scheme` label; the rest joins with '_' under the
// prefix, so per-scheme series of one metric share a single family:
//   sessions.Wira          -> wira_sessions_total{scheme="Wira"}
//   phase.delivery_us.Bbr  -> wira_phase_delivery_us{scheme="Bbr",le=...}
//   trace.open_failed      -> wira_trace_open_failed_total
//
// Exactness: histogram samples are integers and bucket upper bounds are
// exclusive, so the emitted `le` is the largest value the bucket can hold
// (hi - 1) — cumulative counts at each `le` are exact, not quantized.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace wira::obs {

/// Shortest text that round-trips the double exactly (std::to_chars).
std::string prom_double(double value);

/// Label-value escaping per the exposition format: backslash, double
/// quote and newline.
std::string prom_escape_label(std::string_view value);

using PromLabels = std::vector<std::pair<std::string, std::string>>;

/// Appends exposition-format text: call family() once per metric family,
/// then sample() for each of its series.
class PromTextBuilder {
 public:
  /// Emits the # HELP (when non-empty) and # TYPE header lines.
  /// `type` is "counter", "gauge", "histogram", "summary" or "untyped".
  void family(std::string_view name, std::string_view type,
              std::string_view help);

  void sample(std::string_view name, const PromLabels& labels,
              uint64_t value);
  void sample(std::string_view name, const PromLabels& labels, double value);

  const std::string& text() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void sample_prefix(std::string_view name, const PromLabels& labels);
  std::string out_;
};

/// Registry name split per the mapping above; scheme is empty when the
/// name has no trailing CamelCase component.
struct PromNameParts {
  std::string family;  ///< sanitized, '_'-joined, no prefix
  std::string scheme;
};
PromNameParts prom_name_parts(std::string_view registry_name);

/// Renders the whole registry.  Deterministic: families sort
/// lexicographically within each kind (counters, then gauges, then
/// histograms) and series inherit the registry's lexicographic order.
std::string render_prometheus(const MetricsRegistry& registry,
                              std::string_view prefix = "wira_");

}  // namespace wira::obs
