// Always-on flight recorder (DESIGN.md §7): a bounded, POD-encoded record
// of every session's trace events, cheap enough to leave attached to all
// sessions (not just --trace-sample'd ones) and materialized only when
// something goes wrong.
//
// Layout per vantage (server / client):
//   - a MILESTONE array for the low-rate events the cross-vantage join
//     needs (request_sent, frame_complete, handshake, cookies, corner
//     cases, stalls, decode errors, ...).  Milestones are never evicted
//     by packet churn, so a dump of an arbitrarily long session still
//     joins cleanly via obs/trace_join.
//   - a transport RING for the high-rate events (packet send/recv/ack/
//     loss, rtt/cwnd/pacing samples, PTOs, cc state).  Oldest entries are
//     overwritten; a dump shows the most recent transport history.
//
// Every event slot is preallocated in the constructor and recycled with
// reset(): steady-state recording performs zero heap allocations, so the
// recorder rides inside the soak's allocs-per-session gate.  Details are
// truncated into a fixed char field (RecorderEvent::detail).
//
// Two materialization paths:
//   - write_sqlog_pair(): the anomaly path.  Rebuilds trace::Events from
//     the POD slots (merging milestones and ring by time) and streams
//     them through the standard QlogStreamWriter, producing the same
//     paired .server.sqlog/.client.sqlog artifact a sampled session
//     writes — wira_trace_join joins it with no special casing.
//   - crash_dump(): the forensic path.  Async-signal-safe raw dump of
//     both vantages to a pre-opened fd — only write() and arithmetic, no
//     allocation, no locks, no stdio — so a worker dying on SIGSEGV can
//     leave its in-flight session's history behind.  The parent reads it
//     back (read_crash_dump) and materializes the same sqlog pair.
//
// Commit protocol (the signal-safety contract): an event is copied into
// its slot first, then the vantage's committed counter is advanced with a
// release store.  A signal handler interrupting record-in-progress reads
// the counter and sees only fully written slots; at worst the event being
// written when the signal hit is absent from the dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/qlog.h"
#include "trace/tracer.h"

namespace wira::obs {

/// One POD-encoded trace event (48 bytes).  `detail` is NUL-terminated
/// and truncated; every detail string the stack emits fits.
struct RecorderEvent {
  int64_t time = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint16_t type = 0;  ///< trace::EventType
  char detail[22] = {};
};
static_assert(sizeof(RecorderEvent) == 48, "keep the slot compact");
static_assert(std::is_trivially_copyable_v<RecorderEvent>,
              "crash_dump() writes raw slot bytes");

/// Number of distinct trace::EventType values (per-type counters).
inline constexpr size_t kRecorderTypeCount =
    static_cast<size_t>(trace::EventType::kDecodeError) + 1;

/// True for low-rate events kept in the milestone array (everything the
/// cross-vantage join or an anomaly trigger reads); false for the
/// high-rate transport events that go through the ring.
bool recorder_milestone(trace::EventType t);

struct RecorderConfig {
  size_t milestone_capacity = 192;  ///< overflow spills into the ring
  size_t ring_capacity = 512;
};

/// One vantage point's bounded recording.  Attach with
/// Tracer::set_tap(&recorder) — it coexists with qlog streaming sinks.
class VantageRecorder : public trace::EventSink {
 public:
  explicit VantageRecorder(const RecorderConfig& cfg);

  void on_event(const trace::Event& e) override;

  /// Recycles the recorder for the next session: O(1), frees nothing.
  void reset();

  /// Events seen this session (committed; includes ring-evicted ones).
  uint64_t total_events() const;
  /// Events of `t` seen this session (counted even after ring eviction).
  uint32_t count(trace::EventType t) const;
  /// Events currently retained (milestones + ring occupancy).
  size_t retained() const;

  /// Retained events rebuilt as trace::Events in non-decreasing time
  /// order (milestones and ring merged).  Allocates — dump path only.
  std::vector<trace::Event> snapshot() const;

  /// Async-signal-safe raw dump: writes the committed milestone slots and
  /// the ring contents (oldest first) to `fd`, preceded by their counts.
  /// Returns false if any write() failed.
  bool dump_raw(int fd) const;

 private:
  void store(std::vector<RecorderEvent>& slots, std::atomic<uint64_t>& seq,
             size_t slot, const trace::Event& e);

  std::vector<RecorderEvent> milestones_;
  std::vector<RecorderEvent> ring_;
  /// Committed event counts (see the commit protocol above).  milestone_
  /// count_ never exceeds the array capacity; ring_seq_ counts every ring
  /// push (occupancy = min(seq, capacity), next slot = seq % capacity).
  std::atomic<uint64_t> milestone_count_{0};
  std::atomic<uint64_t> ring_seq_{0};
  uint32_t type_counts_[kRecorderTypeCount] = {};
};

/// Streams `events` (already time-ordered) as one standard qlog file.
void write_events_sqlog(std::ostream& os,
                        const std::vector<trace::Event>& events,
                        const QlogTraceInfo& info);

/// Both vantages of one session plus the crash-forensics entry points.
class FlightRecorder {
 public:
  explicit FlightRecorder(const RecorderConfig& cfg = {})
      : server_(cfg), client_(cfg) {}

  VantageRecorder& server() { return server_; }
  VantageRecorder& client() { return client_; }
  const VantageRecorder& server() const { return server_; }
  const VantageRecorder& client() const { return client_; }

  void reset() {
    server_.reset();
    client_.reset();
  }

  /// Events of `t` across both vantages.
  uint32_t count(trace::EventType t) const {
    return server_.count(t) + client_.count(t);
  }

  /// Materializes the retained events as a paired qlog sample correlated
  /// by `name` (title == group_id == name, matching --trace-sample
  /// artifacts) so obs/trace_join joins the pair unchanged.
  void write_sqlog_pair(std::ostream& server_os, std::ostream& client_os,
                        const std::string& name) const;

  /// Async-signal-safe crash dump of both vantages to a pre-opened fd.
  bool crash_dump(int fd, uint64_t session_index, uint32_t scheme) const;

  /// Parsed crash_dump() artifact: per-vantage events, time-ordered.
  struct CrashDump {
    uint64_t session_index = 0;
    uint32_t scheme = 0;
    std::vector<trace::Event> server_events;
    std::vector<trace::Event> client_events;
  };
  static bool read_crash_dump(std::istream& in, CrashDump* out,
                              std::string* error);

 private:
  VantageRecorder server_;
  VantageRecorder client_;
};

}  // namespace wira::obs
